package fleet

// Watch-driven reconciliation. In its default mode the registry does
// not poll: each host connection opens a server-push watch stream
// (core.Connect.WatchEvents) and lifecycle events patch the cached
// inventory and summary directly, so a change on a daemon is visible to
// the scheduler one event-hop later with no RPC issued. The periodic
// service turn degenerates to a traffic-free liveness check; a full
// sweep runs only on (re)connect, on an explicit RefreshNow, or when
// the stream reports a sequence gap — and however many gaps pile up
// between turns, the host owes exactly one resync sweep.
//
// Events that cannot produce a complete record on their own (defined,
// started-while-unknown, migrated: the event carries no sizing) park
// the domain on a pending set; the next service turn resolves the whole
// set with one targeted bulk DomainListInfo call.

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/events"
)

// WatchStats is a point-in-time snapshot of the registry's reconcile
// accounting. Tests assert the watch-mode guarantees against it — a
// quiesced fleet performs zero sweeps across a poll window, a lifecycle
// change lands without one — because unlike the process-global
// telemetry counters it is scoped to a single Registry.
type WatchStats struct {
	Sweeps          uint64 // full inventory sweeps (connect, poll, resync)
	WatchEvents     uint64 // events folded into cached state
	Resyncs         uint64 // sweeps owed to detected stream gaps
	TargetedFetches uint64 // bulk fetches for event-incomplete records
}

// WatchStats returns the registry's reconcile accounting.
func (r *Registry) WatchStats() WatchStats {
	return WatchStats{
		Sweeps:          r.nSweeps.Load(),
		WatchEvents:     r.nEvents.Load(),
		Resyncs:         r.nResyncs.Load(),
		TargetedFetches: r.nFetches.Load(),
	}
}

// startWatch attaches the host's event feed to a fresh connection.
//
// Default mode opens a watch stream whose events patch the cached
// inventory in place; frame loss and queue overflow surface through the
// handler's gap flag and are answered with one bulk resync. With
// Config.DisableWatch the legacy bus subscription merely pulls the next
// sweep forward. Either way the subscription error is checked (it used
// to be silently dropped): ErrNoSupport degrades to plain interval
// polling, anything else is returned so the caller tears the connection
// down and retries with backoff instead of running blind.
func (r *Registry) startWatch(h *host, conn *core.Connect) error {
	if r.cfg.DisableWatch {
		_, err := conn.SubscribeEvents("", nil, func(events.Event) { r.pokeHost(h) })
		if err != nil && !core.IsCode(err, core.ErrNoSupport) {
			return err
		}
		return nil
	}
	handle, err := conn.WatchEvents("", nil, func(ev events.Event, gap bool) {
		r.onWatchEvent(h, ev, gap)
	})
	if err != nil {
		if core.IsCode(err, core.ErrNoSupport) {
			return nil // driver delivers no events; polling covers it
		}
		return err
	}
	h.mu.Lock()
	h.watch = handle
	h.watching = true
	h.needResync = false
	h.pending = nil
	h.mu.Unlock()
	return nil
}

// serviceWatch is one watch-mode service turn. Steady state costs no
// RPC at all: the turn checks transport liveness from client-side
// state, performs the one owed resync sweep if a gap was detected,
// drains the targeted-fetch set, and sleeps another PollInterval.
func (r *Registry) serviceWatch(h *host, conn *core.Connect) time.Time {
	if !conn.Alive() {
		conn.Close() //nolint:errcheck
		r.setDown(h, core.Errorf(core.ErrConnectionClosed, "fleet: watch transport lost"))
		return r.now() // reconnect immediately once
	}
	h.mu.Lock()
	resync := h.needResync
	h.needResync = false
	var names []string
	if resync {
		h.pending = nil // the full sweep supersedes targeted fetches
	} else if len(h.pending) > 0 {
		names = make([]string, 0, len(h.pending))
		for n := range h.pending {
			names = append(names, n)
		}
		h.pending = nil
	}
	h.mu.Unlock()

	var err error
	switch {
	case resync:
		r.nResyncs.Add(1)
		fleetWatchResyncs.Inc()
		err = r.refresh(h, conn)
	case len(names) > 0:
		sort.Strings(names)
		err = r.fetchPending(h, conn, names)
	default:
		return r.now().Add(r.cfg.PollInterval) // idle: zero RPC
	}
	if err == nil {
		return r.now().Add(r.cfg.PollInterval)
	}
	if core.IsCode(err, core.ErrOverloaded) {
		// Admission rejected the reconcile before dispatch: nothing was
		// applied, so owe the host a sweep (the drained pending set must
		// not be lost) and back off by the server's hint — without
		// touching the connection or the watch stream.
		h.mu.Lock()
		h.needResync = true
		h.mu.Unlock()
		return r.overloadDelay(h, err)
	}
	if core.IsRetryable(err) || core.IsCode(err, core.ErrConnectionClosed) {
		conn.Close() //nolint:errcheck
		r.setDown(h, err)
		return r.now()
	}
	// Transient operation error: owe the host a sweep instead of
	// trusting whatever state the half-finished reconcile left behind.
	r.log.Warnf("fleet", "host %s: watch reconcile: %v", h.name, err)
	h.mu.Lock()
	h.needResync = true
	h.mu.Unlock()
	return r.now().Add(r.cfg.PollInterval)
}

// onWatchEvent is the watch-stream callback. It runs on the
// connection's event-delivery goroutine and must not block, so it only
// patches cached state and pulls the host's service turn forward.
func (r *Registry) onWatchEvent(h *host, ev events.Event, gap bool) {
	if gap {
		fleetWatchGaps.Inc()
		h.mu.Lock()
		if h.watching {
			h.needResync = true
		}
		h.mu.Unlock()
		r.pokeHost(h)
		if ev.Type == 0 {
			return // heartbeat-revealed gap carries no event to apply
		}
	}
	r.nEvents.Add(1)
	fleetWatchEvents.Inc()
	r.applyWatchEvent(h, ev)
}

// applyWatchEvent folds one lifecycle event into the host's cached
// inventory and summary — the one-event-hop path: by the time the
// handler returns, Summaries reflects the change and no RPC was issued.
func (r *Registry) applyWatchEvent(h *host, ev events.Event) {
	h.mu.Lock()
	if !h.watching || h.state != HostUp {
		h.mu.Unlock()
		return // stream outlived the host's up-phase; resync covers it
	}
	h.patchGen++
	changed, unknown := false, false
	switch ev.Type {
	case events.EventUndefined:
		changed = h.removeRecord(ev.Domain)
	case events.EventStopped, events.EventShutdown:
		changed, unknown = h.patchState(ev.Domain, core.DomainShutoff)
	case events.EventCrashed:
		changed, unknown = h.patchState(ev.Domain, core.DomainCrashed)
	case events.EventSuspended:
		changed, unknown = h.patchState(ev.Domain, core.DomainPaused)
	case events.EventResumed, events.EventStarted:
		changed, unknown = h.patchState(ev.Domain, core.DomainRunning)
	default:
		// Defined, migrated, or a future type: the record's sizing
		// cannot be derived from the event alone.
		unknown = true
	}
	fetch := unknown && ev.Domain != ""
	if fetch {
		if h.pending == nil {
			h.pending = make(map[string]struct{})
		}
		h.pending[ev.Domain] = struct{}{}
	}
	if changed {
		h.inv.Gen++
		h.sum.Gen = h.inv.Gen
		r.publishSum(h)
	}
	h.mu.Unlock()
	if fetch {
		r.pokeHost(h)
	}
}

// fetchPending resolves domains whose events alone couldn't produce a
// full record: one bulk DomainListInfo call for exactly those names,
// merged into the cached inventory. Names the host no longer reports
// are treated as undefined.
func (r *Registry) fetchPending(h *host, conn *core.Connect, names []string) error {
	r.nFetches.Add(1)
	fleetWatchFetches.Inc()
	d := conn.Driver()
	rows, err := retryRead(func() ([]core.NamedDomainInfo, error) {
		return core.ListDomainInfo(d, 0, names)
	})
	if err != nil {
		return err
	}
	got := make(map[string]core.DomainInfo, len(rows))
	for _, row := range rows {
		got[row.Name] = row.Info
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, name := range names {
		info, ok := got[name]
		if !ok {
			h.removeRecord(name)
			continue
		}
		h.upsertRecord(DomainRecord{
			Name: name, State: info.State, MemKiB: info.MemKiB,
			MaxMemKiB: info.MaxMemKiB, VCPUs: info.VCPUs, CPUTimeNs: info.CPUTimeNs,
		})
	}
	h.inv.Gen++
	h.inv.CollectedAt = time.Now()
	h.sum = h.inv.Summary()
	r.publishSum(h)
	return nil
}

// recordIndex returns the domain's position in h.inv.Domains, building
// the name index lazily on the first patch after each sweep (sweeps
// replace the record slice wholesale and simply drop the index).
// Caller holds h.mu.
func (h *host) recordIndex(name string) int {
	if h.recIdx == nil {
		h.recIdx = make(map[string]int, len(h.inv.Domains))
		for i := range h.inv.Domains {
			h.recIdx[h.inv.Domains[i].Name] = i
		}
	}
	if i, ok := h.recIdx[name]; ok {
		return i
	}
	return -1
}

// patchState flips a known record to the given state, maintaining the
// summary's allocation aggregates incrementally; unknown reports that
// no record exists (the caller schedules a targeted fetch). Caller
// holds h.mu.
func (h *host) patchState(name string, st core.DomainState) (changed, unknown bool) {
	i := h.recordIndex(name)
	if i < 0 {
		return false, true
	}
	rec := &h.inv.Domains[i]
	if rec.State == st {
		return false, false
	}
	wasActive := rec.Active()
	rec.State = st
	if isActive := rec.Active(); isActive != wasActive {
		if isActive {
			h.sum.ActiveDomains++
			h.sum.AllocMemKiB += rec.MemKiB
			h.sum.AllocVCPUs += rec.VCPUs
		} else {
			h.sum.ActiveDomains--
			h.sum.AllocMemKiB -= rec.MemKiB
			h.sum.AllocVCPUs -= rec.VCPUs
		}
	}
	return true, false
}

// removeRecord deletes a domain's record (swap-delete; record order is
// not meaningful) and rolls its contribution out of the summary.
// Caller holds h.mu.
func (h *host) removeRecord(name string) bool {
	i := h.recordIndex(name)
	if i < 0 {
		return false
	}
	rec := h.inv.Domains[i]
	if rec.Active() {
		h.sum.ActiveDomains--
		h.sum.AllocMemKiB -= rec.MemKiB
		h.sum.AllocVCPUs -= rec.VCPUs
	}
	h.sum.TotalDomains--
	last := len(h.inv.Domains) - 1
	if i != last {
		h.inv.Domains[i] = h.inv.Domains[last]
		h.recIdx[h.inv.Domains[i].Name] = i
	}
	h.inv.Domains = h.inv.Domains[:last]
	delete(h.recIdx, name)
	return true
}

// upsertRecord installs a freshly fetched row, replacing any existing
// record for the name. The caller recomputes h.sum wholesale
// afterwards, so no aggregate maintenance happens here. Caller holds
// h.mu.
func (h *host) upsertRecord(rec DomainRecord) {
	if i := h.recordIndex(rec.Name); i >= 0 {
		h.inv.Domains[i] = rec
		return
	}
	h.inv.Domains = append(h.inv.Domains, rec)
	h.recIdx[rec.Name] = len(h.inv.Domains) - 1
}
