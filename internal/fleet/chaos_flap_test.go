package fleet

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/logging"
)

// TestChaosConcurrentReadersDuringFlap hammers the registry's read API
// from many goroutines while one host flaps — its daemon is torn down
// and restarted on the same socket in a loop — to surface data races
// between the poller's state transitions (setUp/setDown, summary-cache
// publication) and concurrent RefreshNow/Status/Inventory/Summaries/
// WaitSettled callers. The assertions are deliberately weak invariants
// (snapshot shapes stay consistent, the fleet re-settles once the
// flapping stops); the real check is the race detector.
func TestChaosConcurrentReadersDuringFlap(t *testing.T) {
	registerDrivers(t)
	dir := t.TempDir()
	const nHosts = 4
	var uris []string
	socks := make([]string, nHosts)
	for i := 0; i < nHosts; i++ {
		socks[i] = filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		if i < nHosts-1 {
			startFleetDaemon(t, socks[i])
		}
		uris = append(uris, emptyURI(socks[i]))
	}
	// The last host belongs to the flapper: it starts, kills and
	// restarts this daemon itself, so setup must not hold the socket.
	flapSock := socks[nHosts-1]
	cur := flapDaemon(t, flapSock)

	cfg := fastConfig(uris...)
	cfg.Seed = 11
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != nHosts {
		t.Fatalf("%d hosts up, want %d", up, nHosts)
	}
	flapName := reg.Hosts()[nHosts-1]

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Flapper: kill and restart the last host's daemon on the same
	// socket. Each cycle the registry sees connection failures (host
	// down), then a successful reconnect (host up). The daemon is
	// always restarted before the loop exits so the final settle check
	// sees a whole fleet.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for cycle := 0; cycle < 6; cycle++ {
			cur.Shutdown()
			reg.RefreshNow(flapName) // force the poller to notice quickly
			time.Sleep(40 * time.Millisecond)
			cur = flapDaemon(t, flapSock)
			time.Sleep(40 * time.Millisecond)
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	// Readers: every public snapshot path, concurrently, for the whole
	// flap window.
	reader := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	reader(func() {
		sts := reg.Status()
		if len(sts) != nHosts {
			t.Errorf("Status returned %d hosts, want %d", len(sts), nHosts)
		}
	})
	reader(func() {
		invs := reg.Inventory()
		if len(invs) != nHosts {
			t.Errorf("Inventory returned %d hosts, want %d", len(invs), nHosts)
		}
	})
	reader(func() {
		sums := reg.Summaries()
		if len(sums) != nHosts {
			t.Errorf("Summaries returned %d hosts, want %d", len(sums), nHosts)
		}
		for i := range sums {
			if sums[i].Host == "" {
				t.Error("summary with empty host name")
			}
		}
	})
	reader(func() { reg.RefreshNow() })
	reader(func() { reg.WaitSettled(10 * time.Millisecond) })

	// Let the flapper finish its cycles, then release the readers.
	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()

	// With the flapping over the fleet must converge back to all-up.
	// WaitSettled alone is not enough — a down host counts as settled —
	// so wait for the flapped host's reconnect explicitly.
	if !reg.WaitHostState(flapName, HostUp, 5*time.Second) {
		t.Fatalf("flapped host %s did not come back up", flapName)
	}
	if up := reg.WaitSettled(5 * time.Second); up != nHosts {
		t.Fatalf("fleet did not re-settle after flapping: %d/%d up", up, nHosts)
	}
}

// flapDaemon starts a daemon on sock. The flapper shuts intermediate
// incarnations down itself; Shutdown is idempotent, so registering a
// cleanup for every incarnation also reaps the final one.
func flapDaemon(t *testing.T, sock string) *daemon.Daemon {
	t.Helper()
	d := daemon.New(logging.NewQuiet(logging.Error))
	t.Cleanup(d.Shutdown)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
	if err != nil {
		t.Errorf("flap daemon: %v", err)
		return d
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		t.Errorf("flap daemon listen: %v", err)
	}
	return d
}
