package fleet

import "time"

// backoffTimer produces the reconnect pacing for one host: delays start
// at min, double on every consecutive failure, cap at max, and reset to
// min after a successful connection. Each delay is stretched by up to
// jitter × delay using a caller-supplied uniform sample, so a fleet
// that lost one daemon fans its reconnects out instead of hammering the
// daemon in lock-step when it returns.
//
// The type is pure — it owns no clock and no randomness source — so the
// exact delay sequence for a seeded PRNG can be asserted in tests
// without sleeping (see TestFleetBackoffDeterministic).
type backoffTimer struct {
	min, max time.Duration
	jitter   float64
	cur      time.Duration
}

func newBackoffTimer(min, max time.Duration, jitter float64) backoffTimer {
	if min <= 0 {
		min = time.Millisecond
	}
	if max < min {
		max = min
	}
	if jitter < 0 {
		jitter = 0
	}
	return backoffTimer{min: min, max: max, jitter: jitter, cur: min}
}

// next returns the delay to wait before the next attempt and advances
// the schedule. rnd must be a uniform sample from [0, 1).
func (b *backoffTimer) next(rnd float64) time.Duration {
	d := b.cur
	if b.jitter > 0 {
		d += time.Duration(float64(d) * b.jitter * rnd)
	}
	b.cur *= 2
	if b.cur > b.max {
		b.cur = b.max
	}
	return d
}

// reset restores the initial delay after a successful connection.
func (b *backoffTimer) reset() { b.cur = b.min }

// schedule materializes the next n attempt times starting from now,
// advancing the timer. It is what the registry effectively executes one
// step at a time; tests drive it with a fake clock to pin down the
// whole reconnect trajectory at once.
func (b *backoffTimer) schedule(now time.Time, n int, rnd func() float64) []time.Time {
	out := make([]time.Time, 0, n)
	t := now
	for i := 0; i < n; i++ {
		t = t.Add(b.next(rnd()))
		out = append(out, t)
	}
	return out
}
