// Package fleet is the multi-daemon orchestration layer: it turns N
// independent govirtd daemons, each managing one host through the
// uniform API, into a single schedulable pool. The paper's thesis is
// that one management application can drive many heterogeneous
// hypervisor hosts through one stable API; this package is that
// application's core, composed entirely over the public surface —
// core.Open with remote URIs, nodeinfo/stats polling for non-intrusive
// inventory, lifecycle events for cache invalidation, and the migration
// engine for rebalancing.
//
// Three parts:
//
//   - the host Registry dials every configured URI, tracks per-host
//     health (keepalive-backed connections, reconnect with exponential
//     backoff) and maintains a cached inventory per host;
//   - the Scheduler (scheduler.go) answers "where should this domain
//     run" with pluggable policies and performs define+start on the
//     winner, retrying on another host when one dies mid-placement;
//   - the Rebalancer (rebalance.go) watches load skew and drains hot
//     hosts by live-migrating domains between daemons.
package fleet

import (
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/logging"
	"repro/internal/uri"
)

// HostState is a host's position in the registry's health model.
type HostState int

// Host states. A host cycles Connecting → Up → Down → Connecting...
const (
	HostConnecting HostState = iota
	HostUp
	HostDown
)

var hostStateNames = map[HostState]string{
	HostConnecting: "connecting",
	HostUp:         "up",
	HostDown:       "down",
}

func (s HostState) String() string {
	if n, ok := hostStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config configures a Registry.
type Config struct {
	Hosts        []string      // connection URIs, one daemon each
	PollInterval time.Duration // inventory refresh period (default 2s)
	BackoffMin   time.Duration // first reconnect delay (default 100ms)
	BackoffMax   time.Duration // reconnect delay ceiling (default 10s)
	// BackoffJitter spreads reconnect delays by up to this fraction of
	// the base delay (default 0.2), so a fleet that lost one daemon does
	// not hammer it in lock-step when it returns. Negative disables.
	BackoffJitter float64
	// CallTimeout, when positive, is appended to every host URI as
	// call_timeout_ms so each remote call is deadline-bounded; zero keeps
	// the remote driver's default. URIs that already carry the parameter
	// are left alone.
	CallTimeout time.Duration
	// Seed fixes the jitter PRNG for reproducible chaos runs; 0 seeds
	// from the configuration (still deterministic, just unchosen).
	Seed   int64
	Policy Policy // placement policy (default Spread())
	Log    *logging.Logger
}

func (c *Config) applyDefaults() {
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = 10 * time.Second
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.2
	}
	if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.Seed == 0 {
		c.Seed = int64(len(c.Hosts)) + 1
	}
	if c.Policy == nil {
		c.Policy = Spread()
	}
	if c.Log == nil {
		c.Log = logging.NewQuiet(logging.Error)
	}
}

// withCallTimeout appends the call_timeout_ms parameter to a host URI
// unless the URI already sets one.
func withCallTimeout(hostURI string, d time.Duration) string {
	if d <= 0 || strings.Contains(hostURI, "call_timeout_ms=") {
		return hostURI
	}
	sep := "?"
	if strings.Contains(hostURI, "?") {
		sep = "&"
	}
	return fmt.Sprintf("%s%scall_timeout_ms=%d", hostURI, sep, d.Milliseconds())
}

// host is the registry's per-daemon record. Its connection is owned by
// the host goroutine; consumers take a reference under the lock and
// tolerate the connection failing underneath them (those failures are
// the typed retryable kind).
type host struct {
	name string
	uri  string

	mu      sync.Mutex
	conn    *core.Connect
	state   HostState
	lastErr error
	inv     HostInventory

	// sweep is the retained inventory scratch for BulkMonitorInto
	// drivers: row storage and name strings survive between polls, so a
	// steady-state sweep allocates almost nothing. sweepMu serializes
	// refreshes (the poll loop and the rebalancer can overlap).
	sweepMu sync.Mutex
	sweep   core.NodeInventory

	poke chan struct{} // event-driven "refresh now" signal
}

func (h *host) connRef() (*core.Connect, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostUp || h.conn == nil {
		return nil, core.Errorf(core.ErrHostUnreachable, "fleet: host %q is %s", h.name, h.state)
	}
	return h.conn, nil
}

// invalidate requests an immediate inventory refresh; callers must not
// block (it runs on event-delivery goroutines).
func (h *host) invalidate() {
	select {
	case h.poke <- struct{}{}:
	default:
	}
}

// HostStatus is the externally visible health row for one host.
type HostStatus struct {
	Name    string
	URI     string
	State   HostState
	Err     string // last connection error while down
	Domains int    // active domains at last refresh
	MemLoad float64
	CPULoad float64
}

// Registry manages the pool of daemon connections and their cached
// inventories.
type Registry struct {
	cfg Config
	log *logging.Logger

	mu     sync.Mutex
	hosts  map[string]*host
	order  []string
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter; seeded for reproducibility

	// hookAfterDefine, when set by tests, runs between the define and
	// start halves of a placement — the window where a dying daemon must
	// surface a retryable error.
	hookAfterDefine func(hostName string)
}

// New builds a Registry over the configured host URIs. Call Start to
// begin connecting.
func New(cfg Config) (*Registry, error) {
	cfg.applyDefaults()
	if len(cfg.Hosts) == 0 {
		return nil, core.Errorf(core.ErrInvalidArg, "fleet: no hosts configured")
	}
	r := &Registry{
		cfg:   cfg,
		log:   cfg.Log,
		hosts: make(map[string]*host, len(cfg.Hosts)),
		stop:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(cfg.Seed)), //nolint:gosec // jitter only
	}
	for i, s := range cfg.Hosts {
		u, err := uri.Parse(s)
		if err != nil {
			return nil, core.Errorf(core.ErrInvalidArg, "fleet: host %d: %v", i, err)
		}
		name := hostName(u, i)
		if _, dup := r.hosts[name]; dup {
			return nil, core.Errorf(core.ErrInvalidArg, "fleet: duplicate host %q", name)
		}
		s = withCallTimeout(s, cfg.CallTimeout)
		h := &host{name: name, uri: s, poke: make(chan struct{}, 1)}
		h.inv = HostInventory{Host: name, URI: s, State: HostConnecting}
		r.hosts[name] = h
		r.order = append(r.order, name)
	}
	return r, nil
}

// hostName derives a stable human-readable name for a host URI:
// host[:port] for TCP, the socket file's base name for unix sockets,
// else a positional fallback.
func hostName(u *uri.URI, idx int) string {
	if u.Host != "" {
		if u.Port != 0 {
			return fmt.Sprintf("%s:%d", u.Host, u.Port)
		}
		return u.Host
	}
	if sock, ok := u.Param("socket"); ok {
		base := path.Base(sock)
		if ext := path.Ext(base); ext != "" {
			base = base[:len(base)-len(ext)]
		}
		if base != "" && base != "." && base != "/" {
			return base
		}
	}
	return fmt.Sprintf("host%d", idx)
}

// Start launches the per-host connection managers.
func (r *Registry) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	fleetHostsKnown.Add(int64(len(r.order)))
	for _, name := range r.order {
		h := r.hosts[name]
		r.wg.Add(1)
		go r.runHost(h)
	}
}

// Close tears down every connection and stops the managers.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.stop)
	r.wg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	fleetHostsKnown.Add(-int64(len(r.order)))
	for _, h := range r.hosts {
		h.mu.Lock()
		if h.conn != nil {
			h.conn.Close() //nolint:errcheck
			h.conn = nil
		}
		if h.state == HostUp {
			fleetHostsUp.Add(-1)
		}
		h.state = HostDown
		h.mu.Unlock()
	}
}

// runHost is the per-host manager: connect, poll until the connection
// dies, reconnect with exponential backoff, forever (until Close).
func (r *Registry) runHost(h *host) {
	defer r.wg.Done()
	backoff := r.cfg.BackoffMin
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		conn, err := core.Open(h.uri)
		if err != nil {
			r.setDown(h, err)
			fleetReconnects.Inc()
			select {
			case <-r.stop:
				return
			case <-time.After(r.jittered(backoff)):
			}
			backoff *= 2
			if backoff > r.cfg.BackoffMax {
				backoff = r.cfg.BackoffMax
			}
			continue
		}
		backoff = r.cfg.BackoffMin
		r.setUp(h, conn)
		// Lifecycle events invalidate the cached inventory immediately,
		// so placements see changes faster than the poll interval.
		conn.SubscribeEvents("", nil, func(events.Event) { h.invalidate() }) //nolint:errcheck
		if err := r.refresh(h, conn); err != nil && core.IsRetryable(err) {
			r.setDown(h, err)
			conn.Close() //nolint:errcheck
			continue
		}
		err = r.pollLoop(h, conn)
		conn.Close()    //nolint:errcheck
		if err == nil { // Close() requested
			return
		}
		r.setDown(h, err)
	}
}

// jittered adds up to BackoffJitter × d of seeded random slack to a
// reconnect delay.
func (r *Registry) jittered(d time.Duration) time.Duration {
	if r.cfg.BackoffJitter <= 0 {
		return d
	}
	r.rngMu.Lock()
	f := r.rng.Float64()
	r.rngMu.Unlock()
	return d + time.Duration(float64(d)*r.cfg.BackoffJitter*f)
}

// pollLoop refreshes the host inventory on the poll interval and on
// event pokes. It returns nil on shutdown and the failure when the
// connection looks dead.
func (r *Registry) pollLoop(h *host, conn *core.Connect) error {
	t := time.NewTicker(r.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return nil
		case <-t.C:
		case <-h.poke:
		}
		if err := r.refresh(h, conn); err != nil {
			if core.IsRetryable(err) || core.IsCode(err, core.ErrConnectionClosed) {
				return err
			}
			// Transient operation error (e.g. racing undefine): keep the
			// host up, try again next tick.
			r.log.Warnf("fleet", "host %s: inventory refresh: %v", h.name, err)
		}
	}
}

// readAttempts bounds how often a read-only inventory call is retried
// when it fails with a transient transport error (a dropped frame, a
// per-call deadline). One lost frame must not condemn a healthy host;
// a genuinely dead connection fails fast and non-retryably, so the
// retries cost nothing there.
const readAttempts = 3

func retryRead[T any](f func() (T, error)) (out T, err error) {
	for i := 0; i < readAttempts; i++ {
		if out, err = f(); err == nil || !core.IsRetryable(err) {
			return out, err
		}
	}
	return out, err
}

// refresh collects one inventory snapshot over the given connection.
// Hosts whose driver implements BulkMonitor answer in a single round
// trip (NodeInventory); older daemons answer ErrNoSupport once and the
// sweep falls back to the per-domain loop.
func (r *Registry) refresh(h *host, conn *core.Connect) error {
	fleetPolls.Inc()
	d := conn.Driver()
	h.sweepMu.Lock()
	node, records, err := r.collectInventory(d, &h.sweep)
	h.sweepMu.Unlock()
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.inv = HostInventory{
		Host: h.name, URI: h.uri, State: h.state, DriverType: h.inv.DriverType,
		Node: node, Domains: records, Gen: h.inv.Gen + 1, CollectedAt: time.Now(),
	}
	return nil
}

// collectInventory gathers the node summary and domain records, bulk
// first, falling back to the classic NodeInfo + list + N×DomainInfo
// sweep when the driver (or its remote peer) lacks the bulk procedures.
func (r *Registry) collectInventory(d core.DriverConn, scratch *core.NodeInventory) (core.NodeInfo, []DomainRecord, error) {
	if bi, ok := d.(core.BulkMonitorInto); ok && scratch != nil {
		_, err := retryRead(func() (struct{}, error) {
			return struct{}{}, bi.NodeInventoryInto(scratch)
		})
		if err == nil {
			fleetBulkPolls.Inc()
			return scratch.Node, recordsFromRows(scratch.Domains), nil
		}
		if !core.IsCode(err, core.ErrNoSupport) {
			return core.NodeInfo{}, nil, err
		}
		fleetBulkFallbacks.Inc()
	} else if bm, ok := d.(core.BulkMonitor); ok {
		inv, err := retryRead(bm.NodeInventory)
		if err == nil {
			fleetBulkPolls.Inc()
			return inv.Node, recordsFromRows(inv.Domains), nil
		}
		if !core.IsCode(err, core.ErrNoSupport) {
			return core.NodeInfo{}, nil, err
		}
		fleetBulkFallbacks.Inc()
	}
	node, err := retryRead(d.NodeInfo)
	if err != nil {
		return core.NodeInfo{}, nil, err
	}
	names, err := retryRead(func() ([]string, error) { return d.ListDomains(0) })
	if err != nil {
		return core.NodeInfo{}, nil, err
	}
	records := make([]DomainRecord, 0, len(names))
	for _, name := range names {
		info, err := retryRead(func() (core.DomainInfo, error) { return d.DomainInfo(name) })
		if err != nil {
			if core.IsCode(err, core.ErrNoDomain) {
				continue // undefined between list and info
			}
			return core.NodeInfo{}, nil, err
		}
		records = append(records, DomainRecord{
			Name: name, State: info.State, MemKiB: info.MemKiB,
			MaxMemKiB: info.MaxMemKiB, VCPUs: info.VCPUs, CPUTimeNs: info.CPUTimeNs,
		})
	}
	return node, records, nil
}

// recordsFromRows converts bulk monitoring rows to inventory records.
func recordsFromRows(rows []core.NamedDomainInfo) []DomainRecord {
	records := make([]DomainRecord, len(rows))
	for i, row := range rows {
		records[i] = DomainRecord{
			Name: row.Name, State: row.Info.State, MemKiB: row.Info.MemKiB,
			MaxMemKiB: row.Info.MaxMemKiB, VCPUs: row.Info.VCPUs, CPUTimeNs: row.Info.CPUTimeNs,
		}
	}
	return records
}

func (r *Registry) setUp(h *host, conn *core.Connect) {
	drvType, _ := conn.Type()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostUp {
		fleetHostsUp.Add(1)
	}
	h.conn = conn
	h.state = HostUp
	h.lastErr = nil
	h.inv.State = HostUp
	h.inv.DriverType = drvType
	r.log.Infof("fleet", "host %s up (%s driver)", h.name, drvType)
}

func (r *Registry) setDown(h *host, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state == HostUp {
		fleetHostsUp.Add(-1)
		r.log.Warnf("fleet", "host %s down: %v", h.name, err)
	}
	h.conn = nil
	h.state = HostDown
	h.lastErr = err
	h.inv.State = HostDown
	h.inv.Domains = nil
}

// markDown records an externally observed host failure (a placement or
// migration call failing retryably): the connection is closed so the
// host goroutine's next poll notices and enters reconnect.
func (r *Registry) markDown(name string, err error) {
	r.mu.Lock()
	h, ok := r.hosts[name]
	r.mu.Unlock()
	if !ok {
		return
	}
	h.mu.Lock()
	conn := h.conn
	h.mu.Unlock()
	if conn != nil {
		conn.Close() //nolint:errcheck
	}
	h.invalidate()
	_ = err
}

// Host returns the named host's live connection, or a retryable error
// when the host is not up.
func (r *Registry) Host(name string) (*core.Connect, error) {
	r.mu.Lock()
	h, ok := r.hosts[name]
	r.mu.Unlock()
	if !ok {
		return nil, core.Errorf(core.ErrInvalidArg, "fleet: unknown host %q", name)
	}
	return h.connRef()
}

// Hosts lists the configured host names in configuration order.
func (r *Registry) Hosts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Status reports per-host health.
func (r *Registry) Status() []HostStatus {
	invs := r.Inventory()
	out := make([]HostStatus, 0, len(invs))
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, inv := range invs {
		st := HostStatus{
			Name: inv.Host, URI: inv.URI, State: inv.State,
			Domains: inv.ActiveDomains(), MemLoad: inv.MemLoad(), CPULoad: inv.CPULoad(),
		}
		if h, ok := r.hosts[inv.Host]; ok {
			h.mu.Lock()
			if h.lastErr != nil {
				st.Err = h.lastErr.Error()
			}
			h.mu.Unlock()
		}
		out = append(out, st)
	}
	return out
}

// Inventory snapshots every host's cached inventory, in configuration
// order.
func (r *Registry) Inventory() []HostInventory {
	r.mu.Lock()
	order := make([]string, len(r.order))
	copy(order, r.order)
	hosts := make([]*host, 0, len(order))
	for _, name := range order {
		hosts = append(hosts, r.hosts[name])
	}
	r.mu.Unlock()
	out := make([]HostInventory, 0, len(hosts))
	for _, h := range hosts {
		h.mu.Lock()
		out = append(out, h.inv.clone())
		h.mu.Unlock()
	}
	return out
}

// RefreshNow synchronously refreshes the named hosts (all when none are
// given), so callers that just mutated the fleet observe their writes.
func (r *Registry) RefreshNow(names ...string) {
	if len(names) == 0 {
		names = r.Hosts()
	}
	for _, name := range names {
		r.mu.Lock()
		h, ok := r.hosts[name]
		r.mu.Unlock()
		if !ok {
			continue
		}
		h.mu.Lock()
		conn := h.conn
		up := h.state == HostUp
		h.mu.Unlock()
		if up && conn != nil {
			if err := r.refresh(h, conn); err != nil && core.IsRetryable(err) {
				r.markDown(name, err)
			}
		}
	}
}

// WaitSettled blocks until every host has resolved its first connection
// attempt (up or down) or the timeout elapses; it returns the number of
// hosts up.
func (r *Registry) WaitSettled(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		settled, up := true, 0
		for _, inv := range r.Inventory() {
			switch inv.State {
			case HostUp:
				up++
			case HostConnecting:
				settled = false
			}
		}
		if settled || time.Now().After(deadline) {
			return up
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WaitHostState blocks until the named host reaches the wanted state,
// reporting whether it did before the timeout.
func (r *Registry) WaitHostState(name string, want HostState, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		for _, inv := range r.Inventory() {
			if inv.Host == name && inv.State == want {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sortHostsByName is a small shared helper for deterministic output.
func sortHostsByName(invs []HostInventory) {
	sort.Slice(invs, func(i, j int) bool { return invs[i].Host < invs[j].Host })
}
