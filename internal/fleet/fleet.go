// Package fleet is the multi-daemon orchestration layer: it turns N
// independent govirtd daemons, each managing one host through the
// uniform API, into a single schedulable pool. The paper's thesis is
// that one management application can drive many heterogeneous
// hypervisor hosts through one stable API; this package is that
// application's core, composed entirely over the public surface —
// core.Open with remote URIs, nodeinfo/stats polling for non-intrusive
// inventory, lifecycle events for cache invalidation, and the migration
// engine for rebalancing.
//
// Three parts:
//
//   - the host Registry dials every configured URI, tracks per-host
//     health (keepalive-backed connections, reconnect with exponential
//     backoff) and maintains a cached inventory per host;
//   - the Scheduler (scheduler.go) answers "where should this domain
//     run" with pluggable policies and performs define+start on the
//     winner, retrying on another host when one dies mid-placement;
//   - the Rebalancer (rebalance.go) watches load skew and drains hot
//     hosts by live-migrating domains between daemons.
//
// The registry is built to scale to thousands of hosts in one process:
// the host table is sharded (per-shard locks, so status reads and
// refresh writes on different hosts never contend), connection health
// and inventory polling run on a bounded pool of workers fed by a
// due-time queue (instead of one goroutine per host), and every
// placement decision reads compact per-host summaries (HostSummary)
// maintained incrementally on refresh rather than deep inventory
// clones.
package fleet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"path"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/uri"
)

// HostState is a host's position in the registry's health model.
type HostState int

// Host states. A host cycles Connecting → Up → Down → Connecting...
const (
	HostConnecting HostState = iota
	HostUp
	HostDown
)

var hostStateNames = map[HostState]string{
	HostConnecting: "connecting",
	HostUp:         "up",
	HostDown:       "down",
}

func (s HostState) String() string {
	if n, ok := hostStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config configures a Registry.
type Config struct {
	Hosts        []string      // connection URIs, one daemon each
	PollInterval time.Duration // inventory refresh period (default 2s)
	BackoffMin   time.Duration // first reconnect delay (default 100ms)
	BackoffMax   time.Duration // reconnect delay ceiling (default 10s)
	// BackoffJitter spreads reconnect delays by up to this fraction of
	// the base delay (default 0.2), so a fleet that lost one daemon does
	// not hammer it in lock-step when it returns. Negative disables.
	BackoffJitter float64
	// CallTimeout, when positive, is appended to every host URI as
	// call_timeout_ms so each remote call is deadline-bounded; zero keeps
	// the remote driver's default. URIs that already carry the parameter
	// are left alone.
	CallTimeout time.Duration
	// Workers bounds the fan-out of the shared poll/health worker pool:
	// at most this many hosts are being connected or refreshed at any
	// moment, however large the fleet. Default min(16, max(2, NumCPU)).
	Workers int
	// Seed fixes the jitter PRNG for reproducible chaos runs; 0 seeds
	// from the configuration (still deterministic, just unchosen).
	Seed   int64
	Policy Policy // placement policy (default Spread())
	Log    *logging.Logger
	// DisableWatch forces the registry back to pure interval polling:
	// every host is swept each PollInterval and lifecycle events only
	// pull the next sweep forward. By default the registry rides
	// server-push watch streams instead (see watch.go): events patch the
	// cached inventory directly and steady-state sweeps stop entirely.
	DisableWatch bool
}

func (c *Config) applyDefaults() {
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax < c.BackoffMin {
		c.BackoffMax = 10 * time.Second
	}
	if c.BackoffJitter == 0 {
		c.BackoffJitter = 0.2
	}
	if c.BackoffJitter < 0 {
		c.BackoffJitter = 0
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
		if c.Workers < 2 {
			c.Workers = 2
		}
		if c.Workers > 16 {
			c.Workers = 16
		}
	}
	if c.Seed == 0 {
		c.Seed = int64(len(c.Hosts)) + 1
	}
	if c.Policy == nil {
		c.Policy = Spread()
	}
	if c.Log == nil {
		c.Log = logging.NewQuiet(logging.Error)
	}
}

// withCallTimeout appends the call_timeout_ms parameter to a host URI
// unless the URI already sets one.
func withCallTimeout(hostURI string, d time.Duration) string {
	if d <= 0 || strings.Contains(hostURI, "call_timeout_ms=") {
		return hostURI
	}
	sep := "?"
	if strings.Contains(hostURI, "?") {
		sep = "&"
	}
	return fmt.Sprintf("%s%scall_timeout_ms=%d", hostURI, sep, d.Milliseconds())
}

// host is the registry's per-daemon record. The connection is owned by
// whichever pool worker is servicing the host; consumers take a
// reference under the lock and tolerate the connection failing
// underneath them (those failures are the typed retryable kind).
type host struct {
	name string
	uri  string
	idx  int // position in Registry.order and the summary cache

	mu      sync.Mutex
	conn    *core.Connect
	state   HostState
	lastErr error
	inv     HostInventory
	sum     HostSummary // aggregates mirrored from inv, O(1) to read

	// sweep is the retained inventory scratch for BulkMonitorInto
	// drivers: row storage and name strings survive between polls, so a
	// steady-state sweep allocates almost nothing. sweepMu serializes
	// refreshes (the poll worker and RefreshNow callers can overlap).
	sweepMu sync.Mutex
	sweep   core.NodeInventory

	// Watch-stream reconcile state (see watch.go), guarded by mu. In
	// watch mode events patch inv/sum in place; needResync records that a
	// sequence gap made the incremental state untrustworthy (one bulk
	// sweep is owed, however many gaps piled up), and pending holds
	// domains whose events alone couldn't produce a full record.
	watch      core.WatchHandle
	watching   bool
	needResync bool
	pending    map[string]struct{}
	recIdx     map[string]int // name → inv.Domains index, built lazily
	patchGen   uint64         // bumped by every event patch

	// bo paces reconnect attempts. Only the worker currently servicing
	// the host touches it; hand-off between workers is ordered by the
	// due-queue lock.
	bo backoffTimer

	// Due-queue bookkeeping, guarded by Registry.qmu.
	due     time.Time
	heapIdx int  // index in the due-heap, -1 while being serviced
	poked   bool // refresh requested while being serviced
}

// HostStatus is the externally visible health row for one host.
type HostStatus struct {
	Name    string
	URI     string
	State   HostState
	Err     string // last connection error while down
	Domains int    // active domains at last refresh
	MemLoad float64
	CPULoad float64
}

// numShards is the host-table shard count. 32 keeps per-shard maps tiny
// even at thousands of hosts while costing nothing at three.
const numShards = 32

type shard struct {
	mu    sync.RWMutex
	hosts map[string]*host
}

func shardFor(name string) uint32 {
	// FNV-1a; inlined to keep the hot host lookup allocation-free.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return h % numShards
}

// Registry manages the pool of daemon connections and their cached
// inventories.
type Registry struct {
	cfg Config
	log *logging.Logger

	shards [numShards]shard
	order  []string // configuration order; immutable after New

	// sums is the fleet-wide score cache: every host's compact summary,
	// in configuration order, mirrored here on each inventory event
	// (refresh, up/down flip, placement). The scheduler reads the whole
	// fleet's placement state under one RWMutex instead of taking a
	// thousand per-host locks per decision.
	sumMu sync.RWMutex
	sums  []HostSummary

	// Due-time queue driving the worker pool: hosts ordered by when
	// they next need attention (first connect, poll tick, backoff
	// retry, event poke).
	qmu    sync.Mutex
	queue  dueHeap
	closed bool
	kick   chan struct{} // wakes the dispatcher after queue changes

	work chan *host
	stop chan struct{}
	wg   sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter; seeded for reproducibility

	// now is the registry's clock; tests substitute a fake one to make
	// scheduling deterministic.
	now func() time.Time

	// Reconcile accounting, snapshotted by WatchStats. Tests assert the
	// watch-mode guarantees (idle quiescence, one-event-hop propagation)
	// against these rather than the process-global telemetry counters.
	nSweeps  atomic.Uint64
	nEvents  atomic.Uint64
	nResyncs atomic.Uint64
	nFetches atomic.Uint64

	// hookAfterDefine, when set by tests, runs between the define and
	// start halves of a placement — the window where a dying daemon must
	// surface a retryable error.
	hookAfterDefine func(hostName string)
}

// New builds a Registry over the configured host URIs. Call Start to
// begin connecting.
func New(cfg Config) (*Registry, error) {
	cfg.applyDefaults()
	if len(cfg.Hosts) == 0 {
		return nil, core.Errorf(core.ErrInvalidArg, "fleet: no hosts configured")
	}
	r := &Registry{
		cfg:  cfg,
		log:  cfg.Log,
		kick: make(chan struct{}, 1),
		work: make(chan *host),
		stop: make(chan struct{}),
		now:  time.Now,
		rng:  rand.New(rand.NewSource(cfg.Seed)), //nolint:gosec // jitter only
	}
	for i := range r.shards {
		r.shards[i].hosts = map[string]*host{}
	}
	for i, s := range cfg.Hosts {
		u, err := uri.Parse(s)
		if err != nil {
			return nil, core.Errorf(core.ErrInvalidArg, "fleet: host %d: %v", i, err)
		}
		name := hostName(u, i)
		sh := &r.shards[shardFor(name)]
		if _, dup := sh.hosts[name]; dup {
			return nil, core.Errorf(core.ErrInvalidArg, "fleet: duplicate host %q", name)
		}
		s = withCallTimeout(s, cfg.CallTimeout)
		h := &host{name: name, uri: s, idx: i, heapIdx: -1}
		h.bo = newBackoffTimer(cfg.BackoffMin, cfg.BackoffMax, cfg.BackoffJitter)
		h.inv = HostInventory{Host: name, URI: s, State: HostConnecting}
		h.sum = HostSummary{Host: name, URI: s, State: HostConnecting}
		sh.hosts[name] = h
		r.order = append(r.order, name)
		r.sums = append(r.sums, h.sum)
	}
	return r, nil
}

// hostName derives a stable human-readable name for a host URI:
// host[:port] for TCP, the socket file's base name for unix sockets,
// else a positional fallback.
func hostName(u *uri.URI, idx int) string {
	if u.Host != "" {
		if u.Port != 0 {
			return fmt.Sprintf("%s:%d", u.Host, u.Port)
		}
		return u.Host
	}
	if sock, ok := u.Param("socket"); ok {
		base := path.Base(sock)
		if ext := path.Ext(base); ext != "" {
			base = base[:len(base)-len(ext)]
		}
		if base != "" && base != "." && base != "/" {
			return base
		}
	}
	return fmt.Sprintf("host%d", idx)
}

// lookup finds a host record by name through its shard.
func (r *Registry) lookup(name string) *host {
	sh := &r.shards[shardFor(name)]
	sh.mu.RLock()
	h := sh.hosts[name]
	sh.mu.RUnlock()
	return h
}

// Start launches the dispatcher and the bounded worker pool, and queues
// every host for an immediate first connection attempt.
func (r *Registry) Start() {
	fleetHostsKnown.Add(int64(len(r.order)))
	now := r.now()
	r.qmu.Lock()
	for _, name := range r.order {
		h := r.lookup(name)
		h.due = now
		heap.Push(&r.queue, h)
	}
	r.qmu.Unlock()
	r.wg.Add(1)
	go r.dispatch()
	workers := r.cfg.Workers
	if workers > len(r.order) {
		workers = len(r.order)
	}
	for i := 0; i < workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
}

// Close tears down every connection and stops the workers.
func (r *Registry) Close() {
	r.qmu.Lock()
	if r.closed {
		r.qmu.Unlock()
		return
	}
	r.closed = true
	r.qmu.Unlock()
	close(r.stop)
	r.wg.Wait()
	fleetHostsKnown.Add(-int64(len(r.order)))
	for _, name := range r.order {
		h := r.lookup(name)
		h.mu.Lock()
		if h.conn != nil {
			h.conn.Close() //nolint:errcheck
			h.conn = nil
		}
		if h.watch != nil {
			h.watch.Close() //nolint:errcheck
			h.watch = nil
		}
		h.watching = false
		if h.state == HostUp {
			fleetHostsUp.Add(-1)
		}
		h.state = HostDown
		h.inv.State = HostDown
		h.sum.State = HostDown
		h.mu.Unlock()
	}
}

// dispatch owns the due-queue: it hands each host whose due time has
// arrived to a pool worker and sleeps until the next deadline
// otherwise. Hosts are out of the queue while a worker services them
// (heapIdx == -1) and re-enter when the worker is done, so a host is
// never serviced twice concurrently.
func (r *Registry) dispatch() {
	defer r.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		r.qmu.Lock()
		var next *host
		wait := time.Duration(-1)
		if len(r.queue) > 0 {
			now := r.now()
			if d := r.queue[0].due.Sub(now); d <= 0 {
				next = heap.Pop(&r.queue).(*host)
			} else {
				wait = d
			}
		}
		r.qmu.Unlock()
		if next != nil {
			select {
			case r.work <- next:
			case <-r.stop:
				return
			}
			continue
		}
		if wait < 0 {
			wait = time.Hour // empty queue: sleep until kicked
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-r.kick:
		case <-timer.C:
		case <-r.stop:
			return
		}
	}
}

// kickDispatch nudges the dispatcher after the queue head may have
// changed; it never blocks.
func (r *Registry) kickDispatch() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// requeue schedules the host's next service time. A poke that arrived
// while the host was being serviced pulls the deadline forward to now.
func (r *Registry) requeue(h *host, due time.Time) {
	r.qmu.Lock()
	if r.closed {
		r.qmu.Unlock()
		return
	}
	if h.poked {
		h.poked = false
		now := r.now()
		if due.After(now) {
			due = now
		}
	}
	h.due = due
	if h.heapIdx < 0 {
		heap.Push(&r.queue, h)
	} else {
		heap.Fix(&r.queue, h.heapIdx)
	}
	r.qmu.Unlock()
	r.kickDispatch()
}

// pokeHost requests an immediate refresh of the host: if it is queued,
// its deadline moves to now; if a worker is servicing it, the worker
// requeues it immediately when done. Callers must not block (event
// delivery goroutines land here).
func (r *Registry) pokeHost(h *host) {
	r.qmu.Lock()
	if r.closed {
		r.qmu.Unlock()
		return
	}
	if h.heapIdx < 0 {
		h.poked = true
		r.qmu.Unlock()
		return
	}
	now := r.now()
	if h.due.After(now) {
		h.due = now
		heap.Fix(&r.queue, h.heapIdx)
	}
	r.qmu.Unlock()
	r.kickDispatch()
}

// worker services hosts handed out by the dispatcher: one connection
// attempt or one inventory refresh per turn, then the host goes back in
// the queue with its next deadline.
func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		select {
		case h := <-r.work:
			r.requeue(h, r.service(h))
		case <-r.stop:
			return
		}
	}
}

// service performs one unit of attention for the host and returns when
// it next needs any: PollInterval after a good refresh, now for an
// immediate reconnect after a freshly detected failure, or the jittered
// backoff delay while the daemon stays unreachable.
func (r *Registry) service(h *host) time.Time {
	h.mu.Lock()
	conn := h.conn
	up := h.state == HostUp
	watching := h.watching
	h.mu.Unlock()

	if up && conn != nil {
		if watching {
			return r.serviceWatch(h, conn)
		}
		err := r.refresh(h, conn)
		if err == nil {
			return r.now().Add(r.cfg.PollInterval)
		}
		if core.IsCode(err, core.ErrOverloaded) {
			// The daemon is alive but shedding our class: admission
			// rejected the sweep before dispatch. Tearing down the
			// connection would only add reconnect load to an overloaded
			// host — keep it up and poll again after the server's hint.
			return r.overloadDelay(h, err)
		}
		if core.IsRetryable(err) || core.IsCode(err, core.ErrConnectionClosed) {
			conn.Close() //nolint:errcheck
			r.setDown(h, err)
			// Reconnect immediately once: the daemon may have bounced.
			return r.now()
		}
		// Transient operation error (e.g. racing undefine): keep the
		// host up, try again next tick.
		r.log.Warnf("fleet", "host %s: inventory refresh: %v", h.name, err)
		return r.now().Add(r.cfg.PollInterval)
	}

	conn, err := core.Open(h.uri)
	if err != nil {
		r.setDown(h, err)
		fleetReconnects.Inc()
		return r.now().Add(r.jittered(&h.bo))
	}
	h.bo.reset()
	r.setUp(h, conn)
	if err := r.startWatch(h, conn); err != nil {
		// Subscribing to events failed outright: the transport is
		// already suspect, so treat it like a failed connect instead of
		// running blind on a connection that just dropped a call.
		conn.Close() //nolint:errcheck
		r.setDown(h, err)
		return r.now().Add(r.jittered(&h.bo))
	}
	if err := r.refresh(h, conn); err != nil && core.IsRetryable(err) {
		if core.IsCode(err, core.ErrOverloaded) {
			return r.overloadDelay(h, err)
		}
		conn.Close() //nolint:errcheck
		r.setDown(h, err)
		return r.now().Add(r.jittered(&h.bo))
	}
	return r.now().Add(r.cfg.PollInterval)
}

// overloadDelay schedules the host's next attention after an admission
// rejection: the later of the server's retry-after hint and the normal
// poll interval. The host stays up — cached state keeps serving reads.
func (r *Registry) overloadDelay(h *host, err error) time.Time {
	fleetOverloadBackoffs.Inc()
	d := core.RetryAfterOf(err)
	if d < r.cfg.PollInterval {
		d = r.cfg.PollInterval
	}
	r.log.Warnf("fleet", "host %s: overloaded, backing off %v: %v", h.name, d, err)
	return r.now().Add(d)
}

// jittered draws the host's next backoff delay using the registry's
// seeded PRNG.
func (r *Registry) jittered(bo *backoffTimer) time.Duration {
	r.rngMu.Lock()
	f := r.rng.Float64()
	r.rngMu.Unlock()
	return bo.next(f)
}

// readAttempts bounds how often a read-only inventory call is retried
// when it fails with a transient transport error (a dropped frame, a
// per-call deadline). One lost frame must not condemn a healthy host;
// a genuinely dead connection fails fast and non-retryably, so the
// retries cost nothing there.
const readAttempts = 3

func retryRead[T any](f func() (T, error)) (out T, err error) {
	for i := 0; i < readAttempts; i++ {
		out, err = f()
		if err == nil || !core.IsRetryable(err) {
			return out, err
		}
		if core.IsCode(err, core.ErrOverloaded) {
			// Admission rejection: hot-retrying would spend the host's
			// tokens faster; surface it so the poll loop backs off.
			return out, err
		}
	}
	return out, err
}

// refresh collects one inventory snapshot over the given connection.
// Hosts whose driver implements BulkMonitor answer in a single round
// trip (NodeInventory); older daemons answer ErrNoSupport once and the
// sweep falls back to the per-domain loop.
func (r *Registry) refresh(h *host, conn *core.Connect) error {
	fleetPolls.Inc()
	r.nSweeps.Add(1)
	h.mu.Lock()
	gen0 := h.patchGen
	h.mu.Unlock()
	d := conn.Driver()
	h.sweepMu.Lock()
	node, records, err := r.collectInventory(d, &h.sweep)
	h.sweepMu.Unlock()
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.inv = HostInventory{
		Host: h.name, URI: h.uri, State: h.state, DriverType: h.inv.DriverType,
		Node: node, Domains: records, Gen: h.inv.Gen + 1, CollectedAt: time.Now(),
	}
	h.recIdx = nil // sweep replaced the record slice wholesale
	h.sum = h.inv.Summary()
	r.publishSum(h)
	// A watch event patched the cache while the sweep was in flight: the
	// snapshot just installed may predate that patch, so owe the host
	// one more sweep rather than trust it.
	raced := h.watching && h.patchGen != gen0
	if raced {
		h.needResync = true
	}
	h.mu.Unlock()
	if raced {
		r.pokeHost(h)
	}
	return nil
}

// publishSum mirrors h.sum into the fleet-wide summary cache. The
// caller holds h.mu, which orders cache writes for the host; the lock
// order is always h.mu then sumMu.
func (r *Registry) publishSum(h *host) {
	r.sumMu.Lock()
	r.sums[h.idx] = h.sum
	r.sumMu.Unlock()
}

// collectInventory gathers the node summary and domain records, bulk
// first, falling back to the classic NodeInfo + list + N×DomainInfo
// sweep when the driver (or its remote peer) lacks the bulk procedures.
func (r *Registry) collectInventory(d core.DriverConn, scratch *core.NodeInventory) (core.NodeInfo, []DomainRecord, error) {
	if bi, ok := d.(core.BulkMonitorInto); ok && scratch != nil {
		_, err := retryRead(func() (struct{}, error) {
			return struct{}{}, bi.NodeInventoryInto(scratch)
		})
		if err == nil {
			fleetBulkPolls.Inc()
			return scratch.Node, recordsFromRows(scratch.Domains), nil
		}
		if !core.IsCode(err, core.ErrNoSupport) {
			return core.NodeInfo{}, nil, err
		}
		fleetBulkFallbacks.Inc()
	} else if bm, ok := d.(core.BulkMonitor); ok {
		inv, err := retryRead(bm.NodeInventory)
		if err == nil {
			fleetBulkPolls.Inc()
			return inv.Node, recordsFromRows(inv.Domains), nil
		}
		if !core.IsCode(err, core.ErrNoSupport) {
			return core.NodeInfo{}, nil, err
		}
		fleetBulkFallbacks.Inc()
	}
	node, err := retryRead(d.NodeInfo)
	if err != nil {
		return core.NodeInfo{}, nil, err
	}
	names, err := retryRead(func() ([]string, error) { return d.ListDomains(0) })
	if err != nil {
		return core.NodeInfo{}, nil, err
	}
	records := make([]DomainRecord, 0, len(names))
	for _, name := range names {
		info, err := retryRead(func() (core.DomainInfo, error) { return d.DomainInfo(name) })
		if err != nil {
			if core.IsCode(err, core.ErrNoDomain) {
				continue // undefined between list and info
			}
			return core.NodeInfo{}, nil, err
		}
		records = append(records, DomainRecord{
			Name: name, State: info.State, MemKiB: info.MemKiB,
			MaxMemKiB: info.MaxMemKiB, VCPUs: info.VCPUs, CPUTimeNs: info.CPUTimeNs,
		})
	}
	return node, records, nil
}

// recordsFromRows converts bulk monitoring rows to inventory records.
func recordsFromRows(rows []core.NamedDomainInfo) []DomainRecord {
	records := make([]DomainRecord, len(rows))
	for i, row := range rows {
		records[i] = DomainRecord{
			Name: row.Name, State: row.Info.State, MemKiB: row.Info.MemKiB,
			MaxMemKiB: row.Info.MaxMemKiB, VCPUs: row.Info.VCPUs, CPUTimeNs: row.Info.CPUTimeNs,
		}
	}
	return records
}

func (r *Registry) setUp(h *host, conn *core.Connect) {
	drvType, _ := conn.Type()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostUp {
		fleetHostsUp.Add(1)
	}
	h.conn = conn
	h.state = HostUp
	h.lastErr = nil
	h.inv.State = HostUp
	h.inv.DriverType = drvType
	h.sum.State = HostUp
	h.sum.DriverType = drvType
	r.publishSum(h)
	r.log.Infof("fleet", "host %s up (%s driver)", h.name, drvType)
}

func (r *Registry) setDown(h *host, err error) {
	h.mu.Lock()
	if h.state == HostUp {
		fleetHostsUp.Add(-1)
		r.log.Warnf("fleet", "host %s down: %v", h.name, err)
	}
	h.conn = nil
	h.state = HostDown
	h.lastErr = err
	h.inv.State = HostDown
	h.inv.Domains = nil
	watch := h.watch
	h.watch = nil
	h.watching = false
	h.needResync = false
	h.pending = nil
	h.recIdx = nil
	h.sum = h.inv.Summary()
	r.publishSum(h)
	h.mu.Unlock()
	if watch != nil {
		// Best-effort: the transport underneath is usually already dead,
		// and a closed stream stops delivering stale callbacks.
		watch.Close() //nolint:errcheck
	}
}

// markDown records an externally observed host failure (a placement or
// migration call failing retryably): the connection is closed so the
// host's next poll notices and enters reconnect.
func (r *Registry) markDown(name string, err error) {
	h := r.lookup(name)
	if h == nil {
		return
	}
	h.mu.Lock()
	conn := h.conn
	h.mu.Unlock()
	if conn != nil {
		conn.Close() //nolint:errcheck
	}
	r.pokeHost(h)
	_ = err
}

// notePlacement folds a just-placed domain into the host's cached
// summary, so scheduling pressure is visible to the very next placement
// decision, and pokes the host's poll so the authoritative per-domain
// inventory follows asynchronously. The scheduler never waits on a
// refresh round trip; callers that need the full inventory current call
// RefreshNow themselves.
func (r *Registry) notePlacement(name string, req Request) {
	h := r.lookup(name)
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sum.AllocMemKiB += req.MemKiB
	h.sum.AllocVCPUs += req.VCPUs
	h.sum.ActiveDomains++
	h.sum.TotalDomains++
	r.publishSum(h)
	h.mu.Unlock()
	r.pokeHost(h)
}

// Host returns the named host's live connection, or a retryable error
// when the host is not up.
func (r *Registry) Host(name string) (*core.Connect, error) {
	h := r.lookup(name)
	if h == nil {
		return nil, core.Errorf(core.ErrInvalidArg, "fleet: unknown host %q", name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != HostUp || h.conn == nil {
		return nil, core.Errorf(core.ErrHostUnreachable, "fleet: host %q is %s", h.name, h.state)
	}
	return h.conn, nil
}

// Hosts lists the configured host names in configuration order.
func (r *Registry) Hosts() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Status reports per-host health. It reads the cached summaries, so at
// fleet scale it stays O(hosts) with no per-domain work.
func (r *Registry) Status() []HostStatus {
	out := make([]HostStatus, 0, len(r.order))
	for _, name := range r.order {
		h := r.lookup(name)
		h.mu.Lock()
		st := HostStatus{
			Name: h.name, URI: h.uri, State: h.state,
			Domains: h.sum.ActiveDomains, MemLoad: h.sum.MemLoad(), CPULoad: h.sum.CPULoad(),
		}
		if h.lastErr != nil {
			st.Err = h.lastErr.Error()
		}
		h.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Inventory snapshots every host's cached inventory, in configuration
// order. This deep-copies every domain record; scale-sensitive callers
// (the scheduler, status displays) use Summaries instead.
func (r *Registry) Inventory() []HostInventory {
	out := make([]HostInventory, 0, len(r.order))
	for _, name := range r.order {
		h := r.lookup(name)
		h.mu.Lock()
		out = append(out, h.inv.clone())
		h.mu.Unlock()
	}
	return out
}

// Summaries snapshots the compact per-host aggregates, in configuration
// order: one lock and one memcpy of the score cache, however many
// domains the fleet carries.
func (r *Registry) Summaries() []HostSummary {
	r.sumMu.RLock()
	out := append([]HostSummary(nil), r.sums...)
	r.sumMu.RUnlock()
	return out
}

// RefreshNow synchronously refreshes the named hosts (all when none are
// given), so callers that just mutated the fleet observe their writes.
func (r *Registry) RefreshNow(names ...string) {
	if len(names) == 0 {
		names = r.order
	}
	for _, name := range names {
		h := r.lookup(name)
		if h == nil {
			continue
		}
		h.mu.Lock()
		conn := h.conn
		up := h.state == HostUp
		h.mu.Unlock()
		if up && conn != nil {
			err := r.refresh(h, conn)
			if err != nil && core.IsRetryable(err) && !core.IsCode(err, core.ErrOverloaded) {
				r.markDown(name, err)
			}
		}
	}
}

// WaitSettled blocks until every host has resolved its first connection
// attempt (up or down) or the timeout elapses; it returns the number of
// hosts up.
func (r *Registry) WaitSettled(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		settled, up := true, 0
		for _, name := range r.order {
			h := r.lookup(name)
			h.mu.Lock()
			switch h.state {
			case HostUp:
				up++
			case HostConnecting:
				settled = false
			}
			h.mu.Unlock()
		}
		if settled || time.Now().After(deadline) {
			return up
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WaitHostState blocks until the named host reaches the wanted state,
// reporting whether it did before the timeout.
func (r *Registry) WaitHostState(name string, want HostState, timeout time.Duration) bool {
	h := r.lookup(name)
	if h == nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		got := h.state
		h.mu.Unlock()
		if got == want {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sortHostsByName is a small shared helper for deterministic output.
func sortHostsByName(invs []HostInventory) {
	sort.Slice(invs, func(i, j int) bool { return invs[i].Host < invs[j].Host })
}

// dueHeap is a min-heap of hosts ordered by their next service time.
type dueHeap []*host

func (q dueHeap) Len() int            { return len(q) }
func (q dueHeap) Less(i, j int) bool  { return q[i].due.Before(q[j].due) }
func (q dueHeap) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].heapIdx = i; q[j].heapIdx = j }
func (q *dueHeap) Push(x interface{}) { h := x.(*host); h.heapIdx = len(*q); *q = append(*q, h) }
func (q *dueHeap) Pop() interface{} {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	h.heapIdx = -1
	*q = old[:n-1]
	return h
}
