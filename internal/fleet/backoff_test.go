package fleet

import (
	"math/rand"
	"testing"
	"time"
)

// TestFleetBackoffDeterministic pins down the reconnect pacing without
// a single sleep: the backoff timer is pure, so a fake clock plus a
// seeded PRNG determine the entire attempt trajectory exactly.
func TestFleetBackoffDeterministic(t *testing.T) {
	t.Run("doubling-no-jitter", func(t *testing.T) {
		bo := newBackoffTimer(100*time.Millisecond, time.Second, 0)
		want := []time.Duration{
			100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
			800 * time.Millisecond, time.Second, time.Second, // capped
		}
		for i, w := range want {
			if got := bo.next(0.5); got != w { // rnd ignored at jitter 0
				t.Fatalf("attempt %d: delay = %v, want %v", i, got, w)
			}
		}
		bo.reset()
		if got := bo.next(0); got != 100*time.Millisecond {
			t.Fatalf("after reset: delay = %v, want 100ms", got)
		}
	})

	t.Run("jitter-stretch-bounds", func(t *testing.T) {
		bo := newBackoffTimer(100*time.Millisecond, time.Second, 0.2)
		// rnd = 0 leaves the base delay; rnd -> 1 stretches by up to 20%.
		if got := bo.next(0); got != 100*time.Millisecond {
			t.Fatalf("rnd=0: delay = %v, want base 100ms", got)
		}
		if got, want := bo.next(1), 240*time.Millisecond; got != want {
			t.Fatalf("rnd=1: delay = %v, want %v (200ms + 20%%)", got, want)
		}
	})

	t.Run("seeded-schedule-exact", func(t *testing.T) {
		// The materialized schedule is a pure function of (clock, seed):
		// replay the same uniform samples through the stretch formula and
		// the attempt times must match to the nanosecond.
		now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
		const n = 8
		samples := make([]float64, n)
		rnd := rand.New(rand.NewSource(42)) //nolint:gosec // deterministic test
		for i := range samples {
			samples[i] = rnd.Float64()
		}

		bo := newBackoffTimer(100*time.Millisecond, 2*time.Second, 0.2)
		replay := rand.New(rand.NewSource(42)) //nolint:gosec // deterministic test
		got := bo.schedule(now, n, replay.Float64)

		want := make([]time.Time, 0, n)
		cur, tcur := 100*time.Millisecond, now
		for i := 0; i < n; i++ {
			d := cur + time.Duration(float64(cur)*0.2*samples[i])
			tcur = tcur.Add(d)
			want = append(want, tcur)
			if cur *= 2; cur > 2*time.Second {
				cur = 2 * time.Second
			}
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("attempt %d at %v, want %v", i, got[i], want[i])
			}
		}
		// Same seed, same clock: the whole trajectory reproduces.
		bo2 := newBackoffTimer(100*time.Millisecond, 2*time.Second, 0.2)
		again := bo2.schedule(now, n, rand.New(rand.NewSource(42)).Float64) //nolint:gosec
		for i := range got {
			if !got[i].Equal(again[i]) {
				t.Fatalf("attempt %d not reproducible: %v vs %v", i, got[i], again[i])
			}
		}
	})

	t.Run("degenerate-config-clamped", func(t *testing.T) {
		bo := newBackoffTimer(-5, -10, -1)
		if d := bo.next(0.9); d <= 0 {
			t.Fatalf("clamped timer produced non-positive delay %v", d)
		}
	})
}

// TestFleetRegistryBackoffSchedule checks the registry wires its config
// into the same timer the deterministic test exercises: a registry host
// created from Config carries min/max/jitter as configured.
func TestFleetRegistryBackoffSchedule(t *testing.T) {
	cfg := fastConfig("test+tcp://10.0.0.1:16509/")
	cfg.BackoffJitter = 0 // exact doubling
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := reg.lookup(reg.Hosts()[0])
	if h == nil {
		t.Fatal("host not found")
	}
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	got := h.bo.schedule(now, 5, func() float64 { return 0 })
	want := []time.Duration{10, 30, 70, 150, 250} // cumulative 10,20,40,80,100ms
	for i, w := range want {
		if exp := now.Add(w * time.Millisecond); !got[i].Equal(exp) {
			t.Fatalf("attempt %d at %v, want %v", i, got[i], exp)
		}
	}
}
