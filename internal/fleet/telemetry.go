package fleet

import "repro/internal/telemetry"

// Fleet-controller metrics. They live in the Default registry so they
// surface through every existing export path (the Prometheus text
// endpoint, `virtadminx metrics` against an in-process daemon, and
// telemetry.Default.Snapshot()) without new plumbing.
var (
	fleetPlacements        = telemetry.Default.Counter("fleet_placements_total")
	fleetPlacementRetries  = telemetry.Default.Counter("fleet_placement_retries_total")
	fleetPlacementFailures = telemetry.Default.Counter("fleet_placement_failures_total")
	fleetPlacementLatency  = telemetry.Default.Histogram("fleet_placement_seconds")

	fleetHostsUp    = telemetry.Default.Gauge("fleet_hosts_up")
	fleetHostsKnown = telemetry.Default.Gauge("fleet_hosts_known")
	fleetReconnects = telemetry.Default.Counter("fleet_reconnects_total")

	fleetRebalanceMigrations = telemetry.Default.Counter("fleet_rebalance_migrations_total")
	fleetRebalanceFailures   = telemetry.Default.Counter("fleet_rebalance_failures_total")
	fleetPolls               = telemetry.Default.Counter("fleet_inventory_polls_total")
	fleetBulkPolls           = telemetry.Default.Counter("fleet_inventory_bulk_polls_total")
	fleetBulkFallbacks       = telemetry.Default.Counter("fleet_inventory_bulk_fallbacks_total")

	// Polls deferred because the host's daemon answered ErrOverloaded:
	// the host stays up and the registry backs off by the server's
	// retry-after hint instead of tearing the connection down.
	fleetOverloadBackoffs = telemetry.Default.Counter("fleet_overload_backoffs_total")

	// Watch-driven reconciliation (watch.go).
	fleetWatchEvents  = telemetry.Default.Counter("fleet_watch_events_total")
	fleetWatchGaps    = telemetry.Default.Counter("fleet_watch_gaps_total")
	fleetWatchResyncs = telemetry.Default.Counter("watch_resyncs_total")
	fleetWatchFetches = telemetry.Default.Counter("fleet_watch_fetches_total")
)
