package fleet

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/migrate"
)

// Move is one planned migration: a domain leaving a hot host for a
// colder one.
type Move struct {
	Domain string
	From   string
	To     string
	MemKiB uint64
	VCPUs  int
}

// RebalanceOptions tunes a rebalancing pass.
type RebalanceOptions struct {
	// SkewThreshold is the load spread (hottest minus coldest host) the
	// pass tries to get under. Default 0.2.
	SkewThreshold float64
	// MaxMigrations caps the number of moves in one pass. Default 16.
	MaxMigrations int
	// Concurrency bounds how many migrations run at once. Default 1:
	// migrations contend for network bandwidth, so serial is the safe
	// default. Default 1.
	Concurrency int
	// Drain names a host to empty completely (maintenance mode); when
	// set, every active domain on it is moved off regardless of skew.
	Drain string
	// Migrate carries through to the live-migration engine.
	Migrate core.MigrateOptions
	// OnMigration, when set, observes each finished migration.
	OnMigration func(MigrationRecord)
}

func (o *RebalanceOptions) applyDefaults() {
	if o.SkewThreshold <= 0 {
		o.SkewThreshold = 0.2
	}
	if o.MaxMigrations <= 0 {
		o.MaxMigrations = 16
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
}

// MigrationRecord is the outcome of one executed move.
type MigrationRecord struct {
	Domain string
	From   string
	To     string
	Result migrate.Result
	Err    error
}

// RebalanceResult summarizes a rebalancing pass.
type RebalanceResult struct {
	SkewBefore float64
	SkewAfter  float64
	Planned    []Move
	Migrations []MigrationRecord
	Converged  bool // the simulated plan reached the threshold (or emptied the drain host)
}

// planHost is the planner's working state for one host: the compact
// summary aggregates (kept incrementally current as simulated moves
// apply) plus the domain records needed to pick what to move. Load and
// free-memory reads are O(1), so each planning step costs O(hosts) +
// O(domains on the host being drained) instead of rescanning every
// domain record in the fleet per comparison.
type planHost struct {
	sum     HostSummary
	domains []DomainRecord
}

func (p *planHost) load() float64   { return p.sum.Load() }
func (p *planHost) freeMem() uint64 { return p.sum.FreeMemKiB() }
func (p *planHost) up() bool        { return p.sum.State == HostUp }

// loadWith projects the host's load with an extra active domain placed
// on it — the arithmetic form of "clone, append, recompute".
func (p *planHost) loadWith(memKiB uint64, vcpus int) float64 {
	after := p.sum
	after.AllocMemKiB += memKiB
	after.AllocVCPUs += vcpus
	return after.Load()
}

// planSkew is Skew over the planner's incrementally maintained state.
func planSkew(sim []planHost) float64 {
	min, max, n := 0.0, 0.0, 0
	for i := range sim {
		if !sim[i].up() {
			continue
		}
		l := sim[i].load()
		if n == 0 || l < min {
			min = l
		}
		if n == 0 || l > max {
			max = l
		}
		n++
	}
	if n < 2 {
		return 0
	}
	return max - min
}

// PlanRebalance computes the moves that bring a fleet snapshot under
// the skew threshold (or drain the named host), simulating each move on
// compact per-host state. It is pure — no connections are touched — so
// the planner can be unit-tested and benchmarked on synthetic fleets;
// the live Rebalance path executes exactly the plan this returns.
func PlanRebalance(invs []HostInventory, opts RebalanceOptions) ([]Move, float64, float64, bool) {
	opts.applyDefaults()
	sim := make([]planHost, len(invs))
	for i := range invs {
		sim[i].sum = invs[i].Summary()
		sim[i].domains = append([]DomainRecord(nil), invs[i].Domains...)
	}
	skewBefore := planSkew(sim)
	var moves []Move
	converged := false
	for len(moves) < opts.MaxMigrations {
		var mv *Move
		if opts.Drain != "" {
			mv = planDrainMove(sim, opts.Drain)
			if mv == nil {
				// No move either because the drain host is empty (done) or
				// because no target can take what is left (stuck).
				converged = drainEmpty(sim, opts.Drain)
				break
			}
		} else {
			if planSkew(sim) <= opts.SkewThreshold {
				converged = true
				break
			}
			mv = planSkewMove(sim)
			if mv == nil {
				break // no move improves the spread
			}
		}
		applyMove(sim, *mv)
		moves = append(moves, *mv)
	}
	if opts.Drain == "" && planSkew(sim) <= opts.SkewThreshold {
		converged = true
	}
	return moves, skewBefore, planSkew(sim), converged
}

// drainEmpty reports whether the drain host has no active domains left
// in the simulated state (vacuously true for unknown hosts).
func drainEmpty(sim []planHost, drain string) bool {
	src := findHost(sim, drain)
	return src == nil || src.sum.ActiveDomains == 0
}

// planDrainMove picks the next domain to evacuate from the drain host:
// largest domain first, each to the least-loaded host that fits.
func planDrainMove(sim []planHost, drain string) *Move {
	src := findHost(sim, drain)
	if src == nil {
		return nil
	}
	var dom *DomainRecord
	for i := range src.domains {
		d := &src.domains[i]
		if !d.Active() {
			continue
		}
		if dom == nil || d.MemKiB > dom.MemKiB {
			dom = d
		}
	}
	if dom == nil {
		return nil
	}
	dst := pickTarget(sim, drain, dom.MemKiB)
	if dst == nil {
		return nil
	}
	return &Move{Domain: dom.Name, From: drain, To: dst.sum.Host, MemKiB: dom.MemKiB, VCPUs: dom.VCPUs}
}

// planSkewMove picks one move that narrows the load spread: the
// smallest active domain on the hottest host whose relocation to the
// coldest fitting host actually reduces skew.
func planSkewMove(sim []planHost) *Move {
	var hot *planHost
	for i := range sim {
		if !sim[i].up() {
			continue
		}
		if hot == nil || sim[i].load() > hot.load() {
			hot = &sim[i]
		}
	}
	if hot == nil {
		return nil
	}
	// Smallest first: small moves converge without overshooting (a big
	// domain bouncing between two hosts would thrash).
	var dom *DomainRecord
	for i := range hot.domains {
		d := &hot.domains[i]
		if !d.Active() {
			continue
		}
		if dom == nil || d.MemKiB < dom.MemKiB {
			dom = d
		}
	}
	if dom == nil {
		return nil
	}
	dst := pickTarget(sim, hot.sum.Host, dom.MemKiB)
	if dst == nil {
		return nil
	}
	// No-progress guard, judged pairwise: the destination must stay
	// strictly below where the source started, or the move just swaps
	// which host is hot (a giant domain bouncing between two hosts).
	// Judging the global spread instead would deadlock on ties — with
	// two equally hot hosts, no single move changes the global max.
	if dst.loadWith(dom.MemKiB, dom.VCPUs) >= hot.load() {
		return nil
	}
	return &Move{Domain: dom.Name, From: hot.sum.Host, To: dst.sum.Host,
		MemKiB: dom.MemKiB, VCPUs: dom.VCPUs}
}

// pickTarget returns the least-loaded up host (other than exclude) with
// enough free memory, or nil.
func pickTarget(sim []planHost, exclude string, memKiB uint64) *planHost {
	var best *planHost
	for i := range sim {
		ph := &sim[i]
		if !ph.up() || ph.sum.Host == exclude {
			continue
		}
		if ph.freeMem() < memKiB {
			continue
		}
		if best == nil || ph.load() < best.load() ||
			(ph.load() == best.load() && ph.sum.Host < best.sum.Host) {
			best = ph
		}
	}
	return best
}

// applyMove updates the simulated state as if the move completed,
// adjusting the summary aggregates in place.
func applyMove(sim []planHost, mv Move) {
	if src := findHost(sim, mv.From); src != nil {
		for i := range src.domains {
			if src.domains[i].Name == mv.Domain {
				if src.domains[i].Active() {
					src.sum.AllocMemKiB -= src.domains[i].MemKiB
					src.sum.AllocVCPUs -= src.domains[i].VCPUs
					src.sum.ActiveDomains--
				}
				src.sum.TotalDomains--
				src.domains = append(src.domains[:i], src.domains[i+1:]...)
				break
			}
		}
	}
	if dst := findHost(sim, mv.To); dst != nil {
		dst.domains = append(dst.domains, DomainRecord{
			Name: mv.Domain, State: core.DomainRunning, MemKiB: mv.MemKiB, VCPUs: mv.VCPUs,
		})
		dst.sum.AllocMemKiB += mv.MemKiB
		dst.sum.AllocVCPUs += mv.VCPUs
		dst.sum.ActiveDomains++
		dst.sum.TotalDomains++
	}
}

func findHost(sim []planHost, name string) *planHost {
	for i := range sim {
		if sim[i].sum.Host == name {
			return &sim[i]
		}
	}
	return nil
}

// Rebalance plans against the current inventory and executes the moves
// by live-migrating domains between daemons, at most opts.Concurrency at
// a time. Cancelling the context stops new moves from starting; moves
// already in flight run to completion so no domain is lost mid-copy.
func (r *Registry) Rebalance(ctx context.Context, opts RebalanceOptions) (RebalanceResult, error) {
	opts.applyDefaults()
	if opts.Drain != "" {
		found := false
		for _, name := range r.Hosts() {
			if name == opts.Drain {
				found = true
				break
			}
		}
		if !found {
			return RebalanceResult{}, core.Errorf(core.ErrInvalidArg,
				"fleet: unknown drain host %q", opts.Drain)
		}
	}
	r.RefreshNow()
	moves, skewBefore, _, converged := PlanRebalance(r.Inventory(), opts)
	res := RebalanceResult{SkewBefore: skewBefore, Planned: moves, Converged: converged}

	sem := make(chan struct{}, opts.Concurrency)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	cancelled := false
	for _, mv := range moves {
		if ctx.Err() != nil {
			cancelled = true
			break
		}
		select {
		case <-ctx.Done():
			cancelled = true
		case sem <- struct{}{}:
		}
		if cancelled {
			break
		}
		wg.Add(1)
		go func(mv Move) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := r.executeMove(ctx, mv, opts.Migrate)
			mu.Lock()
			res.Migrations = append(res.Migrations, rec)
			mu.Unlock()
			if opts.OnMigration != nil {
				opts.OnMigration(rec)
			}
		}(mv)
	}
	wg.Wait()

	touched := map[string]bool{}
	for _, rec := range res.Migrations {
		touched[rec.From] = true
		touched[rec.To] = true
	}
	names := make([]string, 0, len(touched))
	for name := range touched {
		names = append(names, name)
	}
	if len(names) > 0 {
		r.RefreshNow(names...)
	}
	res.SkewAfter = Skew(r.Inventory())
	if cancelled {
		res.Converged = false
		return res, ctx.Err()
	}
	for _, rec := range res.Migrations {
		if rec.Err != nil {
			res.Converged = false
		}
	}
	return res, nil
}

// executeMove drives one live migration between two fleet hosts. The
// rebalance context flows into the migration, so cancelling a rebalance
// aborts in-flight transfers cleanly (sources resume, destinations are
// undone).
func (r *Registry) executeMove(ctx context.Context, mv Move, opts core.MigrateOptions) MigrationRecord {
	rec := MigrationRecord{Domain: mv.Domain, From: mv.From, To: mv.To}
	srcConn, err := r.Host(mv.From)
	if err != nil {
		rec.Err = err
		fleetRebalanceFailures.Inc()
		return rec
	}
	dstConn, err := r.Host(mv.To)
	if err != nil {
		rec.Err = err
		fleetRebalanceFailures.Inc()
		return rec
	}
	dom, err := srcConn.LookupDomain(mv.Domain)
	if err != nil {
		rec.Err = err
		fleetRebalanceFailures.Inc()
		return rec
	}
	opts.UndefineSource = true
	rec.Result, rec.Err = migrate.MigrateContext(ctx, dom, dstConn, opts)
	if rec.Err != nil {
		fleetRebalanceFailures.Inc()
		r.log.Warnf("fleet", "migrate %s %s->%s: %v", mv.Domain, mv.From, mv.To, rec.Err)
	} else {
		fleetRebalanceMigrations.Inc()
		r.log.Infof("fleet", "migrated %s %s->%s in %.1f ms (downtime %.2f ms)",
			mv.Domain, mv.From, mv.To, rec.Result.TotalTimeMs(), rec.Result.DowntimeMs())
	}
	return rec
}
