package fleet

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fleetActive sums ActiveDomains across the cached summaries.
func fleetActive(r *Registry) int {
	n := 0
	for _, s := range r.Summaries() {
		n += s.ActiveDomains
	}
	return n
}

// TestWatchIdleTraffic is the acceptance test for the watch-mode
// steady state: once a fleet has settled and its domains are known, a
// quiesced registry performs zero inventory sweeps and zero targeted
// fetches across a window many poll intervals long — the service turns
// still run, but they only check client-side transport liveness.
func TestWatchIdleTraffic(t *testing.T) {
	registerDrivers(t)
	dir := t.TempDir()
	const nHosts = 3
	var uris []string
	for i := 0; i < nHosts; i++ {
		sock := filepath.Join(dir, fmt.Sprintf("idle%d.sock", i))
		startFleetDaemon(t, sock)
		uris = append(uris, emptyURI(sock))
	}
	reg, err := New(fastConfig(uris...))
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != nHosts {
		t.Fatalf("%d hosts up, want %d", up, nHosts)
	}

	// Put one domain on every host through the registry's own
	// connections, then let the events land and the pending fetches
	// drain.
	for i, name := range reg.Hosts() {
		conn, err := reg.Host(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.CreateDomainXML(testXML(fmt.Sprintf("idle%d", i), 256, 1)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "seeded domains visible", func() bool {
		return fleetActive(reg) == nHosts
	})
	time.Sleep(5 * reg.cfg.PollInterval) // drain any owed fetch/resync turns

	base := reg.WatchStats()
	time.Sleep(20 * reg.cfg.PollInterval) // the idle window under test
	got := reg.WatchStats()

	if got.Sweeps != base.Sweeps {
		t.Errorf("idle fleet performed %d inventory sweeps over %v",
			got.Sweeps-base.Sweeps, 20*reg.cfg.PollInterval)
	}
	if got.TargetedFetches != base.TargetedFetches {
		t.Errorf("idle fleet performed %d targeted fetches", got.TargetedFetches-base.TargetedFetches)
	}
	for _, st := range reg.Status() {
		if st.State != HostUp {
			t.Errorf("host %s is %s after the idle window", st.Name, st.State)
		}
	}
	if fleetActive(reg) != nHosts {
		t.Errorf("cached state decayed while idle: %d active domains, want %d",
			fleetActive(reg), nHosts)
	}
}

// TestWatchOneEventHop verifies propagation latency in event hops: a
// lifecycle change on a daemon must reach the registry's summaries via
// the watch stream alone — no sweep and no targeted fetch in between.
func TestWatchOneEventHop(t *testing.T) {
	registerDrivers(t)
	sock := filepath.Join(t.TempDir(), "hop.sock")
	startFleetDaemon(t, sock)
	reg, err := New(fastConfig(emptyURI(sock)))
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != 1 {
		t.Fatalf("%d hosts up, want 1", up)
	}
	conn, err := reg.Host(reg.Hosts()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.CreateDomainXML(testXML("hop0", 512, 2)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "domain visible", func() bool { return fleetActive(reg) == 1 })
	time.Sleep(5 * reg.cfg.PollInterval) // quiesce: drain fetches and owed sweeps

	base := reg.WatchStats()
	dom, err := conn.LookupDomain("hop0")
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.Destroy(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stop to propagate", func() bool { return fleetActive(reg) == 0 })
	got := reg.WatchStats()

	if got.Sweeps != base.Sweeps {
		t.Errorf("change propagated via %d sweeps, want pure event patch", got.Sweeps-base.Sweeps)
	}
	if got.TargetedFetches != base.TargetedFetches {
		t.Errorf("change propagated via %d targeted fetches, want pure event patch",
			got.TargetedFetches-base.TargetedFetches)
	}
	if got.WatchEvents == base.WatchEvents {
		t.Error("no watch event recorded for the lifecycle change")
	}
	// The allocation must have been rolled out of the summary, not just
	// the count.
	sum := reg.Summaries()[0]
	if sum.AllocMemKiB != 0 || sum.AllocVCPUs != 0 || sum.TotalDomains != 1 {
		t.Errorf("summary after stop: alloc=%dKiB/%dvcpu total=%d, want 0/0/1",
			sum.AllocMemKiB, sum.AllocVCPUs, sum.TotalDomains)
	}
}

// TestChaosWatchUnderFrameDrop churns a three-daemon watch-driven
// fleet while 10% of server-side event sends are silently dropped
// (fixed seed). Dropped frames must surface as sequence gaps and be
// repaired by bulk resync sweeps: once the churn stops, the cached
// inventory converges to the daemons' authoritative state with zero
// lost domains.
func TestChaosWatchUnderFrameDrop(t *testing.T) {
	registerDrivers(t)
	dir := t.TempDir()
	const nHosts, perHost, rounds = 3, 4, 5
	var uris []string
	for i := 0; i < nHosts; i++ {
		sock := filepath.Join(dir, fmt.Sprintf("drop%d.sock", i))
		startFleetDaemon(t, sock)
		uris = append(uris, emptyURI(sock))
	}
	cfg := fastConfig(uris...)
	cfg.Seed = 11
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != nHosts {
		t.Fatalf("%d hosts up, want %d", up, nHosts)
	}
	domName := func(hi, di int) string { return fmt.Sprintf("cw%d-%02d", hi, di) }
	for hi, name := range reg.Hosts() {
		conn, err := reg.Host(name)
		if err != nil {
			t.Fatal(err)
		}
		for di := 0; di < perHost; di++ {
			if _, err := conn.CreateDomainXML(testXML(domName(hi, di), 256, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, 10*time.Second, "seed to land", func() bool {
		return fleetActive(reg) == nHosts*perHost
	})

	// Arm the fault plane: every tenth watch-stream send (events and
	// heartbeats alike) vanishes before reaching the wire.
	faultpoint.Default.Set("watch.send", faultpoint.Spec{
		Mode: faultpoint.ModeDrop, Prob: 0.10,
	})
	faultpoint.Default.Arm(11)
	defer faultpoint.Default.Disarm()

	// Churn: suspend/resume every domain repeatedly. The calls
	// themselves are unfaulted — only their event notifications drop —
	// so every operation succeeds while the registry's picture decays.
	for round := 0; round < rounds; round++ {
		for hi, name := range reg.Hosts() {
			conn, err := reg.Host(name)
			if err != nil {
				t.Fatal(err)
			}
			for di := 0; di < perHost; di++ {
				dom, err := conn.LookupDomain(domName(hi, di))
				if err != nil {
					t.Fatal(err)
				}
				if err := dom.Suspend(); err != nil {
					t.Fatal(err)
				}
				if err := dom.Resume(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	fires := faultpoint.Default.Fires("watch.send")
	faultpoint.Default.Disarm()
	if fires == 0 {
		t.Fatal("no watch sends dropped — the chaos pass tested nothing")
	}

	// One clean lifecycle pulse per host: its sequence number reveals
	// any tail still missing from the churn phase, turning silent loss
	// into a gap and a resync.
	for hi, name := range reg.Hosts() {
		conn, err := reg.Host(name)
		if err != nil {
			t.Fatal(err)
		}
		dom, err := conn.LookupDomain(domName(hi, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := dom.Suspend(); err != nil {
			t.Fatal(err)
		}
		if err := dom.Resume(); err != nil {
			t.Fatal(err)
		}
	}

	// Converge: every cached record running again, none lost.
	waitFor(t, 20*time.Second, "fleet to converge after frame drops", func() bool {
		total, running := 0, 0
		for _, inv := range reg.Inventory() {
			total += len(inv.Domains)
			for _, d := range inv.Domains {
				if d.State == core.DomainRunning {
					running++
				}
			}
		}
		return total == nHosts*perHost && running == nHosts*perHost
	})
	st := reg.WatchStats()
	t.Logf("chaos watch: fires=%d events=%d resyncs=%d sweeps=%d fetches=%d",
		fires, st.WatchEvents, st.Resyncs, st.Sweeps, st.TargetedFetches)
	if st.Resyncs == 0 {
		t.Error("no resync sweeps ran — dropped frames never surfaced as gaps")
	}
}
