package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
)

// FileConfig is the on-disk fleet controller configuration, read from a
// fleet.conf document in the same key = value dialect as the daemon's
// config (comments with '#', quoted strings, ["a", "b"] lists).
type FileConfig struct {
	Hosts          []string // daemon connection URIs
	PollIntervalMs int
	BackoffMinMs   int
	BackoffMaxMs   int
	BackoffJitter  float64 // reconnect jitter fraction, [0, 1]
	CallTimeoutMs  int     // per-call deadline on host URIs; 0 = driver default
	Policy         string  // "spread", "pack" or "weighted"

	RebalanceSkew          float64 // load spread that triggers rebalancing
	RebalanceMaxMigrations int
	RebalanceConcurrency   int

	MigrateBandwidthMBps uint64
	MigrateMaxDowntimeMs uint64
	MigrateStreams       int  // parallel transfer streams per migration; 0 = 1
	MigrateAutoConverge  bool // throttle source vCPUs when pre-copy cannot converge
	MigratePostCopy      bool // switch after one round, pull the rest on demand

	// migrateStreamsLine remembers the config line where migrate_streams
	// appeared, so Validate can point at it when the value is out of
	// range.
	migrateStreamsLine int
}

// DefaultFileConfig returns the shipped defaults.
func DefaultFileConfig() FileConfig {
	return FileConfig{
		PollIntervalMs:         2000,
		BackoffMinMs:           100,
		BackoffMaxMs:           10000,
		BackoffJitter:          0.2,
		Policy:                 "spread",
		RebalanceSkew:          0.2,
		RebalanceMaxMigrations: 16,
		RebalanceConcurrency:   1,
	}
}

// ParseFileConfig reads a fleet.conf document.
func ParseFileConfig(text string) (FileConfig, error) {
	cfg := DefaultFileConfig()
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, found := strings.Cut(line, "=")
		if !found {
			return cfg, fmt.Errorf("fleet: config line %d: missing '='", lineNo+1)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if err := cfg.apply(key, value); err != nil {
			return cfg, fmt.Errorf("fleet: config line %d: %v", lineNo+1, err)
		}
		if key == "migrate_streams" {
			cfg.migrateStreamsLine = lineNo + 1
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (c *FileConfig) apply(key, value string) error {
	switch key {
	case "hosts":
		list, err := parseList(value)
		if err != nil {
			return err
		}
		c.Hosts = list
		return nil
	case "poll_interval_ms":
		return setInt(&c.PollIntervalMs, value)
	case "backoff_min_ms":
		return setInt(&c.BackoffMinMs, value)
	case "backoff_max_ms":
		return setInt(&c.BackoffMaxMs, value)
	case "backoff_jitter":
		return setFloat(&c.BackoffJitter, value)
	case "call_timeout_ms":
		return setInt(&c.CallTimeoutMs, value)
	case "policy":
		if err := setString(&c.Policy, value); err != nil {
			return err
		}
		_, err := PolicyByName(c.Policy)
		return err
	case "rebalance_skew":
		return setFloat(&c.RebalanceSkew, value)
	case "rebalance_max_migrations":
		return setInt(&c.RebalanceMaxMigrations, value)
	case "rebalance_concurrency":
		return setInt(&c.RebalanceConcurrency, value)
	case "migrate_bandwidth_mbps":
		return setUint(&c.MigrateBandwidthMBps, value)
	case "migrate_max_downtime_ms":
		return setUint(&c.MigrateMaxDowntimeMs, value)
	case "migrate_streams":
		return setInt(&c.MigrateStreams, value)
	case "migrate_auto_converge":
		return setBool(&c.MigrateAutoConverge, value)
	case "migrate_postcopy":
		return setBool(&c.MigratePostCopy, value)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
}

// Validate cross-checks the configuration.
func (c *FileConfig) Validate() error {
	if c.PollIntervalMs < 1 {
		return fmt.Errorf("fleet: poll_interval_ms must be >= 1")
	}
	if c.BackoffMinMs < 1 || c.BackoffMaxMs < c.BackoffMinMs {
		return fmt.Errorf("fleet: backoff window invalid: min=%dms max=%dms",
			c.BackoffMinMs, c.BackoffMaxMs)
	}
	if c.BackoffJitter < 0 || c.BackoffJitter > 1 {
		return fmt.Errorf("fleet: backoff_jitter %g outside [0, 1]", c.BackoffJitter)
	}
	if c.CallTimeoutMs < 0 {
		return fmt.Errorf("fleet: call_timeout_ms must be non-negative")
	}
	if c.RebalanceSkew <= 0 || c.RebalanceSkew > 1 {
		return fmt.Errorf("fleet: rebalance_skew %g outside (0, 1]", c.RebalanceSkew)
	}
	if c.RebalanceMaxMigrations < 1 {
		return fmt.Errorf("fleet: rebalance_max_migrations must be >= 1")
	}
	if c.RebalanceConcurrency < 1 {
		return fmt.Errorf("fleet: rebalance_concurrency must be >= 1")
	}
	if c.MigrateStreams < 0 || c.MigrateStreams > 64 {
		if c.migrateStreamsLine > 0 {
			return fmt.Errorf("fleet: config line %d: migrate_streams %d outside [0, 64]",
				c.migrateStreamsLine, c.MigrateStreams)
		}
		return fmt.Errorf("fleet: migrate_streams %d outside [0, 64]", c.MigrateStreams)
	}
	return nil
}

// RegistryConfig converts the file form into a runtime Config.
func (c *FileConfig) RegistryConfig() (Config, error) {
	policy, err := PolicyByName(c.Policy)
	if err != nil {
		return Config{}, err
	}
	jitter := c.BackoffJitter
	if jitter == 0 {
		jitter = -1 // explicit zero in the file means "no jitter"
	}
	return Config{
		Hosts:         c.Hosts,
		PollInterval:  time.Duration(c.PollIntervalMs) * time.Millisecond,
		BackoffMin:    time.Duration(c.BackoffMinMs) * time.Millisecond,
		BackoffMax:    time.Duration(c.BackoffMaxMs) * time.Millisecond,
		BackoffJitter: jitter,
		CallTimeout:   time.Duration(c.CallTimeoutMs) * time.Millisecond,
		Policy:        policy,
	}, nil
}

// RebalanceConfig converts the file form into runtime RebalanceOptions.
func (c *FileConfig) RebalanceConfig() RebalanceOptions {
	return RebalanceOptions{
		SkewThreshold: c.RebalanceSkew,
		MaxMigrations: c.RebalanceMaxMigrations,
		Concurrency:   c.RebalanceConcurrency,
		Migrate: core.MigrateOptions{
			BandwidthMBps:   c.MigrateBandwidthMBps,
			MaxDowntimeMs:   c.MigrateMaxDowntimeMs,
			ParallelStreams: c.MigrateStreams,
			AutoConverge:    c.MigrateAutoConverge,
			PostCopy:        c.MigratePostCopy,
		},
	}
}

func setString(dst *string, value string) error {
	if len(value) < 2 || value[0] != '"' || value[len(value)-1] != '"' {
		return fmt.Errorf("expected a quoted string, got %s", value)
	}
	*dst = value[1 : len(value)-1]
	return nil
}

func setInt(dst *int, value string) error {
	n, err := strconv.Atoi(value)
	if err != nil {
		return fmt.Errorf("expected an integer, got %q", value)
	}
	*dst = n
	return nil
}

func setUint(dst *uint64, value string) error {
	n, err := strconv.ParseUint(value, 10, 64)
	if err != nil {
		return fmt.Errorf("expected a non-negative integer, got %q", value)
	}
	*dst = n
	return nil
}

func setBool(dst *bool, value string) error {
	switch strings.ToLower(value) {
	case "on", "yes", "y":
		*dst = true
		return nil
	case "off", "no", "n":
		*dst = false
		return nil
	}
	b, err := strconv.ParseBool(value)
	if err != nil {
		return fmt.Errorf("expected a boolean, got %q", value)
	}
	*dst = b
	return nil
}

func setFloat(dst *float64, value string) error {
	f, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return fmt.Errorf("expected a number, got %q", value)
	}
	*dst = f
	return nil
}

func parseList(value string) ([]string, error) {
	value = strings.TrimSpace(value)
	if len(value) < 2 || value[0] != '[' || value[len(value)-1] != ']' {
		return nil, fmt.Errorf("expected a [\"...\"] list, got %s", value)
	}
	inner := strings.TrimSpace(value[1 : len(value)-1])
	if inner == "" {
		return nil, nil
	}
	parts := strings.Split(inner, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		var s string
		if err := setString(&s, strings.TrimSpace(p)); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
