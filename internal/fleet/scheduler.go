package fleet

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/xmlspec"
)

// Request is the resource ask extracted from a domain definition: what
// the scheduler needs to know to place it.
type Request struct {
	Name     string
	TypeName string // hypervisor type attribute ("test", "qsim", ...)
	MemKiB   uint64
	VCPUs    int
}

// ParseRequest extracts a placement request from domain XML, validating
// the definition the same way define would so a bad document fails
// before any host is touched.
func ParseRequest(xmlDesc string) (Request, error) {
	def, err := xmlspec.ParseDomain([]byte(xmlDesc))
	if err != nil {
		return Request{}, core.Errorf(core.ErrXML, "%v", err)
	}
	if err := def.Validate(); err != nil {
		return Request{}, core.Errorf(core.ErrXML, "%v", err)
	}
	memKiB, err := def.Memory.KiB()
	if err != nil {
		return Request{}, core.Errorf(core.ErrXML, "%v", err)
	}
	vcpus := int(def.VCPU.Count)
	if vcpus <= 0 {
		vcpus = 1
	}
	return Request{Name: def.Name, TypeName: def.Type, MemKiB: memKiB, VCPUs: vcpus}, nil
}

// Policy scores candidate hosts for a request; the scheduler places on
// the highest-scoring host and falls through the ranking on failure.
// Score is only called for hosts that passed the capability and
// capacity filters. Policies see the compact per-host summary, never
// the per-domain records, so scoring stays O(1) per host and the
// scheduler never has to materialize full inventories.
type Policy interface {
	Name() string
	Score(req Request, sum *HostSummary) float64
}

type policyFunc struct {
	name  string
	score func(req Request, sum *HostSummary) float64
}

func (p policyFunc) Name() string                                { return p.name }
func (p policyFunc) Score(req Request, sum *HostSummary) float64 { return p.score(req, sum) }

// Spread prefers the least-loaded host, keeping headroom everywhere —
// the default policy.
func Spread() Policy {
	return policyFunc{name: "spread", score: func(req Request, sum *HostSummary) float64 {
		return 1 - loadAfter(req, sum)
	}}
}

// Pack prefers the most-loaded host that still fits, consolidating the
// fleet onto few hosts so the rest can be drained or powered down.
func Pack() Policy {
	return policyFunc{name: "pack", score: func(req Request, sum *HostSummary) float64 {
		return loadAfter(req, sum)
	}}
}

// Weighted scores free capacity with explicit cpu/memory weights; with
// equal weights it behaves like Spread but lets operators bias toward
// whichever resource their workloads contend on.
func Weighted(cpuWeight, memWeight float64) Policy {
	name := fmt.Sprintf("weighted(cpu=%g,mem=%g)", cpuWeight, memWeight)
	return policyFunc{name: name, score: func(req Request, sum *HostSummary) float64 {
		memFree := 1 - sum.MemLoad()
		cpuFree := 1 - sum.CPULoad()
		return (cpuWeight*cpuFree + memWeight*memFree) / (cpuWeight + memWeight)
	}}
}

// PolicyByName resolves the textual policy names used by config files
// and the CLI.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "spread":
		return Spread(), nil
	case "pack":
		return Pack(), nil
	case "weighted":
		return Weighted(1, 1), nil
	default:
		return nil, core.Errorf(core.ErrInvalidArg, "fleet: unknown policy %q", name)
	}
}

// loadAfter projects the host's scalar load as if the request were
// already placed there.
func loadAfter(req Request, sum *HostSummary) float64 {
	mem, cpu := sum.MemLoad(), sum.CPULoad()
	if sum.MemoryKiB > 0 {
		mem += float64(req.MemKiB) / float64(sum.MemoryKiB)
	}
	if sum.CPUs > 0 {
		cpu += float64(req.VCPUs) / float64(sum.CPUs)
	}
	if mem > cpu {
		return mem
	}
	return cpu
}

// eligible reports whether a host summary can take the request: up,
// matching driver capability, and with enough free memory.
func eligible(req Request, sum *HostSummary) bool {
	if sum.State != HostUp {
		return false
	}
	if req.TypeName != "" && sum.DriverType != "" && sum.DriverType != req.TypeName {
		return false
	}
	return sum.FreeMemKiB() >= req.MemKiB
}

// Candidates filters a fleet snapshot down to the hosts that can take
// the request. It is a pure function so policies can be unit-tested and
// benchmarked on synthetic inventories.
func Candidates(req Request, invs []HostInventory) []HostInventory {
	out := make([]HostInventory, 0, len(invs))
	for i := range invs {
		sum := invs[i].Summary()
		if eligible(req, &sum) {
			out = append(out, invs[i])
		}
	}
	return out
}

// CandidateSummaries filters a summary snapshot down to the hosts that
// can take the request — the form the scheduler uses at fleet scale.
func CandidateSummaries(req Request, sums []HostSummary) []HostSummary {
	out := make([]HostSummary, 0, len(sums))
	for i := range sums {
		if eligible(req, &sums[i]) {
			out = append(out, sums[i])
		}
	}
	return out
}

// Rank orders the candidate hosts for a request best-first under the
// given policy. Ties break on host name so rankings are deterministic.
func Rank(p Policy, req Request, invs []HostInventory) []string {
	sums := make([]HostSummary, len(invs))
	for i := range invs {
		sums[i] = invs[i].Summary()
	}
	return RankSummaries(p, req, sums)
}

// RankSummaries is Rank over compact summaries: O(hosts) filtering and
// scoring plus the sort, with no per-domain work at all.
func RankSummaries(p Policy, req Request, sums []HostSummary) []string {
	type scored struct {
		host  string
		score float64
	}
	rows := make([]scored, 0, len(sums))
	for i := range sums {
		if eligible(req, &sums[i]) {
			rows = append(rows, scored{sums[i].Host, p.Score(req, &sums[i])})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].score != rows[j].score {
			return rows[i].score > rows[j].score
		}
		return rows[i].host < rows[j].host
	})
	out := make([]string, len(rows))
	for i, row := range rows {
		out[i] = row.host
	}
	return out
}

// Placement reports where Schedule put a domain and what it took to get
// there.
type Placement struct {
	Domain      *core.Domain
	Host        string
	Attempts    int
	FailedHosts []string // hosts that died mid-placement and were retried past
}

// Schedule places the domain described by xmlDesc on the best host under
// the registry's policy: rank the up hosts, then define+start on each in
// order until one succeeds. A host failing with a retryable (host-level)
// error is marked down and the next candidate is tried; an operation
// error (duplicate name, invalid XML) aborts immediately since it would
// fail identically everywhere.
func (r *Registry) Schedule(xmlDesc string) (Placement, error) {
	start := time.Now()
	req, err := ParseRequest(xmlDesc)
	if err != nil {
		fleetPlacementFailures.Inc()
		return Placement{}, err
	}
	// Score the eligible hosts in one pass over the score cache, then
	// select best-first by linear scan: the normal case tries one host,
	// so a full O(n log n) sort of the fleet (the dominant cost at 1,000
	// hosts) buys nothing.
	type cand struct {
		host  string
		score float64
	}
	r.sumMu.RLock()
	cands := make([]cand, 0, len(r.sums))
	for i := range r.sums {
		if eligible(req, &r.sums[i]) {
			cands = append(cands, cand{r.sums[i].Host, r.cfg.Policy.Score(req, &r.sums[i])})
		}
	}
	r.sumMu.RUnlock()
	if len(cands) == 0 {
		fleetPlacementFailures.Inc()
		return Placement{}, core.Errorf(core.ErrOperationInvalid,
			"fleet: no host can take %q (%d KiB, %d vcpus)", req.Name, req.MemKiB, req.VCPUs)
	}

	var p Placement
	for len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].score > cands[best].score ||
				(cands[i].score == cands[best].score && cands[i].host < cands[best].host) {
				best = i
			}
		}
		hostName := cands[best].host
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]

		p.Attempts++
		dom, err := r.placeOn(hostName, xmlDesc)
		if err != nil {
			if core.IsRetryable(err) {
				r.log.Warnf("fleet", "placement of %q on %s failed (%v), trying next host",
					req.Name, hostName, err)
				r.markDown(hostName, err)
				p.FailedHosts = append(p.FailedHosts, hostName)
				fleetPlacementRetries.Inc()
				continue
			}
			fleetPlacementFailures.Inc()
			return p, err
		}
		p.Domain = dom
		p.Host = hostName
		fleetPlacements.Inc()
		fleetPlacementLatency.Observe(time.Since(start))
		r.notePlacement(hostName, req)
		return p, nil
	}
	fleetPlacementFailures.Inc()
	return p, core.Errorf(core.ErrHostUnreachable,
		"fleet: all %d candidate hosts failed while placing %q", p.Attempts, req.Name)
}

// placeOn runs the define+start pair on one host. If start fails for a
// non-host reason the define is rolled back so retries elsewhere don't
// leave orphans behind.
func (r *Registry) placeOn(hostName, xmlDesc string) (*core.Domain, error) {
	conn, err := r.Host(hostName)
	if err != nil {
		return nil, err
	}
	dom, err := conn.DefineDomain(xmlDesc)
	if err != nil {
		return nil, err
	}
	if r.hookAfterDefine != nil {
		r.hookAfterDefine(hostName)
	}
	if err := dom.Create(); err != nil {
		if !core.IsRetryable(err) {
			_ = dom.Undefine() // best effort; the host is still healthy
		}
		return nil, err
	}
	return dom, nil
}
