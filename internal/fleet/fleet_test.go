package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/logging"
)

// registerDrivers resets the global driver registry and installs the
// test and remote drivers, mirroring what the CLIs do at start-up.
func registerDrivers(t *testing.T) {
	t.Helper()
	core.ResetRegistryForTest()
	log := logging.NewQuiet(logging.Error)
	drvtest.Register(log)
	remote.Register()
	t.Cleanup(core.ResetRegistryForTest)
}

// startFleetDaemon brings up one govirtd daemon on the given unix
// socket: one simulated "host" of the fleet.
func startFleetDaemon(t *testing.T, sock string) *daemon.Daemon {
	t.Helper()
	d := daemon.New(logging.NewQuiet(logging.Error))
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	return d
}

func emptyURI(sock string) string {
	return "test+unix:///empty?socket=" + strings.ReplaceAll(sock, "/", "%2F")
}

func testXML(name string, memMiB, vcpus int) string {
	return fmt.Sprintf(`
<domain type='test'>
  <name>%s</name>
  <description>cpu_util=0.3 dirty_pages_sec=1000</description>
  <memory unit='MiB'>%d</memory>
  <vcpu>%d</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, name, memMiB, vcpus)
}

// fastConfig returns registry settings tuned for tests: short poll,
// short backoff.
func fastConfig(uris ...string) Config {
	return Config{
		Hosts:        uris,
		PollInterval: 20 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond,
		BackoffMax:   100 * time.Millisecond,
	}
}

// synthetic inventory helpers for the pure scheduler/planner tests.

func synthHost(name, drv string, memKiB uint64, cpus int, doms ...DomainRecord) HostInventory {
	return HostInventory{
		Host: name, State: HostUp, DriverType: drv,
		Node:    core.NodeInfo{MemoryKiB: memKiB, CPUs: cpus},
		Domains: doms,
	}
}

func runningDom(name string, memKiB uint64, vcpus int) DomainRecord {
	return DomainRecord{Name: name, State: core.DomainRunning, MemKiB: memKiB, VCPUs: vcpus}
}

func TestFleetPolicySpreadVsPack(t *testing.T) {
	invs := []HostInventory{
		synthHost("busy", "test", 1000, 100, runningDom("a", 400, 10)),
		synthHost("idle", "test", 1000, 100),
	}
	req := Request{Name: "new", TypeName: "test", MemKiB: 100, VCPUs: 1}

	if got := Rank(Spread(), req, invs); len(got) != 2 || got[0] != "idle" {
		t.Fatalf("spread ranking = %v, want idle first", got)
	}
	if got := Rank(Pack(), req, invs); len(got) != 2 || got[0] != "busy" {
		t.Fatalf("pack ranking = %v, want busy first", got)
	}
	// Weighted with equal weights agrees with spread here.
	if got := Rank(Weighted(1, 1), req, invs); got[0] != "idle" {
		t.Fatalf("weighted ranking = %v, want idle first", got)
	}
}

func TestFleetCandidateFiltering(t *testing.T) {
	invs := []HostInventory{
		synthHost("ok", "test", 1000, 100),
		synthHost("wrongdrv", "qemu", 1000, 100),
		synthHost("full", "test", 1000, 100, runningDom("hog", 950, 1)),
		{Host: "down", State: HostDown, DriverType: "test",
			Node: core.NodeInfo{MemoryKiB: 1000, CPUs: 100}},
	}
	req := Request{Name: "new", TypeName: "test", MemKiB: 100, VCPUs: 1}
	cands := Candidates(req, invs)
	if len(cands) != 1 || cands[0].Host != "ok" {
		t.Fatalf("candidates = %+v, want just \"ok\"", cands)
	}
	// Without a type constraint the driver filter passes everything up
	// with capacity.
	req.TypeName = ""
	if cands := Candidates(req, invs); len(cands) != 2 {
		t.Fatalf("untyped candidates = %d, want 2", len(cands))
	}
}

func TestFleetPolicyByName(t *testing.T) {
	for _, name := range []string{"", "spread", "pack", "weighted"} {
		if _, err := PolicyByName(name); err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
	}
	if _, err := PolicyByName("bogus"); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("bogus policy error = %v", err)
	}
}

func TestFleetParseRequest(t *testing.T) {
	req, err := ParseRequest(testXML("vm1", 512, 2))
	if err != nil {
		t.Fatal(err)
	}
	if req.Name != "vm1" || req.TypeName != "test" || req.MemKiB != 512*1024 || req.VCPUs != 2 {
		t.Fatalf("request = %+v", req)
	}
	if _, err := ParseRequest("<domain>"); !core.IsCode(err, core.ErrXML) {
		t.Fatalf("bad XML error = %v", err)
	}
}

func TestFleetPlanRebalanceSkew(t *testing.T) {
	invs := []HostInventory{
		synthHost("hot", "test", 1000, 1000,
			runningDom("a", 100, 1), runningDom("b", 100, 1),
			runningDom("c", 100, 1), runningDom("d", 100, 1)),
		synthHost("cold", "test", 1000, 1000),
	}
	moves, before, after, converged := PlanRebalance(invs, RebalanceOptions{SkewThreshold: 0.1})
	if !converged || len(moves) != 2 {
		t.Fatalf("moves=%v converged=%v", moves, converged)
	}
	if before != 0.4 || after != 0 {
		t.Fatalf("skew %v -> %v, want 0.4 -> 0", before, after)
	}
	for _, mv := range moves {
		if mv.From != "hot" || mv.To != "cold" {
			t.Fatalf("unexpected move %+v", mv)
		}
	}
	// The input snapshot must not be mutated by the simulation.
	if len(invs[0].Domains) != 4 {
		t.Fatal("planner mutated its input")
	}
}

func TestFleetPlanRebalanceDrain(t *testing.T) {
	invs := []HostInventory{
		synthHost("h0", "test", 1000, 1000,
			runningDom("a", 100, 1), runningDom("b", 200, 1)),
		synthHost("h1", "test", 1000, 1000, runningDom("c", 100, 1)),
		synthHost("h2", "test", 1000, 1000),
	}
	moves, _, _, converged := PlanRebalance(invs, RebalanceOptions{Drain: "h0"})
	if !converged || len(moves) != 2 {
		t.Fatalf("drain moves=%v converged=%v", moves, converged)
	}
	// Largest domain moves first, to the emptiest host.
	if moves[0].Domain != "b" || moves[0].To != "h2" {
		t.Fatalf("first drain move %+v, want b -> h2", moves[0])
	}
	for _, mv := range moves {
		if mv.From != "h0" {
			t.Fatalf("drain move from %s, want h0", mv.From)
		}
	}
}

func TestFleetPlanRebalanceNoProgress(t *testing.T) {
	// One giant domain: moving it would just swap which host is hot, so
	// the planner must stop rather than thrash.
	invs := []HostInventory{
		synthHost("hot", "test", 1000, 1000, runningDom("giant", 800, 1)),
		synthHost("cold", "test", 1000, 1000),
	}
	moves, _, _, converged := PlanRebalance(invs, RebalanceOptions{SkewThreshold: 0.1})
	if len(moves) != 0 || converged {
		t.Fatalf("moves=%v converged=%v, want no moves", moves, converged)
	}
}

func TestFleetConfigParse(t *testing.T) {
	text := `
# fleet controller
hosts = ["test+tcp://10.0.0.1:16509/", "test+tcp://10.0.0.2:16509/"]
poll_interval_ms = 500
policy = "pack"
rebalance_skew = 0.3
rebalance_max_migrations = 4
rebalance_concurrency = 2
migrate_bandwidth_mbps = 500
migrate_streams = 4
migrate_auto_converge = on
migrate_postcopy = false
`
	cfg, err := ParseFileConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Hosts) != 2 || cfg.PollIntervalMs != 500 || cfg.Policy != "pack" {
		t.Fatalf("cfg = %+v", cfg)
	}
	rc, err := cfg.RegistryConfig()
	if err != nil {
		t.Fatal(err)
	}
	if rc.PollInterval != 500*time.Millisecond || rc.Policy.Name() != "pack" {
		t.Fatalf("registry config = %+v", rc)
	}
	ro := cfg.RebalanceConfig()
	if ro.SkewThreshold != 0.3 || ro.MaxMigrations != 4 || ro.Migrate.BandwidthMBps != 500 {
		t.Fatalf("rebalance options = %+v", ro)
	}
	if ro.Migrate.ParallelStreams != 4 || !ro.Migrate.AutoConverge || ro.Migrate.PostCopy {
		t.Fatalf("migrate options = %+v", ro.Migrate)
	}

	for _, bad := range []string{
		"bogus_key = 1",
		`policy = "bogus"`,
		"rebalance_skew = 2.0",
		"poll_interval_ms = 0",
		`hosts = [oops]`,
		"migrate_streams = -1",
		"migrate_auto_converge = maybe",
	} {
		if _, err := ParseFileConfig(bad); err == nil {
			t.Fatalf("config %q accepted", bad)
		}
	}

	// Out-of-range migrate_streams errors carry the offending line.
	_, err = ParseFileConfig("policy = \"spread\"\nmigrate_streams = 100")
	if err == nil || !strings.Contains(err.Error(), "config line 2: migrate_streams") {
		t.Fatalf("out-of-range migrate_streams: %v", err)
	}
}

func TestFleetRegistryReconnect(t *testing.T) {
	registerDrivers(t)
	sock := filepath.Join(t.TempDir(), "node.sock")
	d := startFleetDaemon(t, sock)

	reg, err := New(fastConfig(emptyURI(sock)))
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != 1 {
		t.Fatalf("%d hosts up, want 1", up)
	}
	name := reg.Hosts()[0]

	// Kill the daemon: the poll loop must notice and flip the host down.
	d.Shutdown()
	if !reg.WaitHostState(name, HostDown, 5*time.Second) {
		t.Fatal("host never went down after daemon shutdown")
	}
	if _, err := reg.Host(name); !core.IsRetryable(err) {
		t.Fatalf("Host() on a down host = %v, want retryable", err)
	}

	// Bring a daemon back on the same socket: backoff reconnect must
	// find it without intervention.
	startFleetDaemon(t, sock)
	if !reg.WaitHostState(name, HostUp, 5*time.Second) {
		t.Fatal("host never reconnected after daemon restart")
	}
	if _, err := reg.Host(name); err != nil {
		t.Fatalf("Host() after reconnect: %v", err)
	}
}

// TestFleetHostDiesBetweenDefineAndStart is the regression test for the
// typed host-failure error: a daemon dying between the define and start
// halves of a placement must surface a retryable error, and the
// scheduler must carry the domain to another host.
func TestFleetHostDiesBetweenDefineAndStart(t *testing.T) {
	registerDrivers(t)
	dir := t.TempDir()
	sock0 := filepath.Join(dir, "node0.sock")
	sock1 := filepath.Join(dir, "node1.sock")
	d0 := startFleetDaemon(t, sock0)
	d1 := startFleetDaemon(t, sock1)
	daemons := map[string]*daemon.Daemon{"node0": d0, "node1": d1}

	reg, err := New(fastConfig(emptyURI(sock0), emptyURI(sock1)))
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != 2 {
		t.Fatalf("%d hosts up, want 2", up)
	}

	// First, the raw error shape: define on a host, kill it, start.
	conn, err := core.Open(emptyURI(sock0))
	if err != nil {
		t.Fatal(err)
	}
	dom, err := conn.DefineDomain(testXML("probe", 256, 1))
	if err != nil {
		t.Fatal(err)
	}
	d0.Shutdown()
	err = dom.Create()
	if err == nil {
		t.Fatal("Create on a dead daemon succeeded")
	}
	if !core.IsCode(err, core.ErrHostUnreachable) {
		t.Fatalf("Create error = %v (code %v), want ErrHostUnreachable", err, core.CodeOf(err))
	}
	if !core.IsRetryable(err) {
		t.Fatalf("error %v not classified retryable", err)
	}
	conn.Close()
	reg.WaitHostState("node0", HostDown, 5*time.Second)

	// Now the scheduler-level behaviour: restart node0, then rig the
	// placement to kill whichever host wins right after define. Schedule
	// must retry the domain onto the surviving host.
	daemons["node0"] = startFleetDaemon(t, sock0)
	if !reg.WaitHostState("node0", HostUp, 5*time.Second) {
		t.Fatal("node0 never came back")
	}
	killed := ""
	reg.hookAfterDefine = func(hostName string) {
		if killed == "" {
			killed = hostName
			daemons[hostName].Shutdown()
		}
	}
	p, err := reg.Schedule(testXML("survivor", 256, 1))
	if err != nil {
		t.Fatalf("Schedule with dying host: %v", err)
	}
	if p.Attempts != 2 || len(p.FailedHosts) != 1 || p.FailedHosts[0] != killed {
		t.Fatalf("placement = %+v (killed %s), want one failed host", p, killed)
	}
	if p.Host == killed {
		t.Fatalf("domain placed on the killed host %s", killed)
	}
	if st, err := p.Domain.Info(); err != nil || st.State != core.DomainRunning {
		t.Fatalf("survivor state %+v err=%v", st, err)
	}
}

func TestFleetIntegrationSpreadAndDrain(t *testing.T) {
	registerDrivers(t)
	dir := t.TempDir()
	const nHosts, nDomains = 3, 12
	var uris []string
	for i := 0; i < nHosts; i++ {
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		startFleetDaemon(t, sock)
		uris = append(uris, emptyURI(sock))
	}

	reg, err := New(fastConfig(uris...))
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != nHosts {
		t.Fatalf("%d hosts up, want %d", up, nHosts)
	}

	for i := 0; i < nDomains; i++ {
		if _, err := reg.Schedule(testXML(fmt.Sprintf("vm%02d", i), 8192, 4)); err != nil {
			t.Fatalf("schedule vm%02d: %v", i, err)
		}
	}
	counts := activeByHost(t, reg)
	minN, maxN := nDomains, 0
	for _, n := range counts {
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	if maxN-minN > 1 {
		t.Fatalf("spread placement uneven: %v", counts)
	}

	// Drain the first host; every domain must survive.
	drain := reg.Hosts()[0]
	res, err := reg.Rebalance(context.Background(), RebalanceOptions{
		Drain: drain, Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("drain not converged: %+v", res)
	}
	for _, rec := range res.Migrations {
		if rec.Err != nil {
			t.Fatalf("migration %s: %v", rec.Domain, rec.Err)
		}
	}
	counts = activeByHost(t, reg)
	if counts[drain] != 0 {
		t.Fatalf("drain host still carries %d domains", counts[drain])
	}
	totalAfter := 0
	for _, n := range counts {
		totalAfter += n
	}
	if totalAfter != nDomains {
		t.Fatalf("domains lost during drain: %d/%d, counts %v", totalAfter, nDomains, counts)
	}
}

func activeByHost(t *testing.T, reg *Registry) map[string]int {
	t.Helper()
	reg.RefreshNow()
	counts := map[string]int{}
	for _, inv := range reg.Inventory() {
		counts[inv.Host] = inv.ActiveDomains()
	}
	return counts
}

func TestFleetRebalanceCancellation(t *testing.T) {
	registerDrivers(t)
	dir := t.TempDir()
	sock0 := filepath.Join(dir, "node0.sock")
	sock1 := filepath.Join(dir, "node1.sock")
	startFleetDaemon(t, sock0)
	startFleetDaemon(t, sock1)

	cfg := fastConfig(emptyURI(sock0), emptyURI(sock1))
	cfg.Policy = Pack() // pile every domain onto one host
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != 2 {
		t.Fatalf("%d hosts up, want 2", up)
	}
	for i := 0; i < 4; i++ {
		if _, err := reg.Schedule(testXML(fmt.Sprintf("vm%d", i), 8192, 4)); err != nil {
			t.Fatal(err)
		}
	}
	counts := activeByHost(t, reg)
	if counts["node0"] != 4 && counts["node1"] != 4 {
		t.Fatalf("pack policy spread the domains: %v", counts)
	}

	// A context cancelled up front stops the pass before any migration.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := reg.Rebalance(cancelled, RebalanceOptions{SkewThreshold: 0.01})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled rebalance error = %v", err)
	}
	if len(res.Migrations) != 0 || len(res.Planned) == 0 {
		t.Fatalf("pre-cancelled rebalance ran migrations: %+v", res)
	}

	// Cancelling mid-pass stops new migrations; the in-flight one
	// completes. Serial concurrency makes the cut-off deterministic:
	// OnMigration fires (and cancels) while the worker still holds the
	// semaphore, so the dispatch loop wakes on ctx.Done.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err = reg.Rebalance(ctx, RebalanceOptions{
		SkewThreshold: 0.01,
		Concurrency:   1,
		OnMigration: func(MigrationRecord) {
			cancel()
			time.Sleep(20 * time.Millisecond)
		},
	})
	if err != context.Canceled {
		t.Fatalf("mid-pass cancel error = %v", err)
	}
	if len(res.Planned) < 2 {
		t.Fatalf("expected a multi-move plan, got %+v", res.Planned)
	}
	if len(res.Migrations) != 1 {
		t.Fatalf("%d migrations ran after cancel, want 1", len(res.Migrations))
	}
	if res.Migrations[0].Err != nil {
		t.Fatalf("in-flight migration failed: %v", res.Migrations[0].Err)
	}
	if res.Converged {
		t.Fatal("cancelled pass reported converged")
	}

	// No domain was lost: all four still run somewhere.
	counts = activeByHost(t, reg)
	totalActive := 0
	for _, n := range counts {
		totalActive += n
	}
	if totalActive != 4 {
		t.Fatalf("domains lost after cancellation: %v", counts)
	}
}

// TestFleetShippedConfigParses keeps configs/fleet.conf in sync with
// the parser: every documented key must round-trip into a usable
// registry configuration.
func TestFleetShippedConfigParses(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "configs", "fleet.conf"))
	if err != nil {
		t.Fatalf("read shipped config: %v", err)
	}
	fc, err := ParseFileConfig(string(data))
	if err != nil {
		t.Fatalf("parse shipped config: %v", err)
	}
	if len(fc.Hosts) != 2 || fc.Policy != "spread" {
		t.Fatalf("unexpected shipped config: %+v", fc)
	}
	if _, err := fc.RegistryConfig(); err != nil {
		t.Fatalf("shipped config not usable: %v", err)
	}
	ro := fc.RebalanceConfig()
	if ro.SkewThreshold != 0.2 || ro.MaxMigrations != 16 || ro.Concurrency != 1 {
		t.Fatalf("unexpected rebalance options: %+v", ro)
	}
}
