package fleet

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/logging"
	"repro/internal/qos"
)

// startNoisyDaemon brings up one daemon with admission control: an
// anonymous unix socket for the fleet registry (implicit unlimited
// default class), and a SASL TCP listener where the noisy and the
// well-behaved tenants authenticate into different classes.
func startNoisyDaemon(t *testing.T, sock string) (tcpAddr string) {
	t.Helper()
	d := daemon.New(logging.NewQuiet(logging.Error))
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	srv.SetCredentials(map[string]string{"noisy": "nx", "good": "gx", "fleet": "fx"})
	classes, err := qos.ParseClasses([]string{
		"bronze rate_limit_calls_per_s=50 burst=10 max_queue_wait_ms=200 priority=2 users=noisy",
		"silver rate_limit_calls_per_s=2000 priority=7 users=good",
		"control rate_limit_calls_per_s=10000 priority=9 control=1 users=fleet",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.SetQoS(qos.NewEngine(qos.Config{Classes: classes, ShedWatermark: 64}))
	if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	tcpAddr, err = srv.ListenTCP("127.0.0.1:0", daemon.ServiceConfig{
		Transport: daemon.TransportTCP, AuthSASL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	return tcpAddr
}

func saslTCPURI(addr, user, password, extra string) string {
	host, port, _ := strings.Cut(addr, ":")
	return fmt.Sprintf("test+tcp://%s@%s:%s/default?password=%s%s", user, host, port, password, extra)
}

func p99(samples []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)*99/100]
}

// TestChaosNoisyTenant is the multi-tenant isolation acceptance test:
// one tenant floods the daemon at 10x its class rate limit while a
// well-behaved tenant and the fleet's watch stream share the same
// daemon. The flooder must be rejected with typed, retryable overload
// errors — never a hang or connection teardown — while the good
// tenant's tail latency stays within 3x of its unloaded baseline and
// the fleet registry misses no heartbeats.
func TestChaosNoisyTenant(t *testing.T) {
	registerDrivers(t)
	sock := filepath.Join(t.TempDir(), "noisy.sock")
	tcpAddr := startNoisyDaemon(t, sock)

	// Fleet registry watches the daemon as the control-plane tenant.
	fleetURI := strings.Replace(emptyURI(sock), "test+unix://", "test+unix://fleet@", 1) + "&password=fx"
	cfg := fastConfig(fleetURI)
	cfg.Seed = 7
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != 1 {
		t.Fatalf("%d hosts up, want 1", up)
	}
	time.Sleep(5 * reg.cfg.PollInterval) // quiesce owed turns
	baseWatch := reg.WatchStats()

	good, err := core.Open(saslTCPURI(tcpAddr, "good", "gx", ""))
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	// The flooder disables the driver's transparent overload retry so
	// every rejection surfaces as a typed error.
	noisy, err := core.Open(saslTCPURI(tcpAddr, "noisy", "nx", "&overload_retry_ms=0"))
	if err != nil {
		t.Fatal(err)
	}
	defer noisy.Close()

	const nProbes = 200
	probe := func() []time.Duration {
		lats := make([]time.Duration, 0, nProbes)
		for i := 0; i < nProbes; i++ {
			start := time.Now()
			if _, err := good.Hostname(); err != nil {
				t.Fatalf("good tenant call failed: %v", err)
			}
			lats = append(lats, time.Since(start))
			time.Sleep(3 * time.Millisecond)
		}
		return lats
	}

	// Unloaded baseline.
	unloaded := p99(probe())

	// Flood: bronze is limited to 50 calls/s; fire at ~500/s until the
	// probe finishes. Every failure must be a retryable typed overload
	// carrying a retry-after hint; anything else (including a dead
	// connection) fails the test.
	stop := make(chan struct{})
	var flooderDone sync.WaitGroup
	var sent, rejected, succeeded atomic.Int64
	var floodErr atomic.Value
	flooderDone.Add(1)
	go func() {
		defer flooderDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sent.Add(1)
			_, err := noisy.Hostname()
			switch {
			case err == nil:
				succeeded.Add(1)
			case core.IsCode(err, core.ErrOverloaded):
				if !core.IsRetryable(err) || core.RetryAfterOf(err) <= 0 {
					floodErr.Store(fmt.Errorf("overload rejection without retry contract: %w", err))
					return
				}
				rejected.Add(1)
			default:
				floodErr.Store(fmt.Errorf("flooder got non-overload failure: %w", err))
				return
			}
			time.Sleep(2 * time.Millisecond) // ~500/s = 10x the class rate
		}
	}()

	loaded := p99(probe())
	close(stop)
	flooderDone.Wait()

	if e := floodErr.Load(); e != nil {
		t.Fatal(e)
	}
	if rejected.Load() == 0 {
		t.Fatalf("flooder sent %d calls at 10x its limit and was never rejected", sent.Load())
	}
	if succeeded.Load() == 0 {
		t.Fatal("flooder starved outright — rate limiting must throttle, not blackhole")
	}
	// The flooder's connection survived the storm: after honoring the
	// hint it gets service again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := noisy.Hostname(); err == nil {
			break
		} else if !core.IsCode(err, core.ErrOverloaded) {
			t.Fatalf("flooder connection degraded: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("flooder never re-admitted after the flood")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Isolation: the good tenant's p99 under flood within 3x unloaded
	// (with a small absolute floor against scheduler jitter on loaded
	// CI machines).
	bound := 3 * unloaded
	if floor := 5 * time.Millisecond; bound < floor {
		bound = floor
	}
	t.Logf("noisy tenant: flood sent=%d ok=%d rejected=%d; good p99 %v unloaded, %v loaded",
		sent.Load(), succeeded.Load(), rejected.Load(), unloaded, loaded)
	if loaded > bound {
		t.Errorf("good tenant p99 %v under flood exceeds bound %v (unloaded %v)", loaded, bound, unloaded)
	}

	// The fleet never lost its watch stream: no resyncs, no missed
	// heartbeats, host solidly up.
	gotWatch := reg.WatchStats()
	if gotWatch.Resyncs != baseWatch.Resyncs {
		t.Errorf("fleet resynced %d times during the flood", gotWatch.Resyncs-baseWatch.Resyncs)
	}
	for _, st := range reg.Status() {
		if st.State != HostUp {
			t.Errorf("host %s is %s after the flood", st.Name, st.State)
		}
	}
}
