package fleet

import (
	"testing"
)

// TestFleetPlanRebalanceEdgeCases drives the planner through the
// degenerate fleet shapes where the only correct plan is no plan at
// all, and asserts the shared invariant: the no-progress guard never
// proposes a move that leaves the spread worse than it started.
func TestFleetPlanRebalanceEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		invs      []HostInventory
		opts      RebalanceOptions
		wantMoves int
		converged bool
	}{
		{
			// No hosts at all: nothing to plan, trivially converged.
			name:      "empty-fleet",
			invs:      nil,
			opts:      RebalanceOptions{SkewThreshold: 0.1},
			wantMoves: 0,
			converged: true,
		},
		{
			// One host carrying everything: skew needs two up hosts to be
			// defined, so the pass converges without moving.
			name: "single-host",
			invs: []HostInventory{
				synthHost("only", "test", 1000, 1000,
					runningDom("a", 400, 1), runningDom("b", 400, 1)),
			},
			opts:      RebalanceOptions{SkewThreshold: 0.1},
			wantMoves: 0,
			converged: true,
		},
		{
			// Draining while every other host is down: no target exists,
			// so the plan is empty and explicitly not converged — the
			// drain host still carries its domains.
			name: "every-other-host-down-drain",
			invs: []HostInventory{
				synthHost("drainme", "test", 1000, 1000, runningDom("a", 100, 1)),
				{Host: "down1", State: HostDown, DriverType: "test"},
				{Host: "down2", State: HostDown, DriverType: "test"},
			},
			opts:      RebalanceOptions{Drain: "drainme"},
			wantMoves: 0,
			converged: false,
		},
		{
			// Draining a host that is itself down: its cached inventory
			// holds no domains, so the drain is vacuously complete.
			name: "drain-host-down",
			invs: []HostInventory{
				{Host: "drainme", State: HostDown, DriverType: "test"},
				synthHost("up", "test", 1000, 1000),
			},
			opts:      RebalanceOptions{Drain: "drainme"},
			wantMoves: 0,
			converged: true,
		},
		{
			// Every host pinned with identical domains, spread above the
			// threshold only pairwise: relocating any domain would push
			// the target to the source's starting load, so the
			// no-progress guard must refuse every move rather than swap
			// which host is hot.
			name: "all-domains-pinned-equal",
			invs: []HostInventory{
				synthHost("h0", "test", 1000, 1000,
					runningDom("a", 400, 1), runningDom("b", 400, 1)),
				synthHost("h1", "test", 1000, 1000, runningDom("c", 400, 1)),
			},
			opts:      RebalanceOptions{SkewThreshold: 0.2},
			wantMoves: 0,
			converged: false,
		},
		{
			// Equal load everywhere: skew is zero, instantly converged.
			name: "uniform-load",
			invs: []HostInventory{
				synthHost("h0", "test", 1000, 1000, runningDom("a", 300, 1)),
				synthHost("h1", "test", 1000, 1000, runningDom("b", 300, 1)),
				synthHost("h2", "test", 1000, 1000, runningDom("c", 300, 1)),
			},
			opts:      RebalanceOptions{SkewThreshold: 0.1},
			wantMoves: 0,
			converged: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			moves, before, after, converged := PlanRebalance(tc.invs, tc.opts)
			if len(moves) != tc.wantMoves {
				t.Fatalf("moves = %v, want %d", moves, tc.wantMoves)
			}
			if converged != tc.converged {
				t.Fatalf("converged = %v, want %v", converged, tc.converged)
			}
			if after > before {
				t.Fatalf("plan worsened skew: %.3f -> %.3f", before, after)
			}
		})
	}
}

// TestFleetPlanRebalanceNeverWorsens fuzzes fleet shapes over a fixed
// grid and checks the global invariant on every one: whatever the
// planner proposes, simulated skew after the plan never exceeds skew
// before it, and the move count respects the cap.
func TestFleetPlanRebalanceNeverWorsens(t *testing.T) {
	for hosts := 2; hosts <= 6; hosts++ {
		for spread := 0; spread <= 4; spread++ {
			invs := make([]HostInventory, 0, hosts)
			for i := 0; i < hosts; i++ {
				var doms []DomainRecord
				// Host i carries i*spread domains of alternating sizes, so
				// the grid covers balanced, skewed and empty shapes.
				for j := 0; j < i*spread; j++ {
					size := uint64(100 + 150*(j%3))
					doms = append(doms, runningDom(
						hostDomName(i, j), size, 1+j%2))
				}
				invs = append(invs, synthHost(hostGridName(i), "test", 4000, 1000, doms...))
			}
			moves, before, after, _ := PlanRebalance(invs, RebalanceOptions{
				SkewThreshold: 0.05, MaxMigrations: 8,
			})
			if after > before {
				t.Fatalf("hosts=%d spread=%d: plan worsened skew %.3f -> %.3f (moves %v)",
					hosts, spread, before, after, moves)
			}
			if len(moves) > 8 {
				t.Fatalf("hosts=%d spread=%d: %d moves exceeds cap", hosts, spread, len(moves))
			}
		}
	}
}

func hostGridName(i int) string {
	return string(rune('a'+i)) + "-host"
}

func hostDomName(i, j int) string {
	return string(rune('a'+i)) + "-dom-" + string(rune('0'+j%10)) + string(rune('0'+j/10))
}
