package fleet

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/drivers/common"
	"repro/internal/faultpoint"
)

// TestChaosRebalanceUnderTransportFaults is the fleet-level chaos
// acceptance test: a three-daemon fleet packed onto one host is
// rebalanced while 10% of RPC frames are silently dropped (fixed seed,
// reproducible roll sequence). Individual migrations may fail — that is
// the point — but two invariants must hold:
//
//  1. zero lost domains: every domain still exists on at least one
//     host once the dust settles;
//  2. bounded time: no call blocks past its deadline, so the whole
//     pass finishes quickly instead of hanging on a dropped reply.
func TestChaosRebalanceUnderTransportFaults(t *testing.T) {
	registerDrivers(t)
	// Transport faults make the registry drop and reopen host
	// connections; the test driver's state is per-connection, so each
	// host journals its environment under a state root (distinct URI
	// path → distinct journal) and a reconnect replays it — exactly the
	// crash-safety machinery a real deployment would rely on.
	common.SetStateRoot(t.TempDir())
	defer common.SetStateRoot("")

	dir := t.TempDir()
	const nHosts, nDomains = 3, 12
	var uris []string
	for i := 0; i < nHosts; i++ {
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		startFleetDaemon(t, sock)
		uris = append(uris, fmt.Sprintf("test+unix:///env%d?socket=%s",
			i, strings.ReplaceAll(sock, "/", "%2F")))
	}

	// Short per-call deadline so dropped frames surface as fast
	// retryable errors instead of hung calls; fixed seed for the
	// registry's backoff jitter.
	cfg := fastConfig(uris...)
	cfg.Policy = Pack() // pile everything onto one host first
	cfg.CallTimeout = 250 * time.Millisecond
	cfg.Seed = 42
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != nHosts {
		t.Fatalf("%d hosts up, want %d", up, nHosts)
	}
	reg.RefreshNow() // make every host's capacity visible before placing

	want := map[string]bool{}
	for i := 0; i < nDomains; i++ {
		name := fmt.Sprintf("chaos%02d", i)
		if _, err := reg.Schedule(testXML(name, 512, 1)); err != nil {
			t.Fatalf("schedule %s: %v", name, err)
		}
		want[name] = true
	}
	if counts := activeByHost(t, reg); counts[reg.Hosts()[0]] != nDomains {
		// Pack policy should have piled everything onto the first host;
		// without that the rebalance pass below has nothing to do.
		t.Logf("pre-chaos distribution: %v", counts)
	}

	// Arm the fault plane: 10% of received frames vanish, everywhere.
	faultpoint.Default.Set("rpc.recv", faultpoint.Spec{
		Mode: faultpoint.ModeDrop, Prob: 0.10,
	})
	faultpoint.Default.Arm(42)
	defer faultpoint.Default.Disarm()

	// Run the controller loop the way an operator daemon would: several
	// rebalance passes, re-settling the fleet between passes when faults
	// knocked a host connection down. Individual migrations may fail;
	// the loop just keeps going.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	planned, migrated, failed := 0, 0, 0
	for pass := 0; pass < 5; pass++ {
		reg.WaitSettled(5 * time.Second)
		res, rerr := reg.Rebalance(ctx, RebalanceOptions{
			SkewThreshold: 0.01,
			Concurrency:   2,
		})
		planned += len(res.Planned)
		migrated += len(res.Migrations)
		for _, rec := range res.Migrations {
			if rec.Err != nil {
				failed++
			}
		}
		// Only trust an empty plan when it was computed over the whole
		// fleet: a dropped frame during the pre-plan refresh can down a
		// host and hide its domains from the planner.
		allUp, visible := true, 0
		for _, inv := range reg.Inventory() {
			if inv.State != HostUp {
				allUp = false
			}
			visible += len(inv.Domains)
		}
		t.Logf("pass %d: err=%v planned=%d migrated=%d allUp=%v visible=%d",
			pass, rerr, len(res.Planned), len(res.Migrations), allUp, visible)
		if rerr == nil && res.Converged && len(res.Planned) == 0 && allUp && visible >= nDomains {
			break
		}
	}
	elapsed := time.Since(start)
	fires := faultpoint.Default.Fires("rpc.recv")
	faultpoint.Default.Disarm() // counters reset with the registry

	if elapsed > 45*time.Second {
		t.Fatalf("rebalance under faults took %v — calls are blocking past their deadline", elapsed)
	}
	if fires == 0 {
		t.Fatal("no transport faults fired — the chaos pass tested nothing")
	}
	t.Logf("chaos totals: planned=%d migrated=%d failed=%d fires=%d elapsed=%v",
		planned, migrated, failed, fires, elapsed)

	// Invariant: zero lost domains. Count by direct connection to each
	// host environment — a fresh connection replays that host's journal,
	// which is exactly the state a restarted daemon would serve.
	// Duplicates are acceptable — a dropped source-undefine leaves a
	// stale copy — but every name must exist somewhere.
	seen := map[string]int{}
	for i, uri := range uris {
		conn, err := core.Open(uri)
		if err != nil {
			t.Fatalf("reconnect node%d: %v", i, err)
		}
		doms, err := conn.ListAllDomains(0)
		if err != nil {
			t.Fatalf("list node%d: %v", i, err)
		}
		for _, dom := range doms {
			seen[dom.Name()]++
		}
		conn.Close()
	}
	for name := range want {
		if seen[name] == 0 {
			t.Errorf("domain %s lost during faulted rebalance (seen=%v)", name, seen)
		}
	}
	if len(seen) < nDomains {
		t.Fatalf("only %d/%d domains survived: %v", len(seen), nDomains, seen)
	}
}

// TestChaosScheduleWithFlakyHost drives placement (not rebalance) under
// driver-op faults: one in five define operations fails server-side,
// and the scheduler must still place every domain by retrying the next
// candidate host.
func TestChaosScheduleWithFlakyHost(t *testing.T) {
	registerDrivers(t)
	dir := t.TempDir()
	const nHosts, nDomains = 3, 9
	var uris []string
	for i := 0; i < nHosts; i++ {
		sock := filepath.Join(dir, fmt.Sprintf("node%d.sock", i))
		startFleetDaemon(t, sock)
		uris = append(uris, emptyURI(sock))
	}
	cfg := fastConfig(uris...)
	cfg.Seed = 7
	reg, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg.Start()
	defer reg.Close()
	if up := reg.WaitSettled(5 * time.Second); up != nHosts {
		t.Fatalf("%d hosts up, want %d", up, nHosts)
	}

	faultpoint.Default.Set("driver.op.define", faultpoint.Spec{
		Mode: faultpoint.ModeError, Prob: 0.2,
	})
	faultpoint.Default.Arm(7)
	defer faultpoint.Default.Disarm()

	placed := 0
	for i := 0; i < nDomains; i++ {
		name := fmt.Sprintf("flaky%02d", i)
		p, err := reg.Schedule(testXML(name, 2048, 1))
		if err != nil {
			// An injected define failure is an ErrInternal, which the
			// scheduler does not retry across hosts (only retryable
			// host-failures are). That is acceptable; losing a placed
			// domain is not.
			continue
		}
		placed++
		if st, err := p.Domain.Info(); err != nil || st.State != core.DomainRunning {
			t.Fatalf("%s placed but not running: %+v %v", name, st, err)
		}
	}
	if placed == 0 {
		t.Fatal("no domain placed at all under 20% define faults")
	}
	t.Logf("placed %d/%d domains under injected define faults", placed, nDomains)
}
