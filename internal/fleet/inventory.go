package fleet

import (
	"time"

	"repro/internal/core"
)

// DomainRecord is one domain's slice of a host inventory, carrying just
// what placement and rebalancing decisions need.
type DomainRecord struct {
	Name      string
	State     core.DomainState
	MemKiB    uint64
	MaxMemKiB uint64
	VCPUs     int
	CPUTimeNs uint64
}

// Active reports whether the domain currently occupies host resources.
func (d DomainRecord) Active() bool {
	switch d.State {
	case core.DomainRunning, core.DomainBlocked, core.DomainPaused, core.DomainPMSuspended:
		return true
	default:
		return false
	}
}

// HostInventory is a point-in-time view of one host: its capacity
// (nodeinfo) and the domains it carries, all collected non-intrusively
// through the uniform API. The registry refreshes it on the poll
// interval and immediately after any lifecycle event on the host.
type HostInventory struct {
	Host        string // registry name for the host
	URI         string
	State       HostState
	DriverType  string // server-side driver ("qsim", "test", ...)
	Node        core.NodeInfo
	Domains     []DomainRecord
	Gen         uint64 // increments on every refresh
	CollectedAt time.Time
}

// ActiveDomains counts domains occupying resources.
func (inv *HostInventory) ActiveDomains() int {
	n := 0
	for _, d := range inv.Domains {
		if d.Active() {
			n++
		}
	}
	return n
}

// AllocatedMemKiB sums the memory of active domains.
func (inv *HostInventory) AllocatedMemKiB() uint64 {
	var sum uint64
	for _, d := range inv.Domains {
		if d.Active() {
			sum += d.MemKiB
		}
	}
	return sum
}

// AllocatedVCPUs sums the vCPUs of active domains.
func (inv *HostInventory) AllocatedVCPUs() int {
	sum := 0
	for _, d := range inv.Domains {
		if d.Active() {
			sum += d.VCPUs
		}
	}
	return sum
}

// FreeMemKiB returns the unallocated host memory (0 when overcommitted).
func (inv *HostInventory) FreeMemKiB() uint64 {
	alloc := inv.AllocatedMemKiB()
	if alloc >= inv.Node.MemoryKiB {
		return 0
	}
	return inv.Node.MemoryKiB - alloc
}

// MemLoad returns allocated memory as a fraction of host memory.
func (inv *HostInventory) MemLoad() float64 {
	if inv.Node.MemoryKiB == 0 {
		return 0
	}
	return float64(inv.AllocatedMemKiB()) / float64(inv.Node.MemoryKiB)
}

// CPULoad returns allocated vCPUs as a fraction of host CPUs.
func (inv *HostInventory) CPULoad() float64 {
	if inv.Node.CPUs == 0 {
		return 0
	}
	return float64(inv.AllocatedVCPUs()) / float64(inv.Node.CPUs)
}

// Load is the scalar load the rebalancer compares across hosts: the
// hotter of the memory and vCPU fractions, so either resource running
// out makes the host a drain candidate.
func (inv *HostInventory) Load() float64 {
	if m, c := inv.MemLoad(), inv.CPULoad(); m > c {
		return m
	} else {
		return c
	}
}

// clone deep-copies the inventory so planners can mutate it freely.
func (inv *HostInventory) clone() HostInventory {
	out := *inv
	out.Domains = make([]DomainRecord, len(inv.Domains))
	copy(out.Domains, inv.Domains)
	return out
}

// HostSummary is the compact per-host aggregate the scheduler and
// rebalance planner work from: capacity and allocation totals, no
// per-domain records. The registry keeps one per host, recomputed in
// the same pass as each inventory refresh, so reading fleet-wide
// placement state is O(hosts) however many domains the fleet carries.
type HostSummary struct {
	Host          string
	URI           string
	State         HostState
	DriverType    string
	MemoryKiB     uint64 // node capacity
	CPUs          int
	AllocMemKiB   uint64 // memory of active domains
	AllocVCPUs    int    // vCPUs of active domains
	ActiveDomains int
	TotalDomains  int
	Gen           uint64
}

// Summary condenses the inventory into its per-host aggregate form.
func (inv *HostInventory) Summary() HostSummary {
	s := HostSummary{
		Host: inv.Host, URI: inv.URI, State: inv.State, DriverType: inv.DriverType,
		MemoryKiB: inv.Node.MemoryKiB, CPUs: inv.Node.CPUs,
		TotalDomains: len(inv.Domains), Gen: inv.Gen,
	}
	for i := range inv.Domains {
		if d := &inv.Domains[i]; d.Active() {
			s.ActiveDomains++
			s.AllocMemKiB += d.MemKiB
			s.AllocVCPUs += d.VCPUs
		}
	}
	return s
}

// FreeMemKiB returns the unallocated host memory (0 when overcommitted).
func (s *HostSummary) FreeMemKiB() uint64 {
	if s.AllocMemKiB >= s.MemoryKiB {
		return 0
	}
	return s.MemoryKiB - s.AllocMemKiB
}

// MemLoad returns allocated memory as a fraction of host memory.
func (s *HostSummary) MemLoad() float64 {
	if s.MemoryKiB == 0 {
		return 0
	}
	return float64(s.AllocMemKiB) / float64(s.MemoryKiB)
}

// CPULoad returns allocated vCPUs as a fraction of host CPUs.
func (s *HostSummary) CPULoad() float64 {
	if s.CPUs == 0 {
		return 0
	}
	return float64(s.AllocVCPUs) / float64(s.CPUs)
}

// Load is the scalar load: the hotter of the memory and vCPU fractions.
func (s *HostSummary) Load() float64 {
	if m, c := s.MemLoad(), s.CPULoad(); m > c {
		return m
	} else {
		return c
	}
}

// SkewSummaries returns the load spread (hottest minus coldest) across
// the up hosts of a summary snapshot; 0 when fewer than two are up.
func SkewSummaries(sums []HostSummary) float64 {
	min, max, n := 0.0, 0.0, 0
	for i := range sums {
		if sums[i].State != HostUp {
			continue
		}
		l := sums[i].Load()
		if n == 0 || l < min {
			min = l
		}
		if n == 0 || l > max {
			max = l
		}
		n++
	}
	if n < 2 {
		return 0
	}
	return max - min
}

// Skew returns the load spread (hottest minus coldest) across the up
// hosts of a fleet snapshot; 0 when fewer than two hosts are up.
func Skew(invs []HostInventory) float64 {
	min, max, n := 0.0, 0.0, 0
	for i := range invs {
		if invs[i].State != HostUp {
			continue
		}
		l := invs[i].Load()
		if n == 0 || l < min {
			min = l
		}
		if n == 0 || l > max {
			max = l
		}
		n++
	}
	if n < 2 {
		return 0
	}
	return max - min
}
