// Package vnet implements the virtual network subsystem: named networks
// backed by simulated host bridges, with NAT/route/isolated forwarding
// modes and a DHCP lease service guests attach to. It is the substrate
// the network management APIs drive.
package vnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"

	"repro/internal/xmlspec"
)

// Lease is one DHCP address assignment.
type Lease struct {
	MAC      string
	IP       string
	Hostname string
}

// network is the runtime state of one defined network.
type network struct {
	def    *xmlspec.Network
	active bool
	bridge string
	leases map[string]Lease // by MAC
	nextIP net.IP           // next candidate address
}

// Manager owns all virtual networks of a host.
type Manager struct {
	mu       sync.Mutex
	networks map[string]*network
	bridgeNo int
}

// NewManager creates an empty network manager.
func NewManager() *Manager {
	return &Manager{networks: make(map[string]*network)}
}

// Define registers a network from its parsed definition.
func (m *Manager) Define(def *xmlspec.Network) error {
	if err := def.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.networks[def.Name]; dup {
		return fmt.Errorf("vnet: network %q already defined", def.Name)
	}
	n := &network{def: def, leases: make(map[string]Lease)}
	m.networks[def.Name] = n
	return nil
}

// Undefine removes an inactive network.
func (m *Manager) Undefine(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return fmt.Errorf("vnet: no network %q", name)
	}
	if n.active {
		return fmt.Errorf("vnet: network %q is active", name)
	}
	delete(m.networks, name)
	return nil
}

// Start brings a network up, materialising its bridge.
func (m *Manager) Start(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return fmt.Errorf("vnet: no network %q", name)
	}
	if n.active {
		return fmt.Errorf("vnet: network %q already active", name)
	}
	if n.bridge == "" {
		if n.def.Bridge != nil && n.def.Bridge.Name != "" {
			n.bridge = n.def.Bridge.Name
		} else {
			n.bridge = fmt.Sprintf("virbr%d", m.bridgeNo)
			m.bridgeNo++
		}
	}
	n.active = true
	return nil
}

// Stop tears a network down; leases are dropped.
func (m *Manager) Stop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return fmt.Errorf("vnet: no network %q", name)
	}
	if !n.active {
		return fmt.Errorf("vnet: network %q is not active", name)
	}
	n.active = false
	n.leases = make(map[string]Lease)
	n.nextIP = nil
	return nil
}

// IsActive reports whether the network is up.
func (m *Manager) IsActive(name string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return false, fmt.Errorf("vnet: no network %q", name)
	}
	return n.active, nil
}

// Bridge returns the bridge device of an active network.
func (m *Manager) Bridge(name string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return "", fmt.Errorf("vnet: no network %q", name)
	}
	if !n.active {
		return "", fmt.Errorf("vnet: network %q is not active", name)
	}
	return n.bridge, nil
}

// List returns all network names, sorted.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.networks))
	for n := range m.networks {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// XML returns a network's definition document.
func (m *Manager) XML(name string) (string, error) {
	m.mu.Lock()
	n, ok := m.networks[name]
	m.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("vnet: no network %q", name)
	}
	out, err := n.def.Marshal()
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Attach connects a guest NIC (by MAC) to an active network and leases
// an address: a static reservation if configured, otherwise the next
// free address in the first DHCP range.
func (m *Manager) Attach(name, mac, hostname string) (Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return Lease{}, fmt.Errorf("vnet: no network %q", name)
	}
	if !n.active {
		return Lease{}, fmt.Errorf("vnet: network %q is not active", name)
	}
	if l, dup := n.leases[mac]; dup {
		return l, nil // DHCP renew semantics
	}
	ipCfg, dhcp := firstDHCP(n.def)
	if dhcp == nil {
		return Lease{}, fmt.Errorf("vnet: network %q has no DHCP service", name)
	}
	// Static reservation wins.
	for _, h := range dhcp.Hosts {
		if h.MAC == mac {
			l := Lease{MAC: mac, IP: h.IP, Hostname: firstNonEmpty(h.Name, hostname)}
			n.leases[mac] = l
			return l, nil
		}
	}
	if len(dhcp.Ranges) == 0 {
		return Lease{}, fmt.Errorf("vnet: network %q has no DHCP range", name)
	}
	r := dhcp.Ranges[0]
	start := net.ParseIP(r.Start).To4()
	end := net.ParseIP(r.End).To4()
	if start == nil || end == nil {
		return Lease{}, fmt.Errorf("vnet: network %q: non-IPv4 DHCP range", name)
	}
	cand := n.nextIP
	if cand == nil {
		cand = start
	}
	inUse := make(map[string]bool, len(n.leases)+len(dhcp.Hosts)+1)
	for _, l := range n.leases {
		inUse[l.IP] = true
	}
	for _, h := range dhcp.Hosts {
		inUse[h.IP] = true
	}
	inUse[ipCfg.Address] = true
	for ip := cand; !ipAfter(ip, end); ip = ipNext(ip) {
		if !inUse[ip.String()] {
			l := Lease{MAC: mac, IP: ip.String(), Hostname: hostname}
			n.leases[mac] = l
			n.nextIP = ipNext(ip)
			return l, nil
		}
	}
	// Wrap around once for addresses released earlier in the range.
	for ip := start; !ipAfter(ip, end); ip = ipNext(ip) {
		if !inUse[ip.String()] {
			l := Lease{MAC: mac, IP: ip.String(), Hostname: hostname}
			n.leases[mac] = l
			n.nextIP = ipNext(ip)
			return l, nil
		}
	}
	return Lease{}, fmt.Errorf("vnet: network %q: DHCP range exhausted", name)
}

// Detach releases a guest's lease.
func (m *Manager) Detach(name, mac string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return fmt.Errorf("vnet: no network %q", name)
	}
	if _, has := n.leases[mac]; !has {
		return fmt.Errorf("vnet: network %q: no lease for %s", name, mac)
	}
	delete(n.leases, mac)
	return nil
}

// Leases lists the active leases of a network, sorted by IP.
func (m *Manager) Leases(name string) ([]Lease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.networks[name]
	if !ok {
		return nil, fmt.Errorf("vnet: no network %q", name)
	}
	out := make([]Lease, 0, len(n.leases))
	for _, l := range n.leases {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out, nil
}

func firstDHCP(def *xmlspec.Network) (*xmlspec.IP, *xmlspec.DHCP) {
	for i := range def.IPs {
		if def.IPs[i].DHCP != nil {
			return &def.IPs[i], def.IPs[i].DHCP
		}
	}
	return nil, nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func ipNext(ip net.IP) net.IP {
	v := binary.BigEndian.Uint32(ip.To4())
	out := make(net.IP, 4)
	binary.BigEndian.PutUint32(out, v+1)
	return out
}

func ipAfter(a, b net.IP) bool {
	return binary.BigEndian.Uint32(a.To4()) > binary.BigEndian.Uint32(b.To4())
}
