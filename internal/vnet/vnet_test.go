package vnet

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmlspec"
)

func defaultNet(t *testing.T, name string, rangeEnd string) *xmlspec.Network {
	t.Helper()
	n := &xmlspec.Network{
		Name:    name,
		Forward: &xmlspec.Forward{Mode: "nat"},
		IPs: []xmlspec.IP{{
			Address: "192.168.100.1",
			Netmask: "255.255.255.0",
			DHCP: &xmlspec.DHCP{
				Ranges: []xmlspec.DHCPRange{{Start: "192.168.100.10", End: rangeEnd}},
				Hosts:  []xmlspec.DHCPHost{{MAC: "52:54:00:00:00:99", Name: "pinned", IP: "192.168.100.50"}},
			},
		}},
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDefineStartStopUndefine(t *testing.T) {
	m := NewManager()
	if err := m.Define(defaultNet(t, "default", "192.168.100.20")); err != nil {
		t.Fatal(err)
	}
	if err := m.Define(defaultNet(t, "default", "192.168.100.20")); err == nil {
		t.Fatal("duplicate define accepted")
	}
	if active, _ := m.IsActive("default"); active {
		t.Fatal("fresh network active")
	}
	if err := m.Start("default"); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("default"); err == nil {
		t.Fatal("double start accepted")
	}
	br, err := m.Bridge("default")
	if err != nil || !strings.HasPrefix(br, "virbr") {
		t.Fatalf("bridge %q %v", br, err)
	}
	if err := m.Undefine("default"); err == nil {
		t.Fatal("undefine of active network accepted")
	}
	if err := m.Stop("default"); err != nil {
		t.Fatal(err)
	}
	if err := m.Stop("default"); err == nil {
		t.Fatal("double stop accepted")
	}
	if err := m.Undefine("default"); err != nil {
		t.Fatal(err)
	}
	if err := m.Undefine("default"); err == nil {
		t.Fatal("double undefine accepted")
	}
}

func TestExplicitBridgeName(t *testing.T) {
	m := NewManager()
	def := defaultNet(t, "br", "192.168.100.20")
	def.Bridge = &xmlspec.Bridge{Name: "mybr0"}
	if err := m.Define(def); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("br"); err != nil {
		t.Fatal(err)
	}
	if br, _ := m.Bridge("br"); br != "mybr0" {
		t.Fatalf("bridge %q", br)
	}
}

func TestAttachLeasing(t *testing.T) {
	m := NewManager()
	if err := m.Define(defaultNet(t, "n", "192.168.100.12")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach("n", "52:54:00:00:00:01", "g1"); err == nil {
		t.Fatal("attach to inactive network accepted")
	}
	if err := m.Start("n"); err != nil {
		t.Fatal(err)
	}
	l1, err := m.Attach("n", "52:54:00:00:00:01", "g1")
	if err != nil || l1.IP != "192.168.100.10" {
		t.Fatalf("%+v %v", l1, err)
	}
	// Renew returns the same lease.
	again, err := m.Attach("n", "52:54:00:00:00:01", "g1")
	if err != nil || again.IP != l1.IP {
		t.Fatalf("renew %+v %v", again, err)
	}
	l2, _ := m.Attach("n", "52:54:00:00:00:02", "g2")
	l3, _ := m.Attach("n", "52:54:00:00:00:03", "g3")
	if l2.IP != "192.168.100.11" || l3.IP != "192.168.100.12" {
		t.Fatalf("%+v %+v", l2, l3)
	}
	// Range exhausted (3 addresses only).
	if _, err := m.Attach("n", "52:54:00:00:00:04", "g4"); err == nil {
		t.Fatal("exhausted range still leased")
	}
	// Release one and re-lease it.
	if err := m.Detach("n", "52:54:00:00:00:02"); err != nil {
		t.Fatal(err)
	}
	l4, err := m.Attach("n", "52:54:00:00:00:04", "g4")
	if err != nil || l4.IP != "192.168.100.11" {
		t.Fatalf("reuse %+v %v", l4, err)
	}
	if err := m.Detach("n", "52:54:00:00:00:02"); err == nil {
		t.Fatal("double detach accepted")
	}
}

func TestStaticReservation(t *testing.T) {
	m := NewManager()
	if err := m.Define(defaultNet(t, "s", "192.168.100.20")); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("s"); err != nil {
		t.Fatal(err)
	}
	l, err := m.Attach("s", "52:54:00:00:00:99", "whatever")
	if err != nil || l.IP != "192.168.100.50" || l.Hostname != "pinned" {
		t.Fatalf("%+v %v", l, err)
	}
	// Dynamic leases never collide with the reservation.
	for i := 0; i < 5; i++ {
		dl, err := m.Attach("s", fmt.Sprintf("52:54:00:00:01:%02x", i), "d")
		if err != nil {
			t.Fatal(err)
		}
		if dl.IP == "192.168.100.50" {
			t.Fatal("dynamic lease took the reserved address")
		}
	}
}

func TestStopDropsLeases(t *testing.T) {
	m := NewManager()
	if err := m.Define(defaultNet(t, "d", "192.168.100.20")); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach("d", "52:54:00:00:00:01", "g"); err != nil {
		t.Fatal(err)
	}
	if err := m.Stop("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("d"); err != nil {
		t.Fatal(err)
	}
	leases, err := m.Leases("d")
	if err != nil || len(leases) != 0 {
		t.Fatalf("leases after restart: %v %v", leases, err)
	}
}

func TestLeasesSorted(t *testing.T) {
	m := NewManager()
	if err := m.Define(defaultNet(t, "l", "192.168.100.20")); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("l"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Attach("l", fmt.Sprintf("52:54:00:00:02:%02x", i), "g"); err != nil {
			t.Fatal(err)
		}
	}
	leases, _ := m.Leases("l")
	for i := 1; i < len(leases); i++ {
		if leases[i-1].IP > leases[i].IP {
			t.Fatalf("not sorted: %v", leases)
		}
	}
}

func TestXMLAndList(t *testing.T) {
	m := NewManager()
	if err := m.Define(defaultNet(t, "b", "192.168.100.20")); err != nil {
		t.Fatal(err)
	}
	if err := m.Define(defaultNet(t, "a", "192.168.100.20")); err != nil {
		t.Fatal(err)
	}
	names := m.List()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("list %v", names)
	}
	xml, err := m.XML("a")
	if err != nil || !strings.Contains(xml, "<name>a</name>") {
		t.Fatalf("xml %q %v", xml, err)
	}
	if _, err := m.XML("missing"); err == nil {
		t.Fatal("xml of missing network accepted")
	}
}

func TestErrorsOnMissingNetwork(t *testing.T) {
	m := NewManager()
	if err := m.Start("x"); err == nil {
		t.Fatal("start missing")
	}
	if err := m.Stop("x"); err == nil {
		t.Fatal("stop missing")
	}
	if _, err := m.IsActive("x"); err == nil {
		t.Fatal("isactive missing")
	}
	if _, err := m.Bridge("x"); err == nil {
		t.Fatal("bridge missing")
	}
	if _, err := m.Leases("x"); err == nil {
		t.Fatal("leases missing")
	}
	if err := m.Detach("x", "52:54:00:00:00:01"); err == nil {
		t.Fatal("detach missing")
	}
}
