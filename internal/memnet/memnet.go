// Package memnet provides named in-process network endpoints built on
// net.Pipe. A simulated daemon listens on a name ("node0042") instead of
// a filesystem socket or TCP port; clients dial the name and get a
// synchronous, in-memory net.Conn to it. The mega-fleet scale harness
// uses this to run a thousand daemons in one process without consuming
// file descriptors, ephemeral ports, or socket-path length budget —
// while still exercising the full RPC stack (framing, codecs, auth,
// keepalive) byte-for-byte as it runs over real sockets.
//
// The registry is process-global, mirroring how a host's socket
// namespace is global: Listen claims a name, Dial connects to it, and
// closing the listener releases the name.
package memnet

import (
	"fmt"
	"net"
	"sync"
)

// Addr is the net.Addr for an in-memory endpoint.
type Addr struct{ Name string }

// Network returns the memnet network name.
func (Addr) Network() string { return "mem" }

// String returns the endpoint name.
func (a Addr) String() string { return a.Name }

// Listener accepts in-memory connections dialed to its name. It
// implements net.Listener.
type Listener struct {
	name string

	mu     sync.Mutex
	closed bool
	conns  chan net.Conn
	done   chan struct{}
}

var (
	regMu     sync.Mutex
	listeners = map[string]*Listener{}
)

// Listen claims the given endpoint name and returns a listener for it.
// The name is freed again when the listener is closed.
func Listen(name string) (*Listener, error) {
	if name == "" {
		return nil, fmt.Errorf("memnet: empty endpoint name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := listeners[name]; dup {
		return nil, fmt.Errorf("memnet: endpoint %q already in use", name)
	}
	l := &Listener{
		name:  name,
		conns: make(chan net.Conn),
		done:  make(chan struct{}),
	}
	listeners[name] = l
	return l, nil
}

// Dial connects to the named endpoint, returning the client half of a
// fresh in-memory pipe. It fails immediately when no listener holds the
// name (the in-memory analogue of "connection refused").
func Dial(name string) (net.Conn, error) {
	regMu.Lock()
	l := listeners[name]
	regMu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("memnet: dial %s: connection refused", name)
	}
	client, server := net.Pipe()
	cc := &conn{Conn: client, local: Addr{Name: "client"}, remote: Addr{Name: name}}
	sc := &conn{Conn: server, local: Addr{Name: name}, remote: Addr{Name: "client"}}
	select {
	case l.conns <- sc:
		return cc, nil
	case <-l.done:
		client.Close() //nolint:errcheck
		server.Close() //nolint:errcheck
		return nil, fmt.Errorf("memnet: dial %s: connection refused", name)
	}
}

// Accept waits for the next dialed connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("memnet: accept %s: listener closed", l.name)
	}
}

// Close releases the endpoint name and unblocks Accept and in-flight
// Dials. Already-accepted connections are unaffected.
func (l *Listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.done)
	regMu.Lock()
	if listeners[l.name] == l {
		delete(listeners, l.name)
	}
	regMu.Unlock()
	return nil
}

// Addr returns the listener's endpoint address.
func (l *Listener) Addr() net.Addr { return Addr{Name: l.name} }

// conn decorates a pipe half with memnet addresses so daemon-side
// client identity (which keys off RemoteAddr for non-unix transports)
// stays meaningful.
type conn struct {
	net.Conn
	local  Addr
	remote Addr
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }
