package memnet

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemnetRoundTrip(t *testing.T) {
	l, err := Listen("rt")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := c.Read(buf); err != nil {
			return
		}
		c.Write(append([]byte("pong:"), buf...)) //nolint:errcheck
	}()

	c, err := Dial("rt")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.RemoteAddr().String(); got != "rt" {
		t.Fatalf("client RemoteAddr = %q, want rt", got)
	}
	if got := c.RemoteAddr().Network(); got != "mem" {
		t.Fatalf("network = %q, want mem", got)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong:hello" {
		t.Fatalf("echo = %q", buf)
	}
}

func TestMemnetNameLifecycle(t *testing.T) {
	if _, err := Dial("ghost"); err == nil {
		t.Fatal("dial of unbound name succeeded")
	}
	l, err := Listen("lease")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("lease"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if _, err := Dial("lease"); err == nil {
		t.Fatal("dial after close succeeded")
	}
	// The name is free again.
	l2, err := Listen("lease")
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()

	if _, err := Listen(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestMemnetConcurrentDials(t *testing.T) {
	l, err := Listen("many")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 32
	accepted := make(chan struct{}, n)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
			accepted <- struct{}{}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial("many")
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			c.Close()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		<-accepted
	}
}

func TestMemnetScaleNames(t *testing.T) {
	// A thousand names coexist without fd or port pressure.
	ls := make([]*Listener, 0, 1000)
	for i := 0; i < 1000; i++ {
		l, err := Listen(fmt.Sprintf("node%04d", i))
		if err != nil {
			t.Fatal(err)
		}
		ls = append(ls, l)
	}
	for _, l := range ls {
		l.Close()
	}
}
