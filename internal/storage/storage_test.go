package storage

import (
	"strings"
	"testing"

	"repro/internal/xmlspec"
)

func dirPool(name string, capGiB uint64) *xmlspec.StoragePool {
	capacity := xmlspec.Memory{Unit: "GiB", Value: capGiB}
	return &xmlspec.StoragePool{
		Type: "dir", Name: name,
		Capacity: &capacity,
		Target:   &xmlspec.PoolTarget{Path: "/var/lib/virt/" + name},
	}
}

func vol(name string, capGiB uint64) *xmlspec.StorageVolume {
	return &xmlspec.StorageVolume{
		Name:     name,
		Capacity: xmlspec.Memory{Unit: "GiB", Value: capGiB},
	}
}

func TestDefineStartStopUndefine(t *testing.T) {
	m := NewManager()
	if err := m.Define(dirPool("p1", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Define(dirPool("p1", 10)); err == nil {
		t.Fatal("duplicate define accepted")
	}
	info, err := m.Info("p1")
	if err != nil || info.Active || info.CapacityKiB != 10*1024*1024 {
		t.Fatalf("%+v %v", info, err)
	}
	if err := m.Start("p1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("p1"); err == nil {
		t.Fatal("double start accepted")
	}
	if err := m.Undefine("p1"); err == nil {
		t.Fatal("undefine active pool accepted")
	}
	if err := m.Stop("p1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Undefine("p1"); err != nil {
		t.Fatal(err)
	}
}

func TestVolumeLifecycleAndAccounting(t *testing.T) {
	m := NewManager()
	if err := m.Define(dirPool("p", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateVolume("p", vol("v1", 4)); err == nil {
		t.Fatal("create on inactive pool accepted")
	}
	if err := m.Start("p"); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateVolume("p", vol("v1", 4)); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateVolume("p", vol("v1", 1)); err == nil {
		t.Fatal("duplicate volume accepted")
	}
	if err := m.CreateVolume("p", vol("v2", 4)); err != nil {
		t.Fatal(err)
	}
	// 8 GiB used of 10; a 4 GiB volume must not fit.
	if err := m.CreateVolume("p", vol("v3", 4)); err == nil {
		t.Fatal("over-capacity volume accepted")
	}
	info, _ := m.Info("p")
	if info.AllocationKiB != 8*1024*1024 || info.AvailableKiB != 2*1024*1024 {
		t.Fatalf("%+v", info)
	}
	if err := m.DeleteVolume("p", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteVolume("p", "v1"); err == nil {
		t.Fatal("double delete accepted")
	}
	if err := m.CreateVolume("p", vol("v3", 4)); err != nil {
		t.Fatalf("freed space not reusable: %v", err)
	}
	vols, _ := m.Volumes("p")
	if len(vols) != 2 || vols[0] != "v2" || vols[1] != "v3" {
		t.Fatalf("volumes %v", vols)
	}
}

func TestThinAllocation(t *testing.T) {
	m := NewManager()
	if err := m.Define(dirPool("thin", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("thin"); err != nil {
		t.Fatal(err)
	}
	alloc := xmlspec.Memory{Unit: "GiB", Value: 1}
	v := vol("sparse", 8)
	v.Allocation = &alloc
	if err := m.CreateVolume("thin", v); err != nil {
		t.Fatal(err)
	}
	// Thin volume only consumes its allocation.
	info, _ := m.Info("thin")
	if info.AllocationKiB != 1024*1024 {
		t.Fatalf("%+v", info)
	}
	// Another thin 8 GiB volume fits even though capacities sum to 16.
	v2 := vol("sparse2", 8)
	v2.Allocation = &alloc
	if err := m.CreateVolume("thin", v2); err != nil {
		t.Fatal(err)
	}
}

func TestVolumePathPerBackend(t *testing.T) {
	m := NewManager()
	if err := m.Define(dirPool("d", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("d"); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateVolume("d", vol("img.qcow2", 1)); err != nil {
		t.Fatal(err)
	}
	p, err := m.VolumePath("d", "img.qcow2")
	if err != nil || p != "/var/lib/virt/d/img.qcow2" {
		t.Fatalf("%q %v", p, err)
	}

	lv := &xmlspec.StoragePool{Type: "logical", Name: "vg0", Source: &xmlspec.PoolSource{Name: "vg0"}}
	if err := m.Define(lv); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("vg0"); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateVolume("vg0", vol("lv1", 1)); err != nil {
		t.Fatal(err)
	}
	p, _ = m.VolumePath("vg0", "lv1")
	if p != "/dev/vg0/lv1" {
		t.Fatalf("logical path %q", p)
	}
}

func TestISCSIFixedLUNs(t *testing.T) {
	m := NewManager()
	pool := &xmlspec.StoragePool{
		Type: "iscsi", Name: "san",
		Source: &xmlspec.PoolSource{
			Host:   &xmlspec.SourceHost{Name: "stor.example.com"},
			Device: &xmlspec.SourceDevice{Path: "iqn.2026-07.com.example:t1"},
		},
	}
	if err := m.Define(pool); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("san"); err != nil {
		t.Fatal(err)
	}
	vols, _ := m.Volumes("san")
	if len(vols) != 4 {
		t.Fatalf("LUNs %v", vols)
	}
	if err := m.CreateVolume("san", vol("new", 1)); err == nil {
		t.Fatal("volume creation on iscsi pool accepted")
	}
	if err := m.DeleteVolume("san", vols[0]); err == nil {
		t.Fatal("volume deletion on iscsi pool accepted")
	}
	p, err := m.VolumePath("san", vols[0])
	if err != nil || !strings.Contains(p, "iqn.2026-07.com.example:t1") {
		t.Fatalf("%q %v", p, err)
	}
	// Stopping and restarting rediscovers without duplicating.
	if err := m.Stop("san"); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("san"); err != nil {
		t.Fatal(err)
	}
	vols, _ = m.Volumes("san")
	if len(vols) != 4 {
		t.Fatalf("LUNs after restart %v", vols)
	}
}

func TestVolumeXMLIncludesPath(t *testing.T) {
	m := NewManager()
	if err := m.Define(dirPool("x", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Start("x"); err != nil {
		t.Fatal(err)
	}
	v := vol("a.raw", 1)
	v.Target = &xmlspec.VolumeTarget{Format: &xmlspec.VolFormat{Type: "raw"}}
	if err := m.CreateVolume("x", v); err != nil {
		t.Fatal(err)
	}
	xml, err := m.VolumeXML("x", "a.raw")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(xml, "/var/lib/virt/x/a.raw") || !strings.Contains(xml, `type="raw"`) {
		t.Fatalf("volume xml:\n%s", xml)
	}
	// The original definition must not be mutated by XML generation.
	if v.Target.Path != "" {
		t.Fatal("VolumeXML mutated caller's definition")
	}
}

func TestListSortedAndMissingErrors(t *testing.T) {
	m := NewManager()
	if err := m.Define(dirPool("b", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Define(dirPool("a", 1)); err != nil {
		t.Fatal(err)
	}
	names := m.List()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("list %v", names)
	}
	if _, err := m.Info("zz"); err == nil {
		t.Fatal("info missing")
	}
	if _, err := m.XML("zz"); err == nil {
		t.Fatal("xml missing")
	}
	if _, err := m.Volumes("zz"); err == nil {
		t.Fatal("volumes missing")
	}
	if _, err := m.VolumeXML("a", "zz"); err == nil {
		t.Fatal("volumexml missing")
	}
	if _, err := m.VolumePath("zz", "v"); err == nil {
		t.Fatal("volumepath missing pool")
	}
	if err := m.Stop("zz"); err == nil {
		t.Fatal("stop missing")
	}
	if err := m.Undefine("zz"); err == nil {
		t.Fatal("undefine missing")
	}
}
