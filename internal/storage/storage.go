// Package storage implements the storage subsystem: pools divided into
// volumes, with per-type backends (directory, logical/LVM-style, iSCSI
// target) behind a common interface — mirroring how the management
// layer's storage driver is split into backends per technology.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/xmlspec"
)

// Backend implements pool-type-specific behaviour.
type Backend interface {
	// TypeName returns the pool type this backend serves.
	TypeName() string
	// Prepare validates a definition and returns total capacity in KiB.
	Prepare(def *xmlspec.StoragePool) (capacityKiB uint64, err error)
	// SupportsVolumeCreate reports whether volumes can be created (an
	// iSCSI target exposes fixed LUNs, so it answers false).
	SupportsVolumeCreate() bool
	// VolumePath derives the exposure path of a volume.
	VolumePath(def *xmlspec.StoragePool, volName string) string
	// InitialVolumes lists volumes that pre-exist when the pool starts.
	InitialVolumes(def *xmlspec.StoragePool) []*xmlspec.StorageVolume
}

// volume is runtime volume state.
type volume struct {
	def      *xmlspec.StorageVolume
	allocKiB uint64
	path     string
}

// pool is runtime pool state.
type pool struct {
	def         *xmlspec.StoragePool
	backend     Backend
	active      bool
	capacityKiB uint64
	volumes     map[string]*volume
}

// Manager owns all storage pools of a host.
type Manager struct {
	mu       sync.Mutex
	backends map[string]Backend
	pools    map[string]*pool
}

// NewManager creates a manager with the three standard backends.
func NewManager() *Manager {
	m := &Manager{
		backends: make(map[string]Backend),
		pools:    make(map[string]*pool),
	}
	for _, b := range []Backend{dirBackend{}, logicalBackend{}, iscsiBackend{}} {
		m.backends[b.TypeName()] = b
	}
	return m
}

// Define registers a pool from its parsed definition.
func (m *Manager) Define(def *xmlspec.StoragePool) error {
	if err := def.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.pools[def.Name]; dup {
		return fmt.Errorf("storage: pool %q already defined", def.Name)
	}
	b, ok := m.backends[def.Type]
	if !ok {
		return fmt.Errorf("storage: no backend for pool type %q", def.Type)
	}
	capKiB, err := b.Prepare(def)
	if err != nil {
		return err
	}
	m.pools[def.Name] = &pool{
		def:         def,
		backend:     b,
		capacityKiB: capKiB,
		volumes:     make(map[string]*volume),
	}
	return nil
}

// Undefine removes an inactive pool.
func (m *Manager) Undefine(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[name]
	if !ok {
		return fmt.Errorf("storage: no pool %q", name)
	}
	if p.active {
		return fmt.Errorf("storage: pool %q is active", name)
	}
	delete(m.pools, name)
	return nil
}

// Start activates a pool and discovers pre-existing volumes.
func (m *Manager) Start(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[name]
	if !ok {
		return fmt.Errorf("storage: no pool %q", name)
	}
	if p.active {
		return fmt.Errorf("storage: pool %q already active", name)
	}
	for _, vdef := range p.backend.InitialVolumes(p.def) {
		if _, dup := p.volumes[vdef.Name]; dup {
			continue
		}
		alloc := volAllocKiB(vdef)
		p.volumes[vdef.Name] = &volume{
			def:      vdef,
			allocKiB: alloc,
			path:     p.backend.VolumePath(p.def, vdef.Name),
		}
	}
	p.active = true
	return nil
}

// Stop deactivates a pool; volume records persist (they are on disk).
func (m *Manager) Stop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[name]
	if !ok {
		return fmt.Errorf("storage: no pool %q", name)
	}
	if !p.active {
		return fmt.Errorf("storage: pool %q is not active", name)
	}
	p.active = false
	return nil
}

// List returns all pool names, sorted.
func (m *Manager) List() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.pools))
	for n := range m.pools {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Info summarises a pool's state and space.
type Info struct {
	Active        bool
	CapacityKiB   uint64
	AllocationKiB uint64
	AvailableKiB  uint64
}

// Info returns a pool's space accounting.
func (m *Manager) Info(name string) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[name]
	if !ok {
		return Info{}, fmt.Errorf("storage: no pool %q", name)
	}
	var alloc uint64
	for _, v := range p.volumes {
		alloc += v.allocKiB
	}
	return Info{
		Active:        p.active,
		CapacityKiB:   p.capacityKiB,
		AllocationKiB: alloc,
		AvailableKiB:  p.capacityKiB - alloc,
	}, nil
}

// XML returns a pool's definition document.
func (m *Manager) XML(name string) (string, error) {
	m.mu.Lock()
	p, ok := m.pools[name]
	m.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("storage: no pool %q", name)
	}
	out, err := p.def.Marshal()
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// CreateVolume creates a volume inside an active pool.
func (m *Manager) CreateVolume(poolName string, vdef *xmlspec.StorageVolume) error {
	if err := vdef.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[poolName]
	if !ok {
		return fmt.Errorf("storage: no pool %q", poolName)
	}
	if !p.active {
		return fmt.Errorf("storage: pool %q is not active", poolName)
	}
	if !p.backend.SupportsVolumeCreate() {
		return fmt.Errorf("storage: pool type %q does not support volume creation", p.def.Type)
	}
	if _, dup := p.volumes[vdef.Name]; dup {
		return fmt.Errorf("storage: pool %q: volume %q already exists", poolName, vdef.Name)
	}
	alloc := volAllocKiB(vdef)
	var used uint64
	for _, v := range p.volumes {
		used += v.allocKiB
	}
	if used+alloc > p.capacityKiB {
		return fmt.Errorf("storage: pool %q: allocation %d KiB exceeds free %d KiB",
			poolName, alloc, p.capacityKiB-used)
	}
	p.volumes[vdef.Name] = &volume{
		def:      vdef,
		allocKiB: alloc,
		path:     p.backend.VolumePath(p.def, vdef.Name),
	}
	return nil
}

// DeleteVolume removes a volume from an active pool.
func (m *Manager) DeleteVolume(poolName, volName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[poolName]
	if !ok {
		return fmt.Errorf("storage: no pool %q", poolName)
	}
	if !p.active {
		return fmt.Errorf("storage: pool %q is not active", poolName)
	}
	if _, has := p.volumes[volName]; !has {
		return fmt.Errorf("storage: pool %q: no volume %q", poolName, volName)
	}
	if !p.backend.SupportsVolumeCreate() {
		return fmt.Errorf("storage: pool type %q exposes fixed volumes", p.def.Type)
	}
	delete(p.volumes, volName)
	return nil
}

// Volumes lists the volume names of a pool, sorted.
func (m *Manager) Volumes(poolName string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[poolName]
	if !ok {
		return nil, fmt.Errorf("storage: no pool %q", poolName)
	}
	out := make([]string, 0, len(p.volumes))
	for n := range p.volumes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// VolumeXML returns a volume's definition document, with the runtime
// path filled in.
func (m *Manager) VolumeXML(poolName, volName string) (string, error) {
	m.mu.Lock()
	p, ok := m.pools[poolName]
	if !ok {
		m.mu.Unlock()
		return "", fmt.Errorf("storage: no pool %q", poolName)
	}
	v, has := p.volumes[volName]
	m.mu.Unlock()
	if !has {
		return "", fmt.Errorf("storage: pool %q: no volume %q", poolName, volName)
	}
	def := *v.def
	if def.Target == nil {
		def.Target = &xmlspec.VolumeTarget{}
	} else {
		tgt := *v.def.Target
		def.Target = &tgt
	}
	def.Target.Path = v.path
	out, err := def.Marshal()
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// VolumePath returns the exposure path of a volume.
func (m *Manager) VolumePath(poolName, volName string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[poolName]
	if !ok {
		return "", fmt.Errorf("storage: no pool %q", poolName)
	}
	v, has := p.volumes[volName]
	if !has {
		return "", fmt.Errorf("storage: pool %q: no volume %q", poolName, volName)
	}
	return v.path, nil
}

func volAllocKiB(vdef *xmlspec.StorageVolume) uint64 {
	if vdef.Allocation != nil {
		if kib, err := vdef.Allocation.KiB(); err == nil {
			return kib
		}
	}
	kib, _ := vdef.Capacity.KiB()
	return kib
}
