package storage

import (
	"fmt"

	"repro/internal/xmlspec"
)

// dirBackend serves directory pools: volumes are image files under the
// target path. Capacity comes from the definition (default 100 GiB,
// standing in for the filesystem's free space).
type dirBackend struct{}

func (dirBackend) TypeName() string { return "dir" }

func (dirBackend) Prepare(def *xmlspec.StoragePool) (uint64, error) {
	if def.Capacity != nil {
		return def.Capacity.KiB()
	}
	return 100 * 1024 * 1024, nil // 100 GiB
}

func (dirBackend) SupportsVolumeCreate() bool { return true }

func (dirBackend) VolumePath(def *xmlspec.StoragePool, volName string) string {
	return def.Target.Path + "/" + volName
}

func (dirBackend) InitialVolumes(*xmlspec.StoragePool) []*xmlspec.StorageVolume { return nil }

// logicalBackend serves LVM-style pools: the source name is the volume
// group; volumes are logical volumes.
type logicalBackend struct{}

func (logicalBackend) TypeName() string { return "logical" }

func (logicalBackend) Prepare(def *xmlspec.StoragePool) (uint64, error) {
	if def.Capacity != nil {
		return def.Capacity.KiB()
	}
	return 500 * 1024 * 1024, nil // 500 GiB VG
}

func (logicalBackend) SupportsVolumeCreate() bool { return true }

func (logicalBackend) VolumePath(def *xmlspec.StoragePool, volName string) string {
	return "/dev/" + def.Source.Name + "/" + volName
}

func (logicalBackend) InitialVolumes(*xmlspec.StoragePool) []*xmlspec.StorageVolume { return nil }

// iscsiBackend serves iSCSI pools: the remote target exposes a fixed set
// of LUNs discovered at pool start; volumes cannot be created or deleted
// through the pool.
type iscsiBackend struct{}

func (iscsiBackend) TypeName() string { return "iscsi" }

func (iscsiBackend) Prepare(def *xmlspec.StoragePool) (uint64, error) {
	if def.Capacity != nil {
		return def.Capacity.KiB()
	}
	return 1024 * 1024 * 1024, nil // 1 TiB target
}

func (iscsiBackend) SupportsVolumeCreate() bool { return false }

func (iscsiBackend) VolumePath(def *xmlspec.StoragePool, volName string) string {
	return fmt.Sprintf("/dev/disk/by-path/ip-%s-iscsi-%s-lun-%s",
		def.Source.Host.Name, def.Source.Device.Path, volName)
}

// InitialVolumes simulates LUN discovery: a deterministic set of four
// LUNs sized from the target capacity.
func (b iscsiBackend) InitialVolumes(def *xmlspec.StoragePool) []*xmlspec.StorageVolume {
	capKiB, err := b.Prepare(def)
	if err != nil || capKiB == 0 {
		capKiB = 1024 * 1024 * 1024
	}
	const luns = 4
	per := capKiB / (luns * 2) // half the target, split across LUNs
	out := make([]*xmlspec.StorageVolume, 0, luns)
	for i := 0; i < luns; i++ {
		out = append(out, &xmlspec.StorageVolume{
			Name:     fmt.Sprintf("%d", i),
			Key:      fmt.Sprintf("%s/lun%d", def.Source.Device.Path, i),
			Capacity: xmlspec.MemoryKiB(per),
		})
	}
	return out
}
