package core

import (
	"sort"
	"sync"

	"repro/internal/events"
	"repro/internal/hyper"
	"repro/internal/uri"
)

// DriverConn is the contract every hypervisor driver implements. The
// public Connect/Domain objects are thin wrappers delegating here, so the
// same calls run in-process against a local driver or are forwarded by
// the remote driver to a daemon which invokes the identical interface on
// its side — the architecture's key property.
type DriverConn interface {
	Close() error
	// Type returns the driver name ("qemu", "xen", "lxc", "test", "remote").
	Type() string
	// Version returns the hypervisor version banner.
	Version() (string, error)
	Hostname() (string, error)
	// CapabilitiesXML returns the capabilities document.
	CapabilitiesXML() (string, error)
	NodeInfo() (NodeInfo, error)

	// Domain management. Domains are addressed by name, which is unique
	// per connection.
	ListDomains(flags ListFlags) ([]string, error)
	LookupDomain(name string) (DomainMeta, error)
	LookupDomainByUUID(uuidStr string) (DomainMeta, error)
	DefineDomain(xmlDesc string) (DomainMeta, error)
	UndefineDomain(name string) error
	CreateDomain(name string) error // start a defined domain
	DestroyDomain(name string) error
	ShutdownDomain(name string) error
	RebootDomain(name string) error
	SuspendDomain(name string) error
	ResumeDomain(name string) error
	DomainInfo(name string) (DomainInfo, error)
	DomainStats(name string) (DomainStats, error)
	DomainXML(name string) (string, error)
	SetDomainMemory(name string, kib uint64) error
	SetDomainVCPUs(name string, n int) error
}

// EventSource is implemented by drivers that can deliver lifecycle
// events.
type EventSource interface {
	EventBus() *events.Bus
}

// WatchHandler receives watch-stream events. gap reports that one or
// more events were lost since the previous delivery — a sequence jump
// from server-side queue overflow, a frame lost in flight, or a
// heartbeat revealing a lost tail. On gap the consumer should run one
// bulk resync sweep instead of trusting its incremental state; when gap
// accompanies a heartbeat, ev carries no event (Type is zero).
type WatchHandler func(ev events.Event, gap bool)

// WatchHandle is one open watch stream.
type WatchHandle interface {
	// Close tears the stream down. Safe to call more than once.
	Close() error
}

// WatchSource is implemented by driver connections that deliver
// sequenced, gap-detecting watch streams — the remote driver, over
// EventSubscribe and ProcEventWatch frames. Local drivers don't need
// it: Connect.WatchEvents adapts their event bus, which never gaps.
type WatchSource interface {
	WatchEvents(domain string, types []events.Type, h WatchHandler) (WatchHandle, error)
}

// ConnHealth is implemented by driver connections that can report
// transport liveness without a round trip (the remote driver tracks its
// RPC client's state; keepalive failures flip it). Connections not
// implementing it are presumed alive.
type ConnHealth interface {
	Alive() bool
}

// NetworkSupport is implemented by drivers managing virtual networks.
type NetworkSupport interface {
	ListNetworks() ([]string, error)
	DefineNetwork(xmlDesc string) error
	UndefineNetwork(name string) error
	StartNetwork(name string) error
	StopNetwork(name string) error
	NetworkXML(name string) (string, error)
	NetworkIsActive(name string) (bool, error)
	NetworkDHCPLeases(name string) ([]DHCPLease, error)
}

// DHCPLease is one lease on a virtual network.
type DHCPLease struct {
	MAC      string
	IP       string
	Hostname string
}

// StorageSupport is implemented by drivers managing storage pools.
type StorageSupport interface {
	ListStoragePools() ([]string, error)
	DefineStoragePool(xmlDesc string) error
	UndefineStoragePool(name string) error
	StartStoragePool(name string) error
	StopStoragePool(name string) error
	StoragePoolXML(name string) (string, error)
	StoragePoolInfo(name string) (StoragePoolInfo, error)
	ListVolumes(pool string) ([]string, error)
	CreateVolume(pool, xmlDesc string) error
	DeleteVolume(pool, name string) error
	VolumeXML(pool, name string) (string, error)
}

// StoragePoolInfo summarises a pool's space accounting.
type StoragePoolInfo struct {
	Active        bool
	CapacityKiB   uint64
	AllocationKiB uint64
	AvailableKiB  uint64
}

// BulkMonitor is implemented by drivers that can collect monitoring data
// for many domains in one call. Over the remote driver this turns an
// O(domains) monitoring sweep into a single round trip; local drivers
// implement it to batch their own locking. Callers should fall back to
// the per-domain loop when the interface is absent or the peer reports
// ErrNoSupport — ListDomainInfo and CollectInventory do exactly that.
type BulkMonitor interface {
	// DomainListInfo returns name+info rows for domains matching flags,
	// or — when names is non-empty — for exactly those names. Domains
	// that disappear mid-sweep are skipped, not errors.
	DomainListInfo(flags ListFlags, names []string) ([]NamedDomainInfo, error)
	// NodeInventory returns the node summary and all domain rows.
	NodeInventory() (NodeInventory, error)
}

// ListDomainInfo collects name+info rows from any driver: one bulk call
// when the driver implements BulkMonitor, otherwise a list + per-domain
// info loop with racing undefines skipped. A BulkMonitor whose peer
// lacks the bulk procedure (an older daemon answering ErrNoSupport)
// also falls back.
func ListDomainInfo(d DriverConn, flags ListFlags, names []string) ([]NamedDomainInfo, error) {
	if bm, ok := d.(BulkMonitor); ok {
		rows, err := bm.DomainListInfo(flags, names)
		if err == nil {
			return rows, nil
		}
		if !IsCode(err, ErrNoSupport) {
			return nil, err
		}
	}
	var err error
	if len(names) == 0 {
		names, err = d.ListDomains(flags)
		if err != nil {
			return nil, err
		}
	}
	rows := make([]NamedDomainInfo, 0, len(names))
	for _, name := range names {
		info, err := d.DomainInfo(name)
		if err != nil {
			if IsCode(err, ErrNoDomain) {
				continue // undefined between list and info
			}
			return nil, err
		}
		rows = append(rows, NamedDomainInfo{Name: name, Info: info})
	}
	return rows, nil
}

// CollectInventory returns a whole-host snapshot from any driver, using
// the BulkMonitor fast path when available.
func CollectInventory(d DriverConn) (NodeInventory, error) {
	if bm, ok := d.(BulkMonitor); ok {
		inv, err := bm.NodeInventory()
		if err == nil {
			return inv, nil
		}
		if !IsCode(err, ErrNoSupport) {
			return NodeInventory{}, err
		}
	}
	node, err := d.NodeInfo()
	if err != nil {
		return NodeInventory{}, err
	}
	rows, err := ListDomainInfo(d, 0, nil)
	if err != nil {
		return NodeInventory{}, err
	}
	return NodeInventory{Node: node, Domains: rows}, nil
}

// BulkMonitorInto is an optional BulkMonitor extension for steady-state
// pollers: the inventory is refreshed into a caller-retained value,
// reusing its Domains capacity (and unchanged name strings) so sweeping
// a fixed fleet costs no per-sweep allocation.
type BulkMonitorInto interface {
	// NodeInventoryInto refreshes *inv in place. On error the contents
	// of *inv are unspecified (but safe to reuse on the next call).
	NodeInventoryInto(inv *NodeInventory) error
}

// CollectInventoryInto refreshes *inv from any driver, reusing its
// storage when the driver supports BulkMonitorInto and falling back to
// a fresh CollectInventory snapshot otherwise.
func CollectInventoryInto(d DriverConn, inv *NodeInventory) error {
	if bi, ok := d.(BulkMonitorInto); ok {
		err := bi.NodeInventoryInto(inv)
		if err == nil || !IsCode(err, ErrNoSupport) {
			return err
		}
	}
	fresh, err := CollectInventory(d)
	if err != nil {
		return err
	}
	*inv = fresh
	return nil
}

// MachineAccess is implemented by local drivers whose domains are backed
// by the simulation substrate; the migration engine and workload clock
// use it. Remote connections do not expose it.
type MachineAccess interface {
	Machine(name string) (*hyper.Machine, error)
}

// MigrateChunk is one page-chunk delivery to a migration sink. Stream
// identifies which of the sender's parallel streams carried it, Pages is
// the chunk's page count (the authoritative accounting), and Data a
// representative payload so the chunk exercises the real frame path.
// Priority marks a post-copy demand-fault pull, which rides the priority
// stream rather than the background copy streams.
type MigrateChunk struct {
	Cookie   uint64
	Stream   int
	Round    int
	Pages    uint64
	Priority bool
	Data     []byte
}

// MigrationSink is implemented by drivers that can receive live-migration
// page traffic for a prepared (defined) destination domain. Like
// BulkMonitor it is optional: the migration engine falls back to a pure
// timing model when the interface is absent or the peer daemon answers
// ErrNoSupport. A local driver accounts chunks directly against the
// destination machine; the remote driver forwards them over dedicated
// wire procedures so the pooled RPC frame path carries the load.
//
// The protocol is prepare → N× pages → finish. MigratePrepare registers
// the transfer against an already-defined destination domain and returns
// a cookie scoping the subsequent calls. MigrateFinish(cookie, false)
// abandons the transfer (abort path); finish-with-commit completes it.
// During post-copy the destination machine's page-presence model is
// advanced by every chunk that arrives after the domain started.
type MigrationSink interface {
	MigratePrepare(domain string, totalPages uint64, streams int) (uint64, error)
	MigratePages(ch *MigrateChunk) error
	MigrateFinish(cookie uint64, commit bool) error
}

// DriverFactory opens a driver connection for a parsed URI.
type DriverFactory func(u *uri.URI) (DriverConn, error)

// registry maps URI schemes to local driver factories, with an optional
// fallback (the remote driver) for unrecognised or remote URIs.
var registry = struct {
	sync.Mutex
	factories map[string]DriverFactory
	fallback  DriverFactory
}{factories: make(map[string]DriverFactory)}

// Register installs a local driver factory for a URI scheme. Later
// registrations replace earlier ones, matching driver-probing order
// being a link-time decision.
func Register(scheme string, f DriverFactory) {
	registry.Lock()
	defer registry.Unlock()
	registry.factories[scheme] = f
}

// RegisterRemote installs the fallback factory used when the URI is
// remote or no local driver claims the scheme.
func RegisterRemote(f DriverFactory) {
	registry.Lock()
	defer registry.Unlock()
	registry.fallback = f
}

// RegisteredSchemes lists the local schemes, sorted (diagnostics).
func RegisteredSchemes() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.factories))
	for s := range registry.factories {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// lookupFactory picks the factory for a URI: remote URIs always go to
// the fallback (the hypervisor driver runs daemon-side); local URIs go
// to the local driver, then the fallback.
func lookupFactory(u *uri.URI) (DriverFactory, error) {
	registry.Lock()
	defer registry.Unlock()
	if u.IsRemote() {
		if registry.fallback == nil {
			return nil, Errorf(ErrNoSupport, "no remote driver registered for %q", u.String())
		}
		return registry.fallback, nil
	}
	if f, ok := registry.factories[u.Driver]; ok {
		return f, nil
	}
	if registry.fallback != nil {
		return registry.fallback, nil
	}
	return nil, Errorf(ErrNoSupport, "no driver for URI scheme %q", u.Driver)
}

// ResetRegistryForTest clears all registrations; only tests use it.
func ResetRegistryForTest() {
	registry.Lock()
	defer registry.Unlock()
	registry.factories = make(map[string]DriverFactory)
	registry.fallback = nil
}
