package core

import (
	"fmt"

	"repro/internal/uuid"
	"repro/internal/xmlspec"
)

// CloneDomain creates a new persistent domain from an existing one's
// definition: the clone gets the new name, a fresh UUID, fresh MAC
// addresses and per-clone disk paths, so both can run side by side. Like
// the classic virt-clone tool this is a pure client-side operation built
// on the stable API, so it works identically against local drivers and
// remote daemons.
func CloneDomain(c *Connect, srcName, newName string) (*Domain, error) {
	if newName == "" || newName == srcName {
		return nil, Errorf(ErrInvalidArg, "clone needs a distinct new name")
	}
	src, err := c.LookupDomain(srcName)
	if err != nil {
		return nil, err
	}
	xmlDesc, err := src.XML()
	if err != nil {
		return nil, err
	}
	def, err := xmlspec.ParseDomain([]byte(xmlDesc))
	if err != nil {
		return nil, Errorf(ErrXML, "source definition unparsable: %v", err)
	}
	def.Name = newName
	def.UUID = uuid.New().String()
	if def.Title != "" {
		def.Title = def.Title + " (clone)"
	}
	// Fresh MACs derived from the clone's identity: deterministic for a
	// given clone, distinct from the source.
	for i := range def.Devices.Interfaces {
		nic := &def.Devices.Interfaces[i]
		if nic.MAC != nil {
			nic.MAC.Address = cloneMAC(def.UUID, i)
		}
	}
	// Per-clone storage: file-backed disks move to a sibling path keyed
	// by the clone name; volume- and block-backed disks are shared
	// infrastructure and stay untouched.
	for i := range def.Devices.Disks {
		disk := &def.Devices.Disks[i]
		if disk.Type == "file" && disk.Source.File != "" {
			disk.Source.File = fmt.Sprintf("%s.%s", disk.Source.File, newName)
		}
	}
	out, err := def.Marshal()
	if err != nil {
		return nil, Errorf(ErrXML, "%v", err)
	}
	return c.DefineDomain(string(out))
}

// cloneMAC derives a locally administered unicast MAC from the clone's
// UUID and NIC index.
func cloneMAC(uuidStr string, nicIndex int) string {
	u := uuid.FromName("clone-mac:" + uuidStr + ":" + fmt.Sprint(nicIndex))
	// 0x52 keeps the conventional virtual-NIC prefix: locally
	// administered, unicast.
	return fmt.Sprintf("52:54:00:%02x:%02x:%02x", u[0], u[1], u[2])
}

// CloneVolume creates a new volume in the same pool with the source's
// capacity and format — again a pure client-side composition of stable
// API calls.
func CloneVolume(c *Connect, pool, srcName, newName string) error {
	if newName == "" || newName == srcName {
		return Errorf(ErrInvalidArg, "clone needs a distinct new name")
	}
	xmlDesc, err := c.VolumeXML(pool, srcName)
	if err != nil {
		return err
	}
	def, err := xmlspec.ParseStorageVolume([]byte(xmlDesc))
	if err != nil {
		return Errorf(ErrXML, "source volume unparsable: %v", err)
	}
	def.Name = newName
	def.Key = ""
	if def.Target != nil {
		def.Target.Path = "" // the backend derives the clone's path
	}
	out, err := def.Marshal()
	if err != nil {
		return Errorf(ErrXML, "%v", err)
	}
	return c.CreateVolume(pool, string(out))
}
