package core

import (
	"sync"

	"repro/internal/events"
	"repro/internal/uri"
)

// Connect is an open management connection — the root object of the API.
type Connect struct {
	mu     sync.Mutex
	uri    *uri.URI
	drv    DriverConn
	closed bool
}

// Open establishes a connection for the given URI string, selecting the
// driver through the registry (remote URIs route to the remote driver).
func Open(uriStr string) (*Connect, error) {
	u, err := uri.Parse(uriStr)
	if err != nil {
		return nil, wrap(ErrInvalidArg, err)
	}
	factory, err := lookupFactory(u)
	if err != nil {
		return nil, err
	}
	drv, err := factory(u)
	if err != nil {
		return nil, wrap(ErrNoConnect, err)
	}
	return &Connect{uri: u, drv: drv}, nil
}

// OpenWith wraps an already-constructed driver connection; the daemon
// uses it to run API calls against its server-side drivers.
func OpenWith(u *uri.URI, drv DriverConn) *Connect {
	return &Connect{uri: u, drv: drv}
}

// Close releases the connection. Further use returns ErrConnectionClosed.
func (c *Connect) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Errorf(ErrConnectionClosed, "connection already closed")
	}
	c.closed = true
	return c.drv.Close()
}

// conn returns the live driver or an error if closed.
func (c *Connect) conn() (DriverConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, Errorf(ErrConnectionClosed, "connection is closed")
	}
	return c.drv, nil
}

// URI returns the connection URI.
func (c *Connect) URI() *uri.URI { return c.uri }

// Driver exposes the underlying driver connection for subsystems that
// need optional interfaces (migration, daemon dispatch).
func (c *Connect) Driver() DriverConn { return c.drv }

// Type returns the driver name.
func (c *Connect) Type() (string, error) {
	d, err := c.conn()
	if err != nil {
		return "", err
	}
	return d.Type(), nil
}

// Version returns the hypervisor version banner.
func (c *Connect) Version() (string, error) {
	d, err := c.conn()
	if err != nil {
		return "", err
	}
	return d.Version()
}

// Hostname returns the managed host's name.
func (c *Connect) Hostname() (string, error) {
	d, err := c.conn()
	if err != nil {
		return "", err
	}
	return d.Hostname()
}

// CapabilitiesXML returns the capabilities document.
func (c *Connect) CapabilitiesXML() (string, error) {
	d, err := c.conn()
	if err != nil {
		return "", err
	}
	return d.CapabilitiesXML()
}

// NodeInfo returns the host node summary.
func (c *Connect) NodeInfo() (NodeInfo, error) {
	d, err := c.conn()
	if err != nil {
		return NodeInfo{}, err
	}
	return d.NodeInfo()
}

// DomainListInfo collects name+info rows for every domain matching
// flags in one sweep — a single round trip on connections whose driver
// implements BulkMonitor, a list + info loop otherwise.
func (c *Connect) DomainListInfo(flags ListFlags) ([]NamedDomainInfo, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	return ListDomainInfo(d, flags, nil)
}

// NodeInventory returns a whole-host monitoring snapshot: the node
// summary plus every domain's info, in one driver call when possible.
func (c *Connect) NodeInventory() (NodeInventory, error) {
	d, err := c.conn()
	if err != nil {
		return NodeInventory{}, err
	}
	return CollectInventory(d)
}

// NodeInventoryInto refreshes *inv in place — the steady-state form of
// NodeInventory for monitoring pollers, reusing the inventory's row
// storage when the driver supports it.
func (c *Connect) NodeInventoryInto(inv *NodeInventory) error {
	d, err := c.conn()
	if err != nil {
		return err
	}
	return CollectInventoryInto(d, inv)
}

// ListAllDomains enumerates domains matching flags (0 = all) as handles.
func (c *Connect) ListAllDomains(flags ListFlags) ([]*Domain, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	names, err := d.ListDomains(flags)
	if err != nil {
		return nil, err
	}
	out := make([]*Domain, 0, len(names))
	for _, n := range names {
		meta, err := d.LookupDomain(n)
		if err != nil {
			// Racing undefine between list and lookup: skip.
			if IsCode(err, ErrNoDomain) {
				continue
			}
			return nil, err
		}
		out = append(out, &Domain{c: c, meta: meta})
	}
	return out, nil
}

// LookupDomain returns a handle for the named domain.
func (c *Connect) LookupDomain(name string) (*Domain, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	meta, err := d.LookupDomain(name)
	if err != nil {
		return nil, err
	}
	return &Domain{c: c, meta: meta}, nil
}

// LookupDomainByUUID returns a handle for the domain with the given UUID.
func (c *Connect) LookupDomainByUUID(uuidStr string) (*Domain, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	meta, err := d.LookupDomainByUUID(uuidStr)
	if err != nil {
		return nil, err
	}
	return &Domain{c: c, meta: meta}, nil
}

// DefineDomain registers a persistent domain from its XML definition.
func (c *Connect) DefineDomain(xmlDesc string) (*Domain, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	meta, err := d.DefineDomain(xmlDesc)
	if err != nil {
		return nil, err
	}
	return &Domain{c: c, meta: meta}, nil
}

// CreateDomainXML defines and immediately starts a domain.
func (c *Connect) CreateDomainXML(xmlDesc string) (*Domain, error) {
	dom, err := c.DefineDomain(xmlDesc)
	if err != nil {
		return nil, err
	}
	if err := dom.Create(); err != nil {
		// Keep the system clean: a failed create leaves no definition.
		_ = dom.Undefine()
		return nil, err
	}
	return dom, nil
}

// SubscribeEvents registers a lifecycle callback; domain filters to one
// name ("" for all). It returns a subscription id, or an error when the
// driver cannot deliver events.
func (c *Connect) SubscribeEvents(domain string, types []events.Type, cb events.Callback) (int, error) {
	d, err := c.conn()
	if err != nil {
		return 0, err
	}
	src, ok := d.(EventSource)
	if !ok {
		return 0, Errorf(ErrNoSupport, "driver %q does not deliver events", d.Type())
	}
	return src.EventBus().Subscribe(domain, types, cb), nil
}

// UnsubscribeEvents removes a previously registered callback.
func (c *Connect) UnsubscribeEvents(id int) error {
	d, err := c.conn()
	if err != nil {
		return err
	}
	src, ok := d.(EventSource)
	if !ok {
		return Errorf(ErrNoSupport, "driver %q does not deliver events", d.Type())
	}
	src.EventBus().Unsubscribe(id)
	return nil
}

// WatchEvents opens a watch stream: sequenced lifecycle events filtered
// to one domain name ("" for all) and an event-type set (nil for all),
// with loss surfaced through the handler's gap flag. Remote connections
// stream server-push frames (WatchSource); local drivers are adapted
// from their event bus, whose synchronous in-process delivery never
// gaps. ErrNoSupport when the driver delivers no events at all.
func (c *Connect) WatchEvents(domain string, types []events.Type, h WatchHandler) (WatchHandle, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	if ws, ok := d.(WatchSource); ok {
		return ws.WatchEvents(domain, types, h)
	}
	src, ok := d.(EventSource)
	if !ok {
		return nil, Errorf(ErrNoSupport, "driver %q does not deliver events", d.Type())
	}
	id := src.EventBus().Subscribe(domain, types, func(ev events.Event) { h(ev, false) })
	return busWatch{bus: src.EventBus(), id: id}, nil
}

// busWatch adapts a local event-bus subscription to the WatchHandle
// contract.
type busWatch struct {
	bus *events.Bus
	id  int
}

// Close implements WatchHandle.
func (w busWatch) Close() error {
	w.bus.Unsubscribe(w.id)
	return nil
}

// Alive reports transport liveness without a round trip: false once the
// connection is closed or its driver (via ConnHealth) knows the
// transport is gone. Drivers without ConnHealth are presumed alive.
func (c *Connect) Alive() bool {
	d, err := c.conn()
	if err != nil {
		return false
	}
	if h, ok := d.(ConnHealth); ok {
		return h.Alive()
	}
	return true
}

// Domain is a handle on one domain.
type Domain struct {
	c    *Connect
	meta DomainMeta
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.meta.Name }

// UUID returns the domain UUID string.
func (d *Domain) UUID() string { return d.meta.UUID }

// ID returns the runtime id at handle-creation time (-1 if inactive).
func (d *Domain) ID() int { return d.meta.ID }

// Connect returns the owning connection.
func (d *Domain) Connect() *Connect { return d.c }

func (d *Domain) drv() (DriverConn, error) { return d.c.conn() }

// Create starts the defined domain.
func (d *Domain) Create() error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.CreateDomain(d.meta.Name)
}

// Destroy force-stops the domain.
func (d *Domain) Destroy() error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.DestroyDomain(d.meta.Name)
}

// Shutdown asks the guest to shut down gracefully.
func (d *Domain) Shutdown() error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.ShutdownDomain(d.meta.Name)
}

// Reboot restarts the guest.
func (d *Domain) Reboot() error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.RebootDomain(d.meta.Name)
}

// Suspend pauses the domain, keeping memory resident.
func (d *Domain) Suspend() error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.SuspendDomain(d.meta.Name)
}

// Resume continues a suspended domain.
func (d *Domain) Resume() error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.ResumeDomain(d.meta.Name)
}

// Undefine removes the persistent definition (the domain must be off).
func (d *Domain) Undefine() error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.UndefineDomain(d.meta.Name)
}

// Info returns the compact info block.
func (d *Domain) Info() (DomainInfo, error) {
	drv, err := d.drv()
	if err != nil {
		return DomainInfo{}, err
	}
	return drv.DomainInfo(d.meta.Name)
}

// Stats returns the extended monitoring snapshot.
func (d *Domain) Stats() (DomainStats, error) {
	drv, err := d.drv()
	if err != nil {
		return DomainStats{}, err
	}
	return drv.DomainStats(d.meta.Name)
}

// State returns just the lifecycle state.
func (d *Domain) State() (DomainState, error) {
	info, err := d.Info()
	if err != nil {
		return DomainNoState, err
	}
	return info.State, nil
}

// XML returns the live definition document.
func (d *Domain) XML() (string, error) {
	drv, err := d.drv()
	if err != nil {
		return "", err
	}
	return drv.DomainXML(d.meta.Name)
}

// SetMemory adjusts the domain's memory balloon.
func (d *Domain) SetMemory(kib uint64) error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.SetDomainMemory(d.meta.Name, kib)
}

// SetVCPUs adjusts the domain's active vCPU count.
func (d *Domain) SetVCPUs(n int) error {
	drv, err := d.drv()
	if err != nil {
		return err
	}
	return drv.SetDomainVCPUs(d.meta.Name, n)
}

// network/storage delegation helpers

func (c *Connect) networkDrv() (NetworkSupport, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	ns, ok := d.(NetworkSupport)
	if !ok {
		return nil, Errorf(ErrNoSupport, "driver %q does not manage networks", d.Type())
	}
	return ns, nil
}

// ListNetworks enumerates virtual network names.
func (c *Connect) ListNetworks() ([]string, error) {
	ns, err := c.networkDrv()
	if err != nil {
		return nil, err
	}
	return ns.ListNetworks()
}

// DefineNetwork registers a virtual network from XML.
func (c *Connect) DefineNetwork(xmlDesc string) error {
	ns, err := c.networkDrv()
	if err != nil {
		return err
	}
	return ns.DefineNetwork(xmlDesc)
}

// UndefineNetwork removes a network definition.
func (c *Connect) UndefineNetwork(name string) error {
	ns, err := c.networkDrv()
	if err != nil {
		return err
	}
	return ns.UndefineNetwork(name)
}

// StartNetwork brings a network up.
func (c *Connect) StartNetwork(name string) error {
	ns, err := c.networkDrv()
	if err != nil {
		return err
	}
	return ns.StartNetwork(name)
}

// StopNetwork tears a network down.
func (c *Connect) StopNetwork(name string) error {
	ns, err := c.networkDrv()
	if err != nil {
		return err
	}
	return ns.StopNetwork(name)
}

// NetworkXML returns a network's definition document.
func (c *Connect) NetworkXML(name string) (string, error) {
	ns, err := c.networkDrv()
	if err != nil {
		return "", err
	}
	return ns.NetworkXML(name)
}

// NetworkIsActive reports whether the network is up.
func (c *Connect) NetworkIsActive(name string) (bool, error) {
	ns, err := c.networkDrv()
	if err != nil {
		return false, err
	}
	return ns.NetworkIsActive(name)
}

// NetworkDHCPLeases lists active leases on the network.
func (c *Connect) NetworkDHCPLeases(name string) ([]DHCPLease, error) {
	ns, err := c.networkDrv()
	if err != nil {
		return nil, err
	}
	return ns.NetworkDHCPLeases(name)
}

func (c *Connect) storageDrv() (StorageSupport, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	ss, ok := d.(StorageSupport)
	if !ok {
		return nil, Errorf(ErrNoSupport, "driver %q does not manage storage", d.Type())
	}
	return ss, nil
}

// ListStoragePools enumerates pool names.
func (c *Connect) ListStoragePools() ([]string, error) {
	ss, err := c.storageDrv()
	if err != nil {
		return nil, err
	}
	return ss.ListStoragePools()
}

// DefineStoragePool registers a pool from XML.
func (c *Connect) DefineStoragePool(xmlDesc string) error {
	ss, err := c.storageDrv()
	if err != nil {
		return err
	}
	return ss.DefineStoragePool(xmlDesc)
}

// UndefineStoragePool removes a pool definition.
func (c *Connect) UndefineStoragePool(name string) error {
	ss, err := c.storageDrv()
	if err != nil {
		return err
	}
	return ss.UndefineStoragePool(name)
}

// StartStoragePool activates a pool.
func (c *Connect) StartStoragePool(name string) error {
	ss, err := c.storageDrv()
	if err != nil {
		return err
	}
	return ss.StartStoragePool(name)
}

// StopStoragePool deactivates a pool.
func (c *Connect) StopStoragePool(name string) error {
	ss, err := c.storageDrv()
	if err != nil {
		return err
	}
	return ss.StopStoragePool(name)
}

// StoragePoolXML returns a pool's definition document.
func (c *Connect) StoragePoolXML(name string) (string, error) {
	ss, err := c.storageDrv()
	if err != nil {
		return "", err
	}
	return ss.StoragePoolXML(name)
}

// StoragePoolInfo returns a pool's space accounting.
func (c *Connect) StoragePoolInfo(name string) (StoragePoolInfo, error) {
	ss, err := c.storageDrv()
	if err != nil {
		return StoragePoolInfo{}, err
	}
	return ss.StoragePoolInfo(name)
}

// ListVolumes enumerates volume names within a pool.
func (c *Connect) ListVolumes(pool string) ([]string, error) {
	ss, err := c.storageDrv()
	if err != nil {
		return nil, err
	}
	return ss.ListVolumes(pool)
}

// CreateVolume creates a volume in a pool from XML.
func (c *Connect) CreateVolume(pool, xmlDesc string) error {
	ss, err := c.storageDrv()
	if err != nil {
		return err
	}
	return ss.CreateVolume(pool, xmlDesc)
}

// DeleteVolume removes a volume from a pool.
func (c *Connect) DeleteVolume(pool, name string) error {
	ss, err := c.storageDrv()
	if err != nil {
		return err
	}
	return ss.DeleteVolume(pool, name)
}

// VolumeXML returns a volume's definition document.
func (c *Connect) VolumeXML(pool, name string) (string, error) {
	ss, err := c.storageDrv()
	if err != nil {
		return "", err
	}
	return ss.VolumeXML(pool, name)
}
