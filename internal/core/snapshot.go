package core

// SnapshotSupport is implemented by drivers that can snapshot domain
// state and revert to it. Snapshots capture the runtime state (lifecycle
// state, memory balloon, vCPUs, accounting); reverting discards the
// current execution.
type SnapshotSupport interface {
	// CreateSnapshot captures the named domain's state, described by an
	// optional snapshot XML document ("" for defaults), and returns the
	// snapshot name.
	CreateSnapshot(domain, xmlDesc string) (string, error)
	// ListSnapshots returns the domain's snapshot names, oldest first.
	ListSnapshots(domain string) ([]string, error)
	// SnapshotXML returns a snapshot's description document.
	SnapshotXML(domain, snapshot string) (string, error)
	// RevertSnapshot discards the domain's current state and restores
	// the snapshot, including its lifecycle state.
	RevertSnapshot(domain, snapshot string) error
	// DeleteSnapshot removes a snapshot's record.
	DeleteSnapshot(domain, snapshot string) error
}

// ManagedSaveSupport is implemented by drivers that can save a running
// domain's state to the host and restore it transparently on the next
// start — the mechanism behind "save all guests across host reboot".
type ManagedSaveSupport interface {
	// ManagedSave stops the running domain, persisting its state; the
	// next CreateDomain restores instead of booting.
	ManagedSave(domain string) error
	// HasManagedSave reports whether a managed save image exists.
	HasManagedSave(domain string) (bool, error)
	// ManagedSaveRemove discards the image so the next start boots fresh.
	ManagedSaveRemove(domain string) error
}

// snapshotDrv returns the connection's snapshot interface.
func (c *Connect) snapshotDrv() (SnapshotSupport, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	ss, ok := d.(SnapshotSupport)
	if !ok {
		return nil, Errorf(ErrNoSupport, "driver %q does not support snapshots", d.Type())
	}
	return ss, nil
}

// CreateSnapshot captures the domain's state; see SnapshotSupport.
func (d *Domain) CreateSnapshot(xmlDesc string) (string, error) {
	ss, err := d.c.snapshotDrv()
	if err != nil {
		return "", err
	}
	return ss.CreateSnapshot(d.meta.Name, xmlDesc)
}

// ListSnapshots returns the domain's snapshot names, oldest first.
func (d *Domain) ListSnapshots() ([]string, error) {
	ss, err := d.c.snapshotDrv()
	if err != nil {
		return nil, err
	}
	return ss.ListSnapshots(d.meta.Name)
}

// SnapshotXML returns a snapshot's description document.
func (d *Domain) SnapshotXML(snapshot string) (string, error) {
	ss, err := d.c.snapshotDrv()
	if err != nil {
		return "", err
	}
	return ss.SnapshotXML(d.meta.Name, snapshot)
}

// RevertSnapshot restores the domain to a snapshot.
func (d *Domain) RevertSnapshot(snapshot string) error {
	ss, err := d.c.snapshotDrv()
	if err != nil {
		return err
	}
	return ss.RevertSnapshot(d.meta.Name, snapshot)
}

// DeleteSnapshot removes a snapshot's record.
func (d *Domain) DeleteSnapshot(snapshot string) error {
	ss, err := d.c.snapshotDrv()
	if err != nil {
		return err
	}
	return ss.DeleteSnapshot(d.meta.Name, snapshot)
}

func (c *Connect) managedSaveDrv() (ManagedSaveSupport, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	ms, ok := d.(ManagedSaveSupport)
	if !ok {
		return nil, Errorf(ErrNoSupport, "driver %q does not support managed save", d.Type())
	}
	return ms, nil
}

// ManagedSave stops the running domain, persisting its state.
func (d *Domain) ManagedSave() error {
	ms, err := d.c.managedSaveDrv()
	if err != nil {
		return err
	}
	return ms.ManagedSave(d.meta.Name)
}

// HasManagedSave reports whether a managed save image exists.
func (d *Domain) HasManagedSave() (bool, error) {
	ms, err := d.c.managedSaveDrv()
	if err != nil {
		return false, err
	}
	return ms.HasManagedSave(d.meta.Name)
}

// ManagedSaveRemove discards the managed save image.
func (d *Domain) ManagedSaveRemove() error {
	ms, err := d.c.managedSaveDrv()
	if err != nil {
		return err
	}
	return ms.ManagedSaveRemove(d.meta.Name)
}

// DeviceSupport is implemented by drivers that can hot-plug devices:
// attaching adds the device to the definition (and to the live guest
// where that is meaningful, e.g. leasing an address for a network NIC);
// detaching removes it by identity.
type DeviceSupport interface {
	AttachDevice(domain, deviceXML string) error
	DetachDevice(domain, deviceXML string) error
}

func (c *Connect) deviceDrv() (DeviceSupport, error) {
	d, err := c.conn()
	if err != nil {
		return nil, err
	}
	ds, ok := d.(DeviceSupport)
	if !ok {
		return nil, Errorf(ErrNoSupport, "driver %q does not support device hot-plug", d.Type())
	}
	return ds, nil
}

// AttachDevice hot-plugs a device described by a standalone XML element.
func (d *Domain) AttachDevice(deviceXML string) error {
	ds, err := d.c.deviceDrv()
	if err != nil {
		return err
	}
	return ds.AttachDevice(d.meta.Name, deviceXML)
}

// DetachDevice removes a device matched by identity.
func (d *Domain) DetachDevice(deviceXML string) error {
	ds, err := d.c.deviceDrv()
	if err != nil {
		return err
	}
	return ds.DetachDevice(d.meta.Name, deviceXML)
}
