package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/uri"
)

func TestErrorModel(t *testing.T) {
	err := Errorf(ErrNoDomain, "no domain %q", "x")
	if err.Error() != `domain not found: no domain "x"` {
		t.Fatalf("%q", err.Error())
	}
	if CodeOf(err) != ErrNoDomain || !IsCode(err, ErrNoDomain) {
		t.Fatal("code extraction failed")
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if CodeOf(wrapped) != ErrNoDomain {
		t.Fatal("unwrapping failed")
	}
	if CodeOf(errors.New("plain")) != ErrInternal {
		t.Fatal("non-API error must map to internal")
	}
	if CodeOf(nil) != 0 {
		t.Fatal("nil error must map to 0")
	}
	if ErrAuthFailed.String() != "authentication failed" {
		t.Fatalf("%q", ErrAuthFailed)
	}
	if ErrorCode(999).String() != "error(999)" {
		t.Fatal("unknown code formatting")
	}
}

func TestWrapPassthrough(t *testing.T) {
	orig := Errorf(ErrNoNetwork, "gone")
	if got := wrap(ErrInternal, orig); CodeOf(got) != ErrNoNetwork {
		t.Fatal("wrap must preserve existing API errors")
	}
	if got := wrap(ErrXML, errors.New("bad")); CodeOf(got) != ErrXML {
		t.Fatal("wrap must assign the given code")
	}
	if wrap(ErrXML, nil) != nil {
		t.Fatal("wrap(nil) must be nil")
	}
}

func TestDomainStateNames(t *testing.T) {
	if DomainRunning.String() != "running" || DomainShutoff.String() != "shut off" {
		t.Fatal("state names wrong")
	}
	if DomainState(42).String() != "state(42)" {
		t.Fatal("unknown state formatting")
	}
}

// fakeDriver is a minimal DriverConn for registry and Connect tests.
type fakeDriver struct {
	typ    string
	closed bool
}

func (f *fakeDriver) Close() error                     { f.closed = true; return nil }
func (f *fakeDriver) Type() string                     { return f.typ }
func (f *fakeDriver) Version() (string, error)         { return "fake 1.0", nil }
func (f *fakeDriver) Hostname() (string, error)        { return "fakehost", nil }
func (f *fakeDriver) CapabilitiesXML() (string, error) { return "<capabilities/>", nil }
func (f *fakeDriver) NodeInfo() (NodeInfo, error)      { return NodeInfo{CPUs: 4}, nil }
func (f *fakeDriver) ListDomains(ListFlags) ([]string, error) {
	return []string{"a"}, nil
}
func (f *fakeDriver) LookupDomain(name string) (DomainMeta, error) {
	if name != "a" {
		return DomainMeta{}, Errorf(ErrNoDomain, "no %q", name)
	}
	return DomainMeta{Name: "a", UUID: "u", ID: 1}, nil
}
func (f *fakeDriver) LookupDomainByUUID(string) (DomainMeta, error) {
	return DomainMeta{Name: "a"}, nil
}
func (f *fakeDriver) DefineDomain(string) (DomainMeta, error) {
	return DomainMeta{Name: "a"}, nil
}
func (f *fakeDriver) UndefineDomain(string) error { return nil }
func (f *fakeDriver) CreateDomain(string) error   { return nil }
func (f *fakeDriver) DestroyDomain(string) error  { return nil }
func (f *fakeDriver) ShutdownDomain(string) error { return nil }
func (f *fakeDriver) RebootDomain(string) error   { return nil }
func (f *fakeDriver) SuspendDomain(string) error  { return nil }
func (f *fakeDriver) ResumeDomain(string) error   { return nil }
func (f *fakeDriver) DomainInfo(string) (DomainInfo, error) {
	return DomainInfo{State: DomainRunning}, nil
}
func (f *fakeDriver) DomainStats(string) (DomainStats, error) {
	return DomainStats{}, nil
}
func (f *fakeDriver) DomainXML(string) (string, error)     { return "<domain/>", nil }
func (f *fakeDriver) SetDomainMemory(string, uint64) error { return nil }
func (f *fakeDriver) SetDomainVCPUs(string, int) error     { return nil }

func TestRegistryLocalAndFallback(t *testing.T) {
	ResetRegistryForTest()
	defer ResetRegistryForTest()

	Register("fake", func(u *uri.URI) (DriverConn, error) {
		return &fakeDriver{typ: "fake"}, nil
	})
	if got := RegisteredSchemes(); len(got) != 1 || got[0] != "fake" {
		t.Fatalf("schemes %v", got)
	}

	conn, err := Open("fake:///system")
	if err != nil {
		t.Fatal(err)
	}
	if typ, _ := conn.Type(); typ != "fake" {
		t.Fatalf("type %q", typ)
	}

	// Unknown local scheme with no fallback fails.
	if _, err := Open("mystery:///x"); !IsCode(err, ErrNoSupport) {
		t.Fatalf("unknown scheme: %v", err)
	}
	// Remote URI with no fallback fails.
	if _, err := Open("fake+tcp://host/system"); !IsCode(err, ErrNoSupport) {
		t.Fatalf("remote without fallback: %v", err)
	}

	// Install a fallback: remote URIs and unknown schemes route there.
	RegisterRemote(func(u *uri.URI) (DriverConn, error) {
		return &fakeDriver{typ: "remote:" + u.Driver}, nil
	})
	conn2, err := Open("fake+tcp://host/system")
	if err != nil {
		t.Fatal(err)
	}
	if typ, _ := conn2.Type(); typ != "remote:fake" {
		t.Fatalf("remote routing: %q", typ)
	}
	conn3, err := Open("mystery:///x")
	if err != nil {
		t.Fatal(err)
	}
	if typ, _ := conn3.Type(); typ != "remote:mystery" {
		t.Fatalf("fallback routing: %q", typ)
	}
}

func TestOpenRejectsBadURI(t *testing.T) {
	ResetRegistryForTest()
	defer ResetRegistryForTest()
	if _, err := Open("://"); !IsCode(err, ErrInvalidArg) {
		t.Fatalf("bad uri: %v", err)
	}
}

func TestConnectCloseSemantics(t *testing.T) {
	drv := &fakeDriver{typ: "fake"}
	u, _ := uri.Parse("fake:///")
	conn := OpenWith(u, drv)
	if _, err := conn.Hostname(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	if !drv.closed {
		t.Fatal("driver not closed")
	}
	if err := conn.Close(); !IsCode(err, ErrConnectionClosed) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := conn.Hostname(); !IsCode(err, ErrConnectionClosed) {
		t.Fatalf("use after close: %v", err)
	}
	if _, err := conn.ListAllDomains(0); !IsCode(err, ErrConnectionClosed) {
		t.Fatalf("list after close: %v", err)
	}
	dom := &Domain{c: conn, meta: DomainMeta{Name: "a"}}
	if err := dom.Create(); !IsCode(err, ErrConnectionClosed) {
		t.Fatalf("domain op after close: %v", err)
	}
}

func TestOptionalInterfacesAbsent(t *testing.T) {
	// fakeDriver implements neither networks, storage nor events.
	conn := OpenWith(&uri.URI{Driver: "fake"}, &fakeDriver{typ: "fake"})
	if _, err := conn.ListNetworks(); !IsCode(err, ErrNoSupport) {
		t.Fatalf("networks: %v", err)
	}
	if _, err := conn.ListStoragePools(); !IsCode(err, ErrNoSupport) {
		t.Fatalf("storage: %v", err)
	}
	if _, err := conn.SubscribeEvents("", nil, nil); !IsCode(err, ErrNoSupport) {
		t.Fatalf("events: %v", err)
	}
	if err := conn.UnsubscribeEvents(1); !IsCode(err, ErrNoSupport) {
		t.Fatalf("unsubscribe: %v", err)
	}
}

func TestListAllDomainsBuildsHandles(t *testing.T) {
	conn := OpenWith(&uri.URI{Driver: "fake"}, &fakeDriver{typ: "fake"})
	doms, err := conn.ListAllDomains(0)
	if err != nil || len(doms) != 1 {
		t.Fatalf("%v %v", doms, err)
	}
	d := doms[0]
	if d.Name() != "a" || d.UUID() != "u" || d.ID() != 1 || d.Connect() != conn {
		t.Fatalf("%+v", d)
	}
	st, err := d.State()
	if err != nil || st != DomainRunning {
		t.Fatalf("%v %v", st, err)
	}
}
