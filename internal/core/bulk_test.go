package core

import "testing"

// bulkDriver layers BulkMonitor behaviour over fakeDriver: it can
// answer bulk calls, refuse them like an old daemon (ErrNoSupport), or
// fail outright, while counting what was invoked.
type bulkDriver struct {
	fakeDriver
	bulkErr   error // returned by the bulk procedures; nil = answer
	bulkCalls int
	infoCalls int
	listCalls int
}

func (d *bulkDriver) ListDomains(f ListFlags) ([]string, error) {
	d.listCalls++
	return []string{"a", "b", "gone"}, nil
}

func (d *bulkDriver) DomainInfo(name string) (DomainInfo, error) {
	d.infoCalls++
	if name == "gone" {
		return DomainInfo{}, Errorf(ErrNoDomain, "no %q", name)
	}
	return DomainInfo{State: DomainRunning, MemKiB: 1024}, nil
}

func (d *bulkDriver) DomainListInfo(flags ListFlags, names []string) ([]NamedDomainInfo, error) {
	d.bulkCalls++
	if d.bulkErr != nil {
		return nil, d.bulkErr
	}
	return []NamedDomainInfo{
		{Name: "a", Info: DomainInfo{State: DomainRunning, MemKiB: 1024}},
		{Name: "b", Info: DomainInfo{State: DomainRunning, MemKiB: 1024}},
	}, nil
}

func (d *bulkDriver) NodeInventory() (NodeInventory, error) {
	d.bulkCalls++
	if d.bulkErr != nil {
		return NodeInventory{}, d.bulkErr
	}
	rows, _ := d.DomainListInfo(0, nil)
	d.bulkCalls-- // inner call above; count the outer one only
	return NodeInventory{Node: NodeInfo{CPUs: 4}, Domains: rows}, nil
}

func TestListDomainInfoUsesBulkPath(t *testing.T) {
	d := &bulkDriver{}
	rows, err := ListDomainInfo(d, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || d.bulkCalls != 1 || d.infoCalls != 0 || d.listCalls != 0 {
		t.Fatalf("bulk path not taken: rows=%d bulk=%d info=%d list=%d",
			len(rows), d.bulkCalls, d.infoCalls, d.listCalls)
	}
}

func TestListDomainInfoFallsBackOnNoSupport(t *testing.T) {
	// An old daemon answers the bulk procedure with ErrNoSupport; the
	// helper must degrade to the list + per-domain loop, skipping
	// domains undefined mid-sweep.
	d := &bulkDriver{bulkErr: Errorf(ErrNoSupport, "unknown procedure")}
	rows, err := ListDomainInfo(d, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("fallback rows = %d, want 2 (racing undefine skipped)", len(rows))
	}
	if d.listCalls != 1 || d.infoCalls != 3 {
		t.Fatalf("fallback path not taken: list=%d info=%d", d.listCalls, d.infoCalls)
	}
}

func TestListDomainInfoPropagatesRealErrors(t *testing.T) {
	d := &bulkDriver{bulkErr: Errorf(ErrInternal, "hypervisor exploded")}
	if _, err := ListDomainInfo(d, 0, nil); !IsCode(err, ErrInternal) {
		t.Fatalf("real bulk error not propagated: %v", err)
	}
	if d.infoCalls != 0 {
		t.Fatal("fell back despite a non-ErrNoSupport failure")
	}
}

func TestCollectInventoryFallback(t *testing.T) {
	d := &bulkDriver{bulkErr: Errorf(ErrNoSupport, "unknown procedure")}
	inv, err := CollectInventory(d)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Node.CPUs != 4 || len(inv.Domains) != 2 {
		t.Fatalf("fallback inventory: %+v", inv)
	}

	fast := &bulkDriver{}
	inv, err = CollectInventory(fast)
	if err != nil {
		t.Fatal(err)
	}
	if inv.Node.CPUs != 4 || len(inv.Domains) != 2 || fast.infoCalls != 0 {
		t.Fatalf("bulk inventory: %+v (info calls %d)", inv, fast.infoCalls)
	}
}

// intoDriver adds BulkMonitorInto on top of bulkDriver.
type intoDriver struct {
	bulkDriver
	intoCalls int
}

func (d *intoDriver) NodeInventoryInto(inv *NodeInventory) error {
	d.intoCalls++
	if d.bulkErr != nil {
		return d.bulkErr
	}
	fresh, err := d.NodeInventory()
	if err != nil {
		return err
	}
	*inv = fresh
	return nil
}

func TestCollectInventoryInto(t *testing.T) {
	// A driver with the Into extension is used directly.
	fast := &intoDriver{}
	var inv NodeInventory
	if err := CollectInventoryInto(fast, &inv); err != nil {
		t.Fatal(err)
	}
	if inv.Node.CPUs != 4 || len(inv.Domains) != 2 || fast.intoCalls != 1 {
		t.Fatalf("into inventory: %+v (into calls %d)", inv, fast.intoCalls)
	}

	// An Into driver whose peer lacks the procedure degrades all the way
	// to the per-domain loop.
	old := &intoDriver{bulkDriver: bulkDriver{bulkErr: Errorf(ErrNoSupport, "unknown procedure")}}
	inv = NodeInventory{}
	if err := CollectInventoryInto(old, &inv); err != nil {
		t.Fatal(err)
	}
	if inv.Node.CPUs != 4 || len(inv.Domains) != 2 || old.infoCalls == 0 {
		t.Fatalf("fallback inventory: %+v (info calls %d)", inv, old.infoCalls)
	}

	// A plain BulkMonitor driver still answers in one bulk call.
	plain := &bulkDriver{}
	inv = NodeInventory{}
	if err := CollectInventoryInto(plain, &inv); err != nil {
		t.Fatal(err)
	}
	if inv.Node.CPUs != 4 || len(inv.Domains) != 2 || plain.infoCalls != 0 {
		t.Fatalf("bulk inventory: %+v", inv)
	}

	// Real errors propagate without a fallback sweep.
	bad := &intoDriver{bulkDriver: bulkDriver{bulkErr: Errorf(ErrInternal, "boom")}}
	if err := CollectInventoryInto(bad, &NodeInventory{}); !IsCode(err, ErrInternal) {
		t.Fatalf("real error not propagated: %v", err)
	}
}

func TestListDomainInfoNamesFilter(t *testing.T) {
	d := &bulkDriver{bulkErr: Errorf(ErrNoSupport, "unknown procedure")}
	rows, err := ListDomainInfo(d, 0, []string{"a", "gone"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Name != "a" {
		t.Fatalf("names filter rows: %+v", rows)
	}
	if d.listCalls != 0 {
		t.Fatal("listed domains despite an explicit names filter")
	}
}
