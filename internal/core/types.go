package core

import "fmt"

// DomainState is the public domain lifecycle state.
type DomainState int

// Public domain states.
const (
	DomainNoState DomainState = iota
	DomainRunning
	DomainBlocked
	DomainPaused
	DomainShutdown
	DomainShutoff
	DomainCrashed
	DomainPMSuspended
)

var domainStateNames = map[DomainState]string{
	DomainNoState:     "no state",
	DomainRunning:     "running",
	DomainBlocked:     "blocked",
	DomainPaused:      "paused",
	DomainShutdown:    "in shutdown",
	DomainShutoff:     "shut off",
	DomainCrashed:     "crashed",
	DomainPMSuspended: "pmsuspended",
}

func (s DomainState) String() string {
	if n, ok := domainStateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// DomainMeta is the identity tuple of a domain handle.
type DomainMeta struct {
	Name string
	UUID string
	ID   int // positive while running, -1 otherwise
}

// DomainInfo is the classic compact info block.
type DomainInfo struct {
	State     DomainState
	MaxMemKiB uint64
	MemKiB    uint64
	VCPUs     int
	CPUTimeNs uint64
}

// DomainStats is the extended monitoring snapshot used by non-intrusive
// fleet monitoring: everything is collected hypervisor-side.
type DomainStats struct {
	State      DomainState
	CPUTimeNs  uint64
	MemKiB     uint64
	MaxMemKiB  uint64
	VCPUs      int
	RdBytes    uint64
	WrBytes    uint64
	RdReqs     uint64
	WrReqs     uint64
	RxBytes    uint64
	TxBytes    uint64
	RxPkts     uint64
	TxPkts     uint64
	DirtyPages uint64
}

// NodeInfo describes the host node a connection manages.
type NodeInfo struct {
	Model     string
	MemoryKiB uint64
	CPUs      int
	MHz       int
	NUMANodes int
	Sockets   int
	Cores     int
	Threads   int
}

// NamedDomainInfo pairs a domain name with its compact info block; the
// unit of bulk monitoring sweeps.
type NamedDomainInfo struct {
	Name string
	Info DomainInfo
}

// NodeInventory is a whole-host monitoring snapshot collected in one
// driver call: the node summary plus the info of every domain.
type NodeInventory struct {
	Node    NodeInfo
	Domains []NamedDomainInfo
}

// ListFlags selects which domains ListAllDomains returns.
type ListFlags int

// List filters; zero lists everything.
const (
	ListActive ListFlags = 1 << iota
	ListInactive
)

// MigrateOptions tunes a live migration.
type MigrateOptions struct {
	BandwidthMBps  uint64 // transfer link bandwidth; 0 = 1000
	MaxDowntimeMs  uint64 // convergence target; 0 = 300
	MaxIterations  int    // pre-copy rounds before forced stop-and-copy; 0 = 30
	UndefineSource bool   // remove the source definition after success

	// ParallelStreams splits every copy round across N concurrent
	// transfer streams. Aggregate throughput grows monotonically with N
	// but is bounded by the link: each stream pays a fixed per-stream
	// protocol overhead, so the gain flattens as N rises. 0 = 1.
	ParallelStreams int

	// AutoConverge progressively throttles the source vCPUs when the
	// dirty rate outruns effective bandwidth for consecutive rounds, so
	// otherwise non-convergent workloads still meet the downtime target.
	// The throttle is restored on switch-over or abort.
	AutoConverge bool

	// PostCopy switches execution to the destination after one pre-copy
	// round and fault-pulls missing pages on demand: downtime is bounded
	// by the switch-over handshake regardless of dirty rate, traded
	// against a longer total time and a pull-stream failure mode
	// (ErrPostCopy).
	PostCopy bool
}
