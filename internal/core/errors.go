// Package core implements the uniform management API — the paper's
// primary contribution. A management application opens a Connect from a
// connection URI; the registry picks the hypervisor driver (or the remote
// driver for daemon-managed hypervisors); and every subsequent operation
// on domains, networks and storage goes through the same stable surface
// regardless of which virtualization solution sits underneath.
package core

import (
	"errors"
	"fmt"
	"time"
)

// ErrorCode classifies API errors so they survive the RPC boundary and
// callers can switch on failure class rather than message text.
type ErrorCode int

// Error classes, mirroring the classic management-API error taxonomy.
const (
	ErrInternal ErrorCode = 1 + iota
	ErrNoSupport
	ErrInvalidArg
	ErrOperationInvalid // operation not valid in current object state
	ErrNoConnect
	ErrNoDomain
	ErrDuplicate
	ErrNoNetwork
	ErrNoStoragePool
	ErrNoStorageVol
	ErrAuthFailed
	ErrRPC
	ErrConnectionClosed
	ErrXML
	ErrMigrate
	ErrAdmin
	ErrHostUnreachable // the managing daemon itself is down or lost mid-call
	ErrTimedOut        // the call exceeded its deadline; the op may have run
	ErrOverloaded      // admission control rejected the call before dispatch; retry after backoff
	ErrAccessDenied    // policy forbids this client the procedure or object
	ErrPostCopy        // post-copy pull stream died mid-copy; source was resumed, destination undone
)

var codeNames = map[ErrorCode]string{
	ErrInternal:         "internal error",
	ErrNoSupport:        "not supported",
	ErrInvalidArg:       "invalid argument",
	ErrOperationInvalid: "operation invalid",
	ErrNoConnect:        "no connection",
	ErrNoDomain:         "domain not found",
	ErrDuplicate:        "object already exists",
	ErrNoNetwork:        "network not found",
	ErrNoStoragePool:    "storage pool not found",
	ErrNoStorageVol:     "storage volume not found",
	ErrAuthFailed:       "authentication failed",
	ErrRPC:              "RPC failure",
	ErrConnectionClosed: "connection closed",
	ErrXML:              "XML error",
	ErrMigrate:          "migration failure",
	ErrAdmin:            "admin operation failed",
	ErrHostUnreachable:  "host unreachable",
	ErrTimedOut:         "operation timed out",
	ErrOverloaded:       "overloaded",
	ErrAccessDenied:     "access denied",
	ErrPostCopy:         "post-copy migration failure",
}

func (c ErrorCode) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("error(%d)", int(c))
}

// Error is the API error type.
type Error struct {
	Code    ErrorCode
	Message string

	// RetryAfter is the server's backoff hint on ErrOverloaded
	// rejections: how long to wait before the call is worth repeating.
	// Zero means no hint. It rides the RPC error frame, so remote
	// callers see the same hint the daemon computed.
	RetryAfter time.Duration
}

// Errorf constructs an Error with a formatted message.
func Errorf(code ErrorCode, format string, args ...interface{}) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Overloadedf constructs an ErrOverloaded rejection carrying a
// retry-after hint. Admission control rejects before dispatch, so the
// operation never ran and repeating it after the hint is always safe.
func Overloadedf(retryAfter time.Duration, format string, args ...interface{}) *Error {
	return &Error{Code: ErrOverloaded, Message: fmt.Sprintf(format, args...), RetryAfter: retryAfter}
}

// RetryAfterOf extracts the backoff hint from err, unwrapping as
// needed; errors without one report zero.
func RetryAfterOf(err error) time.Duration {
	var e *Error
	if errors.As(err, &e) {
		return e.RetryAfter
	}
	return 0
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// CodeOf extracts the ErrorCode from err, unwrapping as needed;
// non-API errors report ErrInternal, nil reports 0.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return 0
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	return ErrInternal
}

// IsCode reports whether err carries the given code.
func IsCode(err error, code ErrorCode) bool { return CodeOf(err) == code }

// IsRetryable reports whether err is a host-level failure — the daemon
// is unreachable or died mid-call — rather than an operation error that
// would fail identically anywhere. Multi-host schedulers use it to
// decide between retrying the same request on a different host and
// propagating the failure to the caller.
// ErrOverloaded is retryable too: the daemon is alive but shedding, the
// call was rejected before dispatch, and the error carries a
// RetryAfter hint — callers should delay by the hint (see RetryAfterOf)
// rather than hot-retry, and must not treat the host as down.
func IsRetryable(err error) bool {
	switch CodeOf(err) {
	case ErrHostUnreachable, ErrNoConnect, ErrOverloaded:
		return true
	default:
		return false
	}
}

// wrap converts an arbitrary error into an API error with the given
// code, passing existing API errors through unchanged.
func wrap(code ErrorCode, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return &Error{Code: code, Message: err.Error()}
}
