package core

import (
	"fmt"
	"testing"
	"time"
)

// TestQoSRetryableMatrix pins IsRetryable over the complete error-code
// enum: exactly the host-level codes (daemon unreachable, never
// connected) plus admission rejections are retryable — everything else
// would fail identically on any host and must propagate.
func TestQoSRetryableMatrix(t *testing.T) {
	cases := []struct {
		code ErrorCode
		want bool
	}{
		{ErrInternal, false},
		{ErrNoSupport, false},
		{ErrInvalidArg, false},
		{ErrOperationInvalid, false},
		{ErrNoConnect, true},
		{ErrNoDomain, false},
		{ErrDuplicate, false},
		{ErrNoNetwork, false},
		{ErrNoStoragePool, false},
		{ErrNoStorageVol, false},
		{ErrAuthFailed, false},
		{ErrRPC, false},
		{ErrConnectionClosed, false},
		{ErrXML, false},
		{ErrMigrate, false},
		{ErrAdmin, false},
		{ErrHostUnreachable, true},
		{ErrTimedOut, false},
		{ErrOverloaded, true},
		{ErrAccessDenied, false},
	}
	// The table must stay exhaustive: a new code added to the enum
	// without a row here fails loudly instead of silently defaulting.
	if last := ErrAccessDenied; len(cases) != int(last) {
		t.Fatalf("matrix covers %d codes but the enum has %d — add the new code", len(cases), int(last))
	}
	for _, tc := range cases {
		err := Errorf(tc.code, "probe")
		if got := IsRetryable(err); got != tc.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", tc.code, got, tc.want)
		}
		// Wrapping must not change the verdict.
		wrapped := fmt.Errorf("outer: %w", err)
		if got := IsRetryable(wrapped); got != tc.want {
			t.Errorf("IsRetryable(wrapped %v) = %v, want %v", tc.code, got, tc.want)
		}
	}
	if IsRetryable(nil) {
		t.Error("IsRetryable(nil) must be false")
	}
	if IsRetryable(fmt.Errorf("plain")) {
		t.Error("IsRetryable(non-API error) must be false")
	}
}

func TestQoSRetryAfterOf(t *testing.T) {
	err := Overloadedf(75*time.Millisecond, "class %q throttled", "bronze")
	if !IsCode(err, ErrOverloaded) || !IsRetryable(err) {
		t.Fatalf("Overloadedf produced %v", err)
	}
	if got := RetryAfterOf(err); got != 75*time.Millisecond {
		t.Fatalf("RetryAfterOf = %v", got)
	}
	if got := RetryAfterOf(fmt.Errorf("wrap: %w", err)); got != 75*time.Millisecond {
		t.Fatalf("RetryAfterOf through wrap = %v", got)
	}
	if got := RetryAfterOf(Errorf(ErrNoDomain, "x")); got != 0 {
		t.Fatalf("RetryAfterOf without hint = %v", got)
	}
	if got := RetryAfterOf(nil); got != 0 {
		t.Fatalf("RetryAfterOf(nil) = %v", got)
	}
}
