package logging

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		want Priority
		ok   bool
	}{
		{"1", Debug, true},
		{"2", Info, true},
		{"3", Warn, true},
		{"4", Error, true},
		{"debug", Debug, true},
		{"INFO", Info, true},
		{"warning", Warn, true},
		{"warn", Warn, true},
		{"error", Error, true},
		{" error ", Error, true},
		{"0", 0, false},
		{"5", 0, false},
		{"-1", 0, false},
		{"", 0, false},
		{"verbose", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePriority(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePriority(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParsePriority(%q)=%v, want %v", c.in, got, c.want)
		}
	}
}

func TestPriorityString(t *testing.T) {
	if Debug.String() != "debug" || Error.String() != "error" {
		t.Fatalf("unexpected priority names: %v %v", Debug, Error)
	}
	if got := Priority(9).String(); got != "priority(9)" {
		t.Fatalf("unknown priority rendered as %q", got)
	}
	if Priority(0).Valid() || Priority(5).Valid() {
		t.Fatal("out-of-range priorities must not be valid")
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("3:util.object")
	if err != nil {
		t.Fatal(err)
	}
	if f.Priority != Warn || f.Match != "util.object" {
		t.Fatalf("got %+v", f)
	}
	for _, bad := range []string{"", "3", "util.object", "0:util", "5:util", "3:", "3:a b"} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestFilterMatching(t *testing.T) {
	f := Filter{Priority: Warn, Match: "util"}
	cases := map[string]bool{
		"util":          true,
		"util.object":   true,
		"util.object.x": true,
		"utility":       false,
		"rpc":           false,
		"":              false,
	}
	for mod, want := range cases {
		if got := f.matches(mod); got != want {
			t.Errorf("filter %v matches(%q)=%v, want %v", f, mod, got, want)
		}
	}
}

func TestParseFiltersListAndDuplicates(t *testing.T) {
	fs, err := ParseFilters("3:util.object 4:rpc 1:event")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("want 3 filters, got %d", len(fs))
	}
	if _, err := ParseFilters("3:rpc 4:rpc"); err == nil {
		t.Fatal("duplicate module filter must be rejected")
	}
	fs, err = ParseFilters("   ")
	if err != nil || len(fs) != 0 {
		t.Fatalf("empty filter list: %v %v", fs, err)
	}
}

func TestFormatFiltersRoundTrip(t *testing.T) {
	in := "3:util.object 4:rpc"
	fs, err := ParseFilters(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatFilters(fs); got != in {
		t.Fatalf("round trip %q -> %q", in, got)
	}
}

func TestParseOutput(t *testing.T) {
	cases := []struct {
		in   string
		kind string
		dest string
		ok   bool
	}{
		{"1:stderr", "stderr", "", true},
		{"3:journald", "journald", "", true},
		{"2:buffer", "buffer", "", true},
		{"1:file:/var/log/virtd.log", "file", "/var/log/virtd.log", true},
		{"3:syslog:virtd", "syslog", "virtd", true},
		{"1:file", "", "", false},
		{"1:file:", "", "", false},
		{"1:file:relative/path", "", "", false},
		{"1:syslog", "", "", false},
		{"1:stderr:extra", "", "", false},
		{"5:stderr", "", "", false},
		{"x:stderr", "", "", false},
		{"1:pipe:/x", "", "", false},
		{"", "", "", false},
		{"stderr", "", "", false},
	}
	for _, c := range cases {
		o, err := ParseOutput(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseOutput(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (o.Kind != c.kind || o.Dest != c.dest) {
			t.Errorf("ParseOutput(%q)=%+v", c.in, o)
		}
	}
}

func TestOutputStringRoundTrip(t *testing.T) {
	for _, in := range []string{"1:stderr", "1:file:/tmp/x.log", "3:syslog:ident", "4:journald"} {
		o, err := ParseOutput(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := o.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
	}
}

func TestLoggerLevelGate(t *testing.T) {
	l := NewQuiet(Warn)
	l.Debugf("mod", "dropped")
	l.Infof("mod", "dropped")
	l.Warnf("mod", "kept")
	l.Errorf("mod", "kept")
	emitted, dropped := l.Stats()
	if emitted != 2 || dropped != 2 {
		t.Fatalf("emitted=%d dropped=%d", emitted, dropped)
	}
}

func TestLoggerSetLevel(t *testing.T) {
	l := NewQuiet(Error)
	if err := l.SetLevel(Debug); err != nil {
		t.Fatal(err)
	}
	if l.Level() != Debug {
		t.Fatalf("level=%v", l.Level())
	}
	if err := l.SetLevel(Priority(0)); err == nil {
		t.Fatal("invalid level accepted")
	}
	if err := l.SetLevel(Priority(5)); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestLoggerFiltersOverrideGlobal(t *testing.T) {
	l := NewQuiet(Error)
	if err := l.DefineFilters("1:noisy 3:util"); err != nil {
		t.Fatal(err)
	}
	if !l.Enabled("noisy", Debug) {
		t.Fatal("filter should open noisy at debug")
	}
	if !l.Enabled("noisy.sub", Debug) {
		t.Fatal("filter should match submodule")
	}
	if l.Enabled("util", Info) {
		t.Fatal("util filter is warning; info must be dropped")
	}
	if l.Enabled("other", Warn) {
		t.Fatal("unfiltered module follows global error level")
	}
}

func TestLoggerMostSpecificFilterWins(t *testing.T) {
	l := NewQuiet(Error)
	if err := l.DefineFilters("4:util 1:util.object"); err != nil {
		t.Fatal(err)
	}
	if !l.Enabled("util.object", Debug) {
		t.Fatal("longer match must win regardless of definition order")
	}
	if l.Enabled("util.other", Debug) {
		t.Fatal("short match applies to sibling")
	}
}

func TestLoggerDefineFiltersClears(t *testing.T) {
	l := NewQuiet(Error)
	if err := l.DefineFilters("1:mod"); err != nil {
		t.Fatal(err)
	}
	if err := l.DefineFilters(""); err != nil {
		t.Fatal(err)
	}
	if len(l.Filters()) != 0 {
		t.Fatal("filters not cleared")
	}
	if l.Enabled("mod", Debug) {
		t.Fatal("cleared filter still effective")
	}
}

func TestLoggerDefineFiltersRejectsBadInputAtomically(t *testing.T) {
	l := NewQuiet(Error)
	if err := l.DefineFilters("1:good"); err != nil {
		t.Fatal(err)
	}
	if err := l.DefineFilters("1:new 9:bad"); err == nil {
		t.Fatal("bad filter accepted")
	}
	if got := l.FiltersString(); got != "1:good" {
		t.Fatalf("failed define mutated state: %q", got)
	}
}

func TestLoggerBufferOutput(t *testing.T) {
	l := NewQuiet(Debug)
	if err := l.DefineOutputs("3:buffer"); err != nil {
		t.Fatal(err)
	}
	l.Debugf("m", "below output threshold")
	l.Errorf("m", "written %d", 42)
	outs := l.cur.Load().outputs
	if len(outs) != 1 {
		t.Fatalf("want 1 output, got %d", len(outs))
	}
	buf := outs[0].sink.(*BufferSink)
	if buf.Len() != 1 {
		t.Fatalf("buffer has %d records, want 1", buf.Len())
	}
	rec := buf.Records()[0]
	if rec.Message != "written 42" || rec.Module != "m" || rec.Priority != Error {
		t.Fatalf("record %+v", rec)
	}
	if !strings.Contains(rec.Format(), " error : m : written 42") {
		t.Fatalf("format: %q", rec.Format())
	}
}

func TestLoggerFileOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "virtd.log")
	l := NewQuiet(Debug)
	if err := l.DefineOutputs("1:file:" + path); err != nil {
		t.Fatal(err)
	}
	l.Infof("core", "hello file")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "hello file") {
		t.Fatalf("file contents: %q", data)
	}
}

func TestLoggerDefineOutputsFailureLeavesOldConfig(t *testing.T) {
	l := NewQuiet(Debug)
	if err := l.DefineOutputs("2:buffer"); err != nil {
		t.Fatal(err)
	}
	// Second output is a file inside a nonexistent directory: open fails.
	err := l.DefineOutputs("1:buffer 1:file:/nonexistent-dir-xyz/sub/file.log")
	if err == nil {
		t.Fatal("expected open failure")
	}
	if got := l.OutputsString(); got != "2:buffer" {
		t.Fatalf("old config lost: %q", got)
	}
	// Old sink must still accept writes.
	l.Errorf("m", "still alive")
	buf := l.cur.Load().outputs[0].sink.(*BufferSink)
	if buf.Len() != 1 {
		t.Fatal("old sink not functional after failed redefine")
	}
}

func TestLoggerSyslogAndJournaldSinks(t *testing.T) {
	l := NewQuiet(Debug)
	if err := l.DefineOutputs("1:syslog:virtd 1:journald"); err != nil {
		t.Fatal(err)
	}
	l.Warnf("rpc", "syslog me")
	sys := l.cur.Load().outputs[0].sink.(*syslogSink)
	msgs := sys.Messages()
	if len(msgs) != 1 || !strings.HasPrefix(msgs[0], "virtd[") {
		t.Fatalf("syslog messages: %v", msgs)
	}
	jd := l.cur.Load().outputs[1].sink.(*journaldSink)
	jd.mu.Lock()
	n := len(jd.entries)
	jd.mu.Unlock()
	if n != 1 {
		t.Fatalf("journald entries: %d", n)
	}
}

func TestLoggerConcurrentLogAndRedefine(t *testing.T) {
	l := NewQuiet(Debug)
	if err := l.DefineOutputs("1:buffer"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					l.Debugf("worker", "msg from %d", id)
				}
			}
		}(i)
	}
	for i := 0; i < 200; i++ {
		var err error
		if i%2 == 0 {
			err = l.DefineFilters(fmt.Sprintf("%d:worker", i%4+1))
		} else {
			err = l.DefineOutputs("1:buffer")
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// The test passes if the race detector finds nothing and the logger is
	// still coherent.
	if err := l.DefineFilters(""); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFilterRoundTrip(t *testing.T) {
	// Property: any filter list we can format is re-parsed identically.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		filters := make([]Filter, 0, n)
		seen := map[string]bool{}
		for len(filters) < n {
			mod := fmt.Sprintf("mod%c.%c", 'a'+rng.Intn(20), 'a'+rng.Intn(20))
			if seen[mod] {
				continue
			}
			seen[mod] = true
			filters = append(filters, Filter{Priority: Priority(1 + rng.Intn(4)), Match: mod})
		}
		got, err := ParseFilters(FormatFilters(filters))
		if err != nil || len(got) != len(filters) {
			return false
		}
		for i := range got {
			if got[i] != filters[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEffectiveLevelNeverBelowMostSpecific(t *testing.T) {
	// Property: with filters sorted by DefineFilters, the effective level of
	// a module exactly matching a filter equals that filter's priority.
	f := func(prio uint8, sub uint8) bool {
		p := Priority(1 + int(prio)%4)
		l := NewQuiet(Error)
		mod := fmt.Sprintf("base.sub%d", sub%8)
		if err := l.DefineFilters(fmt.Sprintf("4:base %d:%s", int(p), mod)); err != nil {
			return false
		}
		return l.cur.Load().effectiveLevel(mod) == p &&
			l.cur.Load().effectiveLevel("base.other") == Error
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLogFiltered(b *testing.B) {
	l := NewQuiet(Error)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Debugf("hot.module", "dropped %d", i)
	}
}

func BenchmarkLogEmitted(b *testing.B) {
	l := NewQuiet(Debug)
	if err := l.DefineOutputs("1:buffer"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Debugf("hot.module", "kept %d", i)
	}
}
