// Package logging implements the daemon's logging subsystem: a global
// priority level, per-module filters that override the global level, and a
// set of outputs each with its own priority threshold.
//
// The design mirrors libvirt's logger: filters and outputs are configured
// from compact strings ("3:rpc", "1:file:/var/log/virtd.log") either once at
// start-up from a configuration file or at runtime through the admin API.
// Runtime redefinition is atomic: a full copy of the settings is built,
// validated, and only then swapped in (read-copy-update), so concurrent
// writers never observe a half-defined filter set.
package logging

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Priority is a log message priority. Priorities form an inclusive
// hierarchy: a level of Debug logs everything, Error only errors.
type Priority int

// Recognised priorities, ordered from most to least verbose.
const (
	Debug Priority = 1 + iota
	Info
	Warn
	Error
)

// PriorityNames maps priorities to their canonical names.
var priorityNames = map[Priority]string{
	Debug: "debug",
	Info:  "info",
	Warn:  "warning",
	Error: "error",
}

func (p Priority) String() string {
	if s, ok := priorityNames[p]; ok {
		return s
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// Valid reports whether p is one of the four recognised priorities.
func (p Priority) Valid() bool { return p >= Debug && p <= Error }

// ParsePriority converts a numeric or symbolic level string to a Priority.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1", "debug":
		return Debug, nil
	case "2", "info":
		return Info, nil
	case "3", "warn", "warning":
		return Warn, nil
	case "4", "error":
		return Error, nil
	}
	return 0, fmt.Errorf("logging: invalid priority %q", s)
}

// Filter overrides the global level for all modules whose name matches
// Match. Matching is by dot-separated prefix: a filter on "util" matches
// module "util.object" but not "utility".
type Filter struct {
	Priority Priority
	Match    string
}

// String formats the filter in configuration syntax ("3:util.object").
func (f Filter) String() string {
	return fmt.Sprintf("%d:%s", int(f.Priority), f.Match)
}

// matches reports whether the filter applies to module.
func (f Filter) matches(module string) bool {
	if module == f.Match {
		return true
	}
	return strings.HasPrefix(module, f.Match+".")
}

// ParseFilter parses a single "level:module" filter definition.
func ParseFilter(s string) (Filter, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return Filter{}, fmt.Errorf("logging: filter %q: missing ':' delimiter", s)
	}
	prio, err := ParsePriority(s[:i])
	if err != nil {
		return Filter{}, fmt.Errorf("logging: filter %q: %v", s, err)
	}
	match := s[i+1:]
	if match == "" {
		return Filter{}, fmt.Errorf("logging: filter %q: empty module match", s)
	}
	if strings.ContainsAny(match, " \t") {
		return Filter{}, fmt.Errorf("logging: filter %q: match string contains whitespace", s)
	}
	return Filter{Priority: prio, Match: match}, nil
}

// ParseFilters parses a space-separated list of filter definitions. An
// empty input yields an empty (but non-nil) filter list, which clears all
// filters when installed.
func ParseFilters(s string) ([]Filter, error) {
	fields := strings.Fields(s)
	filters := make([]Filter, 0, len(fields))
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		flt, err := ParseFilter(f)
		if err != nil {
			return nil, err
		}
		if seen[flt.Match] {
			return nil, fmt.Errorf("logging: duplicate filter for module %q", flt.Match)
		}
		seen[flt.Match] = true
		filters = append(filters, flt)
	}
	return filters, nil
}

// FormatFilters renders filters back to configuration syntax.
func FormatFilters(filters []Filter) string {
	parts := make([]string, len(filters))
	for i, f := range filters {
		parts[i] = f.String()
	}
	return strings.Join(parts, " ")
}

// Record is one log message flowing through the subsystem.
type Record struct {
	When     time.Time
	Priority Priority
	Module   string
	Message  string
}

// Format renders the record in the daemon's standard single-line format.
func (r Record) Format() string {
	return fmt.Sprintf("%s: %s : %s : %s",
		r.When.UTC().Format("2006-01-02 15:04:05.000-0700"),
		r.Priority, r.Module, r.Message)
}

// Sink receives formatted records that survived filtering. Implementations
// must be safe for use from a single goroutine at a time; the Logger
// serialises writes.
type Sink interface {
	Write(Record) error
	Close() error
}

// Output couples a sink with its own priority threshold.
type Output struct {
	Priority Priority
	Kind     string // "stderr", "file", "syslog", "journald", "buffer"
	Dest     string // path for file, ident for syslog, empty otherwise
	sink     Sink
}

// String formats the output in configuration syntax.
func (o Output) String() string {
	switch o.Kind {
	case kindFile, kindSyslog:
		return fmt.Sprintf("%d:%s:%s", int(o.Priority), o.Kind, o.Dest)
	default:
		return fmt.Sprintf("%d:%s", int(o.Priority), o.Kind)
	}
}

// Recognised output kinds.
const (
	kindStderr   = "stderr"
	kindFile     = "file"
	kindSyslog   = "syslog"
	kindJournald = "journald"
	kindBuffer   = "buffer"
)

// ParseOutput parses a single "level:kind[:data]" output definition. The
// returned Output has no sink attached; Settings installation opens sinks.
func ParseOutput(s string) (Output, error) {
	parts := strings.SplitN(s, ":", 3)
	if len(parts) < 2 {
		return Output{}, fmt.Errorf("logging: output %q: missing ':' delimiter", s)
	}
	prio, err := ParsePriority(parts[0])
	if err != nil {
		return Output{}, fmt.Errorf("logging: output %q: %v", s, err)
	}
	out := Output{Priority: prio, Kind: parts[1]}
	switch out.Kind {
	case kindStderr, kindJournald, kindBuffer:
		if len(parts) == 3 && parts[2] != "" {
			return Output{}, fmt.Errorf("logging: output %q: %s takes no extra data", s, out.Kind)
		}
	case kindFile:
		if len(parts) != 3 || parts[2] == "" {
			return Output{}, fmt.Errorf("logging: output %q: file output requires a path", s)
		}
		if !strings.HasPrefix(parts[2], "/") {
			return Output{}, fmt.Errorf("logging: output %q: file path must be absolute", s)
		}
		out.Dest = parts[2]
	case kindSyslog:
		if len(parts) != 3 || parts[2] == "" {
			return Output{}, fmt.Errorf("logging: output %q: syslog output requires an identifier", s)
		}
		out.Dest = parts[2]
	default:
		return Output{}, fmt.Errorf("logging: output %q: unknown output kind %q", s, parts[1])
	}
	return out, nil
}

// ParseOutputs parses a space-separated list of output definitions.
func ParseOutputs(s string) ([]Output, error) {
	fields := strings.Fields(s)
	outs := make([]Output, 0, len(fields))
	for _, f := range fields {
		o, err := ParseOutput(f)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// FormatOutputs renders outputs back to configuration syntax.
func FormatOutputs(outs []Output) string {
	parts := make([]string, len(outs))
	for i, o := range outs {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// settings is one immutable generation of the logger configuration.
type settings struct {
	level   Priority
	filters []Filter
	outputs []Output
}

// Logger is the logging subsystem. The zero value is not usable; call New.
//
// Reads (Log and the getters) take no lock on the settings: they load the
// current settings pointer atomically. Redefinition builds a complete new
// settings value and swaps it in under writeMu, closing replaced sinks only
// after the swap, so concurrent Log calls always see a consistent set.
type Logger struct {
	cur     atomic.Pointer[settings]
	writeMu sync.Mutex // serialises redefinition and sink writes
	drops   atomic.Uint64
	emitted atomic.Uint64
}

// New creates a Logger with the given global level and a single stderr
// output at the same level.
func New(level Priority) *Logger {
	l := &Logger{}
	s := &settings{level: level}
	out := Output{Priority: level, Kind: kindStderr}
	out.sink = newStderrSink()
	s.outputs = []Output{out}
	l.cur.Store(s)
	return l
}

// NewQuiet creates a Logger with no outputs at all; records are filtered
// and counted but written nowhere. Useful for tests and benchmarks.
func NewQuiet(level Priority) *Logger {
	l := &Logger{}
	l.cur.Store(&settings{level: level})
	return l
}

// Level returns the current global priority level.
func (l *Logger) Level() Priority { return l.cur.Load().level }

// SetLevel atomically installs a new global priority level, keeping
// filters and outputs unchanged.
func (l *Logger) SetLevel(p Priority) error {
	if !p.Valid() {
		return fmt.Errorf("logging: invalid priority %d", int(p))
	}
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	old := l.cur.Load()
	next := &settings{level: p, filters: old.filters, outputs: old.outputs}
	l.cur.Store(next)
	return nil
}

// Filters returns a copy of the current filter list.
func (l *Logger) Filters() []Filter {
	cur := l.cur.Load()
	out := make([]Filter, len(cur.filters))
	copy(out, cur.filters)
	return out
}

// FiltersString returns the current filters in configuration syntax.
func (l *Logger) FiltersString() string { return FormatFilters(l.cur.Load().filters) }

// DefineFilters atomically replaces the whole filter set with the
// definitions parsed from s. An empty string clears all filters.
func (l *Logger) DefineFilters(s string) error {
	filters, err := ParseFilters(s)
	if err != nil {
		return err
	}
	// Longest match first so the most specific filter wins.
	sort.SliceStable(filters, func(i, j int) bool {
		return len(filters[i].Match) > len(filters[j].Match)
	})
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	old := l.cur.Load()
	next := &settings{level: old.level, filters: filters, outputs: old.outputs}
	l.cur.Store(next)
	return nil
}

// Outputs returns a copy of the current output list (sinks omitted).
func (l *Logger) Outputs() []Output {
	cur := l.cur.Load()
	out := make([]Output, len(cur.outputs))
	for i, o := range cur.outputs {
		out[i] = Output{Priority: o.Priority, Kind: o.Kind, Dest: o.Dest}
	}
	return out
}

// OutputsString returns the current outputs in configuration syntax.
func (l *Logger) OutputsString() string { return FormatOutputs(l.cur.Load().outputs) }

// DefineOutputs atomically replaces the whole output set with the
// definitions parsed from s, opening every new sink before the swap and
// closing every replaced sink after it. If any sink fails to open, the
// previous configuration is left fully intact.
func (l *Logger) DefineOutputs(s string) error {
	outs, err := ParseOutputs(s)
	if err != nil {
		return err
	}
	// Open all new sinks first; on any failure close the ones opened so
	// far and leave current settings untouched (copy-then-swap).
	for i := range outs {
		sink, err := openSink(outs[i])
		if err != nil {
			for j := 0; j < i; j++ {
				outs[j].sink.Close()
			}
			return err
		}
		outs[i].sink = sink
	}
	l.writeMu.Lock()
	old := l.cur.Load()
	next := &settings{level: old.level, filters: old.filters, outputs: outs}
	l.cur.Store(next)
	l.writeMu.Unlock()
	for _, o := range old.outputs {
		if o.sink != nil {
			o.sink.Close()
		}
	}
	return nil
}

// effectiveLevel returns the priority threshold that applies to module.
func (s *settings) effectiveLevel(module string) Priority {
	for _, f := range s.filters {
		if f.matches(module) {
			return f.Priority
		}
	}
	return s.level
}

// Enabled reports whether a message from module at priority p would be
// forwarded to at least the filtering stage.
func (l *Logger) Enabled(module string, p Priority) bool {
	return p >= l.cur.Load().effectiveLevel(module)
}

// Log files one record. Filtering runs lock-free against the current
// settings generation; only the actual sink writes are serialised.
func (l *Logger) Log(p Priority, module, format string, args ...interface{}) {
	cur := l.cur.Load()
	if p < cur.effectiveLevel(module) {
		l.drops.Add(1)
		return
	}
	rec := Record{When: time.Now(), Priority: p, Module: module}
	if len(args) == 0 {
		rec.Message = format
	} else {
		rec.Message = fmt.Sprintf(format, args...)
	}
	l.emitted.Add(1)
	if len(cur.outputs) == 0 {
		return
	}
	l.writeMu.Lock()
	defer l.writeMu.Unlock()
	for _, o := range cur.outputs {
		if p >= o.Priority && o.sink != nil {
			o.sink.Write(rec) //nolint:errcheck // logging must not fail the caller
		}
	}
}

// Debugf, Infof, Warnf and Errorf are convenience wrappers around Log.
func (l *Logger) Debugf(module, format string, args ...interface{}) {
	l.Log(Debug, module, format, args...)
}
func (l *Logger) Infof(module, format string, args ...interface{}) {
	l.Log(Info, module, format, args...)
}
func (l *Logger) Warnf(module, format string, args ...interface{}) {
	l.Log(Warn, module, format, args...)
}
func (l *Logger) Errorf(module, format string, args ...interface{}) {
	l.Log(Error, module, format, args...)
}

// Stats reports how many records were emitted to outputs and how many were
// dropped by level/filter checks over the Logger's lifetime.
func (l *Logger) Stats() (emitted, dropped uint64) {
	return l.emitted.Load(), l.drops.Load()
}

// Close closes all sinks and installs an empty output set.
func (l *Logger) Close() error {
	l.writeMu.Lock()
	old := l.cur.Load()
	next := &settings{level: old.level, filters: old.filters}
	l.cur.Store(next)
	l.writeMu.Unlock()
	var first error
	for _, o := range old.outputs {
		if o.sink != nil {
			if err := o.sink.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
