package logging

import (
	"fmt"
	"os"
	"sync"
)

// openSink instantiates the sink backing an Output definition.
func openSink(o Output) (Sink, error) {
	switch o.Kind {
	case kindStderr:
		return newStderrSink(), nil
	case kindFile:
		return newFileSink(o.Dest)
	case kindSyslog:
		return newSyslogSink(o.Dest), nil
	case kindJournald:
		return newJournaldSink(), nil
	case kindBuffer:
		return NewBufferSink(), nil
	default:
		return nil, fmt.Errorf("logging: unknown output kind %q", o.Kind)
	}
}

// stderrSink writes formatted records to standard error.
type stderrSink struct{}

func newStderrSink() Sink { return stderrSink{} }

func (stderrSink) Write(r Record) error {
	_, err := fmt.Fprintln(os.Stderr, r.Format())
	return err
}

func (stderrSink) Close() error { return nil }

// fileSink appends formatted records to a regular file.
type fileSink struct {
	f *os.File
}

func newFileSink(path string) (Sink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o640)
	if err != nil {
		return nil, fmt.Errorf("logging: open %s: %w", path, err)
	}
	return &fileSink{f: f}, nil
}

func (s *fileSink) Write(r Record) error {
	_, err := fmt.Fprintln(s.f, r.Format())
	return err
}

func (s *fileSink) Close() error { return s.f.Close() }

// syslogSink simulates the system log: every message is prefixed with the
// configured identifier and the process id, matching openlog(ident) use.
// Messages are retained in memory; a production deployment would hand them
// to the system journal instead. The simulation preserves the property the
// daemon relies on: changing the identifier requires reopening the sink.
type syslogSink struct {
	mu    sync.Mutex
	ident string
	pid   int
	msgs  []string
}

func newSyslogSink(ident string) *syslogSink {
	return &syslogSink{ident: ident, pid: os.Getpid()}
}

func (s *syslogSink) Write(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, fmt.Sprintf("%s[%d]: %s", s.ident, s.pid, r.Format()))
	return nil
}

func (s *syslogSink) Close() error { return nil }

// Messages returns a copy of everything logged so far (test hook).
func (s *syslogSink) Messages() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.msgs))
	copy(out, s.msgs)
	return out
}

// journaldSink simulates the structured journal: records are retained as
// field maps, mirroring sd_journal_send semantics.
type journaldSink struct {
	mu      sync.Mutex
	entries []map[string]string
}

func newJournaldSink() *journaldSink { return &journaldSink{} }

func (s *journaldSink) Write(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, map[string]string{
		"MESSAGE":         r.Message,
		"PRIORITY":        r.Priority.String(),
		"CODE_MODULE":     r.Module,
		"SYSLOG_FACILITY": "daemon",
	})
	return nil
}

func (s *journaldSink) Close() error { return nil }

// BufferSink retains records in memory for inspection; used by tests and
// by the admin API examples to demonstrate output switching.
type BufferSink struct {
	mu      sync.Mutex
	records []Record
	closed  bool
}

// NewBufferSink creates an empty in-memory sink.
func NewBufferSink() *BufferSink { return &BufferSink{} }

// Write implements Sink.
func (s *BufferSink) Write(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("logging: write to closed buffer sink")
	}
	s.records = append(s.records, r)
	return nil
}

// Close implements Sink.
func (s *BufferSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Records returns a copy of all records written so far.
func (s *BufferSink) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Len returns the number of records written so far.
func (s *BufferSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}
