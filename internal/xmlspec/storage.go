package xmlspec

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// PoolSource locates the backing resource of a storage pool.
type PoolSource struct {
	Host   *SourceHost   `xml:"host,omitempty"`
	Device *SourceDevice `xml:"device,omitempty"`
	Name   string        `xml:"name,omitempty"`
}

// SourceHost names a remote storage host.
type SourceHost struct {
	Name string `xml:"name,attr"`
	Port int    `xml:"port,attr,omitempty"`
}

// SourceDevice names a local source device.
type SourceDevice struct {
	Path string `xml:"path,attr"`
}

// PoolTarget locates where volumes of a pool are exposed.
type PoolTarget struct {
	Path string `xml:"path"`
}

// StoragePool is the definition of a storage pool.
type StoragePool struct {
	XMLName    xml.Name    `xml:"pool"`
	Type       string      `xml:"type,attr"`
	Name       string      `xml:"name"`
	UUID       string      `xml:"uuid,omitempty"`
	Capacity   *Memory     `xml:"capacity,omitempty"`
	Allocation *Memory     `xml:"allocation,omitempty"`
	Available  *Memory     `xml:"available,omitempty"`
	Source     *PoolSource `xml:"source,omitempty"`
	Target     *PoolTarget `xml:"target,omitempty"`
}

// Supported pool types: dir is path-backed, logical simulates LVM volume
// groups, iscsi simulates a remote target.
var validPoolTypes = map[string]bool{"dir": true, "logical": true, "iscsi": true}

// ParseStoragePool parses and validates a pool definition document.
func ParseStoragePool(data []byte) (*StoragePool, error) {
	var p StoragePool
	if err := xml.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("xmlspec: parse pool: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Marshal renders the definition back to indented XML.
func (p *StoragePool) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlspec: marshal pool: %w", err)
	}
	return append(out, '\n'), nil
}

// Validate checks structural invariants of a pool definition.
func (p *StoragePool) Validate() error {
	if !validName(p.Name) {
		return fmt.Errorf("xmlspec: pool: invalid name %q", p.Name)
	}
	if !validPoolTypes[p.Type] {
		return fmt.Errorf("xmlspec: pool %s: unknown type %q", p.Name, p.Type)
	}
	switch p.Type {
	case "dir":
		if p.Target == nil || !strings.HasPrefix(p.Target.Path, "/") {
			return fmt.Errorf("xmlspec: pool %s: dir pool requires absolute target path", p.Name)
		}
	case "logical":
		if p.Source == nil || p.Source.Name == "" {
			return fmt.Errorf("xmlspec: pool %s: logical pool requires source name (volume group)", p.Name)
		}
	case "iscsi":
		if p.Source == nil || p.Source.Host == nil || p.Source.Host.Name == "" {
			return fmt.Errorf("xmlspec: pool %s: iscsi pool requires source host", p.Name)
		}
		if p.Source.Device == nil || p.Source.Device.Path == "" {
			return fmt.Errorf("xmlspec: pool %s: iscsi pool requires source device (IQN)", p.Name)
		}
	}
	return nil
}

// VolumeTarget describes how a volume is exposed.
type VolumeTarget struct {
	Path   string     `xml:"path,omitempty"`
	Format *VolFormat `xml:"format,omitempty"`
}

// VolFormat names the volume image format.
type VolFormat struct {
	Type string `xml:"type,attr"`
}

// StorageVolume is the definition of a storage volume inside a pool.
type StorageVolume struct {
	XMLName    xml.Name      `xml:"volume"`
	Name       string        `xml:"name"`
	Key        string        `xml:"key,omitempty"`
	Capacity   Memory        `xml:"capacity"`
	Allocation *Memory       `xml:"allocation,omitempty"`
	Target     *VolumeTarget `xml:"target,omitempty"`
}

var validVolFormats = map[string]bool{"raw": true, "qcow2": true, "vmdk": true}

// ParseStorageVolume parses and validates a volume definition document.
func ParseStorageVolume(data []byte) (*StorageVolume, error) {
	var v StorageVolume
	if err := xml.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("xmlspec: parse volume: %w", err)
	}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return &v, nil
}

// Marshal renders the definition back to indented XML.
func (v *StorageVolume) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlspec: marshal volume: %w", err)
	}
	return append(out, '\n'), nil
}

// Validate checks structural invariants of a volume definition.
func (v *StorageVolume) Validate() error {
	if !validName(v.Name) {
		return fmt.Errorf("xmlspec: volume: invalid name %q", v.Name)
	}
	cap, err := v.Capacity.KiB()
	if err != nil {
		return fmt.Errorf("xmlspec: volume %s: %v", v.Name, err)
	}
	if cap == 0 {
		return fmt.Errorf("xmlspec: volume %s: capacity must be > 0", v.Name)
	}
	if v.Allocation != nil {
		alloc, err := v.Allocation.KiB()
		if err != nil {
			return fmt.Errorf("xmlspec: volume %s: %v", v.Name, err)
		}
		if alloc > cap {
			return fmt.Errorf("xmlspec: volume %s: allocation %d exceeds capacity %d KiB", v.Name, alloc, cap)
		}
	}
	if v.Target != nil && v.Target.Format != nil && !validVolFormats[v.Target.Format.Type] {
		return fmt.Errorf("xmlspec: volume %s: unknown format %q", v.Name, v.Target.Format.Type)
	}
	return nil
}
