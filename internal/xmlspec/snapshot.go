package xmlspec

import (
	"encoding/xml"
	"fmt"
)

// DomainSnapshot is the definition/description of a domain snapshot.
// On input only Name (optional) and Description are honoured; the
// remaining fields are filled by the driver when the document is read
// back.
type DomainSnapshot struct {
	XMLName      xml.Name `xml:"domainsnapshot"`
	Name         string   `xml:"name,omitempty"`
	Description  string   `xml:"description,omitempty"`
	State        string   `xml:"state,omitempty"`
	CreationTime int64    `xml:"creationTime,omitempty"`
	DomainName   string   `xml:"domain,omitempty"`
}

// ParseDomainSnapshot parses a snapshot document. An empty document
// ("<domainsnapshot/>") is valid: the driver generates a name.
func ParseDomainSnapshot(data []byte) (*DomainSnapshot, error) {
	var s DomainSnapshot
	if err := xml.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("xmlspec: parse snapshot: %w", err)
	}
	if s.Name != "" && !validName(s.Name) {
		return nil, fmt.Errorf("xmlspec: snapshot: invalid name %q", s.Name)
	}
	return &s, nil
}

// Marshal renders the snapshot back to indented XML.
func (s *DomainSnapshot) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlspec: marshal snapshot: %w", err)
	}
	return append(out, '\n'), nil
}
