// Package xmlspec implements the XML configuration model: the
// hypervisor-independent definitions of domains, virtual networks, storage
// pools and volumes, plus host capabilities. Definitions are exchanged as
// XML documents; drivers translate them into native hypervisor
// configuration. Parsing is strict enough to reject structurally invalid
// documents while tolerating unknown elements, preserving the stable-API
// property of the management layer.
package xmlspec

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// Memory is an amount of memory with an explicit unit attribute.
type Memory struct {
	Unit  string `xml:"unit,attr,omitempty"`
	Value uint64 `xml:",chardata"`
}

// KiB returns the amount normalised to KiB. Unknown units are an error.
func (m Memory) KiB() (uint64, error) {
	switch strings.ToUpper(m.Unit) {
	case "", "KIB", "K":
		return m.Value, nil
	case "B", "BYTES":
		return m.Value / 1024, nil
	case "MIB", "M":
		return m.Value * 1024, nil
	case "GIB", "G":
		return m.Value * 1024 * 1024, nil
	case "TIB", "T":
		return m.Value * 1024 * 1024 * 1024, nil
	}
	return 0, fmt.Errorf("xmlspec: unknown memory unit %q", m.Unit)
}

// MemoryKiB constructs a Memory in KiB.
func MemoryKiB(v uint64) Memory { return Memory{Unit: "KiB", Value: v} }

// OSType describes the guest OS loader configuration.
type OSType struct {
	Arch    string `xml:"arch,attr,omitempty"`
	Machine string `xml:"machine,attr,omitempty"`
	Value   string `xml:",chardata"`
}

// Boot names one boot device in order of preference.
type Boot struct {
	Dev string `xml:"dev,attr"`
}

// DomainOS groups the OS section of a domain definition.
type DomainOS struct {
	Type OSType `xml:"type"`
	Boot []Boot `xml:"boot"`
}

// DiskSource locates the backing of a disk.
type DiskSource struct {
	File string `xml:"file,attr,omitempty"`
	Dev  string `xml:"dev,attr,omitempty"`
	Pool string `xml:"pool,attr,omitempty"`
	Vol  string `xml:"volume,attr,omitempty"`
}

// DiskTarget names the guest-visible device.
type DiskTarget struct {
	Dev string `xml:"dev,attr"`
	Bus string `xml:"bus,attr,omitempty"`
}

// DiskDriver selects the host-side driver and image format.
type DiskDriver struct {
	Name string `xml:"name,attr,omitempty"`
	Type string `xml:"type,attr,omitempty"`
}

// Disk is one block device of a domain.
type Disk struct {
	Type     string      `xml:"type,attr"`
	Device   string      `xml:"device,attr,omitempty"`
	Driver   *DiskDriver `xml:"driver,omitempty"`
	Source   DiskSource  `xml:"source"`
	Target   DiskTarget  `xml:"target"`
	ReadOnly *struct{}   `xml:"readonly,omitempty"`
}

// MAC is a NIC hardware address.
type MAC struct {
	Address string `xml:"address,attr"`
}

// InterfaceSource locates the host side of a NIC.
type InterfaceSource struct {
	Network string `xml:"network,attr,omitempty"`
	Bridge  string `xml:"bridge,attr,omitempty"`
}

// InterfaceModel selects the virtual NIC model.
type InterfaceModel struct {
	Type string `xml:"type,attr"`
}

// Interface is one network device of a domain.
type Interface struct {
	Type   string          `xml:"type,attr"`
	MAC    *MAC            `xml:"mac,omitempty"`
	Source InterfaceSource `xml:"source"`
	Model  *InterfaceModel `xml:"model,omitempty"`
}

// Console is a character console device.
type Console struct {
	Type string `xml:"type,attr"`
}

// Graphics is a remote display device.
type Graphics struct {
	Type     string `xml:"type,attr"`
	Port     int    `xml:"port,attr,omitempty"`
	AutoPort string `xml:"autoport,attr,omitempty"`
}

// Devices groups all devices of a domain.
type Devices struct {
	Emulator   string      `xml:"emulator,omitempty"`
	Disks      []Disk      `xml:"disk"`
	Interfaces []Interface `xml:"interface"`
	Consoles   []Console   `xml:"console"`
	Graphics   []Graphics  `xml:"graphics"`
}

// VCPU holds the virtual CPU count with optional placement.
type VCPU struct {
	Placement string `xml:"placement,attr,omitempty"`
	Count     uint   `xml:",chardata"`
}

// Features lists guest feature toggles by presence.
type Features struct {
	ACPI *struct{} `xml:"acpi,omitempty"`
	APIC *struct{} `xml:"apic,omitempty"`
	PAE  *struct{} `xml:"pae,omitempty"`
}

// Domain is the hypervisor-independent definition of a virtual machine.
type Domain struct {
	XMLName       xml.Name  `xml:"domain"`
	Type          string    `xml:"type,attr"`
	Name          string    `xml:"name"`
	UUID          string    `xml:"uuid,omitempty"`
	Title         string    `xml:"title,omitempty"`
	Description   string    `xml:"description,omitempty"`
	Memory        Memory    `xml:"memory"`
	CurrentMemory *Memory   `xml:"currentMemory,omitempty"`
	VCPU          VCPU      `xml:"vcpu"`
	OS            DomainOS  `xml:"os"`
	Features      *Features `xml:"features,omitempty"`
	OnPoweroff    string    `xml:"on_poweroff,omitempty"`
	OnReboot      string    `xml:"on_reboot,omitempty"`
	OnCrash       string    `xml:"on_crash,omitempty"`
	Devices       Devices   `xml:"devices"`
}

// ParseDomain parses and validates a domain definition document.
func ParseDomain(data []byte) (*Domain, error) {
	var d Domain
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("xmlspec: parse domain: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Marshal renders the definition back to indented XML.
func (d *Domain) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlspec: marshal domain: %w", err)
	}
	return append(out, '\n'), nil
}

// validName reports whether s is usable as an object name: non-empty,
// no whitespace or path separators.
func validName(s string) bool {
	return s != "" && !strings.ContainsAny(s, " \t\n/\\")
}

var validBootDevs = map[string]bool{"hd": true, "cdrom": true, "network": true, "fd": true}

// Validate checks structural invariants a driver may rely on.
func (d *Domain) Validate() error {
	if d.Type == "" {
		return fmt.Errorf("xmlspec: domain: missing type attribute")
	}
	if !validName(d.Name) {
		return fmt.Errorf("xmlspec: domain: invalid name %q", d.Name)
	}
	kib, err := d.Memory.KiB()
	if err != nil {
		return fmt.Errorf("xmlspec: domain %s: %v", d.Name, err)
	}
	if kib == 0 {
		return fmt.Errorf("xmlspec: domain %s: memory must be > 0", d.Name)
	}
	if d.CurrentMemory != nil {
		cur, err := d.CurrentMemory.KiB()
		if err != nil {
			return fmt.Errorf("xmlspec: domain %s: %v", d.Name, err)
		}
		if cur > kib {
			return fmt.Errorf("xmlspec: domain %s: currentMemory %d exceeds memory %d KiB", d.Name, cur, kib)
		}
	}
	if d.VCPU.Count == 0 {
		return fmt.Errorf("xmlspec: domain %s: vcpu count must be > 0", d.Name)
	}
	for _, b := range d.OS.Boot {
		if !validBootDevs[b.Dev] {
			return fmt.Errorf("xmlspec: domain %s: invalid boot device %q", d.Name, b.Dev)
		}
	}
	targets := map[string]bool{}
	for i := range d.Devices.Disks {
		disk := &d.Devices.Disks[i]
		if err := validateDisk(disk, i); err != nil {
			return fmt.Errorf("xmlspec: domain %s: %w", d.Name, err)
		}
		if targets[disk.Target.Dev] {
			return fmt.Errorf("xmlspec: domain %s: duplicate disk target %q", d.Name, disk.Target.Dev)
		}
		targets[disk.Target.Dev] = true
	}
	macs := map[string]bool{}
	for i := range d.Devices.Interfaces {
		nic := &d.Devices.Interfaces[i]
		if err := validateInterface(nic, i); err != nil {
			return fmt.Errorf("xmlspec: domain %s: %w", d.Name, err)
		}
		if nic.MAC != nil {
			if macs[nic.MAC.Address] {
				return fmt.Errorf("xmlspec: domain %s: duplicate MAC %q", d.Name, nic.MAC.Address)
			}
			macs[nic.MAC.Address] = true
		}
	}
	return nil
}

// validMAC reports whether s looks like a colon-separated 48-bit MAC.
func validMAC(s string) bool {
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return false
	}
	for _, p := range parts {
		if len(p) != 2 {
			return false
		}
		for _, c := range p {
			if !strings.ContainsRune("0123456789abcdefABCDEF", c) {
				return false
			}
		}
	}
	return true
}

// MemoryKiBOrZero is a convenience accessor used by drivers that already
// validated the definition.
func (d *Domain) MemoryKiBOrZero() uint64 {
	kib, err := d.Memory.KiB()
	if err != nil {
		return 0
	}
	return kib
}
