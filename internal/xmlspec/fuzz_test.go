package xmlspec

import "testing"

// FuzzParseDomain ensures the domain parser never panics on arbitrary
// input and that accepted documents survive a marshal/parse round trip.
func FuzzParseDomain(f *testing.F) {
	f.Add(sampleDomainXML)
	f.Add("<domain type='t'><name>x</name><memory>1</memory><vcpu>1</vcpu></domain>")
	f.Add("")
	f.Add("<domain")
	f.Fuzz(func(t *testing.T, data string) {
		d, err := ParseDomain([]byte(data))
		if err != nil {
			return
		}
		out, err := d.Marshal()
		if err != nil {
			t.Fatalf("accepted domain failed to marshal: %v", err)
		}
		if _, err := ParseDomain(out); err != nil {
			t.Fatalf("marshalled output rejected: %v\n%s", err, out)
		}
	})
}

// FuzzParseDevice ensures the device parser never panics.
func FuzzParseDevice(f *testing.F) {
	f.Add(`<disk type='file'><source file='/x'/><target dev='vda'/></disk>`)
	f.Add(`<interface type='user'><mac address='52:54:00:00:00:01'/></interface>`)
	f.Add("<console/>")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		dev, err := ParseDevice([]byte(data))
		if err != nil {
			return
		}
		if dev.Kind() == "unknown" {
			t.Fatal("accepted device with unknown kind")
		}
	})
}

// FuzzParseNetwork ensures the network parser never panics.
func FuzzParseNetwork(f *testing.F) {
	f.Add(sampleNetworkXML)
	f.Add("<network><name>n</name></network>")
	f.Fuzz(func(t *testing.T, data string) {
		n, err := ParseNetwork([]byte(data))
		if err != nil {
			return
		}
		if _, err := n.Marshal(); err != nil {
			t.Fatalf("accepted network failed to marshal: %v", err)
		}
	})
}
