package xmlspec

import (
	"encoding/xml"
	"fmt"
)

// HostCPU describes the host processor as advertised in capabilities.
type HostCPU struct {
	Arch     string    `xml:"arch"`
	Model    string    `xml:"model,omitempty"`
	Vendor   string    `xml:"vendor,omitempty"`
	Topology *Topology `xml:"topology,omitempty"`
}

// Topology is the host socket/core/thread layout.
type Topology struct {
	Sockets int `xml:"sockets,attr"`
	Cores   int `xml:"cores,attr"`
	Threads int `xml:"threads,attr"`
}

// CapHost is the host section of capabilities.
type CapHost struct {
	UUID string  `xml:"uuid,omitempty"`
	CPU  HostCPU `xml:"cpu"`
}

// GuestDomain names a domain type supported for a guest arch.
type GuestDomain struct {
	Type string `xml:"type,attr"`
}

// GuestArch describes one supported guest architecture.
type GuestArch struct {
	Name     string        `xml:"name,attr"`
	WordSize int           `xml:"wordsize,omitempty"`
	Emulator string        `xml:"emulator,omitempty"`
	Machines []string      `xml:"machine"`
	Domains  []GuestDomain `xml:"domain"`
}

// Guest is one guest stanza of capabilities.
type Guest struct {
	OSType string    `xml:"os_type"`
	Arch   GuestArch `xml:"arch"`
}

// Capabilities is the document a driver returns to describe what the host
// and hypervisor can run.
type Capabilities struct {
	XMLName xml.Name `xml:"capabilities"`
	Host    CapHost  `xml:"host"`
	Guests  []Guest  `xml:"guest"`
}

// ParseCapabilities parses a capabilities document.
func ParseCapabilities(data []byte) (*Capabilities, error) {
	var c Capabilities
	if err := xml.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("xmlspec: parse capabilities: %w", err)
	}
	return &c, nil
}

// Marshal renders the document back to indented XML.
func (c *Capabilities) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlspec: marshal capabilities: %w", err)
	}
	return append(out, '\n'), nil
}

// SupportsGuest reports whether the capabilities advertise the given
// os type, architecture and domain type combination.
func (c *Capabilities) SupportsGuest(osType, arch, domType string) bool {
	for _, g := range c.Guests {
		if g.OSType != osType || g.Arch.Name != arch {
			continue
		}
		for _, d := range g.Arch.Domains {
			if d.Type == domType {
				return true
			}
		}
	}
	return false
}
