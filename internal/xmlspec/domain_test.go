package xmlspec

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

const sampleDomainXML = `
<domain type='qsim'>
  <name>web01</name>
  <uuid>11111111-2222-3333-4444-555555555555</uuid>
  <title>Front-end web server</title>
  <memory unit='MiB'>2048</memory>
  <currentMemory unit='MiB'>1024</currentMemory>
  <vcpu placement='static'>4</vcpu>
  <os>
    <type arch='x86_64' machine='pc'>hvm</type>
    <boot dev='hd'/>
    <boot dev='network'/>
  </os>
  <features><acpi/><apic/></features>
  <on_poweroff>destroy</on_poweroff>
  <on_reboot>restart</on_reboot>
  <devices>
    <emulator>/usr/bin/qsim-system-x86_64</emulator>
    <disk type='file' device='disk'>
      <driver name='qsim' type='qcow2'/>
      <source file='/var/lib/virt/images/web01.qcow2'/>
      <target dev='vda' bus='virtio'/>
    </disk>
    <disk type='volume' device='disk'>
      <source pool='default' volume='data01'/>
      <target dev='vdb' bus='virtio'/>
    </disk>
    <interface type='network'>
      <mac address='52:54:00:aa:bb:cc'/>
      <source network='default'/>
      <model type='virtio'/>
    </interface>
    <console type='pty'/>
    <graphics type='vnc' port='-1' autoport='yes'/>
  </devices>
</domain>`

func TestParseDomain(t *testing.T) {
	d, err := ParseDomain([]byte(sampleDomainXML))
	if err != nil {
		t.Fatal(err)
	}
	if d.Type != "qsim" || d.Name != "web01" {
		t.Fatalf("%+v", d)
	}
	kib, err := d.Memory.KiB()
	if err != nil || kib != 2048*1024 {
		t.Fatalf("memory %d %v", kib, err)
	}
	cur, err := d.CurrentMemory.KiB()
	if err != nil || cur != 1024*1024 {
		t.Fatalf("currentMemory %d %v", cur, err)
	}
	if d.VCPU.Count != 4 {
		t.Fatalf("vcpu %d", d.VCPU.Count)
	}
	if len(d.OS.Boot) != 2 || d.OS.Boot[0].Dev != "hd" {
		t.Fatalf("boot %+v", d.OS.Boot)
	}
	if d.Features == nil || d.Features.ACPI == nil || d.Features.PAE != nil {
		t.Fatalf("features %+v", d.Features)
	}
	if len(d.Devices.Disks) != 2 || d.Devices.Disks[0].Driver.Type != "qcow2" {
		t.Fatalf("disks %+v", d.Devices.Disks)
	}
	if d.Devices.Disks[1].Source.Pool != "default" || d.Devices.Disks[1].Source.Vol != "data01" {
		t.Fatalf("volume disk %+v", d.Devices.Disks[1])
	}
	if len(d.Devices.Interfaces) != 1 || d.Devices.Interfaces[0].MAC.Address != "52:54:00:aa:bb:cc" {
		t.Fatalf("interfaces %+v", d.Devices.Interfaces)
	}
}

func TestDomainMarshalRoundTrip(t *testing.T) {
	d, err := ParseDomain([]byte(sampleDomainXML))
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDomain(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if d2.Name != d.Name || d2.VCPU.Count != d.VCPU.Count || len(d2.Devices.Disks) != len(d.Devices.Disks) {
		t.Fatalf("round trip changed content: %+v vs %+v", d, d2)
	}
	if d2.Devices.Graphics[0].Port != d.Devices.Graphics[0].Port {
		t.Fatal("graphics port lost")
	}
}

func minimalDomain(name string) *Domain {
	return &Domain{
		Type:   "test",
		Name:   name,
		Memory: MemoryKiB(512 * 1024),
		VCPU:   VCPU{Count: 1},
		OS:     DomainOS{Type: OSType{Value: "hvm", Arch: "x86_64"}},
	}
}

func TestDomainValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Domain)
	}{
		{"empty type", func(d *Domain) { d.Type = "" }},
		{"empty name", func(d *Domain) { d.Name = "" }},
		{"name with space", func(d *Domain) { d.Name = "a b" }},
		{"name with slash", func(d *Domain) { d.Name = "a/b" }},
		{"zero memory", func(d *Domain) { d.Memory = MemoryKiB(0) }},
		{"bad memory unit", func(d *Domain) { d.Memory = Memory{Unit: "parsecs", Value: 1} }},
		{"current above max", func(d *Domain) {
			m := MemoryKiB(1024 * 1024)
			d.Memory = MemoryKiB(512 * 1024)
			d.CurrentMemory = &m
		}},
		{"zero vcpus", func(d *Domain) { d.VCPU.Count = 0 }},
		{"bad boot dev", func(d *Domain) { d.OS.Boot = []Boot{{Dev: "floppy9"}} }},
		{"disk without target", func(d *Domain) {
			d.Devices.Disks = []Disk{{Type: "file", Source: DiskSource{File: "/x"}}}
		}},
		{"duplicate disk target", func(d *Domain) {
			d.Devices.Disks = []Disk{
				{Type: "file", Source: DiskSource{File: "/x"}, Target: DiskTarget{Dev: "vda"}},
				{Type: "file", Source: DiskSource{File: "/y"}, Target: DiskTarget{Dev: "vda"}},
			}
		}},
		{"file disk without source", func(d *Domain) {
			d.Devices.Disks = []Disk{{Type: "file", Target: DiskTarget{Dev: "vda"}}}
		}},
		{"block disk without dev", func(d *Domain) {
			d.Devices.Disks = []Disk{{Type: "block", Target: DiskTarget{Dev: "vda"}}}
		}},
		{"volume disk without pool", func(d *Domain) {
			d.Devices.Disks = []Disk{{Type: "volume", Source: DiskSource{Vol: "v"}, Target: DiskTarget{Dev: "vda"}}}
		}},
		{"unknown disk type", func(d *Domain) {
			d.Devices.Disks = []Disk{{Type: "tape", Target: DiskTarget{Dev: "vda"}}}
		}},
		{"network nic without source", func(d *Domain) {
			d.Devices.Interfaces = []Interface{{Type: "network"}}
		}},
		{"bridge nic without source", func(d *Domain) {
			d.Devices.Interfaces = []Interface{{Type: "bridge"}}
		}},
		{"unknown nic type", func(d *Domain) {
			d.Devices.Interfaces = []Interface{{Type: "wormhole"}}
		}},
		{"bad mac", func(d *Domain) {
			d.Devices.Interfaces = []Interface{{Type: "user", MAC: &MAC{Address: "not-a-mac"}}}
		}},
		{"duplicate mac", func(d *Domain) {
			d.Devices.Interfaces = []Interface{
				{Type: "user", MAC: &MAC{Address: "52:54:00:00:00:01"}},
				{Type: "user", MAC: &MAC{Address: "52:54:00:00:00:01"}},
			}
		}},
	}
	for _, c := range cases {
		d := minimalDomain("dom")
		c.mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate unexpectedly succeeded", c.name)
		}
	}
	if err := minimalDomain("ok").Validate(); err != nil {
		t.Fatalf("minimal domain invalid: %v", err)
	}
}

func TestMemoryUnits(t *testing.T) {
	cases := []struct {
		unit string
		v    uint64
		want uint64
	}{
		{"", 100, 100},
		{"KiB", 100, 100},
		{"k", 100, 100},
		{"B", 4096, 4},
		{"bytes", 2048, 2},
		{"MiB", 3, 3 * 1024},
		{"GiB", 2, 2 * 1024 * 1024},
		{"TiB", 1, 1024 * 1024 * 1024},
	}
	for _, c := range cases {
		got, err := Memory{Unit: c.unit, Value: c.v}.KiB()
		if err != nil || got != c.want {
			t.Errorf("KiB(%q,%d)=%d,%v want %d", c.unit, c.v, got, err, c.want)
		}
	}
	if _, err := (Memory{Unit: "XB", Value: 1}).KiB(); err == nil {
		t.Fatal("unknown unit accepted")
	}
}

func TestValidMAC(t *testing.T) {
	good := []string{"52:54:00:aa:bb:cc", "00:00:00:00:00:00", "FF:ff:FF:ff:FF:ff"}
	bad := []string{"", "52:54:00:aa:bb", "52:54:00:aa:bb:cc:dd", "5254:00:aa:bb:cc", "zz:54:00:aa:bb:cc", "5:4:0:a:b:c"}
	for _, m := range good {
		if !validMAC(m) {
			t.Errorf("validMAC(%q)=false", m)
		}
	}
	for _, m := range bad {
		if validMAC(m) {
			t.Errorf("validMAC(%q)=true", m)
		}
	}
}

func TestParseDomainRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "<domain", "not xml at all", "<other/>"} {
		if _, err := ParseDomain([]byte(s)); err == nil {
			t.Errorf("ParseDomain(%q) succeeded", s)
		}
	}
}

func TestQuickDomainRoundTrip(t *testing.T) {
	f := func(vcpus uint8, memMiB uint16, ndisks uint8) bool {
		d := minimalDomain("quick")
		d.VCPU.Count = uint(vcpus%32) + 1
		d.Memory = Memory{Unit: "MiB", Value: uint64(memMiB%4096) + 1}
		for i := 0; i < int(ndisks%5); i++ {
			d.Devices.Disks = append(d.Devices.Disks, Disk{
				Type:   "file",
				Source: DiskSource{File: fmt.Sprintf("/img/%d.raw", i)},
				Target: DiskTarget{Dev: fmt.Sprintf("vd%c", 'a'+i), Bus: "virtio"},
			})
		}
		out, err := d.Marshal()
		if err != nil {
			return false
		}
		d2, err := ParseDomain(out)
		if err != nil {
			return false
		}
		m1, _ := d.Memory.KiB()
		m2, _ := d2.Memory.KiB()
		return d2.VCPU.Count == d.VCPU.Count && m1 == m2 && len(d2.Devices.Disks) == len(d.Devices.Disks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalContainsExpectedElements(t *testing.T) {
	d := minimalDomain("render")
	out, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{`<domain type="test">`, `<name>render</name>`, `unit="KiB"`, `<vcpu>1</vcpu>`} {
		if !strings.Contains(s, want) {
			t.Errorf("marshalled XML missing %q:\n%s", want, s)
		}
	}
}
