package xmlspec

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
)

// Device is a single hot-pluggable device description: exactly one of
// the fields is set, matching the root element of the parsed document.
type Device struct {
	Disk      *Disk
	Interface *Interface
}

// Kind names the device type ("disk" or "interface").
func (d *Device) Kind() string {
	switch {
	case d.Disk != nil:
		return "disk"
	case d.Interface != nil:
		return "interface"
	}
	return "unknown"
}

// ParseDevice parses a standalone device document — a single <disk> or
// <interface> element, the payload of attach/detach operations.
func ParseDevice(data []byte) (*Device, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	var root xml.StartElement
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("xmlspec: device document is empty")
		}
		if err != nil {
			return nil, fmt.Errorf("xmlspec: parse device: %w", err)
		}
		if se, ok := tok.(xml.StartElement); ok {
			root = se
			break
		}
	}
	switch root.Name.Local {
	case "disk":
		var d Disk
		if err := dec.DecodeElement(&d, &root); err != nil {
			return nil, fmt.Errorf("xmlspec: parse disk: %w", err)
		}
		if err := validateDisk(&d, 0); err != nil {
			return nil, err
		}
		return &Device{Disk: &d}, nil
	case "interface":
		var nic Interface
		if err := dec.DecodeElement(&nic, &root); err != nil {
			return nil, fmt.Errorf("xmlspec: parse interface: %w", err)
		}
		if err := validateInterface(&nic, 0); err != nil {
			return nil, err
		}
		return &Device{Interface: &nic}, nil
	default:
		return nil, fmt.Errorf("xmlspec: unsupported device element <%s>", root.Name.Local)
	}
}

// validateDisk checks one disk entry; index is used in error messages.
func validateDisk(disk *Disk, i int) error {
	if disk.Target.Dev == "" {
		return fmt.Errorf("xmlspec: disk %d: missing target dev", i)
	}
	switch disk.Type {
	case "file":
		if disk.Source.File == "" {
			return fmt.Errorf("xmlspec: disk %q: file type requires source file", disk.Target.Dev)
		}
	case "block":
		if disk.Source.Dev == "" {
			return fmt.Errorf("xmlspec: disk %q: block type requires source dev", disk.Target.Dev)
		}
	case "volume":
		if disk.Source.Pool == "" || disk.Source.Vol == "" {
			return fmt.Errorf("xmlspec: disk %q: volume type requires pool and volume", disk.Target.Dev)
		}
	default:
		return fmt.Errorf("xmlspec: disk %q: unknown type %q", disk.Target.Dev, disk.Type)
	}
	return nil
}

// validateInterface checks one interface entry.
func validateInterface(nic *Interface, i int) error {
	switch nic.Type {
	case "network":
		if nic.Source.Network == "" {
			return fmt.Errorf("xmlspec: interface %d: network type requires source network", i)
		}
	case "bridge":
		if nic.Source.Bridge == "" {
			return fmt.Errorf("xmlspec: interface %d: bridge type requires source bridge", i)
		}
	case "user":
		// no source required
	default:
		return fmt.Errorf("xmlspec: interface %d: unknown type %q", i, nic.Type)
	}
	if nic.MAC != nil && !validMAC(nic.MAC.Address) {
		return fmt.Errorf("xmlspec: interface %d: invalid MAC %q", i, nic.MAC.Address)
	}
	return nil
}
