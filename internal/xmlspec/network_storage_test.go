package xmlspec

import (
	"strings"
	"testing"
)

const sampleNetworkXML = `
<network>
  <name>default</name>
  <uuid>aaaaaaaa-bbbb-cccc-dddd-eeeeeeeeeeee</uuid>
  <bridge name='virbr0' stp='on' delay='0'/>
  <forward mode='nat'/>
  <ip address='192.168.122.1' netmask='255.255.255.0'>
    <dhcp>
      <range start='192.168.122.2' end='192.168.122.254'/>
      <host mac='52:54:00:11:22:33' name='pinned' ip='192.168.122.10'/>
    </dhcp>
  </ip>
</network>`

func TestParseNetwork(t *testing.T) {
	n, err := ParseNetwork([]byte(sampleNetworkXML))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "default" || n.Bridge.Name != "virbr0" || n.Forward.Mode != "nat" {
		t.Fatalf("%+v", n)
	}
	if len(n.IPs) != 1 || n.IPs[0].DHCP == nil || len(n.IPs[0].DHCP.Ranges) != 1 {
		t.Fatalf("ip section %+v", n.IPs)
	}
	out, err := n.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ParseNetwork(out)
	if err != nil {
		t.Fatal(err)
	}
	if n2.IPs[0].DHCP.Hosts[0].IP != "192.168.122.10" {
		t.Fatalf("round trip lost dhcp host: %+v", n2.IPs[0].DHCP)
	}
}

func TestNetworkValidateErrors(t *testing.T) {
	base := func() *Network {
		return &Network{
			Name:    "net",
			Forward: &Forward{Mode: "nat"},
			IPs: []IP{{
				Address: "10.0.0.1",
				Netmask: "255.255.255.0",
				DHCP: &DHCP{
					Ranges: []DHCPRange{{Start: "10.0.0.10", End: "10.0.0.20"}},
				},
			}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Network)
	}{
		{"bad name", func(n *Network) { n.Name = "" }},
		{"bad forward mode", func(n *Network) { n.Forward.Mode = "teleport" }},
		{"bad address", func(n *Network) { n.IPs[0].Address = "999.1.1.1" }},
		{"bad netmask", func(n *Network) { n.IPs[0].Netmask = "255.255.255.256" }},
		{"no mask or prefix", func(n *Network) { n.IPs[0].Netmask = "" }},
		{"prefix too large", func(n *Network) { n.IPs[0].Netmask = ""; n.IPs[0].Prefix = 33 }},
		{"range outside subnet", func(n *Network) { n.IPs[0].DHCP.Ranges[0].End = "10.0.1.20" }},
		{"range reversed", func(n *Network) {
			n.IPs[0].DHCP.Ranges[0] = DHCPRange{Start: "10.0.0.20", End: "10.0.0.10"}
		}},
		{"bad range ip", func(n *Network) { n.IPs[0].DHCP.Ranges[0].Start = "x" }},
		{"host bad mac", func(n *Network) {
			n.IPs[0].DHCP.Hosts = []DHCPHost{{MAC: "bad", IP: "10.0.0.5"}}
		}},
		{"host outside subnet", func(n *Network) {
			n.IPs[0].DHCP.Hosts = []DHCPHost{{MAC: "52:54:00:00:00:01", IP: "10.9.0.5"}}
		}},
	}
	for _, c := range cases {
		n := base()
		c.mutate(n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate unexpectedly succeeded", c.name)
		}
	}
}

func TestNetworkPrefixForm(t *testing.T) {
	n := &Network{Name: "p", IPs: []IP{{Address: "10.1.0.1", Prefix: 16}}}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

const samplePoolXML = `
<pool type='dir'>
  <name>default</name>
  <capacity unit='GiB'>100</capacity>
  <target><path>/var/lib/virt/images</path></target>
</pool>`

func TestParseStoragePool(t *testing.T) {
	p, err := ParseStoragePool([]byte(samplePoolXML))
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != "dir" || p.Target.Path != "/var/lib/virt/images" {
		t.Fatalf("%+v", p)
	}
	out, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseStoragePool(out); err != nil {
		t.Fatalf("round trip: %v\n%s", err, out)
	}
}

func TestStoragePoolValidate(t *testing.T) {
	iscsi := &StoragePool{
		Type: "iscsi", Name: "remote",
		Source: &PoolSource{
			Host:   &SourceHost{Name: "stor1.example.com", Port: 3260},
			Device: &SourceDevice{Path: "iqn.2026-07.com.example:target1"},
		},
	}
	if err := iscsi.Validate(); err != nil {
		t.Fatalf("iscsi pool invalid: %v", err)
	}
	logical := &StoragePool{Type: "logical", Name: "vg0", Source: &PoolSource{Name: "vg0"}}
	if err := logical.Validate(); err != nil {
		t.Fatalf("logical pool invalid: %v", err)
	}
	bad := []*StoragePool{
		{Type: "dir", Name: ""},
		{Type: "zfs", Name: "x"},
		{Type: "dir", Name: "x"},                                                      // missing target
		{Type: "dir", Name: "x", Target: &PoolTarget{Path: "rel"}},                    // relative path
		{Type: "logical", Name: "x"},                                                  // missing source name
		{Type: "iscsi", Name: "x", Source: &PoolSource{}},                             // missing host
		{Type: "iscsi", Name: "x", Source: &PoolSource{Host: &SourceHost{Name: "h"}}}, // missing IQN
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pool %d accepted", i)
		}
	}
}

const sampleVolumeXML = `
<volume>
  <name>web01.qcow2</name>
  <capacity unit='GiB'>20</capacity>
  <allocation unit='GiB'>5</allocation>
  <target>
    <path>/var/lib/virt/images/web01.qcow2</path>
    <format type='qcow2'/>
  </target>
</volume>`

func TestParseStorageVolume(t *testing.T) {
	v, err := ParseStorageVolume([]byte(sampleVolumeXML))
	if err != nil {
		t.Fatal(err)
	}
	cap, _ := v.Capacity.KiB()
	if cap != 20*1024*1024 {
		t.Fatalf("capacity %d", cap)
	}
	if v.Target.Format.Type != "qcow2" {
		t.Fatalf("%+v", v.Target)
	}
	out, err := v.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseStorageVolume(out); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestStorageVolumeValidate(t *testing.T) {
	alloc := MemoryKiB(100)
	bigAlloc := MemoryKiB(100000)
	bad := []*StorageVolume{
		{Name: "", Capacity: MemoryKiB(10)},
		{Name: "v", Capacity: MemoryKiB(0)},
		{Name: "v", Capacity: Memory{Unit: "XB", Value: 1}},
		{Name: "v", Capacity: MemoryKiB(10), Allocation: &bigAlloc},
		{Name: "v", Capacity: MemoryKiB(1000), Allocation: &alloc,
			Target: &VolumeTarget{Format: &VolFormat{Type: "ntfs"}}},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad volume %d accepted", i)
		}
	}
	good := &StorageVolume{Name: "v", Capacity: MemoryKiB(1000), Allocation: &alloc}
	if err := good.Validate(); err != nil {
		t.Fatalf("good volume rejected: %v", err)
	}
}

func TestCapabilities(t *testing.T) {
	c := &Capabilities{
		Host: CapHost{
			UUID: "11111111-2222-3333-4444-555555555555",
			CPU: HostCPU{
				Arch: "x86_64", Model: "sim-epyc", Vendor: "SimVendor",
				Topology: &Topology{Sockets: 2, Cores: 16, Threads: 2},
			},
		},
		Guests: []Guest{
			{OSType: "hvm", Arch: GuestArch{
				Name: "x86_64", WordSize: 64, Emulator: "/usr/bin/qsim",
				Machines: []string{"pc", "q35"},
				Domains:  []GuestDomain{{Type: "qsim"}},
			}},
			{OSType: "exe", Arch: GuestArch{
				Name: "x86_64", WordSize: 64,
				Domains: []GuestDomain{{Type: "csim"}},
			}},
		},
	}
	out, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseCapabilities(out)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Host.CPU.Topology.Cores != 16 || len(c2.Guests) != 2 {
		t.Fatalf("%+v", c2)
	}
	if !c2.SupportsGuest("hvm", "x86_64", "qsim") {
		t.Fatal("hvm/x86_64/qsim should be supported")
	}
	if c2.SupportsGuest("hvm", "aarch64", "qsim") {
		t.Fatal("aarch64 should not be supported")
	}
	if c2.SupportsGuest("hvm", "x86_64", "xsim") {
		t.Fatal("xsim should not be supported")
	}
	if !strings.Contains(string(out), "<machine>pc</machine>") {
		t.Fatalf("capabilities XML missing machines:\n%s", out)
	}
}

func TestDomainSnapshotXML(t *testing.T) {
	s, err := ParseDomainSnapshot([]byte(`<domainsnapshot><name>s1</name><description>d</description></domainsnapshot>`))
	if err != nil || s.Name != "s1" || s.Description != "d" {
		t.Fatalf("%+v %v", s, err)
	}
	// Empty document is valid (driver generates the name).
	if s, err := ParseDomainSnapshot([]byte(`<domainsnapshot/>`)); err != nil || s.Name != "" {
		t.Fatalf("%+v %v", s, err)
	}
	if _, err := ParseDomainSnapshot([]byte(`<domainsnapshot><name>a b</name></domainsnapshot>`)); err == nil {
		t.Fatal("whitespace name accepted")
	}
	if _, err := ParseDomainSnapshot([]byte(`<garbage`)); err == nil {
		t.Fatal("garbage accepted")
	}
	full := &DomainSnapshot{Name: "s", State: "running", CreationTime: 1234, DomainName: "dom"}
	out, err := full.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseDomainSnapshot(out)
	if err != nil || again.State != "running" || again.CreationTime != 1234 || again.DomainName != "dom" {
		t.Fatalf("round trip: %+v %v", again, err)
	}
}

func TestParseDeviceKinds(t *testing.T) {
	d, err := ParseDevice([]byte(`<disk type='file'><source file='/x'/><target dev='vdb'/></disk>`))
	if err != nil || d.Kind() != "disk" || d.Disk.Target.Dev != "vdb" {
		t.Fatalf("%+v %v", d, err)
	}
	n, err := ParseDevice([]byte(`<interface type='network'><mac address='52:54:00:00:00:09'/><source network='n'/></interface>`))
	if err != nil || n.Kind() != "interface" || n.Interface.Source.Network != "n" {
		t.Fatalf("%+v %v", n, err)
	}
	bad := []string{
		``, `<disk type='file'><target dev='vdb'/></disk>`, // no source
		`<disk type='file'><source file='/x'/></disk>`,           // no target
		`<interface type='network'/>`,                            // no source network
		`<interface type='user'><mac address='zz'/></interface>`, // bad mac
		`<graphics type='vnc'/>`,                                 // unsupported element
		`<disk`,                                                  // malformed
	}
	for _, s := range bad {
		if _, err := ParseDevice([]byte(s)); err == nil {
			t.Errorf("ParseDevice(%q) accepted", s)
		}
	}
}
