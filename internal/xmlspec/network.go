package xmlspec

import (
	"encoding/xml"
	"fmt"
	"net"
)

// Bridge names the host bridge device of a virtual network.
type Bridge struct {
	Name  string `xml:"name,attr"`
	STP   string `xml:"stp,attr,omitempty"`
	Delay int    `xml:"delay,attr,omitempty"`
}

// Forward selects how guest traffic leaves the virtual network.
type Forward struct {
	Mode string `xml:"mode,attr,omitempty"`
	Dev  string `xml:"dev,attr,omitempty"`
}

// DHCPRange is one address range leased by the network's DHCP service.
type DHCPRange struct {
	Start string `xml:"start,attr"`
	End   string `xml:"end,attr"`
}

// DHCPHost is a static DHCP reservation.
type DHCPHost struct {
	MAC  string `xml:"mac,attr"`
	Name string `xml:"name,attr,omitempty"`
	IP   string `xml:"ip,attr"`
}

// DHCP configures the network's address leasing.
type DHCP struct {
	Ranges []DHCPRange `xml:"range"`
	Hosts  []DHCPHost  `xml:"host"`
}

// IP configures the network's gateway address and DHCP.
type IP struct {
	Address string `xml:"address,attr"`
	Netmask string `xml:"netmask,attr,omitempty"`
	Prefix  int    `xml:"prefix,attr,omitempty"`
	DHCP    *DHCP  `xml:"dhcp,omitempty"`
}

// Network is the definition of a virtual network.
type Network struct {
	XMLName xml.Name `xml:"network"`
	Name    string   `xml:"name"`
	UUID    string   `xml:"uuid,omitempty"`
	Bridge  *Bridge  `xml:"bridge,omitempty"`
	Forward *Forward `xml:"forward,omitempty"`
	IPs     []IP     `xml:"ip"`
}

// ParseNetwork parses and validates a network definition document.
func ParseNetwork(data []byte) (*Network, error) {
	var n Network
	if err := xml.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("xmlspec: parse network: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// Marshal renders the definition back to indented XML.
func (n *Network) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(n, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("xmlspec: marshal network: %w", err)
	}
	return append(out, '\n'), nil
}

var validForwardModes = map[string]bool{
	"": true, "nat": true, "route": true, "bridge": true, "isolated": true,
}

// Validate checks structural invariants of a network definition.
func (n *Network) Validate() error {
	if !validName(n.Name) {
		return fmt.Errorf("xmlspec: network: invalid name %q", n.Name)
	}
	if n.Forward != nil && !validForwardModes[n.Forward.Mode] {
		return fmt.Errorf("xmlspec: network %s: unknown forward mode %q", n.Name, n.Forward.Mode)
	}
	for i, ip := range n.IPs {
		addr := net.ParseIP(ip.Address)
		if addr == nil {
			return fmt.Errorf("xmlspec: network %s: ip %d: invalid address %q", n.Name, i, ip.Address)
		}
		var mask net.IPMask
		switch {
		case ip.Netmask != "":
			m := net.ParseIP(ip.Netmask)
			if m == nil || m.To4() == nil {
				return fmt.Errorf("xmlspec: network %s: ip %d: invalid netmask %q", n.Name, i, ip.Netmask)
			}
			mask = net.IPMask(m.To4())
		case ip.Prefix > 0:
			bits := 32
			if addr.To4() == nil {
				bits = 128
			}
			if ip.Prefix > bits {
				return fmt.Errorf("xmlspec: network %s: ip %d: prefix %d too large", n.Name, i, ip.Prefix)
			}
			mask = net.CIDRMask(ip.Prefix, bits)
		default:
			return fmt.Errorf("xmlspec: network %s: ip %d: netmask or prefix required", n.Name, i)
		}
		if ip.DHCP != nil {
			subnet := net.IPNet{IP: addr.Mask(mask), Mask: mask}
			for j, r := range ip.DHCP.Ranges {
				start, end := net.ParseIP(r.Start), net.ParseIP(r.End)
				if start == nil || end == nil {
					return fmt.Errorf("xmlspec: network %s: dhcp range %d: invalid addresses", n.Name, j)
				}
				if !subnet.Contains(start) || !subnet.Contains(end) {
					return fmt.Errorf("xmlspec: network %s: dhcp range %d: outside subnet %s", n.Name, j, subnet.String())
				}
				if ipLess(end, start) {
					return fmt.Errorf("xmlspec: network %s: dhcp range %d: end before start", n.Name, j)
				}
			}
			for j, h := range ip.DHCP.Hosts {
				if !validMAC(h.MAC) {
					return fmt.Errorf("xmlspec: network %s: dhcp host %d: invalid MAC %q", n.Name, j, h.MAC)
				}
				if hip := net.ParseIP(h.IP); hip == nil || !subnet.Contains(hip) {
					return fmt.Errorf("xmlspec: network %s: dhcp host %d: ip %q outside subnet", n.Name, j, h.IP)
				}
			}
		}
	}
	return nil
}

// ipLess compares two IPs of the same family numerically.
func ipLess(a, b net.IP) bool {
	a16, b16 := a.To16(), b.To16()
	for i := range a16 {
		if a16[i] != b16[i] {
			return a16[i] < b16[i]
		}
	}
	return false
}
