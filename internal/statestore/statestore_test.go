package statestore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestSaveLoadDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(KindDomains, "web1", []byte("<domain/>")); err != nil {
		t.Fatal(err)
	}
	data, err := s.Load(KindDomains, "web1")
	if err != nil || string(data) != "<domain/>" {
		t.Fatalf("Load = %q, %v", data, err)
	}
	// Overwrite must replace, not append.
	if err := s.Save(KindDomains, "web1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if data, _ := s.Load(KindDomains, "web1"); string(data) != "v2" {
		t.Fatalf("overwrite left %q", data)
	}
	if err := s.Delete(KindDomains, "web1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(KindDomains, "web1"); !os.IsNotExist(err) {
		t.Fatalf("Load after delete: %v", err)
	}
	// Deleting a missing object is fine.
	if err := s.Delete(KindDomains, "web1"); err != nil {
		t.Fatal(err)
	}
}

func TestListSortedAndSkipsTemp(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := s.Save(KindNetworks, n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-write: abandoned temp file must be invisible.
	tmp := filepath.Join(s.Dir(), KindNetworks, ".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	names, err := s.List(KindNetworks)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"alpha", "mid", "zeta"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("List = %v, want %v", names, want)
	}
	objs, err := s.LoadAll(KindNetworks)
	if err != nil || len(objs) != 3 {
		t.Fatalf("LoadAll = %v, %v", objs, err)
	}
	if objs[0].Name != "alpha" || string(objs[0].Data) != "alpha" {
		t.Fatalf("LoadAll[0] = %+v", objs[0])
	}
}

func TestEmptyKindListsEmpty(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if names, err := s.List("never-written"); err != nil || len(names) != 0 {
		t.Fatalf("List = %v, %v", names, err)
	}
}

func TestInvalidNamesRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`, ".tmp-x"} {
		if err := s.Save(KindDomains, bad, nil); err == nil {
			t.Fatalf("Save(%q) accepted", bad)
		}
		if _, err := s.Load(KindDomains, bad); err == nil {
			t.Fatalf("Load(%q) accepted", bad)
		}
		if err := s.Delete(KindDomains, bad); err == nil {
			t.Fatalf("Delete(%q) accepted", bad)
		}
	}
}

func TestReopenSeesState(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Save(KindPools, "default", []byte("<pool/>")); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same directory — the restart path.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := s2.Load(KindPools, "default")
	if err != nil || string(data) != "<pool/>" {
		t.Fatalf("reopened Load = %q, %v", data, err)
	}
}
