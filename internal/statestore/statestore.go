// Package statestore is the daemon's crash-safe persistence layer: a
// directory of per-object documents written atomically (write to a
// temp file, fsync, rename), so a daemon killed at any instant — even
// mid-write — restarts with every completed definition intact. One
// object per file keeps the journal trivially replayable: startup lists
// a kind's directory and re-applies each document; there is no log to
// compact and a torn write can only ever lose the single object being
// written, never corrupt its neighbours.
//
// The layout under the root is kind/name (e.g. domains/web1,
// networks/default, networks.active/default), one store per driver
// instance rooted at state_dir/<driver-type>.
package statestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Kinds used by the driver base. Stores accept any kind name; these are
// the conventional ones.
const (
	KindDomains     = "domains"
	KindDomsActive  = "domains.active"
	KindNetworks    = "networks"
	KindNetsActive  = "networks.active"
	KindPools       = "pools"
	KindPoolsActive = "pools.active"
)

// Store persists objects under one root directory. Methods are safe for
// concurrent use by multiple goroutines (and multiple Stores over the
// same directory): every write goes through a unique temp file and an
// atomic rename.
type Store struct {
	dir string
}

// Open creates (if needed) and returns a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("statestore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("statestore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validName rejects object names that would escape the kind directory.
func validName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".tmp-") {
		return fmt.Errorf("statestore: invalid object name %q", name)
	}
	return nil
}

func (s *Store) path(kind, name string) string {
	return filepath.Join(s.dir, kind, name)
}

// Save durably writes one object: temp file in the same directory,
// fsync, atomic rename over the final name. A crash leaves either the
// old document or the new one, never a torn mix.
func (s *Store) Save(kind, name string, data []byte) error {
	if err := validName(name); err != nil {
		return err
	}
	kindDir := filepath.Join(s.dir, kind)
	if err := os.MkdirAll(kindDir, 0o755); err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	tmp, err := os.CreateTemp(kindDir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()        //nolint:errcheck
		os.Remove(tmpName) //nolint:errcheck
		return fmt.Errorf("statestore: write %s/%s: %w", kind, name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()        //nolint:errcheck
		os.Remove(tmpName) //nolint:errcheck
		return fmt.Errorf("statestore: sync %s/%s: %w", kind, name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName) //nolint:errcheck
		return fmt.Errorf("statestore: close %s/%s: %w", kind, name, err)
	}
	if err := os.Rename(tmpName, s.path(kind, name)); err != nil {
		os.Remove(tmpName) //nolint:errcheck
		return fmt.Errorf("statestore: commit %s/%s: %w", kind, name, err)
	}
	return nil
}

// Delete removes one object; deleting a missing object is not an error
// (an undefine replayed against an empty store must succeed).
func (s *Store) Delete(kind, name string) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := os.Remove(s.path(kind, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("statestore: delete %s/%s: %w", kind, name, err)
	}
	return nil
}

// Load reads one object; missing objects return os.ErrNotExist.
func (s *Store) Load(kind, name string) ([]byte, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	return os.ReadFile(s.path(kind, name))
}

// List returns the object names of a kind, sorted. A kind that was never
// written lists as empty.
func (s *Store) List(kind string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, kind))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("statestore: list %s: %w", kind, err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".tmp-") {
			continue // abandoned temp from a crash mid-write
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// LoadAll reads every object of a kind in sorted name order. Objects
// deleted between list and read are skipped.
func (s *Store) LoadAll(kind string) ([]Object, error) {
	names, err := s.List(kind)
	if err != nil {
		return nil, err
	}
	out := make([]Object, 0, len(names))
	for _, name := range names {
		data, err := s.Load(kind, name)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, err
		}
		out = append(out, Object{Name: name, Data: data})
	}
	return out, nil
}

// Object is one persisted document.
type Object struct {
	Name string
	Data []byte
}
