package uuid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsV4AndUnique(t *testing.T) {
	seen := make(map[UUID]bool)
	for i := 0; i < 1000; i++ {
		u := New()
		if u.IsNil() {
			t.Fatal("generated nil uuid")
		}
		if u[6]>>4 != 4 {
			t.Fatalf("version nibble %x", u[6]>>4)
		}
		if u[8]&0xc0 != 0x80 {
			t.Fatalf("variant bits %x", u[8])
		}
		if seen[u] {
			t.Fatal("duplicate uuid")
		}
		seen[u] = true
	}
}

func TestFromNameDeterministic(t *testing.T) {
	a := FromName("domain-1")
	b := FromName("domain-1")
	c := FromName("domain-2")
	if a != b {
		t.Fatal("FromName not deterministic")
	}
	if a == c {
		t.Fatal("distinct names collided")
	}
}

func TestParseForms(t *testing.T) {
	u := New()
	s := u.String()
	for _, form := range []string{s, "{" + s + "}", strings.ReplaceAll(s, "-", "")} {
		got, err := Parse(form)
		if err != nil {
			t.Fatalf("Parse(%q): %v", form, err)
		}
		if got != u {
			t.Fatalf("Parse(%q) = %v, want %v", form, got, u)
		}
	}
	if got, err := Parse(strings.ToUpper(s)); err != nil || got != u {
		t.Fatalf("upper-case parse: %v %v", got, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"short",
		"zzzzzzzz-zzzz-zzzz-zzzz-zzzzzzzzzzzz",
		"12345678-1234-1234-1234-12345678901", // 35 chars
		"12345678x1234-1234-1234-123456789012",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestStringFormat(t *testing.T) {
	u := UUID{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	want := "00112233-4455-6677-8899-aabbccddeeff"
	if u.String() != want {
		t.Fatalf("String()=%q want %q", u.String(), want)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw [16]byte) bool {
		u := UUID(raw)
		got, err := Parse(u.String())
		return err == nil && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
