// Package uuid implements RFC 4122 UUIDs as used for domain, network and
// storage object identity. Only generation (v4 random and v5-like
// name-derived), parsing and canonical formatting are provided.
package uuid

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// UUID is a 128-bit universally unique identifier.
type UUID [16]byte

// Nil is the all-zero UUID.
var Nil UUID

// New returns a version-4 (random) UUID.
func New() UUID {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does the
		// process cannot safely generate identity and must stop.
		panic("uuid: crypto/rand failed: " + err.Error())
	}
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // RFC 4122 variant
	return u
}

// FromName returns a deterministic UUID derived from name. It is used by
// the test driver and by simulations that need reproducible identity.
func FromName(name string) UUID {
	sum := sha256.Sum256([]byte(name))
	var u UUID
	copy(u[:], sum[:16])
	u[6] = (u[6] & 0x0f) | 0x50 // mark name-derived (version 5 style)
	u[8] = (u[8] & 0x3f) | 0x80
	return u
}

// Parse accepts the canonical 8-4-4-4-12 form, with or without braces,
// and the bare 32-hex-digit form.
func Parse(s string) (UUID, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(s, "}"), "{")
	cleaned := strings.ReplaceAll(s, "-", "")
	if len(cleaned) != 32 {
		return Nil, fmt.Errorf("uuid: invalid length in %q", s)
	}
	if len(s) == 36 {
		// Validate hyphen positions in canonical form.
		for _, i := range []int{8, 13, 18, 23} {
			if s[i] != '-' {
				return Nil, fmt.Errorf("uuid: misplaced hyphen in %q", s)
			}
		}
	} else if len(s) != 32 {
		return Nil, fmt.Errorf("uuid: invalid format %q", s)
	}
	raw, err := hex.DecodeString(cleaned)
	if err != nil {
		return Nil, fmt.Errorf("uuid: %q: %v", s, err)
	}
	var u UUID
	copy(u[:], raw)
	return u, nil
}

// String renders the canonical lower-case 8-4-4-4-12 form.
func (u UUID) String() string {
	var b [36]byte
	hex.Encode(b[:8], u[:4])
	b[8] = '-'
	hex.Encode(b[9:13], u[4:6])
	b[13] = '-'
	hex.Encode(b[14:18], u[6:8])
	b[18] = '-'
	hex.Encode(b[19:23], u[8:10])
	b[23] = '-'
	hex.Encode(b[24:], u[10:])
	return string(b[:])
}

// IsNil reports whether u is the all-zero UUID.
func (u UUID) IsNil() bool { return u == Nil }
