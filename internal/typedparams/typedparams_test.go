package typedparams

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndGet(t *testing.T) {
	l := NewList()
	if err := l.AddInt("i", -3); err != nil {
		t.Fatal(err)
	}
	if err := l.AddUInt("u", 7); err != nil {
		t.Fatal(err)
	}
	if err := l.AddLLong("l", -1<<40); err != nil {
		t.Fatal(err)
	}
	if err := l.AddULLong("ul", 1<<50); err != nil {
		t.Fatal(err)
	}
	if err := l.AddDouble("d", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := l.AddBoolean("b", true); err != nil {
		t.Fatal(err)
	}
	if err := l.AddString("s", "hi"); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 7 {
		t.Fatalf("len=%d", l.Len())
	}
	if v, err := l.GetUInt("u"); err != nil || v != 7 {
		t.Fatalf("GetUInt: %v %v", v, err)
	}
	if v, err := l.GetULLong("ul"); err != nil || v != 1<<50 {
		t.Fatalf("GetULLong: %v %v", v, err)
	}
	if v, err := l.GetString("s"); err != nil || v != "hi" {
		t.Fatalf("GetString: %v %v", v, err)
	}
	if v, err := l.GetBoolean("b"); err != nil || !v {
		t.Fatalf("GetBoolean: %v %v", v, err)
	}
	if p, ok := l.Get("d"); !ok || p.D != 2.5 || p.Kind != Double {
		t.Fatalf("Get(d): %+v %v", p, ok)
	}
}

func TestDuplicateRejected(t *testing.T) {
	l := NewList()
	if err := l.AddUInt("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.AddInt("x", 2); err == nil {
		t.Fatal("duplicate field accepted")
	}
	if l.Len() != 1 {
		t.Fatalf("failed add mutated list: %d", l.Len())
	}
}

func TestFieldValidation(t *testing.T) {
	l := NewList()
	for _, bad := range []string{"", "has space", "has=eq", "a\tb", strings.Repeat("x", MaxFieldLength+1)} {
		if err := l.AddUInt(bad, 1); err == nil {
			t.Errorf("field %q accepted", bad)
		}
	}
	if err := l.AddUInt(strings.Repeat("x", MaxFieldLength), 1); err != nil {
		t.Errorf("max-length field rejected: %v", err)
	}
}

func TestKindMismatch(t *testing.T) {
	l := NewList()
	if err := l.AddInt("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.GetUInt("x"); err == nil {
		t.Fatal("kind mismatch not detected")
	}
	if _, err := l.GetString("x"); err == nil {
		t.Fatal("kind mismatch not detected")
	}
	if _, err := l.GetUInt("missing"); err == nil {
		t.Fatal("missing field not detected")
	}
}

func TestValidateSchema(t *testing.T) {
	allowed := map[string]Kind{
		"minWorkers":  UInt,
		"maxWorkers":  UInt,
		"nWorkers":    UInt,
		"prioWorkers": UInt,
	}
	readOnly := map[string]bool{"nWorkers": true}

	good := NewList()
	good.AddUInt("minWorkers", 5)  //nolint:errcheck
	good.AddUInt("maxWorkers", 20) //nolint:errcheck
	if err := good.Validate(allowed, readOnly); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}

	ro := NewList()
	ro.AddUInt("nWorkers", 3) //nolint:errcheck
	if err := ro.Validate(allowed, readOnly); err == nil {
		t.Fatal("read-only field accepted")
	}

	unknown := NewList()
	unknown.AddUInt("bogus", 3) //nolint:errcheck
	if err := unknown.Validate(allowed, readOnly); err == nil {
		t.Fatal("unknown field accepted")
	}

	wrongKind := NewList()
	wrongKind.AddString("minWorkers", "5") //nolint:errcheck
	if err := wrongKind.Validate(allowed, readOnly); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := NewList()
	l.AddUInt("a", 1) //nolint:errcheck
	c := l.Clone()
	c.AddUInt("b", 2) //nolint:errcheck
	if l.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: %d %d", l.Len(), c.Len())
	}
	if !c.Has("a") {
		t.Fatal("clone lost original entry")
	}
}

func TestStringRendering(t *testing.T) {
	l := NewList()
	l.AddUInt("max", 10)     //nolint:errcheck
	l.AddBoolean("ro", true) //nolint:errcheck
	l.AddDouble("f", 0.5)    //nolint:errcheck
	got := l.String()
	want := "max=10 ro=yes f=0.5"
	if got != want {
		t.Fatalf("String()=%q want %q", got, want)
	}
}

func TestFieldsSorted(t *testing.T) {
	l := NewList()
	l.AddUInt("zeta", 1)  //nolint:errcheck
	l.AddUInt("alpha", 1) //nolint:errcheck
	got := l.Fields()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("Fields()=%v", got)
	}
}

func TestKindNames(t *testing.T) {
	if Int.String() != "int" || String.String() != "string" {
		t.Fatal("kind names wrong")
	}
	if Kind(0).Valid() || Kind(8).Valid() {
		t.Fatal("invalid kinds accepted")
	}
	if got := Kind(42).String(); got != "kind(42)" {
		t.Fatalf("unknown kind rendered %q", got)
	}
}

func TestQuickGetReturnsWhatAddStored(t *testing.T) {
	f := func(u uint32, s string, b bool) bool {
		if strings.ContainsAny(s, " \t\n=") {
			s = "sanitized"
		}
		l := NewList()
		if l.AddUInt("u", u) != nil || l.AddString("s", s) != nil || l.AddBoolean("b", b) != nil {
			return false
		}
		gu, err1 := l.GetUInt("u")
		gs, err2 := l.GetString("s")
		gb, err3 := l.GetBoolean("b")
		return err1 == nil && err2 == nil && err3 == nil && gu == u && gs == s && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInsertionOrderPreserved(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		l := NewList()
		for i := 0; i < count; i++ {
			if l.AddInt(fieldName(i), int32(i)) != nil {
				return false
			}
		}
		ps := l.Params()
		if len(ps) != count {
			return false
		}
		for i, p := range ps {
			if p.Field != fieldName(i) || p.I != int32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func fieldName(i int) string {
	return "f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
