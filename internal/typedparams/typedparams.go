// Package typedparams implements libvirt-style typed parameters: a
// forward-compatible container of named scalar values used by every API
// that may grow new attributes over time without breaking the wire
// protocol or the function signatures.
package typedparams

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the scalar type held by a Param.
type Kind int

// Supported scalar kinds, mirroring virTypedParameter.
const (
	Int Kind = 1 + iota
	UInt
	LLong
	ULLong
	Double
	Boolean
	String
)

var kindNames = map[Kind]string{
	Int:     "int",
	UInt:    "uint",
	LLong:   "llong",
	ULLong:  "ullong",
	Double:  "double",
	Boolean: "boolean",
	String:  "string",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Valid reports whether k is one of the supported kinds.
func (k Kind) Valid() bool { return k >= Int && k <= String }

// MaxFieldLength bounds parameter names, as in libvirt's
// VIR_TYPED_PARAM_FIELD_LENGTH.
const MaxFieldLength = 80

// Param is one named, typed scalar.
type Param struct {
	Field string
	Kind  Kind

	I int32
	U uint32
	L int64
	// UL holds ULLong values.
	UL uint64
	D  float64
	B  bool
	S  string
}

// Value returns the param's value as an interface for display.
func (p Param) Value() interface{} {
	switch p.Kind {
	case Int:
		return p.I
	case UInt:
		return p.U
	case LLong:
		return p.L
	case ULLong:
		return p.UL
	case Double:
		return p.D
	case Boolean:
		return p.B
	case String:
		return p.S
	}
	return nil
}

// String renders "field=value" for display.
func (p Param) String() string {
	switch p.Kind {
	case Double:
		return fmt.Sprintf("%s=%s", p.Field, strconv.FormatFloat(p.D, 'f', -1, 64))
	case Boolean:
		if p.B {
			return p.Field + "=yes"
		}
		return p.Field + "=no"
	default:
		return fmt.Sprintf("%s=%v", p.Field, p.Value())
	}
}

// List is an ordered collection of Params with unique field names.
type List struct {
	params []Param
	index  map[string]int
}

// NewList returns an empty parameter list.
func NewList() *List {
	return &List{index: make(map[string]int)}
}

// Len returns the number of parameters in the list.
func (l *List) Len() int { return len(l.params) }

// Params returns the parameters in insertion order. The returned slice is
// shared; callers must not mutate it.
func (l *List) Params() []Param { return l.params }

// validateField checks a field name against libvirt's constraints.
func validateField(field string) error {
	if field == "" {
		return fmt.Errorf("typedparams: empty field name")
	}
	if len(field) > MaxFieldLength {
		return fmt.Errorf("typedparams: field %q exceeds %d bytes", field, MaxFieldLength)
	}
	if strings.ContainsAny(field, " \t\n=") {
		return fmt.Errorf("typedparams: field %q contains forbidden characters", field)
	}
	return nil
}

func (l *List) add(p Param) error {
	if err := validateField(p.Field); err != nil {
		return err
	}
	if _, dup := l.index[p.Field]; dup {
		return fmt.Errorf("typedparams: duplicate field %q", p.Field)
	}
	if l.index == nil {
		l.index = make(map[string]int)
	}
	l.index[p.Field] = len(l.params)
	l.params = append(l.params, p)
	return nil
}

// AddInt appends a signed 32-bit parameter.
func (l *List) AddInt(field string, v int32) error {
	return l.add(Param{Field: field, Kind: Int, I: v})
}

// AddUInt appends an unsigned 32-bit parameter.
func (l *List) AddUInt(field string, v uint32) error {
	return l.add(Param{Field: field, Kind: UInt, U: v})
}

// AddLLong appends a signed 64-bit parameter.
func (l *List) AddLLong(field string, v int64) error {
	return l.add(Param{Field: field, Kind: LLong, L: v})
}

// AddULLong appends an unsigned 64-bit parameter.
func (l *List) AddULLong(field string, v uint64) error {
	return l.add(Param{Field: field, Kind: ULLong, UL: v})
}

// AddDouble appends a float64 parameter.
func (l *List) AddDouble(field string, v float64) error {
	return l.add(Param{Field: field, Kind: Double, D: v})
}

// AddBoolean appends a boolean parameter.
func (l *List) AddBoolean(field string, v bool) error {
	return l.add(Param{Field: field, Kind: Boolean, B: v})
}

// AddString appends a string parameter.
func (l *List) AddString(field string, v string) error {
	return l.add(Param{Field: field, Kind: String, S: v})
}

// Get returns the parameter named field.
func (l *List) Get(field string) (Param, bool) {
	i, ok := l.index[field]
	if !ok {
		return Param{}, false
	}
	return l.params[i], true
}

// GetUInt returns the uint value of field, or an error if the field is
// absent or of a different kind.
func (l *List) GetUInt(field string) (uint32, error) {
	p, ok := l.Get(field)
	if !ok {
		return 0, fmt.Errorf("typedparams: field %q not present", field)
	}
	if p.Kind != UInt {
		return 0, fmt.Errorf("typedparams: field %q has kind %v, want uint", field, p.Kind)
	}
	return p.U, nil
}

// GetString returns the string value of field.
func (l *List) GetString(field string) (string, error) {
	p, ok := l.Get(field)
	if !ok {
		return "", fmt.Errorf("typedparams: field %q not present", field)
	}
	if p.Kind != String {
		return "", fmt.Errorf("typedparams: field %q has kind %v, want string", field, p.Kind)
	}
	return p.S, nil
}

// GetULLong returns the ullong value of field.
func (l *List) GetULLong(field string) (uint64, error) {
	p, ok := l.Get(field)
	if !ok {
		return 0, fmt.Errorf("typedparams: field %q not present", field)
	}
	if p.Kind != ULLong {
		return 0, fmt.Errorf("typedparams: field %q has kind %v, want ullong", field, p.Kind)
	}
	return p.UL, nil
}

// GetBoolean returns the boolean value of field.
func (l *List) GetBoolean(field string) (bool, error) {
	p, ok := l.Get(field)
	if !ok {
		return false, fmt.Errorf("typedparams: field %q not present", field)
	}
	if p.Kind != Boolean {
		return false, fmt.Errorf("typedparams: field %q has kind %v, want boolean", field, p.Kind)
	}
	return p.B, nil
}

// Has reports whether field is present.
func (l *List) Has(field string) bool {
	_, ok := l.index[field]
	return ok
}

// Fields returns the sorted list of field names.
func (l *List) Fields() []string {
	out := make([]string, 0, len(l.params))
	for _, p := range l.params {
		out = append(out, p.Field)
	}
	sort.Strings(out)
	return out
}

// Validate checks the whole list against an allowed-field schema: the map
// gives the required kind per permitted field; readOnly lists fields that
// may be reported but never set.
func (l *List) Validate(allowed map[string]Kind, readOnly map[string]bool) error {
	for _, p := range l.params {
		k, ok := allowed[p.Field]
		if !ok {
			return fmt.Errorf("typedparams: unknown field %q", p.Field)
		}
		if readOnly[p.Field] {
			return fmt.Errorf("typedparams: field %q is read-only", p.Field)
		}
		if p.Kind != k {
			return fmt.Errorf("typedparams: field %q has kind %v, want %v", p.Field, p.Kind, k)
		}
	}
	return nil
}

// Clone returns a deep copy of the list.
func (l *List) Clone() *List {
	out := NewList()
	out.params = make([]Param, len(l.params))
	copy(out.params, l.params)
	for k, v := range l.index {
		out.index[k] = v
	}
	return out
}

// String renders the whole list for display, one "field=value" per entry
// in insertion order, space separated.
func (l *List) String() string {
	parts := make([]string, len(l.params))
	for i, p := range l.params {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}
