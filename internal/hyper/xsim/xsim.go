// Package xsim simulates a Xen-style type-1 paravirtualization hypervisor.
// Its native management surface is a numbered hypercall table invoked from
// the privileged Domain0 control interface — a deliberately different API
// shape from qsim's JSON monitor, so the uniform driver layer above has a
// real incompatibility to absorb. Hypercalls may be batched through a
// multicall, mirroring Xen's hypercall-batching optimisation.
package xsim

import (
	"fmt"
	"sync"

	"repro/internal/hyper"
	"repro/internal/nodeinfo"
)

// Op is a hypercall number.
type Op int

// The hypercall table.
const (
	OpDomainCreate Op = 1 + iota
	OpDomainDestroy
	OpDomainPause
	OpDomainUnpause
	OpDomainShutdown
	OpDomainReboot
	OpDomainGetInfo
	OpDomainSetMaxMem
	OpDomainSetVCPUs
	OpDomainList
	OpVersion
	OpDomainCrash // debug injection
)

// DomID is a Xen-style numeric domain identifier; Domain0 is the control
// domain.
type DomID uint32

// Domain0 is the privileged control domain's ID.
const Domain0 DomID = 0

// CreateArgs are the arguments of OpDomainCreate.
type CreateArgs struct {
	Name      string
	VCPUs     int
	MaxVCPUs  int
	MemKiB    uint64
	MaxMemKiB uint64
	// Workload model knobs (ignored by real Xen; drive the simulation).
	CPUUtil       float64
	DirtyPagesSec uint64
	BlockIOPS     uint64
	NetPPS        uint64
}

// DomainInfo is the result of OpDomainGetInfo.
type DomainInfo struct {
	ID        DomID
	Name      string
	State     hyper.State
	VCPUs     int
	MemKiB    uint64
	MaxMemKiB uint64
	CPUTimeNs uint64
}

// Hypercall is one invocation of the control interface: an op plus its
// argument, returning a result.
type Hypercall struct {
	Op   Op
	Dom  DomID       // target domain for per-domain ops
	Args interface{} // op-specific
}

// Result carries a hypercall's return value or error.
type Result struct {
	Value interface{}
	Err   error
}

// Hypervisor is the xsim hypervisor. All management goes through
// Call/Multicall issued from Domain0.
type Hypervisor struct {
	mu        sync.Mutex
	host      *hyper.Host
	domains   map[DomID]*hyper.Machine
	byName    map[string]DomID
	nextID    DomID
	hcalls    uint64 // hypercall counter (for the batching ablation)
	batchSave uint64 // hypercalls saved by batching
}

// New creates an xsim hypervisor on the given node.
func New(node *nodeinfo.Node) *Hypervisor {
	return &Hypervisor{
		host:    hyper.NewHost(node, 1.2), // paravirt hosts run tighter commit
		domains: make(map[DomID]*hyper.Machine),
		byName:  make(map[string]DomID),
		nextID:  1,
	}
}

// Host exposes the underlying host model.
func (h *Hypervisor) Host() *hyper.Host { return h.host }

// HypercallCount returns how many individual hypercalls were serviced and
// how many were saved through multicall batching.
func (h *Hypervisor) HypercallCount() (served, savedByBatching uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hcalls, h.batchSave
}

// Call issues a single hypercall from the given domain. Only Domain0 may
// invoke control operations.
func (h *Hypervisor) Call(from DomID, hc Hypercall) Result {
	h.mu.Lock()
	h.hcalls++
	h.mu.Unlock()
	if from != Domain0 {
		return Result{Err: fmt.Errorf("xsim: domain %d is not privileged", from)}
	}
	return h.dispatch(hc)
}

// Multicall issues a batch of hypercalls with a single privilege
// transition; results are positional. The modelled saving is one
// transition per call beyond the first.
func (h *Hypervisor) Multicall(from DomID, hcs []Hypercall) []Result {
	h.mu.Lock()
	h.hcalls++ // one transition for the whole batch
	if len(hcs) > 1 {
		h.batchSave += uint64(len(hcs) - 1)
	}
	h.mu.Unlock()
	out := make([]Result, len(hcs))
	if from != Domain0 {
		err := fmt.Errorf("xsim: domain %d is not privileged", from)
		for i := range out {
			out[i] = Result{Err: err}
		}
		return out
	}
	for i, hc := range hcs {
		out[i] = h.dispatch(hc)
	}
	return out
}

func (h *Hypervisor) dispatch(hc Hypercall) Result {
	switch hc.Op {
	case OpVersion:
		return Result{Value: "xsim 4.16-sim"}
	case OpDomainCreate:
		args, ok := hc.Args.(CreateArgs)
		if !ok {
			return Result{Err: fmt.Errorf("xsim: DomainCreate: bad argument type %T", hc.Args)}
		}
		return h.create(args)
	case OpDomainList:
		return h.list()
	}
	// Remaining ops are per-domain.
	h.mu.Lock()
	m, ok := h.domains[hc.Dom]
	h.mu.Unlock()
	if !ok {
		return Result{Err: fmt.Errorf("xsim: no domain %d", hc.Dom)}
	}
	switch hc.Op {
	case OpDomainDestroy:
		// Destroy also tears down the domain record, like xl destroy.
		if st := m.State(); st != hyper.StateShutoff {
			if err := m.Destroy(); err != nil {
				return Result{Err: err}
			}
		}
		h.mu.Lock()
		delete(h.domains, hc.Dom)
		delete(h.byName, m.Name())
		h.mu.Unlock()
		if err := h.host.RemoveMachine(m.Name()); err != nil {
			return Result{Err: err}
		}
		return Result{}
	case OpDomainPause:
		return Result{Err: m.Pause()}
	case OpDomainUnpause:
		return Result{Err: m.Resume()}
	case OpDomainShutdown:
		return Result{Err: m.Shutdown()}
	case OpDomainReboot:
		return Result{Err: m.Reboot()}
	case OpDomainCrash:
		return Result{Err: m.Crash()}
	case OpDomainGetInfo:
		st := m.Stats()
		return Result{Value: DomainInfo{
			ID:        hc.Dom,
			Name:      m.Name(),
			State:     st.State,
			VCPUs:     st.VCPUs,
			MemKiB:    st.MemKiB,
			MaxMemKiB: st.MaxMemKiB,
			CPUTimeNs: st.CPUTimeNs,
		}}
	case OpDomainSetMaxMem:
		kib, ok := hc.Args.(uint64)
		if !ok {
			return Result{Err: fmt.Errorf("xsim: SetMaxMem: bad argument type %T", hc.Args)}
		}
		return Result{Err: m.SetMemory(kib)}
	case OpDomainSetVCPUs:
		n, ok := hc.Args.(int)
		if !ok {
			return Result{Err: fmt.Errorf("xsim: SetVCPUs: bad argument type %T", hc.Args)}
		}
		return Result{Err: m.SetVCPUs(n)}
	default:
		return Result{Err: fmt.Errorf("xsim: unknown hypercall %d", hc.Op)}
	}
}

// create builds the domain and starts it immediately: Xen-style domains
// are created running (xl create), unlike qsim's powered-off launch.
func (h *Hypervisor) create(args CreateArgs) Result {
	m, err := hyper.NewMachine(hyper.Config{
		Name:          args.Name,
		VCPUs:         args.VCPUs,
		MaxVCPUs:      args.MaxVCPUs,
		MemKiB:        args.MemKiB,
		MaxMemKiB:     args.MaxMemKiB,
		CPUUtil:       args.CPUUtil,
		DirtyPagesSec: args.DirtyPagesSec,
		BlockIOPS:     args.BlockIOPS,
		NetPPS:        args.NetPPS,
	})
	if err != nil {
		return Result{Err: err}
	}
	// Paravirt guests boot faster than full virt: no firmware, modified
	// kernel talks to the hypervisor directly.
	m.SetLatencyModel(900_000_000, 500_000_000, 2_000_000, 1_500_000, 30_000_000)
	h.mu.Lock()
	if _, dup := h.byName[args.Name]; dup {
		h.mu.Unlock()
		return Result{Err: fmt.Errorf("xsim: domain %q already exists", args.Name)}
	}
	if err := h.host.AddMachine(m); err != nil {
		h.mu.Unlock()
		return Result{Err: err}
	}
	id := h.nextID
	h.nextID++
	h.domains[id] = m
	h.byName[args.Name] = id
	h.mu.Unlock()
	if err := h.host.StartMachine(args.Name); err != nil {
		// Roll the record back so failed creates leave no trace.
		h.mu.Lock()
		delete(h.domains, id)
		delete(h.byName, args.Name)
		h.mu.Unlock()
		h.host.RemoveMachine(args.Name) //nolint:errcheck
		return Result{Err: err}
	}
	return Result{Value: id}
}

func (h *Hypervisor) list() Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	ids := make([]DomID, 0, len(h.domains))
	for id := range h.domains {
		ids = append(ids, id)
	}
	return Result{Value: ids}
}

// LookupByName resolves a domain name to its DomID (Domain0 tooling
// convenience; real Xen keeps this in xenstore).
func (h *Hypervisor) LookupByName(name string) (DomID, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id, ok := h.byName[name]
	return id, ok
}

// Machine exposes the machine behind a DomID for substrate-level tests
// and the migration engine; management code must use hypercalls.
func (h *Hypervisor) Machine(id DomID) (*hyper.Machine, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.domains[id]
	return m, ok
}
