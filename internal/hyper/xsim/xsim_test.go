package xsim

import (
	"fmt"
	"testing"

	"repro/internal/hyper"
	"repro/internal/nodeinfo"
)

func newHV(t *testing.T) *Hypervisor {
	t.Helper()
	node, err := nodeinfo.NewNode("xhost", nodeinfo.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	return New(node)
}

func create(t *testing.T, h *Hypervisor, name string) DomID {
	t.Helper()
	res := h.Call(Domain0, Hypercall{Op: OpDomainCreate, Args: CreateArgs{
		Name: name, VCPUs: 2, MemKiB: 1024 * 1024,
	}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res.Value.(DomID)
}

func TestCreateStartsRunning(t *testing.T) {
	h := newHV(t)
	id := create(t, h, "d1")
	if id == Domain0 {
		t.Fatal("guest got Domain0 id")
	}
	res := h.Call(Domain0, Hypercall{Op: OpDomainGetInfo, Dom: id})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	info := res.Value.(DomainInfo)
	if info.State != hyper.StateRunning || info.Name != "d1" || info.VCPUs != 2 {
		t.Fatalf("%+v", info)
	}
}

func TestUnprivilegedDomainRefused(t *testing.T) {
	h := newHV(t)
	id := create(t, h, "d2")
	res := h.Call(id2dom(id), Hypercall{Op: OpDomainGetInfo, Dom: id})
	if res.Err == nil {
		t.Fatal("unprivileged hypercall accepted")
	}
	for _, r := range h.Multicall(DomID(99), []Hypercall{{Op: OpVersion}, {Op: OpDomainList}}) {
		if r.Err == nil {
			t.Fatal("unprivileged multicall accepted")
		}
	}
}

func id2dom(id DomID) DomID { return id }

func TestLifecycleHypercalls(t *testing.T) {
	h := newHV(t)
	id := create(t, h, "d3")
	steps := []Op{OpDomainPause, OpDomainUnpause, OpDomainShutdown}
	for _, op := range steps {
		if res := h.Call(Domain0, Hypercall{Op: op, Dom: id}); res.Err != nil {
			t.Fatalf("op %d: %v", op, res.Err)
		}
	}
	res := h.Call(Domain0, Hypercall{Op: OpDomainGetInfo, Dom: id})
	if res.Value.(DomainInfo).State != hyper.StateShutoff {
		t.Fatalf("state %v", res.Value.(DomainInfo).State)
	}
	// Destroy removes the record entirely.
	if res := h.Call(Domain0, Hypercall{Op: OpDomainDestroy, Dom: id}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := h.Call(Domain0, Hypercall{Op: OpDomainGetInfo, Dom: id}); res.Err == nil {
		t.Fatal("destroyed domain still queryable")
	}
	if _, ok := h.LookupByName("d3"); ok {
		t.Fatal("name still resolvable after destroy")
	}
}

func TestDestroyRunningDomain(t *testing.T) {
	h := newHV(t)
	id := create(t, h, "d4")
	if res := h.Call(Domain0, Hypercall{Op: OpDomainDestroy, Dom: id}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := h.Call(Domain0, Hypercall{Op: OpDomainList}); len(res.Value.([]DomID)) != 0 {
		t.Fatal("list not empty after destroy")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	h := newHV(t)
	create(t, h, "dup")
	res := h.Call(Domain0, Hypercall{Op: OpDomainCreate, Args: CreateArgs{
		Name: "dup", VCPUs: 1, MemKiB: 1024,
	}})
	if res.Err == nil {
		t.Fatal("duplicate create accepted")
	}
}

func TestCreateRollsBackOnAdmissionFailure(t *testing.T) {
	node, _ := nodeinfo.NewNode("tiny", nodeinfo.ProfileLaptop) // 16 GiB * 1.2
	h := New(node)
	for i := 0; i < 4; i++ {
		res := h.Call(Domain0, Hypercall{Op: OpDomainCreate, Args: CreateArgs{
			Name: fmt.Sprintf("d%d", i), VCPUs: 1, MemKiB: 4 * 1024 * 1024,
		}})
		if res.Err != nil {
			t.Fatalf("create %d: %v", i, res.Err)
		}
	}
	res := h.Call(Domain0, Hypercall{Op: OpDomainCreate, Args: CreateArgs{
		Name: "over", VCPUs: 1, MemKiB: 4 * 1024 * 1024,
	}})
	if res.Err == nil {
		t.Fatal("overcommitted create accepted")
	}
	if _, ok := h.LookupByName("over"); ok {
		t.Fatal("failed create left a domain record")
	}
	if h.Host().Count() != 4 {
		t.Fatalf("host machine count %d", h.Host().Count())
	}
}

func TestSetMaxMemAndVCPUs(t *testing.T) {
	h := newHV(t)
	res := h.Call(Domain0, Hypercall{Op: OpDomainCreate, Args: CreateArgs{
		Name: "tune", VCPUs: 2, MaxVCPUs: 4, MemKiB: 1024 * 1024, MaxMemKiB: 2 * 1024 * 1024,
	}})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	id := res.Value.(DomID)
	if r := h.Call(Domain0, Hypercall{Op: OpDomainSetMaxMem, Dom: id, Args: uint64(512 * 1024)}); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := h.Call(Domain0, Hypercall{Op: OpDomainSetVCPUs, Dom: id, Args: 4}); r.Err != nil {
		t.Fatal(r.Err)
	}
	info := h.Call(Domain0, Hypercall{Op: OpDomainGetInfo, Dom: id}).Value.(DomainInfo)
	if info.MemKiB != 512*1024 || info.VCPUs != 4 {
		t.Fatalf("%+v", info)
	}
	// Bad argument types are rejected.
	if r := h.Call(Domain0, Hypercall{Op: OpDomainSetMaxMem, Dom: id, Args: "lots"}); r.Err == nil {
		t.Fatal("bad arg type accepted")
	}
	if r := h.Call(Domain0, Hypercall{Op: OpDomainSetVCPUs, Dom: id, Args: 3.5}); r.Err == nil {
		t.Fatal("bad arg type accepted")
	}
}

func TestMulticallBatching(t *testing.T) {
	h := newHV(t)
	ids := make([]DomID, 3)
	for i := range ids {
		ids[i] = create(t, h, fmt.Sprintf("b%d", i))
	}
	served0, saved0 := h.HypercallCount()

	batch := make([]Hypercall, len(ids))
	for i, id := range ids {
		batch[i] = Hypercall{Op: OpDomainPause, Dom: id}
	}
	results := h.Multicall(Domain0, batch)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch entry %d: %v", i, r.Err)
		}
	}
	served1, saved1 := h.HypercallCount()
	if served1 != served0+1 {
		t.Fatalf("multicall consumed %d transitions, want 1", served1-served0)
	}
	if saved1 != saved0+2 {
		t.Fatalf("saved %d transitions, want 2", saved1-saved0)
	}
	// Mixed success/failure is positional.
	results = h.Multicall(Domain0, []Hypercall{
		{Op: OpDomainUnpause, Dom: ids[0]},
		{Op: OpDomainUnpause, Dom: DomID(4242)},
	})
	if results[0].Err != nil || results[1].Err == nil {
		t.Fatalf("positional results wrong: %v / %v", results[0].Err, results[1].Err)
	}
}

func TestUnknownOp(t *testing.T) {
	h := newHV(t)
	id := create(t, h, "u")
	if res := h.Call(Domain0, Hypercall{Op: Op(999), Dom: id}); res.Err == nil {
		t.Fatal("unknown op accepted")
	}
	if res := h.Call(Domain0, Hypercall{Op: OpDomainCreate, Args: 42}); res.Err == nil {
		t.Fatal("bad create args accepted")
	}
}

func TestVersionAndList(t *testing.T) {
	h := newHV(t)
	if res := h.Call(Domain0, Hypercall{Op: OpVersion}); res.Err != nil || res.Value.(string) == "" {
		t.Fatalf("version: %+v", res)
	}
	create(t, h, "l1")
	create(t, h, "l2")
	res := h.Call(Domain0, Hypercall{Op: OpDomainList})
	if len(res.Value.([]DomID)) != 2 {
		t.Fatalf("list %v", res.Value)
	}
}

func TestCrashInjection(t *testing.T) {
	h := newHV(t)
	id := create(t, h, "c")
	if res := h.Call(Domain0, Hypercall{Op: OpDomainCrash, Dom: id}); res.Err != nil {
		t.Fatal(res.Err)
	}
	info := h.Call(Domain0, Hypercall{Op: OpDomainGetInfo, Dom: id}).Value.(DomainInfo)
	if info.State != hyper.StateCrashed {
		t.Fatalf("state %v", info.State)
	}
}
