package hyper

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/nodeinfo"
	"repro/internal/uuid"
)

// Host owns a set of machines on one node and enforces resource limits:
// committed memory may not exceed node memory times the overcommit
// factor, and every machine needs at least one physical CPU available.
type Host struct {
	mu         sync.Mutex
	node       *nodeinfo.Node
	overcommit float64
	machines   map[string]*Machine // by name
	byUUID     map[uuid.UUID]*Machine
}

// NewHost creates an empty host on the given node. An overcommit factor
// <= 0 defaults to 1.5.
func NewHost(node *nodeinfo.Node, overcommit float64) *Host {
	if overcommit <= 0 {
		overcommit = 1.5
	}
	return &Host{
		node:       node,
		overcommit: overcommit,
		machines:   make(map[string]*Machine),
		byUUID:     make(map[uuid.UUID]*Machine),
	}
}

// Node returns the underlying node description.
func (h *Host) Node() *nodeinfo.Node { return h.node }

// CommittedMemKiB returns memory committed to running or paused machines.
func (h *Host) CommittedMemKiB() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.committedLocked()
}

func (h *Host) committedLocked() uint64 {
	var total uint64
	for _, m := range h.machines {
		switch m.State() {
		case StateRunning, StatePaused, StateShutdown, StatePMSuspended:
			total += m.MemKiB()
		}
	}
	return total
}

// AddMachine registers a machine on the host. Names and UUIDs must be
// unique per host.
func (h *Host) AddMachine(m *Machine) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.machines[m.Name()]; dup {
		return fmt.Errorf("hyper: host %s: machine %q already exists", h.node.Hostname, m.Name())
	}
	if _, dup := h.byUUID[m.UUID()]; dup {
		return fmt.Errorf("hyper: host %s: machine UUID %s already exists", h.node.Hostname, m.UUID())
	}
	h.machines[m.Name()] = m
	h.byUUID[m.UUID()] = m
	return nil
}

// RemoveMachine deregisters a machine; it must not be active.
func (h *Host) RemoveMachine(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.machines[name]
	if !ok {
		return fmt.Errorf("hyper: host %s: no machine %q", h.node.Hostname, name)
	}
	if st := m.State(); st != StateShutoff && st != StateCrashed {
		return fmt.Errorf("hyper: host %s: machine %q is %s, cannot remove", h.node.Hostname, name, st)
	}
	delete(h.machines, name)
	delete(h.byUUID, m.UUID())
	return nil
}

// Machine looks a machine up by name.
func (h *Host) Machine(name string) (*Machine, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.machines[name]
	return m, ok
}

// MachineByUUID looks a machine up by identity.
func (h *Host) MachineByUUID(id uuid.UUID) (*Machine, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.byUUID[id]
	return m, ok
}

// Machines returns all machines sorted by name.
func (h *Host) Machines() []*Machine {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Machine, 0, len(h.machines))
	for _, m := range h.machines {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// MachineEach calls fn for each named machine still registered, in
// input order, under a single registry lock acquisition — the batched
// form of Machine for monitoring sweeps. Unknown names are skipped. fn
// runs with the registry locked and must not call back into the host.
func (h *Host) MachineEach(names []string, fn func(i int, m *Machine)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, n := range names {
		if m, ok := h.machines[n]; ok {
			fn(i, m)
		}
	}
}

// Count returns the number of registered machines.
func (h *Host) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.machines)
}

// StartMachine starts a registered machine after admission control.
func (h *Host) StartMachine(name string) error {
	h.mu.Lock()
	m, ok := h.machines[name]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("hyper: host %s: no machine %q", h.node.Hostname, name)
	}
	limit := uint64(float64(h.node.MemoryKiB) * h.overcommit)
	if h.committedLocked()+m.MemKiB() > limit {
		h.mu.Unlock()
		return fmt.Errorf("hyper: host %s: starting %q would commit %d KiB over limit %d",
			h.node.Hostname, name, h.committedLocked()+m.MemKiB(), limit)
	}
	h.mu.Unlock()
	return m.Start()
}

// ActiveCount returns how many machines are not shut off.
func (h *Host) ActiveCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, m := range h.machines {
		if m.State() != StateShutoff {
			n++
		}
	}
	return n
}

// RunAllFor advances every running machine's workload model.
func (h *Host) RunAllFor(ns uint64) {
	for _, m := range h.Machines() {
		m.RunFor(ns)
	}
}
