package qsim

import (
	"strings"
	"testing"

	"repro/internal/hyper"
	"repro/internal/nodeinfo"
)

func newHV(t *testing.T) *Hypervisor {
	t.Helper()
	node, err := nodeinfo.NewNode("qhost", nodeinfo.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	return New(node)
}

func launch(t *testing.T, h *Hypervisor, name string) *Emulator {
	t.Helper()
	e, err := h.Launch(hyper.Config{Name: name, VCPUs: 2, MemKiB: 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLaunchAndQuit(t *testing.T) {
	h := newHV(t)
	e := launch(t, h, "g1")
	if e.Machine().State() != hyper.StateShutoff {
		t.Fatal("fresh emulator should hold guest powered off")
	}
	if _, dup := h.Emulator("g1"); !dup {
		t.Fatal("emulator lookup failed")
	}
	if _, err := h.Launch(hyper.Config{Name: "g1", VCPUs: 1, MemKiB: 1024}); err == nil {
		t.Fatal("duplicate launch accepted")
	}
	if err := h.Quit("g1", false); err != nil {
		t.Fatal(err)
	}
	if err := h.Quit("g1", false); err == nil {
		t.Fatal("double quit accepted")
	}
	if len(h.Emulators()) != 0 {
		t.Fatal("emulator list not empty")
	}
}

func TestQuitRunningNeedsForce(t *testing.T) {
	h := newHV(t)
	e := launch(t, h, "g2")
	if err := e.Monitor().ExecuteCommand("system_boot", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.Quit("g2", false); err == nil {
		t.Fatal("quit of running guest without force accepted")
	}
	if err := h.Quit("g2", true); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorLifecycleViaJSON(t *testing.T) {
	h := newHV(t)
	e := launch(t, h, "g3")
	mon := e.Monitor()

	reply, err := mon.Execute([]byte(`{"execute":"query-status"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reply), `"running":false`) {
		t.Fatalf("reply %s", reply)
	}

	for _, cmd := range []string{"system_boot", "stop", "cont", "system_powerdown"} {
		reply, err := mon.Execute([]byte(`{"execute":"` + cmd + `"}`))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(reply), `"error"`) {
			t.Fatalf("%s: %s", cmd, reply)
		}
	}
	if e.Machine().State() != hyper.StateShutoff {
		t.Fatalf("state %v", e.Machine().State())
	}
}

func TestMonitorErrorsAreReplies(t *testing.T) {
	h := newHV(t)
	e := launch(t, h, "g4")
	mon := e.Monitor()
	cases := []string{
		`{"execute":"warp-drive"}`, // unknown command
		`not json`,                 // malformed
		`{"arguments":{}}`,         // missing execute
		`{"execute":"stop"}`,       // invalid state transition
		`{"execute":"balloon"}`,    // missing arguments
		`{"execute":"balloon","arguments":{"value":"x"}}`, // bad arg type
	}
	for _, c := range cases {
		reply, err := mon.Execute([]byte(c))
		if err != nil {
			t.Fatalf("%s: monitor failure %v", c, err)
		}
		if !strings.Contains(string(reply), `"error"`) {
			t.Fatalf("%s: expected error reply, got %s", c, reply)
		}
	}
}

func TestMonitorBalloonAndVCPUs(t *testing.T) {
	h := newHV(t)
	e, err := h.Launch(hyper.Config{Name: "g5", VCPUs: 2, MaxVCPUs: 8, MemKiB: 1024 * 1024, MaxMemKiB: 2 * 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	mon := e.Monitor()
	if err := mon.ExecuteCommand("balloon", map[string]uint64{"value": 512 * 1024 * 1024}, nil); err != nil {
		t.Fatal(err)
	}
	var bal struct {
		Actual uint64 `json:"actual"`
	}
	if err := mon.ExecuteCommand("query-balloon", nil, &bal); err != nil {
		t.Fatal(err)
	}
	if bal.Actual != 512*1024*1024 {
		t.Fatalf("balloon %d", bal.Actual)
	}
	if err := mon.ExecuteCommand("set-vcpus", map[string]int{"count": 8}, nil); err != nil {
		t.Fatal(err)
	}
	var cpus []map[string]interface{}
	if err := mon.ExecuteCommand("query-cpus", nil, &cpus); err != nil {
		t.Fatal(err)
	}
	if len(cpus) != 8 {
		t.Fatalf("cpus %d", len(cpus))
	}
}

func TestMonitorStatsQueries(t *testing.T) {
	h := newHV(t)
	e := launch(t, h, "g6")
	mon := e.Monitor()
	if err := mon.ExecuteCommand("system_boot", nil, nil); err != nil {
		t.Fatal(err)
	}
	e.Machine().RunFor(1_000_000_000)
	var cpu struct {
		CPUTimeNs uint64 `json:"cpu_time_ns"`
	}
	if err := mon.ExecuteCommand("query-cpustats", nil, &cpu); err != nil {
		t.Fatal(err)
	}
	if cpu.CPUTimeNs == 0 {
		t.Fatal("no cpu time accounted")
	}
	var blk map[string]uint64
	if err := mon.ExecuteCommand("query-blockstats", nil, &blk); err != nil {
		t.Fatal(err)
	}
	var nst map[string]uint64
	if err := mon.ExecuteCommand("query-netstats", nil, &nst); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFailure(t *testing.T) {
	h := newHV(t)
	e := launch(t, h, "g7")
	mon := e.Monitor()
	if err := mon.ExecuteCommand("system_boot", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := mon.ExecuteCommand("inject-failure", nil, nil); err != nil {
		t.Fatal(err)
	}
	var st struct {
		Status string `json:"status"`
	}
	if err := mon.ExecuteCommand("query-status", nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "internal-error" {
		t.Fatalf("status %q", st.Status)
	}
}

func TestAdmissionThroughMonitorBoot(t *testing.T) {
	node, _ := nodeinfo.NewNode("tiny", nodeinfo.ProfileLaptop) // 16 GiB, 1.5x overcommit
	h := New(node)
	var last *Emulator
	for i := 0; i < 7; i++ {
		e, err := h.Launch(hyper.Config{
			Name: string(rune('a' + i)), VCPUs: 1, MemKiB: 4 * 1024 * 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		last = e
		if i < 6 {
			if err := e.Monitor().ExecuteCommand("system_boot", nil, nil); err != nil {
				t.Fatalf("boot %d: %v", i, err)
			}
		}
	}
	// 7th boot exceeds 24 GiB commit limit.
	if err := last.Monitor().ExecuteCommand("system_boot", nil, nil); err == nil {
		t.Fatal("overcommitted boot accepted")
	}
}
