// Package qsim simulates a QEMU/KVM-style full-virtualization stack. Its
// native management surface is a per-VM JSON monitor protocol (modelled on
// QMP): every control operation is a JSON command executed against the
// machine's Monitor, exactly the interface shape the qemu driver must
// translate the uniform API into. An Emulator process object owns the
// machine and its monitor, mirroring "one QEMU process per guest".
package qsim

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/hyper"
	"repro/internal/nodeinfo"
)

// Hypervisor is the qsim host-level interface: it creates and tracks
// emulator processes, one per guest.
type Hypervisor struct {
	mu        sync.Mutex
	host      *hyper.Host
	emulators map[string]*Emulator // by machine name
	version   string
}

// New creates a qsim hypervisor on the given node.
func New(node *nodeinfo.Node) *Hypervisor {
	return &Hypervisor{
		host:      hyper.NewHost(node, 1.5),
		emulators: make(map[string]*Emulator),
		version:   "qsim 4.2.1",
	}
}

// Version returns the emulator version banner.
func (h *Hypervisor) Version() string { return h.version }

// Host exposes the underlying host model.
func (h *Hypervisor) Host() *hyper.Host { return h.host }

// Launch creates an emulator process (and its machine) in the powered-off
// state; the monitor is immediately available, as with -S in QEMU.
func (h *Hypervisor) Launch(cfg hyper.Config) (*Emulator, error) {
	m, err := hyper.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	// qsim guests carry the full-virtualization latency envelope: slowest
	// boot, fast pause/resume through the in-kernel module.
	m.SetLatencyModel(2_200_000_000, 1_000_000_000, 3_000_000, 2_500_000, 50_000_000)
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.emulators[cfg.Name]; dup {
		return nil, fmt.Errorf("qsim: emulator for %q already running", cfg.Name)
	}
	if err := h.host.AddMachine(m); err != nil {
		return nil, err
	}
	e := &Emulator{machine: m, host: h.host}
	e.monitor = &Monitor{emu: e}
	h.emulators[cfg.Name] = e
	return e, nil
}

// Emulator looks up a running emulator process by guest name.
func (h *Hypervisor) Emulator(name string) (*Emulator, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.emulators[name]
	return e, ok
}

// Quit terminates an emulator process; the guest must be shut off first
// unless force is set.
func (h *Hypervisor) Quit(name string, force bool) error {
	h.mu.Lock()
	e, ok := h.emulators[name]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("qsim: no emulator for %q", name)
	}
	st := e.machine.State()
	if st != hyper.StateShutoff && st != hyper.StateCrashed {
		if !force {
			return fmt.Errorf("qsim: guest %q is %s; use force to kill", name, st)
		}
		if err := e.machine.Destroy(); err != nil {
			return err
		}
	}
	h.mu.Lock()
	delete(h.emulators, name)
	h.mu.Unlock()
	return h.host.RemoveMachine(name)
}

// Emulators returns the names of all live emulator processes.
func (h *Hypervisor) Emulators() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.emulators))
	for n := range h.emulators {
		out = append(out, n)
	}
	return out
}

// Emulator is one simulated QEMU process: a machine plus its monitor.
type Emulator struct {
	machine *hyper.Machine
	monitor *Monitor
	host    *hyper.Host
}

// Machine exposes the underlying machine (for the substrate-level tests;
// management code must go through the Monitor).
func (e *Emulator) Machine() *hyper.Machine { return e.machine }

// Monitor returns the control monitor of this emulator.
func (e *Emulator) Monitor() *Monitor { return e.monitor }

// Monitor is the QMP-style JSON command interface of one emulator.
type Monitor struct {
	mu  sync.Mutex
	emu *Emulator
}

// command is the envelope of a monitor request.
type command struct {
	Execute   string          `json:"execute"`
	Arguments json.RawMessage `json:"arguments,omitempty"`
}

// response is the envelope of a monitor reply.
type response struct {
	Return interface{} `json:"return,omitempty"`
	Error  *qmpError   `json:"error,omitempty"`
}

type qmpError struct {
	Class string `json:"class"`
	Desc  string `json:"desc"`
}

// Execute runs one JSON command against the emulator and returns the JSON
// reply. Unknown commands and invalid arguments produce an error reply,
// never a Go error; a Go error means the monitor itself failed.
func (mon *Monitor) Execute(raw []byte) ([]byte, error) {
	mon.mu.Lock()
	defer mon.mu.Unlock()
	var cmd command
	if err := json.Unmarshal(raw, &cmd); err != nil {
		return marshalResp(response{Error: &qmpError{Class: "GenericError", Desc: "malformed command: " + err.Error()}})
	}
	if cmd.Execute == "" {
		return marshalResp(response{Error: &qmpError{Class: "GenericError", Desc: "missing execute"}})
	}
	ret, err := mon.dispatch(cmd)
	if err != nil {
		return marshalResp(response{Error: &qmpError{Class: "GenericError", Desc: err.Error()}})
	}
	return marshalResp(response{Return: ret})
}

func marshalResp(r response) ([]byte, error) {
	out, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("qsim: marshal response: %w", err)
	}
	return out, nil
}

func (mon *Monitor) dispatch(cmd command) (interface{}, error) {
	m := mon.emu.machine
	switch cmd.Execute {
	case "query-status":
		st := m.State()
		return map[string]interface{}{
			"status":  monitorStatus(st),
			"running": st == hyper.StateRunning,
		}, nil
	case "query-cpus":
		n := m.VCPUs()
		cpus := make([]map[string]interface{}, n)
		for i := 0; i < n; i++ {
			cpus[i] = map[string]interface{}{"cpu-index": i, "thread-id": 10000 + i}
		}
		return cpus, nil
	case "query-balloon":
		return map[string]interface{}{"actual": m.MemKiB() * 1024}, nil
	case "query-blockstats":
		st := m.Stats()
		return map[string]interface{}{
			"rd_bytes": st.RdBytes, "wr_bytes": st.WrBytes,
			"rd_operations": st.RdReqs, "wr_operations": st.WrReqs,
		}, nil
	case "query-netstats":
		st := m.Stats()
		return map[string]interface{}{
			"rx_bytes": st.RxBytes, "tx_bytes": st.TxBytes,
			"rx_packets": st.RxPkts, "tx_packets": st.TxPkts,
		}, nil
	case "query-cpustats":
		return map[string]interface{}{"cpu_time_ns": m.Stats().CPUTimeNs}, nil
	case "system_boot":
		return nil, mon.emu.host.StartMachine(m.Name())
	case "stop":
		return nil, m.Pause()
	case "cont":
		return nil, m.Resume()
	case "system_powerdown":
		return nil, m.Shutdown()
	case "system_reset":
		return nil, m.Reboot()
	case "quit":
		return nil, m.Destroy()
	case "balloon":
		var args struct {
			Value uint64 `json:"value"` // bytes
		}
		if err := unmarshalArgs(cmd.Arguments, &args); err != nil {
			return nil, err
		}
		return nil, m.SetMemory(args.Value / 1024)
	case "set-vcpus":
		var args struct {
			Count int `json:"count"`
		}
		if err := unmarshalArgs(cmd.Arguments, &args); err != nil {
			return nil, err
		}
		return nil, m.SetVCPUs(args.Count)
	case "inject-failure":
		return nil, m.Crash()
	default:
		return nil, fmt.Errorf("command %q not found", cmd.Execute)
	}
}

func unmarshalArgs(raw json.RawMessage, into interface{}) error {
	if len(raw) == 0 {
		return fmt.Errorf("missing arguments")
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return fmt.Errorf("invalid arguments: %v", err)
	}
	return nil
}

func monitorStatus(s hyper.State) string {
	switch s {
	case hyper.StateRunning:
		return "running"
	case hyper.StatePaused:
		return "paused"
	case hyper.StateShutdown:
		return "shutdown"
	case hyper.StateCrashed:
		return "internal-error"
	case hyper.StatePMSuspended:
		return "suspended"
	default:
		return "shutdown" // powered-off process idles with -S semantics
	}
}

// ExecuteCommand is a convenience wrapper building the JSON envelope from
// a command name and optional arguments and decoding the reply's return
// value into out (may be nil).
func (mon *Monitor) ExecuteCommand(name string, args interface{}, out interface{}) error {
	cmd := map[string]interface{}{"execute": name}
	if args != nil {
		cmd["arguments"] = args
	}
	raw, err := json.Marshal(cmd)
	if err != nil {
		return fmt.Errorf("qsim: marshal command: %w", err)
	}
	replyRaw, err := mon.Execute(raw)
	if err != nil {
		return err
	}
	var reply struct {
		Return json.RawMessage `json:"return"`
		Error  *qmpError       `json:"error"`
	}
	if err := json.Unmarshal(replyRaw, &reply); err != nil {
		return fmt.Errorf("qsim: decode reply: %w", err)
	}
	if reply.Error != nil {
		return fmt.Errorf("qsim: %s: %s", reply.Error.Class, reply.Error.Desc)
	}
	if out != nil && len(reply.Return) > 0 {
		if err := json.Unmarshal(reply.Return, out); err != nil {
			return fmt.Errorf("qsim: decode return: %w", err)
		}
	}
	return nil
}
