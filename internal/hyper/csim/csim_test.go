package csim

import (
	"strconv"
	"testing"

	"repro/internal/hyper"
	"repro/internal/nodeinfo"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	node, err := nodeinfo.NewNode("chost", nodeinfo.ProfileServer)
	if err != nil {
		t.Fatal(err)
	}
	return New(node)
}

func spec(name string) Spec {
	return Spec{Name: name, MemKiB: 512 * 1024, VCPUs: 2}
}

func TestCreateDefaults(t *testing.T) {
	e := newEngine(t)
	c, err := e.Create(spec("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != hyper.StateShutoff {
		t.Fatal("fresh container not stopped")
	}
	s := c.Spec()
	if s.Init != "/sbin/init" || len(s.Namespaces) != 5 {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if v, ok := e.Cgroups().Get(c.CgroupPath(), "memory.max"); !ok || v != strconv.Itoa(512*1024*1024) {
		t.Fatalf("memory.max %q %v", v, ok)
	}
	if v, ok := e.Cgroups().Get(c.CgroupPath(), "cpu.max"); !ok || v != "200000 100000" {
		t.Fatalf("cpu.max %q %v", v, ok)
	}
}

func TestCreateValidation(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Create(Spec{}); err == nil {
		t.Fatal("unnamed container accepted")
	}
	if _, err := e.Create(Spec{Name: "x"}); err == nil {
		t.Fatal("container without memory limit accepted")
	}
	if _, err := e.Create(Spec{Name: "x", MemKiB: 1024, Namespaces: []string{"timetravel"}}); err == nil {
		t.Fatal("unknown namespace accepted")
	}
	if _, err := e.Create(spec("dup")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Create(spec("dup")); err == nil {
		t.Fatal("duplicate container accepted")
	}
}

func TestContainerLifecycle(t *testing.T) {
	e := newEngine(t)
	c, _ := e.Create(spec("lc"))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if c.State() != hyper.StateRunning {
		t.Fatalf("state %v", c.State())
	}
	if err := c.Freeze(); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Cgroups().Get(c.CgroupPath(), "cgroup.freeze"); v != "1" {
		t.Fatalf("freeze file %q", v)
	}
	if err := c.Thaw(); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Cgroups().Get(c.CgroupPath(), "cgroup.freeze"); v != "0" {
		t.Fatalf("freeze file %q", v)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	if c.State() != hyper.StateShutoff {
		t.Fatalf("state %v", c.State())
	}
	// Kill from running.
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	e := newEngine(t)
	c, _ := e.Create(spec("rm"))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("rm"); err == nil {
		t.Fatal("removed a running container")
	}
	if err := c.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("rm"); err != nil {
		t.Fatal(err)
	}
	if err := e.Remove("rm"); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, ok := e.Cgroups().Get("/machine/rm", "memory.max"); ok {
		t.Fatal("cgroup not deleted")
	}
	if len(e.List()) != 0 {
		t.Fatal("list not empty")
	}
}

func TestApplyCgroupLimits(t *testing.T) {
	e := newEngine(t)
	c, _ := e.Create(Spec{Name: "rs", MemKiB: 1024 * 1024, VCPUs: 4})
	// Resize by editing cgroup files, then apply.
	e.Cgroups().Set(c.CgroupPath(), "memory.max", strconv.Itoa(256*1024*1024))
	e.Cgroups().Set(c.CgroupPath(), "cpu.max", "100000 100000")
	if err := c.ApplyCgroupLimits(); err != nil {
		t.Fatal(err)
	}
	if c.Machine().MemKiB() != 256*1024 {
		t.Fatalf("mem %d", c.Machine().MemKiB())
	}
	if c.Machine().VCPUs() != 1 {
		t.Fatalf("vcpus %d", c.Machine().VCPUs())
	}
	// Invalid file contents are rejected.
	e.Cgroups().Set(c.CgroupPath(), "memory.max", "lots")
	if err := c.ApplyCgroupLimits(); err == nil {
		t.Fatal("bad memory.max accepted")
	}
	e.Cgroups().Set(c.CgroupPath(), "memory.max", strconv.Itoa(256*1024*1024))
	e.Cgroups().Set(c.CgroupPath(), "cpu.max", "broken")
	if err := c.ApplyCgroupLimits(); err == nil {
		t.Fatal("bad cpu.max accepted")
	}
	e.Cgroups().Set(c.CgroupPath(), "cpu.max", "0 0")
	if err := c.ApplyCgroupLimits(); err == nil {
		t.Fatal("zero cpu.max accepted")
	}
}

func TestContainerBootIsFast(t *testing.T) {
	e := newEngine(t)
	c, _ := e.Create(spec("fast"))
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if boot := c.Machine().Stats().SimTimeNs; boot >= 500_000_000 {
		t.Fatalf("container boot modelled at %d ns; must be far below a VM's", boot)
	}
}

func TestListSorted(t *testing.T) {
	e := newEngine(t)
	for _, n := range []string{"zz", "aa", "mm"} {
		if _, err := e.Create(spec(n)); err != nil {
			t.Fatal(err)
		}
	}
	got := e.List()
	if got[0] != "aa" || got[1] != "mm" || got[2] != "zz" {
		t.Fatalf("list %v", got)
	}
}

func TestCgroupTree(t *testing.T) {
	tr := NewCgroupTree()
	if _, ok := tr.Get("/", "cgroup.controllers"); !ok {
		t.Fatal("root controllers missing")
	}
	tr.Set("/machine/a", "cpu.max", "max 100000")
	if v, ok := tr.Get("/machine/a", "cpu.max"); !ok || v != "max 100000" {
		t.Fatalf("%q %v", v, ok)
	}
	if _, ok := tr.Get("/machine/a", "io.max"); ok {
		t.Fatal("nonexistent file present")
	}
	if _, ok := tr.Get("/machine/b", "cpu.max"); ok {
		t.Fatal("nonexistent group present")
	}
	groups := tr.Groups()
	if len(groups) != 2 || groups[0] != "/" {
		t.Fatalf("groups %v", groups)
	}
	tr.Delete("/machine/a")
	if _, ok := tr.Get("/machine/a", "cpu.max"); ok {
		t.Fatal("delete did not remove group")
	}
}
