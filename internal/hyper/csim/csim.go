// Package csim simulates an OS-level container engine: containers are
// process groups sharing the host kernel, isolated through namespaces and
// resource-limited through a cgroup tree. Its native management surface —
// engine method calls plus direct cgroup-file edits — is again a different
// API shape from qsim's monitor and xsim's hypercalls, matching how the
// uniform layer manages containers by editing cgroups and talking to the
// engine directly.
package csim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/hyper"
	"repro/internal/nodeinfo"
)

// Namespace kinds a container may unshare.
const (
	NSPid   = "pid"
	NSNet   = "net"
	NSMount = "mnt"
	NSUTS   = "uts"
	NSIPC   = "ipc"
	NSUser  = "user"
)

var knownNamespaces = map[string]bool{
	NSPid: true, NSNet: true, NSMount: true, NSUTS: true, NSIPC: true, NSUser: true,
}

// Spec describes a container to create.
type Spec struct {
	Name       string
	Init       string // init process command line
	Namespaces []string
	VCPUs      int    // cpu.max quota in whole CPUs
	MemKiB     uint64 // memory.max
	CPUUtil    float64
}

// Engine is the container runtime. All containers share the host kernel;
// there is no per-guest hypervisor object.
type Engine struct {
	mu         sync.Mutex
	host       *hyper.Host
	containers map[string]*Container
	cgroups    *CgroupTree
	kernel     string
}

// New creates an engine on the given node.
func New(node *nodeinfo.Node) *Engine {
	return &Engine{
		host:       hyper.NewHost(node, 2.0), // containers overcommit aggressively
		containers: make(map[string]*Container),
		cgroups:    NewCgroupTree(),
		kernel:     "5.14.0-sim",
	}
}

// KernelVersion returns the shared kernel version banner.
func (e *Engine) KernelVersion() string { return e.kernel }

// Host exposes the underlying host model.
func (e *Engine) Host() *hyper.Host { return e.host }

// Cgroups exposes the cgroup tree for direct edits, the way management
// layers resize containers.
func (e *Engine) Cgroups() *CgroupTree { return e.cgroups }

// Create registers a container in the stopped state and materialises its
// cgroup.
func (e *Engine) Create(spec Spec) (*Container, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("csim: container needs a name")
	}
	if spec.Init == "" {
		spec.Init = "/sbin/init"
	}
	if len(spec.Namespaces) == 0 {
		spec.Namespaces = []string{NSPid, NSNet, NSMount, NSUTS, NSIPC}
	}
	for _, ns := range spec.Namespaces {
		if !knownNamespaces[ns] {
			return nil, fmt.Errorf("csim: container %s: unknown namespace %q", spec.Name, ns)
		}
	}
	if spec.VCPUs <= 0 {
		spec.VCPUs = 1
	}
	if spec.MemKiB == 0 {
		return nil, fmt.Errorf("csim: container %s: memory limit required", spec.Name)
	}
	m, err := hyper.NewMachine(hyper.Config{
		Name:    spec.Name,
		VCPUs:   spec.VCPUs,
		MemKiB:  spec.MemKiB,
		CPUUtil: spec.CPUUtil,
		// Containers share the host page cache; dirty-page migration does
		// not apply, so the dirty model stays off.
	})
	if err != nil {
		return nil, err
	}
	// Containers "boot" by exec'ing init: two orders of magnitude faster
	// than a full VM.
	m.SetLatencyModel(45_000_000, 30_000_000, 1_000_000, 800_000, 5_000_000)

	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.containers[spec.Name]; dup {
		return nil, fmt.Errorf("csim: container %q already exists", spec.Name)
	}
	if err := e.host.AddMachine(m); err != nil {
		return nil, err
	}
	path := "/machine/" + spec.Name
	e.cgroups.Set(path, "cpu.max", fmt.Sprintf("%d 100000", spec.VCPUs*100000))
	e.cgroups.Set(path, "memory.max", strconv.FormatUint(spec.MemKiB*1024, 10))
	c := &Container{
		spec:    spec,
		machine: m,
		engine:  e,
		cgroup:  path,
	}
	e.containers[spec.Name] = c
	return c, nil
}

// Get looks up a container by name.
func (e *Engine) Get(name string) (*Container, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.containers[name]
	return c, ok
}

// List returns all container names, sorted.
func (e *Engine) List() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.containers))
	for n := range e.containers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Remove deletes a stopped container and its cgroup.
func (e *Engine) Remove(name string) error {
	e.mu.Lock()
	c, ok := e.containers[name]
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("csim: no container %q", name)
	}
	if st := c.machine.State(); st != hyper.StateShutoff {
		return fmt.Errorf("csim: container %q is %s; stop it first", name, st)
	}
	if err := e.host.RemoveMachine(name); err != nil {
		return err
	}
	e.mu.Lock()
	delete(e.containers, name)
	e.mu.Unlock()
	e.cgroups.Delete(c.cgroup)
	return nil
}

// Container is one OS-level virtual instance.
type Container struct {
	spec    Spec
	machine *hyper.Machine
	engine  *Engine
	cgroup  string
}

// Name returns the container name.
func (c *Container) Name() string { return c.spec.Name }

// Spec returns the creation spec.
func (c *Container) Spec() Spec { return c.spec }

// CgroupPath returns the container's cgroup directory.
func (c *Container) CgroupPath() string { return c.cgroup }

// Machine exposes the underlying accounting model.
func (c *Container) Machine() *hyper.Machine { return c.machine }

// Start launches the init process.
func (c *Container) Start() error {
	return c.engine.host.StartMachine(c.spec.Name)
}

// Freeze pauses all processes via the cgroup freezer.
func (c *Container) Freeze() error {
	if err := c.machine.Pause(); err != nil {
		return err
	}
	c.engine.cgroups.Set(c.cgroup, "cgroup.freeze", "1")
	return nil
}

// Thaw resumes a frozen container.
func (c *Container) Thaw() error {
	if err := c.machine.Resume(); err != nil {
		return err
	}
	c.engine.cgroups.Set(c.cgroup, "cgroup.freeze", "0")
	return nil
}

// Stop delivers SIGTERM to init (graceful shutdown).
func (c *Container) Stop() error { return c.machine.Shutdown() }

// Kill delivers SIGKILL to the process group.
func (c *Container) Kill() error { return c.machine.Destroy() }

// State returns the container state.
func (c *Container) State() hyper.State { return c.machine.State() }

// ApplyCgroupLimits re-reads the container's cgroup files and applies
// them to the running instance — the "resize by editing cgroups" path.
func (c *Container) ApplyCgroupLimits() error {
	cg := c.engine.cgroups
	if v, ok := cg.Get(c.cgroup, "memory.max"); ok {
		bytes, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return fmt.Errorf("csim: container %s: bad memory.max %q", c.spec.Name, v)
		}
		if err := c.machine.SetMemory(bytes / 1024); err != nil {
			return err
		}
	}
	if v, ok := cg.Get(c.cgroup, "cpu.max"); ok {
		fields := strings.Fields(v)
		if len(fields) != 2 {
			return fmt.Errorf("csim: container %s: bad cpu.max %q", c.spec.Name, v)
		}
		quota, err1 := strconv.Atoi(fields[0])
		period, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || period <= 0 || quota <= 0 {
			return fmt.Errorf("csim: container %s: bad cpu.max %q", c.spec.Name, v)
		}
		cpus := quota / period
		if cpus < 1 {
			cpus = 1
		}
		if err := c.machine.SetVCPUs(cpus); err != nil {
			return err
		}
	}
	return nil
}

// CgroupTree is a tiny cgroup-v2-like filesystem: paths hold controller
// files with string values.
type CgroupTree struct {
	mu    sync.Mutex
	files map[string]map[string]string // path -> file -> value
}

// NewCgroupTree creates an empty tree with a root group.
func NewCgroupTree() *CgroupTree {
	t := &CgroupTree{files: make(map[string]map[string]string)}
	t.files["/"] = map[string]string{"cgroup.controllers": "cpu memory io"}
	return t
}

// Set writes a controller file, creating the group if needed.
func (t *CgroupTree) Set(path, file, value string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.files[path]
	if !ok {
		g = make(map[string]string)
		t.files[path] = g
	}
	g[file] = value
}

// Get reads a controller file.
func (t *CgroupTree) Get(path, file string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.files[path]
	if !ok {
		return "", false
	}
	v, ok := g[file]
	return v, ok
}

// Delete removes a whole group.
func (t *CgroupTree) Delete(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.files, path)
}

// Groups lists all group paths, sorted.
func (t *CgroupTree) Groups() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.files))
	for p := range t.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
