package hyper

import "testing"

func TestCaptureAndRestoreState(t *testing.T) {
	cfg := testConfig("snap")
	cfg.MaxMemKiB = 2 * 1024 * 1024
	cfg.MaxVCPUs = 4
	m, _ := NewMachine(cfg)
	must(t, m.Start())
	m.RunFor(1_000_000_000)
	must(t, m.SetMemory(512*1024))
	must(t, m.SetVCPUs(4))
	captured := m.CaptureState()
	if captured.State != StateRunning || captured.MemKiB != 512*1024 || captured.VCPUs != 4 {
		t.Fatalf("%+v", captured)
	}
	if captured.CPUTimeNs == 0 {
		t.Fatal("cpu time not captured")
	}

	// Diverge, stop, restore.
	must(t, m.SetMemory(2*1024*1024))
	must(t, m.Destroy())
	must(t, m.RestoreState(captured))
	if m.State() != StateRunning || m.MemKiB() != 512*1024 || m.VCPUs() != 4 {
		t.Fatalf("restore: state=%v mem=%d vcpus=%d", m.State(), m.MemKiB(), m.VCPUs())
	}
	if m.Stats().CPUTimeNs != captured.CPUTimeNs {
		t.Fatal("cpu time not restored")
	}
	if m.ID() <= 0 {
		t.Fatal("restored running machine has no id")
	}
}

func TestRestoreRefusesActiveMachine(t *testing.T) {
	m, _ := NewMachine(testConfig("ra"))
	must(t, m.Start())
	s := m.CaptureState()
	if err := m.RestoreState(s); err == nil {
		t.Fatal("restore over running machine accepted")
	}
	must(t, m.Pause())
	if err := m.RestoreState(s); err == nil {
		t.Fatal("restore over paused machine accepted")
	}
}

func TestRestoreValidatesBounds(t *testing.T) {
	m, _ := NewMachine(testConfig("rv"))
	bad := []MachineState{
		{State: StateRunning, MemKiB: 0, VCPUs: 1},
		{State: StateRunning, MemKiB: 1 << 40, VCPUs: 1},
		{State: StateRunning, MemKiB: 1024, VCPUs: 0},
		{State: StateRunning, MemKiB: 1024, VCPUs: 99},
	}
	for i, s := range bad {
		if err := m.RestoreState(s); err == nil {
			t.Errorf("bad state %d accepted", i)
		}
	}
}

func TestRestoreToShutoff(t *testing.T) {
	m, _ := NewMachine(testConfig("rs"))
	s := m.CaptureState() // shutoff capture
	must(t, m.Start())
	must(t, m.Destroy())
	if err := m.RestoreState(s); err != nil {
		t.Fatal(err)
	}
	if m.State() != StateShutoff || m.ID() != -1 {
		t.Fatalf("state=%v id=%d", m.State(), m.ID())
	}
}
