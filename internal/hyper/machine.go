// Package hyper implements the simulated hardware substrate shared by all
// hypervisor simulators: a virtual machine model with a lifecycle state
// machine, vCPUs, memory with dirty-page tracking, and block/network
// device accounting.
//
// The paper's evaluation ran on real Xen/KVM testbeds; this substrate
// replaces them with a deterministic model (see DESIGN.md, Substitutions).
// Operations are instantaneous in wall-clock terms but accumulate
// *modelled* latency in simulated nanoseconds, so experiments measure the
// management layer's real overhead separately from the hypervisor's
// modelled cost, and results are reproducible on any machine.
package hyper

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/uuid"
)

// State is a machine lifecycle state, matching the classic domain states.
type State int

// Machine lifecycle states.
const (
	StateShutoff State = iota
	StateRunning
	StatePaused
	StateShutdown // graceful shutdown in progress
	StateCrashed
	StatePMSuspended
)

var stateNames = map[State]string{
	StateShutoff:     "shut off",
	StateRunning:     "running",
	StatePaused:      "paused",
	StateShutdown:    "in shutdown",
	StateCrashed:     "crashed",
	StatePMSuspended: "pmsuspended",
}

func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// PageSizeKiB is the simulated page size.
const PageSizeKiB = 4

// DiskConfig describes one simulated block device.
type DiskConfig struct {
	Target      string // guest device name, e.g. "vda"
	CapacityKiB uint64
	ReadOnly    bool
}

// NICConfig describes one simulated network device.
type NICConfig struct {
	MAC     string
	Network string
}

// Config is the immutable creation-time description of a machine.
type Config struct {
	Name      string
	UUID      uuid.UUID
	VCPUs     int
	MaxVCPUs  int // 0 means == VCPUs
	MemKiB    uint64
	MaxMemKiB uint64 // 0 means == MemKiB
	Disks     []DiskConfig
	NICs      []NICConfig

	// Workload model parameters.
	CPUUtil       float64 // fraction of a vCPU busy while running [0..1]
	DirtyPagesSec uint64  // pages dirtied per second while running
	BlockIOPS     uint64  // block requests per second while running
	NetPPS        uint64  // packets per second while running
}

// Stats is a point-in-time snapshot of machine accounting.
type Stats struct {
	State      State
	CPUTimeNs  uint64 // modelled guest CPU time
	MemKiB     uint64 // current balloon size
	MaxMemKiB  uint64
	VCPUs      int
	RdBytes    uint64
	WrBytes    uint64
	RdReqs     uint64
	WrReqs     uint64
	RxBytes    uint64
	TxBytes    uint64
	RxPkts     uint64
	TxPkts     uint64
	SimTimeNs  uint64 // modelled wall time spent running
	StartCount uint64
	DirtyPages uint64 // currently dirty (since last reset)
}

// latencyModel gives the modelled cost of each lifecycle operation in
// nanoseconds; hypervisor simulators override entries to differentiate
// themselves (a container "boots" much faster than a full VM).
type latencyModel struct {
	Start    uint64
	Shutdown uint64
	Pause    uint64
	Resume   uint64
	Destroy  uint64
	Save     uint64
	Restore  uint64
}

// defaultLatency models a full-virtualization guest.
var defaultLatency = latencyModel{
	Start:    1_800_000_000, // firmware + kernel boot
	Shutdown: 900_000_000,
	Pause:    4_000_000,
	Resume:   3_000_000,
	Destroy:  60_000_000,
	Save:     2_500_000_000,
	Restore:  1_200_000_000,
}

// Machine is one simulated virtual machine.
type Machine struct {
	mu  sync.Mutex
	cfg Config

	state     State
	id        int // positive while running, -1 otherwise
	vcpus     int
	memKiB    uint64
	persisted bool // has a saved image (after Save)

	// accounting
	cpuTimeNs  uint64
	simTimeNs  uint64
	startCount uint64
	rdBytes    uint64
	wrBytes    uint64
	rdReqs     uint64
	wrReqs     uint64
	rxBytes    uint64
	txBytes    uint64
	rxPkts     uint64
	txPkts     uint64

	// Dirty-page tracking uses a closed-form working-set coverage model:
	// 80% of writes hit a hot set of 20% of pages, the rest spread over
	// the whole address space. Expected unique coverage is tracked per
	// region, which keeps advances O(1) and fully deterministic at any
	// dirty rate.
	totalPages  uint64
	hotCovered  float64 // expected unique dirty pages in the hot set
	coldCovered float64 // expected unique dirty pages outside it

	// Migration support. throttle is the auto-convergence vCPU throttle
	// fraction [0, 0.99]: while set, RunFor scales both guest CPU
	// progress and dirty-page production by (1 - throttle). The
	// page-presence model backs post-copy: while postCopy is set the
	// machine runs with only presentPages of its memory resident and
	// access to the missing set raises demand faults.
	throttle     float64
	postCopy     bool
	presentPages uint64
	pcFaults     uint64

	latency latencyModel
}

// NewMachine validates cfg and constructs a powered-off machine.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("hyper: machine needs a name")
	}
	if cfg.VCPUs <= 0 {
		return nil, fmt.Errorf("hyper: machine %s: vcpus must be > 0", cfg.Name)
	}
	if cfg.MemKiB == 0 {
		return nil, fmt.Errorf("hyper: machine %s: memory must be > 0", cfg.Name)
	}
	if cfg.MaxVCPUs == 0 {
		cfg.MaxVCPUs = cfg.VCPUs
	}
	if cfg.MaxMemKiB == 0 {
		cfg.MaxMemKiB = cfg.MemKiB
	}
	if cfg.VCPUs > cfg.MaxVCPUs {
		return nil, fmt.Errorf("hyper: machine %s: vcpus %d exceed max %d", cfg.Name, cfg.VCPUs, cfg.MaxVCPUs)
	}
	if cfg.MemKiB > cfg.MaxMemKiB {
		return nil, fmt.Errorf("hyper: machine %s: memory %d exceeds max %d", cfg.Name, cfg.MemKiB, cfg.MaxMemKiB)
	}
	if cfg.UUID.IsNil() {
		cfg.UUID = uuid.FromName("machine:" + cfg.Name)
	}
	if cfg.CPUUtil <= 0 || cfg.CPUUtil > 1 {
		cfg.CPUUtil = 0.35
	}
	m := &Machine{
		cfg:        cfg,
		state:      StateShutoff,
		id:         -1,
		vcpus:      cfg.VCPUs,
		memKiB:     cfg.MemKiB,
		totalPages: cfg.MaxMemKiB / PageSizeKiB,
		latency:    defaultLatency,
	}
	return m, nil
}

// SetLatencyModel overrides the modelled operation costs; used by the
// hypervisor simulators to differentiate their performance envelopes.
func (m *Machine) SetLatencyModel(start, shutdown, pause, resume, destroy uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latency = latencyModel{
		Start: start, Shutdown: shutdown, Pause: pause, Resume: resume,
		Destroy: destroy, Save: m.latency.Save, Restore: m.latency.Restore,
	}
}

// Name returns the machine name.
func (m *Machine) Name() string { return m.cfg.Name }

// UUID returns the machine identity.
func (m *Machine) UUID() uuid.UUID { return m.cfg.UUID }

// Config returns a copy of the creation configuration.
func (m *Machine) Config() Config { return m.cfg }

// State returns the current lifecycle state.
func (m *Machine) State() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// ID returns the runtime domain ID (positive while running, -1 otherwise).
func (m *Machine) ID() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.id
}

var machineIDs struct {
	mu   sync.Mutex
	next int
}

func nextMachineID() int {
	machineIDs.mu.Lock()
	defer machineIDs.mu.Unlock()
	machineIDs.next++
	return machineIDs.next
}

// Start boots the machine.
func (m *Machine) Start() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case StateShutoff, StateCrashed:
		m.state = StateRunning
		m.id = nextMachineID()
		m.startCount++
		m.simTimeNs += m.latency.Start
		return nil
	default:
		return fmt.Errorf("hyper: machine %s: cannot start from state %q", m.cfg.Name, m.state)
	}
}

// Pause suspends execution, keeping memory resident.
func (m *Machine) Pause() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateRunning {
		return fmt.Errorf("hyper: machine %s: cannot pause from state %q", m.cfg.Name, m.state)
	}
	m.state = StatePaused
	m.simTimeNs += m.latency.Pause
	return nil
}

// Resume continues a paused machine.
func (m *Machine) Resume() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StatePaused {
		return fmt.Errorf("hyper: machine %s: cannot resume from state %q", m.cfg.Name, m.state)
	}
	m.state = StateRunning
	m.simTimeNs += m.latency.Resume
	return nil
}

// Shutdown performs a guest-cooperative shutdown.
func (m *Machine) Shutdown() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateRunning {
		return fmt.Errorf("hyper: machine %s: cannot shut down from state %q", m.cfg.Name, m.state)
	}
	m.state = StateShutoff
	m.id = -1
	m.simTimeNs += m.latency.Shutdown
	m.clearDirtyLocked()
	m.resetMigrationLocked()
	return nil
}

// Destroy force-stops the machine from any active state.
func (m *Machine) Destroy() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.state {
	case StateRunning, StatePaused, StateShutdown, StateCrashed, StatePMSuspended:
		m.state = StateShutoff
		m.id = -1
		m.simTimeNs += m.latency.Destroy
		m.clearDirtyLocked()
		m.resetMigrationLocked()
		return nil
	default:
		return fmt.Errorf("hyper: machine %s: cannot destroy from state %q", m.cfg.Name, m.state)
	}
}

// Crash simulates a guest crash (used by failure-injection tests).
func (m *Machine) Crash() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateRunning && m.state != StatePaused {
		return fmt.Errorf("hyper: machine %s: cannot crash from state %q", m.cfg.Name, m.state)
	}
	m.state = StateCrashed
	return nil
}

// Reboot shuts down and starts the guest in one operation.
func (m *Machine) Reboot() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateRunning {
		return fmt.Errorf("hyper: machine %s: cannot reboot from state %q", m.cfg.Name, m.state)
	}
	m.simTimeNs += m.latency.Shutdown + m.latency.Start
	m.startCount++
	m.clearDirtyLocked()
	return nil
}

// SetMemory adjusts the balloon within [1, MaxMemKiB].
func (m *Machine) SetMemory(kib uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if kib == 0 || kib > m.cfg.MaxMemKiB {
		return fmt.Errorf("hyper: machine %s: memory %d KiB outside [1, %d]", m.cfg.Name, kib, m.cfg.MaxMemKiB)
	}
	m.memKiB = kib
	return nil
}

// SetVCPUs adjusts the active vCPU count within [1, MaxVCPUs].
func (m *Machine) SetVCPUs(n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= 0 || n > m.cfg.MaxVCPUs {
		return fmt.Errorf("hyper: machine %s: vcpus %d outside [1, %d]", m.cfg.Name, n, m.cfg.MaxVCPUs)
	}
	m.vcpus = n
	return nil
}

// RunFor advances the workload model by the given modelled duration. All
// accounting (CPU time, I/O, dirty pages) derives from these explicit
// advances, keeping simulations deterministic.
func (m *Machine) RunFor(ns uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateRunning {
		return
	}
	m.simTimeNs += ns
	eff := 1 - m.throttle
	m.cpuTimeNs += uint64(float64(ns) * m.cfg.CPUUtil * eff * float64(m.vcpus))
	secs := float64(ns) / 1e9
	if m.cfg.BlockIOPS > 0 {
		reqs := uint64(float64(m.cfg.BlockIOPS) * secs)
		m.rdReqs += reqs / 2
		m.wrReqs += reqs - reqs/2
		m.rdBytes += (reqs / 2) * 16 * 1024
		m.wrBytes += (reqs - reqs/2) * 16 * 1024
	}
	if m.cfg.NetPPS > 0 {
		pkts := uint64(float64(m.cfg.NetPPS) * secs)
		m.rxPkts += pkts / 2
		m.txPkts += pkts - pkts/2
		m.rxBytes += (pkts / 2) * 1400
		m.txBytes += (pkts - pkts/2) * 1400
	}
	if m.cfg.DirtyPagesSec > 0 && m.totalPages > 0 {
		m.dirtyLocked(float64(m.cfg.DirtyPagesSec) * eff * secs)
	}
	if m.postCopy && m.totalPages > 0 && m.presentPages < m.totalPages {
		// Memory accesses landing in the missing set raise demand
		// faults. The write rate is the model's access-rate proxy, so
		// the fault rate is the miss fraction of it.
		frac := float64(m.totalPages-m.presentPages) / float64(m.totalPages)
		m.pcFaults += uint64(float64(m.cfg.DirtyPagesSec)*eff*secs*frac + 0.5)
	}
}

// dirtyLocked advances the coverage model by n page writes. With U total
// pages, the hot set is H = U/5; 80% of writes land in it directly and
// the remaining 20% spread uniformly over all U pages. Expected unique
// coverage after k draws over a region of size R grows as
// R - (R - covered)·(1-1/R)^k.
func (m *Machine) dirtyLocked(n float64) {
	u := float64(m.totalPages)
	h := u / 5
	if h < 1 {
		h = 1
	}
	c := u - h
	hotDraws := n * (0.8 + 0.2*h/u)
	coldDraws := n * 0.2 * c / u
	m.hotCovered = h - (h-m.hotCovered)*math.Pow(1-1/h, hotDraws)
	if c >= 1 {
		m.coldCovered = c - (c-m.coldCovered)*math.Pow(1-1/c, coldDraws)
	}
}

// DirtyPageCount returns the number of pages dirtied since the last reset.
func (m *Machine) DirtyPageCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dirtyCountLocked()
}

func (m *Machine) dirtyCountLocked() uint64 {
	n := uint64(math.Round(m.hotCovered + m.coldCovered))
	if n > m.totalPages {
		n = m.totalPages
	}
	return n
}

// ResetDirty clears dirty tracking (start of a migration iteration) and
// returns how many pages were dirty.
func (m *Machine) ResetDirty() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.dirtyCountLocked()
	m.clearDirtyLocked()
	return n
}

func (m *Machine) clearDirtyLocked() {
	m.hotCovered, m.coldCovered = 0, 0
}

// resetMigrationLocked drops migration state when the machine powers
// off: a later boot starts unthrottled with full memory resident.
func (m *Machine) resetMigrationLocked() {
	m.throttle = 0
	m.postCopy = false
	m.presentPages = 0
}

// TotalPages returns the number of memory pages backing the machine.
func (m *Machine) TotalPages() uint64 { return m.totalPages }

// SetMigrationThrottle sets the auto-convergence vCPU throttle: while
// frac > 0, RunFor scales guest CPU progress and dirty-page production
// by (1 - frac). The migration engine ratchets it up when the dirty rate
// outruns bandwidth and must restore it to zero on switch-over or abort.
// frac is clamped to [0, 0.99] so the guest never stops entirely.
func (m *Machine) SetMigrationThrottle(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 0.99 {
		frac = 0.99
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.throttle = frac
}

// MigrationThrottle returns the current auto-convergence throttle.
func (m *Machine) MigrationThrottle() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.throttle
}

// BeginPostCopy switches a running machine into post-copy mode: only
// presentPages of its memory are resident and RunFor raises demand
// faults proportional to the missing fraction until the rest arrives.
func (m *Machine) BeginPostCopy(presentPages uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state != StateRunning {
		return fmt.Errorf("hyper: machine %s: cannot enter post-copy from state %q", m.cfg.Name, m.state)
	}
	if presentPages > m.totalPages {
		presentPages = m.totalPages
	}
	m.postCopy = true
	m.presentPages = presentPages
	return nil
}

// MarkPresent records pages arriving from the migration source during
// post-copy. Presence is clamped to the machine size; post-copy mode
// ends automatically once every page is resident.
func (m *Machine) MarkPresent(pages uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.postCopy {
		return
	}
	m.presentPages += pages
	if m.presentPages >= m.totalPages {
		m.presentPages = m.totalPages
		m.postCopy = false
	}
}

// InPostCopy reports whether the machine is running with partial memory.
func (m *Machine) InPostCopy() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.postCopy
}

// MissingPages returns how many pages are not yet resident (0 outside
// post-copy).
func (m *Machine) MissingPages() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.postCopy {
		return 0
	}
	return m.totalPages - m.presentPages
}

// PostCopyFaults returns the cumulative demand-fault count.
func (m *Machine) PostCopyFaults() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pcFaults
}

// Stats returns a consistent snapshot of the machine accounting.
func (m *Machine) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		State:      m.state,
		CPUTimeNs:  m.cpuTimeNs,
		MemKiB:     m.memKiB,
		MaxMemKiB:  m.cfg.MaxMemKiB,
		VCPUs:      m.vcpus,
		RdBytes:    m.rdBytes,
		WrBytes:    m.wrBytes,
		RdReqs:     m.rdReqs,
		WrReqs:     m.wrReqs,
		RxBytes:    m.rxBytes,
		TxBytes:    m.txBytes,
		RxPkts:     m.rxPkts,
		TxPkts:     m.txPkts,
		SimTimeNs:  m.simTimeNs,
		StartCount: m.startCount,
		DirtyPages: m.dirtyCountLocked(),
	}
}

// MonitorStats returns the five fields a monitoring sweep reports,
// skipping the wide Stats copy — bulk sweeps call this once per machine
// on every poll tick.
func (m *Machine) MonitorStats() (st State, cpuTimeNs, memKiB, maxMemKiB uint64, vcpus int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state, m.cpuTimeNs, m.memKiB, m.cfg.MaxMemKiB, m.vcpus
}

// MemKiB returns the current balloon size.
func (m *Machine) MemKiB() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memKiB
}

// VCPUs returns the current active vCPU count.
func (m *Machine) VCPUs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vcpus
}
