package hyper

import "fmt"

// MachineState is a serialisable capture of a machine's runtime state,
// used by snapshots and managed save. Disk contents are not modelled;
// the substrate's observable state is the lifecycle state plus the
// accounting counters.
type MachineState struct {
	State      State
	MemKiB     uint64
	VCPUs      int
	CPUTimeNs  uint64
	SimTimeNs  uint64
	StartCount uint64
}

// CaptureState snapshots the machine's current runtime state. Capturing
// a running machine models a live snapshot: the guest keeps running.
func (m *Machine) CaptureState() MachineState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MachineState{
		State:      m.state,
		MemKiB:     m.memKiB,
		VCPUs:      m.vcpus,
		CPUTimeNs:  m.cpuTimeNs,
		SimTimeNs:  m.simTimeNs,
		StartCount: m.startCount,
	}
}

// RestoreState reverts the machine to a previously captured state. The
// machine must not be running: like reverting a snapshot, the current
// execution is discarded first (callers destroy before restoring). The
// restore cost is modelled with the latency model's Restore entry.
func (m *Machine) RestoreState(s MachineState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.state == StateRunning || m.state == StatePaused {
		return fmt.Errorf("hyper: machine %s: cannot restore over active state %q", m.cfg.Name, m.state)
	}
	if s.MemKiB == 0 || s.MemKiB > m.cfg.MaxMemKiB {
		return fmt.Errorf("hyper: machine %s: restored memory %d outside [1, %d]", m.cfg.Name, s.MemKiB, m.cfg.MaxMemKiB)
	}
	if s.VCPUs <= 0 || s.VCPUs > m.cfg.MaxVCPUs {
		return fmt.Errorf("hyper: machine %s: restored vcpus %d outside [1, %d]", m.cfg.Name, s.VCPUs, m.cfg.MaxVCPUs)
	}
	m.memKiB = s.MemKiB
	m.vcpus = s.VCPUs
	m.cpuTimeNs = s.CPUTimeNs
	m.startCount = s.StartCount
	m.simTimeNs += m.latency.Restore
	m.clearDirtyLocked()
	switch s.State {
	case StateRunning:
		m.state = StateRunning
		m.id = nextMachineID()
	case StatePaused:
		m.state = StatePaused
		m.id = nextMachineID()
	default:
		m.state = StateShutoff
		m.id = -1
	}
	return nil
}
