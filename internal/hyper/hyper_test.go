package hyper

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/nodeinfo"
)

func testConfig(name string) Config {
	return Config{
		Name:          name,
		VCPUs:         2,
		MemKiB:        1024 * 1024, // 1 GiB
		CPUUtil:       0.5,
		DirtyPagesSec: 1000,
		BlockIOPS:     200,
		NetPPS:        1000,
	}
}

func TestNewMachineValidation(t *testing.T) {
	bad := []Config{
		{},
		{Name: "m"},           // no vcpus
		{Name: "m", VCPUs: 1}, // no memory
		{Name: "m", VCPUs: 4, MaxVCPUs: 2, MemKiB: 1024},     // vcpus > max
		{Name: "m", VCPUs: 1, MemKiB: 2048, MaxMemKiB: 1024}, // mem > max
	}
	for i, cfg := range bad {
		if _, err := NewMachine(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	m, err := NewMachine(testConfig("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if m.State() != StateShutoff || m.ID() != -1 {
		t.Fatalf("fresh machine state=%v id=%d", m.State(), m.ID())
	}
	if m.UUID().IsNil() {
		t.Fatal("no UUID derived")
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	m, _ := NewMachine(testConfig("lc"))
	steps := []struct {
		op   func() error
		want State
	}{
		{m.Start, StateRunning},
		{m.Pause, StatePaused},
		{m.Resume, StateRunning},
		{m.Shutdown, StateShutoff},
		{m.Start, StateRunning},
		{m.Destroy, StateShutoff},
	}
	for i, s := range steps {
		if err := s.op(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if m.State() != s.want {
			t.Fatalf("step %d: state=%v want %v", i, m.State(), s.want)
		}
	}
	if m.Stats().StartCount != 2 {
		t.Fatalf("start count %d", m.Stats().StartCount)
	}
}

func TestLifecycleInvalidTransitions(t *testing.T) {
	m, _ := NewMachine(testConfig("bad"))
	if err := m.Pause(); err == nil {
		t.Fatal("pause from shutoff accepted")
	}
	if err := m.Resume(); err == nil {
		t.Fatal("resume from shutoff accepted")
	}
	if err := m.Shutdown(); err == nil {
		t.Fatal("shutdown from shutoff accepted")
	}
	if err := m.Destroy(); err == nil {
		t.Fatal("destroy from shutoff accepted")
	}
	if err := m.Reboot(); err == nil {
		t.Fatal("reboot from shutoff accepted")
	}
	must(t, m.Start())
	if err := m.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	must(t, m.Pause())
	if err := m.Pause(); err == nil {
		t.Fatal("double pause accepted")
	}
	if err := m.Shutdown(); err == nil {
		t.Fatal("shutdown from paused accepted")
	}
}

func TestCrashAndRecover(t *testing.T) {
	m, _ := NewMachine(testConfig("crash"))
	must(t, m.Start())
	must(t, m.Crash())
	if m.State() != StateCrashed {
		t.Fatalf("state %v", m.State())
	}
	// Crashed machines can be restarted directly or destroyed.
	must(t, m.Start())
	must(t, m.Crash())
	must(t, m.Destroy())
	if m.State() != StateShutoff {
		t.Fatalf("state %v", m.State())
	}
}

func TestRunForAccounting(t *testing.T) {
	m, _ := NewMachine(testConfig("acct"))
	must(t, m.Start())
	m.RunFor(2_000_000_000) // 2 modelled seconds
	st := m.Stats()
	if st.CPUTimeNs != uint64(2e9*0.5*2) {
		t.Fatalf("cpu time %d", st.CPUTimeNs)
	}
	if st.RdReqs+st.WrReqs != 400 {
		t.Fatalf("block reqs %d", st.RdReqs+st.WrReqs)
	}
	if st.RxPkts+st.TxPkts != 2000 {
		t.Fatalf("net pkts %d", st.RxPkts+st.TxPkts)
	}
	if st.DirtyPages == 0 || st.DirtyPages > 2000 {
		t.Fatalf("dirty pages %d", st.DirtyPages)
	}
	// Paused machines accumulate nothing.
	must(t, m.Pause())
	before := m.Stats().CPUTimeNs
	m.RunFor(1_000_000_000)
	if m.Stats().CPUTimeNs != before {
		t.Fatal("paused machine accumulated CPU time")
	}
}

func TestDirtyPageTracking(t *testing.T) {
	m, _ := NewMachine(testConfig("dirty"))
	must(t, m.Start())
	m.RunFor(1_000_000_000)
	n1 := m.DirtyPageCount()
	if n1 == 0 {
		t.Fatal("no dirty pages after run")
	}
	got := m.ResetDirty()
	if got != n1 {
		t.Fatalf("ResetDirty returned %d, count was %d", got, n1)
	}
	if m.DirtyPageCount() != 0 {
		t.Fatal("reset did not clear")
	}
	// Working-set skew means repeated dirtying converges well below the
	// uniform expectation.
	m.RunFor(10_000_000_000)
	if c := m.DirtyPageCount(); c >= 10000 {
		t.Fatalf("dirty set %d did not exhibit working-set reuse", c)
	}
	// Shutdown clears dirty state.
	must(t, m.Shutdown())
	if m.DirtyPageCount() != 0 {
		t.Fatal("shutdown left dirty pages")
	}
}

func TestBalloonAndVCPUs(t *testing.T) {
	cfg := testConfig("tune")
	cfg.MaxMemKiB = 2 * 1024 * 1024
	cfg.MaxVCPUs = 8
	m, _ := NewMachine(cfg)
	if err := m.SetMemory(512 * 1024); err != nil {
		t.Fatal(err)
	}
	if m.MemKiB() != 512*1024 {
		t.Fatalf("mem %d", m.MemKiB())
	}
	if err := m.SetMemory(0); err == nil {
		t.Fatal("zero balloon accepted")
	}
	if err := m.SetMemory(4 * 1024 * 1024); err == nil {
		t.Fatal("over-max balloon accepted")
	}
	if err := m.SetVCPUs(8); err != nil {
		t.Fatal(err)
	}
	if err := m.SetVCPUs(9); err == nil {
		t.Fatal("over-max vcpus accepted")
	}
	if err := m.SetVCPUs(0); err == nil {
		t.Fatal("zero vcpus accepted")
	}
}

func TestSimLatencyAccumulates(t *testing.T) {
	m, _ := NewMachine(testConfig("lat"))
	must(t, m.Start())
	boot := m.Stats().SimTimeNs
	if boot == 0 {
		t.Fatal("start cost not modelled")
	}
	must(t, m.Shutdown())
	if m.Stats().SimTimeNs <= boot {
		t.Fatal("shutdown cost not modelled")
	}
}

func TestHostAdmissionControl(t *testing.T) {
	node, _ := nodeinfo.NewNode("h1", nodeinfo.ProfileLaptop) // 16 GiB
	h := NewHost(node, 1.0)
	for i := 0; i < 4; i++ {
		cfg := testConfig(fmt.Sprintf("m%d", i))
		cfg.MemKiB = 4 * 1024 * 1024 // 4 GiB each
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.AddMachine(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := h.StartMachine(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatalf("start m%d: %v", i, err)
		}
	}
	extra, _ := NewMachine(func() Config {
		c := testConfig("extra")
		c.MemKiB = 4 * 1024 * 1024
		return c
	}())
	must(t, h.AddMachine(extra))
	if err := h.StartMachine("extra"); err == nil {
		t.Fatal("admission control failed: overcommitted start accepted")
	}
	if h.ActiveCount() != 4 {
		t.Fatalf("active %d", h.ActiveCount())
	}
	if h.CommittedMemKiB() != 16*1024*1024 {
		t.Fatalf("committed %d", h.CommittedMemKiB())
	}
}

func TestHostRegistry(t *testing.T) {
	node, _ := nodeinfo.NewNode("h2", nodeinfo.ProfileServer)
	h := NewHost(node, 0)
	m, _ := NewMachine(testConfig("a"))
	must(t, h.AddMachine(m))
	if err := h.AddMachine(m); err == nil {
		t.Fatal("duplicate add accepted")
	}
	dup, _ := NewMachine(testConfig("a"))
	if err := h.AddMachine(dup); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, ok := h.Machine("a"); !ok {
		t.Fatal("lookup by name failed")
	}
	if _, ok := h.MachineByUUID(m.UUID()); !ok {
		t.Fatal("lookup by uuid failed")
	}
	must(t, h.StartMachine("a"))
	if err := h.RemoveMachine("a"); err == nil {
		t.Fatal("removed an active machine")
	}
	must(t, m.Destroy())
	must(t, h.RemoveMachine("a"))
	if err := h.RemoveMachine("a"); err == nil {
		t.Fatal("double remove accepted")
	}
	if h.Count() != 0 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestHostMachinesSorted(t *testing.T) {
	node, _ := nodeinfo.NewNode("h3", nodeinfo.ProfileServer)
	h := NewHost(node, 0)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		m, _ := NewMachine(testConfig(n))
		must(t, h.AddMachine(m))
	}
	ms := h.Machines()
	if ms[0].Name() != "alpha" || ms[2].Name() != "zeta" {
		t.Fatalf("not sorted: %v %v %v", ms[0].Name(), ms[1].Name(), ms[2].Name())
	}
}

func TestMachineIDsMonotonic(t *testing.T) {
	a, _ := NewMachine(testConfig("ida"))
	b, _ := NewMachine(testConfig("idb"))
	must(t, a.Start())
	must(t, b.Start())
	if a.ID() <= 0 || b.ID() <= a.ID() {
		t.Fatalf("ids %d %d", a.ID(), b.ID())
	}
	must(t, a.Shutdown())
	if a.ID() != -1 {
		t.Fatalf("inactive machine keeps id %d", a.ID())
	}
}

func TestQuickStateMachineNeverInvalid(t *testing.T) {
	// Property: applying a random sequence of operations never yields an
	// unknown state and errors never change the state.
	ops := []func(*Machine) error{
		(*Machine).Start, (*Machine).Pause, (*Machine).Resume,
		(*Machine).Shutdown, (*Machine).Destroy, (*Machine).Crash,
		(*Machine).Reboot,
	}
	f := func(seq []uint8) bool {
		m, err := NewMachine(testConfig("q"))
		if err != nil {
			return false
		}
		for _, b := range seq {
			before := m.State()
			err := ops[int(b)%len(ops)](m)
			after := m.State()
			if _, known := stateNames[after]; !known {
				return false
			}
			if err != nil && before != after {
				return false // failed op must not move the FSM
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDirtyNeverExceedsTotalPages(t *testing.T) {
	f := func(steps uint8) bool {
		cfg := testConfig("qd")
		cfg.MemKiB = 8 * 1024 // tiny: 2048 pages
		cfg.DirtyPagesSec = 100000
		m, err := NewMachine(cfg)
		if err != nil {
			return false
		}
		if m.Start() != nil {
			return false
		}
		for i := 0; i < int(steps); i++ {
			m.RunFor(100_000_000)
			if m.DirtyPageCount() > m.TotalPages() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// TestMigrationThrottle: the vCPU throttle scales both CPU time and
// dirty production, clamps to [0, 0.99], and is cleared on teardown —
// but NOT by ResetDirty, which the migration loop calls every round.
func TestMigrationThrottle(t *testing.T) {
	cfg := testConfig("thr")
	cfg.DirtyPagesSec = 50_000
	free, _ := NewMachine(cfg)
	slow, _ := NewMachine(cfg)
	must(t, free.Start())
	must(t, slow.Start())
	slow.SetMigrationThrottle(0.8)
	if got := slow.MigrationThrottle(); got != 0.8 {
		t.Fatalf("throttle %v", got)
	}

	const step = 100_000_000 // 100 ms
	for i := 0; i < 5; i++ {
		free.RunFor(step)
		slow.RunFor(step)
	}
	if f, s := free.Stats().CPUTimeNs, slow.Stats().CPUTimeNs; s >= f {
		t.Fatalf("throttled cpu %d not below free-running %d", s, f)
	}
	if f, s := free.DirtyPageCount(), slow.DirtyPageCount(); s >= f {
		t.Fatalf("throttled dirty %d not below free-running %d", s, f)
	}

	slow.ResetDirty()
	if got := slow.MigrationThrottle(); got != 0.8 {
		t.Fatalf("ResetDirty cleared the throttle: %v", got)
	}

	slow.SetMigrationThrottle(5)
	if got := slow.MigrationThrottle(); got != 0.99 {
		t.Fatalf("clamp: %v", got)
	}
	slow.SetMigrationThrottle(-1)
	if got := slow.MigrationThrottle(); got != 0 {
		t.Fatalf("negative throttle: %v", got)
	}
	slow.SetMigrationThrottle(0.5)
	must(t, slow.Destroy())
	if got := slow.MigrationThrottle(); got != 0 {
		t.Fatalf("Destroy left throttle %v", got)
	}
}

// TestPostCopyPresence: after BeginPostCopy the machine tracks missing
// pages, accrues demand faults while running with partial memory, and
// leaves post-copy mode when the set drains.
func TestPostCopyPresence(t *testing.T) {
	cfg := testConfig("pc")
	cfg.MemKiB = 64 * 1024 // 16384 pages
	cfg.DirtyPagesSec = 100_000
	m, _ := NewMachine(cfg)

	// Post-copy needs a running destination guest.
	if err := m.BeginPostCopy(0); err == nil {
		t.Fatal("BeginPostCopy on a shut-off machine")
	}
	must(t, m.Start())
	must(t, m.BeginPostCopy(4096))
	if !m.InPostCopy() || m.MissingPages() != 16384-4096 {
		t.Fatalf("missing %d", m.MissingPages())
	}

	m.RunFor(500_000_000)
	if m.PostCopyFaults() == 0 {
		t.Fatal("no faults with 3/4 of memory missing")
	}

	m.MarkPresent(8000)
	if m.MissingPages() != 16384-4096-8000 {
		t.Fatalf("missing %d after marking", m.MissingPages())
	}
	m.MarkPresent(1 << 40) // over-marking clamps and completes
	if m.InPostCopy() || m.MissingPages() != 0 {
		t.Fatalf("post-copy not complete: missing %d", m.MissingPages())
	}

	// Complete machines fault no more.
	before := m.PostCopyFaults()
	m.RunFor(500_000_000)
	if m.PostCopyFaults() != before {
		t.Fatal("faults accrued after post-copy completed")
	}
}
