package events

import (
	"sync"
	"testing"
)

func TestSubscribeAndEmit(t *testing.T) {
	b := NewBus()
	c := NewCollector()
	id := b.Subscribe("", nil, c.Callback())
	if id <= 0 {
		t.Fatalf("id %d", id)
	}
	b.Emit(Event{Type: EventStarted, Domain: "d1"})
	b.Emit(Event{Type: EventStopped, Domain: "d2"})
	if c.Len() != 2 {
		t.Fatalf("collected %d", c.Len())
	}
	evs := c.Events()
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("sequence %d %d", evs[0].Seq, evs[1].Seq)
	}
}

func TestDomainFilter(t *testing.T) {
	b := NewBus()
	c := NewCollector()
	b.Subscribe("web01", nil, c.Callback())
	b.Emit(Event{Type: EventStarted, Domain: "web01"})
	b.Emit(Event{Type: EventStarted, Domain: "db01"})
	if c.Len() != 1 || c.Events()[0].Domain != "web01" {
		t.Fatalf("filter failed: %+v", c.Events())
	}
}

func TestTypeFilter(t *testing.T) {
	b := NewBus()
	c := NewCollector()
	b.Subscribe("", []Type{EventCrashed, EventStopped}, c.Callback())
	b.Emit(Event{Type: EventStarted, Domain: "d"})
	b.Emit(Event{Type: EventCrashed, Domain: "d"})
	b.Emit(Event{Type: EventResumed, Domain: "d"})
	b.Emit(Event{Type: EventStopped, Domain: "d"})
	if c.Len() != 2 {
		t.Fatalf("collected %d", c.Len())
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBus()
	c := NewCollector()
	id := b.Subscribe("", nil, c.Callback())
	b.Emit(Event{Type: EventStarted, Domain: "d"})
	b.Unsubscribe(id)
	b.Emit(Event{Type: EventStopped, Domain: "d"})
	if c.Len() != 1 {
		t.Fatalf("collected %d after unsubscribe", c.Len())
	}
	if b.SubscriberCount() != 0 {
		t.Fatal("subscriber still registered")
	}
	b.Unsubscribe(9999) // no-op
}

func TestNilCallbackRejected(t *testing.T) {
	b := NewBus()
	if id := b.Subscribe("", nil, nil); id != -1 {
		t.Fatalf("nil callback got id %d", id)
	}
}

func TestConcurrentEmitSequencing(t *testing.T) {
	b := NewBus()
	c := NewCollector()
	b.Subscribe("", nil, c.Callback())
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				b.Emit(Event{Type: EventStarted, Domain: "d"})
			}
		}()
	}
	wg.Wait()
	if c.Len() != 8*n {
		t.Fatalf("collected %d", c.Len())
	}
	seen := make(map[uint64]bool)
	for _, ev := range c.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate sequence %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
	for i := uint64(1); i <= 8*n; i++ {
		if !seen[i] {
			t.Fatalf("sequence gap at %d", i)
		}
	}
}

func TestTypeString(t *testing.T) {
	if EventStarted.String() != "started" || EventMigrated.String() != "migrated" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() != "event(99)" {
		t.Fatal("unknown type formatting")
	}
}
