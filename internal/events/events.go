// Package events implements the domain lifecycle event bus: drivers emit
// events when domains change state and management applications subscribe
// with callbacks, so monitoring stays non-intrusive — no agent in the
// guest, no polling required.
package events

import (
	"fmt"
	"sync"
)

// Type classifies a lifecycle event.
type Type int

// Lifecycle event types.
const (
	EventDefined Type = 1 + iota
	EventUndefined
	EventStarted
	EventSuspended
	EventResumed
	EventStopped
	EventShutdown
	EventCrashed
	EventMigrated
)

var typeNames = map[Type]string{
	EventDefined:   "defined",
	EventUndefined: "undefined",
	EventStarted:   "started",
	EventSuspended: "suspended",
	EventResumed:   "resumed",
	EventStopped:   "stopped",
	EventShutdown:  "shutdown",
	EventCrashed:   "crashed",
	EventMigrated:  "migrated",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is one domain lifecycle notification.
type Event struct {
	Type   Type
	Domain string
	UUID   string
	Detail string
	Seq    uint64
}

// Callback receives events; it runs on the emitting goroutine and must
// not block.
type Callback func(Event)

// Bus fans events out to subscribers. Subscriptions can be filtered to a
// single domain name or receive everything.
type Bus struct {
	mu     sync.Mutex
	nextID int
	seq    uint64
	subs   map[int]*subscription
}

type subscription struct {
	domain string // empty = all
	types  map[Type]bool
	cb     Callback
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[int]*subscription)}
}

// Subscribe registers cb for events. domain filters to one domain name
// ("" for all); types filters to a set of event types (nil for all).
// It returns a subscription id for Unsubscribe.
func (b *Bus) Subscribe(domain string, types []Type, cb Callback) int {
	if cb == nil {
		return -1
	}
	s := &subscription{domain: domain, cb: cb}
	if len(types) > 0 {
		s.types = make(map[Type]bool, len(types))
		for _, t := range types {
			s.types[t] = true
		}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.subs[b.nextID] = s
	return b.nextID
}

// Unsubscribe removes a subscription; unknown ids are ignored.
func (b *Bus) Unsubscribe(id int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.subs, id)
}

// SubscriberCount returns the number of live subscriptions.
func (b *Bus) SubscriberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Emit delivers an event to all matching subscribers synchronously. The
// sequence number is assigned here, so subscribers observe a gap-free,
// monotonically increasing order per bus.
func (b *Bus) Emit(ev Event) {
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	cbs := make([]Callback, 0, len(b.subs))
	for _, s := range b.subs {
		if s.domain != "" && s.domain != ev.Domain {
			continue
		}
		if s.types != nil && !s.types[ev.Type] {
			continue
		}
		cbs = append(cbs, s.cb)
	}
	b.mu.Unlock()
	for _, cb := range cbs {
		cb(ev)
	}
}

// Collector is a convenience subscriber buffering events for inspection,
// used by tests and by the monitoring example.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Callback returns the collector's Callback for Subscribe.
func (c *Collector) Callback() Callback {
	return func(ev Event) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.events = append(c.events, ev)
	}
}

// Events returns a copy of everything collected so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Len returns the number of collected events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}
