// Package nodeinfo models the physical host a hypervisor runs on: CPU
// topology, memory, NUMA layout. Real deployments read this from the
// kernel; the simulation substrate synthesises hosts from profiles so that
// experiments are reproducible on any machine.
package nodeinfo

import (
	"fmt"

	"repro/internal/uuid"
	"repro/internal/xmlspec"
)

// Node describes one host machine.
type Node struct {
	UUID      uuid.UUID
	Hostname  string
	Arch      string
	CPUModel  string
	CPUVendor string
	MHz       int
	Sockets   int
	Cores     int // per socket
	Threads   int // per core
	NUMANodes int
	MemoryKiB uint64
}

// Profile names a canned host configuration.
type Profile string

// Canned host profiles used across examples and benchmarks.
const (
	ProfileLaptop Profile = "laptop"
	ProfileServer Profile = "server"
	ProfileBig    Profile = "big"
)

// NewNode synthesises a host from a profile. The UUID is derived from the
// hostname so repeated construction is stable.
func NewNode(hostname string, p Profile) (*Node, error) {
	n := &Node{
		UUID:      uuid.FromName("node:" + hostname),
		Hostname:  hostname,
		Arch:      "x86_64",
		CPUVendor: "SimVendor",
	}
	switch p {
	case ProfileLaptop:
		n.CPUModel, n.MHz = "sim-mobile", 2400
		n.Sockets, n.Cores, n.Threads, n.NUMANodes = 1, 4, 2, 1
		n.MemoryKiB = 16 * 1024 * 1024
	case ProfileServer:
		n.CPUModel, n.MHz = "sim-epyc", 2800
		n.Sockets, n.Cores, n.Threads, n.NUMANodes = 2, 16, 2, 2
		n.MemoryKiB = 256 * 1024 * 1024
	case ProfileBig:
		n.CPUModel, n.MHz = "sim-epyc-max", 3200
		n.Sockets, n.Cores, n.Threads, n.NUMANodes = 4, 32, 2, 4
		n.MemoryKiB = 2048 * 1024 * 1024
	default:
		return nil, fmt.Errorf("nodeinfo: unknown profile %q", p)
	}
	return n, nil
}

// TotalCPUs returns the number of logical processors.
func (n *Node) TotalCPUs() int { return n.Sockets * n.Cores * n.Threads }

// Capabilities renders the node as the host section plus the guest stanzas
// the supplied domain types support.
func (n *Node) Capabilities(guestTypes map[string]string) *xmlspec.Capabilities {
	c := &xmlspec.Capabilities{
		Host: xmlspec.CapHost{
			UUID: n.UUID.String(),
			CPU: xmlspec.HostCPU{
				Arch:   n.Arch,
				Model:  n.CPUModel,
				Vendor: n.CPUVendor,
				Topology: &xmlspec.Topology{
					Sockets: n.Sockets, Cores: n.Cores, Threads: n.Threads,
				},
			},
		},
	}
	for domType, osType := range guestTypes {
		c.Guests = append(c.Guests, xmlspec.Guest{
			OSType: osType,
			Arch: xmlspec.GuestArch{
				Name:     n.Arch,
				WordSize: 64,
				Machines: []string{"pc", "q35"},
				Domains:  []xmlspec.GuestDomain{{Type: domType}},
			},
		})
	}
	return c
}

// Info is the summary structure returned by the NodeGetInfo API.
type Info struct {
	Model     string
	MemoryKiB uint64
	CPUs      int
	MHz       int
	NUMANodes int
	Sockets   int
	Cores     int
	Threads   int
}

// Info summarises the node.
func (n *Node) Info() Info {
	return Info{
		Model:     n.CPUModel,
		MemoryKiB: n.MemoryKiB,
		CPUs:      n.TotalCPUs(),
		MHz:       n.MHz,
		NUMANodes: n.NUMANodes,
		Sockets:   n.Sockets,
		Cores:     n.Cores,
		Threads:   n.Threads,
	}
}
