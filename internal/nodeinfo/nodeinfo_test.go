package nodeinfo

import "testing"

func TestProfiles(t *testing.T) {
	for _, p := range []Profile{ProfileLaptop, ProfileServer, ProfileBig} {
		n, err := NewNode("host1", p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if n.TotalCPUs() <= 0 || n.MemoryKiB == 0 {
			t.Fatalf("%s: degenerate node %+v", p, n)
		}
	}
	if _, err := NewNode("h", Profile("toaster")); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestNodeUUIDStable(t *testing.T) {
	a, _ := NewNode("hostA", ProfileServer)
	b, _ := NewNode("hostA", ProfileServer)
	c, _ := NewNode("hostB", ProfileServer)
	if a.UUID != b.UUID {
		t.Fatal("same hostname must give same UUID")
	}
	if a.UUID == c.UUID {
		t.Fatal("different hostnames collided")
	}
}

func TestTotalCPUs(t *testing.T) {
	n, _ := NewNode("h", ProfileServer)
	if got, want := n.TotalCPUs(), 2*16*2; got != want {
		t.Fatalf("TotalCPUs=%d want %d", got, want)
	}
}

func TestCapabilities(t *testing.T) {
	n, _ := NewNode("h", ProfileLaptop)
	caps := n.Capabilities(map[string]string{"qsim": "hvm", "csim": "exe"})
	if len(caps.Guests) != 2 {
		t.Fatalf("guests: %d", len(caps.Guests))
	}
	if !caps.SupportsGuest("hvm", "x86_64", "qsim") {
		t.Fatal("qsim guest missing")
	}
	if !caps.SupportsGuest("exe", "x86_64", "csim") {
		t.Fatal("csim guest missing")
	}
	if caps.Host.CPU.Topology.Sockets != 1 {
		t.Fatalf("topology %+v", caps.Host.CPU.Topology)
	}
	out, err := caps.Marshal()
	if err != nil || len(out) == 0 {
		t.Fatalf("marshal: %v", err)
	}
}

func TestInfoSummary(t *testing.T) {
	n, _ := NewNode("h", ProfileBig)
	info := n.Info()
	if info.CPUs != n.TotalCPUs() || info.MemoryKiB != n.MemoryKiB || info.Sockets != 4 {
		t.Fatalf("%+v", info)
	}
}
