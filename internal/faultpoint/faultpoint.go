// Package faultpoint is the deterministic fault-injection registry: a
// set of named sites sprinkled through the stack (RPC framing, driver-op
// boundaries, daemon dispatch) that a test or a debug configuration can
// arm with failure specs. Disarmed — the default — every site check is a
// single atomic load, so production paths pay nothing. Armed, each
// evaluation consumes one roll of a seeded PRNG, making a chaos run
// reproducible from its seed: the same sequence of sites observes the
// same sequence of verdicts.
//
// Sites are evaluated by name ("rpc.recv", "driver.op.define",
// "daemon.kill"); specs match a site exactly or by "prefix.*" wildcard.
// What a fired spec *means* is defined by the site: the RPC layer
// interprets ModeDrop as a lost frame, the driver base interprets
// ModeError as a failed operation, the daemon interprets ModeKill as its
// own abrupt death. ModeDelay sleeps inside Eval, so every site gains
// latency injection for free.
package faultpoint

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode says what happens when a point fires. The interpretation is
// site-specific; sites ignore modes that make no sense for them.
type Mode int

// Fault modes.
const (
	ModeError   Mode = iota // the operation fails with an injected error
	ModeDelay               // the operation is delayed by Spec.Delay
	ModeDrop                // the frame/result is silently discarded
	ModeCorrupt             // the payload is bit-flipped before use
	ModeKill                // the daemon dies abruptly at this point
)

var modeNames = map[Mode]string{
	ModeError:   "error",
	ModeDelay:   "delay",
	ModeDrop:    "drop",
	ModeCorrupt: "corrupt",
	ModeKill:    "kill",
}

var modesByName = map[string]Mode{
	"error":   ModeError,
	"delay":   ModeDelay,
	"drop":    ModeDrop,
	"corrupt": ModeCorrupt,
	"kill":    ModeKill,
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Spec is the failure behaviour armed at a point.
type Spec struct {
	Mode  Mode
	Prob  float64       // firing probability per evaluation, (0, 1]
	Delay time.Duration // sleep applied when a ModeDelay spec fires
	Err   error         // ModeError override; nil uses the site's default
	After int           // skip the first After evaluations of this point
	Limit int           // stop firing after Limit fires; 0 = unlimited
}

// point tracks one armed spec and its evaluation counters.
type point struct {
	spec  Spec
	evals uint64
	fires uint64
}

// PointStatus is the introspection row for one armed point.
type PointStatus struct {
	Name  string
	Mode  Mode
	Prob  float64
	Evals uint64
	Fires uint64
}

// Registry holds the armed points. The zero value is not usable; call
// New. The package-level Default registry is what the built-in sites
// consult.
type Registry struct {
	armed atomic.Bool

	// observer holds a func(site string, mode Mode) called after every
	// fire, outside the registry lock. Telemetry hooks in here without
	// faultpoint importing anything.
	observer atomic.Value

	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*point
}

// New creates a disarmed registry.
func New() *Registry {
	return &Registry{points: make(map[string]*point)}
}

// Default is the process-wide registry every built-in site consults.
// Tests arm it with a fixed seed and disarm it when done.
var Default = New()

// Arm enables the registry with a deterministic seed. Arming resets the
// PRNG but keeps armed points, so a test may Set points first and Arm
// last (or vice versa).
func (r *Registry) Arm(seed int64) {
	r.mu.Lock()
	r.rng = rand.New(rand.NewSource(seed)) //nolint:gosec // determinism is the point
	r.mu.Unlock()
	r.armed.Store(true)
}

// Disarm disables the registry and clears every point.
func (r *Registry) Disarm() {
	r.armed.Store(false)
	r.mu.Lock()
	r.points = make(map[string]*point)
	r.rng = nil
	r.mu.Unlock()
}

// Armed reports whether the registry is live.
func (r *Registry) Armed() bool { return r.armed.Load() }

// SetObserver installs a callback invoked after each fired point with
// the site name and the fired mode. It runs outside the registry lock on
// the evaluating goroutine, so it must be cheap and non-blocking. A nil
// fn removes the observer. Survives Disarm.
func (r *Registry) SetObserver(fn func(site string, mode Mode)) {
	r.observer.Store(observerBox{fn})
}

// observerBox wraps the callback so atomic.Value accepts a nil fn (the
// stored concrete type must stay consistent).
type observerBox struct{ fn func(site string, mode Mode) }

// notify invokes the observer, if any, for a fired point.
func (r *Registry) notify(site string, mode Mode) {
	if box, ok := r.observer.Load().(observerBox); ok && box.fn != nil {
		box.fn(site, mode)
	}
}

// Set arms (or replaces) a point. Name may end in ".*" to match every
// site sharing the prefix.
func (r *Registry) Set(name string, s Spec) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points[name] = &point{spec: s}
}

// Clear removes one point.
func (r *Registry) Clear(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.points, name)
}

// Fires reports how many times the named point has fired.
func (r *Registry) Fires(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.points[name]; ok {
		return p.fires
	}
	return 0
}

// Status lists every armed point with its counters (diagnostics).
func (r *Registry) Status() []PointStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointStatus, 0, len(r.points))
	for name, p := range r.points {
		out = append(out, PointStatus{
			Name: name, Mode: p.spec.Mode, Prob: p.spec.Prob,
			Evals: p.evals, Fires: p.fires,
		})
	}
	return out
}

// lookupLocked finds the point governing a site: exact match wins, then
// the longest matching "prefix.*" wildcard.
func (r *Registry) lookupLocked(site string) *point {
	if p, ok := r.points[site]; ok {
		return p
	}
	var best *point
	bestLen := -1
	for name, p := range r.points {
		if !strings.HasSuffix(name, "*") {
			continue
		}
		prefix := name[:len(name)-1]
		if strings.HasPrefix(site, prefix) && len(prefix) > bestLen {
			best, bestLen = p, len(prefix)
		}
	}
	return best
}

// Eval rolls the dice for a site. It returns the armed Spec and true
// when the point fires; ModeDelay sleeps before returning so callers
// need no special handling for latency injection. Disarmed registries
// return immediately (one atomic load).
func (r *Registry) Eval(site string) (Spec, bool) {
	if !r.armed.Load() {
		return Spec{}, false
	}
	r.mu.Lock()
	p := r.lookupLocked(site)
	if p == nil || r.rng == nil {
		r.mu.Unlock()
		return Spec{}, false
	}
	p.evals++
	if p.spec.After > 0 && p.evals <= uint64(p.spec.After) {
		r.mu.Unlock()
		return Spec{}, false
	}
	if p.spec.Limit > 0 && p.fires >= uint64(p.spec.Limit) {
		r.mu.Unlock()
		return Spec{}, false
	}
	if r.rng.Float64() >= p.spec.Prob {
		r.mu.Unlock()
		return Spec{}, false
	}
	p.fires++
	spec := p.spec
	r.mu.Unlock()
	r.notify(site, spec.Mode)
	if spec.Mode == ModeDelay && spec.Delay > 0 {
		time.Sleep(spec.Delay)
	}
	return spec, true
}

// ParseSpecs reads the govirtd.conf fault_injection grammar: a
// comma-separated list of "site:mode:prob[:delay_ms]" entries, e.g.
//
//	rpc.recv:drop:0.05,driver.op.*:delay:0.1:20,daemon.kill:kill:0.001
//
// Prob must be in (0, 1]; delay_ms only applies to the delay mode.
func ParseSpecs(text string) (map[string]Spec, error) {
	out := make(map[string]Spec)
	for _, entry := range strings.Split(text, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 4 {
			return nil, fmt.Errorf("faultpoint: entry %q: want site:mode:prob[:delay_ms]", entry)
		}
		site := strings.TrimSpace(parts[0])
		if site == "" {
			return nil, fmt.Errorf("faultpoint: entry %q: empty site", entry)
		}
		mode, ok := modesByName[strings.TrimSpace(parts[1])]
		if !ok {
			return nil, fmt.Errorf("faultpoint: entry %q: unknown mode %q", entry, parts[1])
		}
		prob, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil || prob <= 0 || prob > 1 {
			return nil, fmt.Errorf("faultpoint: entry %q: prob must be in (0, 1]", entry)
		}
		spec := Spec{Mode: mode, Prob: prob}
		if len(parts) == 4 {
			ms, err := strconv.Atoi(strings.TrimSpace(parts[3]))
			if err != nil || ms < 0 {
				return nil, fmt.Errorf("faultpoint: entry %q: bad delay_ms %q", entry, parts[3])
			}
			spec.Delay = time.Duration(ms) * time.Millisecond
		}
		out[site] = spec
	}
	return out, nil
}
