package faultpoint

import (
	"testing"
	"time"
)

func TestDisarmedIsFree(t *testing.T) {
	r := New()
	r.Set("rpc.send", Spec{Mode: ModeDrop, Prob: 1})
	if _, ok := r.Eval("rpc.send"); ok {
		t.Fatal("disarmed registry fired")
	}
}

func TestDeterministicSequence(t *testing.T) {
	roll := func() []bool {
		r := New()
		r.Set("site", Spec{Mode: ModeError, Prob: 0.5})
		r.Arm(42)
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = r.Eval("site")
		}
		return out
	}
	a, b := roll(), roll()
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("roll %d differs between identically seeded registries", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times; expected a mix", fires, len(a))
	}
}

func TestWildcardAndPrecedence(t *testing.T) {
	r := New()
	r.Arm(1)
	r.Set("driver.op.*", Spec{Mode: ModeDelay, Prob: 1})
	r.Set("driver.op.define", Spec{Mode: ModeError, Prob: 1})
	if s, ok := r.Eval("driver.op.define"); !ok || s.Mode != ModeError {
		t.Fatalf("exact match should win: %v %v", s, ok)
	}
	if s, ok := r.Eval("driver.op.create"); !ok || s.Mode != ModeDelay {
		t.Fatalf("wildcard should catch unmatched sites: %v %v", s, ok)
	}
	if _, ok := r.Eval("rpc.send"); ok {
		t.Fatal("unrelated site fired")
	}
}

func TestAfterAndLimit(t *testing.T) {
	r := New()
	r.Arm(7)
	r.Set("site", Spec{Mode: ModeError, Prob: 1, After: 2, Limit: 3})
	var fired int
	for i := 0; i < 10; i++ {
		if _, ok := r.Eval("site"); ok {
			fired++
			if i < 2 {
				t.Fatalf("fired during After window at eval %d", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("Limit 3 but fired %d times", fired)
	}
	if got := r.Fires("site"); got != 3 {
		t.Fatalf("Fires() = %d, want 3", got)
	}
}

func TestDelayModeSleeps(t *testing.T) {
	r := New()
	r.Arm(1)
	r.Set("slow", Spec{Mode: ModeDelay, Prob: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	if _, ok := r.Eval("slow"); !ok {
		t.Fatal("prob 1 did not fire")
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay mode slept only %v", d)
	}
}

func TestDisarmClearsPoints(t *testing.T) {
	r := New()
	r.Arm(1)
	r.Set("site", Spec{Mode: ModeError, Prob: 1})
	r.Disarm()
	r.Arm(1)
	if _, ok := r.Eval("site"); ok {
		t.Fatal("point survived Disarm")
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("rpc.recv:drop:0.05, driver.op.*:delay:0.1:20,daemon.kill:kill:0.001")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(specs))
	}
	if s := specs["driver.op.*"]; s.Mode != ModeDelay || s.Delay != 20*time.Millisecond {
		t.Fatalf("delay spec parsed wrong: %+v", s)
	}
	if s := specs["rpc.recv"]; s.Mode != ModeDrop || s.Prob != 0.05 {
		t.Fatalf("drop spec parsed wrong: %+v", s)
	}
	for _, bad := range []string{
		"rpc.recv",                // missing fields
		"rpc.recv:explode:0.5",    // unknown mode
		"rpc.recv:drop:1.5",       // prob out of range
		"rpc.recv:drop:0",         // prob zero
		":drop:0.5",               // empty site
		"rpc.recv:delay:0.5:-3",   // negative delay
		"rpc.recv:drop:0.5:1:2:3", // too many fields
	} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Fatalf("ParseSpecs(%q) accepted bad input", bad)
		}
	}
	if specs, err := ParseSpecs(""); err != nil || len(specs) != 0 {
		t.Fatalf("empty input should parse to nothing: %v %v", specs, err)
	}
}
