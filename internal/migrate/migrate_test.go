package migrate

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/drivers/qemu"
	"repro/internal/events"
	"repro/internal/logging"
	"repro/internal/uri"
)

// pair opens two independent qemu-driver connections (two "hosts").
func pair(t *testing.T) (*core.Connect, *core.Connect) {
	t.Helper()
	log := logging.NewQuiet(logging.Error)
	open := func() *core.Connect {
		drv, err := qemu.New(&uri.URI{Driver: "qsim", Path: "/system"}, log)
		if err != nil {
			t.Fatal(err)
		}
		return core.OpenWith(&uri.URI{Driver: "qsim", Path: "/system"}, drv)
	}
	return open(), open()
}

func defineRunning(t *testing.T, c *core.Connect, name string, memMiB int, dirtyRate uint64) *core.Domain {
	t.Helper()
	xml := fmt.Sprintf(`
<domain type='qsim'>
  <name>%s</name>
  <description>cpu_util=0.5 dirty_pages_sec=%d</description>
  <memory unit='MiB'>%d</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, name, dirtyRate, memMiB)
	dom, err := c.CreateDomainXML(xml)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestMigrateHappyPath(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "mig1", 1024, 2000)

	res, err := Migrate(dom, dst, core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("expected convergence: %+v", res)
	}
	if res.Iterations < 1 || res.TotalTimeNs == 0 || res.TransferredKiB < 1024*1024 {
		t.Fatalf("%+v", res)
	}
	if res.DowntimeNs > 300*1_000_000 {
		t.Fatalf("downtime %v ns exceeds target", res.DowntimeNs)
	}
	// Source is off but still defined; destination runs.
	st, err := dom.State()
	if err != nil || st != core.DomainShutoff {
		t.Fatalf("source state %v %v", st, err)
	}
	dstDom, err := dst.LookupDomain("mig1")
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := dstDom.State(); st != core.DomainRunning {
		t.Fatalf("destination state %v", st)
	}
}

func TestMigrateUndefineSource(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "mig2", 512, 500)
	if _, err := Migrate(dom, dst, core.MigrateOptions{UndefineSource: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.LookupDomain("mig2"); !core.IsCode(err, core.ErrNoDomain) {
		t.Fatalf("source still defined: %v", err)
	}
}

func TestMigrateRequiresRunningDomain(t *testing.T) {
	src, dst := pair(t)
	dom, err := src.DefineDomain(`<domain type='qsim'><name>off</name><memory unit='MiB'>128</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Migrate(dom, dst, core.MigrateOptions{}); !core.IsCode(err, core.ErrOperationInvalid) {
		t.Fatalf("migrating inactive domain: %v", err)
	}
}

func TestMigrateNameClashAborts(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "clash", 256, 500)
	defineRunning(t, dst, "clash", 256, 500)
	if _, err := Migrate(dom, dst, core.MigrateOptions{}); !core.IsCode(err, core.ErrMigrate) {
		t.Fatalf("name clash: %v", err)
	}
	// Source is untouched by the failed prepare.
	if st, _ := dom.State(); st != core.DomainRunning {
		t.Fatalf("source state %v after aborted migration", st)
	}
}

func TestMigrateHighDirtyRateForcesStopAndCopy(t *testing.T) {
	src, dst := pair(t)
	// Dirty rate far above what a slow link can drain.
	dom := defineRunning(t, src, "stubborn", 2048, 2_000_000)
	res, err := Migrate(dom, dst, core.MigrateOptions{
		BandwidthMBps: 50, MaxDowntimeMs: 50, MaxIterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("unconvergeable migration reported converged: %+v", res)
	}
	if res.Iterations != 5 {
		t.Fatalf("iterations %d, want cap 5", res.Iterations)
	}
	if res.DowntimeNs <= 50*1_000_000 {
		t.Fatalf("forced stop-and-copy downtime %d suspiciously low", res.DowntimeNs)
	}
}

func TestMigrateEventsEmitted(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "ev", 256, 500)
	srcCol, dstCol := events.NewCollector(), events.NewCollector()
	src.Driver().(core.EventSource).EventBus().Subscribe("", []events.Type{events.EventMigrated}, srcCol.Callback())
	dst.Driver().(core.EventSource).EventBus().Subscribe("", []events.Type{events.EventMigrated}, dstCol.Callback())
	if _, err := Migrate(dom, dst, core.MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	if srcCol.Len() != 1 || dstCol.Len() != 1 {
		t.Fatalf("migration events: src=%d dst=%d", srcCol.Len(), dstCol.Len())
	}
	if srcCol.Events()[0].Detail != "source" || dstCol.Events()[0].Detail != "destination" {
		t.Fatalf("event details wrong")
	}
}

func TestEstimateMonotonicInMemory(t *testing.T) {
	opts := core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 300}
	small, err := Estimate(512*1024, 1000, opts)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Estimate(8*1024*1024, 1000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if large.TotalTimeNs <= small.TotalTimeNs {
		t.Fatalf("total time not monotonic in memory: %v vs %v", small.TotalTimeNs, large.TotalTimeNs)
	}
}

func TestEstimateDirtyRateDrivesIterations(t *testing.T) {
	opts := core.MigrateOptions{BandwidthMBps: 500, MaxDowntimeMs: 100}
	calm, err := Estimate(2*1024*1024, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := Estimate(2*1024*1024, 500_000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if busy.Iterations <= calm.Iterations {
		t.Fatalf("iterations: calm=%d busy=%d", calm.Iterations, busy.Iterations)
	}
	if !calm.Converged {
		t.Fatal("calm workload should converge")
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(0, 0, core.MigrateOptions{}); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("zero memory: %v", err)
	}
}

func TestMigrateDefaults(t *testing.T) {
	opts := core.MigrateOptions{}
	applyDefaults(&opts)
	if opts.BandwidthMBps != 1000 || opts.MaxDowntimeMs != 300 || opts.MaxIterations != 30 {
		t.Fatalf("defaults %+v", opts)
	}
}
