package migrate

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/qemu"
	"repro/internal/drivers/remote"
	"repro/internal/events"
	"repro/internal/faultpoint"
	"repro/internal/hyper"
	"repro/internal/logging"
	"repro/internal/uri"
)

// pair opens two independent qemu-driver connections (two "hosts").
func pair(t *testing.T) (*core.Connect, *core.Connect) {
	t.Helper()
	log := logging.NewQuiet(logging.Error)
	open := func() *core.Connect {
		drv, err := qemu.New(&uri.URI{Driver: "qsim", Path: "/system"}, log)
		if err != nil {
			t.Fatal(err)
		}
		return core.OpenWith(&uri.URI{Driver: "qsim", Path: "/system"}, drv)
	}
	return open(), open()
}

func defineRunning(t *testing.T, c *core.Connect, name string, memMiB int, dirtyRate uint64) *core.Domain {
	t.Helper()
	xml := fmt.Sprintf(`
<domain type='qsim'>
  <name>%s</name>
  <description>cpu_util=0.5 dirty_pages_sec=%d</description>
  <memory unit='MiB'>%d</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, name, dirtyRate, memMiB)
	dom, err := c.CreateDomainXML(xml)
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

func TestMigrateHappyPath(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "mig1", 1024, 2000)

	res, err := Migrate(dom, dst, core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("expected convergence: %+v", res)
	}
	if res.Iterations < 1 || res.TotalTimeNs == 0 || res.TransferredKiB < 1024*1024 {
		t.Fatalf("%+v", res)
	}
	if res.DowntimeNs > 300*1_000_000 {
		t.Fatalf("downtime %v ns exceeds target", res.DowntimeNs)
	}
	// Source is off but still defined; destination runs.
	st, err := dom.State()
	if err != nil || st != core.DomainShutoff {
		t.Fatalf("source state %v %v", st, err)
	}
	dstDom, err := dst.LookupDomain("mig1")
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := dstDom.State(); st != core.DomainRunning {
		t.Fatalf("destination state %v", st)
	}
}

func TestMigrateUndefineSource(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "mig2", 512, 500)
	if _, err := Migrate(dom, dst, core.MigrateOptions{UndefineSource: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := src.LookupDomain("mig2"); !core.IsCode(err, core.ErrNoDomain) {
		t.Fatalf("source still defined: %v", err)
	}
}

func TestMigrateRequiresRunningDomain(t *testing.T) {
	src, dst := pair(t)
	dom, err := src.DefineDomain(`<domain type='qsim'><name>off</name><memory unit='MiB'>128</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Migrate(dom, dst, core.MigrateOptions{}); !core.IsCode(err, core.ErrOperationInvalid) {
		t.Fatalf("migrating inactive domain: %v", err)
	}
}

func TestMigrateNameClashAborts(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "clash", 256, 500)
	defineRunning(t, dst, "clash", 256, 500)
	if _, err := Migrate(dom, dst, core.MigrateOptions{}); !core.IsCode(err, core.ErrMigrate) {
		t.Fatalf("name clash: %v", err)
	}
	// Source is untouched by the failed prepare.
	if st, _ := dom.State(); st != core.DomainRunning {
		t.Fatalf("source state %v after aborted migration", st)
	}
}

func TestMigrateHighDirtyRateForcesStopAndCopy(t *testing.T) {
	src, dst := pair(t)
	// Dirty rate far above what a slow link can drain.
	dom := defineRunning(t, src, "stubborn", 2048, 2_000_000)
	res, err := Migrate(dom, dst, core.MigrateOptions{
		BandwidthMBps: 50, MaxDowntimeMs: 50, MaxIterations: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("unconvergeable migration reported converged: %+v", res)
	}
	if res.Iterations != 5 {
		t.Fatalf("iterations %d, want cap 5", res.Iterations)
	}
	if res.DowntimeNs <= 50*1_000_000 {
		t.Fatalf("forced stop-and-copy downtime %d suspiciously low", res.DowntimeNs)
	}
}

func TestMigrateEventsEmitted(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "ev", 256, 500)
	srcCol, dstCol := events.NewCollector(), events.NewCollector()
	src.Driver().(core.EventSource).EventBus().Subscribe("", []events.Type{events.EventMigrated}, srcCol.Callback())
	dst.Driver().(core.EventSource).EventBus().Subscribe("", []events.Type{events.EventMigrated}, dstCol.Callback())
	if _, err := Migrate(dom, dst, core.MigrateOptions{}); err != nil {
		t.Fatal(err)
	}
	if srcCol.Len() != 1 || dstCol.Len() != 1 {
		t.Fatalf("migration events: src=%d dst=%d", srcCol.Len(), dstCol.Len())
	}
	if srcCol.Events()[0].Detail != "source" || dstCol.Events()[0].Detail != "destination" {
		t.Fatalf("event details wrong")
	}
}

func TestEstimateMonotonicInMemory(t *testing.T) {
	opts := core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 300}
	small, err := Estimate(Workload{MemKiB: 512 * 1024, DirtyPagesSec: 1000}, opts)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Estimate(Workload{MemKiB: 8 * 1024 * 1024, DirtyPagesSec: 1000}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if large.TotalTimeNs <= small.TotalTimeNs {
		t.Fatalf("total time not monotonic in memory: %v vs %v", small.TotalTimeNs, large.TotalTimeNs)
	}
}

func TestEstimateDirtyRateDrivesIterations(t *testing.T) {
	opts := core.MigrateOptions{BandwidthMBps: 500, MaxDowntimeMs: 100}
	calm, err := Estimate(Workload{MemKiB: 2 * 1024 * 1024, DirtyPagesSec: 100}, opts)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := Estimate(Workload{MemKiB: 2 * 1024 * 1024, DirtyPagesSec: 500_000}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if busy.Iterations <= calm.Iterations {
		t.Fatalf("iterations: calm=%d busy=%d", calm.Iterations, busy.Iterations)
	}
	if !calm.Converged {
		t.Fatal("calm workload should converge")
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, err := Estimate(Workload{}, core.MigrateOptions{}); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("zero memory: %v", err)
	}
}

func TestMigrateDefaults(t *testing.T) {
	opts := core.MigrateOptions{}
	applyDefaults(&opts)
	if opts.BandwidthMBps != 1000 || opts.MaxDowntimeMs != 300 || opts.MaxIterations != 30 {
		t.Fatalf("defaults %+v", opts)
	}
	if opts.ParallelStreams != 1 {
		t.Fatalf("stream default %d, want 1", opts.ParallelStreams)
	}
	opts.ParallelStreams = 10_000
	applyDefaults(&opts)
	if opts.ParallelStreams != maxStreams {
		t.Fatalf("stream cap %d, want %d", opts.ParallelStreams, maxStreams)
	}
}

// TestPreCopyEdgeCases pins the boundary behaviour of the iterative
// copy: instant convergence, forced stop-and-copy at the round cap, and
// the post-copy downtime bound that holds regardless of dirty rate.
func TestPreCopyEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		w     Workload
		opts  core.MigrateOptions
		check func(t *testing.T, r Result)
	}{
		{
			name: "zero dirty rate converges in one round",
			w:    Workload{MemKiB: 1024 * 1024, DirtyPagesSec: 0},
			opts: core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 300},
			check: func(t *testing.T, r Result) {
				if !r.Converged || r.Iterations != 1 {
					t.Fatalf("want 1-round convergence: %+v", r)
				}
				// Nothing left to copy: downtime is the bare switch-over.
				if r.DowntimeNs != switchoverOverheadNs {
					t.Fatalf("downtime %d, want %d", r.DowntimeNs, switchoverOverheadNs)
				}
			},
		},
		{
			name: "non-convergence stops at MaxIterations",
			w:    Workload{MemKiB: 2 * 1024 * 1024, DirtyPagesSec: 2_000_000},
			opts: core.MigrateOptions{BandwidthMBps: 50, MaxDowntimeMs: 50, MaxIterations: 7},
			check: func(t *testing.T, r Result) {
				if r.Converged || r.Iterations != 7 {
					t.Fatalf("want forced stop at 7 rounds: %+v", r)
				}
				if r.DowntimeNs <= 50*1_000_000 {
					t.Fatalf("forced stop-and-copy downtime %d suspiciously low", r.DowntimeNs)
				}
			},
		},
		{
			name: "post-copy bounds downtime at any dirty rate",
			w:    Workload{MemKiB: 2 * 1024 * 1024, DirtyPagesSec: 2_000_000},
			opts: core.MigrateOptions{BandwidthMBps: 50, MaxDowntimeMs: 300, PostCopy: true},
			check: func(t *testing.T, r Result) {
				if !r.Converged || r.Mode != ModePostCopy {
					t.Fatalf("post-copy should always converge: %+v", r)
				}
				if r.DowntimeNs > 300*1_000_000 {
					t.Fatalf("post-copy downtime %d exceeds target", r.DowntimeNs)
				}
				if r.PostCopyFaults == 0 {
					t.Fatalf("hot post-copy guest faulted no pages: %+v", r)
				}
			},
		},
		{
			name: "generous downtime budget converges immediately",
			w:    Workload{MemKiB: 512 * 1024, DirtyPagesSec: 10_000},
			opts: core.MigrateOptions{BandwidthMBps: 1000, MaxDowntimeMs: 10_000},
			check: func(t *testing.T, r Result) {
				if !r.Converged || r.Iterations != 1 {
					t.Fatalf("10s budget should converge in one round: %+v", r)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Estimate(tc.w, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, res)
		})
	}
}

// TestThrottleLadderMonotonic pins the auto-convergence escalation
// sequence: strictly increasing, bounded below the machine clamp.
func TestThrottleLadderMonotonic(t *testing.T) {
	prev := 0.0
	for i, v := range throttleLadder {
		if v <= prev {
			t.Fatalf("ladder step %d: %v not above %v", i, v, prev)
		}
		if v > 0.95 {
			t.Fatalf("ladder step %d: %v throttles too hard", i, v)
		}
		prev = v
	}
}

// TestMigrateParallelStreamsMonotonic is acceptance criterion (a):
// at a fixed dirty rate, total migration time improves monotonically
// with the stream count, and the per-stream accounting shows the rounds
// actually split.
func TestMigrateParallelStreamsMonotonic(t *testing.T) {
	w := Workload{MemKiB: 4 * 1024 * 1024, DirtyPagesSec: 20_000}
	prev := uint64(0)
	for _, streams := range []int{1, 2, 4, 8} {
		res, err := Estimate(w, core.MigrateOptions{
			BandwidthMBps: 1000, MaxDowntimeMs: 300, ParallelStreams: streams,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("streams=%d did not converge: %+v", streams, res)
		}
		if res.Streams != streams || len(res.PerStreamKiB) != streams {
			t.Fatalf("streams=%d accounting: %+v", streams, res)
		}
		for i, kib := range res.PerStreamKiB {
			if kib == 0 {
				t.Fatalf("streams=%d: stream %d moved nothing", streams, i)
			}
		}
		if prev != 0 && res.TotalTimeNs >= prev {
			t.Fatalf("streams=%d total %d not below previous %d", streams, res.TotalTimeNs, prev)
		}
		prev = res.TotalTimeNs
	}
}

// TestMigrateAutoConvergeConverges is acceptance criterion (b): a dirty
// rate that can never converge on the raw link converges once
// auto-convergence throttles the source vCPUs.
func TestMigrateAutoConvergeConverges(t *testing.T) {
	w := Workload{MemKiB: 512 * 1024, DirtyPagesSec: 30_000}
	opts := core.MigrateOptions{BandwidthMBps: 100, MaxDowntimeMs: 300}

	plain, err := Estimate(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Converged {
		t.Fatalf("workload converged without throttling; pick a hotter one: %+v", plain)
	}

	opts.AutoConverge = true
	ac, err := Estimate(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !ac.Converged {
		t.Fatalf("auto-convergence failed to converge: %+v", ac)
	}
	if ac.ThrottleSteps == 0 || ac.MaxThrottle == 0 {
		t.Fatalf("converged without throttling?: %+v", ac)
	}
	// Throttling costs guest CPU — the trade must be visible.
	if ac.GuestCPUNs >= plain.GuestCPUNs {
		t.Fatalf("throttled guest CPU %d not below unthrottled %d", ac.GuestCPUNs, plain.GuestCPUNs)
	}
}

// machineOf digs the substrate machine out of a local connection.
func machineOf(t *testing.T, c *core.Connect, name string) *hyper.Machine {
	t.Helper()
	ma, ok := c.Driver().(core.MachineAccess)
	if !ok {
		t.Fatalf("driver has no machine access")
	}
	m, err := ma.Machine(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMigratePostCopyLocal runs the post-copy flow end to end between
// two local connections and checks the destination machine's
// page-presence model drains to zero.
func TestMigratePostCopyLocal(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "pc1", 512, 200_000)

	res, err := Migrate(dom, dst, core.MigrateOptions{
		BandwidthMBps: 1000, MaxDowntimeMs: 300, ParallelStreams: 4, PostCopy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModePostCopy || !res.Converged {
		t.Fatalf("%+v", res)
	}
	if res.DowntimeNs > 300*1_000_000 {
		t.Fatalf("post-copy downtime %d above target", res.DowntimeNs)
	}
	if res.PostCopyFaults == 0 {
		t.Fatalf("hot guest faulted no pages: %+v", res)
	}
	dstDom, err := dst.LookupDomain("pc1")
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := dstDom.State(); st != core.DomainRunning {
		t.Fatalf("destination state %v", st)
	}
	m := machineOf(t, dst, "pc1")
	if m.InPostCopy() || m.MissingPages() != 0 {
		t.Fatalf("destination still post-copy: missing=%d", m.MissingPages())
	}
	if st, _ := dom.State(); st != core.DomainShutoff {
		t.Fatalf("source not torn down")
	}
}

// TestMigrateContextAbort: cancelling the context aborts between copy
// rounds; the source keeps running, the destination definition is
// removed, and no throttle is left behind.
func TestMigrateContextAbort(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "abort1", 1024, 50_000)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // aborted before the first round
	_, err := MigrateContext(ctx, dom, dst, core.MigrateOptions{AutoConverge: true})
	if !core.IsCode(err, core.ErrMigrate) {
		t.Fatalf("cancelled migration: %v", err)
	}
	if st, _ := dom.State(); st != core.DomainRunning {
		t.Fatalf("source state %v after abort", st)
	}
	if _, err := dst.LookupDomain("abort1"); !core.IsCode(err, core.ErrNoDomain) {
		t.Fatalf("destination kept the definition: %v", err)
	}
	if th := machineOf(t, src, "abort1").MigrationThrottle(); th != 0 {
		t.Fatalf("throttle %v left on aborted source", th)
	}
}

// TestChaosMigrateAbort is the chaos acceptance test: a seeded fault on
// the migrate.stream site kills a transfer stream mid-flight, in both
// pre-copy and post-copy mode, and in neither case is a domain lost on
// either end.
func TestChaosMigrateAbort(t *testing.T) {
	faultpoint.Default.Arm(42)
	defer faultpoint.Default.Disarm()

	t.Run("precopy", func(t *testing.T) {
		src, dst := pair(t)
		dom := defineRunning(t, src, "chaos1", 512, 30_000)
		// The 6th chunk send dies, deterministically: Prob 1 fires on
		// the first eval after the After skip regardless of stream
		// interleaving.
		faultpoint.Default.Set(FaultSiteStream, faultpoint.Spec{
			Mode: faultpoint.ModeError, Prob: 1, After: 5,
		})
		defer faultpoint.Default.Clear(FaultSiteStream)

		_, err := Migrate(dom, dst, core.MigrateOptions{
			BandwidthMBps: 100, ParallelStreams: 2, AutoConverge: true,
		})
		if !core.IsCode(err, core.ErrMigrate) {
			t.Fatalf("stream death: %v", err)
		}
		if st, _ := dom.State(); st != core.DomainRunning {
			t.Fatalf("source state %v after stream death", st)
		}
		if _, err := dst.LookupDomain("chaos1"); !core.IsCode(err, core.ErrNoDomain) {
			t.Fatalf("destination kept the definition: %v", err)
		}
		if th := machineOf(t, src, "chaos1").MigrationThrottle(); th != 0 {
			t.Fatalf("throttle %v left after abort", th)
		}
	})

	t.Run("postcopy", func(t *testing.T) {
		src, dst := pair(t)
		dom := defineRunning(t, src, "chaos2", 512, 100_000)
		// Survive round zero (8 chunks with 2 streams), die during the
		// pull phase — the typed post-copy failure mode.
		faultpoint.Default.Set(FaultSiteStream, faultpoint.Spec{
			Mode: faultpoint.ModeError, Prob: 1, After: 10,
		})
		defer faultpoint.Default.Clear(FaultSiteStream)

		_, err := Migrate(dom, dst, core.MigrateOptions{
			BandwidthMBps: 1000, ParallelStreams: 2, PostCopy: true,
		})
		if !core.IsCode(err, core.ErrPostCopy) {
			t.Fatalf("pull stream death: %v", err)
		}
		// Source resumed, destination undone: no guest lost.
		if st, _ := dom.State(); st != core.DomainRunning {
			t.Fatalf("source state %v after pull death", st)
		}
		if _, err := dst.LookupDomain("chaos2"); !core.IsCode(err, core.ErrNoDomain) {
			t.Fatalf("destination kept the definition: %v", err)
		}
	})
}

// TestMigrateDropRetransmits: injected packet loss on migrate.stream
// retransmits chunks instead of failing, and the retransmitted pages
// show up in the accounting.
func TestMigrateDropRetransmits(t *testing.T) {
	faultpoint.Default.Arm(7)
	defer faultpoint.Default.Disarm()
	faultpoint.Default.Set(FaultSiteStream, faultpoint.Spec{
		Mode: faultpoint.ModeDrop, Prob: 0.5,
	})
	defer faultpoint.Default.Clear(FaultSiteStream)

	src, dst := pair(t)
	dom := defineRunning(t, src, "lossy", 512, 5_000)
	res, err := Migrate(dom, dst, core.MigrateOptions{ParallelStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("lossy link did not converge: %+v", res)
	}
	if res.RetransmitKiB == 0 {
		t.Fatalf("50%% loss produced no retransmits: %+v", res)
	}
}

// TestMigrateSinkReceives drives the destination's MigrationSink
// directly through a migration and checks the inbound accounting.
func TestMigrateSinkReceives(t *testing.T) {
	src, dst := pair(t)
	dom := defineRunning(t, src, "sink1", 512, 100_000)
	res, err := Migrate(dom, dst, core.MigrateOptions{ParallelStreams: 2, PostCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	sink, ok := dst.Driver().(interface {
		InboundMigrationPages(string) (uint64, uint64, bool)
	})
	if !ok {
		t.Fatalf("destination driver exposes no inbound accounting")
	}
	// finish(true) retired the transfer state.
	if _, _, live := sink.InboundMigrationPages("sink1"); live {
		t.Fatalf("inbound migration state leaked past finish")
	}
	if res.PostCopyFaults == 0 {
		t.Fatalf("no priority pulls recorded: %+v", res)
	}
}

// TestMigrateURIDefaults: unset options inherit the destination URI's
// migrate_* parameters; explicit options win.
func TestMigrateURIDefaults(t *testing.T) {
	u := &uri.URI{Driver: "qsim", Path: "/system", Params: map[string]string{
		"migrate_streams":       "4",
		"migrate_auto_converge": "on",
		"migrate_postcopy":      "true",
	}}
	log := logging.NewQuiet(logging.Error)
	drv, err := qemu.New(u, log)
	if err != nil {
		t.Fatal(err)
	}
	dst := core.OpenWith(u, drv)

	opts := core.MigrateOptions{}
	applyDefaults(&opts)
	applyURIDefaults(dst, &opts)
	if opts.ParallelStreams != 4 || !opts.AutoConverge || !opts.PostCopy {
		t.Fatalf("URI defaults not applied: %+v", opts)
	}

	// Explicit settings beat the URI.
	opts = core.MigrateOptions{ParallelStreams: 8}
	applyDefaults(&opts)
	applyURIDefaults(dst, &opts)
	if opts.ParallelStreams != 8 {
		t.Fatalf("explicit streams overridden: %+v", opts)
	}

	// And the real call path honours them end to end.
	src, _ := pair(t)
	dom := defineRunning(t, src, "uriopt", 256, 10_000)
	res, err := Migrate(dom, dst, core.MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Streams != 4 || res.Mode != ModePostCopy {
		t.Fatalf("URI-tuned migration ran with %+v", res)
	}
}

// TestMigrateWireSink pushes a migration at a daemon over the in-process
// memnet transport: the page chunks cross the real pooled RPC frame
// path, and the destination daemon ends up running the domain.
func TestMigrateWireSink(t *testing.T) {
	registerWireDrivers()
	log := logging.NewQuiet(logging.Error)
	d := daemon.New(log)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	if err := srv.ListenMem("migwire", daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	dst, err := core.Open("qsim+mem://migwire/system")
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	src, _ := pair(t)
	dom := defineRunning(t, src, "wiremig", 512, 50_000)
	res, err := Migrate(dom, dst, core.MigrateOptions{ParallelStreams: 4, AutoConverge: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("wire migration did not converge: %+v", res)
	}
	dstDom, err := dst.LookupDomain("wiremig")
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := dstDom.State(); st != core.DomainRunning {
		t.Fatalf("destination state %v", st)
	}
}

var wireDriversOnce sync.Once

func registerWireDrivers() {
	wireDriversOnce.Do(func() {
		qemu.Register(logging.NewQuiet(logging.Error))
		remote.Register()
	})
}
