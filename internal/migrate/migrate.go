// Package migrate implements live migration between two management
// connections as a three-mechanism pipeline:
//
//   - Iterative pre-copy: the domain's memory is copied while it keeps
//     running, dirty pages are re-sent round by round, and when the
//     remaining set fits the downtime target the guest is paused,
//     switched over and resumed on the destination. Every round is
//     split across ParallelStreams concurrent transfer streams; each
//     stream pays a fixed protocol overhead, so aggregate throughput
//     rises monotonically with the stream count but never exceeds the
//     link (see effBandwidthKiBps).
//
//   - Auto-convergence: when the dirty rate outruns effective bandwidth
//     for consecutive rounds, the source machine's vCPUs are throttled
//     up a ladder (20% → 95%), shrinking dirty production until the
//     rounds converge. The throttle is restored on switch-over or abort.
//
//   - Post-copy: after one pre-copy round execution switches to the
//     destination, bounding downtime by the switch-over handshake
//     regardless of dirty rate; missing pages are prefetched in the
//     background and demand faults ride a priority stream. A pull-stream
//     death surfaces as the typed core.ErrPostCopy; because the source
//     image stays authoritative until the final commit, the engine
//     recovers it by resuming the source and undoing the destination,
//     so no guest is ever lost on either end.
//
// The transfer itself is simulated: round times derive from the
// configured bandwidth and the source machine's dirty-page model (see
// DESIGN.md, Substitutions), so total time, downtime and convergence
// behaviour — the properties the evaluation reports — are faithfully
// reproduced without moving real memory. When the destination supports
// core.MigrationSink, page chunks additionally cross the real RPC frame
// path (pipelined per stream, faultpoint site "migrate.stream"), so the
// wire layer carries genuine migration load in tests and benchmarks.
//
// Both ends may be local or remote connections. A local source exposes
// its substrate machine directly; for a daemon-managed source, whose
// machine lives on the far side of the wire, the engine reconstructs an
// equivalent workload model from the domain's XML definition (memory
// size plus the same description hints the daemon-side machine was
// built from), so fleet controllers can drive migrations between two
// daemons through the uniform API alone.
package migrate

import (
	"context"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/drivers/common"
	"repro/internal/events"
	"repro/internal/hyper"
	"repro/internal/xmlspec"
)

// switchoverOverheadNs models the fixed cost of the stop-and-copy
// handshake (pause, final state push, resume on the destination).
const switchoverOverheadNs = 20_000_000 // 20 ms

// streamOverhead is the fixed per-transfer protocol overhead in stream
// units: framing, acknowledgement round trips and serialization stalls
// that a single stream cannot hide. Effective aggregate bandwidth is
// link · N/(N + streamOverhead) — strictly increasing in N, asymptotic
// to the link rate, so adding streams always helps but contention is
// modeled honestly.
const streamOverhead = 0.5

// pullRTTNs is the modelled round-trip latency a post-copy demand-fault
// batch pays on the priority stream.
const pullRTTNs = 500_000 // 0.5 ms

// maxStreams caps ParallelStreams; beyond this the bandwidth model's
// returns are within noise anyway.
const maxStreams = 64

// autoConvergeRounds is K: consecutive hot rounds before the throttle
// escalates one ladder step.
const autoConvergeRounds = 2

// autoConvergeHotRatio marks a round as hot when the remaining set
// shrank to no less than this fraction of the previous round's — at
// that ratio, convergence needs geometrically many more rounds than the
// iteration budget allows, so dirty production must come down. Judging
// shrinkage rather than the raw dirty rate keeps the detector stable
// when the dirty-page model saturates near the whole address space.
const autoConvergeHotRatio = 0.7

// throttleLadder is the auto-convergence escalation sequence applied to
// the source vCPUs. Strictly increasing; TestThrottleLadderMonotonic
// pins the property.
var throttleLadder = []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// Migration modes reported in Result.Mode.
const (
	ModePreCopy  = "precopy"
	ModePostCopy = "postcopy"
)

// Result reports the outcome of a migration.
type Result struct {
	Iterations     int
	Converged      bool   // remaining set fit the downtime target
	Mode           string // ModePreCopy or ModePostCopy
	Streams        int    // parallel streams used
	TotalTimeNs    uint64
	DowntimeNs     uint64
	TransferredKiB uint64

	// PerStreamKiB is the bandwidth accounting per background stream
	// (retransmitted pages included), demonstrating how the rounds were
	// split. RetransmitKiB counts pages resent after an injected drop
	// on the migrate.stream faultpoint site.
	PerStreamKiB  []uint64
	RetransmitKiB uint64

	// Auto-convergence accounting: ladder escalations applied and the
	// peak vCPU throttle reached.
	ThrottleSteps int
	MaxThrottle   float64

	// Post-copy accounting: demand-fault pulls served after switch-over.
	PostCopyFaults uint64

	// GuestCPUNs is the modelled guest CPU time consumed during the
	// migration window — the cost auto-convergence trades for
	// convergence, visible in parameter sweeps over CPUUtil and VCPUs.
	GuestCPUNs uint64
}

// TotalTimeMs returns the total migration time in milliseconds.
func (r Result) TotalTimeMs() float64 { return float64(r.TotalTimeNs) / 1e6 }

// DowntimeMs returns the guest-visible downtime in milliseconds.
func (r Result) DowntimeMs() float64 { return float64(r.DowntimeNs) / 1e6 }

// effBandwidthKiBps is the aggregate effective bandwidth of streams
// parallel streams over a link of linkMBps.
func effBandwidthKiBps(linkMBps uint64, streams int) float64 {
	n := float64(streams)
	return float64(linkMBps) * 1024 * n / (n + streamOverhead)
}

// Migrate moves the named running domain from src to dst. Both ends may
// be local or remote: a local source is migrated against its substrate
// machine; a daemon-managed source is migrated against a model machine
// reconstructed from its XML definition (see the package comment).
func Migrate(src *core.Domain, dst *core.Connect, opts core.MigrateOptions) (Result, error) {
	return MigrateContext(context.Background(), src, dst, opts)
}

// MigrateContext is Migrate with cancellation: when ctx is cancelled
// between copy rounds the migration aborts cleanly — the source resumes
// (it is never left paused), the destination definition is removed, and
// any auto-convergence throttle is restored.
func MigrateContext(ctx context.Context, src *core.Domain, dst *core.Connect, opts core.MigrateOptions) (Result, error) {
	applyDefaults(&opts)
	applyURIDefaults(dst, &opts)
	migStarted.Inc()
	res, err := migrateDomain(ctx, src, dst, opts)
	if err != nil {
		migFailed.Inc()
		return res, err
	}
	if res.Converged {
		migConverged.Inc()
	}
	if res.Mode == ModePostCopy {
		migPostCopy.Inc()
	}
	migDowntime.Observe(time.Duration(res.DowntimeNs))
	migTotalTime.Observe(time.Duration(res.TotalTimeNs))
	return res, nil
}

func migrateDomain(ctx context.Context, src *core.Domain, dst *core.Connect, opts core.MigrateOptions) (Result, error) {
	info, err := src.Info()
	if err != nil {
		return Result{}, err
	}
	if info.State != core.DomainRunning {
		return Result{}, core.Errorf(core.ErrOperationInvalid,
			"domain %q is %s; live migration needs a running domain", src.Name(), info.State)
	}
	xmlDesc, err := src.XML()
	if err != nil {
		return Result{}, err
	}
	var machine *hyper.Machine
	if ma, ok := src.Connect().Driver().(core.MachineAccess); ok {
		machine, err = ma.Machine(src.Name())
	} else {
		machine, err = modelMachine(xmlDesc)
	}
	if err != nil {
		return Result{}, err
	}

	// Prepare phase: the definition lands on the destination first, so a
	// name clash or invalid config aborts before the guest is touched.
	dstDom, err := dst.DefineDomain(xmlDesc)
	if err != nil {
		return Result{}, core.Errorf(core.ErrMigrate,
			"prepare on destination: %v", err)
	}
	tr, err := newTransport(dst, dstDom.Name(), machine.TotalPages(), opts.ParallelStreams)
	if err != nil {
		_ = dstDom.Undefine()
		return Result{}, core.Errorf(core.ErrMigrate,
			"prepare transfer on destination: %v", err)
	}

	e := newEngine(machine, tr, opts)
	// Whatever happens, the source never stays throttled.
	defer machine.SetMigrationThrottle(0)

	cpu0 := machine.Stats().CPUTimeNs
	var migErr error
	if opts.PostCopy {
		migErr = e.runPostCopy(ctx, src, dst, dstDom)
	} else {
		migErr = e.runPreCopy(ctx, src, dstDom)
	}
	e.res.GuestCPUNs = machine.Stats().CPUTimeNs - cpu0
	if migErr != nil {
		return e.res, migErr
	}

	if opts.UndefineSource {
		if err := src.Undefine(); err != nil {
			return e.res, core.Errorf(core.ErrMigrate, "undefine source: %v", err)
		}
	}
	emitMigrated(src.Connect(), src.Name(), src.UUID(), "source")
	emitMigrated(dst, dstDom.Name(), dstDom.UUID(), "destination")
	return e.res, nil
}

// runPreCopy is the classic flow: iterate until convergence (or the
// round cap), then pause–switch–resume.
func (e *engine) runPreCopy(ctx context.Context, src *core.Domain, dstDom *core.Domain) error {
	if _, err := e.precopyRounds(ctx); err != nil {
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return err
	}
	if err := ctx.Err(); err != nil {
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return core.Errorf(core.ErrMigrate, "aborted before switch-over: %v", err)
	}

	// Switch-over: pause the source, start the destination, tear the
	// source down. Failure after the pause resumes the source so the
	// guest never ends up lost on both ends.
	e.m.SetMigrationThrottle(0)
	if err := src.Suspend(); err != nil {
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return core.Errorf(core.ErrMigrate, "pause source: %v", err)
	}
	if err := dstDom.Create(); err != nil {
		_ = src.Resume()
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return core.Errorf(core.ErrMigrate, "start on destination: %v", err)
	}
	if err := src.Destroy(); err != nil {
		return core.Errorf(core.ErrMigrate,
			"destination is running but source teardown failed: %v", err)
	}
	_ = e.tr.finish(true)
	return nil
}

// runPostCopy runs one pre-copy round, switches execution to the
// destination within the bounded switch-over window, then pulls the
// missing pages while the guest already runs over there.
func (e *engine) runPostCopy(ctx context.Context, src *core.Domain, dst *core.Connect, dstDom *core.Domain) error {
	e.res.Mode = ModePostCopy
	remainingKiB, err := e.precopyRounds(ctx)
	if err != nil {
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return err
	}
	if err := ctx.Err(); err != nil {
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return core.Errorf(core.ErrMigrate, "aborted before switch-over: %v", err)
	}

	// Switch-over: only vCPU and device state moves inside the blackout
	// window, so downtime is the handshake cost — bounded regardless of
	// how fast the guest dirties memory.
	e.m.SetMigrationThrottle(0)
	if err := src.Suspend(); err != nil {
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return core.Errorf(core.ErrMigrate, "pause source: %v", err)
	}
	if err := dstDom.Create(); err != nil {
		_ = src.Resume()
		_ = e.tr.finish(false)
		_ = dstDom.Undefine()
		return core.Errorf(core.ErrMigrate, "start on destination: %v", err)
	}
	e.res.DowntimeNs = switchoverOverheadNs
	e.res.TotalTimeNs += switchoverOverheadNs
	e.res.Converged = true

	missingPages := remainingKiB / hyper.PageSizeKiB
	var dstM *hyper.Machine
	if ma, ok := dst.Driver().(core.MachineAccess); ok {
		if m, err := ma.Machine(dstDom.Name()); err == nil {
			dstM = m
			_ = m.BeginPostCopy(m.TotalPages() - missingPages)
		}
	}

	if err := e.postcopyPull(ctx, missingPages, dstM); err != nil {
		// The pull stream died mid-copy. The source image stays
		// authoritative until the final commit, so recovery is to
		// resume the source and undo the destination — the typed
		// failure costs the migration, never the guest.
		_ = dstDom.Destroy()
		_ = dstDom.Undefine()
		_ = src.Resume()
		_ = e.tr.finish(false)
		return err
	}
	if err := src.Destroy(); err != nil {
		return core.Errorf(core.ErrMigrate,
			"destination is running but source teardown failed: %v", err)
	}
	_ = e.tr.finish(true)
	return nil
}

// engine holds one migration's moving parts.
type engine struct {
	m       *hyper.Machine
	tr      transport
	opts    core.MigrateOptions
	streams int
	res     Result
}

func newEngine(m *hyper.Machine, tr transport, opts core.MigrateOptions) *engine {
	return &engine{
		m:       m,
		tr:      tr,
		opts:    opts,
		streams: opts.ParallelStreams,
		res: Result{
			Mode:         ModePreCopy,
			Streams:      opts.ParallelStreams,
			PerStreamKiB: make([]uint64, opts.ParallelStreams),
		},
	}
}

// precopyRounds runs the iterative copy against the machine's dirty
// model. In post-copy mode it returns after the first round; otherwise
// it loops to convergence or the round cap and accounts the final
// stop-and-copy. Returns the remaining (not yet copied) KiB.
func (e *engine) precopyRounds(ctx context.Context) (uint64, error) {
	effBW := effBandwidthKiBps(e.opts.BandwidthMBps, e.streams)
	perStreamBW := effBW / float64(e.streams)

	// Round zero transfers the full memory image.
	e.m.ResetDirty()
	remainingKiB := e.m.MemKiB()
	hotRounds := 0
	for {
		if err := ctx.Err(); err != nil {
			return remainingKiB, core.Errorf(core.ErrMigrate, "aborted: %v", err)
		}
		e.res.Iterations++
		roundPages := (remainingKiB + hyper.PageSizeKiB - 1) / hyper.PageSizeKiB
		perStream, err := sendRound(e.tr, e.res.Iterations, e.streams, roundPages)
		if err != nil {
			return remainingKiB, core.Errorf(core.ErrMigrate,
				"round %d: %v", e.res.Iterations, err)
		}
		var slowest, sent uint64
		for i, p := range perStream {
			e.res.PerStreamKiB[i] += p * hyper.PageSizeKiB
			sent += p
			if p > slowest {
				slowest = p
			}
		}
		if extra := sent - roundPages; extra > 0 {
			e.res.RetransmitKiB += extra * hyper.PageSizeKiB
		}
		// The round lasts as long as its slowest stream needs.
		roundNs := uint64(float64(slowest*hyper.PageSizeKiB) / perStreamBW * 1e9)
		e.res.TotalTimeNs += roundNs
		e.res.TransferredKiB += sent * hyper.PageSizeKiB

		// While the round was on the wire, the guest kept dirtying.
		e.m.RunFor(roundNs)
		dirtyPages := e.m.ResetDirty()
		newRemainingKiB := dirtyPages * hyper.PageSizeKiB

		if e.opts.PostCopy {
			// One round, then the switch-over bounds the downtime.
			return newRemainingKiB, nil
		}

		finalNs := uint64(float64(newRemainingKiB)/effBW*1e9) + switchoverOverheadNs
		if finalNs <= uint64(e.opts.MaxDowntimeMs)*1_000_000 {
			e.res.Converged = true
			e.res.DowntimeNs = finalNs
			remainingKiB = newRemainingKiB
			break
		}
		if e.res.Iterations >= e.opts.MaxIterations {
			// Forced stop-and-copy: the guest pays the full remaining
			// transfer as downtime.
			e.res.DowntimeNs = finalNs
			remainingKiB = newRemainingKiB
			break
		}
		if e.opts.AutoConverge && remainingKiB > 0 {
			if float64(newRemainingKiB) >= autoConvergeHotRatio*float64(remainingKiB) {
				hotRounds++
			} else {
				hotRounds = 0
			}
			if hotRounds >= autoConvergeRounds {
				hotRounds = 0
				e.escalateThrottle()
			}
		}
		remainingKiB = newRemainingKiB
	}
	e.res.TotalTimeNs += e.res.DowntimeNs
	e.res.TransferredKiB += remainingKiB
	return remainingKiB, nil
}

// escalateThrottle advances the source vCPU throttle one ladder step.
func (e *engine) escalateThrottle() {
	if e.res.ThrottleSteps >= len(throttleLadder) {
		return
	}
	t := throttleLadder[e.res.ThrottleSteps]
	e.m.SetMigrationThrottle(t)
	e.res.ThrottleSteps++
	e.res.MaxThrottle = t
	migThrottles.Inc()
}

// postcopyTicks bounds how many prefetch rounds drain the missing set.
const postcopyTicks = 12

// postcopyPull drains the missing page set while the guest runs on the
// destination: background prefetch across the parallel streams, demand
// faults served on the priority stream. dstM, when the destination is a
// local driver, is the machine whose page-presence model the arriving
// chunks advance (over a remote connection the daemon-side sink does
// the same on its end).
func (e *engine) postcopyPull(ctx context.Context, missingPages uint64, dstM *hyper.Machine) error {
	effBW := effBandwidthKiBps(e.opts.BandwidthMBps, e.streams)
	perStreamBW := effBW / float64(e.streams)
	dirtyRate := float64(e.m.Config().DirtyPagesSec)
	totalPages := e.m.TotalPages()
	remaining := missingPages
	for tick := 0; remaining > 0; tick++ {
		if err := ctx.Err(); err != nil {
			return core.Errorf(core.ErrPostCopy,
				"aborted with %d pages missing: %v", remaining, err)
		}
		left := postcopyTicks - tick
		if left < 1 {
			left = 1
		}
		prefetch := (remaining + uint64(left) - 1) / uint64(left)

		perStream, err := sendRound(e.tr, e.res.Iterations+tick+1, e.streams, prefetch)
		if err != nil {
			return core.Errorf(core.ErrPostCopy,
				"pull stream died with %d of %d pages missing: %v",
				remaining, missingPages, err)
		}
		var slowest, sent uint64
		for i, p := range perStream {
			e.res.PerStreamKiB[i] += p * hyper.PageSizeKiB
			sent += p
			if p > slowest {
				slowest = p
			}
		}
		if extra := sent - prefetch; extra > 0 {
			e.res.RetransmitKiB += extra * hyper.PageSizeKiB
		}
		tickNs := uint64(float64(slowest*hyper.PageSizeKiB) / perStreamBW * 1e9)

		// Guest accesses landing in the still-missing set fault and are
		// served immediately over the priority stream.
		afterPrefetch := remaining - prefetch
		faults := uint64(dirtyRate * (float64(tickNs) / 1e9) * float64(afterPrefetch) / float64(totalPages))
		if faults > afterPrefetch {
			faults = afterPrefetch
		}
		if faults > 0 {
			if _, err := sendChunk(e.tr, &core.MigrateChunk{
				Stream: 0, Round: e.res.Iterations + tick + 1,
				Pages: faults, Priority: true,
			}); err != nil {
				return core.Errorf(core.ErrPostCopy,
					"fault-pull stream died with %d of %d pages missing: %v",
					remaining, missingPages, err)
			}
			tickNs += pullRTTNs
			e.res.PostCopyFaults += faults
		}

		e.res.TotalTimeNs += tickNs
		e.res.TransferredKiB += sent * hyper.PageSizeKiB
		remaining = afterPrefetch - faults
		if dstM != nil {
			dstM.RunFor(tickNs)
		}
	}
	if dstM != nil && dstM.InPostCopy() {
		// Belt and braces: whatever rounding left unmarked is resident
		// now that the transfer accounting reached zero.
		dstM.MarkPresent(dstM.MissingPages())
	}
	return nil
}

// modelMachine reconstructs the source's workload model from its XML
// definition. A remote source cannot expose its substrate machine
// across the wire, but the definition carries the memory size and the
// same description hints (cpu_util, dirty_pages_sec) the daemon-side
// machine was built from, so the precopy rounds computed here match the
// ones the source host itself would compute.
func modelMachine(xmlDesc string) (*hyper.Machine, error) {
	def, err := xmlspec.ParseDomain([]byte(xmlDesc))
	if err != nil {
		return nil, core.Errorf(core.ErrXML, "migrate: source definition: %v", err)
	}
	cfg, err := common.DefToConfig(def)
	if err != nil {
		return nil, core.Errorf(core.ErrXML, "migrate: source definition: %v", err)
	}
	m, err := hyper.NewMachine(cfg)
	if err != nil {
		return nil, core.Errorf(core.ErrInternal, "migrate: model machine: %v", err)
	}
	if err := m.Start(); err != nil {
		return nil, core.Errorf(core.ErrInternal, "migrate: model machine: %v", err)
	}
	return m, nil
}

func applyDefaults(opts *core.MigrateOptions) {
	if opts.BandwidthMBps == 0 {
		opts.BandwidthMBps = 1000
	}
	if opts.MaxDowntimeMs == 0 {
		opts.MaxDowntimeMs = 300
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 30
	}
	if opts.ParallelStreams < 1 {
		opts.ParallelStreams = 1
	}
	if opts.ParallelStreams > maxStreams {
		opts.ParallelStreams = maxStreams
	}
}

// applyURIDefaults fills unset migration options from the destination
// connection's URI parameters (migrate_streams, migrate_auto_converge,
// migrate_postcopy), so a fleet can tune the pipeline per host URI
// without touching call sites. Explicit options win over URI defaults.
func applyURIDefaults(dst *core.Connect, opts *core.MigrateOptions) {
	u := dst.URI()
	if u == nil {
		return
	}
	if opts.ParallelStreams <= 1 {
		if v, ok := u.Param("migrate_streams"); ok {
			if n, err := strconv.Atoi(v); err == nil && n >= 1 && n <= maxStreams {
				opts.ParallelStreams = n
			}
		}
	}
	if !opts.AutoConverge {
		if v, ok := u.Param("migrate_auto_converge"); ok {
			if b, ok := parseBoolParam(v); ok {
				opts.AutoConverge = b
			}
		}
	}
	if !opts.PostCopy {
		if v, ok := u.Param("migrate_postcopy"); ok {
			if b, ok := parseBoolParam(v); ok {
				opts.PostCopy = b
			}
		}
	}
}

// parseBoolParam accepts the strconv spellings plus the on/off and
// yes/no forms common in connection URIs and config files.
func parseBoolParam(v string) (value, ok bool) {
	switch strings.ToLower(v) {
	case "on", "yes", "y":
		return true, true
	case "off", "no", "n":
		return false, true
	}
	b, err := strconv.ParseBool(v)
	return b, err == nil
}

// emitMigrated publishes the migration event when the connection's
// driver delivers events.
func emitMigrated(c *core.Connect, name, uuid, detail string) {
	if src, ok := c.Driver().(core.EventSource); ok {
		src.EventBus().Emit(events.Event{
			Type: events.EventMigrated, Domain: name, UUID: uuid, Detail: detail,
		})
	}
}

// Workload describes the guest whose migration Estimate models.
// CPUUtil and VCPUs default to 0.5 and 1 when zero, preserving the old
// fixed-workload behaviour while letting sweeps model real guests —
// auto-convergence throttling makes both visible in GuestCPUNs.
type Workload struct {
	MemKiB        uint64
	DirtyPagesSec uint64
	CPUUtil       float64
	VCPUs         int
}

// Estimate runs the full migration pipeline model without touching
// domain state: given a workload and options it predicts iterations,
// total time, downtime, throttle escalations and post-copy faults. The
// benchmark harness uses it for parameter sweeps; no telemetry counters
// move and nothing crosses a connection.
func Estimate(w Workload, opts core.MigrateOptions) (Result, error) {
	applyDefaults(&opts)
	if w.CPUUtil == 0 {
		w.CPUUtil = 0.5
	}
	if w.VCPUs == 0 {
		w.VCPUs = 1
	}
	m, err := hyper.NewMachine(hyper.Config{
		Name:          "estimate",
		VCPUs:         w.VCPUs,
		MemKiB:        w.MemKiB,
		DirtyPagesSec: w.DirtyPagesSec,
		CPUUtil:       w.CPUUtil,
	})
	if err != nil {
		return Result{}, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	if err := m.Start(); err != nil {
		return Result{}, core.Errorf(core.ErrInternal, "%v", err)
	}
	e := newEngine(m, modelTransport{}, opts)
	cpu0 := m.Stats().CPUTimeNs
	remainingKiB, err := e.precopyRounds(context.Background())
	if err != nil {
		return e.res, err
	}
	if opts.PostCopy {
		e.res.Mode = ModePostCopy
		e.res.DowntimeNs = switchoverOverheadNs
		e.res.TotalTimeNs += switchoverOverheadNs
		e.res.Converged = true
		// The estimate machine stands in for the destination guest:
		// same workload, now running with partial memory.
		_ = m.BeginPostCopy(m.TotalPages() - remainingKiB/hyper.PageSizeKiB)
		if err := e.postcopyPull(context.Background(), remainingKiB/hyper.PageSizeKiB, m); err != nil {
			return e.res, err
		}
	}
	e.res.GuestCPUNs = m.Stats().CPUTimeNs - cpu0
	return e.res, nil
}
