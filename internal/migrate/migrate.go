// Package migrate implements iterative pre-copy live migration between
// two management connections: the domain's memory is copied while it
// keeps running, dirty pages are re-sent round by round, and when the
// remaining set is small enough to move within the downtime target the
// guest is paused, switched over and resumed on the destination.
//
// The transfer itself is simulated: round times derive from the
// configured bandwidth and the source machine's dirty-page model (see
// DESIGN.md, Substitutions), so total time, downtime and convergence
// behaviour — the properties the evaluation reports — are faithfully
// reproduced without moving real memory.
//
// Both ends may be local or remote connections. A local source exposes
// its substrate machine directly; for a daemon-managed source, whose
// machine lives on the far side of the wire, the engine reconstructs an
// equivalent workload model from the domain's XML definition (memory
// size plus the same description hints the daemon-side machine was
// built from), so fleet controllers can drive migrations between two
// daemons through the uniform API alone.
package migrate

import (
	"repro/internal/core"
	"repro/internal/drivers/common"
	"repro/internal/events"
	"repro/internal/hyper"
	"repro/internal/xmlspec"
)

// switchoverOverheadNs models the fixed cost of the stop-and-copy
// handshake (pause, final state push, resume on the destination).
const switchoverOverheadNs = 20_000_000 // 20 ms

// Result reports the outcome of a migration.
type Result struct {
	Iterations     int
	Converged      bool // remaining set fit the downtime target
	TotalTimeNs    uint64
	DowntimeNs     uint64
	TransferredKiB uint64
}

// TotalTimeMs returns the total migration time in milliseconds.
func (r Result) TotalTimeMs() float64 { return float64(r.TotalTimeNs) / 1e6 }

// DowntimeMs returns the guest-visible downtime in milliseconds.
func (r Result) DowntimeMs() float64 { return float64(r.DowntimeNs) / 1e6 }

// Migrate moves the named running domain from src to dst. Both ends may
// be local or remote: a local source is migrated against its substrate
// machine; a daemon-managed source is migrated against a model machine
// reconstructed from its XML definition (see the package comment).
func Migrate(src *core.Domain, dst *core.Connect, opts core.MigrateOptions) (Result, error) {
	applyDefaults(&opts)

	info, err := src.Info()
	if err != nil {
		return Result{}, err
	}
	if info.State != core.DomainRunning {
		return Result{}, core.Errorf(core.ErrOperationInvalid,
			"domain %q is %s; live migration needs a running domain", src.Name(), info.State)
	}
	xmlDesc, err := src.XML()
	if err != nil {
		return Result{}, err
	}
	var machine *hyper.Machine
	if ma, ok := src.Connect().Driver().(core.MachineAccess); ok {
		machine, err = ma.Machine(src.Name())
	} else {
		machine, err = modelMachine(xmlDesc)
	}
	if err != nil {
		return Result{}, err
	}

	// Prepare phase: the definition lands on the destination first, so a
	// name clash or invalid config aborts before the guest is touched.
	dstDom, err := dst.DefineDomain(xmlDesc)
	if err != nil {
		return Result{}, core.Errorf(core.ErrMigrate,
			"prepare on destination: %v", err)
	}

	res := precopy(machine, opts)

	// Switch-over: pause the source, start the destination, tear the
	// source down. Failure after the pause resumes the source so the
	// guest never ends up lost on both ends.
	if err := src.Suspend(); err != nil {
		_ = dstDom.Undefine()
		return Result{}, core.Errorf(core.ErrMigrate, "pause source: %v", err)
	}
	if err := dstDom.Create(); err != nil {
		_ = src.Resume()
		_ = dstDom.Undefine()
		return Result{}, core.Errorf(core.ErrMigrate, "start on destination: %v", err)
	}
	if err := src.Destroy(); err != nil {
		return res, core.Errorf(core.ErrMigrate,
			"destination is running but source teardown failed: %v", err)
	}
	if opts.UndefineSource {
		if err := src.Undefine(); err != nil {
			return res, core.Errorf(core.ErrMigrate, "undefine source: %v", err)
		}
	}
	emitMigrated(src.Connect(), src.Name(), src.UUID(), "source")
	emitMigrated(dst, dstDom.Name(), dstDom.UUID(), "destination")
	return res, nil
}

// modelMachine reconstructs the source's workload model from its XML
// definition. A remote source cannot expose its substrate machine
// across the wire, but the definition carries the memory size and the
// same description hints (cpu_util, dirty_pages_sec) the daemon-side
// machine was built from, so the precopy rounds computed here match the
// ones the source host itself would compute.
func modelMachine(xmlDesc string) (*hyper.Machine, error) {
	def, err := xmlspec.ParseDomain([]byte(xmlDesc))
	if err != nil {
		return nil, core.Errorf(core.ErrXML, "migrate: source definition: %v", err)
	}
	cfg, err := common.DefToConfig(def)
	if err != nil {
		return nil, core.Errorf(core.ErrXML, "migrate: source definition: %v", err)
	}
	m, err := hyper.NewMachine(cfg)
	if err != nil {
		return nil, core.Errorf(core.ErrInternal, "migrate: model machine: %v", err)
	}
	if err := m.Start(); err != nil {
		return nil, core.Errorf(core.ErrInternal, "migrate: model machine: %v", err)
	}
	return m, nil
}

func applyDefaults(opts *core.MigrateOptions) {
	if opts.BandwidthMBps == 0 {
		opts.BandwidthMBps = 1000
	}
	if opts.MaxDowntimeMs == 0 {
		opts.MaxDowntimeMs = 300
	}
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 30
	}
}

// precopy runs the iterative copy rounds against the machine's dirty
// model and returns the timing accounting.
func precopy(m *hyper.Machine, opts core.MigrateOptions) Result {
	bwKiBPerSec := float64(opts.BandwidthMBps) * 1024
	res := Result{}

	// Round zero transfers the full memory image.
	m.ResetDirty()
	remainingKiB := m.MemKiB()
	for {
		res.Iterations++
		roundNs := uint64(float64(remainingKiB) / bwKiBPerSec * 1e9)
		res.TotalTimeNs += roundNs
		res.TransferredKiB += remainingKiB

		// While the round was on the wire, the guest kept dirtying.
		m.RunFor(roundNs)
		dirtyPages := m.ResetDirty()
		remainingKiB = dirtyPages * hyper.PageSizeKiB

		finalNs := uint64(float64(remainingKiB)/bwKiBPerSec*1e9) + switchoverOverheadNs
		if finalNs <= uint64(opts.MaxDowntimeMs)*1_000_000 {
			res.Converged = true
			res.DowntimeNs = finalNs
			break
		}
		if res.Iterations >= opts.MaxIterations {
			// Forced stop-and-copy: the guest pays the full remaining
			// transfer as downtime.
			res.DowntimeNs = finalNs
			break
		}
	}
	res.TotalTimeNs += res.DowntimeNs
	res.TransferredKiB += remainingKiB
	return res
}

// emitMigrated publishes the migration event when the connection's
// driver delivers events.
func emitMigrated(c *core.Connect, name, uuid, detail string) {
	if src, ok := c.Driver().(core.EventSource); ok {
		src.EventBus().Emit(events.Event{
			Type: events.EventMigrated, Domain: name, UUID: uuid, Detail: detail,
		})
	}
}

// Estimate runs only the pre-copy model without touching domain state:
// given memory size, dirty rate and options it predicts iterations,
// total time and downtime. The benchmark harness uses it for parameter
// sweeps.
func Estimate(memKiB uint64, dirtyPagesSec uint64, opts core.MigrateOptions) (Result, error) {
	applyDefaults(&opts)
	m, err := hyper.NewMachine(hyper.Config{
		Name:          "estimate",
		VCPUs:         1,
		MemKiB:        memKiB,
		DirtyPagesSec: dirtyPagesSec,
		CPUUtil:       0.5,
	})
	if err != nil {
		return Result{}, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	if err := m.Start(); err != nil {
		return Result{}, core.Errorf(core.ErrInternal, "%v", err)
	}
	return precopy(m, opts), nil
}
