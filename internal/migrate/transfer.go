package migrate

import (
	"sync"

	"repro/internal/core"
	"repro/internal/faultpoint"
)

// The transfer layer moves page chunks to the destination. When the
// destination driver implements core.MigrationSink (every local driver
// base does; the remote driver forwards over dedicated wire procedures)
// each chunk is a real RPC through the pooled frame path, so parallel
// streams genuinely pipeline on the connection and chaos tests can cut
// them mid-flight. Otherwise — an older daemon answering ErrNoSupport —
// the engine falls back to the pure timing model and sends nothing.
//
// Timing stays modelled either way: chunk payloads are capped
// representatives (Pages carries the authoritative accounting), and
// round durations derive from the bandwidth model, not wall clock.

// FaultSiteStream is the faultpoint site evaluated once per chunk send.
// ModeDrop loses the chunk (it is retransmitted once, charging the
// stream the extra transfer time); ModeError kills the stream — a
// pre-copy abort, or the typed ErrPostCopy when the post-copy pull
// dies; ModeDelay injects latency as everywhere else.
const FaultSiteStream = "migrate.stream"

// chunkPayloadCap bounds the representative bytes carried per chunk so
// a multi-GiB round costs a handful of pooled frames, not a memory copy.
const chunkPayloadCap = 16 * 1024

// maxChunksPerStream bounds wire chunks per stream per round.
const maxChunksPerStream = 4

// chunkPages is the page granularity above which a stream's round share
// is split into multiple wire chunks.
const chunkPages = 16384 // 64 MiB

var chunkPayload = make([]byte, chunkPayloadCap)

// transport is the destination-facing side of the engine.
type transport interface {
	prepare(domain string, totalPages uint64, streams int) error
	send(ch *core.MigrateChunk) error
	finish(commit bool) error
}

// sinkTransport pushes chunks into a core.MigrationSink.
type sinkTransport struct {
	sink   core.MigrationSink
	cookie uint64
}

func (t *sinkTransport) prepare(domain string, totalPages uint64, streams int) error {
	cookie, err := t.sink.MigratePrepare(domain, totalPages, streams)
	if err != nil {
		return err
	}
	t.cookie = cookie
	return nil
}

func (t *sinkTransport) send(ch *core.MigrateChunk) error {
	ch.Cookie = t.cookie
	return t.sink.MigratePages(ch)
}

func (t *sinkTransport) finish(commit bool) error {
	return t.sink.MigrateFinish(t.cookie, commit)
}

// modelTransport is the no-wire fallback; timing and accounting still
// run, nothing crosses a connection.
type modelTransport struct{}

func (modelTransport) prepare(string, uint64, int) error { return nil }
func (modelTransport) send(*core.MigrateChunk) error     { return nil }
func (modelTransport) finish(bool) error                 { return nil }

// newTransport picks the sink path when the destination supports it.
// The returned prepared flag is false when the engine should fall back
// to the pure model (no sink interface, or the peer daemon predates the
// migration procedures).
func newTransport(dst *core.Connect, domain string, totalPages uint64, streams int) (transport, error) {
	sink, ok := dst.Driver().(core.MigrationSink)
	if !ok {
		return modelTransport{}, nil
	}
	t := &sinkTransport{sink: sink}
	if err := t.prepare(domain, totalPages, streams); err != nil {
		if core.IsCode(err, core.ErrNoSupport) {
			return modelTransport{}, nil
		}
		return nil, err
	}
	return t, nil
}

// sendChunk pushes one chunk through the transport with the
// migrate.stream faultpoint applied. A dropped (or corrupted) chunk is
// retransmitted once and the retransmitted pages are returned so the
// caller charges the stream the extra transfer time; an injected error
// is a stream death.
func sendChunk(tr transport, ch *core.MigrateChunk) (retransPages uint64, err error) {
	if spec, fired := faultpoint.Default.Eval(FaultSiteStream); fired {
		switch spec.Mode {
		case faultpoint.ModeDrop, faultpoint.ModeCorrupt:
			migRetrans.Inc()
			retransPages = ch.Pages
		case faultpoint.ModeError:
			err := spec.Err
			if err == nil {
				err = core.Errorf(core.ErrMigrate,
					"migration stream %d died (injected)", ch.Stream)
			}
			return 0, err
		}
		// ModeDelay already slept inside Eval.
	}
	ch.Data = chunkPayload[:payloadLen(ch.Pages)]
	if ch.Priority {
		migPulls.Inc()
	} else {
		migChunksTx.Inc()
	}
	return retransPages, tr.send(ch)
}

// payloadLen sizes the representative payload for a chunk accounting
// for the given page count.
func payloadLen(pages uint64) int {
	n := pages * 64 // 64 representative bytes per 4 KiB page
	if n > chunkPayloadCap {
		n = chunkPayloadCap
	}
	return int(n)
}

// sendRound pushes one copy round of roundPages across streams parallel
// streams and returns the per-stream page counts (share + retransmits)
// that determine the round's modelled duration. Streams run as real
// goroutines so their chunk RPCs pipeline on the destination
// connection; the first stream death wins and aborts the round.
func sendRound(tr transport, round, streams int, roundPages uint64) (perStream []uint64, err error) {
	perStream = make([]uint64, streams)
	share := roundPages / uint64(streams)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < streams; i++ {
		pages := share
		if i == streams-1 {
			pages = roundPages - share*uint64(streams-1)
		}
		if pages == 0 {
			continue
		}
		perStream[i] = pages
		wg.Add(1)
		go func(stream int, pages uint64) {
			defer wg.Done()
			extra, serr := streamSend(tr, round, stream, pages)
			mu.Lock()
			perStream[stream] += extra
			if serr != nil && firstErr == nil {
				firstErr = serr
			}
			mu.Unlock()
		}(i, pages)
	}
	wg.Wait()
	return perStream, firstErr
}

// streamSend splits one stream's share into wire chunks and sends them
// sequentially, accumulating retransmitted pages.
func streamSend(tr transport, round, stream int, pages uint64) (retrans uint64, err error) {
	nchunks := int((pages + chunkPages - 1) / chunkPages)
	if nchunks < 1 {
		nchunks = 1
	}
	if nchunks > maxChunksPerStream {
		nchunks = maxChunksPerStream
	}
	per := pages / uint64(nchunks)
	for c := 0; c < nchunks; c++ {
		p := per
		if c == nchunks-1 {
			p = pages - per*uint64(nchunks-1)
		}
		extra, err := sendChunk(tr, &core.MigrateChunk{
			Stream: stream, Round: round, Pages: p,
		})
		retrans += extra
		if err != nil {
			return retrans, err
		}
	}
	return retrans, nil
}
