package migrate

import "repro/internal/telemetry"

// Migration metrics. They live in the Default registry so they surface
// through every existing export path (the Prometheus text endpoint,
// `virtadminx metrics` against an in-process daemon, fleet aggregation
// and telemetry.Default.Snapshot()) without new plumbing. Estimate runs
// do not touch the counters: only real migrations (Migrate /
// MigrateContext) count, so the numbers mean "guests moved", not
// "parameter sweeps executed".
var (
	migStarted   = telemetry.Default.Counter("migration_started_total")
	migConverged = telemetry.Default.Counter("migration_converged_total")
	migPostCopy  = telemetry.Default.Counter("migration_postcopy_total")
	migFailed    = telemetry.Default.Counter("migration_failed_total")

	// Modelled durations of completed migrations.
	migDowntime  = telemetry.Default.Histogram("migration_downtime_seconds")
	migTotalTime = telemetry.Default.Histogram("migration_total_seconds")

	// Transfer-path detail: wire chunks pushed to the destination sink,
	// chunks retransmitted after an injected drop on migrate.stream,
	// post-copy demand-fault pull batches, and auto-convergence
	// throttle escalations.
	migChunksTx  = telemetry.Default.Counter("migration_chunks_tx_total")
	migRetrans   = telemetry.Default.Counter("migration_retransmits_total")
	migPulls     = telemetry.Default.Counter("migration_fault_pulls_total")
	migThrottles = telemetry.Default.Counter("migration_throttle_steps_total")
)
