package watch

import "repro/internal/telemetry"

// Event-path metrics, reported to the process-wide registry so they
// surface through virtadminx metrics and the Prometheus exposition
// alongside the daemon's other counters.
var (
	// eventsDelivered counts watch event frames handed to connection
	// sinks (heartbeats excluded).
	eventsDelivered = telemetry.Default.Counter("events_delivered_total")
	// eventsDropped counts events discarded by drop-oldest backpressure.
	eventsDropped = telemetry.Default.Counter("events_dropped_total")
	// eventsCoalesced counts events absorbed into an already-queued slot
	// for the same domain.
	eventsCoalesced = telemetry.Default.Counter("events_coalesced_total")
	// heartbeatsSent counts trailing Type-0 frames.
	heartbeatsSent = telemetry.Default.Counter("events_heartbeats_total")
	// queueDepth is the number of events queued across every live
	// subscriber.
	queueDepth = telemetry.Default.Gauge("watch_queue_depth")
	// subscribersGauge is the number of live watch subscriptions.
	subscribersGauge = telemetry.Default.Gauge("watch_subscribers")
)
