// Package watch implements the server side of watch streams: bounded,
// coalescing, per-connection subscriber queues that bridge the local
// events.Bus onto the wire as sequenced rpc.TypeEvent frames.
//
// The contract with the client is loss-*detecting*, not loss-free. Each
// queued event gets the subscription's next sequence number at enqueue
// time and queued events leave in order, so the wire stream carries a
// contiguous run of sequence numbers as long as nothing is lost. Two
// things break the run: drop-oldest backpressure (the queue is full, the
// head slot is discarded and its number is never sent) and frames lost
// in flight. Either way the receiver observes Seq jump by more than one
// and answers with a single bulk resync sweep — the client never falls
// back to a poll loop.
//
// Per-domain coalescing keeps bursts cheap: while a domain's event is
// still queued and younger than the coalesce window, a newer event for
// the same domain overwrites the queued slot in place, keeping the
// slot's original sequence number (the stream stays contiguous; the
// frame's Coalesced field counts the absorbed events). Since lifecycle
// consumers care about the latest state, not the intermediate hops, this
// is lossless for reconciliation.
//
// After a burst drains, the subscriber emits a few heartbeat frames
// (Type 0, carrying the last assigned sequence number) and then goes
// silent. Heartbeats close the tail-loss window — if the *last* event
// frame of a burst is lost, no later event would ever reveal the gap —
// without giving up the idle-stream property: a quiesced subscription
// sends nothing.
package watch

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/faultpoint"
	"repro/internal/wire"
)

// Defaults for the queue bounds, overridable per daemon via the
// event_queue_depth / event_coalesce_window_ms config keys.
const (
	DefaultDepth             = 256
	DefaultCoalesceWindow    = 10 * time.Millisecond
	DefaultHeartbeatInterval = 200 * time.Millisecond
	DefaultHeartbeatCount    = 3
)

// Sink delivers one watch frame toward the subscriber's connection.
// SendEvent runs on the subscriber's drainer goroutine; it may block on
// the transport but must eventually return. A returned error is fatal
// for the subscription (the connection is gone).
type Sink interface {
	SendEvent(ev *wire.WatchEvent) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ev *wire.WatchEvent) error

// SendEvent calls f.
func (f SinkFunc) SendEvent(ev *wire.WatchEvent) error { return f(ev) }

// Config parameterises one Subscriber.
type Config struct {
	ID       int32         // subscription id echoed in every frame
	Depth    int           // queue capacity; <= 0 uses DefaultDepth
	Coalesce time.Duration // per-domain coalesce window; 0 disables, < 0 uses default

	// Heartbeat behaviour after a burst drains. Interval <= 0 uses the
	// default; Count < 0 uses the default, 0 disables heartbeats.
	HeartbeatInterval time.Duration
	HeartbeatCount    int

	Sink Sink

	// now substitutes the clock in tests.
	now func() time.Time
}

// slot is one queued event plus its enqueue time (for the coalesce
// window check).
type slot struct {
	ev     wire.WatchEvent
	queued time.Time
}

// Stats is a point-in-time view of one subscriber's counters.
type Stats struct {
	Delivered uint64 // frames handed to the sink (events, not heartbeats)
	Dropped   uint64 // events discarded by drop-oldest backpressure
	Coalesced uint64 // events absorbed into an already-queued slot
	Queued    int    // events currently queued
	LastSeq   uint64 // highest sequence number assigned so far
}

// Subscriber is one watch stream: a fixed-capacity ring of pending
// events drained by a dedicated goroutine. Enqueue never blocks and
// never allocates on the steady path; all backpressure is absorbed by
// coalescing and drop-oldest.
type Subscriber struct {
	cfg Config

	mu       sync.Mutex
	buf      []slot
	head     int               // ring index of the oldest queued slot
	count    int               // queued slots
	firstSeq uint64            // sequence number of the slot at head (valid when count > 0)
	nextSeq  uint64            // next sequence number to assign
	lastSeq  uint64            // last sequence number assigned (nextSeq - 1)
	byDomain map[string]uint64 // domain → queued seq, for O(1) coalesce lookup
	closed   bool

	wake chan struct{} // capacity 1: enqueue → drainer
	done chan struct{} // closed exactly once by Close

	closeOnce sync.Once

	delivered atomic.Uint64
	dropped   atomic.Uint64
	coalesced atomic.Uint64
}

// New creates a Subscriber and starts its drainer goroutine. The caller
// must Close it when the connection (or the subscription) goes away.
func New(cfg Config) *Subscriber {
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultDepth
	}
	if cfg.Coalesce < 0 {
		cfg.Coalesce = DefaultCoalesceWindow
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.HeartbeatCount < 0 {
		cfg.HeartbeatCount = DefaultHeartbeatCount
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Subscriber{
		cfg:      cfg,
		buf:      make([]slot, cfg.Depth),
		nextSeq:  1,
		byDomain: make(map[string]uint64),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	subscribersGauge.Add(1)
	go s.run()
	return s
}

// ID returns the subscription id.
func (s *Subscriber) ID() int32 { return s.cfg.ID }

// Depth returns the effective queue capacity.
func (s *Subscriber) Depth() int { return s.cfg.Depth }

// Coalesce returns the effective coalesce window.
func (s *Subscriber) Coalesce() time.Duration { return s.cfg.Coalesce }

// Enqueue queues one bus event for delivery. It never blocks: a full
// queue drops its oldest entry (creating a detectable sequence gap), and
// an event for a domain whose previous event is still queued within the
// coalesce window replaces that slot in place. Safe to call from the
// bus's emitter goroutine. Events arriving after Close are discarded.
func (s *Subscriber) Enqueue(ev events.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	now := s.cfg.now()

	// Coalesce: the domain already has a queued slot young enough.
	if seq, ok := s.byDomain[ev.Domain]; ok && s.cfg.Coalesce > 0 {
		sl := &s.buf[s.pos(seq)]
		if now.Sub(sl.queued) <= s.cfg.Coalesce {
			sl.ev.Type = uint32(ev.Type)
			sl.ev.UUID = ev.UUID
			sl.ev.Detail = ev.Detail
			sl.ev.BusSeq = ev.Seq
			sl.ev.Coalesced++
			s.coalesced.Add(1)
			s.mu.Unlock()
			eventsCoalesced.Inc()
			s.signal()
			return
		}
	}

	// Backpressure: full queue discards the oldest slot. Its sequence
	// number is never sent, so the receiver sees the gap and resyncs.
	if s.count == len(s.buf) {
		old := &s.buf[s.head]
		if s.byDomain[old.ev.Domain] == old.ev.Seq {
			delete(s.byDomain, old.ev.Domain)
		}
		*old = slot{}
		s.head = (s.head + 1) % len(s.buf)
		s.count--
		s.firstSeq++
		s.dropped.Add(1)
		eventsDropped.Inc()
		queueDepth.Add(-1)
	}

	seq := s.nextSeq
	s.nextSeq++
	s.lastSeq = seq
	if s.count == 0 {
		s.firstSeq = seq
	}
	s.buf[(s.head+s.count)%len(s.buf)] = slot{
		ev: wire.WatchEvent{
			SubscriptionID: s.cfg.ID,
			Seq:            seq,
			Type:           uint32(ev.Type),
			Domain:         ev.Domain,
			UUID:           ev.UUID,
			Detail:         ev.Detail,
			BusSeq:         ev.Seq,
		},
		queued: now,
	}
	s.count++
	s.byDomain[ev.Domain] = seq
	s.mu.Unlock()
	queueDepth.Add(1)
	s.signal()
}

// pos maps a queued sequence number to its ring index. Queued slots
// hold contiguous ascending sequence numbers starting at firstSeq, so
// the offset from firstSeq is the offset from head.
func (s *Subscriber) pos(seq uint64) int {
	return (s.head + int(seq-s.firstSeq)) % len(s.buf)
}

// signal nudges the drainer without blocking.
func (s *Subscriber) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dequeue pops the oldest queued event. The frame content is copied out
// under the lock, so a concurrent Enqueue can no longer coalesce into
// it once it is on its way to the wire.
func (s *Subscriber) dequeue() (wire.WatchEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return wire.WatchEvent{}, false
	}
	sl := &s.buf[s.head]
	ev := sl.ev
	if s.byDomain[ev.Domain] == ev.Seq {
		delete(s.byDomain, ev.Domain)
	}
	*sl = slot{}
	s.head = (s.head + 1) % len(s.buf)
	s.count--
	s.firstSeq = ev.Seq + 1
	queueDepth.Add(-1)
	return ev, true
}

// deliver pushes one frame through the sink. The "watch.send"
// faultpoint sits here — chaos tests drop or delay individual watch
// frames without touching the call path underneath.
func (s *Subscriber) deliver(ev *wire.WatchEvent) error {
	if spec, ok := faultpoint.Default.Eval("watch.send"); ok {
		switch spec.Mode {
		case faultpoint.ModeDrop:
			return nil // lost in flight; the seq gap tells the client
		case faultpoint.ModeError:
			if spec.Err != nil {
				return spec.Err
			}
			return errInjectedSend
		}
		// ModeDelay slept inside Eval; fall through and send.
	}
	if err := s.cfg.Sink.SendEvent(ev); err != nil {
		return err
	}
	if ev.Type != 0 {
		s.delivered.Add(1)
		eventsDelivered.Inc()
	}
	return nil
}

// heartbeatFrame builds a Type-0 frame carrying the last assigned
// sequence number, or false when nothing was ever queued.
func (s *Subscriber) heartbeatFrame() (wire.WatchEvent, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastSeq == 0 {
		return wire.WatchEvent{}, false
	}
	return wire.WatchEvent{SubscriptionID: s.cfg.ID, Seq: s.lastSeq}, true
}

// run is the drainer: it moves queued events to the sink in order, then
// trails off with a bounded number of heartbeats before going silent.
func (s *Subscriber) run() {
	timer := time.NewTimer(s.cfg.HeartbeatInterval)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var hb <-chan time.Time
	hbLeft := 0
	for {
		sent := false
		for {
			ev, ok := s.dequeue()
			if !ok {
				break
			}
			if err := s.deliver(&ev); err != nil {
				s.Close()
				return
			}
			sent = true
		}
		if sent && s.cfg.HeartbeatCount > 0 {
			hbLeft = s.cfg.HeartbeatCount
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(s.cfg.HeartbeatInterval)
			hb = timer.C
		}
		if hbLeft <= 0 {
			hb = nil
		}
		select {
		case <-s.done:
			return
		case <-s.wake:
		case <-hb:
			hbLeft--
			if frame, ok := s.heartbeatFrame(); ok {
				if err := s.deliver(&frame); err != nil {
					s.Close()
					return
				}
				heartbeatsSent.Inc()
			}
			if hbLeft > 0 {
				timer.Reset(s.cfg.HeartbeatInterval)
			} else {
				hb = nil
			}
		}
	}
}

// Close tears the subscription down: the drainer exits, queued events
// are discarded and later Enqueue calls are no-ops. Idempotent.
func (s *Subscriber) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		if s.count > 0 {
			queueDepth.Add(-int64(s.count))
			s.count = 0
			s.byDomain = make(map[string]uint64)
			for i := range s.buf {
				s.buf[i] = slot{}
			}
		}
		s.mu.Unlock()
		close(s.done)
		subscribersGauge.Add(-1)
	})
}

// Stats samples the subscriber's counters.
func (s *Subscriber) Stats() Stats {
	s.mu.Lock()
	queued := s.count
	last := s.lastSeq
	s.mu.Unlock()
	return Stats{
		Delivered: s.delivered.Load(),
		Dropped:   s.dropped.Load(),
		Coalesced: s.coalesced.Load(),
		Queued:    queued,
		LastSeq:   last,
	}
}

// errInjectedSend is the default ModeError verdict for watch.send.
var errInjectedSend = watchError("watch: injected send fault")

// watchError is a trivial constant error type.
type watchError string

func (e watchError) Error() string { return string(e) }
