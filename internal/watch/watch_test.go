package watch

import (
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/faultpoint"
	"repro/internal/wire"
)

// collectSink buffers every frame and optionally blocks the drainer on
// the first frame until the test releases it, so events pile up in the
// queue deterministically.
func collectSink(buf int, blockFirst bool) (Sink, chan wire.WatchEvent, chan struct{}) {
	frames := make(chan wire.WatchEvent, buf)
	gate := make(chan struct{})
	sink := SinkFunc(func(ev *wire.WatchEvent) error {
		frames <- *ev
		if blockFirst && ev.Seq == 1 && ev.Type != 0 {
			<-gate
		}
		return nil
	})
	return sink, frames, gate
}

func recvFrame(t *testing.T, frames chan wire.WatchEvent) wire.WatchEvent {
	t.Helper()
	select {
	case f := <-frames:
		return f
	case <-time.After(2 * time.Second):
		t.Fatalf("timed out waiting for watch frame")
		return wire.WatchEvent{}
	}
}

func TestWatchSequenceContiguous(t *testing.T) {
	sink, frames, _ := collectSink(64, false)
	s := New(Config{ID: 7, Depth: 16, Coalesce: 0, HeartbeatCount: 0, Sink: sink})
	defer s.Close()

	const n = 10
	for i := 0; i < n; i++ {
		s.Enqueue(events.Event{Type: events.EventStarted, Domain: domainName(i), Seq: uint64(100 + i)})
	}
	for i := 0; i < n; i++ {
		f := recvFrame(t, frames)
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d: seq = %d, want %d", i, f.Seq, i+1)
		}
		if f.SubscriptionID != 7 {
			t.Fatalf("frame %d: sub id = %d, want 7", i, f.SubscriptionID)
		}
		if f.Domain != domainName(i) {
			t.Fatalf("frame %d: domain %q, want %q", i, f.Domain, domainName(i))
		}
		if f.BusSeq != uint64(100+i) {
			t.Fatalf("frame %d: bus seq = %d, want %d", i, f.BusSeq, 100+i)
		}
	}
	st := s.Stats()
	if st.Delivered != n || st.Dropped != 0 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v, want %d delivered, 0 dropped, 0 coalesced", st, n)
	}
}

func domainName(i int) string {
	return string(rune('a'+i%26)) + "-dom"
}

func TestWatchCoalesceSameDomain(t *testing.T) {
	sink, frames, gate := collectSink(64, true)
	s := New(Config{ID: 1, Depth: 16, Coalesce: time.Minute, HeartbeatCount: 0, Sink: sink})
	defer s.Close()

	// First event gets dequeued and blocks inside the sink; everything
	// after stays queued and is eligible for coalescing.
	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "blocker"})
	first := recvFrame(t, frames)
	if first.Seq != 1 {
		t.Fatalf("first seq = %d, want 1", first.Seq)
	}

	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "web", Seq: 10})
	s.Enqueue(events.Event{Type: events.EventSuspended, Domain: "web", Seq: 11})
	s.Enqueue(events.Event{Type: events.EventStopped, Domain: "web", Seq: 12})
	close(gate)

	f := recvFrame(t, frames)
	if f.Domain != "web" || f.Seq != 2 {
		t.Fatalf("coalesced frame = %+v, want domain web seq 2", f)
	}
	if events.Type(f.Type) != events.EventStopped {
		t.Fatalf("coalesced type = %d, want EventStopped: latest state wins", f.Type)
	}
	if f.Coalesced != 2 {
		t.Fatalf("coalesced count = %d, want 2", f.Coalesced)
	}
	if f.BusSeq != 12 {
		t.Fatalf("coalesced bus seq = %d, want 12 (latest)", f.BusSeq)
	}
	select {
	case extra := <-frames:
		t.Fatalf("unexpected extra frame %+v", extra)
	case <-time.After(50 * time.Millisecond):
	}
	if st := s.Stats(); st.Coalesced != 2 {
		t.Fatalf("stats.Coalesced = %d, want 2", st.Coalesced)
	}
}

func TestWatchDropOldestCreatesGap(t *testing.T) {
	sink, frames, gate := collectSink(64, true)
	s := New(Config{ID: 1, Depth: 2, Coalesce: 0, HeartbeatCount: 0, Sink: sink})
	defer s.Close()

	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "d0"})
	first := recvFrame(t, frames) // drainer now blocked; queue is empty
	if first.Seq != 1 {
		t.Fatalf("first seq = %d, want 1", first.Seq)
	}
	// Four more distinct domains into a depth-2 queue: seqs 2 and 3 are
	// displaced by 4 and 5.
	for _, d := range []string{"d1", "d2", "d3", "d4"} {
		s.Enqueue(events.Event{Type: events.EventStarted, Domain: d})
	}
	close(gate)

	got := []uint64{recvFrame(t, frames).Seq, recvFrame(t, frames).Seq}
	if got[0] != 4 || got[1] != 5 {
		t.Fatalf("post-drop seqs = %v, want [4 5]", got)
	}
	if st := s.Stats(); st.Dropped != 2 {
		t.Fatalf("stats.Dropped = %d, want 2", st.Dropped)
	}
}

func TestWatchHeartbeatTrailer(t *testing.T) {
	sink, frames, _ := collectSink(64, false)
	s := New(Config{
		ID: 3, Depth: 8, Coalesce: 0,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatCount:    2,
		Sink:              sink,
	})
	defer s.Close()

	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "web"})
	ev := recvFrame(t, frames)
	if ev.Type == 0 {
		t.Fatalf("first frame is a heartbeat, want the event")
	}
	for i := 0; i < 2; i++ {
		hb := recvFrame(t, frames)
		if hb.Type != 0 {
			t.Fatalf("trailer frame %d: type = %d, want 0 (heartbeat)", i, hb.Type)
		}
		if hb.Seq != ev.Seq {
			t.Fatalf("heartbeat seq = %d, want last event seq %d", hb.Seq, ev.Seq)
		}
	}
	// After the bounded trailer the stream goes silent.
	select {
	case extra := <-frames:
		t.Fatalf("heartbeats did not stop: got %+v", extra)
	case <-time.After(150 * time.Millisecond):
	}
}

func TestWatchCloseDiscardsAndIgnores(t *testing.T) {
	sink, _, _ := collectSink(1, true)
	s := New(Config{ID: 1, Depth: 4, HeartbeatCount: 0, Sink: sink})
	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "a"})
	s.Close()
	s.Close() // idempotent
	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "b"})
	if st := s.Stats(); st.Queued != 0 {
		t.Fatalf("queued after close = %d, want 0", st.Queued)
	}
}

func TestWatchSendFaultpointDrop(t *testing.T) {
	faultpoint.Default.Arm(42)
	defer faultpoint.Default.Disarm()
	faultpoint.Default.Set("watch.send", faultpoint.Spec{Mode: faultpoint.ModeDrop, Prob: 1})

	sink, frames, _ := collectSink(8, false)
	s := New(Config{ID: 1, Depth: 8, HeartbeatCount: 0, Sink: sink})
	defer s.Close()

	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "web"})
	select {
	case f := <-frames:
		t.Fatalf("frame delivered despite armed drop faultpoint: %+v", f)
	case <-time.After(100 * time.Millisecond):
	}
	// The sequence number was consumed: the next delivered frame after
	// disarming reveals the gap.
	faultpoint.Default.Clear("watch.send")
	s.Enqueue(events.Event{Type: events.EventStarted, Domain: "db"})
	f := recvFrame(t, frames)
	if f.Seq != 2 {
		t.Fatalf("post-drop seq = %d, want 2 (gap over the dropped 1)", f.Seq)
	}
}
