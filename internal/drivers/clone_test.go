package drivers_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/uri"
)

func openConnect(t *testing.T, name string) *core.Connect {
	t.Helper()
	return core.OpenWith(&uri.URI{Driver: name}, openers[name](t))
}

func TestCloneDomain(t *testing.T) {
	conn := openConnect(t, "qsim")
	src, err := conn.DefineDomain(`
<domain type='qsim'>
  <name>orig</name>
  <title>Original guest</title>
  <memory unit='MiB'>512</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
  <devices>
    <disk type='file' device='disk'>
      <source file='/images/orig.qcow2'/>
      <target dev='vda' bus='virtio'/>
    </disk>
    <interface type='user'>
      <mac address='52:54:00:11:11:11'/>
    </interface>
  </devices>
</domain>`)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := core.CloneDomain(conn, "orig", "copy")
	if err != nil {
		t.Fatal(err)
	}
	if clone.Name() != "copy" || clone.UUID() == src.UUID() {
		t.Fatalf("clone identity: %s %s", clone.Name(), clone.UUID())
	}
	xml, err := clone.XML()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(xml, "52:54:00:11:11:11") {
		t.Fatal("clone kept the source MAC")
	}
	if !strings.Contains(xml, "/images/orig.qcow2.copy") {
		t.Fatalf("clone disk not re-pathed:\n%s", xml)
	}
	if !strings.Contains(xml, "Original guest (clone)") {
		t.Fatalf("clone title not marked:\n%s", xml)
	}
	// Cloning onto an existing (inactive) name fails: the clone's fresh
	// UUID can never match the existing definition.
	if _, err := core.CloneDomain(conn, "orig", "copy"); !core.IsCode(err, core.ErrDuplicate) {
		t.Fatalf("duplicate clone: %v", err)
	}
	// Both run side by side.
	if err := src.Create(); err != nil {
		t.Fatal(err)
	}
	if err := clone.Create(); err != nil {
		t.Fatal(err)
	}
	doms, _ := conn.ListAllDomains(core.ListActive)
	if len(doms) != 2 {
		t.Fatalf("active domains: %d", len(doms))
	}
	// Deterministic MAC per clone identity: two clones get distinct MACs.
	clone2, err := core.CloneDomain(conn, "orig", "copy2")
	if err != nil {
		t.Fatal(err)
	}
	xml2, _ := clone2.XML()
	macLine := func(s string) string {
		for _, l := range strings.Split(s, "\n") {
			if strings.Contains(l, "mac address") {
				return l
			}
		}
		return ""
	}
	if macLine(xml) == macLine(xml2) {
		t.Fatal("two clones share a MAC")
	}
}

func TestCloneDomainErrors(t *testing.T) {
	conn := openConnect(t, "xsim")
	if _, err := core.CloneDomain(conn, "ghost", "x"); !core.IsCode(err, core.ErrNoDomain) {
		t.Fatalf("missing source: %v", err)
	}
	if _, err := core.CloneDomain(conn, "a", "a"); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("same name: %v", err)
	}
	if _, err := core.CloneDomain(conn, "a", ""); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("empty name: %v", err)
	}
}

func TestCloneVolume(t *testing.T) {
	conn := openConnect(t, "qsim")
	poolXML := `<pool type='dir'><name>p</name><capacity unit='GiB'>50</capacity><target><path>/var/lib/p</path></target></pool>`
	if err := conn.DefineStoragePool(poolXML); err != nil {
		t.Fatal(err)
	}
	if err := conn.StartStoragePool("p"); err != nil {
		t.Fatal(err)
	}
	volXML := `<volume><name>base.qcow2</name><capacity unit='GiB'>10</capacity><target><format type='qcow2'/></target></volume>`
	if err := conn.CreateVolume("p", volXML); err != nil {
		t.Fatal(err)
	}
	if err := core.CloneVolume(conn, "p", "base.qcow2", "copy.qcow2"); err != nil {
		t.Fatal(err)
	}
	vols, _ := conn.ListVolumes("p")
	if len(vols) != 2 {
		t.Fatalf("volumes %v", vols)
	}
	xml, err := conn.VolumeXML("p", "copy.qcow2")
	if err != nil || !strings.Contains(xml, `type="qcow2"`) || !strings.Contains(xml, "/var/lib/p/copy.qcow2") {
		t.Fatalf("clone volume xml: %v\n%s", err, xml)
	}
	// Capacity accounting includes both.
	info, _ := conn.StoragePoolInfo("p")
	if info.AllocationKiB != 2*10*1024*1024 {
		t.Fatalf("allocation %d", info.AllocationKiB)
	}
	if err := core.CloneVolume(conn, "p", "base.qcow2", "base.qcow2"); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("same name: %v", err)
	}
	if err := core.CloneVolume(conn, "p", "ghost", "x"); err == nil {
		t.Fatal("missing source accepted")
	}
}
