// Package drivers_test exercises every local driver through the uniform
// core API — the central claim of the architecture: identical management
// code runs against qsim (JSON monitor), xsim (hypercalls), csim
// (container engine) and the mock driver.
package drivers_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/drivers/lxc"
	"repro/internal/drivers/qemu"
	qtest "repro/internal/drivers/test"
	"repro/internal/drivers/xen"
	"repro/internal/events"
	"repro/internal/logging"
)

// openers gives one fresh DriverConn per driver under test.
var openers = map[string]func(t *testing.T) core.DriverConn{
	"qsim": func(t *testing.T) core.DriverConn {
		c, err := qemu.New(nil, logging.NewQuiet(logging.Error))
		if err != nil {
			t.Fatal(err)
		}
		return c
	},
	"xsim": func(t *testing.T) core.DriverConn {
		c, err := xen.New(nil, logging.NewQuiet(logging.Error))
		if err != nil {
			t.Fatal(err)
		}
		return c
	},
	"csim": func(t *testing.T) core.DriverConn {
		c, err := lxc.New(nil, logging.NewQuiet(logging.Error))
		if err != nil {
			t.Fatal(err)
		}
		return c
	},
}

func domainXML(driver, name string) string {
	return fmt.Sprintf(`
<domain type='%s'>
  <name>%s</name>
  <description>cpu_util=0.5 dirty_pages_sec=1000 block_iops=100 net_pps=500</description>
  <memory unit='MiB'>1024</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
  <devices>
    <disk type='file' device='disk'>
      <source file='/images/%s.img'/>
      <target dev='vda' bus='virtio'/>
    </disk>
  </devices>
</domain>`, driver, name, name)
}

func forEachDriver(t *testing.T, fn func(t *testing.T, name string, drv core.DriverConn)) {
	for name, open := range openers {
		name, open := name, open
		t.Run(name, func(t *testing.T) {
			fn(t, name, open(t))
		})
	}
}

func TestUniformLifecycle(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		meta, err := drv.DefineDomain(domainXML(name, "vm1"))
		if err != nil {
			t.Fatal(err)
		}
		if meta.Name != "vm1" || meta.UUID == "" || meta.ID != -1 {
			t.Fatalf("meta %+v", meta)
		}
		info, err := drv.DomainInfo("vm1")
		if err != nil || info.State != core.DomainShutoff {
			t.Fatalf("inactive info %+v %v", info, err)
		}
		if info.MaxMemKiB != 1024*1024 || info.VCPUs != 2 {
			t.Fatalf("inactive info from definition: %+v", info)
		}

		if err := drv.CreateDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		info, err = drv.DomainInfo("vm1")
		if err != nil || info.State != core.DomainRunning {
			t.Fatalf("running info %+v %v", info, err)
		}
		meta, _ = drv.LookupDomain("vm1")
		if meta.ID <= 0 {
			t.Fatalf("running domain id %d", meta.ID)
		}

		if err := drv.SuspendDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		if st, _ := drv.DomainInfo("vm1"); st.State != core.DomainPaused {
			t.Fatalf("paused state %v", st.State)
		}
		if err := drv.ResumeDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		if err := drv.RebootDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		if err := drv.ShutdownDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		if st, _ := drv.DomainInfo("vm1"); st.State != core.DomainShutoff {
			t.Fatalf("state after shutdown %v", st.State)
		}

		// Start again, destroy hard.
		if err := drv.CreateDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		if err := drv.DestroyDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		if err := drv.UndefineDomain("vm1"); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.LookupDomain("vm1"); !core.IsCode(err, core.ErrNoDomain) {
			t.Fatalf("lookup after undefine: %v", err)
		}
	})
}

func TestUniformErrorStates(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		if _, err := drv.DefineDomain("<garbage"); !core.IsCode(err, core.ErrXML) {
			t.Fatalf("bad xml: %v", err)
		}
		if _, err := drv.DefineDomain(domainXML("wrongtype", "x")); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("wrong type: %v", err)
		}
		if err := drv.CreateDomain("ghost"); !core.IsCode(err, core.ErrNoDomain) {
			t.Fatalf("create missing: %v", err)
		}
		if _, err := drv.DefineDomain(domainXML(name, "vm")); err != nil {
			t.Fatal(err)
		}
		if err := drv.ShutdownDomain("vm"); !core.IsCode(err, core.ErrOperationInvalid) {
			t.Fatalf("shutdown inactive: %v", err)
		}
		if err := drv.SuspendDomain("vm"); !core.IsCode(err, core.ErrOperationInvalid) {
			t.Fatalf("suspend inactive: %v", err)
		}
		if err := drv.CreateDomain("vm"); err != nil {
			t.Fatal(err)
		}
		if err := drv.CreateDomain("vm"); !core.IsCode(err, core.ErrOperationInvalid) {
			t.Fatalf("double create: %v", err)
		}
		if err := drv.UndefineDomain("vm"); !core.IsCode(err, core.ErrOperationInvalid) {
			t.Fatalf("undefine active: %v", err)
		}
		if _, err := drv.DefineDomain(domainXML(name, "vm")); !core.IsCode(err, core.ErrOperationInvalid) {
			t.Fatalf("redefine active: %v", err)
		}
	})
}

func TestUniformTuningAndStats(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		if _, err := drv.DefineDomain(domainXML(name, "tune")); err != nil {
			t.Fatal(err)
		}
		if err := drv.CreateDomain("tune"); err != nil {
			t.Fatal(err)
		}
		if err := drv.SetDomainMemory("tune", 512*1024); err != nil {
			t.Fatal(err)
		}
		info, err := drv.DomainInfo("tune")
		if err != nil || info.MemKiB != 512*1024 {
			t.Fatalf("balloon: %+v %v", info, err)
		}
		if err := drv.SetDomainMemory("tune", 16*1024*1024); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("over-max balloon: %v", err)
		}
		if err := drv.SetDomainVCPUs("tune", 1); err != nil {
			t.Fatal(err)
		}
		if err := drv.SetDomainVCPUs("tune", 99); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("over-max vcpus: %v", err)
		}
		// Advance the workload and observe non-intrusive stats.
		ma, ok := drv.(core.MachineAccess)
		if !ok {
			t.Fatal("driver lacks machine access")
		}
		m, err := ma.Machine("tune")
		if err != nil {
			t.Fatal(err)
		}
		m.RunFor(2_000_000_000)
		stats, err := drv.DomainStats("tune")
		if err != nil {
			t.Fatal(err)
		}
		if stats.CPUTimeNs == 0 {
			t.Fatalf("no cpu time in stats: %+v", stats)
		}
		if name != "csim" && stats.RdReqs+stats.WrReqs == 0 {
			t.Fatalf("%s: no block activity: %+v", name, stats)
		}
	})
}

func TestUniformListingAndXML(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		for i := 0; i < 3; i++ {
			if _, err := drv.DefineDomain(domainXML(name, fmt.Sprintf("d%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := drv.CreateDomain("d1"); err != nil {
			t.Fatal(err)
		}
		all, _ := drv.ListDomains(0)
		if len(all) != 3 {
			t.Fatalf("all: %v", all)
		}
		active, _ := drv.ListDomains(core.ListActive)
		if len(active) != 1 || active[0] != "d1" {
			t.Fatalf("active: %v", active)
		}
		inactive, _ := drv.ListDomains(core.ListInactive)
		if len(inactive) != 2 {
			t.Fatalf("inactive: %v", inactive)
		}
		xml, err := drv.DomainXML("d0")
		if err != nil || !strings.Contains(xml, "<name>d0</name>") {
			t.Fatalf("xml: %v\n%s", err, xml)
		}
		meta, _ := drv.LookupDomain("d0")
		byUUID, err := drv.LookupDomainByUUID(meta.UUID)
		if err != nil || byUUID.Name != "d0" {
			t.Fatalf("uuid lookup: %+v %v", byUUID, err)
		}
		if _, err := drv.LookupDomainByUUID("not-a-uuid"); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("bad uuid: %v", err)
		}
		if _, err := drv.LookupDomainByUUID("00000000-0000-0000-0000-00000000ffff"); !core.IsCode(err, core.ErrNoDomain) {
			t.Fatalf("unknown uuid: %v", err)
		}
	})
}

func TestUniformCapabilitiesAndNode(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		caps, err := drv.CapabilitiesXML()
		if err != nil || !strings.Contains(caps, "<capabilities>") {
			t.Fatalf("caps: %v", err)
		}
		if !strings.Contains(caps, fmt.Sprintf(`type="%s"`, name)) {
			t.Fatalf("caps missing domain type %s:\n%s", name, caps)
		}
		ni, err := drv.NodeInfo()
		if err != nil || ni.CPUs == 0 || ni.MemoryKiB == 0 {
			t.Fatalf("nodeinfo: %+v %v", ni, err)
		}
		v, err := drv.Version()
		if err != nil || v == "" {
			t.Fatalf("version: %q %v", v, err)
		}
		hn, err := drv.Hostname()
		if err != nil || hn == "" {
			t.Fatalf("hostname: %q %v", hn, err)
		}
	})
}

func TestLifecycleEvents(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		src, ok := drv.(core.EventSource)
		if !ok {
			t.Fatal("driver is not an event source")
		}
		col := events.NewCollector()
		src.EventBus().Subscribe("", nil, col.Callback())
		if _, err := drv.DefineDomain(domainXML(name, "ev")); err != nil {
			t.Fatal(err)
		}
		if err := drv.CreateDomain("ev"); err != nil {
			t.Fatal(err)
		}
		if err := drv.SuspendDomain("ev"); err != nil {
			t.Fatal(err)
		}
		if err := drv.ResumeDomain("ev"); err != nil {
			t.Fatal(err)
		}
		if err := drv.DestroyDomain("ev"); err != nil {
			t.Fatal(err)
		}
		if err := drv.UndefineDomain("ev"); err != nil {
			t.Fatal(err)
		}
		var types []events.Type
		for _, ev := range col.Events() {
			types = append(types, ev.Type)
		}
		want := []events.Type{
			events.EventDefined, events.EventStarted, events.EventSuspended,
			events.EventResumed, events.EventStopped, events.EventUndefined,
		}
		if len(types) != len(want) {
			t.Fatalf("events %v", types)
		}
		for i := range want {
			if types[i] != want[i] {
				t.Fatalf("event %d = %v, want %v", i, types[i], want[i])
			}
		}
	})
}

func TestNetworkAttachmentOnCreate(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		ns, ok := drv.(core.NetworkSupport)
		if !ok {
			t.Skip("no network subsystem")
		}
		netXML := `
<network>
  <name>default</name>
  <forward mode='nat'/>
  <ip address='10.10.0.1' netmask='255.255.255.0'>
    <dhcp><range start='10.10.0.10' end='10.10.0.100'/></dhcp>
  </ip>
</network>`
		if err := ns.DefineNetwork(netXML); err != nil {
			t.Fatal(err)
		}
		xml := fmt.Sprintf(`
<domain type='%s'>
  <name>netvm</name>
  <memory unit='MiB'>256</memory>
  <vcpu>1</vcpu>
  <os><type>hvm</type></os>
  <devices>
    <interface type='network'>
      <mac address='52:54:00:12:34:56'/>
      <source network='default'/>
    </interface>
  </devices>
</domain>`, name)
		if _, err := drv.DefineDomain(xml); err != nil {
			t.Fatal(err)
		}
		// Network down: create must fail and leave the domain inactive.
		if err := drv.CreateDomain("netvm"); err == nil {
			t.Fatal("create with inactive network accepted")
		}
		if info, _ := drv.DomainInfo("netvm"); info.State != core.DomainShutoff {
			t.Fatalf("failed create left state %v", info.State)
		}
		if err := ns.StartNetwork("default"); err != nil {
			t.Fatal(err)
		}
		if err := drv.CreateDomain("netvm"); err != nil {
			t.Fatal(err)
		}
		leases, err := ns.NetworkDHCPLeases("default")
		if err != nil || len(leases) != 1 {
			t.Fatalf("leases %v %v", leases, err)
		}
		if leases[0].MAC != "52:54:00:12:34:56" || leases[0].Hostname != "netvm" {
			t.Fatalf("lease %+v", leases[0])
		}
		// Stopping the domain releases the lease.
		if err := drv.DestroyDomain("netvm"); err != nil {
			t.Fatal(err)
		}
		leases, _ = ns.NetworkDHCPLeases("default")
		if len(leases) != 0 {
			t.Fatalf("lease not released: %v", leases)
		}
	})
}

func TestTestDriverDefaultEnvironment(t *testing.T) {
	drv, err := qtest.New(nil, logging.NewQuiet(logging.Error))
	if err != nil {
		t.Fatal(err)
	}
	names, err := drv.ListDomains(core.ListActive)
	if err != nil || len(names) != 1 || names[0] != "test" {
		t.Fatalf("default domains: %v %v", names, err)
	}
	info, err := drv.DomainInfo("test")
	if err != nil || info.State != core.DomainRunning {
		t.Fatalf("default domain: %+v %v", info, err)
	}
	ns := drv.(core.NetworkSupport)
	nets, _ := ns.ListNetworks()
	if len(nets) != 1 || nets[0] != "default" {
		t.Fatalf("default networks: %v", nets)
	}
	if active, _ := ns.NetworkIsActive("default"); !active {
		t.Fatal("default network inactive")
	}
	ss := drv.(core.StorageSupport)
	pools, _ := ss.ListStoragePools()
	if len(pools) != 1 || pools[0] != "default-pool" {
		t.Fatalf("default pools: %v", pools)
	}
	pi, _ := ss.StoragePoolInfo("default-pool")
	if !pi.Active || pi.CapacityKiB != 100*1024*1024 {
		t.Fatalf("pool info %+v", pi)
	}
}

func TestStorageSupportMatrix(t *testing.T) {
	// qsim manages storage; xsim and csim do not.
	q := openers["qsim"](t)
	if _, ok := q.(core.StorageSupport); !ok {
		t.Fatal("qsim driver must support storage")
	}
	if err := q.(core.StorageSupport).DefineStoragePool(qtest.DefaultPoolXML); err != nil {
		t.Fatal(err)
	}
	x := openers["xsim"](t)
	if err := x.(core.StorageSupport).DefineStoragePool(qtest.DefaultPoolXML); !core.IsCode(err, core.ErrNoSupport) {
		t.Fatalf("xsim storage: %v", err)
	}
	c := openers["csim"](t)
	if _, err := c.(core.StorageSupport).ListStoragePools(); !core.IsCode(err, core.ErrNoSupport) {
		t.Fatalf("csim storage: %v", err)
	}
}

func TestQsimBootModelSlowerThanCsim(t *testing.T) {
	// The abstraction must preserve native performance envelopes: a full
	// VM boot is modelled far slower than a container start.
	q := openers["qsim"](t)
	c := openers["csim"](t)
	if _, err := q.DefineDomain(domainXML("qsim", "b")); err != nil {
		t.Fatal(err)
	}
	if err := q.CreateDomain("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineDomain(domainXML("csim", "b")); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDomain("b"); err != nil {
		t.Fatal(err)
	}
	qm, _ := q.(core.MachineAccess).Machine("b")
	cm, _ := c.(core.MachineAccess).Machine("b")
	qBoot := qm.Stats().SimTimeNs
	cBoot := cm.Stats().SimTimeNs
	if qBoot <= cBoot*10 {
		t.Fatalf("modelled boots: qsim %d ns vs csim %d ns — envelope collapsed", qBoot, cBoot)
	}
}

func TestCrashDetectionEmitsEvent(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		col := events.NewCollector()
		drv.(core.EventSource).EventBus().Subscribe("", []events.Type{events.EventCrashed}, col.Callback())
		if _, err := drv.DefineDomain(domainXML(name, "cr")); err != nil {
			t.Fatal(err)
		}
		if err := drv.CreateDomain("cr"); err != nil {
			t.Fatal(err)
		}
		m, err := drv.(core.MachineAccess).Machine("cr")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Crash(); err != nil {
			t.Fatal(err)
		}
		// The monitor's next observation surfaces the crash exactly once.
		for i := 0; i < 3; i++ {
			if info, err := drv.DomainInfo("cr"); err != nil || info.State != core.DomainCrashed {
				t.Fatalf("info after crash: %+v %v", info, err)
			}
		}
		if col.Len() != 1 {
			t.Fatalf("crash events: %d, want exactly 1", col.Len())
		}
		if col.Events()[0].Domain != "cr" {
			t.Fatalf("event %+v", col.Events()[0])
		}
		// Recovery and a second crash emit again.
		if err := drv.DestroyDomain("cr"); err != nil {
			t.Fatal(err)
		}
		if err := drv.CreateDomain("cr"); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.DomainInfo("cr"); err != nil {
			t.Fatal(err)
		}
		m2, _ := drv.(core.MachineAccess).Machine("cr")
		if err := m2.Crash(); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.DomainStats("cr"); err != nil {
			t.Fatal(err)
		}
		if col.Len() != 2 {
			t.Fatalf("crash events after second crash: %d, want 2", col.Len())
		}
	})
}
