// Package xen implements the xsim driver: the uniform API translated
// into xsim's native hypercall table, issued from Domain0. Where an
// operation sequence allows it, the driver batches hypercalls through a
// multicall, exercising the paravirt batching optimisation.
package xen

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/drivers/common"
	"repro/internal/hyper"
	"repro/internal/hyper/xsim"
	"repro/internal/logging"
	"repro/internal/nodeinfo"
	"repro/internal/uri"
	"repro/internal/xmlspec"
)

// hooks drives xsim through hypercalls.
type hooks struct {
	mu    sync.Mutex
	hv    *xsim.Hypervisor
	doms  map[string]xsim.DomID
	batch bool // use multicall batching where possible
}

func (h *hooks) Type() string { return "xsim" }

func (h *hooks) Version() (string, error) {
	res := h.hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpVersion})
	if res.Err != nil {
		return "", res.Err
	}
	return res.Value.(string), nil
}

func (h *hooks) GuestOSType() string { return "hvm" }

func (h *hooks) Start(def *xmlspec.Domain) error {
	cfg, err := common.DefToConfig(def)
	if err != nil {
		return err
	}
	res := h.hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainCreate, Args: xsim.CreateArgs{
		Name:          cfg.Name,
		VCPUs:         cfg.VCPUs,
		MaxVCPUs:      cfg.MaxVCPUs,
		MemKiB:        cfg.MemKiB,
		MaxMemKiB:     cfg.MaxMemKiB,
		CPUUtil:       cfg.CPUUtil,
		DirtyPagesSec: cfg.DirtyPagesSec,
		BlockIOPS:     cfg.BlockIOPS,
		NetPPS:        cfg.NetPPS,
	}})
	if res.Err != nil {
		return res.Err
	}
	h.mu.Lock()
	h.doms[def.Name] = res.Value.(xsim.DomID)
	h.mu.Unlock()
	return nil
}

func (h *hooks) domID(name string) (xsim.DomID, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	id, ok := h.doms[name]
	if !ok {
		return 0, fmt.Errorf("xen: no native domain for %q", name)
	}
	return id, nil
}

func (h *hooks) Stop(name string, graceful bool) error {
	id, err := h.domID(name)
	if err != nil {
		return err
	}
	if graceful {
		if h.batch {
			// Shutdown then reap in one privilege transition.
			results := h.hv.Multicall(xsim.Domain0, []xsim.Hypercall{
				{Op: xsim.OpDomainShutdown, Dom: id},
				{Op: xsim.OpDomainDestroy, Dom: id},
			})
			for _, r := range results {
				if r.Err != nil {
					return r.Err
				}
			}
		} else {
			if r := h.hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainShutdown, Dom: id}); r.Err != nil {
				return r.Err
			}
			if r := h.hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainDestroy, Dom: id}); r.Err != nil {
				return r.Err
			}
		}
	} else if r := h.hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainDestroy, Dom: id}); r.Err != nil {
		return r.Err
	}
	h.mu.Lock()
	delete(h.doms, name)
	h.mu.Unlock()
	return nil
}

func (h *hooks) call(name string, op xsim.Op, args interface{}) error {
	id, err := h.domID(name)
	if err != nil {
		return err
	}
	return h.hv.Call(xsim.Domain0, xsim.Hypercall{Op: op, Dom: id, Args: args}).Err
}

func (h *hooks) Reboot(name string) error  { return h.call(name, xsim.OpDomainReboot, nil) }
func (h *hooks) Suspend(name string) error { return h.call(name, xsim.OpDomainPause, nil) }
func (h *hooks) Resume(name string) error  { return h.call(name, xsim.OpDomainUnpause, nil) }

func (h *hooks) info(name string) (xsim.DomainInfo, error) {
	id, err := h.domID(name)
	if err != nil {
		return xsim.DomainInfo{}, err
	}
	res := h.hv.Call(xsim.Domain0, xsim.Hypercall{Op: xsim.OpDomainGetInfo, Dom: id})
	if res.Err != nil {
		return xsim.DomainInfo{}, res.Err
	}
	return res.Value.(xsim.DomainInfo), nil
}

func (h *hooks) Info(name string) (core.DomainInfo, error) {
	xi, err := h.info(name)
	if err != nil {
		return core.DomainInfo{}, err
	}
	return core.DomainInfo{
		State:     common.StateFromHyper(xi.State),
		MaxMemKiB: xi.MaxMemKiB,
		MemKiB:    xi.MemKiB,
		VCPUs:     xi.VCPUs,
		CPUTimeNs: xi.CPUTimeNs,
	}, nil
}

func (h *hooks) Stats(name string) (core.DomainStats, error) {
	// The hypercall interface only exposes the classic info block;
	// extended I/O stats come from the substrate machine (xentop-style
	// instrumentation lives hypervisor-side too).
	xi, err := h.info(name)
	if err != nil {
		return core.DomainStats{}, err
	}
	id, _ := h.domID(name)
	if m, ok := h.hv.Machine(id); ok {
		return common.StatsFromMachine(m.Stats()), nil
	}
	return core.DomainStats{
		State:     common.StateFromHyper(xi.State),
		CPUTimeNs: xi.CPUTimeNs,
		MemKiB:    xi.MemKiB,
		MaxMemKiB: xi.MaxMemKiB,
		VCPUs:     xi.VCPUs,
	}, nil
}

func (h *hooks) SetMemory(name string, kib uint64) error {
	return h.call(name, xsim.OpDomainSetMaxMem, kib)
}

func (h *hooks) SetVCPUs(name string, n int) error {
	return h.call(name, xsim.OpDomainSetVCPUs, n)
}

func (h *hooks) ID(name string) int {
	id, err := h.domID(name)
	if err != nil {
		return -1
	}
	return int(id)
}

func (h *hooks) Machine(name string) (*hyper.Machine, error) {
	id, err := h.domID(name)
	if err != nil {
		return nil, err
	}
	m, ok := h.hv.Machine(id)
	if !ok {
		return nil, fmt.Errorf("xen: domain %q vanished", name)
	}
	return m, nil
}

// New opens a xen driver connection on a fresh xsim hypervisor.
func New(u *uri.URI, log *logging.Logger) (core.DriverConn, error) {
	node, err := nodeinfo.NewNode("xsimhost", nodeinfo.ProfileServer)
	if err != nil {
		return nil, err
	}
	batch := true
	if u != nil {
		if v, ok := u.Param("batch"); ok && v == "0" {
			batch = false
		}
	}
	return NewOn(xsim.New(node), node, batch, log), nil
}

// NewOn builds a driver connection over an existing hypervisor instance.
// batch enables multicall batching (the A3 ablation switches it off).
func NewOn(hv *xsim.Hypervisor, node *nodeinfo.Node, batch bool, log *logging.Logger) core.DriverConn {
	h := &hooks{hv: hv, doms: make(map[string]xsim.DomID), batch: batch}
	// Xen-style hosts manage networks but delegate storage to Domain0's
	// stack; the driver therefore exposes networks only.
	return common.New(h, common.Options{Node: node, Networks: true, Storage: false, Log: log})
}

// Register installs the xen driver in the core registry under the
// "xsim" scheme.
func Register(log *logging.Logger) {
	core.Register("xsim", func(u *uri.URI) (core.DriverConn, error) {
		return New(u, log)
	})
}
