package remote

import (
	"repro/internal/core"
	"repro/internal/wire"
)

var (
	_ core.SnapshotSupport    = (*Conn)(nil)
	_ core.ManagedSaveSupport = (*Conn)(nil)
)

// CreateSnapshot implements core.SnapshotSupport.
func (c *Conn) CreateSnapshot(domain, xmlDesc string) (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcSnapshotCreate, &wire.SnapshotCreateArgs{
		Domain: domain, XML: xmlDesc,
	}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// ListSnapshots implements core.SnapshotSupport.
func (c *Conn) ListSnapshots(domain string) ([]string, error) {
	var r wire.NameListReply
	if err := c.call(wire.ProcSnapshotList, &wire.NameArgs{Name: domain}, &r); err != nil {
		return nil, err
	}
	return r.Names, nil
}

// SnapshotXML implements core.SnapshotSupport.
func (c *Conn) SnapshotXML(domain, snapshot string) (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcSnapshotGetXML, &wire.SnapshotArgs{
		Domain: domain, Name: snapshot,
	}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// RevertSnapshot implements core.SnapshotSupport.
func (c *Conn) RevertSnapshot(domain, snapshot string) error {
	return c.call(wire.ProcSnapshotRevert, &wire.SnapshotArgs{
		Domain: domain, Name: snapshot,
	}, nil)
}

// DeleteSnapshot implements core.SnapshotSupport.
func (c *Conn) DeleteSnapshot(domain, snapshot string) error {
	return c.call(wire.ProcSnapshotDelete, &wire.SnapshotArgs{
		Domain: domain, Name: snapshot,
	}, nil)
}

// ManagedSave implements core.ManagedSaveSupport.
func (c *Conn) ManagedSave(domain string) error {
	return c.nameOp(wire.ProcManagedSave, domain)
}

// HasManagedSave implements core.ManagedSaveSupport.
func (c *Conn) HasManagedSave(domain string) (bool, error) {
	var r wire.BoolReply
	if err := c.call(wire.ProcHasManagedSave, &wire.NameArgs{Name: domain}, &r); err != nil {
		return false, err
	}
	return r.Value, nil
}

// ManagedSaveRemove implements core.ManagedSaveSupport.
func (c *Conn) ManagedSaveRemove(domain string) error {
	return c.nameOp(wire.ProcManagedSaveRemove, domain)
}

var _ core.DeviceSupport = (*Conn)(nil)

// AttachDevice implements core.DeviceSupport.
func (c *Conn) AttachDevice(domain, deviceXML string) error {
	return c.call(wire.ProcDeviceAttach, &wire.DeviceArgs{Domain: domain, XML: deviceXML}, nil)
}

// DetachDevice implements core.DeviceSupport.
func (c *Conn) DetachDevice(domain, deviceXML string) error {
	return c.call(wire.ProcDeviceDetach, &wire.DeviceArgs{Domain: domain, XML: deviceXML}, nil)
}
