// Package remote implements the remote driver: the client-side driver
// that tunnels the uniform API to a daemon over the wire protocol. It is
// selected automatically for remote URIs and for schemes no local driver
// claims, which is how one management application transparently reaches
// hypervisors on other hosts.
package remote

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/memnet"
	"repro/internal/rpc"
	"repro/internal/uri"
	"repro/internal/wire"
)

// DefaultTCPPort is the daemon's conventional TCP port.
const DefaultTCPPort = 16509

// DefaultSocketPath is the daemon's conventional unix socket.
const DefaultSocketPath = "/var/run/govirt/govirt-sock"

// DefaultCallTimeout bounds every remote call unless the URI overrides
// it ("call_timeout_ms" parameter; 0 disables). Without a bound, a
// daemon that accepts the connection but never answers wedges callers
// forever — the exact failure mode the chaos suite injects.
const DefaultCallTimeout = 30 * time.Second

// DefaultOverloadRetryCap bounds how long the driver sleeps to honor a
// server retry-after hint before surfacing the typed ErrOverloaded to
// the caller instead. Overridden by the "overload_retry_ms" URI
// parameter; 0 disables the retry entirely.
const DefaultOverloadRetryCap = 100 * time.Millisecond

// Conn is the remote driver connection.
type Conn struct {
	client        *rpc.Client
	bus           *events.Bus
	cbID          int32         // server-side callback id, 0 when unregistered
	overloadRetry time.Duration // retry-after honor cap; 0 = never retry

	wmu     sync.Mutex
	watches map[int32]*watchSub // server subscription id -> open stream
}

var (
	_ core.DriverConn     = (*Conn)(nil)
	_ core.EventSource    = (*Conn)(nil)
	_ core.NetworkSupport = (*Conn)(nil)
	_ core.StorageSupport = (*Conn)(nil)
	_ core.BulkMonitor    = (*Conn)(nil)
	_ core.WatchSource    = (*Conn)(nil)
	_ core.ConnHealth     = (*Conn)(nil)
)

// Open dials the daemon named by the URI, authenticates if the service
// demands it, and opens the server-side driver connection. Keepalive
// probing is controlled by the "keepalive_interval" (seconds) and
// "keepalive_count" URI parameters; the default is a 5 s interval with
// 5 missed probes, "keepalive_interval=0" disables probing.
func Open(u *uri.URI) (*Conn, error) {
	nc, err := dial(u)
	if err != nil {
		remoteConnErrors.Inc()
		return nil, err
	}
	c := &Conn{bus: events.NewBus(), overloadRetry: overloadRetryFor(u)}
	c.client = rpc.NewClientKeepalive(nc, rpc.ProgramRemote, c.handleEvent, keepaliveFor(u))
	c.client.SetCallTimeout(callTimeoutFor(u))
	// "write_coalesce=N" batches outgoing frames through an N-byte
	// buffered writer flushed on idle — fewer syscalls under pipelined
	// load at the cost of a flusher goroutine.
	if v, ok := u.Param("write_coalesce"); ok {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			c.client.EnableWriteCoalescing(n)
		}
	}

	if err := c.authenticate(u); err != nil {
		c.client.Close()
		remoteConnErrors.Inc()
		return nil, err
	}
	if err := c.call(wire.ProcConnectOpen, &wire.ConnectOpenArgs{URI: u.String()}, nil); err != nil {
		c.client.Close()
		remoteConnErrors.Inc()
		return nil, err
	}
	remoteConnects.Inc()
	// Subscribe to all lifecycle events so the local bus mirrors the
	// daemon-side one.
	var reg wire.EventRegisterReply
	if err := c.call(wire.ProcEventRegister, &wire.EventRegisterArgs{}, &reg); err == nil {
		c.cbID = reg.CallbackID
	}
	return c, nil
}

// keepaliveFor derives the probing configuration from URI parameters.
func keepaliveFor(u *uri.URI) rpc.KeepaliveConfig {
	cfg := rpc.KeepaliveConfig{Interval: 5 * time.Second, Count: 5}
	if v, ok := u.Param("keepalive_interval"); ok {
		secs, err := strconv.Atoi(v)
		if err != nil || secs < 0 {
			return rpc.KeepaliveConfig{}
		}
		cfg.Interval = time.Duration(secs) * time.Second
	}
	if v, ok := u.Param("keepalive_count"); ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return rpc.KeepaliveConfig{}
		}
		cfg.Count = n
	}
	return cfg
}

// overloadRetryFor derives the retry-after honor cap from the URI;
// "overload_retry_ms=0" disables retrying so callers observe every
// rejection (the fleet manager prefers that: it has its own backoff).
func overloadRetryFor(u *uri.URI) time.Duration {
	if v, ok := u.Param("overload_retry_ms"); ok {
		ms, err := strconv.Atoi(v)
		if err == nil && ms >= 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return DefaultOverloadRetryCap
}

// callTimeoutFor derives the per-call deadline from the URI;
// "call_timeout_ms=0" disables it.
func callTimeoutFor(u *uri.URI) time.Duration {
	if v, ok := u.Param("call_timeout_ms"); ok {
		ms, err := strconv.Atoi(v)
		if err == nil && ms >= 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return DefaultCallTimeout
}

func dial(u *uri.URI) (net.Conn, error) {
	switch u.EffectiveTransport() {
	case uri.TransportUnix:
		path := DefaultSocketPath
		if p, ok := u.Param("socket"); ok {
			path = p
		}
		nc, err := net.DialTimeout("unix", path, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("remote: dial unix %s: %w", path, err)
		}
		return nc, nil
	case uri.TransportTCP, uri.TransportTLS:
		// The TLS transport is carried over the same stream in this
		// reproduction; the handshake-cost model lives in the auth
		// exchange (see DESIGN.md, Substitutions).
		port := u.Port
		if port == 0 {
			port = DefaultTCPPort
		}
		addr := fmt.Sprintf("%s:%d", u.Host, port)
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, fmt.Errorf("remote: dial tcp %s: %w", addr, err)
		}
		return nc, nil
	case uri.TransportMem:
		// In-process endpoint: the host part names a memnet listener.
		nc, err := memnet.Dial(u.Host)
		if err != nil {
			return nil, fmt.Errorf("remote: %w", err)
		}
		return nc, nil
	default:
		return nil, fmt.Errorf("remote: transport %q not supported", u.EffectiveTransport())
	}
}

// authenticate performs the service's required mechanism, if any.
// SIM-PLAIN takes the username from the URI and the password from the
// "password" URI parameter.
func (c *Conn) authenticate(u *uri.URI) error {
	var mechs wire.AuthListReply
	if err := c.call(wire.ProcAuthList, &struct{}{}, &mechs); err != nil {
		return err
	}
	if len(mechs.Mechanisms) == 0 {
		return nil
	}
	for _, m := range mechs.Mechanisms {
		if m != "SIM-PLAIN" {
			continue
		}
		user := u.Username
		pass, _ := u.Param("password")
		if user == "" {
			return core.Errorf(core.ErrAuthFailed, "service requires authentication; no username in URI")
		}
		data := append(append([]byte(user), 0), []byte(pass)...)
		var reply wire.SASLStartReply
		if err := c.call(wire.ProcAuthSASLStart, &wire.SASLStartArgs{
			Mechanism: "SIM-PLAIN", Data: data,
		}, &reply); err != nil {
			return err
		}
		if !reply.Complete {
			return core.Errorf(core.ErrAuthFailed, "authentication did not complete")
		}
		return nil
	}
	return core.Errorf(core.ErrAuthFailed, "no mutually supported mechanism in %v", mechs.Mechanisms)
}

// call performs one RPC, translating remote errors to API errors.
// Transport-level failures (the daemon died or became unreachable
// mid-call) surface as the typed, retryable ErrHostUnreachable so a
// multi-host scheduler can distinguish host-down from operation-invalid.
// An ErrOverloaded admission rejection is retried once after the
// server's retry-after hint when the hint fits under the driver's honor
// cap: the rejection happened before dispatch, so the operation never
// ran and repeating it is always safe.
func (c *Conn) call(proc uint32, args, ret interface{}) error {
	err := c.callOnce(proc, args, ret)
	if cap := c.overloadRetry; cap > 0 && core.IsCode(err, core.ErrOverloaded) {
		if ra := core.RetryAfterOf(err); ra > 0 && ra <= cap {
			remoteOverloadRetries.Inc()
			time.Sleep(ra)
			err = c.callOnce(proc, args, ret)
		}
	}
	return err
}

func (c *Conn) callOnce(proc uint32, args, ret interface{}) error {
	start := time.Now()
	err := c.client.Call(proc, args, ret)
	callLatency(proc).Observe(time.Since(start))
	remoteCalls.Inc()
	if err == nil {
		return nil
	}
	remoteCallErrs.Inc()
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		cerr := &core.Error{Code: core.ErrorCode(re.Code), Message: re.Message}
		if re.RetryAfterMs > 0 {
			cerr.RetryAfter = time.Duration(re.RetryAfterMs) * time.Millisecond
		}
		return cerr
	}
	var te *rpc.TransportError
	if errors.As(err, &te) {
		return core.Errorf(core.ErrHostUnreachable, "%v", te)
	}
	return core.Errorf(core.ErrRPC, "%v", err)
}

// handleEvent decodes unsolicited server frames: legacy lifecycle
// events re-emit onto the local bus, watch-stream frames go through
// per-subscription sequence tracking. It runs on the client's reader
// goroutine, so watch handlers must not block.
func (c *Conn) handleEvent(proc uint32, payload []byte) {
	switch proc {
	case wire.ProcEventLifecycle:
		var ev wire.LifecycleEvent
		if err := rpc.Unmarshal(payload, &ev); err != nil {
			return
		}
		c.bus.Emit(events.Event{
			Type:   events.Type(ev.Type),
			Domain: ev.Domain,
			UUID:   ev.UUID,
			Detail: ev.Detail,
		})
	case wire.ProcEventWatch:
		c.handleWatchFrame(payload)
	}
}

// handleWatchFrame routes one watch frame to its stream, detecting
// sequence gaps. The per-subscription stream starts at sequence 1, so a
// first frame above 1 is already a gap — events queued between the
// server-side subscribe and the first delivered frame can never be lost
// silently. Heartbeats (Type 0) only reach the handler when they reveal
// a gap; a heartbeat confirming the last seen sequence is absorbed.
func (c *Conn) handleWatchFrame(payload []byte) {
	var ev wire.WatchEvent
	if err := rpc.Unmarshal(payload, &ev); err != nil {
		return // corrupt frame; the sequence gap it leaves triggers a resync
	}
	c.wmu.Lock()
	ws, ok := c.watches[ev.SubscriptionID]
	if !ok {
		c.wmu.Unlock()
		return
	}
	var gap, deliver bool
	if ev.Type == 0 { // heartbeat: carries the last assigned seq
		gap = ev.Seq != ws.lastSeq
		if ev.Seq > ws.lastSeq {
			ws.lastSeq = ev.Seq
		}
		deliver = gap
	} else {
		gap = ev.Seq != ws.lastSeq+1
		ws.lastSeq = ev.Seq
		deliver = true
	}
	h := ws.handler
	c.wmu.Unlock()
	if deliver {
		h(events.Event{
			Type:   events.Type(ev.Type),
			Domain: ev.Domain,
			UUID:   ev.UUID,
			Detail: ev.Detail,
			Seq:    ev.Seq,
		}, gap)
	}
}

// watchSub is one open watch stream on the client side.
type watchSub struct {
	conn    *Conn
	id      int32
	handler core.WatchHandler
	lastSeq uint64
}

// Close implements core.WatchHandle.
func (w *watchSub) Close() error {
	w.conn.wmu.Lock()
	_, open := w.conn.watches[w.id]
	delete(w.conn.watches, w.id)
	w.conn.wmu.Unlock()
	if !open {
		return nil
	}
	return w.conn.call(wire.ProcEventUnsubscribe, &wire.EventUnsubscribeArgs{SubscriptionID: w.id}, nil)
}

// WatchEvents implements core.WatchSource: it opens a server-push watch
// stream. The handler runs on the connection's reader goroutine and
// must not block; gap deliveries mean events were lost and the consumer
// should resync. A stream does not survive the connection — after a
// reconnect the consumer subscribes again on the new connection (and
// resyncs, since anything may have happened in between).
func (c *Conn) WatchEvents(domain string, types []events.Type, h core.WatchHandler) (core.WatchHandle, error) {
	if h == nil {
		return nil, core.Errorf(core.ErrInvalidArg, "watch handler must not be nil")
	}
	wtypes := make([]uint32, len(types))
	for i, t := range types {
		wtypes[i] = uint32(t)
	}
	var reply wire.EventSubscribeReply
	if err := c.call(wire.ProcEventSubscribe, &wire.EventSubscribeArgs{
		Domain: domain, Types: wtypes,
	}, &reply); err != nil {
		return nil, err
	}
	ws := &watchSub{conn: c, id: reply.SubscriptionID, handler: h}
	c.wmu.Lock()
	if c.watches == nil {
		c.watches = make(map[int32]*watchSub)
	}
	c.watches[reply.SubscriptionID] = ws
	c.wmu.Unlock()
	return ws, nil
}

// Alive implements core.ConnHealth: false once the transport failed
// (read error, keepalive timeout) or the connection was closed. One
// atomic load — checking an idle connection's health costs no traffic.
func (c *Conn) Alive() bool { return c.client.Alive() }

// EventBus implements core.EventSource.
func (c *Conn) EventBus() *events.Bus { return c.bus }

// Close implements core.DriverConn.
func (c *Conn) Close() error {
	c.call(wire.ProcConnectClose, &struct{}{}, nil) //nolint:errcheck // best effort
	return c.client.Close()
}

// Type implements core.DriverConn. The remote driver reports the
// underlying driver's type, preserving transparency.
func (c *Conn) Type() string {
	var r wire.StringReply
	if err := c.call(wire.ProcGetType, &struct{}{}, &r); err != nil {
		return "remote"
	}
	return r.Value
}

// Version implements core.DriverConn.
func (c *Conn) Version() (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcGetVersion, &struct{}{}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// Hostname implements core.DriverConn.
func (c *Conn) Hostname() (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcGetHostname, &struct{}{}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// CapabilitiesXML implements core.DriverConn.
func (c *Conn) CapabilitiesXML() (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcGetCapabilities, &struct{}{}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// NodeInfo implements core.DriverConn.
func (c *Conn) NodeInfo() (core.NodeInfo, error) {
	var r wire.NodeInfoReply
	if err := c.call(wire.ProcNodeGetInfo, &struct{}{}, &r); err != nil {
		return core.NodeInfo{}, err
	}
	return core.NodeInfo{
		Model: r.Model, MemoryKiB: r.MemoryKiB, CPUs: int(r.CPUs), MHz: int(r.MHz),
		NUMANodes: int(r.NUMANodes), Sockets: int(r.Sockets), Cores: int(r.Cores),
		Threads: int(r.Threads),
	}, nil
}

// ListDomains implements core.DriverConn.
func (c *Conn) ListDomains(flags core.ListFlags) ([]string, error) {
	var r wire.NameListReply
	if err := c.call(wire.ProcDomainList, &wire.DomainListArgs{Flags: uint32(flags)}, &r); err != nil {
		return nil, err
	}
	return r.Names, nil
}

func metaFromWire(m wire.DomainMeta) core.DomainMeta {
	return core.DomainMeta{Name: m.Name, UUID: m.UUID, ID: int(m.ID)}
}

// LookupDomain implements core.DriverConn.
func (c *Conn) LookupDomain(name string) (core.DomainMeta, error) {
	var r wire.DomainMetaReply
	if err := c.call(wire.ProcDomainLookupByName, &wire.NameArgs{Name: name}, &r); err != nil {
		return core.DomainMeta{}, err
	}
	return metaFromWire(r.Meta), nil
}

// LookupDomainByUUID implements core.DriverConn.
func (c *Conn) LookupDomainByUUID(uuidStr string) (core.DomainMeta, error) {
	var r wire.DomainMetaReply
	if err := c.call(wire.ProcDomainLookupByUUID, &wire.UUIDArgs{UUID: uuidStr}, &r); err != nil {
		return core.DomainMeta{}, err
	}
	return metaFromWire(r.Meta), nil
}

// DefineDomain implements core.DriverConn.
func (c *Conn) DefineDomain(xmlDesc string) (core.DomainMeta, error) {
	var r wire.DomainMetaReply
	if err := c.call(wire.ProcDomainDefine, &wire.XMLArgs{XML: xmlDesc}, &r); err != nil {
		return core.DomainMeta{}, err
	}
	return metaFromWire(r.Meta), nil
}

func (c *Conn) nameOp(proc uint32, name string) error {
	return c.call(proc, &wire.NameArgs{Name: name}, nil)
}

// UndefineDomain implements core.DriverConn.
func (c *Conn) UndefineDomain(name string) error { return c.nameOp(wire.ProcDomainUndefine, name) }

// CreateDomain implements core.DriverConn.
func (c *Conn) CreateDomain(name string) error { return c.nameOp(wire.ProcDomainCreate, name) }

// DestroyDomain implements core.DriverConn.
func (c *Conn) DestroyDomain(name string) error { return c.nameOp(wire.ProcDomainDestroy, name) }

// ShutdownDomain implements core.DriverConn.
func (c *Conn) ShutdownDomain(name string) error { return c.nameOp(wire.ProcDomainShutdown, name) }

// RebootDomain implements core.DriverConn.
func (c *Conn) RebootDomain(name string) error { return c.nameOp(wire.ProcDomainReboot, name) }

// SuspendDomain implements core.DriverConn.
func (c *Conn) SuspendDomain(name string) error { return c.nameOp(wire.ProcDomainSuspend, name) }

// ResumeDomain implements core.DriverConn.
func (c *Conn) ResumeDomain(name string) error { return c.nameOp(wire.ProcDomainResume, name) }

// DomainInfo implements core.DriverConn.
func (c *Conn) DomainInfo(name string) (core.DomainInfo, error) {
	var r wire.DomainInfoReply
	if err := c.call(wire.ProcDomainGetInfo, &wire.NameArgs{Name: name}, &r); err != nil {
		return core.DomainInfo{}, err
	}
	return core.DomainInfo{
		State: core.DomainState(r.State), MaxMemKiB: r.MaxMemKiB,
		MemKiB: r.MemKiB, VCPUs: int(r.VCPUs), CPUTimeNs: r.CPUTimeNs,
	}, nil
}

// DomainListInfo implements core.BulkMonitor: one round trip replaces
// the DomainList + N×DomainGetInfo sweep. An older daemon without the
// procedure answers ErrNoSupport, which core.ListDomainInfo turns into
// the per-domain fallback.
func (c *Conn) DomainListInfo(flags core.ListFlags, names []string) ([]core.NamedDomainInfo, error) {
	// Rows decode straight into the core type: wire.DomainInfoRow pins
	// the layout, but the bytes land in the caller's final slice with no
	// per-row conversion.
	var r struct{ Domains []core.NamedDomainInfo }
	err := c.call(wire.ProcDomainListInfo, &wire.DomainListInfoArgs{
		Flags: uint32(flags), Names: names,
	}, &r)
	if err != nil {
		return nil, err
	}
	return r.Domains, nil
}

// NodeInventory implements core.BulkMonitor.
func (c *Conn) NodeInventory() (core.NodeInventory, error) {
	var inv core.NodeInventory
	if err := c.NodeInventoryInto(&inv); err != nil {
		return core.NodeInventory{}, err
	}
	return inv, nil
}

// NodeInventoryInto implements core.BulkMonitorInto: the reply decodes
// into inv's existing Domains capacity, and names whose bytes did not
// change keep their previous strings — so a steady-state poller of a
// fixed fleet allocates almost nothing per sweep.
func (c *Conn) NodeInventoryInto(inv *core.NodeInventory) error {
	var r struct {
		Node    wire.NodeInfoReply
		Domains []core.NamedDomainInfo
	}
	// Seed the decode destination with the retained values: unchanged
	// strings are kept as-is and the row storage is reused in place.
	r.Node.Model = inv.Node.Model
	r.Domains = inv.Domains
	if err := c.call(wire.ProcNodeInventory, &struct{}{}, &r); err != nil {
		return err
	}
	inv.Node = core.NodeInfo{
		Model: r.Node.Model, MemoryKiB: r.Node.MemoryKiB, CPUs: int(r.Node.CPUs),
		MHz: int(r.Node.MHz), NUMANodes: int(r.Node.NUMANodes),
		Sockets: int(r.Node.Sockets), Cores: int(r.Node.Cores), Threads: int(r.Node.Threads),
	}
	inv.Domains = r.Domains
	return nil
}

// DomainStats implements core.DriverConn.
func (c *Conn) DomainStats(name string) (core.DomainStats, error) {
	var r wire.DomainStatsReply
	if err := c.call(wire.ProcDomainGetStats, &wire.NameArgs{Name: name}, &r); err != nil {
		return core.DomainStats{}, err
	}
	return core.DomainStats{
		State: core.DomainState(r.State), CPUTimeNs: r.CPUTimeNs,
		MemKiB: r.MemKiB, MaxMemKiB: r.MaxMemKiB, VCPUs: int(r.VCPUs),
		RdBytes: r.RdBytes, WrBytes: r.WrBytes, RdReqs: r.RdReqs, WrReqs: r.WrReqs,
		RxBytes: r.RxBytes, TxBytes: r.TxBytes, RxPkts: r.RxPkts, TxPkts: r.TxPkts,
		DirtyPages: r.DirtyPages,
	}, nil
}

// DomainXML implements core.DriverConn.
func (c *Conn) DomainXML(name string) (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcDomainGetXML, &wire.NameArgs{Name: name}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// SetDomainMemory implements core.DriverConn.
func (c *Conn) SetDomainMemory(name string, kib uint64) error {
	return c.call(wire.ProcDomainSetMemory, &wire.SetMemoryArgs{Name: name, MemKiB: kib}, nil)
}

// SetDomainVCPUs implements core.DriverConn.
func (c *Conn) SetDomainVCPUs(name string, n int) error {
	if n < 0 {
		return core.Errorf(core.ErrInvalidArg, "vcpus must be non-negative")
	}
	return c.call(wire.ProcDomainSetVCPUs, &wire.SetVCPUsArgs{Name: name, VCPUs: uint32(n)}, nil)
}

// ListNetworks implements core.NetworkSupport.
func (c *Conn) ListNetworks() ([]string, error) {
	var r wire.NameListReply
	if err := c.call(wire.ProcNetworkList, &struct{}{}, &r); err != nil {
		return nil, err
	}
	return r.Names, nil
}

// DefineNetwork implements core.NetworkSupport.
func (c *Conn) DefineNetwork(xmlDesc string) error {
	return c.call(wire.ProcNetworkDefine, &wire.XMLArgs{XML: xmlDesc}, nil)
}

// UndefineNetwork implements core.NetworkSupport.
func (c *Conn) UndefineNetwork(name string) error { return c.nameOp(wire.ProcNetworkUndefine, name) }

// StartNetwork implements core.NetworkSupport.
func (c *Conn) StartNetwork(name string) error { return c.nameOp(wire.ProcNetworkStart, name) }

// StopNetwork implements core.NetworkSupport.
func (c *Conn) StopNetwork(name string) error { return c.nameOp(wire.ProcNetworkStop, name) }

// NetworkXML implements core.NetworkSupport.
func (c *Conn) NetworkXML(name string) (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcNetworkGetXML, &wire.NameArgs{Name: name}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// NetworkIsActive implements core.NetworkSupport.
func (c *Conn) NetworkIsActive(name string) (bool, error) {
	var r wire.BoolReply
	if err := c.call(wire.ProcNetworkIsActive, &wire.NameArgs{Name: name}, &r); err != nil {
		return false, err
	}
	return r.Value, nil
}

// NetworkDHCPLeases implements core.NetworkSupport.
func (c *Conn) NetworkDHCPLeases(name string) ([]core.DHCPLease, error) {
	var r wire.LeasesReply
	if err := c.call(wire.ProcNetworkDHCPLeases, &wire.NameArgs{Name: name}, &r); err != nil {
		return nil, err
	}
	out := make([]core.DHCPLease, len(r.Leases))
	for i, l := range r.Leases {
		out[i] = core.DHCPLease{MAC: l.MAC, IP: l.IP, Hostname: l.Hostname}
	}
	return out, nil
}

// ListStoragePools implements core.StorageSupport.
func (c *Conn) ListStoragePools() ([]string, error) {
	var r wire.NameListReply
	if err := c.call(wire.ProcPoolList, &struct{}{}, &r); err != nil {
		return nil, err
	}
	return r.Names, nil
}

// DefineStoragePool implements core.StorageSupport.
func (c *Conn) DefineStoragePool(xmlDesc string) error {
	return c.call(wire.ProcPoolDefine, &wire.XMLArgs{XML: xmlDesc}, nil)
}

// UndefineStoragePool implements core.StorageSupport.
func (c *Conn) UndefineStoragePool(name string) error { return c.nameOp(wire.ProcPoolUndefine, name) }

// StartStoragePool implements core.StorageSupport.
func (c *Conn) StartStoragePool(name string) error { return c.nameOp(wire.ProcPoolStart, name) }

// StopStoragePool implements core.StorageSupport.
func (c *Conn) StopStoragePool(name string) error { return c.nameOp(wire.ProcPoolStop, name) }

// StoragePoolXML implements core.StorageSupport.
func (c *Conn) StoragePoolXML(name string) (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcPoolGetXML, &wire.NameArgs{Name: name}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// StoragePoolInfo implements core.StorageSupport.
func (c *Conn) StoragePoolInfo(name string) (core.StoragePoolInfo, error) {
	var r wire.PoolInfoReply
	if err := c.call(wire.ProcPoolGetInfo, &wire.NameArgs{Name: name}, &r); err != nil {
		return core.StoragePoolInfo{}, err
	}
	return core.StoragePoolInfo{
		Active: r.Active, CapacityKiB: r.CapacityKiB,
		AllocationKiB: r.AllocationKiB, AvailableKiB: r.AvailableKiB,
	}, nil
}

// ListVolumes implements core.StorageSupport.
func (c *Conn) ListVolumes(pool string) ([]string, error) {
	var r wire.NameListReply
	if err := c.call(wire.ProcVolList, &wire.NameArgs{Name: pool}, &r); err != nil {
		return nil, err
	}
	return r.Names, nil
}

// CreateVolume implements core.StorageSupport.
func (c *Conn) CreateVolume(pool, xmlDesc string) error {
	return c.call(wire.ProcVolCreate, &wire.VolCreateArgs{Pool: pool, XML: xmlDesc}, nil)
}

// DeleteVolume implements core.StorageSupport.
func (c *Conn) DeleteVolume(pool, name string) error {
	return c.call(wire.ProcVolDelete, &wire.VolArgs{Pool: pool, Name: name}, nil)
}

// VolumeXML implements core.StorageSupport.
func (c *Conn) VolumeXML(pool, name string) (string, error) {
	var r wire.StringReply
	if err := c.call(wire.ProcVolGetXML, &wire.VolArgs{Pool: pool, Name: name}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// Register installs the remote driver as the registry fallback.
func Register() {
	core.RegisterRemote(func(u *uri.URI) (core.DriverConn, error) {
		return Open(u)
	})
}
