package remote

import (
	"testing"

	"repro/internal/events"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// frameConn builds a client connection with one registered watch
// stream and returns the delivery log the handler appends to.
type frameRec struct {
	ev  events.Event
	gap bool
}

func watchFrameConn(t *testing.T, subID int32) (*Conn, *[]frameRec) {
	t.Helper()
	var log []frameRec
	c := &Conn{watches: map[int32]*watchSub{}}
	ws := &watchSub{conn: c, id: subID}
	ws.handler = func(ev events.Event, gap bool) {
		log = append(log, frameRec{ev, gap})
	}
	c.watches[subID] = ws
	return c, &log
}

func watchFrame(t *testing.T, ev wire.WatchEvent) []byte {
	t.Helper()
	payload, err := rpc.Marshal(&ev)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestWatchFrameMalformed feeds undecodable and misrouted payloads
// through the client-side event dispatcher: nothing may panic, nothing
// may reach a handler, and a subsequent valid frame must still be
// tracked correctly (the junk leaves no sequence damage of its own).
func TestWatchFrameMalformed(t *testing.T) {
	c, log := watchFrameConn(t, 1)
	for _, payload := range [][]byte{
		nil,
		{0x01},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		make([]byte, 512), // zero spray: decodes id 0, no such stream
	} {
		c.handleEvent(wire.ProcEventWatch, payload)
	}
	// Frame for a subscription that does not exist: dropped silently.
	c.handleEvent(wire.ProcEventWatch, watchFrame(t, wire.WatchEvent{
		SubscriptionID: 99, Seq: 1, Type: uint32(events.EventStarted), Domain: "x",
	}))
	if len(*log) != 0 {
		t.Fatalf("junk frames reached the handler: %+v", *log)
	}
	// The stream itself is undamaged: seq 1 arrives as a clean first
	// frame, no gap.
	c.handleEvent(wire.ProcEventWatch, watchFrame(t, wire.WatchEvent{
		SubscriptionID: 1, Seq: 1, Type: uint32(events.EventStarted), Domain: "web",
	}))
	if len(*log) != 1 || (*log)[0].gap || (*log)[0].ev.Domain != "web" {
		t.Fatalf("valid frame after junk mishandled: %+v", *log)
	}
}

// TestWatchFrameGapDetection walks the sequence rules: contiguous
// frames deliver without gap, a jump flags one, a first frame above 1
// is already a gap (events lost before the client saw any), heartbeats
// confirming the last sequence are absorbed, and heartbeats revealing a
// lost tail deliver with gap set and no event payload.
func TestWatchFrameGapDetection(t *testing.T) {
	c, log := watchFrameConn(t, 7)
	send := func(seq uint64, typ events.Type) {
		c.handleEvent(wire.ProcEventWatch, watchFrame(t, wire.WatchEvent{
			SubscriptionID: 7, Seq: seq, Type: uint32(typ), Domain: "d",
		}))
	}
	hb := func(seq uint64) {
		c.handleEvent(wire.ProcEventWatch, watchFrame(t, wire.WatchEvent{
			SubscriptionID: 7, Seq: seq,
		}))
	}

	send(1, events.EventDefined) // first frame, contiguous
	send(2, events.EventStarted) // contiguous
	hb(2)                        // heartbeat confirms seq 2: absorbed
	send(5, events.EventStopped) // 3,4 lost: gap
	hb(6)                        // heartbeat past last seen: tail lost, gap
	hb(6)                        // now confirmed: absorbed
	send(7, events.EventResumed) // contiguous again after the heartbeat advance

	want := []struct {
		seq uint64
		gap bool
		ev  bool
	}{
		{1, false, true},
		{2, false, true},
		{5, true, true},
		{6, true, false}, // heartbeat delivery: gap flagged, Type zero
		{7, false, true},
	}
	if len(*log) != len(want) {
		t.Fatalf("delivered %d frames, want %d: %+v", len(*log), len(want), *log)
	}
	for i, w := range want {
		got := (*log)[i]
		if got.ev.Seq != w.seq || got.gap != w.gap || (got.ev.Type != 0) != w.ev {
			t.Errorf("frame %d: seq=%d gap=%v type=%v, want seq=%d gap=%v event=%v",
				i, got.ev.Seq, got.gap, got.ev.Type, w.seq, w.gap, w.ev)
		}
	}

	// Fresh stream whose first frame is already past 1: the events that
	// never arrived must not be silently forgotten.
	c2, log2 := watchFrameConn(t, 3)
	c2.handleEvent(wire.ProcEventWatch, watchFrame(t, wire.WatchEvent{
		SubscriptionID: 3, Seq: 4, Type: uint32(events.EventStarted), Domain: "late",
	}))
	if len(*log2) != 1 || !(*log2)[0].gap {
		t.Fatalf("first frame at seq 4 not flagged as gap: %+v", *log2)
	}
}
