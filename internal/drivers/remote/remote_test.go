package remote

import (
	"testing"
	"time"

	"repro/internal/uri"
)

func parseURI(t *testing.T, s string) *uri.URI {
	t.Helper()
	u, err := uri.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestKeepaliveDefaults(t *testing.T) {
	cfg := keepaliveFor(parseURI(t, "qsim+tcp://host/system"))
	if cfg.Interval != 5*time.Second || cfg.Count != 5 {
		t.Fatalf("%+v", cfg)
	}
	if !cfg.Valid() {
		t.Fatal("default config must be valid")
	}
}

func TestKeepaliveURIOverrides(t *testing.T) {
	cfg := keepaliveFor(parseURI(t, "qsim+tcp://host/system?keepalive_interval=2&keepalive_count=7"))
	if cfg.Interval != 2*time.Second || cfg.Count != 7 {
		t.Fatalf("%+v", cfg)
	}
}

func TestKeepaliveDisabled(t *testing.T) {
	for _, s := range []string{
		"qsim+tcp://host/system?keepalive_interval=0",
		"qsim+tcp://host/system?keepalive_count=0",
		"qsim+tcp://host/system?keepalive_interval=junk",
		"qsim+tcp://host/system?keepalive_interval=-1",
	} {
		if cfg := keepaliveFor(parseURI(t, s)); cfg.Valid() {
			t.Errorf("%s: keepalive unexpectedly enabled: %+v", s, cfg)
		}
	}
}

func TestDialRejectsUnsupportedTransport(t *testing.T) {
	if _, err := dial(parseURI(t, "qsim+ssh://host/system")); err == nil {
		t.Fatal("ssh transport accepted")
	}
}

func TestOpenFailsFastOnMissingSocket(t *testing.T) {
	u := parseURI(t, "test+unix:///default?socket=%2Fnonexistent%2Fx.sock")
	if _, err := Open(u); err == nil {
		t.Fatal("open of missing socket accepted")
	}
}
