package remote

import (
	"repro/internal/core"
	"repro/internal/wire"
)

// Live-migration sink forwarding: the migration engine pushes page
// chunks at the destination connection through core.MigrationSink, and
// this client carries them to the daemon over dedicated wire procedures.
// Chunks ride the same pooled frame path as every other call — pipelined
// over one connection, so N engine streams really do interleave N chunk
// sequences on the wire. Demand-fault pulls use a separate procedure
// number that the daemon schedules on its priority workers.

var _ core.MigrationSink = (*Conn)(nil)

// MigratePrepare implements core.MigrationSink. An older daemon without
// the migration procedures answers ErrNoSupport, which callers treat as
// "fall back to the timing model".
func (c *Conn) MigratePrepare(domain string, totalPages uint64, streams int) (uint64, error) {
	var rep wire.MigratePrepareReply
	err := c.call(wire.ProcMigratePrepare, &wire.MigratePrepareArgs{
		Domain:     domain,
		TotalPages: totalPages,
		Streams:    uint32(streams),
	}, &rep)
	if err != nil {
		return 0, err
	}
	return rep.Cookie, nil
}

// MigratePages implements core.MigrationSink.
func (c *Conn) MigratePages(ch *core.MigrateChunk) error {
	proc := wire.ProcMigratePages
	if ch.Priority {
		proc = wire.ProcMigratePagePull
	}
	return c.call(proc, &wire.MigratePagesArgs{
		Cookie: ch.Cookie,
		Stream: uint32(ch.Stream),
		Round:  uint32(ch.Round),
		Pages:  ch.Pages,
		Data:   ch.Data,
	}, nil)
}

// MigrateFinish implements core.MigrationSink.
func (c *Conn) MigrateFinish(cookie uint64, commit bool) error {
	return c.call(wire.ProcMigrateFinish, &wire.MigrateFinishArgs{
		Cookie: cookie,
		Commit: commit,
	}, nil)
}
