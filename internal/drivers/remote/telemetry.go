package remote

import (
	"fmt"
	"sync"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// Client-side view of the management plane: how long calls take as seen
// by the application (queue + wire + dispatch), and how often connecting
// succeeds. These live in the Default registry because driver connections
// have no daemon to report through.
var (
	remoteCalls      = telemetry.Default.Counter("remote_calls_total")
	remoteCallErrs   = telemetry.Default.Counter("remote_call_errors_total")
	remoteConnects   = telemetry.Default.Counter("remote_connects_total")
	remoteConnErrors = telemetry.Default.Counter("remote_connect_failures_total")

	// Calls retried after an ErrOverloaded rejection whose retry-after
	// hint fit under the driver's cap.
	remoteOverloadRetries = telemetry.Default.Counter("remote_overload_retries_total")

	// Per-procedure latency histograms, created on first use.
	callLatencies sync.Map // proc uint32 → *telemetry.Histogram
)

// callLatency returns the cached per-procedure latency histogram.
func callLatency(proc uint32) *telemetry.Histogram {
	if v, ok := callLatencies.Load(proc); ok {
		return v.(*telemetry.Histogram)
	}
	h := telemetry.Default.Histogram(fmt.Sprintf(
		"remote_call_seconds{proc=%q}", rpc.ProcName(rpc.ProgramRemote, proc)))
	actual, _ := callLatencies.LoadOrStore(proc, h)
	return actual.(*telemetry.Histogram)
}
