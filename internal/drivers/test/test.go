// Package test implements the mock driver: a fully functional local
// driver backed directly by the simulation substrate, with a canned
// "default" environment. Like its namesake in the original architecture
// it exists so management applications and the daemon can be exercised
// without any hypervisor, and it supports every optional interface.
package test

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/drivers/common"
	"repro/internal/hyper"
	"repro/internal/logging"
	"repro/internal/nodeinfo"
	"repro/internal/uri"
	"repro/internal/xmlspec"
)

// hooks implements common.Hooks directly on a hyper.Host.
type hooks struct {
	mu   sync.Mutex
	host *hyper.Host
}

func (h *hooks) Type() string             { return "test" }
func (h *hooks) Version() (string, error) { return "test 1.0", nil }
func (h *hooks) GuestOSType() string      { return "hvm" }

func (h *hooks) Start(def *xmlspec.Domain) error {
	cfg, err := common.DefToConfig(def)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, exists := h.host.Machine(def.Name); !exists {
		m, err := hyper.NewMachine(cfg)
		if err != nil {
			return err
		}
		if err := h.host.AddMachine(m); err != nil {
			return err
		}
	}
	return h.host.StartMachine(def.Name)
}

func (h *hooks) machine(name string) (*hyper.Machine, error) {
	m, ok := h.host.Machine(name)
	if !ok {
		return nil, fmt.Errorf("test: no native machine %q", name)
	}
	return m, nil
}

func (h *hooks) Stop(name string, graceful bool) error {
	m, err := h.machine(name)
	if err != nil {
		return err
	}
	if graceful {
		if err := m.Shutdown(); err != nil {
			return err
		}
	} else if err := m.Destroy(); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.host.RemoveMachine(name)
}

func (h *hooks) Reboot(name string) error {
	m, err := h.machine(name)
	if err != nil {
		return err
	}
	return m.Reboot()
}

func (h *hooks) Suspend(name string) error {
	m, err := h.machine(name)
	if err != nil {
		return err
	}
	return m.Pause()
}

func (h *hooks) Resume(name string) error {
	m, err := h.machine(name)
	if err != nil {
		return err
	}
	return m.Resume()
}

func (h *hooks) Info(name string) (core.DomainInfo, error) {
	m, err := h.machine(name)
	if err != nil {
		return core.DomainInfo{}, err
	}
	return common.InfoFromMachine(m.Stats()), nil
}

// InfoEach implements common.InfoBatcher: one registry pass answers a
// whole monitoring sweep instead of a lock + lookup per guest, and each
// machine contributes only the monitoring fields instead of a full
// Stats snapshot.
func (h *hooks) InfoEach(names []string, fn func(i int, info core.DomainInfo)) {
	h.host.MachineEach(names, func(i int, m *hyper.Machine) {
		st, cpu, mem, maxMem, vcpus := m.MonitorStats()
		fn(i, core.DomainInfo{
			State: common.StateFromHyper(st), MaxMemKiB: maxMem,
			MemKiB: mem, VCPUs: vcpus, CPUTimeNs: cpu,
		})
	})
}

func (h *hooks) Stats(name string) (core.DomainStats, error) {
	m, err := h.machine(name)
	if err != nil {
		return core.DomainStats{}, err
	}
	return common.StatsFromMachine(m.Stats()), nil
}

func (h *hooks) SetMemory(name string, kib uint64) error {
	m, err := h.machine(name)
	if err != nil {
		return err
	}
	return m.SetMemory(kib)
}

func (h *hooks) SetVCPUs(name string, n int) error {
	m, err := h.machine(name)
	if err != nil {
		return err
	}
	return m.SetVCPUs(n)
}

func (h *hooks) ID(name string) int {
	m, err := h.machine(name)
	if err != nil {
		return -1
	}
	return m.ID()
}

func (h *hooks) Machine(name string) (*hyper.Machine, error) { return h.machine(name) }

// New opens a test driver connection. The URI path selects the canned
// environment: "/default" pre-defines a domain, a network and a storage
// pool; any other path starts empty.
func New(u *uri.URI, log *logging.Logger) (core.DriverConn, error) {
	node, err := nodeinfo.NewNode("testhost", nodeinfo.ProfileServer)
	if err != nil {
		return nil, err
	}
	h := &hooks{host: hyper.NewHost(node, 10)}
	scope := "default"
	if u != nil && u.Path != "" && u.Path != "/" {
		scope = strings.TrimPrefix(u.Path, "/")
	}
	b := common.New(h, common.Options{
		Node: node, Networks: true, Storage: true, Log: log, Scope: scope,
	})
	if u == nil || u.Path == "/default" {
		// When a state journal already replayed the default environment,
		// re-defining it would collide; the replayed objects win (the
		// canned domain comes back defined but not running).
		if names, _ := b.ListDomains(0); len(names) == 0 {
			if err := populateDefault(b); err != nil {
				return nil, fmt.Errorf("test: populate default objects: %w", err)
			}
		}
	}
	return b, nil
}

// DefaultDomainXML is the canned domain the default environment defines.
const DefaultDomainXML = `
<domain type='test'>
  <name>test</name>
  <description>cpu_util=0.4 dirty_pages_sec=500 block_iops=100 net_pps=500</description>
  <memory unit='MiB'>512</memory>
  <vcpu>2</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
  <devices>
    <disk type='file' device='disk'>
      <source file='/var/lib/test/images/test.img'/>
      <target dev='vda' bus='virtio'/>
    </disk>
    <interface type='network'>
      <mac address='52:54:00:te:replaced:below'/>
      <source network='default'/>
    </interface>
  </devices>
</domain>`

// DefaultNetworkXML is the canned network of the default environment.
const DefaultNetworkXML = `
<network>
  <name>default</name>
  <bridge name='testbr0'/>
  <forward mode='nat'/>
  <ip address='192.168.122.1' netmask='255.255.255.0'>
    <dhcp><range start='192.168.122.2' end='192.168.122.254'/></dhcp>
  </ip>
</network>`

// DefaultPoolXML is the canned storage pool of the default environment.
const DefaultPoolXML = `
<pool type='dir'>
  <name>default-pool</name>
  <capacity unit='GiB'>100</capacity>
  <target><path>/var/lib/test/images</path></target>
</pool>`

func populateDefault(b *common.Base) error {
	// A journal replay may have brought back any subset of the default
	// objects (replay skips individual failures), so each one that
	// already exists is left as the replay produced it.
	skipDup := func(err error) error {
		if core.IsCode(err, core.ErrDuplicate) {
			return nil
		}
		return err
	}
	if err := skipDup(b.DefineNetwork(DefaultNetworkXML)); err != nil {
		return err
	}
	if err := b.StartNetwork("default"); err != nil && !core.IsCode(err, core.ErrOperationInvalid) {
		return err
	}
	if err := skipDup(b.DefineStoragePool(DefaultPoolXML)); err != nil {
		return err
	}
	if err := b.StartStoragePool("default-pool"); err != nil && !core.IsCode(err, core.ErrOperationInvalid) {
		return err
	}
	// Fix the placeholder MAC before defining.
	xml := fixDefaultMAC(DefaultDomainXML)
	if _, err := b.DefineDomain(xml); err != nil {
		return skipDup(err)
	}
	return b.CreateDomain("test")
}

func fixDefaultMAC(xml string) string {
	return replaceOnce(xml, "52:54:00:te:replaced:below", "52:54:00:aa:00:01")
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

// Register installs the test driver in the core registry.
func Register(log *logging.Logger) {
	core.Register("test", func(u *uri.URI) (core.DriverConn, error) {
		return New(u, log)
	})
}
