// Package lxc implements the csim driver: the uniform API translated
// into container engine calls and cgroup edits — domains are containers
// sharing the host kernel, resized by writing their cgroup files and then
// telling the engine to apply them.
package lxc

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/drivers/common"
	"repro/internal/hyper"
	"repro/internal/hyper/csim"
	"repro/internal/logging"
	"repro/internal/nodeinfo"
	"repro/internal/uri"
	"repro/internal/xmlspec"
)

// hooks drives the csim engine.
type hooks struct {
	mu     sync.Mutex
	engine *csim.Engine
}

func (h *hooks) Type() string { return "csim" }

func (h *hooks) Version() (string, error) {
	return "csim on " + h.engine.KernelVersion(), nil
}

func (h *hooks) GuestOSType() string { return "exe" }

func (h *hooks) Start(def *xmlspec.Domain) error {
	cfg, err := common.DefToConfig(def)
	if err != nil {
		return err
	}
	h.mu.Lock()
	c, exists := h.engine.Get(def.Name)
	h.mu.Unlock()
	if !exists {
		c, err = h.engine.Create(csim.Spec{
			Name:    def.Name,
			VCPUs:   cfg.VCPUs,
			MemKiB:  cfg.MemKiB,
			CPUUtil: cfg.CPUUtil,
		})
		if err != nil {
			return err
		}
	}
	return c.Start()
}

func (h *hooks) container(name string) (*csim.Container, error) {
	c, ok := h.engine.Get(name)
	if !ok {
		return nil, fmt.Errorf("lxc: no container %q", name)
	}
	return c, nil
}

func (h *hooks) Stop(name string, graceful bool) error {
	c, err := h.container(name)
	if err != nil {
		return err
	}
	if graceful {
		if err := c.Stop(); err != nil {
			return err
		}
	} else if err := c.Kill(); err != nil {
		return err
	}
	return h.engine.Remove(name)
}

func (h *hooks) Reboot(name string) error {
	c, err := h.container(name)
	if err != nil {
		return err
	}
	return c.Machine().Reboot()
}

func (h *hooks) Suspend(name string) error {
	c, err := h.container(name)
	if err != nil {
		return err
	}
	return c.Freeze()
}

func (h *hooks) Resume(name string) error {
	c, err := h.container(name)
	if err != nil {
		return err
	}
	return c.Thaw()
}

func (h *hooks) Info(name string) (core.DomainInfo, error) {
	c, err := h.container(name)
	if err != nil {
		return core.DomainInfo{}, err
	}
	return common.InfoFromMachine(c.Machine().Stats()), nil
}

func (h *hooks) Stats(name string) (core.DomainStats, error) {
	c, err := h.container(name)
	if err != nil {
		return core.DomainStats{}, err
	}
	return common.StatsFromMachine(c.Machine().Stats()), nil
}

// setCgroup writes one cgroup file and applies the limits, rolling the
// file back if the apply is rejected so later edits start from a
// consistent tree.
func (h *hooks) setCgroup(c *csim.Container, file, value string) error {
	cg := h.engine.Cgroups()
	old, hadOld := cg.Get(c.CgroupPath(), file)
	cg.Set(c.CgroupPath(), file, value)
	if err := c.ApplyCgroupLimits(); err != nil {
		if hadOld {
			cg.Set(c.CgroupPath(), file, old)
		}
		return err
	}
	return nil
}

// SetMemory resizes by editing the cgroup file and applying it — the
// cgroup is the native interface, not the machine object.
func (h *hooks) SetMemory(name string, kib uint64) error {
	c, err := h.container(name)
	if err != nil {
		return err
	}
	return h.setCgroup(c, "memory.max", strconv.FormatUint(kib*1024, 10))
}

func (h *hooks) SetVCPUs(name string, n int) error {
	c, err := h.container(name)
	if err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("lxc: vcpus must be > 0")
	}
	return h.setCgroup(c, "cpu.max", fmt.Sprintf("%d 100000", n*100000))
}

func (h *hooks) ID(name string) int {
	c, err := h.container(name)
	if err != nil {
		return -1
	}
	return c.Machine().ID()
}

func (h *hooks) Machine(name string) (*hyper.Machine, error) {
	c, err := h.container(name)
	if err != nil {
		return nil, err
	}
	return c.Machine(), nil
}

// New opens an lxc driver connection on a fresh csim engine.
func New(u *uri.URI, log *logging.Logger) (core.DriverConn, error) {
	node, err := nodeinfo.NewNode("csimhost", nodeinfo.ProfileServer)
	if err != nil {
		return nil, err
	}
	return NewOn(csim.New(node), node, log), nil
}

// NewOn builds a driver connection over an existing engine instance.
func NewOn(engine *csim.Engine, node *nodeinfo.Node, log *logging.Logger) core.DriverConn {
	h := &hooks{engine: engine}
	// Containers get networks (veth into bridges) but no pool storage.
	return common.New(h, common.Options{Node: node, Networks: true, Storage: false, Log: log})
}

// Register installs the lxc driver in the core registry under the
// "csim" scheme.
func Register(log *logging.Logger) {
	core.Register("csim", func(u *uri.URI) (core.DriverConn, error) {
		return New(u, log)
	})
}
