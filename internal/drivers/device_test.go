package drivers_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

const diskDeviceXML = `
<disk type='file' device='disk'>
  <source file='/images/extra.qcow2'/>
  <target dev='vdz' bus='virtio'/>
</disk>`

const nicDeviceXML = `
<interface type='network'>
  <mac address='52:54:00:de:ad:01'/>
  <source network='default'/>
</interface>`

func deviceDrv(t *testing.T, drv core.DriverConn) core.DeviceSupport {
	t.Helper()
	ds, ok := drv.(core.DeviceSupport)
	if !ok {
		t.Fatal("driver does not implement device hot-plug")
	}
	return ds
}

func TestDiskAttachDetachAllDrivers(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		ds := deviceDrv(t, drv)
		if _, err := drv.DefineDomain(domainXML(name, "vm")); err != nil {
			t.Fatal(err)
		}
		if err := ds.AttachDevice("vm", diskDeviceXML); err != nil {
			t.Fatal(err)
		}
		xml, err := drv.DomainXML("vm")
		if err != nil || !strings.Contains(xml, `dev="vdz"`) {
			t.Fatalf("attached disk missing from XML: %v\n%s", err, xml)
		}
		// Same target again: duplicate.
		if err := ds.AttachDevice("vm", diskDeviceXML); !core.IsCode(err, core.ErrDuplicate) {
			t.Fatalf("duplicate target: %v", err)
		}
		if err := ds.DetachDevice("vm", diskDeviceXML); err != nil {
			t.Fatal(err)
		}
		xml, _ = drv.DomainXML("vm")
		if strings.Contains(xml, `dev="vdz"`) {
			t.Fatal("detached disk still in XML")
		}
		if err := ds.DetachDevice("vm", diskDeviceXML); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("double detach: %v", err)
		}
	})
}

func TestNICHotplugLeasesAddress(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		ds := deviceDrv(t, drv)
		ns := drv.(core.NetworkSupport)
		netXML := `
<network>
  <name>default</name>
  <forward mode='nat'/>
  <ip address='10.20.0.1' netmask='255.255.255.0'>
    <dhcp><range start='10.20.0.10' end='10.20.0.100'/></dhcp>
  </ip>
</network>`
		if err := ns.DefineNetwork(netXML); err != nil {
			t.Fatal(err)
		}
		if err := ns.StartNetwork("default"); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.DefineDomain(domainXML(name, "vm")); err != nil {
			t.Fatal(err)
		}
		if err := drv.CreateDomain("vm"); err != nil {
			t.Fatal(err)
		}
		// Live attach leases immediately.
		if err := ds.AttachDevice("vm", nicDeviceXML); err != nil {
			t.Fatal(err)
		}
		leases, _ := ns.NetworkDHCPLeases("default")
		if len(leases) != 1 || leases[0].MAC != "52:54:00:de:ad:01" {
			t.Fatalf("leases after hot-attach: %v", leases)
		}
		// Duplicate MAC rejected.
		if err := ds.AttachDevice("vm", nicDeviceXML); !core.IsCode(err, core.ErrDuplicate) {
			t.Fatalf("duplicate MAC: %v", err)
		}
		// Live detach releases the lease.
		if err := ds.DetachDevice("vm", nicDeviceXML); err != nil {
			t.Fatal(err)
		}
		leases, _ = ns.NetworkDHCPLeases("default")
		if len(leases) != 0 {
			t.Fatalf("lease survived hot-detach: %v", leases)
		}
	})
}

func TestAttachToInactiveNetworkFails(t *testing.T) {
	drv := openers["qsim"](t)
	ds := deviceDrv(t, drv)
	ns := drv.(core.NetworkSupport)
	if err := ns.DefineNetwork(`<network><name>default</name><ip address='10.1.1.1' netmask='255.255.255.0'><dhcp><range start='10.1.1.10' end='10.1.1.20'/></dhcp></ip></network>`); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.DefineDomain(domainXML("qsim", "vm")); err != nil {
		t.Fatal(err)
	}
	if err := drv.CreateDomain("vm"); err != nil {
		t.Fatal(err)
	}
	// Network defined but not started: live attach must fail and leave
	// the definition unchanged.
	if err := ds.AttachDevice("vm", nicDeviceXML); !core.IsCode(err, core.ErrOperationInvalid) {
		t.Fatalf("attach to inactive network: %v", err)
	}
	xml, _ := drv.DomainXML("vm")
	if strings.Contains(xml, "52:54:00:de:ad:01") {
		t.Fatal("failed attach mutated the definition")
	}
}

func TestAttachRejectsGarbage(t *testing.T) {
	drv := openers["xsim"](t)
	ds := deviceDrv(t, drv)
	if _, err := drv.DefineDomain(domainXML("xsim", "vm")); err != nil {
		t.Fatal(err)
	}
	if err := ds.AttachDevice("vm", "<garbage"); !core.IsCode(err, core.ErrXML) {
		t.Fatalf("garbage device: %v", err)
	}
	if err := ds.AttachDevice("vm", "<console type='pty'/>"); !core.IsCode(err, core.ErrXML) {
		t.Fatalf("unsupported element: %v", err)
	}
	if err := ds.AttachDevice("ghost", diskDeviceXML); !core.IsCode(err, core.ErrNoDomain) {
		t.Fatalf("missing domain: %v", err)
	}
	if err := ds.DetachDevice("vm", `<interface type='network'><source network='x'/></interface>`); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("mac-less detach: %v", err)
	}
}
