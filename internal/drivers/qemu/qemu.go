// Package qemu implements the qsim driver: the uniform API translated
// into qsim's native JSON monitor protocol, one emulator process per
// guest. The driver never touches the substrate machine directly for
// management — every operation is a monitor command, mirroring how the
// original architecture drives QEMU through its monitor.
package qemu

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/drivers/common"
	"repro/internal/hyper"
	"repro/internal/hyper/qsim"
	"repro/internal/logging"
	"repro/internal/nodeinfo"
	"repro/internal/uri"
	"repro/internal/xmlspec"
)

// hooks drives qsim through emulator monitors.
type hooks struct {
	mu  sync.Mutex
	hv  *qsim.Hypervisor
	emu map[string]*qsim.Emulator
}

func (h *hooks) Type() string             { return "qsim" }
func (h *hooks) Version() (string, error) { return h.hv.Version(), nil }
func (h *hooks) GuestOSType() string      { return "hvm" }

func (h *hooks) Start(def *xmlspec.Domain) error {
	cfg, err := common.DefToConfig(def)
	if err != nil {
		return err
	}
	h.mu.Lock()
	e, exists := h.emu[def.Name]
	h.mu.Unlock()
	if !exists {
		e, err = h.hv.Launch(cfg)
		if err != nil {
			return err
		}
		h.mu.Lock()
		h.emu[def.Name] = e
		h.mu.Unlock()
	}
	if err := e.Monitor().ExecuteCommand("system_boot", nil, nil); err != nil {
		// Boot failed: reap the process so a retry starts clean.
		h.mu.Lock()
		delete(h.emu, def.Name)
		h.mu.Unlock()
		h.hv.Quit(def.Name, true) //nolint:errcheck
		return err
	}
	return nil
}

func (h *hooks) monitor(name string) (*qsim.Monitor, error) {
	h.mu.Lock()
	e, ok := h.emu[name]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("qemu: no emulator process for %q", name)
	}
	return e.Monitor(), nil
}

func (h *hooks) Stop(name string, graceful bool) error {
	mon, err := h.monitor(name)
	if err != nil {
		return err
	}
	cmd := "quit"
	if graceful {
		cmd = "system_powerdown"
	}
	if err := mon.ExecuteCommand(cmd, nil, nil); err != nil {
		return err
	}
	// The guest is off: reap the emulator process, like QEMU exiting.
	h.mu.Lock()
	delete(h.emu, name)
	h.mu.Unlock()
	return h.hv.Quit(name, false)
}

func (h *hooks) Reboot(name string) error {
	mon, err := h.monitor(name)
	if err != nil {
		return err
	}
	return mon.ExecuteCommand("system_reset", nil, nil)
}

func (h *hooks) Suspend(name string) error {
	mon, err := h.monitor(name)
	if err != nil {
		return err
	}
	return mon.ExecuteCommand("stop", nil, nil)
}

func (h *hooks) Resume(name string) error {
	mon, err := h.monitor(name)
	if err != nil {
		return err
	}
	return mon.ExecuteCommand("cont", nil, nil)
}

func (h *hooks) Info(name string) (core.DomainInfo, error) {
	// Info and stats come from monitor queries, not the machine object.
	mon, err := h.monitor(name)
	if err != nil {
		return core.DomainInfo{}, err
	}
	var status struct {
		Status string `json:"status"`
	}
	if err := mon.ExecuteCommand("query-status", nil, &status); err != nil {
		return core.DomainInfo{}, err
	}
	var balloon struct {
		Actual uint64 `json:"actual"`
	}
	if err := mon.ExecuteCommand("query-balloon", nil, &balloon); err != nil {
		return core.DomainInfo{}, err
	}
	var cpus []struct {
		Index int `json:"cpu-index"`
	}
	if err := mon.ExecuteCommand("query-cpus", nil, &cpus); err != nil {
		return core.DomainInfo{}, err
	}
	var cpustats struct {
		CPUTimeNs uint64 `json:"cpu_time_ns"`
	}
	if err := mon.ExecuteCommand("query-cpustats", nil, &cpustats); err != nil {
		return core.DomainInfo{}, err
	}
	// MaxMem comes from the emulator's machine configuration.
	maxMem := balloon.Actual / 1024
	if e, ok := h.emulator(name); ok {
		maxMem = e.Machine().Config().MaxMemKiB
	}
	return core.DomainInfo{
		State:     stateFromStatus(status.Status),
		MaxMemKiB: maxMem,
		MemKiB:    balloon.Actual / 1024,
		VCPUs:     len(cpus),
		CPUTimeNs: cpustats.CPUTimeNs,
	}, nil
}

func (h *hooks) emulator(name string) (*qsim.Emulator, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e, ok := h.emu[name]
	return e, ok
}

func stateFromStatus(s string) core.DomainState {
	switch s {
	case "running":
		return core.DomainRunning
	case "paused":
		return core.DomainPaused
	case "shutdown":
		return core.DomainShutoff
	case "internal-error":
		return core.DomainCrashed
	case "suspended":
		return core.DomainPMSuspended
	default:
		return core.DomainNoState
	}
}

func (h *hooks) Stats(name string) (core.DomainStats, error) {
	info, err := h.Info(name)
	if err != nil {
		return core.DomainStats{}, err
	}
	mon, err := h.monitor(name)
	if err != nil {
		return core.DomainStats{}, err
	}
	var blk struct {
		RdBytes uint64 `json:"rd_bytes"`
		WrBytes uint64 `json:"wr_bytes"`
		RdOps   uint64 `json:"rd_operations"`
		WrOps   uint64 `json:"wr_operations"`
	}
	if err := mon.ExecuteCommand("query-blockstats", nil, &blk); err != nil {
		return core.DomainStats{}, err
	}
	var nst struct {
		RxBytes uint64 `json:"rx_bytes"`
		TxBytes uint64 `json:"tx_bytes"`
		RxPkts  uint64 `json:"rx_packets"`
		TxPkts  uint64 `json:"tx_packets"`
	}
	if err := mon.ExecuteCommand("query-netstats", nil, &nst); err != nil {
		return core.DomainStats{}, err
	}
	return core.DomainStats{
		State:     info.State,
		CPUTimeNs: info.CPUTimeNs,
		MemKiB:    info.MemKiB,
		MaxMemKiB: info.MaxMemKiB,
		VCPUs:     info.VCPUs,
		RdBytes:   blk.RdBytes,
		WrBytes:   blk.WrBytes,
		RdReqs:    blk.RdOps,
		WrReqs:    blk.WrOps,
		RxBytes:   nst.RxBytes,
		TxBytes:   nst.TxBytes,
		RxPkts:    nst.RxPkts,
		TxPkts:    nst.TxPkts,
	}, nil
}

func (h *hooks) SetMemory(name string, kib uint64) error {
	mon, err := h.monitor(name)
	if err != nil {
		return err
	}
	return mon.ExecuteCommand("balloon", map[string]uint64{"value": kib * 1024}, nil)
}

func (h *hooks) SetVCPUs(name string, n int) error {
	mon, err := h.monitor(name)
	if err != nil {
		return err
	}
	return mon.ExecuteCommand("set-vcpus", map[string]int{"count": n}, nil)
}

func (h *hooks) ID(name string) int {
	e, ok := h.emulator(name)
	if !ok {
		return -1
	}
	return e.Machine().ID()
}

func (h *hooks) Machine(name string) (*hyper.Machine, error) {
	e, ok := h.emulator(name)
	if !ok {
		return nil, fmt.Errorf("qemu: no emulator process for %q", name)
	}
	return e.Machine(), nil
}

// New opens a qemu driver connection on a fresh qsim hypervisor. The
// shared-state variant (one hypervisor per process, as under a daemon) is
// provided by NewShared.
func New(u *uri.URI, log *logging.Logger) (core.DriverConn, error) {
	node, err := nodeinfo.NewNode("qsimhost", nodeinfo.ProfileServer)
	if err != nil {
		return nil, err
	}
	return NewOn(qsim.New(node), node, log), nil
}

// NewOn builds a driver connection over an existing hypervisor instance.
func NewOn(hv *qsim.Hypervisor, node *nodeinfo.Node, log *logging.Logger) core.DriverConn {
	h := &hooks{hv: hv, emu: make(map[string]*qsim.Emulator)}
	return common.New(h, common.Options{Node: node, Networks: true, Storage: true, Log: log})
}

// Register installs the qemu driver in the core registry under the
// "qsim" scheme.
func Register(log *logging.Logger) {
	core.Register("qsim", func(u *uri.URI) (core.DriverConn, error) {
		return New(u, log)
	})
}
