package drivers_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func snapDrv(t *testing.T, drv core.DriverConn) core.SnapshotSupport {
	t.Helper()
	ss, ok := drv.(core.SnapshotSupport)
	if !ok {
		t.Fatal("driver does not implement snapshots")
	}
	return ss
}

func TestSnapshotLifecycleAllDrivers(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		ss := snapDrv(t, drv)
		if _, err := drv.DefineDomain(domainXML(name, "vm")); err != nil {
			t.Fatal(err)
		}
		// Snapshot of a powered-off domain.
		offSnap, err := ss.CreateSnapshot("vm", "")
		if err != nil {
			t.Fatal(err)
		}
		if offSnap == "" {
			t.Fatal("no generated snapshot name")
		}
		// Named snapshot of a running domain with a modified balloon.
		if err := drv.CreateDomain("vm"); err != nil {
			t.Fatal(err)
		}
		if err := drv.SetDomainMemory("vm", 512*1024); err != nil {
			t.Fatal(err)
		}
		liveSnap, err := ss.CreateSnapshot("vm",
			`<domainsnapshot><name>live</name><description>before upgrade</description></domainsnapshot>`)
		if err != nil {
			t.Fatal(err)
		}
		if liveSnap != "live" {
			t.Fatalf("name %q", liveSnap)
		}
		// Still running after a live snapshot.
		if info, _ := drv.DomainInfo("vm"); info.State != core.DomainRunning {
			t.Fatalf("live snapshot changed state to %v", info.State)
		}

		snaps, err := ss.ListSnapshots("vm")
		if err != nil || len(snaps) != 2 || snaps[0] != offSnap || snaps[1] != "live" {
			t.Fatalf("snapshots %v %v", snaps, err)
		}
		xml, err := ss.SnapshotXML("vm", "live")
		if err != nil || !strings.Contains(xml, "before upgrade") || !strings.Contains(xml, "running") {
			t.Fatalf("snapshot xml %v:\n%s", err, xml)
		}

		// Change state, then revert to the live snapshot: running again
		// with the snapshot's balloon.
		if err := drv.DestroyDomain("vm"); err != nil {
			t.Fatal(err)
		}
		if err := ss.RevertSnapshot("vm", "live"); err != nil {
			t.Fatal(err)
		}
		info, err := drv.DomainInfo("vm")
		if err != nil || info.State != core.DomainRunning {
			t.Fatalf("after revert: %+v %v", info, err)
		}
		if info.MemKiB != 512*1024 {
			t.Fatalf("balloon not restored: %d", info.MemKiB)
		}

		// Revert to the powered-off snapshot stops the domain.
		if err := ss.RevertSnapshot("vm", offSnap); err != nil {
			t.Fatal(err)
		}
		if info, _ := drv.DomainInfo("vm"); info.State != core.DomainShutoff {
			t.Fatalf("after off-revert: %v", info.State)
		}

		// Delete and verify.
		if err := ss.DeleteSnapshot("vm", "live"); err != nil {
			t.Fatal(err)
		}
		if err := ss.DeleteSnapshot("vm", "live"); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("double delete: %v", err)
		}
		snaps, _ = ss.ListSnapshots("vm")
		if len(snaps) != 1 {
			t.Fatalf("snapshots after delete: %v", snaps)
		}
	})
}

func TestSnapshotErrors(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		ss := snapDrv(t, drv)
		if _, err := ss.CreateSnapshot("ghost", ""); !core.IsCode(err, core.ErrNoDomain) {
			t.Fatalf("snapshot of missing domain: %v", err)
		}
		if _, err := ss.ListSnapshots("ghost"); !core.IsCode(err, core.ErrNoDomain) {
			t.Fatalf("list of missing domain: %v", err)
		}
		if _, err := drv.DefineDomain(domainXML(name, "vm")); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.CreateSnapshot("vm", "<garbage"); !core.IsCode(err, core.ErrXML) {
			t.Fatalf("bad snapshot xml: %v", err)
		}
		if _, err := ss.CreateSnapshot("vm", `<domainsnapshot><name>s1</name></domainsnapshot>`); err != nil {
			t.Fatal(err)
		}
		if _, err := ss.CreateSnapshot("vm", `<domainsnapshot><name>s1</name></domainsnapshot>`); !core.IsCode(err, core.ErrDuplicate) {
			t.Fatalf("duplicate snapshot: %v", err)
		}
		if err := ss.RevertSnapshot("vm", "nope"); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("revert missing snapshot: %v", err)
		}
		if _, err := ss.SnapshotXML("vm", "nope"); !core.IsCode(err, core.ErrInvalidArg) {
			t.Fatalf("xml of missing snapshot: %v", err)
		}
	})
}

func TestSnapshotRevertPausedState(t *testing.T) {
	drv := openers["qsim"](t)
	ss := snapDrv(t, drv)
	if _, err := drv.DefineDomain(domainXML("qsim", "vm")); err != nil {
		t.Fatal(err)
	}
	if err := drv.CreateDomain("vm"); err != nil {
		t.Fatal(err)
	}
	if err := drv.SuspendDomain("vm"); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.CreateSnapshot("vm", `<domainsnapshot><name>paused</name></domainsnapshot>`); err != nil {
		t.Fatal(err)
	}
	if err := drv.ResumeDomain("vm"); err != nil {
		t.Fatal(err)
	}
	if err := ss.RevertSnapshot("vm", "paused"); err != nil {
		t.Fatal(err)
	}
	if info, _ := drv.DomainInfo("vm"); info.State != core.DomainPaused {
		t.Fatalf("reverted state %v, want paused", info.State)
	}
}

func TestManagedSaveAllDrivers(t *testing.T) {
	forEachDriver(t, func(t *testing.T, name string, drv core.DriverConn) {
		ms, ok := drv.(core.ManagedSaveSupport)
		if !ok {
			t.Fatal("driver does not implement managed save")
		}
		if _, err := drv.DefineDomain(domainXML(name, "vm")); err != nil {
			t.Fatal(err)
		}
		// Managed save needs an active domain.
		if err := ms.ManagedSave("vm"); !core.IsCode(err, core.ErrOperationInvalid) {
			t.Fatalf("save of inactive domain: %v", err)
		}
		if err := drv.CreateDomain("vm"); err != nil {
			t.Fatal(err)
		}
		if err := drv.SetDomainMemory("vm", 512*1024); err != nil {
			t.Fatal(err)
		}
		if err := ms.ManagedSave("vm"); err != nil {
			t.Fatal(err)
		}
		if info, _ := drv.DomainInfo("vm"); info.State != core.DomainShutoff {
			t.Fatalf("state after save: %v", info.State)
		}
		if has, err := ms.HasManagedSave("vm"); err != nil || !has {
			t.Fatalf("HasManagedSave %v %v", has, err)
		}
		// Start restores the image: balloon preserved, image consumed.
		if err := drv.CreateDomain("vm"); err != nil {
			t.Fatal(err)
		}
		info, err := drv.DomainInfo("vm")
		if err != nil || info.State != core.DomainRunning || info.MemKiB != 512*1024 {
			t.Fatalf("restored info %+v %v", info, err)
		}
		if has, _ := ms.HasManagedSave("vm"); has {
			t.Fatal("image not consumed by restore")
		}
	})
}

func TestManagedSaveRemoveBootsFresh(t *testing.T) {
	drv := openers["csim"](t)
	ms := drv.(core.ManagedSaveSupport)
	if _, err := drv.DefineDomain(domainXML("csim", "vm")); err != nil {
		t.Fatal(err)
	}
	if err := drv.CreateDomain("vm"); err != nil {
		t.Fatal(err)
	}
	if err := drv.SetDomainMemory("vm", 256*1024); err != nil {
		t.Fatal(err)
	}
	if err := ms.ManagedSave("vm"); err != nil {
		t.Fatal(err)
	}
	if err := ms.ManagedSaveRemove("vm"); err != nil {
		t.Fatal(err)
	}
	if err := ms.ManagedSaveRemove("vm"); !core.IsCode(err, core.ErrOperationInvalid) {
		t.Fatalf("double remove: %v", err)
	}
	if err := drv.CreateDomain("vm"); err != nil {
		t.Fatal(err)
	}
	// Fresh boot uses the definition's memory, not the saved balloon.
	if info, _ := drv.DomainInfo("vm"); info.MemKiB != 1024*1024 {
		t.Fatalf("fresh boot balloon %d", info.MemKiB)
	}
}

func TestManagedSavePausedDomain(t *testing.T) {
	drv := openers["xsim"](t)
	ms := drv.(core.ManagedSaveSupport)
	if _, err := drv.DefineDomain(domainXML("xsim", "vm")); err != nil {
		t.Fatal(err)
	}
	if err := drv.CreateDomain("vm"); err != nil {
		t.Fatal(err)
	}
	if err := drv.SuspendDomain("vm"); err != nil {
		t.Fatal(err)
	}
	if err := ms.ManagedSave("vm"); err != nil {
		t.Fatal(err)
	}
	if err := drv.CreateDomain("vm"); err != nil {
		t.Fatal(err)
	}
	if info, _ := drv.DomainInfo("vm"); info.State != core.DomainPaused {
		t.Fatalf("restored state %v, want paused", info.State)
	}
}
