package common

import (
	"repro/internal/core"
	"repro/internal/telemetry"
)

// Inbound live-migration page traffic. The migration engine drives the
// destination through core.MigrationSink: prepare registers a transfer
// against an already-defined domain, page chunks account received memory
// (and advance the machine's page-presence model once the domain runs in
// post-copy), finish drops the transfer state. The sink never touches
// domain lifecycle itself — the engine uses the ordinary define/create/
// undefine procedures for that, so an abandoned transfer leaves nothing
// behind but a deleted map entry.

var (
	sinkInbound  = telemetry.Default.Counter("migration_inbound_total")
	sinkChunks   = telemetry.Default.Counter("migration_chunks_rx_total")
	sinkPulls    = telemetry.Default.Counter("migration_pull_chunks_rx_total")
	sinkPagesRx  = telemetry.Default.Counter("migration_pages_rx_total")
	sinkFinished = telemetry.Default.Counter("migration_inbound_finished_total")
)

// inboundMigration is the receiver-side state of one transfer.
type inboundMigration struct {
	domain     string
	totalPages uint64
	streams    int
	received   uint64   // pages received in total
	pullPages  uint64   // pages received on the priority (fault-pull) stream
	perStream  []uint64 // pages per background stream
}

// MigratePrepare implements core.MigrationSink.
func (b *Base) MigratePrepare(domain string, totalPages uint64, streams int) (uint64, error) {
	if streams < 1 {
		streams = 1
	}
	b.mu.Lock()
	_, defined := b.defs[domain]
	b.mu.Unlock()
	if !defined {
		return 0, core.Errorf(core.ErrNoDomain,
			"migrate prepare: no domain %q on destination", domain)
	}
	b.migMu.Lock()
	defer b.migMu.Unlock()
	if b.migrations == nil {
		b.migrations = make(map[uint64]*inboundMigration)
	}
	for _, in := range b.migrations {
		if in.domain == domain {
			return 0, core.Errorf(core.ErrOperationInvalid,
				"migrate prepare: domain %q already receiving a migration", domain)
		}
	}
	b.migCookie++
	cookie := b.migCookie
	b.migrations[cookie] = &inboundMigration{
		domain:     domain,
		totalPages: totalPages,
		streams:    streams,
		perStream:  make([]uint64, streams),
	}
	sinkInbound.Inc()
	return cookie, nil
}

// MigratePages implements core.MigrationSink.
func (b *Base) MigratePages(ch *core.MigrateChunk) error {
	b.migMu.Lock()
	in, ok := b.migrations[ch.Cookie]
	if !ok {
		b.migMu.Unlock()
		return core.Errorf(core.ErrOperationInvalid,
			"migrate pages: unknown transfer cookie %d", ch.Cookie)
	}
	in.received += ch.Pages
	if ch.Priority {
		in.pullPages += ch.Pages
		sinkPulls.Inc()
	} else {
		if ch.Stream >= 0 && ch.Stream < len(in.perStream) {
			in.perStream[ch.Stream] += ch.Pages
		}
		sinkChunks.Inc()
	}
	domain := in.domain
	b.migMu.Unlock()
	sinkPagesRx.Add(ch.Pages)

	// Once the destination domain is running (post-copy switch-over
	// happened), arriving pages become resident in its machine model.
	if m, err := b.Machine(domain); err == nil {
		m.MarkPresent(ch.Pages)
	}
	return nil
}

// MigrateFinish implements core.MigrationSink.
func (b *Base) MigrateFinish(cookie uint64, commit bool) error {
	b.migMu.Lock()
	defer b.migMu.Unlock()
	if _, ok := b.migrations[cookie]; !ok {
		return core.Errorf(core.ErrOperationInvalid,
			"migrate finish: unknown transfer cookie %d", cookie)
	}
	delete(b.migrations, cookie)
	sinkFinished.Inc()
	return nil
}

// InboundMigrationPages reports the received/pull page totals of the
// active transfer targeting domain, if any. Tests and diagnostics use it
// to verify that page traffic really crossed the sink.
func (b *Base) InboundMigrationPages(domain string) (received, pulled uint64, ok bool) {
	b.migMu.Lock()
	defer b.migMu.Unlock()
	for _, in := range b.migrations {
		if in.domain == domain {
			return in.received, in.pullPages, true
		}
	}
	return 0, 0, false
}
