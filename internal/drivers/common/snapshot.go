package common

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/xmlspec"
)

// snapshotRec is one stored snapshot of a domain.
type snapshotRec struct {
	name        string
	description string
	created     int64
	state       core.DomainState
	memKiB      uint64
	vcpus       int
}

// savedImage is a managed-save image of a stopped domain.
type savedImage struct {
	memKiB uint64
	vcpus  int
	paused bool
}

var (
	_ core.SnapshotSupport    = (*Base)(nil)
	_ core.ManagedSaveSupport = (*Base)(nil)
)

// CreateSnapshot implements core.SnapshotSupport. Snapshotting an active
// domain is a live snapshot: the guest keeps running. Reverting spawns a
// fresh native instance (host-side accounting restarts, as with a real
// process-per-guest hypervisor).
func (b *Base) CreateSnapshot(domain, xmlDesc string) (string, error) {
	snap := &xmlspec.DomainSnapshot{}
	if xmlDesc != "" {
		parsed, err := xmlspec.ParseDomainSnapshot([]byte(xmlDesc))
		if err != nil {
			return "", core.Errorf(core.ErrXML, "%v", err)
		}
		snap = parsed
	}
	b.mu.Lock()
	r, ok := b.defs[domain]
	b.mu.Unlock()
	if !ok {
		return "", core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}

	rec := &snapshotRec{
		description: snap.Description,
		created:     time.Now().Unix(),
		state:       core.DomainShutoff,
		memKiB:      r.def.MemoryKiBOrZero(),
		vcpus:       int(r.def.VCPU.Count),
	}
	if r.active {
		info, err := b.hooks.Info(domain)
		if err != nil {
			return "", core.Errorf(core.ErrInternal, "snapshot %q: %v", domain, err)
		}
		rec.state = info.State
		rec.memKiB = info.MemKiB
		rec.vcpus = info.VCPUs
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	rec.name = snap.Name
	if rec.name == "" {
		rec.name = fmt.Sprintf("snap-%d", len(r.snapshots)+1)
		for b.findSnapshotLocked(r, rec.name) != -1 {
			rec.name += "x"
		}
	} else if b.findSnapshotLocked(r, rec.name) != -1 {
		return "", core.Errorf(core.ErrDuplicate, "domain %q already has snapshot %q", domain, rec.name)
	}
	r.snapshots = append(r.snapshots, rec)
	b.log.Infof(b.module(), "domain %s: snapshot %s created (state %s)", domain, rec.name, rec.state)
	return rec.name, nil
}

func (b *Base) findSnapshotLocked(r *record, name string) int {
	for i, s := range r.snapshots {
		if s.name == name {
			return i
		}
	}
	return -1
}

// ListSnapshots implements core.SnapshotSupport.
func (b *Base) ListSnapshots(domain string) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.defs[domain]
	if !ok {
		return nil, core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	out := make([]string, len(r.snapshots))
	for i, s := range r.snapshots {
		out[i] = s.name
	}
	return out, nil
}

// SnapshotXML implements core.SnapshotSupport.
func (b *Base) SnapshotXML(domain, snapshot string) (string, error) {
	b.mu.Lock()
	r, ok := b.defs[domain]
	if !ok {
		b.mu.Unlock()
		return "", core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	i := b.findSnapshotLocked(r, snapshot)
	if i == -1 {
		b.mu.Unlock()
		return "", core.Errorf(core.ErrInvalidArg, "domain %q has no snapshot %q", domain, snapshot)
	}
	rec := r.snapshots[i]
	b.mu.Unlock()
	doc := &xmlspec.DomainSnapshot{
		Name:         rec.name,
		Description:  rec.description,
		State:        rec.state.String(),
		CreationTime: rec.created,
		DomainName:   domain,
	}
	out, err := doc.Marshal()
	if err != nil {
		return "", core.Errorf(core.ErrXML, "%v", err)
	}
	return string(out), nil
}

// RevertSnapshot implements core.SnapshotSupport: the current execution
// is destroyed, then the domain is brought back to the snapshot's
// lifecycle state and tunables.
func (b *Base) RevertSnapshot(domain, snapshot string) error {
	b.mu.Lock()
	r, ok := b.defs[domain]
	if !ok {
		b.mu.Unlock()
		return core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	i := b.findSnapshotLocked(r, snapshot)
	if i == -1 {
		b.mu.Unlock()
		return core.Errorf(core.ErrInvalidArg, "domain %q has no snapshot %q", domain, snapshot)
	}
	rec := *r.snapshots[i]
	active := r.active
	b.mu.Unlock()

	if active {
		if err := b.DestroyDomain(domain); err != nil {
			return err
		}
	}
	switch rec.state {
	case core.DomainRunning, core.DomainPaused:
		if err := b.CreateDomain(domain); err != nil {
			return err
		}
		// Restore the snapshot's tunables on the fresh instance.
		if err := b.hooks.SetMemory(domain, rec.memKiB); err != nil {
			b.log.Warnf(b.module(), "revert %s/%s: restore memory: %v", domain, snapshot, err)
		}
		if err := b.hooks.SetVCPUs(domain, rec.vcpus); err != nil {
			b.log.Warnf(b.module(), "revert %s/%s: restore vcpus: %v", domain, snapshot, err)
		}
		if rec.state == core.DomainPaused {
			if err := b.SuspendDomain(domain); err != nil {
				return err
			}
		}
	default:
		// Snapshot of a powered-off domain: nothing more to do.
	}
	b.mu.Lock()
	uuidStr := r.uuidStr
	b.mu.Unlock()
	b.log.Infof(b.module(), "domain %s reverted to snapshot %s", domain, snapshot)
	b.bus.Emit(events.Event{Type: events.EventStarted, Domain: domain, UUID: uuidStr,
		Detail: "reverted to snapshot " + snapshot})
	return nil
}

// DeleteSnapshot implements core.SnapshotSupport.
func (b *Base) DeleteSnapshot(domain, snapshot string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.defs[domain]
	if !ok {
		return core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	i := b.findSnapshotLocked(r, snapshot)
	if i == -1 {
		return core.Errorf(core.ErrInvalidArg, "domain %q has no snapshot %q", domain, snapshot)
	}
	r.snapshots = append(r.snapshots[:i], r.snapshots[i+1:]...)
	return nil
}

// ManagedSave implements core.ManagedSaveSupport.
func (b *Base) ManagedSave(domain string) error {
	b.mu.Lock()
	r, ok := b.defs[domain]
	if !ok {
		b.mu.Unlock()
		return core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	if !r.active {
		b.mu.Unlock()
		return core.Errorf(core.ErrOperationInvalid, "domain %q is not active", domain)
	}
	b.mu.Unlock()

	info, err := b.hooks.Info(domain)
	if err != nil {
		return core.Errorf(core.ErrInternal, "managed save %q: %v", domain, err)
	}
	if info.State != core.DomainRunning && info.State != core.DomainPaused {
		return core.Errorf(core.ErrOperationInvalid,
			"domain %q is %s; managed save needs a running or paused domain", domain, info.State)
	}
	img := &savedImage{memKiB: info.MemKiB, vcpus: info.VCPUs, paused: info.State == core.DomainPaused}
	if err := b.stop(domain, false); err != nil {
		return err
	}
	b.mu.Lock()
	r.managedSave = img
	b.mu.Unlock()
	b.log.Infof(b.module(), "domain %s state saved", domain)
	return nil
}

// HasManagedSave implements core.ManagedSaveSupport.
func (b *Base) HasManagedSave(domain string) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.defs[domain]
	if !ok {
		return false, core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	return r.managedSave != nil, nil
}

// ManagedSaveRemove implements core.ManagedSaveSupport.
func (b *Base) ManagedSaveRemove(domain string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.defs[domain]
	if !ok {
		return core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	if r.managedSave == nil {
		return core.Errorf(core.ErrOperationInvalid, "domain %q has no managed save image", domain)
	}
	r.managedSave = nil
	return nil
}

// restoreFromManagedSave applies a pending managed-save image right
// after a successful start; CreateDomain calls it.
func (b *Base) restoreFromManagedSave(domain string, r *record) error {
	b.mu.Lock()
	img := r.managedSave
	r.managedSave = nil
	b.mu.Unlock()
	if img == nil {
		return nil
	}
	if err := b.hooks.SetMemory(domain, img.memKiB); err != nil {
		b.log.Warnf(b.module(), "restore %s: memory: %v", domain, err)
	}
	if err := b.hooks.SetVCPUs(domain, img.vcpus); err != nil {
		b.log.Warnf(b.module(), "restore %s: vcpus: %v", domain, err)
	}
	if img.paused {
		if err := b.hooks.Suspend(domain); err != nil {
			return core.Errorf(core.ErrInternal, "restore %s: pause: %v", domain, err)
		}
	}
	b.log.Infof(b.module(), "domain %s restored from managed save", domain)
	return nil
}
