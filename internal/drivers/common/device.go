package common

import (
	"repro/internal/core"
	"repro/internal/xmlspec"
)

var _ core.DeviceSupport = (*Base)(nil)

// AttachDevice implements core.DeviceSupport: the device joins the
// persistent definition, and when the domain is active a network NIC is
// hot-plugged by leasing an address immediately.
func (b *Base) AttachDevice(domain, deviceXML string) error {
	dev, err := xmlspec.ParseDevice([]byte(deviceXML))
	if err != nil {
		return core.Errorf(core.ErrXML, "%v", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.defs[domain]
	if !ok {
		return core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	switch {
	case dev.Disk != nil:
		for _, d := range r.def.Devices.Disks {
			if d.Target.Dev == dev.Disk.Target.Dev {
				return core.Errorf(core.ErrDuplicate,
					"domain %q already has a disk at target %q", domain, dev.Disk.Target.Dev)
			}
		}
		r.def.Devices.Disks = append(r.def.Devices.Disks, *dev.Disk)
	case dev.Interface != nil:
		nic := dev.Interface
		if nic.MAC != nil {
			for _, existing := range r.def.Devices.Interfaces {
				if existing.MAC != nil && existing.MAC.Address == nic.MAC.Address {
					return core.Errorf(core.ErrDuplicate,
						"domain %q already has an interface with MAC %s", domain, nic.MAC.Address)
				}
			}
		}
		if r.active && nic.Type == "network" && nic.MAC != nil {
			if b.nets == nil {
				return core.Errorf(core.ErrNoSupport,
					"driver %q has no network subsystem", b.hooks.Type())
			}
			if _, err := b.nets.Attach(nic.Source.Network, nic.MAC.Address, domain); err != nil {
				return core.Errorf(core.ErrOperationInvalid, "%v", err)
			}
			r.leases = append(r.leases, attachedNIC{network: nic.Source.Network, mac: nic.MAC.Address})
		}
		r.def.Devices.Interfaces = append(r.def.Devices.Interfaces, *nic)
	default:
		return core.Errorf(core.ErrInvalidArg, "unsupported device kind %q", dev.Kind())
	}
	b.log.Infof(b.module(), "domain %s: %s attached", domain, dev.Kind())
	return nil
}

// DetachDevice implements core.DeviceSupport: the device is matched by
// its identity (disk target dev, interface MAC) and removed; a live
// network NIC releases its lease.
func (b *Base) DetachDevice(domain, deviceXML string) error {
	dev, err := xmlspec.ParseDevice([]byte(deviceXML))
	if err != nil {
		return core.Errorf(core.ErrXML, "%v", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.defs[domain]
	if !ok {
		return core.Errorf(core.ErrNoDomain, "no domain %q", domain)
	}
	switch {
	case dev.Disk != nil:
		for i, d := range r.def.Devices.Disks {
			if d.Target.Dev == dev.Disk.Target.Dev {
				r.def.Devices.Disks = append(r.def.Devices.Disks[:i], r.def.Devices.Disks[i+1:]...)
				b.log.Infof(b.module(), "domain %s: disk %s detached", domain, d.Target.Dev)
				return nil
			}
		}
		return core.Errorf(core.ErrInvalidArg,
			"domain %q has no disk at target %q", domain, dev.Disk.Target.Dev)
	case dev.Interface != nil:
		if dev.Interface.MAC == nil {
			return core.Errorf(core.ErrInvalidArg, "interface detach requires a MAC address")
		}
		mac := dev.Interface.MAC.Address
		for i, nic := range r.def.Devices.Interfaces {
			if nic.MAC == nil || nic.MAC.Address != mac {
				continue
			}
			r.def.Devices.Interfaces = append(r.def.Devices.Interfaces[:i], r.def.Devices.Interfaces[i+1:]...)
			for j, lease := range r.leases {
				if lease.mac == mac {
					if b.nets != nil {
						if err := b.nets.Detach(lease.network, mac); err != nil {
							b.log.Warnf(b.module(), "detach %s: %v", mac, err)
						}
					}
					r.leases = append(r.leases[:j], r.leases[j+1:]...)
					break
				}
			}
			b.log.Infof(b.module(), "domain %s: interface %s detached", domain, mac)
			return nil
		}
		return core.Errorf(core.ErrInvalidArg,
			"domain %q has no interface with MAC %s", domain, mac)
	default:
		return core.Errorf(core.ErrInvalidArg, "unsupported device kind %q", dev.Kind())
	}
}
