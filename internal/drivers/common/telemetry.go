package common

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/telemetry"
)

// countOp bumps the per-driver operation counter
// driver_ops_total{driver,op}. Handles are cached per Base so the cost
// after the first call of each op is one map load and one atomic add.
func (b *Base) countOp(op string) {
	if v, ok := b.ops.Load(op); ok {
		v.(*telemetry.Counter).Inc()
		return
	}
	c := telemetry.Default.Counter(fmt.Sprintf(
		"driver_ops_total{driver=%q,op=%q}", b.hooks.Type(), op))
	actual, _ := b.ops.LoadOrStore(op, c)
	actual.(*telemetry.Counter).Inc()
}

// beginOp counts the operation and evaluates the "driver.op.<op>"
// faultpoint: an armed error spec fails the operation before it touches
// any state (delay specs sleep inside Eval). Disarmed — always, outside
// chaos runs — this is countOp plus one atomic load.
func (b *Base) beginOp(op string) error {
	b.countOp(op)
	if spec, ok := faultpoint.Default.Eval("driver.op." + op); ok {
		if spec.Mode == faultpoint.ModeError {
			if spec.Err != nil {
				return spec.Err
			}
			return core.Errorf(core.ErrInternal, "injected fault at driver.op.%s", op)
		}
	}
	return nil
}
