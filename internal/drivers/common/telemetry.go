package common

import (
	"fmt"

	"repro/internal/telemetry"
)

// countOp bumps the per-driver operation counter
// driver_ops_total{driver,op}. Handles are cached per Base so the cost
// after the first call of each op is one map load and one atomic add.
func (b *Base) countOp(op string) {
	if v, ok := b.ops.Load(op); ok {
		v.(*telemetry.Counter).Inc()
		return
	}
	c := telemetry.Default.Counter(fmt.Sprintf(
		"driver_ops_total{driver=%q,op=%q}", b.hooks.Type(), op))
	actual, _ := b.ops.LoadOrStore(op, c)
	actual.(*telemetry.Counter).Inc()
}
