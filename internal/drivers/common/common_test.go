package common

import (
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/hyper"
	"repro/internal/nodeinfo"
	"repro/internal/xmlspec"
)

func TestDefToConfig(t *testing.T) {
	cur := xmlspec.Memory{Unit: "MiB", Value: 512}
	def := &xmlspec.Domain{
		Type:          "test",
		Name:          "d",
		UUID:          "11111111-2222-3333-4444-555555555555",
		Description:   "cpu_util=0.75 dirty_pages_sec=1234 block_iops=55 net_pps=66 unrelated words",
		Memory:        xmlspec.Memory{Unit: "GiB", Value: 1},
		CurrentMemory: &cur,
		VCPU:          xmlspec.VCPU{Count: 3},
		Devices: xmlspec.Devices{
			Disks: []xmlspec.Disk{{Type: "file", Source: xmlspec.DiskSource{File: "/x"},
				Target: xmlspec.DiskTarget{Dev: "vda"}}},
			Interfaces: []xmlspec.Interface{{Type: "network",
				MAC:    &xmlspec.MAC{Address: "52:54:00:00:00:01"},
				Source: xmlspec.InterfaceSource{Network: "default"}}},
		},
	}
	cfg, err := DefToConfig(def)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "d" || cfg.VCPUs != 3 {
		t.Fatalf("%+v", cfg)
	}
	if cfg.MaxMemKiB != 1024*1024 || cfg.MemKiB != 512*1024 {
		t.Fatalf("memory: max=%d cur=%d", cfg.MaxMemKiB, cfg.MemKiB)
	}
	if cfg.CPUUtil != 0.75 || cfg.DirtyPagesSec != 1234 || cfg.BlockIOPS != 55 || cfg.NetPPS != 66 {
		t.Fatalf("workload hints: %+v", cfg)
	}
	if len(cfg.Disks) != 1 || cfg.Disks[0].Target != "vda" {
		t.Fatalf("disks: %+v", cfg.Disks)
	}
	if len(cfg.NICs) != 1 || cfg.NICs[0].MAC != "52:54:00:00:00:01" || cfg.NICs[0].Network != "default" {
		t.Fatalf("nics: %+v", cfg.NICs)
	}
	if cfg.UUID.IsNil() {
		t.Fatal("uuid not propagated")
	}
}

func TestDefToConfigBadMemoryUnit(t *testing.T) {
	def := &xmlspec.Domain{
		Type: "test", Name: "d",
		Memory: xmlspec.Memory{Unit: "XB", Value: 1},
		VCPU:   xmlspec.VCPU{Count: 1},
	}
	if _, err := DefToConfig(def); err == nil {
		t.Fatal("bad unit accepted")
	}
}

func TestApplyWorkloadHintsIgnoresMalformed(t *testing.T) {
	var cfg hyper.Config
	applyWorkloadHints(&cfg, "cpu_util=notanumber dirty_pages_sec= block_iops net_pps=10")
	if cfg.NetPPS != 10 {
		t.Fatalf("good hint lost: %+v", cfg)
	}
	if cfg.BlockIOPS != 0 || cfg.DirtyPagesSec != 0 {
		t.Fatalf("malformed hints applied: %+v", cfg)
	}
}

func TestStateMapping(t *testing.T) {
	cases := map[hyper.State]core.DomainState{
		hyper.StateRunning:     core.DomainRunning,
		hyper.StatePaused:      core.DomainPaused,
		hyper.StateShutdown:    core.DomainShutdown,
		hyper.StateShutoff:     core.DomainShutoff,
		hyper.StateCrashed:     core.DomainCrashed,
		hyper.StatePMSuspended: core.DomainPMSuspended,
		hyper.State(99):        core.DomainNoState,
	}
	for in, want := range cases {
		if got := StateFromHyper(in); got != want {
			t.Errorf("StateFromHyper(%v)=%v want %v", in, got, want)
		}
	}
}

func TestStatsAndInfoFromMachine(t *testing.T) {
	st := hyper.Stats{
		State: hyper.StateRunning, CPUTimeNs: 1, MemKiB: 2, MaxMemKiB: 3, VCPUs: 4,
		RdBytes: 5, WrBytes: 6, RdReqs: 7, WrReqs: 8,
		RxBytes: 9, TxBytes: 10, RxPkts: 11, TxPkts: 12, DirtyPages: 13,
	}
	stats := StatsFromMachine(st)
	if stats.State != core.DomainRunning || stats.CPUTimeNs != 1 || stats.DirtyPages != 13 ||
		stats.RdBytes != 5 || stats.TxPkts != 12 {
		t.Fatalf("%+v", stats)
	}
	info := InfoFromMachine(st)
	if info.State != core.DomainRunning || info.MaxMemKiB != 3 || info.MemKiB != 2 ||
		info.VCPUs != 4 || info.CPUTimeNs != 1 {
		t.Fatalf("%+v", info)
	}
}

func TestMarkCrashedEmitsEvent(t *testing.T) {
	// Minimal hooks: nothing is called for MarkCrashed.
	b := New(nopHooks{}, Options{Node: testNode(t)})
	col := events.NewCollector()
	b.EventBus().Subscribe("", nil, col.Callback())
	if _, err := b.DefineDomain(`<domain type='nop'><name>d</name><memory>1024</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>`); err != nil {
		t.Fatal(err)
	}
	b.MarkCrashed("d")
	b.MarkCrashed("ghost") // unknown: silently ignored
	evs := col.Events()
	var crashes int
	for _, ev := range evs {
		if ev.Type == events.EventCrashed {
			crashes++
			if ev.Domain != "d" || ev.UUID == "" {
				t.Fatalf("crash event %+v", ev)
			}
		}
	}
	if crashes != 1 {
		t.Fatalf("crash events: %d", crashes)
	}
}

// nopHooks is a do-nothing Hooks implementation for Base unit tests.
type nopHooks struct{}

func (nopHooks) Type() string                           { return "nop" }
func (nopHooks) Version() (string, error)               { return "nop 1", nil }
func (nopHooks) GuestOSType() string                    { return "hvm" }
func (nopHooks) Start(*xmlspec.Domain) error            { return nil }
func (nopHooks) Stop(string, bool) error                { return nil }
func (nopHooks) Reboot(string) error                    { return nil }
func (nopHooks) Suspend(string) error                   { return nil }
func (nopHooks) Resume(string) error                    { return nil }
func (nopHooks) Info(string) (core.DomainInfo, error)   { return core.DomainInfo{}, nil }
func (nopHooks) Stats(string) (core.DomainStats, error) { return core.DomainStats{}, nil }
func (nopHooks) SetMemory(string, uint64) error         { return nil }
func (nopHooks) SetVCPUs(string, int) error             { return nil }
func (nopHooks) ID(string) int                          { return 1 }
func (nopHooks) Machine(string) (*hyper.Machine, error) { return nil, nil }

func testNode(t *testing.T) *nodeinfo.Node {
	t.Helper()
	n, err := nodeinfo.NewNode("unit", nodeinfo.ProfileLaptop)
	if err != nil {
		t.Fatal(err)
	}
	return n
}
