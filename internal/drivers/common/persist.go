package common

import (
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/statestore"
)

// The state root is process-wide daemon configuration: when govirtd (or a
// test) points it at a directory, every driver base created afterwards
// journals its defined domains, networks and pools there and replays them
// on construction. Driver connections are per-client, so this is what
// makes definitions survive not just connection close but a kill -9 of
// the whole daemon: the next daemon process replays the journal and
// serves the same objects.
var (
	stateRootMu sync.RWMutex
	stateRoot   string
)

// SetStateRoot points persistence at a directory ("" disables it, the
// default). Affects bases created after the call.
func SetStateRoot(dir string) {
	stateRootMu.Lock()
	stateRoot = dir
	stateRootMu.Unlock()
}

// StateRoot returns the configured persistence directory.
func StateRoot() string {
	stateRootMu.RLock()
	defer stateRootMu.RUnlock()
	return stateRoot
}

// openStore attaches the base to its per-driver store and replays
// persisted state. Called from New before the base is shared, so the
// replaying flag needs no locking. The store directory is
// <root>/<driver-type>[/<scope>], so drivers with URI-selected
// environments keep one journal per environment.
func (b *Base) openStore() {
	root := StateRoot()
	if root == "" {
		return
	}
	dir := filepath.Join(root, b.hooks.Type())
	if b.scope != "" {
		dir = filepath.Join(dir, b.scope)
	}
	s, err := statestore.Open(dir)
	if err != nil {
		b.log.Warnf(b.module(), "state store unavailable, persistence off: %v", err)
		return
	}
	b.store = s
	b.replay()
}

// sanitizeScope flattens a persistence scope into a single safe path
// component: separators and other hostile characters become '_', and
// the dot-only names that would escape the store directory are
// neutralised.
func sanitizeScope(scope string) string {
	if scope == "" {
		return ""
	}
	out := []byte(scope)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			out[i] = '_'
		}
	}
	s := string(out)
	if strings.Trim(s, ".") == "" {
		return "_"
	}
	return s
}

// replay re-applies the journal through the normal define/start paths:
// networks and pools first (domains may reference them), active markers
// after their definitions. Individual failures are logged and skipped —
// a half-recovered daemon beats a dead one.
func (b *Base) replay() {
	b.replaying = true
	defer func() { b.replaying = false }()

	load := func(kind string) []statestore.Object {
		objs, err := b.store.LoadAll(kind)
		if err != nil {
			b.log.Warnf(b.module(), "replay %s: %v", kind, err)
		}
		return objs
	}
	if b.nets != nil {
		for _, o := range load(statestore.KindNetworks) {
			if err := b.DefineNetwork(string(o.Data)); err != nil {
				b.log.Warnf(b.module(), "replay network %s: %v", o.Name, err)
			}
		}
		for _, o := range load(statestore.KindNetsActive) {
			if err := b.StartNetwork(o.Name); err != nil {
				b.log.Warnf(b.module(), "replay network start %s: %v", o.Name, err)
			}
		}
	}
	if b.pools != nil {
		for _, o := range load(statestore.KindPools) {
			if err := b.DefineStoragePool(string(o.Data)); err != nil {
				b.log.Warnf(b.module(), "replay pool %s: %v", o.Name, err)
			}
		}
		for _, o := range load(statestore.KindPoolsActive) {
			if err := b.StartStoragePool(o.Name); err != nil {
				b.log.Warnf(b.module(), "replay pool start %s: %v", o.Name, err)
			}
		}
	}
	for _, o := range load(statestore.KindDomains) {
		if _, err := b.DefineDomain(string(o.Data)); err != nil {
			b.log.Warnf(b.module(), "replay domain %s: %v", o.Name, err)
		}
	}
	for _, o := range load(statestore.KindDomsActive) {
		if err := b.CreateDomain(o.Name); err != nil {
			b.log.Warnf(b.module(), "replay domain start %s: %v", o.Name, err)
		}
	}
}

// persistSave journals one object; definition paths fail the operation
// when the journal write fails, since claiming "defined" for an object a
// restart would forget breaks the crash-safety contract.
func (b *Base) persistSave(kind, name string, data []byte) error {
	if b.store == nil || b.replaying {
		return nil
	}
	if err := b.store.Save(kind, name, data); err != nil {
		return core.Errorf(core.ErrInternal, "persist %s %q: %v", kind, name, err)
	}
	return nil
}

// persistDelete removes a journal entry. Deletion failures only warn:
// the worst outcome is a stale object reappearing after restart, which
// is recoverable, unlike failing an undefine that already happened.
func (b *Base) persistDelete(kind, name string) {
	if b.store == nil || b.replaying {
		return
	}
	if err := b.store.Delete(kind, name); err != nil {
		b.log.Warnf(b.module(), "persist delete %s %q: %v", kind, name, err)
	}
}
