package common

import (
	"repro/internal/core"
	"repro/internal/statestore"
	"repro/internal/xmlspec"
)

// Network facade: implements core.NetworkSupport by delegating to the
// vnet manager, translating substrate errors into API errors.

// ListNetworks implements core.NetworkSupport.
func (b *Base) ListNetworks() ([]string, error) {
	if b.nets == nil {
		return nil, b.noNetworks()
	}
	return b.nets.List(), nil
}

func (b *Base) noNetworks() error {
	return core.Errorf(core.ErrNoSupport, "driver %q has no network subsystem", b.hooks.Type())
}

// DefineNetwork implements core.NetworkSupport.
func (b *Base) DefineNetwork(xmlDesc string) error {
	if b.nets == nil {
		return b.noNetworks()
	}
	def, err := xmlspec.ParseNetwork([]byte(xmlDesc))
	if err != nil {
		return core.Errorf(core.ErrXML, "%v", err)
	}
	if err := b.nets.Define(def); err != nil {
		return core.Errorf(core.ErrDuplicate, "%v", err)
	}
	if err := b.persistSave(statestore.KindNetworks, def.Name, []byte(xmlDesc)); err != nil {
		b.nets.Undefine(def.Name) //nolint:errcheck
		return err
	}
	return nil
}

// UndefineNetwork implements core.NetworkSupport.
func (b *Base) UndefineNetwork(name string) error {
	if b.nets == nil {
		return b.noNetworks()
	}
	if err := b.nets.Undefine(name); err != nil {
		return core.Errorf(core.ErrNoNetwork, "%v", err)
	}
	b.persistDelete(statestore.KindNetworks, name)
	b.persistDelete(statestore.KindNetsActive, name)
	return nil
}

// StartNetwork implements core.NetworkSupport.
func (b *Base) StartNetwork(name string) error {
	if b.nets == nil {
		return b.noNetworks()
	}
	if err := b.nets.Start(name); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "%v", err)
	}
	// Active markers are best-effort snapshots of desired run state; the
	// network itself is already up, so a journal hiccup only warns.
	if err := b.persistSave(statestore.KindNetsActive, name, nil); err != nil {
		b.log.Warnf(b.module(), "%v", err)
	}
	return nil
}

// StopNetwork implements core.NetworkSupport.
func (b *Base) StopNetwork(name string) error {
	if b.nets == nil {
		return b.noNetworks()
	}
	if err := b.nets.Stop(name); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "%v", err)
	}
	b.persistDelete(statestore.KindNetsActive, name)
	return nil
}

// NetworkXML implements core.NetworkSupport.
func (b *Base) NetworkXML(name string) (string, error) {
	if b.nets == nil {
		return "", b.noNetworks()
	}
	xml, err := b.nets.XML(name)
	if err != nil {
		return "", core.Errorf(core.ErrNoNetwork, "%v", err)
	}
	return xml, nil
}

// NetworkIsActive implements core.NetworkSupport.
func (b *Base) NetworkIsActive(name string) (bool, error) {
	if b.nets == nil {
		return false, b.noNetworks()
	}
	active, err := b.nets.IsActive(name)
	if err != nil {
		return false, core.Errorf(core.ErrNoNetwork, "%v", err)
	}
	return active, nil
}

// NetworkDHCPLeases implements core.NetworkSupport.
func (b *Base) NetworkDHCPLeases(name string) ([]core.DHCPLease, error) {
	if b.nets == nil {
		return nil, b.noNetworks()
	}
	leases, err := b.nets.Leases(name)
	if err != nil {
		return nil, core.Errorf(core.ErrNoNetwork, "%v", err)
	}
	out := make([]core.DHCPLease, len(leases))
	for i, l := range leases {
		out[i] = core.DHCPLease{MAC: l.MAC, IP: l.IP, Hostname: l.Hostname}
	}
	return out, nil
}

// Storage facade: implements core.StorageSupport via the storage manager.

func (b *Base) noStorage() error {
	return core.Errorf(core.ErrNoSupport, "driver %q has no storage subsystem", b.hooks.Type())
}

// ListStoragePools implements core.StorageSupport.
func (b *Base) ListStoragePools() ([]string, error) {
	if b.pools == nil {
		return nil, b.noStorage()
	}
	return b.pools.List(), nil
}

// DefineStoragePool implements core.StorageSupport.
func (b *Base) DefineStoragePool(xmlDesc string) error {
	if b.pools == nil {
		return b.noStorage()
	}
	def, err := xmlspec.ParseStoragePool([]byte(xmlDesc))
	if err != nil {
		return core.Errorf(core.ErrXML, "%v", err)
	}
	if err := b.pools.Define(def); err != nil {
		return core.Errorf(core.ErrDuplicate, "%v", err)
	}
	if err := b.persistSave(statestore.KindPools, def.Name, []byte(xmlDesc)); err != nil {
		b.pools.Undefine(def.Name) //nolint:errcheck
		return err
	}
	return nil
}

// UndefineStoragePool implements core.StorageSupport.
func (b *Base) UndefineStoragePool(name string) error {
	if b.pools == nil {
		return b.noStorage()
	}
	if err := b.pools.Undefine(name); err != nil {
		return core.Errorf(core.ErrNoStoragePool, "%v", err)
	}
	b.persistDelete(statestore.KindPools, name)
	b.persistDelete(statestore.KindPoolsActive, name)
	return nil
}

// StartStoragePool implements core.StorageSupport.
func (b *Base) StartStoragePool(name string) error {
	if b.pools == nil {
		return b.noStorage()
	}
	if err := b.pools.Start(name); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "%v", err)
	}
	if err := b.persistSave(statestore.KindPoolsActive, name, nil); err != nil {
		b.log.Warnf(b.module(), "%v", err)
	}
	return nil
}

// StopStoragePool implements core.StorageSupport.
func (b *Base) StopStoragePool(name string) error {
	if b.pools == nil {
		return b.noStorage()
	}
	if err := b.pools.Stop(name); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "%v", err)
	}
	b.persistDelete(statestore.KindPoolsActive, name)
	return nil
}

// StoragePoolXML implements core.StorageSupport.
func (b *Base) StoragePoolXML(name string) (string, error) {
	if b.pools == nil {
		return "", b.noStorage()
	}
	xml, err := b.pools.XML(name)
	if err != nil {
		return "", core.Errorf(core.ErrNoStoragePool, "%v", err)
	}
	return xml, nil
}

// StoragePoolInfo implements core.StorageSupport.
func (b *Base) StoragePoolInfo(name string) (core.StoragePoolInfo, error) {
	if b.pools == nil {
		return core.StoragePoolInfo{}, b.noStorage()
	}
	info, err := b.pools.Info(name)
	if err != nil {
		return core.StoragePoolInfo{}, core.Errorf(core.ErrNoStoragePool, "%v", err)
	}
	return core.StoragePoolInfo{
		Active:        info.Active,
		CapacityKiB:   info.CapacityKiB,
		AllocationKiB: info.AllocationKiB,
		AvailableKiB:  info.AvailableKiB,
	}, nil
}

// ListVolumes implements core.StorageSupport.
func (b *Base) ListVolumes(pool string) ([]string, error) {
	if b.pools == nil {
		return nil, b.noStorage()
	}
	vols, err := b.pools.Volumes(pool)
	if err != nil {
		return nil, core.Errorf(core.ErrNoStoragePool, "%v", err)
	}
	return vols, nil
}

// CreateVolume implements core.StorageSupport.
func (b *Base) CreateVolume(pool, xmlDesc string) error {
	if b.pools == nil {
		return b.noStorage()
	}
	def, err := xmlspec.ParseStorageVolume([]byte(xmlDesc))
	if err != nil {
		return core.Errorf(core.ErrXML, "%v", err)
	}
	if err := b.pools.CreateVolume(pool, def); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "%v", err)
	}
	return nil
}

// DeleteVolume implements core.StorageSupport.
func (b *Base) DeleteVolume(pool, name string) error {
	if b.pools == nil {
		return b.noStorage()
	}
	if err := b.pools.DeleteVolume(pool, name); err != nil {
		return core.Errorf(core.ErrNoStorageVol, "%v", err)
	}
	return nil
}

// VolumeXML implements core.StorageSupport.
func (b *Base) VolumeXML(pool, name string) (string, error) {
	if b.pools == nil {
		return "", b.noStorage()
	}
	xml, err := b.pools.VolumeXML(pool, name)
	if err != nil {
		return "", core.Errorf(core.ErrNoStorageVol, "%v", err)
	}
	return xml, nil
}
