package common

import (
	"sync"

	"repro/internal/core"
	"repro/internal/events"
)

var (
	_ core.BulkMonitor     = (*Base)(nil)
	_ core.BulkMonitorInto = (*Base)(nil)
)

// sweepScratch holds the per-sweep working slices so repeated polls of
// the same host allocate nothing. Pooled entries retain at most one
// sweep's worth of record/name references, all owned by a Base anyway.
type sweepScratch struct {
	recs   []*record
	got    []bool
	active []string
	idx    []int
}

var sweepPool = sync.Pool{New: func() interface{} { return new(sweepScratch) }}

// InfoBatcher is an optional Hooks extension for drivers whose native
// layer can answer a whole monitoring sweep in one registry pass.
// InfoEach calls fn once per named guest still known natively, in input
// order; names that vanished mid-sweep are skipped. Drivers without it
// fall back to one Info call per guest.
type InfoBatcher interface {
	InfoEach(names []string, fn func(i int, info core.DomainInfo))
}

// DomainListInfo implements core.BulkMonitor: one registry pass under a
// single lock acquisition instead of a list + N lookups. Guests that
// vanish between the registry snapshot and the hypervisor query are
// skipped, matching the interface contract.
func (b *Base) DomainListInfo(flags core.ListFlags, names []string) ([]core.NamedDomainInfo, error) {
	return b.domainListInfo(flags, names, nil)
}

// domainListInfo appends the sweep's rows into dst (reusing its
// capacity) and returns the filled slice; DomainListInfo passes nil,
// NodeInventoryInto passes the retained inventory's rows.
func (b *Base) domainListInfo(flags core.ListFlags, names []string, dst []core.NamedDomainInfo) ([]core.NamedDomainInfo, error) {
	if err := b.beginOp("bulkinfo"); err != nil {
		return nil, err
	}
	if flags == 0 {
		flags = core.ListActive | core.ListInactive
	}
	sc := sweepPool.Get().(*sweepScratch)
	defer sweepPool.Put(sc)

	// Snapshot matching records in one critical section, building the
	// result rows in place: inactive rows are final immediately, active
	// rows hold their name and get their info filled by the hypervisor
	// query below. recs parallels rows (nil = inactive/final) so the
	// sweep needs no separate entry scratch however large the fleet is.
	b.mu.Lock()
	rows := dst
	recs := sc.recs[:0]
	if len(names) > 0 {
		for _, n := range names {
			r, ok := b.defs[n]
			if !ok {
				continue
			}
			if r.active {
				rows = append(rows, core.NamedDomainInfo{Name: n})
				recs = append(recs, r)
			} else {
				rows = append(rows, core.NamedDomainInfo{Name: n, Info: b.inactiveInfo(r)})
				recs = append(recs, nil)
			}
		}
	} else {
		if cap(rows) < len(b.defs) {
			grown := make([]core.NamedDomainInfo, len(rows), len(b.defs))
			copy(grown, rows)
			rows = grown
		}
		for _, r := range b.order {
			if r.active && flags&core.ListActive == 0 {
				continue
			}
			if !r.active && flags&core.ListInactive == 0 {
				continue
			}
			if r.active {
				rows = append(rows, core.NamedDomainInfo{Name: r.name})
				recs = append(recs, r)
			} else {
				rows = append(rows, core.NamedDomainInfo{Name: r.name, Info: b.inactiveInfo(r)})
				recs = append(recs, nil)
			}
		}
		// Rows come out in definition order, not name order: sorting a
		// large fleet would cost more than the rest of the sweep, while
		// a STABLE order lets a polling client decode repeated sweeps
		// over its previous rows without re-allocating the unchanged
		// names. ListDomains remains the sorted view.
	}
	b.mu.Unlock()
	sc.recs = recs

	// Query the hypervisor outside the registry lock: in one batched
	// pass when the hooks support it, else one call per guest. A guest
	// that stopped between snapshot and query leaves got[i] false and is
	// compacted away below.
	if cap(sc.got) < len(rows) {
		sc.got = make([]bool, len(rows))
	}
	got := sc.got[:len(rows)]
	clear(got)
	if batcher, ok := b.hooks.(InfoBatcher); ok {
		active := sc.active[:0]
		idx := sc.idx[:0]
		for i := range rows {
			if recs[i] != nil {
				active = append(active, rows[i].Name)
				idx = append(idx, i)
			}
		}
		sc.active, sc.idx = active, idx
		if len(active) > 0 {
			batcher.InfoEach(active, func(i int, info core.DomainInfo) {
				rows[idx[i]].Info = info
				got[idx[i]] = true
			})
		}
	} else {
		for i := range rows {
			if recs[i] == nil {
				continue
			}
			if info, err := b.hooks.Info(rows[i].Name); err == nil {
				rows[i].Info = info
				got[i] = true
			}
		}
	}

	// Crash-transition bookkeeping for the whole sweep under one lock
	// (noteState would lock once per guest); events fire outside it.
	type crash struct{ name, uuid string }
	var emits []crash
	b.mu.Lock()
	for i := range rows {
		if recs[i] == nil || !got[i] {
			continue
		}
		if st := rows[i].Info.State; st == core.DomainCrashed && !recs[i].sawCrash {
			recs[i].sawCrash = true
			emits = append(emits, crash{name: rows[i].Name, uuid: recs[i].uuidStr})
		} else if st != core.DomainCrashed && recs[i].sawCrash {
			recs[i].sawCrash = false
		}
	}
	b.mu.Unlock()
	for _, c := range emits {
		b.log.Warnf(b.module(), "domain %s crashed", c.name)
		b.bus.Emit(events.Event{Type: events.EventCrashed, Domain: c.name, UUID: c.uuid})
	}

	// Compact away vanished guests in place.
	w := 0
	for i := range rows {
		if recs[i] != nil && !got[i] {
			continue
		}
		rows[w] = rows[i]
		w++
	}
	return rows[:w], nil
}

// NodeInventory implements core.BulkMonitor.
func (b *Base) NodeInventory() (core.NodeInventory, error) {
	var inv core.NodeInventory
	if err := b.NodeInventoryInto(&inv); err != nil {
		return core.NodeInventory{}, err
	}
	return inv, nil
}

// NodeInventoryInto implements core.BulkMonitorInto: the sweep rows are
// rebuilt inside inv's existing Domains capacity, so a steady-state
// poller (or the daemon answering one) allocates nothing per sweep.
func (b *Base) NodeInventoryInto(inv *core.NodeInventory) error {
	node, err := b.NodeInfo()
	if err != nil {
		return err
	}
	rows, err := b.domainListInfo(0, nil, inv.Domains[:0])
	if err != nil {
		return err
	}
	inv.Node, inv.Domains = node, rows
	return nil
}
