// Package common implements the shared skeleton of every local
// hypervisor driver: the persistent domain-definition registry, XML
// handling, lifecycle event emission, virtual network attachment, and the
// storage/network facade. Each concrete driver supplies only the Hooks
// that translate lifecycle operations into its hypervisor's native API
// (qsim's JSON monitor, xsim's hypercalls, csim's engine calls) — the
// same division of labour as the driver architecture this reproduces.
package common

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/hyper"
	"repro/internal/logging"
	"repro/internal/nodeinfo"
	"repro/internal/statestore"
	"repro/internal/storage"
	"repro/internal/uuid"
	"repro/internal/vnet"
	"repro/internal/xmlspec"
)

// Hooks is what a concrete driver implements against its native API.
type Hooks interface {
	// Type returns the driver name, which must match the domain type
	// attribute of definitions it accepts.
	Type() string
	// Version returns the hypervisor version banner.
	Version() (string, error)
	// GuestOSType returns the os type advertised in capabilities
	// ("hvm" for machine virtualization, "exe" for containers).
	GuestOSType() string
	// Start boots the validated definition on the native hypervisor.
	Start(def *xmlspec.Domain) error
	// Stop stops the named guest (gracefully if graceful) and reaps the
	// native object; after a successful Stop the guest is gone natively.
	Stop(name string, graceful bool) error
	// Reboot restarts the running guest.
	Reboot(name string) error
	// Suspend pauses the running guest.
	Suspend(name string) error
	// Resume unpauses the suspended guest.
	Resume(name string) error
	// Info returns live info for an active guest.
	Info(name string) (core.DomainInfo, error)
	// Stats returns the extended snapshot for an active guest.
	Stats(name string) (core.DomainStats, error)
	// SetMemory balloons the active guest.
	SetMemory(name string, kib uint64) error
	// SetVCPUs adjusts the active guest's vCPUs.
	SetVCPUs(name string, n int) error
	// ID returns the native runtime id of an active guest, -1 if unknown.
	ID(name string) int
	// Machine exposes the substrate machine of an active guest.
	Machine(name string) (*hyper.Machine, error)
}

// Options selects which subsystems the driver exposes.
type Options struct {
	Node     *nodeinfo.Node
	Networks bool
	Storage  bool
	Log      *logging.Logger

	// Scope namespaces this connection's persistent state under the
	// process state root. Drivers whose URI path selects a distinct
	// environment (like the test driver) pass the path here, so
	// connections to different environments journal — and replay —
	// independent object sets. Empty means the driver has a single
	// system-wide environment.
	Scope string
}

// record is the per-domain registry entry.
type record struct {
	name        string
	def         *xmlspec.Domain
	uuidStr     string
	active      bool
	leases      []attachedNIC
	snapshots   []*snapshotRec
	managedSave *savedImage
	sawCrash    bool // crash event already emitted for this run
}

type attachedNIC struct {
	network string
	mac     string
}

// Base implements core.DriverConn on top of Hooks.
type Base struct {
	mu    sync.Mutex
	hooks Hooks
	node  *nodeinfo.Node
	log   *logging.Logger
	bus   *events.Bus
	defs  map[string]*record
	order []*record // records in definition order: a stable sweep order
	nets  *vnet.Manager
	pools *storage.Manager
	ops   sync.Map // op string → *telemetry.Counter

	store     *statestore.Store // nil unless a state root is configured
	scope     string            // persistence namespace under the state root
	replaying bool              // journal replay in progress; suppress re-saves

	// Inbound live-migration transfers (migratesink.go).
	migMu      sync.Mutex
	migrations map[uint64]*inboundMigration
	migCookie  uint64
}

var (
	_ core.DriverConn     = (*Base)(nil)
	_ core.EventSource    = (*Base)(nil)
	_ core.MachineAccess  = (*Base)(nil)
	_ core.NetworkSupport = (*Base)(nil)
	_ core.StorageSupport = (*Base)(nil)
	_ core.MigrationSink  = (*Base)(nil)
)

// New builds a driver base around the given hooks.
func New(hooks Hooks, opts Options) *Base {
	b := &Base{
		hooks: hooks,
		node:  opts.Node,
		log:   opts.Log,
		bus:   events.NewBus(),
		defs:  make(map[string]*record),
	}
	if b.log == nil {
		b.log = logging.NewQuiet(logging.Error)
	}
	if opts.Networks {
		b.nets = vnet.NewManager()
	}
	if opts.Storage {
		b.pools = storage.NewManager()
	}
	b.scope = sanitizeScope(opts.Scope)
	b.openStore()
	return b
}

// module returns the logging module name for this driver.
func (b *Base) module() string { return "driver." + b.hooks.Type() }

// EventBus implements core.EventSource.
func (b *Base) EventBus() *events.Bus { return b.bus }

// Close implements core.DriverConn. Definitions and running guests are
// daemon-side state and survive connection close.
func (b *Base) Close() error { return nil }

// Type implements core.DriverConn.
func (b *Base) Type() string { return b.hooks.Type() }

// Version implements core.DriverConn.
func (b *Base) Version() (string, error) { return b.hooks.Version() }

// Hostname implements core.DriverConn.
func (b *Base) Hostname() (string, error) { return b.node.Hostname, nil }

// CapabilitiesXML implements core.DriverConn.
func (b *Base) CapabilitiesXML() (string, error) {
	caps := b.node.Capabilities(map[string]string{b.hooks.Type(): b.hooks.GuestOSType()})
	out, err := caps.Marshal()
	if err != nil {
		return "", core.Errorf(core.ErrInternal, "capabilities: %v", err)
	}
	return string(out), nil
}

// NodeInfo implements core.DriverConn.
func (b *Base) NodeInfo() (core.NodeInfo, error) {
	i := b.node.Info()
	return core.NodeInfo{
		Model: i.Model, MemoryKiB: i.MemoryKiB, CPUs: i.CPUs, MHz: i.MHz,
		NUMANodes: i.NUMANodes, Sockets: i.Sockets, Cores: i.Cores, Threads: i.Threads,
	}, nil
}

// ListDomains implements core.DriverConn.
func (b *Base) ListDomains(flags core.ListFlags) ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if flags == 0 {
		flags = core.ListActive | core.ListInactive
	}
	out := make([]string, 0, len(b.defs))
	for name, r := range b.defs {
		if r.active && flags&core.ListActive == 0 {
			continue
		}
		if !r.active && flags&core.ListInactive == 0 {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// LookupDomain implements core.DriverConn.
func (b *Base) LookupDomain(name string) (core.DomainMeta, error) {
	b.mu.Lock()
	r, ok := b.defs[name]
	b.mu.Unlock()
	if !ok {
		return core.DomainMeta{}, core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	return b.meta(name, r), nil
}

func (b *Base) meta(name string, r *record) core.DomainMeta {
	id := -1
	if r.active {
		id = b.hooks.ID(name)
	}
	return core.DomainMeta{Name: name, UUID: r.uuidStr, ID: id}
}

// LookupDomainByUUID implements core.DriverConn.
func (b *Base) LookupDomainByUUID(uuidStr string) (core.DomainMeta, error) {
	want, err := uuid.Parse(uuidStr)
	if err != nil {
		return core.DomainMeta{}, core.Errorf(core.ErrInvalidArg, "bad UUID %q: %v", uuidStr, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for name, r := range b.defs {
		got, err := uuid.Parse(r.uuidStr)
		if err == nil && got == want {
			return b.meta(name, r), nil
		}
	}
	return core.DomainMeta{}, core.Errorf(core.ErrNoDomain, "no domain with UUID %s", uuidStr)
}

// DefineDomain implements core.DriverConn.
func (b *Base) DefineDomain(xmlDesc string) (core.DomainMeta, error) {
	if err := b.beginOp("define"); err != nil {
		return core.DomainMeta{}, err
	}
	def, err := xmlspec.ParseDomain([]byte(xmlDesc))
	if err != nil {
		return core.DomainMeta{}, core.Errorf(core.ErrXML, "%v", err)
	}
	if def.Type != b.hooks.Type() {
		return core.DomainMeta{}, core.Errorf(core.ErrInvalidArg,
			"definition type %q does not match driver %q", def.Type, b.hooks.Type())
	}
	if def.UUID == "" {
		def.UUID = uuid.New().String()
	} else if _, err := uuid.Parse(def.UUID); err != nil {
		return core.DomainMeta{}, core.Errorf(core.ErrXML, "bad UUID: %v", err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if existing, ok := b.defs[def.Name]; ok {
		// Redefinition must keep identity and may not touch active guests.
		if existing.active {
			return core.DomainMeta{}, core.Errorf(core.ErrOperationInvalid,
				"domain %q is active; cannot redefine", def.Name)
		}
		if existing.uuidStr != def.UUID {
			return core.DomainMeta{}, core.Errorf(core.ErrDuplicate,
				"domain %q already exists with a different UUID", def.Name)
		}
		if err := b.persistDomain(def); err != nil {
			return core.DomainMeta{}, err
		}
		existing.def = def
		b.log.Infof(b.module(), "domain %s redefined", def.Name)
		b.bus.Emit(events.Event{Type: events.EventDefined, Domain: def.Name, UUID: def.UUID, Detail: "redefined"})
		return b.meta(def.Name, existing), nil
	}
	if err := b.persistDomain(def); err != nil {
		return core.DomainMeta{}, err
	}
	r := &record{name: def.Name, def: def, uuidStr: def.UUID}
	b.defs[def.Name] = r
	b.order = append(b.order, r)
	b.log.Infof(b.module(), "domain %s defined", def.Name)
	b.bus.Emit(events.Event{Type: events.EventDefined, Domain: def.Name, UUID: def.UUID})
	return b.meta(def.Name, r), nil
}

// persistDomain journals the canonical (marshalled) definition so the
// generated UUID survives a restart even when the caller's XML omitted
// one.
func (b *Base) persistDomain(def *xmlspec.Domain) error {
	if b.store == nil || b.replaying {
		return nil
	}
	out, err := def.Marshal()
	if err != nil {
		return core.Errorf(core.ErrXML, "%v", err)
	}
	return b.persistSave(statestore.KindDomains, def.Name, out)
}

// UndefineDomain implements core.DriverConn.
func (b *Base) UndefineDomain(name string) error {
	if err := b.beginOp("undefine"); err != nil {
		return err
	}
	b.mu.Lock()
	r, ok := b.defs[name]
	if !ok {
		b.mu.Unlock()
		return core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	if r.active {
		b.mu.Unlock()
		return core.Errorf(core.ErrOperationInvalid, "domain %q is active; cannot undefine", name)
	}
	delete(b.defs, name)
	for i, o := range b.order {
		if o == r {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	uuidStr := r.uuidStr
	b.mu.Unlock()
	b.persistDelete(statestore.KindDomains, name)
	b.persistDelete(statestore.KindDomsActive, name)
	b.log.Infof(b.module(), "domain %s undefined", name)
	b.bus.Emit(events.Event{Type: events.EventUndefined, Domain: name, UUID: uuidStr})
	return nil
}

// CreateDomain implements core.DriverConn: start a defined domain.
func (b *Base) CreateDomain(name string) error {
	if err := b.beginOp("create"); err != nil {
		return err
	}
	b.mu.Lock()
	r, ok := b.defs[name]
	if !ok {
		b.mu.Unlock()
		return core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	if r.active {
		b.mu.Unlock()
		return core.Errorf(core.ErrOperationInvalid, "domain %q is already active", name)
	}
	def := r.def
	b.mu.Unlock()

	// Network admission first: every network NIC needs an active network.
	leases, err := b.attachNICs(def)
	if err != nil {
		return err
	}
	if err := b.hooks.Start(def); err != nil {
		b.detachNICs(leases)
		return core.Errorf(core.ErrOperationInvalid, "start %q: %v", name, err)
	}
	b.mu.Lock()
	r.active = true
	r.leases = leases
	b.mu.Unlock()
	// Active markers are best-effort snapshots of desired run state; the
	// domain is already up, so a journal hiccup only warns.
	if err := b.persistSave(statestore.KindDomsActive, name, nil); err != nil {
		b.log.Warnf(b.module(), "%v", err)
	}
	if err := b.restoreFromManagedSave(name, r); err != nil {
		return err
	}
	b.log.Infof(b.module(), "domain %s started", name)
	b.bus.Emit(events.Event{Type: events.EventStarted, Domain: name, UUID: def.UUID})
	return nil
}

func (b *Base) attachNICs(def *xmlspec.Domain) ([]attachedNIC, error) {
	if b.nets == nil {
		for _, nic := range def.Devices.Interfaces {
			if nic.Type == "network" {
				return nil, core.Errorf(core.ErrNoSupport,
					"domain %q uses a virtual network but driver %q has no network subsystem",
					def.Name, b.hooks.Type())
			}
		}
		return nil, nil
	}
	var out []attachedNIC
	for _, nic := range def.Devices.Interfaces {
		if nic.Type != "network" || nic.MAC == nil {
			continue
		}
		if _, err := b.nets.Attach(nic.Source.Network, nic.MAC.Address, def.Name); err != nil {
			b.detachNICs(out)
			return nil, core.Errorf(core.ErrOperationInvalid, "%v", err)
		}
		out = append(out, attachedNIC{network: nic.Source.Network, mac: nic.MAC.Address})
	}
	return out, nil
}

func (b *Base) detachNICs(nics []attachedNIC) {
	if b.nets == nil {
		return
	}
	for _, n := range nics {
		if err := b.nets.Detach(n.network, n.mac); err != nil {
			b.log.Warnf(b.module(), "detach %s from %s: %v", n.mac, n.network, err)
		}
	}
}

// stop is the shared shutdown/destroy path.
func (b *Base) stop(name string, graceful bool) error {
	b.mu.Lock()
	r, ok := b.defs[name]
	if !ok {
		b.mu.Unlock()
		return core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	if !r.active {
		b.mu.Unlock()
		return core.Errorf(core.ErrOperationInvalid, "domain %q is not active", name)
	}
	leases := r.leases
	uuidStr := r.uuidStr
	b.mu.Unlock()

	if err := b.hooks.Stop(name, graceful); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "stop %q: %v", name, err)
	}
	b.mu.Lock()
	r.active = false
	r.leases = nil
	b.mu.Unlock()
	b.persistDelete(statestore.KindDomsActive, name)
	b.detachNICs(leases)
	evType := events.EventStopped
	detail := "destroyed"
	if graceful {
		evType = events.EventShutdown
		detail = "guest shutdown"
	}
	b.log.Infof(b.module(), "domain %s stopped (%s)", name, detail)
	b.bus.Emit(events.Event{Type: evType, Domain: name, UUID: uuidStr, Detail: detail})
	return nil
}

// DestroyDomain implements core.DriverConn.
func (b *Base) DestroyDomain(name string) error {
	if err := b.beginOp("destroy"); err != nil {
		return err
	}
	return b.stop(name, false)
}

// ShutdownDomain implements core.DriverConn.
func (b *Base) ShutdownDomain(name string) error {
	if err := b.beginOp("shutdown"); err != nil {
		return err
	}
	return b.stop(name, true)
}

// RebootDomain implements core.DriverConn.
func (b *Base) RebootDomain(name string) error {
	if err := b.beginOp("reboot"); err != nil {
		return err
	}
	r, err := b.activeRecord(name)
	if err != nil {
		return err
	}
	if err := b.hooks.Reboot(name); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "reboot %q: %v", name, err)
	}
	b.bus.Emit(events.Event{Type: events.EventStarted, Domain: name, UUID: r.uuidStr, Detail: "rebooted"})
	return nil
}

// SuspendDomain implements core.DriverConn.
func (b *Base) SuspendDomain(name string) error {
	if err := b.beginOp("suspend"); err != nil {
		return err
	}
	r, err := b.activeRecord(name)
	if err != nil {
		return err
	}
	if err := b.hooks.Suspend(name); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "suspend %q: %v", name, err)
	}
	b.bus.Emit(events.Event{Type: events.EventSuspended, Domain: name, UUID: r.uuidStr})
	return nil
}

// ResumeDomain implements core.DriverConn.
func (b *Base) ResumeDomain(name string) error {
	if err := b.beginOp("resume"); err != nil {
		return err
	}
	r, err := b.activeRecord(name)
	if err != nil {
		return err
	}
	if err := b.hooks.Resume(name); err != nil {
		return core.Errorf(core.ErrOperationInvalid, "resume %q: %v", name, err)
	}
	b.bus.Emit(events.Event{Type: events.EventResumed, Domain: name, UUID: r.uuidStr})
	return nil
}

func (b *Base) activeRecord(name string) (*record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.defs[name]
	if !ok {
		return nil, core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	if !r.active {
		return nil, core.Errorf(core.ErrOperationInvalid, "domain %q is not active", name)
	}
	return r, nil
}

// DomainInfo implements core.DriverConn.
func (b *Base) DomainInfo(name string) (core.DomainInfo, error) {
	if err := b.beginOp("info"); err != nil {
		return core.DomainInfo{}, err
	}
	b.mu.Lock()
	r, ok := b.defs[name]
	b.mu.Unlock()
	if !ok {
		return core.DomainInfo{}, core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	if !r.active {
		return b.inactiveInfo(r), nil
	}
	info, err := b.hooks.Info(name)
	if err != nil {
		return core.DomainInfo{}, core.Errorf(core.ErrInternal, "info %q: %v", name, err)
	}
	b.noteState(name, r, info.State)
	return info, nil
}

// noteState watches observed states for asynchronous guest crashes: the
// first observation of a crashed state emits the crash event, so
// monitors subscribing for EventCrashed learn of failures without
// polling every field themselves.
func (b *Base) noteState(name string, r *record, st core.DomainState) {
	b.mu.Lock()
	emit := false
	if st == core.DomainCrashed && !r.sawCrash {
		r.sawCrash = true
		emit = true
	} else if st != core.DomainCrashed && r.sawCrash {
		r.sawCrash = false
	}
	uuidStr := r.uuidStr
	b.mu.Unlock()
	if emit {
		b.log.Warnf(b.module(), "domain %s crashed", name)
		b.bus.Emit(events.Event{Type: events.EventCrashed, Domain: name, UUID: uuidStr})
	}
}

func (b *Base) inactiveInfo(r *record) core.DomainInfo {
	kib := r.def.MemoryKiBOrZero()
	return core.DomainInfo{
		State:     core.DomainShutoff,
		MaxMemKiB: kib,
		MemKiB:    0,
		VCPUs:     int(r.def.VCPU.Count),
	}
}

// DomainStats implements core.DriverConn.
func (b *Base) DomainStats(name string) (core.DomainStats, error) {
	if err := b.beginOp("stats"); err != nil {
		return core.DomainStats{}, err
	}
	b.mu.Lock()
	r, ok := b.defs[name]
	b.mu.Unlock()
	if !ok {
		return core.DomainStats{}, core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	if !r.active {
		info := b.inactiveInfo(r)
		return core.DomainStats{State: info.State, MaxMemKiB: info.MaxMemKiB, VCPUs: info.VCPUs}, nil
	}
	stats, err := b.hooks.Stats(name)
	if err != nil {
		return core.DomainStats{}, core.Errorf(core.ErrInternal, "stats %q: %v", name, err)
	}
	b.noteState(name, r, stats.State)
	return stats, nil
}

// DomainXML implements core.DriverConn.
func (b *Base) DomainXML(name string) (string, error) {
	if err := b.beginOp("getxml"); err != nil {
		return "", err
	}
	b.mu.Lock()
	r, ok := b.defs[name]
	b.mu.Unlock()
	if !ok {
		return "", core.Errorf(core.ErrNoDomain, "no domain %q", name)
	}
	out, err := r.def.Marshal()
	if err != nil {
		return "", core.Errorf(core.ErrXML, "%v", err)
	}
	return string(out), nil
}

// SetDomainMemory implements core.DriverConn.
func (b *Base) SetDomainMemory(name string, kib uint64) error {
	if err := b.beginOp("setmemory"); err != nil {
		return err
	}
	if _, err := b.activeRecord(name); err != nil {
		return err
	}
	if err := b.hooks.SetMemory(name, kib); err != nil {
		return core.Errorf(core.ErrInvalidArg, "set memory %q: %v", name, err)
	}
	return nil
}

// SetDomainVCPUs implements core.DriverConn.
func (b *Base) SetDomainVCPUs(name string, n int) error {
	if err := b.beginOp("setvcpus"); err != nil {
		return err
	}
	if _, err := b.activeRecord(name); err != nil {
		return err
	}
	if err := b.hooks.SetVCPUs(name, n); err != nil {
		return core.Errorf(core.ErrInvalidArg, "set vcpus %q: %v", name, err)
	}
	return nil
}

// Machine implements core.MachineAccess.
func (b *Base) Machine(name string) (*hyper.Machine, error) {
	if _, err := b.activeRecord(name); err != nil {
		return nil, err
	}
	m, err := b.hooks.Machine(name)
	if err != nil {
		return nil, core.Errorf(core.ErrInternal, "machine %q: %v", name, err)
	}
	return m, nil
}

// MarkCrashed records an asynchronous guest crash noticed by the driver
// and emits the crash event (hypervisor simulators call back into this).
func (b *Base) MarkCrashed(name string) {
	b.mu.Lock()
	r, ok := b.defs[name]
	var uuidStr string
	if ok {
		uuidStr = r.uuidStr
	}
	b.mu.Unlock()
	if !ok {
		return
	}
	b.bus.Emit(events.Event{Type: events.EventCrashed, Domain: name, UUID: uuidStr})
}

// DefToConfig translates a validated definition into a substrate machine
// configuration; concrete drivers share it. Workload-model knobs come
// from description metadata of the form "key=value" pairs, letting test
// workloads be declared in the XML without extending the schema.
func DefToConfig(def *xmlspec.Domain) (hyper.Config, error) {
	u, err := uuid.Parse(def.UUID)
	if err != nil {
		u = uuid.FromName("machine:" + def.Name)
	}
	kib, err := def.Memory.KiB()
	if err != nil {
		return hyper.Config{}, err
	}
	cfg := hyper.Config{
		Name:      def.Name,
		UUID:      u,
		VCPUs:     int(def.VCPU.Count),
		MemKiB:    kib,
		MaxMemKiB: kib,
	}
	if def.CurrentMemory != nil {
		if cur, err := def.CurrentMemory.KiB(); err == nil {
			cfg.MemKiB = cur
		}
	}
	for _, d := range def.Devices.Disks {
		cfg.Disks = append(cfg.Disks, hyper.DiskConfig{Target: d.Target.Dev, ReadOnly: d.ReadOnly != nil})
	}
	for _, n := range def.Devices.Interfaces {
		nc := hyper.NICConfig{Network: n.Source.Network}
		if n.MAC != nil {
			nc.MAC = n.MAC.Address
		}
		cfg.NICs = append(cfg.NICs, nc)
	}
	applyWorkloadHints(&cfg, def.Description)
	return cfg, nil
}

// applyWorkloadHints parses "cpu_util=0.5 dirty_pages_sec=2000 ..." from
// the free-form description element.
func applyWorkloadHints(cfg *hyper.Config, desc string) {
	for _, field := range strings.Fields(desc) {
		k, v, found := strings.Cut(field, "=")
		if !found {
			continue
		}
		switch k {
		case "cpu_util":
			fmt.Sscanf(v, "%f", &cfg.CPUUtil) //nolint:errcheck
		case "dirty_pages_sec":
			fmt.Sscanf(v, "%d", &cfg.DirtyPagesSec) //nolint:errcheck
		case "block_iops":
			fmt.Sscanf(v, "%d", &cfg.BlockIOPS) //nolint:errcheck
		case "net_pps":
			fmt.Sscanf(v, "%d", &cfg.NetPPS) //nolint:errcheck
		}
	}
}

// StateFromHyper maps substrate states to public states.
func StateFromHyper(s hyper.State) core.DomainState {
	switch s {
	case hyper.StateRunning:
		return core.DomainRunning
	case hyper.StatePaused:
		return core.DomainPaused
	case hyper.StateShutdown:
		return core.DomainShutdown
	case hyper.StateShutoff:
		return core.DomainShutoff
	case hyper.StateCrashed:
		return core.DomainCrashed
	case hyper.StatePMSuspended:
		return core.DomainPMSuspended
	default:
		return core.DomainNoState
	}
}

// StatsFromMachine converts a substrate stats snapshot.
func StatsFromMachine(st hyper.Stats) core.DomainStats {
	return core.DomainStats{
		State:      StateFromHyper(st.State),
		CPUTimeNs:  st.CPUTimeNs,
		MemKiB:     st.MemKiB,
		MaxMemKiB:  st.MaxMemKiB,
		VCPUs:      st.VCPUs,
		RdBytes:    st.RdBytes,
		WrBytes:    st.WrBytes,
		RdReqs:     st.RdReqs,
		WrReqs:     st.WrReqs,
		RxBytes:    st.RxBytes,
		TxBytes:    st.TxBytes,
		RxPkts:     st.RxPkts,
		TxPkts:     st.TxPkts,
		DirtyPages: st.DirtyPages,
	}
}

// InfoFromMachine converts a substrate stats snapshot to the compact form.
func InfoFromMachine(st hyper.Stats) core.DomainInfo {
	return core.DomainInfo{
		State:     StateFromHyper(st.State),
		MaxMemKiB: st.MaxMemKiB,
		MemKiB:    st.MemKiB,
		VCPUs:     st.VCPUs,
		CPUTimeNs: st.CPUTimeNs,
	}
}
