// The metrics HTTP listener, owned by telemetry so every binary that
// exposes /metrics gets the same lifecycle: bind first (fail fast on a
// taken port), serve in the background, and drain in-flight scrapes on
// shutdown instead of dying with the process.
package telemetry

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// MetricsServer is a background HTTP server for the /metrics endpoint
// with a bounded graceful shutdown.
type MetricsServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
	err  error
}

// ServeMetrics binds addr, mounts handler at /metrics (and only there),
// and serves in the background. The returned server must be shut down
// with Shutdown.
func ServeMetrics(addr string, handler http.Handler) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", handler)
	m := &MetricsServer{
		srv:  &http.Server{Handler: mux},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		err := m.srv.Serve(ln)
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			m.err = err
		}
		close(m.done)
	}()
	return m, nil
}

// Addr returns the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Shutdown stops accepting scrapes and waits up to grace for in-flight
// ones to finish; stragglers are cut off when the grace expires. A
// non-positive grace closes immediately.
func (m *MetricsServer) Shutdown(grace time.Duration) error {
	if grace > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := m.srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	if err := m.srv.Close(); err != nil {
		return err
	}
	<-m.done
	return m.err
}
