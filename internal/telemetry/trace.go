package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowCall is one recorded span that exceeded the tracer's threshold:
// enough to identify the call (RPC serial, program/procedure, client)
// and to split its latency into queue wait and dispatch time.
type SlowCall struct {
	Serial    uint32
	Program   string
	Proc      string
	Client    uint64
	Start     time.Time
	QueueWait time.Duration
	Duration  time.Duration
}

// Span is one in-flight traced call. Fill QueueWait before Finish;
// Finish computes the duration and hands the span to the tracer. A nil
// span is inert, so callers can trace unconditionally.
type Span struct {
	tracer    *Tracer
	Serial    uint32
	Program   string
	Proc      string
	Client    uint64
	Start     time.Time
	QueueWait time.Duration
}

// Finish completes the span. If the total duration meets the tracer's
// threshold the call is recorded in the slow ring and reported through
// the OnSlow hook.
func (s *Span) Finish() {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.finish(s, time.Since(s.Start))
}

// Tracer tracks per-call spans and keeps a bounded in-memory ring of
// recent slow calls. The fast path (Start + Finish under threshold) is
// one time read, one atomic add and one atomic threshold load.
type Tracer struct {
	thresholdNs atomic.Int64
	started     atomic.Uint64
	slow        atomic.Uint64

	mu   sync.Mutex
	ring []SlowCall
	next int
	full bool

	onSlow atomic.Value // func(SlowCall)
}

// DefaultSlowCallThreshold flags calls slower than this unless
// configured otherwise (govirtd.conf slow_call_threshold_ms).
const DefaultSlowCallThreshold = 250 * time.Millisecond

// NewTracer creates a tracer keeping the most recent capacity slow
// calls. A threshold of 0 disables slow-call recording.
func NewTracer(capacity int, threshold time.Duration) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	t := &Tracer{ring: make([]SlowCall, 0, capacity)}
	t.thresholdNs.Store(int64(threshold))
	return t
}

// Threshold returns the current slow-call threshold.
func (t *Tracer) Threshold() time.Duration {
	return time.Duration(t.thresholdNs.Load())
}

// SetThreshold installs a new slow-call threshold; 0 disables recording.
func (t *Tracer) SetThreshold(d time.Duration) {
	t.thresholdNs.Store(int64(d))
}

// OnSlow installs a hook invoked synchronously for every slow call (the
// daemon points it at the logging subsystem). Pass nil to clear.
func (t *Tracer) OnSlow(fn func(SlowCall)) {
	t.onSlow.Store(fn)
}

// Start opens a span. Safe on a nil tracer, which returns a nil span.
func (t *Tracer) Start(program, proc string, client uint64, serial uint32) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	return &Span{
		tracer:  t,
		Serial:  serial,
		Program: program,
		Proc:    proc,
		Client:  client,
		Start:   time.Now(),
	}
}

// Started returns how many spans were opened over the tracer's lifetime.
func (t *Tracer) Started() uint64 { return t.started.Load() }

// SlowCount returns how many calls exceeded the threshold.
func (t *Tracer) SlowCount() uint64 { return t.slow.Load() }

func (t *Tracer) finish(s *Span, d time.Duration) {
	threshold := t.thresholdNs.Load()
	if threshold <= 0 || int64(d) < threshold {
		return
	}
	t.slow.Add(1)
	sc := SlowCall{
		Serial:    s.Serial,
		Program:   s.Program,
		Proc:      s.Proc,
		Client:    s.Client,
		Start:     s.Start,
		QueueWait: s.QueueWait,
		Duration:  d,
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, sc)
	} else {
		t.ring[t.next] = sc
		t.full = true
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.mu.Unlock()
	if fn, ok := t.onSlow.Load().(func(SlowCall)); ok && fn != nil {
		fn(sc)
	}
}

// SlowCalls returns the recorded slow calls, most recent last.
func (t *Tracer) SlowCalls() []SlowCall {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]SlowCall, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]SlowCall, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}
