package telemetry

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// splitName separates a metric name from its optional label clause:
// `a_total{x="1"}` → (`a_total`, `x="1"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges two label clauses, either of which may be empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// metricLine renders one sample with an optional label clause.
func metricLine(w *strings.Builder, base, labels, value string) {
	w.WriteString(base)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Histograms are emitted in seconds, following
// the Prometheus base-unit convention; internal nanosecond names ending
// in `_seconds` are expected from callers.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	typeSeen := make(map[string]bool)
	writeType := func(base, kind string) {
		if !typeSeen[base] {
			typeSeen[base] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		writeType(base, "counter")
		metricLine(&b, base, labels, fmt.Sprintf("%d", c.Value))
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		writeType(base, "gauge")
		metricLine(&b, base, labels, fmt.Sprintf("%d", g.Value))
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		writeType(base, "histogram")
		for _, bucket := range h.Buckets {
			le := "+Inf"
			if bucket.UpperNs != 0 {
				le = formatSeconds(bucket.UpperNs)
			}
			metricLine(&b, base+"_bucket", joinLabels(labels, fmt.Sprintf("le=%q", le)),
				fmt.Sprintf("%d", bucket.Cumulative))
		}
		metricLine(&b, base+"_sum", labels, formatSeconds(h.SumNs))
		metricLine(&b, base+"_count", labels, fmt.Sprintf("%d", h.Count))
	}
	return b.String()
}

// formatSeconds renders nanoseconds as a decimal seconds literal without
// float artefacts (1_000 ns → "0.000001").
func formatSeconds(ns uint64) string {
	whole := ns / 1_000_000_000
	frac := ns % 1_000_000_000
	if frac == 0 {
		return fmt.Sprintf("%d", whole)
	}
	s := fmt.Sprintf("%d.%09d", whole, frac)
	return strings.TrimRight(s, "0")
}

// Handler serves the registry in Prometheus text format — the daemon
// mounts this at /metrics when the listener is enabled in configuration.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = fmt.Fprint(w, r.Snapshot().Prometheus())
	})
}

// sortedBucketBounds is exported for tests via BucketBounds.
func sortedBucketBounds() []uint64 {
	out := make([]uint64, len(bucketBoundsNs))
	copy(out, bucketBoundsNs[:])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BucketBounds returns the fixed histogram bucket upper bounds in
// nanoseconds (ascending), exposed for tests and report tooling.
func BucketBounds() []uint64 { return sortedBucketBounds() }
