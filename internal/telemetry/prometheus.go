package telemetry

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// ContentType is the exact content type of the Prometheus text exposition
// format the handlers serve (format version 0.0.4).
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// splitName separates a metric name from its optional label clause:
// `a_total{x="1"}` → (`a_total`, `x="1"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges two label clauses, either of which may be empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// metricLine renders one sample with an optional label clause.
func metricLine(w *strings.Builder, base, labels, value string) {
	w.WriteString(base)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// appendEscapedLabelValue appends s with the label-value escapes the
// exposition format requires: backslash, double quote and newline.
func appendEscapedLabelValue(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, c)
		}
	}
	return dst
}

// EscapeLabelValue escapes a label value for the text exposition format
// (`\` → `\\`, `"` → `\"`, newline → `\n`).
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return string(appendEscapedLabelValue(make([]byte, 0, len(s)+8), s))
}

// Labels renders key/value pairs as a label clause body with properly
// escaped values: Labels("host", `n"1`) → `host="n\"1"`. Use it wherever
// a label clause is baked into a metric name or an Extra clause.
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("telemetry: Labels needs key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeHelp escapes a HELP docstring (backslash and newline only, per
// the exposition format).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// appendFamilyHeader appends the `# HELP` and `# TYPE` lines introducing
// one metric family.
func appendFamilyHeader(dst []byte, name, kind, help string) []byte {
	dst = append(dst, "# HELP "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, escapeHelp(help)...)
	dst = append(dst, "\n# TYPE "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = append(dst, kind...)
	return append(dst, '\n')
}

// helpMu guards helpText: registrations are set-up-path only, renders
// take the read lock once per family.
var helpMu sync.RWMutex

// helpText maps metric family base names to their HELP docstrings.
// Families not listed here get a generated placeholder so every family
// in the exposition carries a HELP line.
var helpText = map[string]string{
	"daemon_dispatch_total":                "RPC procedures dispatched by the daemon.",
	"daemon_dispatch_errors_total":         "RPC procedure dispatches that returned an error.",
	"daemon_dispatch_seconds":              "Latency of RPC procedure dispatch.",
	"daemon_clients":                       "Connected daemon clients.",
	"daemon_clients_rejected_total":        "Client connections rejected at the accept limit.",
	"daemon_pool_workers":                  "Worker goroutines in the dispatch pool.",
	"daemon_pool_queue_depth":              "Jobs waiting in the dispatch pool queue.",
	"daemon_pool_busy_workers":             "Dispatch pool workers currently running a job.",
	"daemon_pool_jobs_done_total":          "Jobs completed by the dispatch pool.",
	"daemon_pool_spawns_total":             "Worker goroutines spawned by the dispatch pool.",
	"daemon_queue_wait_seconds":            "Time jobs waited in the dispatch pool queue.",
	"rpc_tx_frames_total":                  "RPC frames transmitted.",
	"rpc_rx_frames_total":                  "RPC frames received.",
	"rpc_tx_bytes_total":                   "RPC bytes transmitted.",
	"rpc_rx_bytes_total":                   "RPC bytes received.",
	"rpc_keepalive_pings_total":            "Keepalive pings sent.",
	"rpc_keepalive_pongs_total":            "Keepalive pongs received.",
	"rpc_keepalive_failures_total":         "Connections dropped by keepalive timeout.",
	"rpc_calls_deadline_total":             "RPC calls abandoned at their deadline.",
	"rpc_faults_dropped_total":             "Frames dropped by fault injection.",
	"rpc_faults_corrupted_total":           "Frames corrupted by fault injection.",
	"rpc_pong_write_failures_total":        "Keepalive pong writes that failed.",
	"rpc_coalesced_flushes_total":          "Socket flushes saved by write coalescing.",
	"remote_calls_total":                   "Calls issued by the remote driver.",
	"remote_call_errors_total":             "Remote driver calls that returned an error.",
	"remote_connects_total":                "Connections opened by the remote driver.",
	"remote_connect_failures_total":        "Remote driver connection attempts that failed.",
	"remote_call_seconds":                  "Latency of remote driver calls.",
	"driver_ops_total":                     "Operations executed by local drivers.",
	"fleet_placements_total":               "Domain placements performed by the fleet scheduler.",
	"fleet_placement_retries_total":        "Placements retried on another host.",
	"fleet_placement_failures_total":       "Placements that failed on every candidate host.",
	"fleet_placement_seconds":              "Latency of fleet placements.",
	"fleet_hosts_up":                       "Fleet hosts currently reachable.",
	"fleet_hosts_known":                    "Fleet hosts registered.",
	"fleet_reconnects_total":               "Reconnect attempts to fleet hosts.",
	"fleet_rebalance_migrations_total":     "Migrations performed by the rebalancer.",
	"fleet_rebalance_failures_total":       "Rebalancer migrations that failed.",
	"fleet_inventory_polls_total":          "Fleet inventory polls.",
	"fleet_inventory_bulk_polls_total":     "Fleet inventory polls served by the bulk procedure.",
	"fleet_inventory_bulk_fallbacks_total": "Fleet inventory polls that fell back to per-domain calls.",
	"fleet_watch_events_total":             "Watch-stream events folded into fleet cached state.",
	"fleet_watch_gaps_total":               "Watch-stream sequence gaps detected by the fleet.",
	"fleet_watch_fetches_total":            "Targeted bulk fetches for event-incomplete records.",
	"watch_resyncs_total":                  "Bulk resync sweeps owed to watch-stream gaps.",
	"events_delivered_total":               "Watch-stream event frames delivered to subscribers.",
	"events_dropped_total":                 "Watch-stream events dropped by queue overflow.",
	"events_coalesced_total":               "Watch-stream events coalesced into a newer same-domain frame.",
	"events_heartbeats_total":              "Watch-stream heartbeat frames sent.",
	"watch_queue_depth":                    "Events queued across all watch subscriptions.",
	"watch_subscribers":                    "Open watch subscriptions.",
	"fault_injected_total":                 "Fault injections fired, by site and kind.",
}

// SetMetricHelp registers (or replaces) the HELP docstring for a metric
// family base name, used when the registry snapshot is rendered.
func SetMetricHelp(base, help string) {
	helpMu.Lock()
	helpText[base] = help
	helpMu.Unlock()
}

// metricHelp returns the HELP docstring for a family, generating a
// placeholder for unregistered names so the exposition never lacks one.
func metricHelp(base string) string {
	helpMu.RLock()
	h, ok := helpText[base]
	helpMu.RUnlock()
	if ok {
		return h
	}
	return "Metric " + base + "."
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): every family introduced by `# HELP`/`# TYPE`
// exactly once, samples grouped per family. Histograms are emitted in
// seconds, following the Prometheus base-unit convention; internal
// nanosecond names ending in `_seconds` are expected from callers.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	headerSeen := make(map[string]bool)
	writeHeader := func(base, kind string) {
		if !headerSeen[base] {
			headerSeen[base] = true
			fmt.Fprintf(&b, "# HELP %s %s\n", base, escapeHelp(metricHelp(base)))
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, c := range s.Counters {
		base, labels := splitName(c.Name)
		writeHeader(base, "counter")
		metricLine(&b, base, labels, fmt.Sprintf("%d", c.Value))
	}
	for _, g := range s.Gauges {
		base, labels := splitName(g.Name)
		writeHeader(base, "gauge")
		metricLine(&b, base, labels, fmt.Sprintf("%d", g.Value))
	}
	for _, h := range s.Histograms {
		base, labels := splitName(h.Name)
		writeHeader(base, "histogram")
		for _, bucket := range h.Buckets {
			le := "+Inf"
			if bucket.UpperNs != 0 {
				le = formatSeconds(bucket.UpperNs)
			}
			metricLine(&b, base+"_bucket", joinLabels(labels, fmt.Sprintf("le=%q", le)),
				fmt.Sprintf("%d", bucket.Cumulative))
		}
		metricLine(&b, base+"_sum", labels, formatSeconds(h.SumNs))
		metricLine(&b, base+"_count", labels, fmt.Sprintf("%d", h.Count))
	}
	return b.String()
}

// formatSeconds renders nanoseconds as a decimal seconds literal without
// float artefacts (1_000 ns → "0.000001").
func formatSeconds(ns uint64) string {
	whole := ns / 1_000_000_000
	frac := ns % 1_000_000_000
	if frac == 0 {
		return fmt.Sprintf("%d", whole)
	}
	s := fmt.Sprintf("%d.%09d", whole, frac)
	return strings.TrimRight(s, "0")
}

// Handler serves the registry in Prometheus text format — the daemon
// mounts this at /metrics when the listener is enabled in configuration.
func Handler(r *Registry) http.Handler {
	return HandlerWith(r, nil)
}

// HandlerWith serves the registry plus, when dc is non-nil, the
// per-domain collector's exposition on the same endpoint. The domain
// sweep runs (or is served from cache) before any byte is written, so a
// failed sweep becomes a clean 503 the scraper can see.
func HandlerWith(r *Registry, dc *DomainCollector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var domain []byte
		if dc != nil {
			var err error
			domain, err = dc.Exposition()
			if err != nil {
				http.Error(w, "domain metrics sweep failed: "+err.Error(),
					http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", ContentType)
		_, _ = fmt.Fprint(w, r.Snapshot().Prometheus())
		if len(domain) > 0 {
			_, _ = w.Write(domain)
		}
	})
}

// sortedBucketBounds is exported for tests via BucketBounds.
func sortedBucketBounds() []uint64 {
	out := make([]uint64, len(bucketBoundsNs))
	copy(out, bucketBoundsNs[:])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BucketBounds returns the fixed histogram bucket upper bounds in
// nanoseconds (ascending), exposed for tests and report tooling.
func BucketBounds() []uint64 { return sortedBucketBounds() }
