package telemetry

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// fakeSource is a swappable DomainSource: fixed rows, optional error,
// optional blocking gate so tests can hold a sweep open.
type fakeSource struct {
	mu      sync.Mutex
	rows    []core.NamedDomainInfo
	err     error
	block   chan struct{} // non-nil: SweepInventory waits for close
	uuids   map[string]string
	lookups atomic.Int64
}

func (f *fakeSource) SweepInventory(inv *core.NodeInventory) error {
	f.mu.Lock()
	block, err := f.block, f.err
	f.mu.Unlock()
	if block != nil {
		<-block
	}
	if err != nil {
		return err
	}
	f.mu.Lock()
	inv.Domains = append(inv.Domains[:0], f.rows...)
	f.mu.Unlock()
	return nil
}

func (f *fakeSource) DomainUUID(name string) (string, bool) {
	f.lookups.Add(1)
	u, ok := f.uuids[name]
	return u, ok
}

func (f *fakeSource) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

// fakeRows builds n running domains.
func fakeRows(n int) []core.NamedDomainInfo {
	rows := make([]core.NamedDomainInfo, n)
	for i := range rows {
		rows[i] = core.NamedDomainInfo{
			Name: fmt.Sprintf("vm%05d", i),
			Info: core.DomainInfo{
				State: core.DomainRunning, MaxMemKiB: 1 << 20, MemKiB: 1 << 19,
				VCPUs: 2, CPUTimeNs: uint64(i) * 1_000_000,
			},
		}
	}
	return rows
}

// fakeClock is a hand-advanced clock for staleness tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestDomainCollectorSingleFlight is the ISSUE acceptance scenario: a
// 10k-domain host, 8 concurrent scrapers inside the staleness window,
// exactly one bulk sweep total.
func TestDomainCollectorSingleFlight(t *testing.T) {
	const scrapers = 8
	src := &fakeSource{rows: fakeRows(10_000), block: make(chan struct{})}
	c, err := NewDomainCollector(src, DomainCollectorConfig{
		Staleness: time.Hour,
		Labels:    []string{"domain", "state"},
	})
	if err != nil {
		t.Fatal(err)
	}

	outs := make([][]byte, scrapers)
	errs := make([]error, scrapers)
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = c.Exposition()
		}(i)
	}
	// One scraper is blocked inside the sweep; wait until the other
	// seven have coalesced onto it, then release.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < scrapers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d scrapers coalesced", c.Stats().Coalesced)
		}
		time.Sleep(time.Millisecond)
	}
	close(src.block)
	wg.Wait()

	st := c.Stats()
	if st.Sweeps != 1 {
		t.Fatalf("sweeps = %d, want 1", st.Sweeps)
	}
	if st.Coalesced != scrapers-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, scrapers-1)
	}
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("scraper %d: %v", i, errs[i])
		}
		if len(outs[i]) == 0 {
			t.Fatalf("scraper %d: empty exposition", i)
		}
		if string(outs[i]) != string(outs[0]) {
			t.Fatalf("scraper %d served a different render", i)
		}
	}
	if got := len(c.Rows()); got != 10_000 {
		t.Fatalf("rows = %d, want 10000", got)
	}
	if !strings.Contains(string(outs[0]), `govirt_domain_info{domain="vm00000",state="running"} 1`) {
		t.Fatalf("exposition missing expected series:\n%.400s", outs[0])
	}
}

// TestDomainCollectorStaleness drives the cache window with a fake
// clock: scrapes inside the window reuse the render, crossing it sweeps
// again.
func TestDomainCollectorStaleness(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	src := &fakeSource{rows: fakeRows(3)}
	c, err := NewDomainCollector(src, DomainCollectorConfig{
		Staleness: time.Second,
		Now:       clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Exposition(); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Sweeps != 1 {
		t.Fatalf("sweeps within window = %d, want 1", st.Sweeps)
	}
	clk.Advance(999 * time.Millisecond) // still inside
	if _, err := c.Exposition(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Sweeps != 1 {
		t.Fatalf("sweeps at window edge = %d, want 1", st.Sweeps)
	}
	clk.Advance(2 * time.Millisecond) // crosses the bound
	if _, err := c.Exposition(); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Sweeps != 2 {
		t.Fatalf("sweeps after expiry = %d, want 2", st.Sweeps)
	}
}

// TestDomainCollectorZeroStaleness: staleness 0 sweeps on every scrape.
func TestDomainCollectorZeroStaleness(t *testing.T) {
	src := &fakeSource{rows: fakeRows(2)}
	c, err := NewDomainCollector(src, DomainCollectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Exposition(); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Sweeps != 3 {
		t.Fatalf("sweeps = %d, want 3", st.Sweeps)
	}
}

// TestDomainCollectorTruncation checks the cardinality cap and its
// counter.
func TestDomainCollectorTruncation(t *testing.T) {
	src := &fakeSource{rows: fakeRows(8)}
	c, err := NewDomainCollector(src, DomainCollectorConfig{MaxDomains: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Exposition()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Rows()); got != 5 {
		t.Fatalf("rows = %d, want 5", got)
	}
	if st := c.Stats(); st.Truncated != 3 {
		t.Fatalf("truncated = %d, want 3", st.Truncated)
	}
	if !strings.Contains(string(out), "govirt_domains_truncated_total 3\n") {
		t.Fatalf("truncation counter missing:\n%s", out)
	}
	if !strings.Contains(string(out), "govirt_domains 5\n") {
		t.Fatalf("domain gauge missing:\n%s", out)
	}
}

// TestDomainCollectorLabelAllowlist: disabled labels vanish from the
// output and uuid resolution is skipped entirely.
func TestDomainCollectorLabelAllowlist(t *testing.T) {
	src := &fakeSource{rows: fakeRows(2), uuids: map[string]string{"vm00000": "u-0"}}
	c, err := NewDomainCollector(src, DomainCollectorConfig{Labels: []string{"domain"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Exposition()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "uuid=") || strings.Contains(string(out), "state=") {
		t.Fatalf("disabled labels leaked:\n%s", out)
	}
	if src.lookups.Load() != 0 {
		t.Fatalf("uuid lookups = %d, want 0 with uuid label off", src.lookups.Load())
	}

	if _, err := ParseDomainLabels([]string{"bogus"}); err == nil {
		t.Fatal("unknown label accepted")
	}
}

// TestDomainCollectorUUIDCache: uuids resolve once per domain, then come
// from the cache.
func TestDomainCollectorUUIDCache(t *testing.T) {
	src := &fakeSource{
		rows:  fakeRows(2),
		uuids: map[string]string{"vm00000": "uuid-a", "vm00001": "uuid-b"},
	}
	c, err := NewDomainCollector(src, DomainCollectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Exposition()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `uuid="uuid-a"`) {
		t.Fatalf("uuid label missing:\n%s", out)
	}
	if _, err := c.Exposition(); err != nil { // staleness 0: second sweep
		t.Fatal(err)
	}
	if got := src.lookups.Load(); got != 2 {
		t.Fatalf("uuid lookups = %d, want 2 (cached on resweep)", got)
	}
}

// TestDomainCollectorUptime: observed uptime accumulates across sweeps
// while up and resets when the domain goes down.
func TestDomainCollectorUptime(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	src := &fakeSource{rows: fakeRows(1)}
	c, err := NewDomainCollector(src, DomainCollectorConfig{Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exposition(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(90 * time.Second)
	if _, err := c.Exposition(); err != nil {
		t.Fatal(err)
	}
	if got := c.Rows()[0].UptimeNs; got != uint64(90*time.Second) {
		t.Fatalf("uptime = %v, want 90s", time.Duration(got))
	}
	src.mu.Lock()
	src.rows[0].Info.State = core.DomainShutoff
	src.mu.Unlock()
	if _, err := c.Exposition(); err != nil {
		t.Fatal(err)
	}
	if got := c.Rows()[0].UptimeNs; got != 0 {
		t.Fatalf("uptime after shutoff = %v, want 0", time.Duration(got))
	}
}

// TestDomainCollectorSweepError: a failed sweep surfaces as an error and
// the next scrape retries instead of serving the failure from cache.
func TestDomainCollectorSweepError(t *testing.T) {
	src := &fakeSource{rows: fakeRows(1)}
	src.setErr(errors.New("driver down"))
	c, err := NewDomainCollector(src, DomainCollectorConfig{Staleness: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exposition(); err == nil {
		t.Fatal("sweep error not surfaced")
	}
	src.setErr(nil)
	out, err := c.Exposition()
	if err != nil {
		t.Fatalf("retry after error: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("empty exposition after recovery")
	}
	if st := c.Stats(); st.Sweeps != 2 || st.SweepErrors != 1 {
		t.Fatalf("sweeps=%d errors=%d, want 2/1", st.Sweeps, st.SweepErrors)
	}
}

// TestDomainCollectorConfigValidation rejects bad configurations.
func TestDomainCollectorConfigValidation(t *testing.T) {
	if _, err := NewDomainCollector(&fakeSource{}, DomainCollectorConfig{Staleness: -1}); err == nil {
		t.Fatal("negative staleness accepted")
	}
	if _, err := NewDomainCollector(&fakeSource{}, DomainCollectorConfig{MaxDomains: -1}); err == nil {
		t.Fatal("negative max domains accepted")
	}
	if _, err := NewDomainCollector(&fakeSource{}, DomainCollectorConfig{Labels: []string{"nope"}}); err == nil {
		t.Fatal("unknown label accepted")
	}
}

// TestScrapeAllocsRegression is the allocation gate behind
// BenchmarkT9_Scrape: a cached scrape allocates nothing, a sweeping
// scrape stays within a small fixed budget.
func TestScrapeAllocsRegression(t *testing.T) {
	src := &fakeSource{rows: fakeRows(100)}
	cached, err := NewDomainCollector(src, DomainCollectorConfig{Staleness: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.Exposition(); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := cached.Exposition(); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("cached scrape allocates %.1f objects, want 0", got)
	}

	sweeping, err := NewDomainCollector(src, DomainCollectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sweeping.Exposition(); err != nil {
		t.Fatal(err) // warm the buffers and caches
	}
	// Steady-state sweep: one render buffer plus bounded bookkeeping.
	if got := testing.AllocsPerRun(200, func() {
		if _, err := sweeping.Exposition(); err != nil {
			t.Fatal(err)
		}
	}); got > 8 {
		t.Fatalf("sweeping scrape allocates %.1f objects, want <= 8", got)
	}
}
