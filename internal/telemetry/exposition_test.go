package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/faultpoint"
)

// Exposition-format grammar, per the text format 0.0.4 spec: sample
// lines are name{labels} value, comment lines are # HELP / # TYPE.
var (
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9+][^ ]*$`)
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary|untyped)$`)
)

// lintExposition enforces the format invariants the satellite fixes:
// every line parses, and every sample's family was introduced by a
// # HELP and a # TYPE line exactly once, before its first sample.
func lintExposition(t *testing.T, text string) {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	sampled := map[string]bool{}
	for n, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Fatalf("line %d: malformed HELP: %q", n+1, line)
			}
			fam := strings.Fields(line)[2]
			if helpSeen[fam] {
				t.Fatalf("line %d: duplicate HELP for %s", n+1, fam)
			}
			if sampled[fam] {
				t.Fatalf("line %d: HELP for %s after its samples", n+1, fam)
			}
			helpSeen[fam] = true
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRe.MatchString(line) {
				t.Fatalf("line %d: malformed TYPE: %q", n+1, line)
			}
			fam := strings.Fields(line)[2]
			if typeSeen[fam] {
				t.Fatalf("line %d: duplicate TYPE for %s", n+1, fam)
			}
			if sampled[fam] {
				t.Fatalf("line %d: TYPE for %s after its samples", n+1, fam)
			}
			typeSeen[fam] = true
		case strings.HasPrefix(line, "#"):
			// other comments are legal, nothing to check
		default:
			if !sampleRe.MatchString(line) {
				t.Fatalf("line %d: malformed sample: %q", n+1, line)
			}
			base := line
			if i := strings.IndexAny(base, "{ "); i >= 0 {
				base = base[:i]
			}
			// Histogram child series belong to the parent family.
			fam := base
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				parent := strings.TrimSuffix(base, suffix)
				if parent != base && typeSeen[parent] {
					fam = parent
					break
				}
			}
			if !typeSeen[fam] {
				t.Fatalf("line %d: sample for %s without TYPE", n+1, fam)
			}
			if !helpSeen[fam] {
				t.Fatalf("line %d: sample for %s without HELP", n+1, fam)
			}
			sampled[fam] = true
		}
	}
}

// TestExpositionRegistryFormat lints the registry render, including a
// label value that needs every escape.
func TestExpositionRegistryFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("calls_total{" + Labels("proc", `we"ird\name`+"\n") + "}").Add(3)
	r.Counter("calls_total{" + Labels("proc", "plain") + "}").Inc()
	r.Gauge("clients").Set(-2)
	r.Histogram("lat_seconds").Observe(time.Millisecond)
	text := r.Snapshot().Prometheus()
	lintExposition(t, text)
	if !strings.Contains(text, `proc="we\"ird\\name\n"`) {
		t.Fatalf("label escaping wrong:\n%s", text)
	}
	if !strings.Contains(text, "# HELP calls_total ") {
		t.Fatalf("HELP line missing:\n%s", text)
	}
}

// TestExpositionDomainFormat lints the domain collector's render, with
// names that need escaping and both optional labels on.
func TestExpositionDomainFormat(t *testing.T) {
	rows := fakeRows(3)
	rows[1].Name = `dom"quote\slash` + "\n"
	src := &fakeSource{rows: rows, uuids: map[string]string{"vm00000": "u-0"}}
	c, err := NewDomainCollector(src, DomainCollectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Exposition()
	if err != nil {
		t.Fatal(err)
	}
	lintExposition(t, string(out))
	if !strings.Contains(string(out), `domain="dom\"quote\\slash\n"`) {
		t.Fatalf("domain label escaping wrong:\n%s", out)
	}
}

// TestExpositionCombinedEndpoint lints what the daemon actually serves:
// registry families followed by domain families on one endpoint, with
// the spec content type.
func TestExpositionCombinedEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("daemon_dispatch_total{" + Labels("program", "remote", "proc", "GetHostname") + "}").Inc()
	src := &fakeSource{rows: fakeRows(2)}
	dc, err := NewDomainCollector(src, DomainCollectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(HandlerWith(r, dc))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	lintExposition(t, string(body))
	for _, want := range []string{"daemon_dispatch_total", "govirt_domain_info", "govirt_domain_sweeps_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("combined output missing %s:\n%.400s", want, body)
		}
	}
}

// TestHandlerSweepFailure: a failed sweep is a clean 503, not a partial
// body.
func TestHandlerSweepFailure(t *testing.T) {
	src := &fakeSource{}
	src.setErr(errTest)
	dc, err := NewDomainCollector(src, DomainCollectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	HandlerWith(NewRegistry(), dc).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
}

var errTest = errorString("sweep exploded")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestEscapeLabelValue covers the escape table and the fast path.
func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		`back\slash`:   `back\\slash`,
		`quo"te`:       `quo\"te`,
		"new\nline":    `new\nline`,
		`all\"` + "\n": `all\\\"\n`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Fatalf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
	if got := Labels("a", "1", "b", `x"y`); got != `a="1",b="x\"y"` {
		t.Fatalf("Labels = %q", got)
	}
}

// TestMetricsServerShutdown: the listener binds, serves, and drains
// within the grace budget.
func TestMetricsServerShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	srv, err := ServeMetrics("127.0.0.1:0", Handler(r))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestInstrumentFaultpoints: fired injections land on the registry as
// fault_injected_total{site,kind}.
func TestInstrumentFaultpoints(t *testing.T) {
	fr := faultpoint.New()
	reg := NewRegistry()
	InstrumentFaultpoints(reg, fr)
	fr.Set("rpc.recv", faultpoint.Spec{Mode: faultpoint.ModeDrop, Prob: 1})
	fr.Arm(42)
	defer fr.Disarm()
	for i := 0; i < 3; i++ {
		if _, fired := fr.Eval("rpc.recv"); !fired {
			t.Fatal("prob 1 point did not fire")
		}
	}
	name := "fault_injected_total{" + Labels("site", "rpc.recv", "kind", "drop") + "}"
	if got := reg.Counter(name).Value(); got != 3 {
		t.Fatalf("%s = %d, want 3", name, got)
	}
	lintExposition(t, reg.Snapshot().Prometheus())
}
