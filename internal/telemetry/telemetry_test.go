package telemetry

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	if r.Counter("a_total") != c {
		t.Fatal("counter identity lost")
	}
	g := r.Gauge("b")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge %d", g.Value())
	}
	r.CounterFunc("f_total", func() uint64 { return 42 })
	r.GaugeFunc("fg", func() int64 { return -3 })
	snap := r.Snapshot()
	vals := map[string]uint64{}
	for _, c := range snap.Counters {
		vals[c.Name] = c.Value
	}
	if vals["a_total"] != 5 || vals["f_total"] != 42 {
		t.Fatalf("counter snapshot %v", vals)
	}
	var fg int64
	for _, g := range snap.Gauges {
		if g.Name == "fg" {
			fg = g.Value
		}
	}
	if fg != -3 {
		t.Fatalf("gauge func %d", fg)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	// 100 observations spread uniformly from 1ms to 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	p50 := time.Duration(s.P50Ns)
	p95 := time.Duration(s.P95Ns)
	p99 := time.Duration(s.P99Ns)
	if p50 < 20*time.Millisecond || p50 > 100*time.Millisecond {
		t.Fatalf("p50 %v", p50)
	}
	if p95 < p50 || p99 < p95 {
		t.Fatalf("quantiles unordered: %v %v %v", p50, p95, p99)
	}
	if s.MeanNs() == 0 {
		t.Fatal("mean zero")
	}
	// All observations in one bucket: quantiles interpolate inside it.
	h2 := r.Histogram("lat2_seconds")
	for i := 0; i < 10; i++ {
		h2.Observe(30 * time.Microsecond)
	}
	s2 := h2.Snapshot()
	if s2.P50Ns < 20_000 || s2.P50Ns > 50_000 {
		t.Fatalf("single-bucket p50 %d", s2.P50Ns)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clamped to zero, must not panic
	h.Observe(time.Hour)    // lands in +Inf bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d", s.Count)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.UpperNs != 0 || last.Cumulative != 3 {
		t.Fatalf("+Inf bucket %+v", last)
	}
	// Empty histogram quantiles are zero.
	var empty Histogram
	if es := empty.Snapshot(); es.P99Ns != 0 || es.Count != 0 {
		t.Fatalf("empty snapshot %+v", es)
	}
}

func TestBucketIndexMatchesBounds(t *testing.T) {
	bounds := BucketBounds()
	for i, bound := range bounds {
		if got := bucketIndex(bound); got != i {
			t.Fatalf("bound %d: bucket %d, want %d", bound, got, i)
		}
	}
	if got := bucketIndex(bounds[len(bounds)-1] + 1); got != len(bounds) {
		t.Fatalf("over-max bucket %d", got)
	}
	if got := bucketIndex(0); got != 0 {
		t.Fatalf("zero bucket %d", got)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter(`calls_total{proc="DomainGetInfo"}`).Add(3)
	r.Counter(`calls_total{proc="GetHostname"}`).Add(2)
	r.Gauge("clients").Set(4)
	r.Histogram(`lat_seconds{proc="DomainGetInfo"}`).Observe(1500 * time.Microsecond)
	text := r.Snapshot().Prometheus()

	for _, want := range []string{
		"# TYPE calls_total counter",
		`calls_total{proc="DomainGetInfo"} 3`,
		`calls_total{proc="GetHostname"} 2`,
		"# TYPE clients gauge",
		"clients 4",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{proc="DomainGetInfo",le="+Inf"} 1`,
		`lat_seconds_count{proc="DomainGetInfo"} 1`,
		`lat_seconds_sum{proc="DomainGetInfo"} 0.0015`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// TYPE lines appear exactly once per base name.
	if strings.Count(text, "# TYPE calls_total counter") != 1 {
		t.Fatalf("duplicate TYPE lines:\n%s", text)
	}
	// Bucket `le` bounds are in seconds: 1µs bucket renders as 0.000001.
	if !strings.Contains(text, `le="0.000001"`) {
		t.Fatalf("missing seconds-unit bucket bound:\n%s", text)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Fatalf("body:\n%s", body)
	}
}

func TestTracerSlowCalls(t *testing.T) {
	tr := NewTracer(3, time.Nanosecond)
	var hooked []SlowCall
	tr.OnSlow(func(sc SlowCall) { hooked = append(hooked, sc) })
	for i := 0; i < 5; i++ {
		sp := tr.Start("remote", fmt.Sprintf("Proc%d", i), 7, uint32(i))
		sp.QueueWait = time.Duration(i) * time.Microsecond
		time.Sleep(100 * time.Microsecond)
		sp.Finish()
	}
	if tr.Started() != 5 || tr.SlowCount() != 5 {
		t.Fatalf("started %d slow %d", tr.Started(), tr.SlowCount())
	}
	calls := tr.SlowCalls()
	if len(calls) != 3 {
		t.Fatalf("ring kept %d", len(calls))
	}
	// Ring keeps the most recent three, oldest first.
	if calls[0].Proc != "Proc2" || calls[2].Proc != "Proc4" {
		t.Fatalf("ring order %+v", calls)
	}
	if calls[2].Client != 7 || calls[2].Serial != 4 || calls[2].Duration <= 0 {
		t.Fatalf("record %+v", calls[2])
	}
	if len(hooked) != 5 {
		t.Fatalf("hook fired %d times", len(hooked))
	}
}

func TestTracerThresholdAndNil(t *testing.T) {
	tr := NewTracer(4, time.Hour)
	sp := tr.Start("remote", "Fast", 1, 1)
	sp.Finish()
	if tr.SlowCount() != 0 || len(tr.SlowCalls()) != 0 {
		t.Fatal("fast call recorded as slow")
	}
	// Threshold 0 disables recording entirely.
	tr.SetThreshold(0)
	sp = tr.Start("remote", "Any", 1, 2)
	time.Sleep(time.Millisecond)
	sp.Finish()
	if tr.SlowCount() != 0 {
		t.Fatal("disabled tracer recorded a call")
	}
	if tr.Threshold() != 0 {
		t.Fatalf("threshold %v", tr.Threshold())
	}
	// Nil tracer and nil span are inert.
	var nilTracer *Tracer
	nilTracer.Start("x", "y", 0, 0).Finish()
	if nilTracer.SlowCalls() != nil {
		t.Fatal("nil tracer returned calls")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("shared_total").Inc()
				r.Histogram("shared_seconds").Observe(time.Duration(j) * time.Microsecond)
				r.Gauge(fmt.Sprintf("g%d", n)).Set(int64(j))
				if j%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 8*500 {
		t.Fatalf("lost updates: %d", got)
	}
	if got := r.Histogram("shared_seconds").Snapshot().Count; got != 8*500 {
		t.Fatalf("lost observations: %d", got)
	}
}
