// Per-domain Prometheus export: the scrape-time bulk collector.
//
// The paper's non-intrusive claim is hardest to keep under heavy remote
// monitoring: per-domain stats for thousands of guests is the workload
// that multiplies management cost fastest. The DomainCollector keeps it
// flat by construction:
//
//   - one scrape = one bulk NodeInventory sweep (CollectInventoryInto,
//     which itself falls back to the classic NodeInfo + list + N×info
//     loop against peers without the bulk procedures),
//   - the rendered exposition is cached for a staleness bound, so N
//     Prometheus servers scraping the same host within the window cost
//     one sweep total (single-flight: concurrent scrapers coalesce onto
//     the in-flight sweep instead of starting their own), and
//   - cardinality is explicit: a max-domain cap with a truncation
//     counter, and a label allowlist so high-churn labels (uuid, state)
//     can be dropped at the source.
//
// Cost model: a scrape inside the staleness window is one mutex
// acquisition and zero allocations — it returns the retained rendered
// buffer. A sweep re-renders once and allocates one fresh output buffer
// (readers may still hold the previous one), keeping allocs-per-scrape
// amortised O(1/scrapers-per-window). BenchmarkT9_Scrape and
// TestScrapeAllocsRegression gate this.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// DomainRow is one domain's exported monitoring row — the unit both the
// daemon's /metrics endpoint and the fleet-wide aggregated scrape render.
type DomainRow struct {
	Name      string
	UUID      string // empty when the uuid label is disabled or unresolved
	State     core.DomainState
	MemKiB    uint64
	MaxMemKiB uint64
	VCPUs     int
	CPUTimeNs uint64
	UptimeNs  uint64 // observed time in an up state; 0 when down
}

// DomainRowSet groups one host's rows for rendering. Extra is a
// pre-rendered label clause (use Labels) appended to every series —
// the fleet aggregator sets host="..." here so the same family can
// carry many hosts' rows without colliding.
type DomainRowSet struct {
	Extra     string
	Rows      []DomainRow
	Truncated uint64 // cumulative rows dropped by the cardinality cap
}

// DomainLabelSet selects which per-domain labels are emitted. The
// domain name label is always present — without it every row would
// collapse into one series.
type DomainLabelSet struct {
	UUID  bool
	State bool
}

// AllDomainLabels enables every per-domain label.
func AllDomainLabels() DomainLabelSet { return DomainLabelSet{UUID: true, State: true} }

// ParseDomainLabels reads a label allowlist ("uuid", "state"; "domain"
// is implied and accepted). A nil or empty list means all labels.
func ParseDomainLabels(list []string) (DomainLabelSet, error) {
	if len(list) == 0 {
		return AllDomainLabels(), nil
	}
	var ls DomainLabelSet
	for _, l := range list {
		switch l {
		case "domain":
			// always on
		case "uuid":
			ls.UUID = true
		case "state":
			ls.State = true
		default:
			return DomainLabelSet{}, fmt.Errorf("telemetry: unknown domain label %q (have domain, uuid, state)", l)
		}
	}
	return ls, nil
}

// DomainSource is the seam the collector sweeps through. core.DriverConn
// satisfies it via NewDriverDomainCollector; tests substitute fakes.
type DomainSource interface {
	// SweepInventory refreshes *inv in place — the one bulk call per
	// sweep. Implementations reuse inv's storage where they can.
	SweepInventory(inv *core.NodeInventory) error
	// DomainUUID resolves a domain name to its UUID. Called only for
	// names not already cached and only when the uuid label is enabled.
	DomainUUID(name string) (string, bool)
}

// driverSource adapts a driver connection: the sweep is
// core.CollectInventoryInto (bulk fast path, per-domain fallback for
// old peers), uuid resolution is one LookupDomain per unseen name.
type driverSource struct{ d core.DriverConn }

func (s driverSource) SweepInventory(inv *core.NodeInventory) error {
	return core.CollectInventoryInto(s.d, inv)
}

func (s driverSource) DomainUUID(name string) (string, bool) {
	meta, err := s.d.LookupDomain(name)
	if err != nil {
		return "", false
	}
	return meta.UUID, true
}

// DomainCollectorConfig tunes a DomainCollector.
type DomainCollectorConfig struct {
	// Staleness is how long a rendered sweep keeps being served to new
	// scrapers. 0 sweeps on every scrape (concurrent scrapers still
	// coalesce onto one in-flight sweep).
	Staleness time.Duration
	// MaxDomains caps exported rows; excess rows are dropped and
	// counted in govirt_domains_truncated_total. 0 = unlimited.
	MaxDomains int
	// Labels is the label allowlist (see ParseDomainLabels); nil = all.
	Labels []string
	// Extra is a pre-rendered label clause (use Labels helper) stamped
	// on every series, e.g. `host="node1"` for fleet aggregation.
	Extra string
	// Now overrides the clock (tests). nil = time.Now.
	Now func() time.Time
}

// DomainCollectorStats is a point-in-time view of the collector's own
// counters.
type DomainCollectorStats struct {
	Scrapes     uint64 // Exposition calls
	Coalesced   uint64 // scrapes that waited on another scraper's sweep
	Sweeps      uint64 // bulk sweeps actually executed
	SweepErrors uint64
	Truncated   uint64 // rows ever dropped by the MaxDomains cap
	LastSweep   time.Duration
}

// DomainCollector renders per-domain metrics at scrape time from bulk
// inventory sweeps, behind a staleness-bounded single-flight cache.
type DomainCollector struct {
	src    DomainSource
	labels DomainLabelSet
	extra  string
	stale  time.Duration
	maxDom int
	now    func() time.Time

	// Collector-level counters are atomic: scrapers bump them while a
	// sweep renders them without holding mu.
	scrapes     atomic.Uint64
	coalesced   atomic.Uint64
	sweeps      atomic.Uint64
	sweepErrors atomic.Uint64
	truncated   atomic.Uint64
	lastSweepNs atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	sweeping bool
	sweptAt  time.Time
	rendered []byte // last good exposition; readers must not mutate
	lastErr  error
	pubRows  []DomainRow // published copy of rows for Rows()

	// Sweep working state: owned by whichever scraper holds the
	// sweeping flag, so it needs no lock of its own.
	inv      core.NodeInventory
	rows     []DomainRow
	uuids    map[string]string
	upSince  map[string]time.Time
	sizeHint int
}

// NewDomainCollector builds a collector over an arbitrary source.
func NewDomainCollector(src DomainSource, cfg DomainCollectorConfig) (*DomainCollector, error) {
	labels, err := ParseDomainLabels(cfg.Labels)
	if err != nil {
		return nil, err
	}
	if cfg.Staleness < 0 {
		return nil, fmt.Errorf("telemetry: negative staleness %v", cfg.Staleness)
	}
	if cfg.MaxDomains < 0 {
		return nil, fmt.Errorf("telemetry: negative max domains %d", cfg.MaxDomains)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	c := &DomainCollector{
		src:     src,
		labels:  labels,
		extra:   cfg.Extra,
		stale:   cfg.Staleness,
		maxDom:  cfg.MaxDomains,
		now:     now,
		uuids:   make(map[string]string),
		upSince: make(map[string]time.Time),
	}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// NewDriverDomainCollector builds a collector sweeping a driver
// connection — the form the daemon and the CLIs use.
func NewDriverDomainCollector(d core.DriverConn, cfg DomainCollectorConfig) (*DomainCollector, error) {
	return NewDomainCollector(driverSource{d: d}, cfg)
}

// Exposition returns the per-domain metrics in Prometheus text format.
// Within the staleness window it serves the retained render without
// sweeping; otherwise exactly one caller sweeps while concurrent
// scrapers wait for (and share) its result. The returned slice is
// owned by the collector — write it out, do not mutate it.
func (c *DomainCollector) Exposition() ([]byte, error) {
	c.scrapes.Add(1)
	c.mu.Lock()
	if c.lastErr == nil && !c.sweptAt.IsZero() && c.now().Sub(c.sweptAt) < c.stale {
		out := c.rendered
		c.mu.Unlock()
		return out, nil
	}
	if c.sweeping {
		// Single-flight: a sweep is already running; its result is the
		// freshest answer we can give, so take it when it lands rather
		// than queueing another sweep.
		c.coalesced.Add(1)
		for c.sweeping {
			c.cond.Wait()
		}
		out, err := c.rendered, c.lastErr
		c.mu.Unlock()
		return out, err
	}
	c.sweeping = true
	c.mu.Unlock()

	start := time.Now()
	err := c.src.SweepInventory(&c.inv)
	var out []byte
	if err == nil {
		c.buildRows(c.now())
		out = c.render()
	}
	c.sweeps.Add(1)
	c.lastSweepNs.Store(int64(time.Since(start)))
	if err != nil {
		c.sweepErrors.Add(1)
	}

	c.mu.Lock()
	c.sweeping = false
	c.sweptAt = c.now()
	c.lastErr = err
	if err == nil {
		c.rendered = out
		c.pubRows = append(c.pubRows[:0], c.rows...)
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Rows returns a copy of the rows behind the last successful sweep.
// Call Exposition first to have one.
func (c *DomainCollector) Rows() []DomainRow {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]DomainRow(nil), c.pubRows...)
}

// Stats reports the collector's own counters.
func (c *DomainCollector) Stats() DomainCollectorStats {
	return DomainCollectorStats{
		Scrapes:     c.scrapes.Load(),
		Coalesced:   c.coalesced.Load(),
		Sweeps:      c.sweeps.Load(),
		SweepErrors: c.sweepErrors.Load(),
		Truncated:   c.truncated.Load(),
		LastSweep:   time.Duration(c.lastSweepNs.Load()),
	}
}

// isUp reports whether a state keeps the observed-uptime clock running.
func isUp(s core.DomainState) bool {
	switch s {
	case core.DomainRunning, core.DomainBlocked, core.DomainPaused, core.DomainPMSuspended:
		return true
	default:
		return false
	}
}

// buildRows converts the swept inventory into export rows, applying the
// cardinality cap, the uuid cache and the observed-uptime bookkeeping.
// Only the active sweeper runs here.
func (c *DomainCollector) buildRows(now time.Time) {
	doms := c.inv.Domains
	if c.maxDom > 0 && len(doms) > c.maxDom {
		c.truncated.Add(uint64(len(doms) - c.maxDom))
		doms = doms[:c.maxDom]
	}
	rows := c.rows[:0]
	for _, nd := range doms {
		row := DomainRow{
			Name: nd.Name, State: nd.Info.State,
			MemKiB: nd.Info.MemKiB, MaxMemKiB: nd.Info.MaxMemKiB,
			VCPUs: nd.Info.VCPUs, CPUTimeNs: nd.Info.CPUTimeNs,
		}
		if c.labels.UUID {
			if u, ok := c.uuids[nd.Name]; ok {
				row.UUID = u
			} else if u, ok := c.src.DomainUUID(nd.Name); ok {
				c.uuids[nd.Name] = u
				row.UUID = u
			}
		}
		if isUp(nd.Info.State) {
			since, ok := c.upSince[nd.Name]
			if !ok {
				since = now
				c.upSince[nd.Name] = since
			}
			if d := now.Sub(since); d > 0 {
				row.UptimeNs = uint64(d)
			}
		} else {
			delete(c.upSince, nd.Name)
		}
		rows = append(rows, row)
	}
	c.rows = rows
	c.pruneCaches()
}

// pruneCaches drops cache entries for vanished domains once the maps
// grow well past the live row count, bounding memory on churny hosts.
func (c *DomainCollector) pruneCaches() {
	limit := 2*len(c.rows) + 16
	if len(c.uuids) <= limit && len(c.upSince) <= limit {
		return
	}
	live := make(map[string]bool, len(c.rows))
	for i := range c.rows {
		live[c.rows[i].Name] = true
	}
	for name := range c.uuids {
		if !live[name] {
			delete(c.uuids, name)
		}
	}
	for name := range c.upSince {
		if !live[name] {
			delete(c.upSince, name)
		}
	}
}

// render produces a fresh exposition buffer for the current rows. A new
// slice per sweep keeps previously returned buffers immutable for
// readers still writing them out.
func (c *DomainCollector) render() []byte {
	out := make([]byte, 0, c.sizeHint+512)
	set := DomainRowSet{Extra: c.extra, Rows: c.rows, Truncated: c.truncated.Load()}
	out = AppendDomainExposition(out, []DomainRowSet{set}, c.labels)
	out = c.appendCollectorStats(out)
	c.sizeHint = len(out)
	return out
}

// appendCollectorStats renders the collector's self-measurement
// families. Values are as of sweep time: a cached scrape serves the
// numbers its sweep saw, which is exactly the staleness contract.
func (c *DomainCollector) appendCollectorStats(dst []byte) []byte {
	clause := ""
	if c.extra != "" {
		clause = "{" + c.extra + "}"
	}
	stat := func(dst []byte, name, kind, help string, v uint64) []byte {
		dst = appendFamilyHeader(dst, name, kind, help)
		dst = append(dst, name...)
		dst = append(dst, clause...)
		dst = append(dst, ' ')
		dst = appendUint(dst, v)
		return append(dst, '\n')
	}
	dst = stat(dst, "govirt_domain_sweeps_total", "counter",
		"Bulk inventory sweeps executed by the domain collector.", c.sweeps.Load())
	dst = stat(dst, "govirt_domain_sweep_errors_total", "counter",
		"Bulk inventory sweeps that failed.", c.sweepErrors.Load())
	dst = stat(dst, "govirt_domain_scrapes_total", "counter",
		"Scrapes answered by the domain collector (cached or swept).", c.scrapes.Load())
	dst = stat(dst, "govirt_domain_scrapes_coalesced_total", "counter",
		"Scrapes that coalesced onto another scraper's in-flight sweep.", c.coalesced.Load())
	dst = appendFamilyHeader(dst, "govirt_domain_sweep_duration_seconds", "gauge",
		"Duration of the last bulk inventory sweep.")
	dst = append(dst, "govirt_domain_sweep_duration_seconds"...)
	dst = append(dst, clause...)
	dst = append(dst, ' ')
	dst = appendSeconds(dst, uint64(c.lastSweepNs.Load()))
	return append(dst, '\n')
}
