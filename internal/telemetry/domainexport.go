// Rendering of per-domain metric families in the Prometheus text
// exposition format. Shared by the DomainCollector (one host) and the
// fleet-wide aggregated scrape in virtfleetx (many hosts, one family
// header per family, host="..." extra labels) — exposition rules demand
// all samples of a family stay together, so aggregation must happen
// family-by-family, not host-by-host.
package telemetry

import (
	"strconv"

	"repro/internal/core"
)

// domainFamily describes one govirt_domain_* metric family.
type domainFamily struct {
	name string
	kind string
	help string
	// value appends the sample value for one row.
	value func(dst []byte, r *DomainRow) []byte
	// stateLabel marks the family carrying the state string label.
	stateLabel bool
}

var domainFamilies = []domainFamily{
	{
		name: "govirt_domain_info", kind: "gauge",
		help:       "Per-domain identity row; value is always 1.",
		value:      func(dst []byte, _ *DomainRow) []byte { return append(dst, '1') },
		stateLabel: true,
	},
	{
		name: "govirt_domain_state", kind: "gauge",
		help: "Domain lifecycle state code (0=no state 1=running 2=blocked 3=paused 4=in shutdown 5=shut off 6=crashed 7=pmsuspended).",
		value: func(dst []byte, r *DomainRow) []byte {
			return strconv.AppendInt(dst, int64(r.State), 10)
		},
	},
	{
		name: "govirt_domain_vcpus", kind: "gauge",
		help: "Virtual CPUs assigned to the domain.",
		value: func(dst []byte, r *DomainRow) []byte {
			return strconv.AppendInt(dst, int64(r.VCPUs), 10)
		},
	},
	{
		name: "govirt_domain_memory_bytes", kind: "gauge",
		help: "Current memory allocated to the domain.",
		value: func(dst []byte, r *DomainRow) []byte {
			return appendUint(dst, r.MemKiB*1024)
		},
	},
	{
		name: "govirt_domain_memory_max_bytes", kind: "gauge",
		help: "Maximum memory allowed for the domain.",
		value: func(dst []byte, r *DomainRow) []byte {
			return appendUint(dst, r.MaxMemKiB*1024)
		},
	},
	{
		name: "govirt_domain_cpu_seconds_total", kind: "counter",
		help: "CPU time consumed by the domain.",
		value: func(dst []byte, r *DomainRow) []byte {
			return appendSeconds(dst, r.CPUTimeNs)
		},
	},
	{
		name: "govirt_domain_uptime_seconds", kind: "gauge",
		help: "Time the collector has observed the domain in an up state; 0 when down.",
		value: func(dst []byte, r *DomainRow) []byte {
			return appendSeconds(dst, r.UptimeNs)
		},
	},
}

// AppendDomainExposition renders every per-domain family for the given
// row sets into dst and returns it. Each family is emitted exactly once
// with its HELP/TYPE header followed by all sets' samples, so the output
// is spec-compliant however many hosts are aggregated.
func AppendDomainExposition(dst []byte, sets []DomainRowSet, labels DomainLabelSet) []byte {
	for fi := range domainFamilies {
		f := &domainFamilies[fi]
		dst = appendFamilyHeader(dst, f.name, f.kind, f.help)
		for si := range sets {
			set := &sets[si]
			for ri := range set.Rows {
				r := &set.Rows[ri]
				dst = append(dst, f.name...)
				dst = appendDomainLabels(dst, r, labels, f.stateLabel, set.Extra)
				dst = append(dst, ' ')
				dst = f.value(dst, r)
				dst = append(dst, '\n')
			}
		}
	}
	// Per-set cardinality accounting: exported row count and the
	// cumulative number of rows dropped by the cap.
	dst = appendFamilyHeader(dst, "govirt_domains", "gauge",
		"Domains exported in the last sweep.")
	for si := range sets {
		dst = appendSetSample(dst, "govirt_domains", sets[si].Extra, uint64(len(sets[si].Rows)))
	}
	dst = appendFamilyHeader(dst, "govirt_domains_truncated_total", "counter",
		"Domain rows dropped by the max-domain cardinality cap.")
	for si := range sets {
		dst = appendSetSample(dst, "govirt_domains_truncated_total", sets[si].Extra, sets[si].Truncated)
	}
	return dst
}

// appendSetSample writes one per-set sample with its optional extra
// label clause.
func appendSetSample(dst []byte, name, extra string, v uint64) []byte {
	dst = append(dst, name...)
	if extra != "" {
		dst = append(dst, '{')
		dst = append(dst, extra...)
		dst = append(dst, '}')
	}
	dst = append(dst, ' ')
	dst = appendUint(dst, v)
	return append(dst, '\n')
}

// appendDomainLabels writes the label clause for one row: domain always,
// uuid/state per the allowlist, then the set's extra clause.
func appendDomainLabels(dst []byte, r *DomainRow, labels DomainLabelSet, withState bool, extra string) []byte {
	dst = append(dst, `{domain="`...)
	dst = appendEscapedLabelValue(dst, r.Name)
	dst = append(dst, '"')
	if labels.UUID {
		dst = append(dst, `,uuid="`...)
		dst = appendEscapedLabelValue(dst, r.UUID)
		dst = append(dst, '"')
	}
	if withState && labels.State {
		dst = append(dst, `,state="`...)
		dst = appendEscapedLabelValue(dst, r.State.String())
		dst = append(dst, '"')
	}
	if extra != "" {
		dst = append(dst, ',')
		dst = append(dst, extra...)
	}
	return append(dst, '}')
}

// appendUint is strconv.AppendUint base 10.
func appendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// appendSeconds renders nanoseconds as a decimal seconds literal with
// no float artefacts, allocation-free (the append form of formatSeconds).
func appendSeconds(dst []byte, ns uint64) []byte {
	whole := ns / 1_000_000_000
	frac := ns % 1_000_000_000
	dst = appendUint(dst, whole)
	if frac == 0 {
		return dst
	}
	var digits [9]byte
	for i := 8; i >= 0; i-- {
		digits[i] = byte('0' + frac%10)
		frac /= 10
	}
	n := 9
	for n > 0 && digits[n-1] == '0' {
		n--
	}
	dst = append(dst, '.')
	return append(dst, digits[:n]...)
}

// DomainRowsFromInventory converts raw sweep rows to export rows —
// for callers aggregating inventories they already hold (virtfleetx)
// rather than sweeping through a collector.
func DomainRowsFromInventory(rows []core.NamedDomainInfo) []DomainRow {
	out := make([]DomainRow, len(rows))
	for i, nd := range rows {
		out[i] = DomainRow{
			Name: nd.Name, State: nd.Info.State,
			MemKiB: nd.Info.MemKiB, MaxMemKiB: nd.Info.MaxMemKiB,
			VCPUs: nd.Info.VCPUs, CPUTimeNs: nd.Info.CPUTimeNs,
		}
	}
	return out
}
