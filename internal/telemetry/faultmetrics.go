// Bridge from fault injection to telemetry: chaos runs become
// observable on the same /metrics endpoint they perturb, as
// fault_injected_total{site=...,kind=...} counters.
package telemetry

import (
	"sync"

	"repro/internal/faultpoint"
)

// InstrumentFaultpoints registers an observer on fr that counts every
// fired injection in reg under fault_injected_total{site,kind}. Counter
// handles are cached per (site, kind) so the steady-state cost per fire
// is one map read under RLock plus one atomic add.
func InstrumentFaultpoints(reg *Registry, fr *faultpoint.Registry) {
	var mu sync.RWMutex
	counters := make(map[string]*Counter)
	fr.SetObserver(func(site string, mode faultpoint.Mode) {
		kind := mode.String()
		key := site + "\x00" + kind
		mu.RLock()
		c, ok := counters[key]
		mu.RUnlock()
		if !ok {
			c = reg.Counter("fault_injected_total{" + Labels("site", site, "kind", kind) + "}")
			mu.Lock()
			counters[key] = c
			mu.Unlock()
		}
		c.Inc()
	})
}
