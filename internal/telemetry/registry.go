// Package telemetry is the measurement substrate of the management
// plane: a stdlib-only, lock-cheap metrics registry (atomic counters,
// gauges, fixed-bucket latency histograms with quantile snapshots) plus
// lightweight per-call tracing (spans with a bounded ring of recent slow
// calls). It exists because the paper's non-intrusive claim needs the
// management side itself to be observable without touching guests: the
// daemon, RPC layer and drivers all report here, and the admin API, the
// optional Prometheus endpoint and the bench harness all read from here.
//
// Hot-path cost model: a registered Counter/Gauge/Histogram handle is a
// pointer; updating it is one or two atomic operations and never takes a
// lock. Registry lookups (get-or-create by name) take a read lock and
// are meant for set-up paths, with callers caching the handle.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set installs an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBuckets is the count of finite histogram buckets.
const numBuckets = 22

// bucketBoundsNs are the fixed histogram bucket upper bounds in
// nanoseconds, log-spaced 1-2-5 from 1µs to 10s. Durations above the
// last bound land in the implicit +Inf bucket.
var bucketBoundsNs = [numBuckets]uint64{
	1_000, 2_000, 5_000,
	10_000, 20_000, 50_000,
	100_000, 200_000, 500_000,
	1_000_000, 2_000_000, 5_000_000,
	10_000_000, 20_000_000, 50_000_000,
	100_000_000, 200_000_000, 500_000_000,
	1_000_000_000, 2_000_000_000, 5_000_000_000,
	10_000_000_000,
}

// Histogram accumulates durations into fixed log-spaced buckets. All
// updates are atomic; Observe never allocates or locks.
type Histogram struct {
	buckets [numBuckets + 1]atomic.Uint64 // +1 for +Inf
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// bucketIndex finds the first bucket whose bound is >= ns via binary
// search over the fixed bounds.
func bucketIndex(ns uint64) int {
	lo, hi := 0, len(bucketBoundsNs)
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBoundsNs[mid] >= ns {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(bucketBoundsNs) means +Inf
}

// HistogramSnapshot is a point-in-time view of a histogram with
// estimated quantiles.
type HistogramSnapshot struct {
	Name    string
	Count   uint64
	SumNs   uint64
	P50Ns   uint64
	P95Ns   uint64
	P99Ns   uint64
	Buckets []BucketCount
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	UpperNs    uint64 // 0 means +Inf
	Cumulative uint64
}

// MeanNs returns the arithmetic mean in nanoseconds.
func (s HistogramSnapshot) MeanNs() uint64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / s.Count
}

// Snapshot captures the histogram's buckets and computes quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [len(bucketBoundsNs) + 1]uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	snap := HistogramSnapshot{
		Count: h.count.Load(),
		SumNs: h.sumNs.Load(),
	}
	var total uint64
	snap.Buckets = make([]BucketCount, 0, len(counts))
	for i, c := range counts {
		total += c
		upper := uint64(0)
		if i < len(bucketBoundsNs) {
			upper = bucketBoundsNs[i]
		}
		snap.Buckets = append(snap.Buckets, BucketCount{UpperNs: upper, Cumulative: total})
	}
	snap.P50Ns = quantile(counts[:], total, 0.50)
	snap.P95Ns = quantile(counts[:], total, 0.95)
	snap.P99Ns = quantile(counts[:], total, 0.99)
	return snap
}

// quantile estimates the q-quantile by linear interpolation inside the
// bucket containing the target rank. The +Inf bucket reports the last
// finite bound.
func quantile(counts []uint64, total uint64, q float64) uint64 {
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range counts {
		if seen+c <= rank {
			seen += c
			continue
		}
		if i >= len(bucketBoundsNs) {
			return bucketBoundsNs[len(bucketBoundsNs)-1]
		}
		lower := uint64(0)
		if i > 0 {
			lower = bucketBoundsNs[i-1]
		}
		upper := bucketBoundsNs[i]
		// Position of the target rank inside this bucket.
		frac := float64(rank-seen+1) / float64(c)
		return lower + uint64(frac*float64(upper-lower))
	}
	return bucketBoundsNs[len(bucketBoundsNs)-1]
}

// CounterSnapshot and GaugeSnapshot are point-in-time metric views.
type CounterSnapshot struct {
	Name  string
	Value uint64
}

// GaugeSnapshot is a point-in-time gauge view.
type GaugeSnapshot struct {
	Name  string
	Value int64
}

// Snapshot is a consistent-enough view of a whole registry: every metric
// is read atomically, function metrics are sampled at snapshot time.
type Snapshot struct {
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// Registry holds named metrics. Names follow the Prometheus convention
// and may carry a label clause: `daemon_dispatch_total{proc="DomainGetInfo"}`.
// Get-or-create methods are safe for concurrent use; the returned handle
// should be cached by hot paths.
type Registry struct {
	mu           sync.RWMutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	histograms   map[string]*Histogram
	counterFuncs map[string]func() uint64
	gaugeFuncs   map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		histograms:   make(map[string]*Histogram),
		counterFuncs: make(map[string]func() uint64),
		gaugeFuncs:   make(map[string]func() int64),
	}
}

// Default is the process-wide registry. Components that have no natural
// owner to thread a registry through (the RPC substrate, drivers) report
// here; the daemon uses it unless built with an explicit registry.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; ok {
		return h
	}
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// CounterFunc registers a counter sampled by calling fn at snapshot
// time. Re-registering a name replaces the function: when a component is
// rebuilt (tests, daemon restarts in-process) the newest source wins.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = fn
}

// GaugeFunc registers a gauge sampled by calling fn at snapshot time.
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Snapshot samples every metric. Output is sorted by name so renderings
// are stable.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	counterFuncs := make(map[string]func() uint64, len(r.counterFuncs))
	for k, v := range r.counterFuncs {
		counterFuncs[k] = v
	}
	gaugeFuncs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gaugeFuncs[k] = v
	}
	r.mu.RUnlock()

	var snap Snapshot
	for name, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, fn := range counterFuncs {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: name, Value: fn()})
	}
	for name, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, fn := range gaugeFuncs {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Name: name, Value: fn()})
	}
	for name, h := range hists {
		hs := h.Snapshot()
		hs.Name = name
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}
