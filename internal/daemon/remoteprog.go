package daemon

import (
	"bytes"
	"crypto/subtle"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/rpc"
	"repro/internal/uri"
	"repro/internal/watch"
	"repro/internal/wire"
)

// invPool recycles NodeInventory values between ProcNodeInventory
// requests so their row storage survives across a monitoring poller's
// sweeps.
var invPool = sync.Pool{New: func() interface{} { return new(core.NodeInventory) }}

// isAuthProc reports whether a procedure is allowed before
// authentication completes.
func isAuthProc(proc uint32) bool {
	return proc == wire.ProcAuthList || proc == wire.ProcAuthSASLStart
}

// remoteState is the per-client state of the remote program. Dispatch
// runs on workerpool goroutines and ClientClosed on the reader, so all
// fields are guarded: an in-flight job must never race the teardown.
type remoteState struct {
	mu        sync.Mutex
	conn      *core.Connect
	callbacks map[int32]int // client callback id -> bus subscription id
	nextCB    int32
	watches   map[int32]*watchSub // subscription id -> watch stream
	nextSub   int32
}

// watchSub ties one watch subscriber queue to its bus subscription.
type watchSub struct {
	sub   *watch.Subscriber
	busID int
}

// RemoteProgram dispatches the hypervisor management protocol. Each
// client opens its own server-side driver connection, so the daemon
// invokes the very same driver interface the client would use locally.
type RemoteProgram struct {
	srv *Server
}

// NewRemoteProgram creates the management program for a server.
func NewRemoteProgram(srv *Server) *RemoteProgram {
	return &RemoteProgram{srv: srv}
}

// ID implements Program.
func (p *RemoteProgram) ID() uint32 { return rpc.ProgramRemote }

// IsPriority implements Program: procedures that never wait on a
// hypervisor may run on priority workers.
func (p *RemoteProgram) IsPriority(proc uint32) bool {
	switch proc {
	case wire.ProcConnectOpen, wire.ProcConnectClose, wire.ProcGetType,
		wire.ProcGetHostname, wire.ProcDomainList, wire.ProcDomainLookupByName,
		wire.ProcDomainLookupByUUID, wire.ProcEventRegister, wire.ProcEventDeregister,
		wire.ProcEventSubscribe, wire.ProcEventUnsubscribe,
		wire.ProcAuthList, wire.ProcAuthSASLStart,
		// Migration control and post-copy demand-fault pulls must not
		// queue behind a flood of background page chunks: the pull
		// stream is what bounds guest stalls after switch-over.
		wire.ProcMigratePrepare, wire.ProcMigratePagePull, wire.ProcMigrateFinish:
		return true
	}
	return false
}

// ClientClosed implements Program: release the driver connection and
// event subscriptions.
func (p *RemoteProgram) ClientClosed(c *Client) {
	st := p.state(c)
	st.mu.Lock()
	conn := st.conn
	st.conn = nil
	callbacks := st.callbacks
	st.callbacks = make(map[int32]int)
	watches := st.watches
	st.watches = make(map[int32]*watchSub)
	st.mu.Unlock()
	if conn != nil {
		if src, ok := conn.Driver().(core.EventSource); ok {
			for _, subID := range callbacks {
				src.EventBus().Unsubscribe(subID)
			}
			for _, ws := range watches {
				src.EventBus().Unsubscribe(ws.busID)
			}
		}
		for _, ws := range watches {
			ws.sub.Close()
		}
		conn.Close() //nolint:errcheck
	}
}

func (p *RemoteProgram) state(c *Client) *remoteState {
	return c.ProgState(rpc.ProgramRemote, func() interface{} {
		return &remoteState{
			callbacks: make(map[int32]int),
			watches:   make(map[int32]*watchSub),
		}
	}).(*remoteState)
}

// conn returns the client's open driver connection.
func (p *RemoteProgram) conn(c *Client) (*core.Connect, error) {
	st := p.state(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.conn == nil {
		return nil, core.Errorf(core.ErrNoConnect, "no connection open; call ConnectOpen first")
	}
	return st.conn, nil
}

// Dispatch implements Program.
func (p *RemoteProgram) Dispatch(c *Client, proc uint32, payload []byte) ([]byte, error) {
	switch proc {
	case wire.ProcAuthList:
		return marshal(&wire.AuthListReply{Mechanisms: p.mechanisms()})
	case wire.ProcAuthSASLStart:
		return p.saslStart(c, payload)
	case wire.ProcConnectOpen:
		return p.connectOpen(c, payload)
	case wire.ProcConnectClose:
		p.ClientClosed(c)
		return marshal(&struct{}{})
	}
	conn, err := p.conn(c)
	if err != nil {
		return nil, err
	}
	switch proc {
	case wire.ProcGetType:
		t, err := conn.Type()
		return stringReply(t, err)
	case wire.ProcGetVersion:
		v, err := conn.Version()
		return stringReply(v, err)
	case wire.ProcGetHostname:
		h, err := conn.Hostname()
		return stringReply(h, err)
	case wire.ProcGetCapabilities:
		x, err := conn.CapabilitiesXML()
		return stringReply(x, err)
	case wire.ProcNodeGetInfo:
		ni, err := conn.NodeInfo()
		if err != nil {
			return nil, err
		}
		reply := nodeInfoToWire(ni)
		return marshal(&reply)
	case wire.ProcDomainList:
		var args wire.DomainListArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		names, err := conn.Driver().ListDomains(core.ListFlags(args.Flags))
		if err != nil {
			return nil, err
		}
		return marshal(&wire.NameListReply{Names: names})
	case wire.ProcDomainLookupByName:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		meta, err := conn.Driver().LookupDomain(args.Name)
		return metaReply(meta, err)
	case wire.ProcDomainLookupByUUID:
		var args wire.UUIDArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		meta, err := conn.Driver().LookupDomainByUUID(args.UUID)
		return metaReply(meta, err)
	case wire.ProcDomainDefine:
		var args wire.XMLArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		meta, err := conn.Driver().DefineDomain(args.XML)
		return metaReply(meta, err)
	case wire.ProcDomainUndefine:
		return p.nameOp(payload, conn.Driver().UndefineDomain)
	case wire.ProcDomainCreate:
		return p.nameOp(payload, conn.Driver().CreateDomain)
	case wire.ProcDomainDestroy:
		return p.nameOp(payload, conn.Driver().DestroyDomain)
	case wire.ProcDomainShutdown:
		return p.nameOp(payload, conn.Driver().ShutdownDomain)
	case wire.ProcDomainReboot:
		return p.nameOp(payload, conn.Driver().RebootDomain)
	case wire.ProcDomainSuspend:
		return p.nameOp(payload, conn.Driver().SuspendDomain)
	case wire.ProcDomainResume:
		return p.nameOp(payload, conn.Driver().ResumeDomain)
	case wire.ProcDomainGetInfo:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		info, err := conn.Driver().DomainInfo(args.Name)
		if err != nil {
			return nil, err
		}
		return marshal(&wire.DomainInfoReply{
			State: uint32(info.State), MaxMemKiB: info.MaxMemKiB,
			MemKiB: info.MemKiB, VCPUs: uint32(info.VCPUs), CPUTimeNs: info.CPUTimeNs,
		})
	case wire.ProcDomainGetStats:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		st, err := conn.Driver().DomainStats(args.Name)
		if err != nil {
			return nil, err
		}
		return marshal(&wire.DomainStatsReply{
			State: uint32(st.State), CPUTimeNs: st.CPUTimeNs, MemKiB: st.MemKiB,
			MaxMemKiB: st.MaxMemKiB, VCPUs: uint32(st.VCPUs),
			RdBytes: st.RdBytes, WrBytes: st.WrBytes, RdReqs: st.RdReqs, WrReqs: st.WrReqs,
			RxBytes: st.RxBytes, TxBytes: st.TxBytes, RxPkts: st.RxPkts, TxPkts: st.TxPkts,
			DirtyPages: st.DirtyPages,
		})
	case wire.ProcDomainGetXML:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		x, err := conn.Driver().DomainXML(args.Name)
		return stringReply(x, err)
	case wire.ProcDomainSetMemory:
		var args wire.SetMemoryArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		return voidReply(conn.Driver().SetDomainMemory(args.Name, args.MemKiB))
	case wire.ProcDomainSetVCPUs:
		var args wire.SetVCPUsArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		return voidReply(conn.Driver().SetDomainVCPUs(args.Name, int(args.VCPUs)))
	case wire.ProcNetworkList:
		names, err := conn.ListNetworks()
		if err != nil {
			return nil, err
		}
		return marshal(&wire.NameListReply{Names: names})
	case wire.ProcNetworkDefine:
		var args wire.XMLArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		return voidReply(conn.DefineNetwork(args.XML))
	case wire.ProcNetworkUndefine:
		return p.nameOp(payload, conn.UndefineNetwork)
	case wire.ProcNetworkStart:
		return p.nameOp(payload, conn.StartNetwork)
	case wire.ProcNetworkStop:
		return p.nameOp(payload, conn.StopNetwork)
	case wire.ProcNetworkGetXML:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		x, err := conn.NetworkXML(args.Name)
		return stringReply(x, err)
	case wire.ProcNetworkIsActive:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		active, err := conn.NetworkIsActive(args.Name)
		if err != nil {
			return nil, err
		}
		return marshal(&wire.BoolReply{Value: active})
	case wire.ProcNetworkDHCPLeases:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		leases, err := conn.NetworkDHCPLeases(args.Name)
		if err != nil {
			return nil, err
		}
		out := wire.LeasesReply{Leases: make([]wire.DHCPLease, len(leases))}
		for i, l := range leases {
			out.Leases[i] = wire.DHCPLease{MAC: l.MAC, IP: l.IP, Hostname: l.Hostname}
		}
		return marshal(&out)
	case wire.ProcPoolList:
		names, err := conn.ListStoragePools()
		if err != nil {
			return nil, err
		}
		return marshal(&wire.NameListReply{Names: names})
	case wire.ProcPoolDefine:
		var args wire.XMLArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		return voidReply(conn.DefineStoragePool(args.XML))
	case wire.ProcPoolUndefine:
		return p.nameOp(payload, conn.UndefineStoragePool)
	case wire.ProcPoolStart:
		return p.nameOp(payload, conn.StartStoragePool)
	case wire.ProcPoolStop:
		return p.nameOp(payload, conn.StopStoragePool)
	case wire.ProcPoolGetXML:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		x, err := conn.StoragePoolXML(args.Name)
		return stringReply(x, err)
	case wire.ProcPoolGetInfo:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		info, err := conn.StoragePoolInfo(args.Name)
		if err != nil {
			return nil, err
		}
		return marshal(&wire.PoolInfoReply{
			Active: info.Active, CapacityKiB: info.CapacityKiB,
			AllocationKiB: info.AllocationKiB, AvailableKiB: info.AvailableKiB,
		})
	case wire.ProcVolList:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		names, err := conn.ListVolumes(args.Name)
		if err != nil {
			return nil, err
		}
		return marshal(&wire.NameListReply{Names: names})
	case wire.ProcVolCreate:
		var args wire.VolCreateArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		return voidReply(conn.CreateVolume(args.Pool, args.XML))
	case wire.ProcVolDelete:
		var args wire.VolArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		return voidReply(conn.DeleteVolume(args.Pool, args.Name))
	case wire.ProcVolGetXML:
		var args wire.VolArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		x, err := conn.VolumeXML(args.Pool, args.Name)
		return stringReply(x, err)
	case wire.ProcEventRegister:
		return p.eventRegister(c, payload)
	case wire.ProcEventDeregister:
		return p.eventDeregister(c, payload)
	case wire.ProcEventSubscribe:
		return p.eventSubscribe(c, payload)
	case wire.ProcEventUnsubscribe:
		return p.eventUnsubscribe(c, payload)
	case wire.ProcSnapshotCreate:
		var args wire.SnapshotCreateArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ss, err := snapshotDrv(conn)
		if err != nil {
			return nil, err
		}
		name, err := ss.CreateSnapshot(args.Domain, args.XML)
		return stringReply(name, err)
	case wire.ProcSnapshotList:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ss, err := snapshotDrv(conn)
		if err != nil {
			return nil, err
		}
		names, err := ss.ListSnapshots(args.Name)
		if err != nil {
			return nil, err
		}
		return marshal(&wire.NameListReply{Names: names})
	case wire.ProcSnapshotGetXML:
		var args wire.SnapshotArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ss, err := snapshotDrv(conn)
		if err != nil {
			return nil, err
		}
		x, err := ss.SnapshotXML(args.Domain, args.Name)
		return stringReply(x, err)
	case wire.ProcSnapshotRevert:
		var args wire.SnapshotArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ss, err := snapshotDrv(conn)
		if err != nil {
			return nil, err
		}
		return voidReply(ss.RevertSnapshot(args.Domain, args.Name))
	case wire.ProcSnapshotDelete:
		var args wire.SnapshotArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ss, err := snapshotDrv(conn)
		if err != nil {
			return nil, err
		}
		return voidReply(ss.DeleteSnapshot(args.Domain, args.Name))
	case wire.ProcManagedSave:
		ms, err := managedSaveDrv(conn)
		if err != nil {
			return nil, err
		}
		return p.nameOp(payload, ms.ManagedSave)
	case wire.ProcHasManagedSave:
		var args wire.NameArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ms, err := managedSaveDrv(conn)
		if err != nil {
			return nil, err
		}
		has, err := ms.HasManagedSave(args.Name)
		if err != nil {
			return nil, err
		}
		return marshal(&wire.BoolReply{Value: has})
	case wire.ProcManagedSaveRemove:
		ms, err := managedSaveDrv(conn)
		if err != nil {
			return nil, err
		}
		return p.nameOp(payload, ms.ManagedSaveRemove)
	case wire.ProcDeviceAttach, wire.ProcDeviceDetach:
		var args wire.DeviceArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ds, ok := conn.Driver().(core.DeviceSupport)
		if !ok {
			return nil, core.Errorf(core.ErrNoSupport, "driver does not support device hot-plug")
		}
		if proc == wire.ProcDeviceAttach {
			return voidReply(ds.AttachDevice(args.Domain, args.XML))
		}
		return voidReply(ds.DetachDevice(args.Domain, args.XML))
	case wire.ProcDomainListInfo:
		var args wire.DomainListInfoArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		rows, err := core.ListDomainInfo(conn.Driver(), core.ListFlags(args.Flags), args.Names)
		if err != nil {
			return nil, err
		}
		// Core rows encode in the wire.DomainInfoRow layout (the field
		// widths are pinned by TestDomainInfoRowMatchesCore), so bulk
		// replies skip the per-row conversion copy.
		return marshal(&struct{ Domains []core.NamedDomainInfo }{rows})
	case wire.ProcNodeInventory:
		// The inventory is pooled across requests: a driver supporting
		// BulkMonitorInto rebuilds the rows inside the retained slice,
		// so steady-state monitoring traffic allocates almost nothing
		// daemon-side. The payload is fully encoded before the Put.
		inv := invPool.Get().(*core.NodeInventory)
		defer invPool.Put(inv)
		if err := core.CollectInventoryInto(conn.Driver(), inv); err != nil {
			return nil, err
		}
		return marshal(&struct {
			Node    wire.NodeInfoReply
			Domains []core.NamedDomainInfo
		}{nodeInfoToWire(inv.Node), inv.Domains})
	case wire.ProcMigratePrepare:
		var args wire.MigratePrepareArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ms, err := migrationSink(conn)
		if err != nil {
			return nil, err
		}
		cookie, err := ms.MigratePrepare(args.Domain, args.TotalPages, int(args.Streams))
		if err != nil {
			return nil, err
		}
		return marshal(&wire.MigratePrepareReply{Cookie: cookie})
	case wire.ProcMigratePages, wire.ProcMigratePagePull:
		var args wire.MigratePagesArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ms, err := migrationSink(conn)
		if err != nil {
			return nil, err
		}
		return voidReply(ms.MigratePages(&core.MigrateChunk{
			Cookie:   args.Cookie,
			Stream:   int(args.Stream),
			Round:    int(args.Round),
			Pages:    args.Pages,
			Priority: proc == wire.ProcMigratePagePull,
			Data:     args.Data,
		}))
	case wire.ProcMigrateFinish:
		var args wire.MigrateFinishArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		ms, err := migrationSink(conn)
		if err != nil {
			return nil, err
		}
		return voidReply(ms.MigrateFinish(args.Cookie, args.Commit))
	default:
		return nil, core.Errorf(core.ErrNoSupport, "unknown procedure %d", proc)
	}
}

func snapshotDrv(conn *core.Connect) (core.SnapshotSupport, error) {
	ss, ok := conn.Driver().(core.SnapshotSupport)
	if !ok {
		return nil, core.Errorf(core.ErrNoSupport, "driver does not support snapshots")
	}
	return ss, nil
}

func managedSaveDrv(conn *core.Connect) (core.ManagedSaveSupport, error) {
	ms, ok := conn.Driver().(core.ManagedSaveSupport)
	if !ok {
		return nil, core.Errorf(core.ErrNoSupport, "driver does not support managed save")
	}
	return ms, nil
}

func migrationSink(conn *core.Connect) (core.MigrationSink, error) {
	ms, ok := conn.Driver().(core.MigrationSink)
	if !ok {
		return nil, core.Errorf(core.ErrNoSupport, "driver does not support inbound migration")
	}
	return ms, nil
}

// connectOpen opens the server-side driver connection for a client. The
// daemon strips the transport parts of the URI: the hypervisor driver
// itself always runs locally to the daemon.
func (p *RemoteProgram) connectOpen(c *Client, payload []byte) ([]byte, error) {
	var args wire.ConnectOpenArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	u, err := uri.Parse(args.URI)
	if err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	local := *u
	local.Transport = uri.TransportNone
	local.Host = ""
	local.Port = 0
	local.Username = ""
	conn, err := core.Open(local.String())
	if err != nil {
		return nil, err
	}
	st := p.state(c)
	st.mu.Lock()
	if st.conn != nil {
		st.mu.Unlock()
		conn.Close() //nolint:errcheck
		return nil, core.Errorf(core.ErrOperationInvalid, "connection already open")
	}
	st.conn = conn
	st.mu.Unlock()
	return marshal(&struct{}{})
}

func (p *RemoteProgram) eventRegister(c *Client, payload []byte) ([]byte, error) {
	var args wire.EventRegisterArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	conn, err := p.conn(c)
	if err != nil {
		return nil, err
	}
	src, ok := conn.Driver().(core.EventSource)
	if !ok {
		return nil, core.Errorf(core.ErrNoSupport, "driver does not deliver events")
	}
	st := p.state(c)
	st.mu.Lock()
	st.nextCB++
	cbID := st.nextCB
	st.mu.Unlock()
	subID := src.EventBus().Subscribe(args.Domain, nil, func(ev events.Event) {
		payload, err := rpc.Marshal(&wire.LifecycleEvent{
			CallbackID: cbID,
			Type:       uint32(ev.Type),
			Domain:     ev.Domain,
			UUID:       ev.UUID,
			Detail:     ev.Detail,
			Seq:        ev.Seq,
		})
		if err != nil {
			return
		}
		c.Send(rpc.Header{ //nolint:errcheck // client may be gone
			Program:   rpc.ProgramRemote,
			Version:   rpc.ProtocolVersion,
			Procedure: wire.ProcEventLifecycle,
			Type:      uint32(rpc.TypeEvent),
		}, payload)
	})
	st.mu.Lock()
	// A teardown that raced the subscribe must not leak it.
	if st.conn == nil {
		st.mu.Unlock()
		src.EventBus().Unsubscribe(subID)
		return nil, core.Errorf(core.ErrNoConnect, "connection closed during registration")
	}
	st.callbacks[cbID] = subID
	st.mu.Unlock()
	return marshal(&wire.EventRegisterReply{CallbackID: cbID})
}

func (p *RemoteProgram) eventDeregister(c *Client, payload []byte) ([]byte, error) {
	var args wire.EventDeregisterArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	conn, err := p.conn(c)
	if err != nil {
		return nil, err
	}
	st := p.state(c)
	st.mu.Lock()
	subID, ok := st.callbacks[args.CallbackID]
	if ok {
		delete(st.callbacks, args.CallbackID)
	}
	st.mu.Unlock()
	if !ok {
		return nil, core.Errorf(core.ErrInvalidArg, "no callback %d", args.CallbackID)
	}
	if src, ok := conn.Driver().(core.EventSource); ok {
		src.EventBus().Unsubscribe(subID)
	}
	return marshal(&struct{}{})
}

// clientSink pushes watch frames onto the client's connection over the
// pooled marshal fast path. It runs on the subscriber's drainer
// goroutine, never on the bus emitter.
type clientSink struct{ c *Client }

// SendEvent implements watch.Sink.
func (s clientSink) SendEvent(ev *wire.WatchEvent) error {
	return s.c.SendMarshal(rpc.Header{
		Program:   rpc.ProgramRemote,
		Version:   rpc.ProtocolVersion,
		Procedure: wire.ProcEventWatch,
		Type:      uint32(rpc.TypeEvent),
	}, ev)
}

// eventSubscribe opens a watch stream: a bounded subscriber queue fed by
// the driver's event bus and drained onto the connection as sequenced
// ProcEventWatch frames.
func (p *RemoteProgram) eventSubscribe(c *Client, payload []byte) ([]byte, error) {
	var args wire.EventSubscribeArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	conn, err := p.conn(c)
	if err != nil {
		return nil, err
	}
	src, ok := conn.Driver().(core.EventSource)
	if !ok {
		return nil, core.Errorf(core.ErrNoSupport, "driver does not deliver events")
	}
	depth, window := p.srv.EventStreamConfig()
	st := p.state(c)
	st.mu.Lock()
	st.nextSub++
	subID := st.nextSub
	st.mu.Unlock()
	sub := watch.New(watch.Config{
		ID:       subID,
		Depth:    depth,
		Coalesce: window,
		Sink:     clientSink{c},
	})
	var types []events.Type
	for _, t := range args.Types {
		types = append(types, events.Type(t))
	}
	busID := src.EventBus().Subscribe(args.Domain, types, sub.Enqueue)
	st.mu.Lock()
	// A teardown that raced the subscribe must not leak the stream.
	if st.conn == nil {
		st.mu.Unlock()
		src.EventBus().Unsubscribe(busID)
		sub.Close()
		return nil, core.Errorf(core.ErrNoConnect, "connection closed during subscription")
	}
	st.watches[subID] = &watchSub{sub: sub, busID: busID}
	st.mu.Unlock()
	return marshal(&wire.EventSubscribeReply{
		SubscriptionID: subID,
		QueueDepth:     uint32(sub.Depth()),
		CoalesceMs:     uint32(sub.Coalesce() / time.Millisecond),
	})
}

func (p *RemoteProgram) eventUnsubscribe(c *Client, payload []byte) ([]byte, error) {
	var args wire.EventUnsubscribeArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	conn, err := p.conn(c)
	if err != nil {
		return nil, err
	}
	st := p.state(c)
	st.mu.Lock()
	ws, ok := st.watches[args.SubscriptionID]
	if ok {
		delete(st.watches, args.SubscriptionID)
	}
	st.mu.Unlock()
	if !ok {
		return nil, core.Errorf(core.ErrInvalidArg, "no subscription %d", args.SubscriptionID)
	}
	if src, ok := conn.Driver().(core.EventSource); ok {
		src.EventBus().Unsubscribe(ws.busID)
	}
	ws.sub.Close()
	return marshal(&struct{}{})
}

func (p *RemoteProgram) mechanisms() []string {
	p.srv.mu.Lock()
	defer p.srv.mu.Unlock()
	if len(p.srv.creds) == 0 {
		return nil
	}
	return []string{"SIM-PLAIN"}
}

// saslStart validates a SIM-PLAIN exchange: data is "user\x00password".
func (p *RemoteProgram) saslStart(c *Client, payload []byte) ([]byte, error) {
	var args wire.SASLStartArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	if args.Mechanism != "SIM-PLAIN" {
		return nil, core.Errorf(core.ErrAuthFailed, "unsupported mechanism %q", args.Mechanism)
	}
	parts := bytes.SplitN(args.Data, []byte{0}, 2)
	if len(parts) != 2 {
		return nil, core.Errorf(core.ErrAuthFailed, "malformed SIM-PLAIN data")
	}
	user, pass := string(parts[0]), parts[1]
	p.srv.mu.Lock()
	want, ok := p.srv.creds[user]
	p.srv.mu.Unlock()
	if !ok || subtle.ConstantTimeCompare([]byte(want), pass) != 1 {
		return nil, core.Errorf(core.ErrAuthFailed, "invalid credentials for %q", user)
	}
	c.setAuthenticated(user)
	return marshal(&wire.SASLStartReply{Complete: true})
}

func (p *RemoteProgram) nameOp(payload []byte, op func(string) error) ([]byte, error) {
	var args wire.NameArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	return voidReply(op(args.Name))
}

// nodeInfoToWire converts the core node summary to its wire form.
func nodeInfoToWire(ni core.NodeInfo) wire.NodeInfoReply {
	return wire.NodeInfoReply{
		Model: ni.Model, MemoryKiB: ni.MemoryKiB, CPUs: uint32(ni.CPUs),
		MHz: uint32(ni.MHz), NUMANodes: uint32(ni.NUMANodes),
		Sockets: uint32(ni.Sockets), Cores: uint32(ni.Cores), Threads: uint32(ni.Threads),
	}
}

func marshal(v interface{}) ([]byte, error) {
	out, err := rpc.AppendMarshal(getReplyBuf(), v)
	if err != nil {
		putReplyBuf(out)
		return nil, core.Errorf(core.ErrInternal, "marshal reply: %v", err)
	}
	return out, nil
}

func stringReply(s string, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	return marshal(&wire.StringReply{Value: s})
}

func voidReply(err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	return marshal(&struct{}{})
}

func metaReply(meta core.DomainMeta, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	return marshal(&wire.DomainMetaReply{Meta: wire.DomainMeta{
		Name: meta.Name, UUID: meta.UUID, ID: int32(meta.ID),
	}})
}

func badArgs(err error) error {
	return core.Errorf(core.ErrInvalidArg, "decode arguments: %v", err)
}
