package daemon

import (
	"fmt"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"repro/internal/rpc"
)

// Transport identifies how a client is connected.
type Transport int

// Client transports.
const (
	TransportUnix Transport = iota
	TransportTCP
	TransportTLS
	TransportMem // in-process memnet endpoint (scale harness)
)

var transportNames = map[Transport]string{
	TransportUnix: "unix",
	TransportTCP:  "tcp",
	TransportTLS:  "tls",
	TransportMem:  "mem",
}

func (t Transport) String() string {
	if s, ok := transportNames[t]; ok {
		return s
	}
	return fmt.Sprintf("transport(%d)", int(t))
}

// Identity is everything the daemon knows about a connected client.
// Fields are transport-dependent: unix clients carry process
// credentials, remote clients carry the socket address, authenticated
// clients carry the SASL username.
type Identity struct {
	Transport Transport
	SockAddr  string
	UID       int
	GID       int
	PID       int
	Username  string
	SASLUser  string
	ReadOnly  bool
}

// Client is the server-side representation of one connection.
type Client struct {
	id        uint64
	server    *Server
	conn      *rpc.Conn
	identity  Identity
	connected time.Time

	mu            sync.Mutex
	closed        bool
	authenticated bool
	progState     map[uint32]interface{}
}

// ID returns the client's per-server unique id.
func (c *Client) ID() uint64 { return c.id }

// Identity returns the client's identity snapshot.
func (c *Client) Identity() Identity {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.identity
}

// ConnectedAt returns when the connection was accepted.
func (c *Client) ConnectedAt() time.Time { return c.connected }

// Transport returns how the client is connected.
func (c *Client) Transport() Transport { return c.identity.Transport }

// Authenticated reports whether the client passed authentication (always
// true on services without an auth requirement).
func (c *Client) Authenticated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.authenticated
}

// authState returns the auth flag and SASL identity in one lock
// acquisition, for the per-call dispatch path where auth gating and QoS
// class resolution both need them.
func (c *Client) authState() (bool, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.authenticated, c.identity.SASLUser
}

func (c *Client) setAuthenticated(saslUser string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.authenticated = true
	c.identity.SASLUser = saslUser
}

// ProgState returns per-program connection state, creating it with init
// on first use. Programs use it to keep e.g. the server-side driver
// connection.
func (c *Client) ProgState(program uint32, init func() interface{}) interface{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.progState == nil {
		c.progState = make(map[uint32]interface{})
	}
	st, ok := c.progState[program]
	if !ok && init != nil {
		st = init()
		c.progState[program] = st
	}
	return st
}

// Send transmits an unsolicited message (event) to the client.
func (c *Client) Send(h rpc.Header, payload []byte) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("daemon: client %d is closed", c.id)
	}
	c.mu.Unlock()
	return c.conn.WriteMessage(h, payload)
}

// SendMarshal transmits an unsolicited message, XDR-encoding args
// directly into the pooled frame buffer — the watch-stream event path
// rides the same zero-copy writer as replies.
func (c *Client) SendMarshal(h rpc.Header, args interface{}) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("daemon: client %d is closed", c.id)
	}
	c.mu.Unlock()
	return c.conn.WriteMarshal(h, args)
}

// Close forcefully terminates the connection. The read loop notices and
// runs the full cleanup path, so Close is safe from any goroutine — this
// is the admin interface's client-disconnect primitive.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// identityFor derives the identity of a freshly accepted connection.
func identityFor(nc net.Conn, transport Transport) Identity {
	id := Identity{Transport: transport, UID: -1, GID: -1, PID: -1}
	switch transport {
	case TransportUnix:
		if uc, ok := nc.(*net.UnixConn); ok {
			if cred, err := peerCred(uc); err == nil {
				id.UID = int(cred.Uid)
				id.GID = int(cred.Gid)
				id.PID = int(cred.Pid)
			}
		}
		if id.PID == -1 {
			// Fallback when credentials are unavailable: the connection
			// is local, so the peer shares our process identity space.
			id.UID = os.Getuid()
			id.GID = os.Getgid()
			id.PID = os.Getpid()
		}
		id.Username = lookupUser(id.UID)
	default:
		if addr := nc.RemoteAddr(); addr != nil {
			id.SockAddr = addr.String()
		}
	}
	return id
}

// peerCred retrieves SO_PEERCRED from a unix socket.
func peerCred(uc *net.UnixConn) (*syscall.Ucred, error) {
	raw, err := uc.SyscallConn()
	if err != nil {
		return nil, err
	}
	var cred *syscall.Ucred
	var credErr error
	if err := raw.Control(func(fd uintptr) {
		cred, credErr = syscall.GetsockoptUcred(int(fd), syscall.SOL_SOCKET, syscall.SO_PEERCRED)
	}); err != nil {
		return nil, err
	}
	return cred, credErr
}

// lookupUser maps a uid to a name, falling back to the numeric form.
func lookupUser(uid int) string {
	if uid == os.Getuid() {
		if u := os.Getenv("USER"); u != "" {
			return u
		}
	}
	return fmt.Sprintf("uid-%d", uid)
}
