// Package daemon implements the management daemon: servers accepting
// client connections over stream transports, per-server workerpools
// executing decoded requests, the dispatch machinery routing procedures
// to protocol programs, and runtime-adjustable limits — the component
// that makes remote, non-intrusive management possible for hypervisors
// without their own remote interface.
package daemon

import (
	"fmt"
	"sync"
	"time"
)

// Job is one unit of work for a workerpool.
type Job func()

// ShedJob is a QoS-managed job. The pool invokes it exactly once: with
// shed=false to run the call normally, or shed=true when admission
// control evicted it — either at submit time to make room under the
// shed watermark, or at dequeue when it out-waited its class's
// max_queue_wait bound. Both ways it receives the time the call spent
// queued.
type ShedJob func(shed bool, wait time.Duration)

// queuedJob is a job with its enqueue time, so dequeuing can report how
// long the job sat in the queue. Exactly one of job/sjob is set; a slot
// with both nil is the tombstone of a watermark-shed entry and is
// skipped by workers.
type queuedJob struct {
	job     Job
	sjob    ShedJob
	at      time.Time
	maxWait time.Duration // shed when queued longer than this; 0 = never
	prio    int8          // shed priority; lower sheds first
}

// PoolParams are the tunable attributes of a workerpool. NWorkers,
// FreeWorkers and JobQueueDepth are read-only.
type PoolParams struct {
	MinWorkers    int
	MaxWorkers    int
	PrioWorkers   int
	NWorkers      int
	FreeWorkers   int
	JobQueueDepth int
}

// Workerpool executes jobs on a dynamically sized set of ordinary
// workers plus a constant set of priority workers. Ordinary workers take
// any job; priority workers only take priority jobs, guaranteeing that
// critical operations (which never depend on a hypervisor answering)
// always find a worker even when every ordinary worker is wedged.
type Workerpool struct {
	mu   sync.Mutex
	cond *sync.Cond

	// Both queues are head-index rings: workers consume from queue[qhead]
	// and Submit appends at the tail, so the backing array is reused
	// instead of being re-allocated every time the slice slides to empty.
	queue     []queuedJob // ordinary jobs
	qhead     int
	prioQueue []queuedJob // priority jobs
	prioHead  int
	waitObs   func(wait time.Duration, priority bool)

	minWorkers    int
	maxWorkers    int
	prioTarget    int
	shedWatermark int // ordinary-queue depth triggering eviction; 0 = off
	nWorkers      int // live ordinary workers
	nPrio         int // live priority workers
	busy          int // ordinary workers running a job
	prioBusy      int
	quitting      bool
	jobsDone      uint64
	prioDone      uint64
	spawnsTotal   uint64
	shedTotal     uint64
}

// NewWorkerpool creates and starts a pool. min workers are spawned
// immediately; the pool grows on demand up to max.
func NewWorkerpool(min, max, prio int) (*Workerpool, error) {
	if min < 0 || prio < 0 {
		return nil, fmt.Errorf("daemon: workerpool limits must be non-negative")
	}
	if max < 1 {
		return nil, fmt.Errorf("daemon: workerpool needs at least one ordinary worker")
	}
	if min > max {
		return nil, fmt.Errorf("daemon: minWorkers %d exceeds maxWorkers %d", min, max)
	}
	p := &Workerpool{minWorkers: min, maxWorkers: max, prioTarget: prio}
	p.cond = sync.NewCond(&p.mu)
	p.mu.Lock()
	for i := 0; i < min; i++ {
		p.spawnOrdinaryLocked()
	}
	for i := 0; i < prio; i++ {
		p.spawnPriorityLocked()
	}
	p.mu.Unlock()
	return p, nil
}

// ordLen / prioLen are the live queue depths under the head-index
// scheme.
func (p *Workerpool) ordLen() int  { return len(p.queue) - p.qhead }
func (p *Workerpool) prioLen() int { return len(p.prioQueue) - p.prioHead }

// popOrdinaryLocked removes and returns the oldest ordinary job. The
// consumed slot is zeroed so the backing array does not pin the job
// closure, and the slice is rewound to [:0] once drained so appends
// reuse its capacity.
func (p *Workerpool) popOrdinaryLocked() queuedJob {
	qj := p.queue[p.qhead]
	p.queue[p.qhead] = queuedJob{}
	p.qhead++
	if p.qhead == len(p.queue) {
		p.queue = p.queue[:0]
		p.qhead = 0
	}
	return qj
}

func (p *Workerpool) popPriorityLocked() queuedJob {
	qj := p.prioQueue[p.prioHead]
	p.prioQueue[p.prioHead] = queuedJob{}
	p.prioHead++
	if p.prioHead == len(p.prioQueue) {
		p.prioQueue = p.prioQueue[:0]
		p.prioHead = 0
	}
	return qj
}

func (p *Workerpool) spawnOrdinaryLocked() {
	p.nWorkers++
	p.spawnsTotal++
	go p.ordinaryWorker()
}

func (p *Workerpool) spawnPriorityLocked() {
	p.nPrio++
	p.spawnsTotal++
	go p.priorityWorker()
}

// quitHelperLocked reports whether an ordinary worker should terminate:
// the pool is shutting down, or the live count exceeds the (possibly
// lowered) maximum and we are above the minimum.
func (p *Workerpool) quitHelperLocked() bool {
	if p.quitting {
		return true
	}
	return p.nWorkers > p.maxWorkers && p.nWorkers > p.minWorkers
}

func (p *Workerpool) ordinaryWorker() {
	p.mu.Lock()
	for {
		if p.quitHelperLocked() {
			p.nWorkers--
			p.mu.Unlock()
			return
		}
		var qj queuedJob
		var priority bool
		switch {
		case p.prioLen() > 0:
			qj = p.popPriorityLocked()
			priority = true
		case p.ordLen() > 0:
			qj = p.popOrdinaryLocked()
		default:
			p.cond.Wait()
			continue
		}
		if qj.job == nil && qj.sjob == nil {
			continue // tombstone of a watermark-shed entry
		}
		p.busy++
		obs := p.waitObs
		p.mu.Unlock()
		shed := runQueued(qj, priority, obs)
		p.mu.Lock()
		p.busy--
		p.jobsDone++
		if shed {
			p.shedTotal++
		}
	}
}

// runQueued observes the job's queue wait and runs it. A QoS-managed
// job that out-waited its class bound runs in shed mode; its wait is
// observed all the same, so shed calls still appear in the queue-wait
// histogram rather than vanishing from it.
func runQueued(qj queuedJob, priority bool, obs func(time.Duration, bool)) bool {
	wait := time.Since(qj.at)
	if obs != nil {
		obs(wait, priority)
	}
	if qj.sjob != nil {
		shed := qj.maxWait > 0 && wait > qj.maxWait
		qj.sjob(shed, wait)
		return shed
	}
	qj.job()
	return false
}

func (p *Workerpool) priorityWorker() {
	p.mu.Lock()
	for {
		if p.quitting || p.nPrio > p.prioTarget {
			p.nPrio--
			p.mu.Unlock()
			return
		}
		if p.prioLen() == 0 {
			p.cond.Wait()
			continue
		}
		qj := p.popPriorityLocked()
		if qj.job == nil && qj.sjob == nil {
			continue
		}
		p.prioBusy++
		obs := p.waitObs
		p.mu.Unlock()
		shed := runQueued(qj, true, obs)
		p.mu.Lock()
		p.prioBusy--
		p.prioDone++
		if shed {
			p.shedTotal++
		}
	}
}

// Submit enqueues a job. Priority jobs may be taken by priority workers;
// ordinary jobs only by ordinary workers. The pool grows by one ordinary
// worker when a job arrives, every ordinary worker is occupied, and the
// maximum has not been reached.
func (p *Workerpool) Submit(job Job, priority bool) error {
	if job == nil {
		return fmt.Errorf("daemon: nil job")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.quitting {
		return fmt.Errorf("daemon: workerpool is shut down")
	}
	if priority {
		p.prioQueue = append(p.prioQueue, queuedJob{job: job, at: time.Now()})
	} else {
		p.queue = append(p.queue, queuedJob{job: job, at: time.Now()})
	}
	freeOrdinary := p.nWorkers - p.busy
	if freeOrdinary <= p.ordLen()+p.prioLen()-1 && p.nWorkers < p.maxWorkers {
		p.spawnOrdinaryLocked()
	}
	p.cond.Broadcast()
	return nil
}

// SubmitQoS enqueues a QoS-managed job carrying its class's shed
// priority and queue-wait bound. When the ordinary queue sits at or
// above the shed watermark, the lowest-priority sheddable queued entry
// below the arriving call's priority is evicted to make room — its
// ShedJob runs immediately with shed=true and its recorded queue wait
// (so the wait histogram sees shed calls too). If the arriving call is
// itself the lowest priority, it is shed instead of growing the queue.
// Priority submissions bypass the watermark: control-plane classes must
// stay admittable under exactly the overload that triggers shedding.
func (p *Workerpool) SubmitQoS(job ShedJob, priority bool, shedPrio int8, maxWait time.Duration) error {
	if job == nil {
		return fmt.Errorf("daemon: nil job")
	}
	var victim queuedJob
	p.mu.Lock()
	if p.quitting {
		p.mu.Unlock()
		return fmt.Errorf("daemon: workerpool is shut down")
	}
	obs := p.waitObs
	if !priority && p.shedWatermark > 0 && p.ordLen() >= p.shedWatermark {
		if i, ok := p.findVictimLocked(shedPrio); ok {
			victim = p.queue[i]
			p.queue[i] = queuedJob{} // tombstone; workers skip it
			p.shedTotal++
		} else {
			p.shedTotal++
			p.mu.Unlock()
			if obs != nil {
				obs(0, priority)
			}
			job(true, 0)
			return nil
		}
	}
	qj := queuedJob{sjob: job, at: time.Now(), maxWait: maxWait, prio: shedPrio}
	if priority {
		p.prioQueue = append(p.prioQueue, qj)
	} else {
		p.queue = append(p.queue, qj)
	}
	freeOrdinary := p.nWorkers - p.busy
	if freeOrdinary <= p.ordLen()+p.prioLen()-1 && p.nWorkers < p.maxWorkers {
		p.spawnOrdinaryLocked()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if victim.sjob != nil {
		wait := time.Since(victim.at)
		if obs != nil {
			obs(wait, false)
		}
		victim.sjob(true, wait)
	}
	return nil
}

// findVictimLocked picks the ordinary-queue entry to evict: the
// sheddable (QoS-managed) queued call with the lowest shed priority
// strictly below the arriving call's. Plain Submit entries and
// tombstones are never victims.
func (p *Workerpool) findVictimLocked(below int8) (int, bool) {
	best, found := 0, false
	for i := p.qhead; i < len(p.queue); i++ {
		qj := &p.queue[i]
		if qj.sjob == nil || qj.prio >= below {
			continue
		}
		if !found || qj.prio < p.queue[best].prio {
			best, found = i, true
		}
	}
	return best, found
}

// SetShedWatermark sets the ordinary-queue depth at which SubmitQoS
// starts evicting lowest-priority queued work; 0 disables eviction.
func (p *Workerpool) SetShedWatermark(depth int) {
	if depth < 0 {
		depth = 0
	}
	p.mu.Lock()
	p.shedWatermark = depth
	p.mu.Unlock()
}

// Params returns a snapshot of the pool's attributes.
func (p *Workerpool) Params() PoolParams {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolParams{
		MinWorkers:    p.minWorkers,
		MaxWorkers:    p.maxWorkers,
		PrioWorkers:   p.prioTarget,
		NWorkers:      p.nWorkers,
		FreeWorkers:   p.nWorkers - p.busy,
		JobQueueDepth: p.ordLen() + p.prioLen(),
	}
}

// SetParams adjusts the tunable attributes. Lowering MaxWorkers makes
// surplus idle workers exit as they re-check the limits; busy workers
// finish their job first. PrioWorkers adjusts the constant priority set
// in either direction.
func (p *Workerpool) SetParams(min, max, prio int) error {
	if min < 0 || prio < 0 {
		return fmt.Errorf("daemon: workerpool limits must be non-negative")
	}
	if max < 1 {
		return fmt.Errorf("daemon: workerpool needs at least one ordinary worker")
	}
	if min > max {
		return fmt.Errorf("daemon: minWorkers %d exceeds maxWorkers %d", min, max)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.quitting {
		return fmt.Errorf("daemon: workerpool is shut down")
	}
	p.minWorkers, p.maxWorkers = min, max
	for p.nWorkers < p.minWorkers {
		p.spawnOrdinaryLocked()
	}
	for p.nPrio < prio {
		p.spawnPriorityLocked()
	}
	p.prioTarget = prio
	p.cond.Broadcast()
	return nil
}

// PoolStats combines the pool's lifetime counters with its current
// state: queue depths and how many workers are running a job right now.
type PoolStats struct {
	OrdinaryDone uint64 // jobs completed by ordinary workers
	PriorityDone uint64 // jobs completed by priority workers
	Spawns       uint64 // workers ever spawned
	Shed         uint64 // QoS jobs shed (watermark eviction or queue-wait bound)
	QueueLen     int    // ordinary jobs waiting
	PrioQueueLen int    // priority jobs waiting
	Busy         int    // ordinary workers running a job
	PrioBusy     int    // priority workers running a job
}

// Stats reports lifetime counters and current queue/worker occupancy.
func (p *Workerpool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{
		OrdinaryDone: p.jobsDone,
		PriorityDone: p.prioDone,
		Spawns:       p.spawnsTotal,
		Shed:         p.shedTotal,
		QueueLen:     p.ordLen(),
		PrioQueueLen: p.prioLen(),
		Busy:         p.busy,
		PrioBusy:     p.prioBusy,
	}
}

// SetWaitObserver installs a callback invoked once per dequeued job with
// the time the job spent queued. The callback runs on the worker
// goroutine just before the job; it must be cheap. Pass nil to clear.
func (p *Workerpool) SetWaitObserver(fn func(wait time.Duration, priority bool)) {
	p.mu.Lock()
	p.waitObs = fn
	p.mu.Unlock()
}

// Drain waits up to grace for the pool to go quiet: empty queues and no
// worker running a job. It reports whether the pool drained in time. The
// pool keeps accepting jobs while draining — callers wanting a clean
// stop close their listeners first, so no new work arrives.
func (p *Workerpool) Drain(grace time.Duration) bool {
	deadline := time.Now().Add(grace)
	for {
		p.mu.Lock()
		quiet := p.ordLen() == 0 && p.prioLen() == 0 && p.busy == 0 && p.prioBusy == 0
		p.mu.Unlock()
		if quiet {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Shutdown stops accepting jobs and makes all workers exit; queued jobs
// are dropped. It does not wait for running jobs to finish.
func (p *Workerpool) Shutdown() {
	p.mu.Lock()
	p.quitting = true
	p.cond.Broadcast()
	p.mu.Unlock()
}
