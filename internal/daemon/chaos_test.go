package daemon_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/common"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/faultpoint"
	"repro/internal/logging"
)

// Chaos suite: deterministic fault injection against a live daemon.
// Every test arms the global faultpoint registry with a fixed seed and
// disarms it on exit, so runs are reproducible and leak nothing into
// the rest of the package.

func chaosDomainXML(name string) string {
	return fmt.Sprintf(`
<domain type='test'>
  <name>%s</name>
  <memory unit='MiB'>128</memory>
  <vcpu>1</vcpu>
  <os><type arch='x86_64'>hvm</type></os>
</domain>`, name)
}

func chaosNetworkXML(name string) string {
	return fmt.Sprintf(`
<network>
  <name>%s</name>
  <bridge name='br-%s'/>
  <forward mode='nat'/>
</network>`, name, name)
}

func chaosPoolXML(name string) string {
	return fmt.Sprintf(`
<pool type='dir'>
  <name>%s</name>
  <capacity unit='GiB'>10</capacity>
  <target><path>/var/lib/test/%s</path></target>
</pool>`, name, name)
}

// emptyEnvURI connects to the daemon's test driver with an empty
// environment (no canned default objects), so only journaled state is
// visible after a replay.
func emptyEnvURI(sock, extra string) string {
	return "test+unix:///empty?socket=" + escapeSock(sock) + extra
}

func escapeSock(sock string) string {
	out := make([]byte, 0, len(sock)*3)
	for i := 0; i < len(sock); i++ {
		if sock[i] == '/' {
			out = append(out, '%', '2', 'F')
			continue
		}
		out = append(out, sock[i])
	}
	return string(out)
}

// TestChaosKillRecoverState is the crash-safety acceptance test: define
// domains, networks and pools against a state_dir-backed daemon, kill
// the daemon abruptly (no drain, no graceful teardown), bring up a
// fresh daemon over the same journal, and require 100% of the defined
// objects back — including the active markers for started networks and
// pools.
func TestChaosKillRecoverState(t *testing.T) {
	stateRoot := t.TempDir()
	common.SetStateRoot(stateRoot)
	defer common.SetStateRoot("")

	sock, _, d := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(emptyEnvURI(sock, ""))
	if err != nil {
		t.Fatal(err)
	}

	const nDomains = 8
	for i := 0; i < nDomains; i++ {
		dom, err := conn.DefineDomain(chaosDomainXML(fmt.Sprintf("crash%02d", i)))
		if err != nil {
			t.Fatalf("define crash%02d: %v", i, err)
		}
		// Start half of them: the journal's active markers must bring
		// these back up on replay, not merely re-define them.
		if i%2 == 0 {
			if err := dom.Create(); err != nil {
				t.Fatalf("start crash%02d: %v", i, err)
			}
		}
	}
	for _, net := range []string{"neta", "netb"} {
		if err := conn.DefineNetwork(chaosNetworkXML(net)); err != nil {
			t.Fatalf("define network %s: %v", net, err)
		}
	}
	if err := conn.StartNetwork("neta"); err != nil {
		t.Fatal(err)
	}
	for _, pool := range []string{"poola", "poolb"} {
		if err := conn.DefineStoragePool(chaosPoolXML(pool)); err != nil {
			t.Fatalf("define pool %s: %v", pool, err)
		}
	}
	if err := conn.StartStoragePool("poolb"); err != nil {
		t.Fatal(err)
	}

	// Abrupt death: no drain, no reply flush, client sockets torn down.
	d.Kill()
	conn.Close()

	// The journal must exist on disk before any recovery attempt.
	if entries, err := os.ReadDir(filepath.Join(stateRoot, "test", "empty", "domains")); err != nil || len(entries) != nDomains {
		t.Fatalf("journal has %d domain entries (err=%v), want %d", len(entries), err, nDomains)
	}

	// A fresh daemon over the same journal: everything comes back.
	sock2, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn2, err := core.Open(emptyEnvURI(sock2, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()

	doms, err := conn2.ListAllDomains(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(doms) != nDomains {
		t.Fatalf("recovered %d domains, want %d", len(doms), nDomains)
	}
	for i := 0; i < nDomains; i++ {
		name := fmt.Sprintf("crash%02d", i)
		dom, err := conn2.LookupDomain(name)
		if err != nil {
			t.Fatalf("domain %s lost in crash: %v", name, err)
		}
		// The persisted definition carries the original UUID, so the
		// recovered object is the same domain, not a fresh redefine.
		if dom.UUID() == "" {
			t.Fatalf("domain %s recovered without UUID", name)
		}
		st, err := dom.State()
		if err != nil {
			t.Fatalf("state of %s: %v", name, err)
		}
		if wantRunning := i%2 == 0; (st == core.DomainRunning) != wantRunning {
			t.Fatalf("domain %s recovered in state %v, want running=%v", name, st, wantRunning)
		}
	}
	nets, err := conn2.ListNetworks()
	if err != nil || len(nets) != 2 {
		t.Fatalf("recovered networks %v (err=%v), want 2", nets, err)
	}
	if active, err := conn2.NetworkIsActive("neta"); err != nil || !active {
		t.Fatalf("network neta active=%v err=%v, want active after replay", active, err)
	}
	if active, err := conn2.NetworkIsActive("netb"); err != nil || active {
		t.Fatalf("network netb active=%v err=%v, want inactive after replay", active, err)
	}
	pools, err := conn2.ListStoragePools()
	if err != nil || len(pools) != 2 {
		t.Fatalf("recovered pools %v (err=%v), want 2", pools, err)
	}
	if info, err := conn2.StoragePoolInfo("poolb"); err != nil || !info.Active {
		t.Fatalf("pool poolb info %+v err=%v, want active after replay", info, err)
	}
}

// TestChaosUndefineSurvivesCrash makes sure deletions journal too: an
// undefined domain must NOT resurrect on replay.
func TestChaosUndefineSurvivesCrash(t *testing.T) {
	common.SetStateRoot(t.TempDir())
	defer common.SetStateRoot("")

	sock, _, d := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(emptyEnvURI(sock, ""))
	if err != nil {
		t.Fatal(err)
	}
	keep, err := conn.DefineDomain(chaosDomainXML("keep"))
	if err != nil {
		t.Fatal(err)
	}
	_ = keep
	gone, err := conn.DefineDomain(chaosDomainXML("gone"))
	if err != nil {
		t.Fatal(err)
	}
	if err := gone.Undefine(); err != nil {
		t.Fatal(err)
	}
	d.Kill()
	conn.Close()

	sock2, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn2, err := core.Open(emptyEnvURI(sock2, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.LookupDomain("keep"); err != nil {
		t.Fatalf("domain keep lost: %v", err)
	}
	if _, err := conn2.LookupDomain("gone"); !core.IsCode(err, core.ErrNoDomain) {
		t.Fatalf("undefined domain resurrected after crash: err=%v", err)
	}
}

// TestChaosClientDeadline injects a server-side driver delay longer
// than the client's configured call_timeout_ms and requires the call to
// come back quickly as a retryable host-unreachable error instead of
// hanging on the slow host.
func TestChaosClientDeadline(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)

	faultpoint.Default.Set("driver.op.info", faultpoint.Spec{
		Mode: faultpoint.ModeDelay, Prob: 1, Delay: 400 * time.Millisecond,
	})
	faultpoint.Default.Arm(42)
	defer faultpoint.Default.Disarm()

	conn, err := core.Open(emptyEnvURI(sock, "&call_timeout_ms=60"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dom, err := conn.DefineDomain(chaosDomainXML("slowpoke"))
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, err = dom.Info()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Info under a 400ms injected delay succeeded within a 60ms deadline")
	}
	if !core.IsCode(err, core.ErrHostUnreachable) {
		t.Fatalf("deadline error = %v (code %v), want ErrHostUnreachable", err, core.CodeOf(err))
	}
	if !core.IsRetryable(err) {
		t.Fatalf("deadline error %v not retryable", err)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("call blocked %v past its 60ms deadline", elapsed)
	}
	if n := faultpoint.Default.Fires("driver.op.info"); n == 0 {
		t.Fatal("fault point never fired")
	}
}

// TestChaosServerDispatchDeadline disables the client-side timeout and
// relies on the server's own dispatch deadline: the daemon must answer
// with ErrTimedOut rather than hold the call hostage behind a stuck
// driver operation.
func TestChaosServerDispatchDeadline(t *testing.T) {
	sock, _, d := startDaemon(t, daemon.ClientLimits{}, nil)
	d.SetCallTimeout(50 * time.Millisecond)

	faultpoint.Default.Set("driver.op.info", faultpoint.Spec{
		Mode: faultpoint.ModeDelay, Prob: 1, Delay: 300 * time.Millisecond,
	})
	faultpoint.Default.Arm(42)
	defer faultpoint.Default.Disarm()

	// call_timeout_ms=0 disables the client deadline entirely.
	conn, err := core.Open(emptyEnvURI(sock, "&call_timeout_ms=0"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dom, err := conn.DefineDomain(chaosDomainXML("stuck"))
	if err != nil {
		t.Fatal(err)
	}

	_, err = dom.Info()
	if !core.IsCode(err, core.ErrTimedOut) {
		t.Fatalf("dispatch deadline error = %v (code %v), want ErrTimedOut", err, core.CodeOf(err))
	}
	// A server-side timeout is NOT retryable: the operation may have run.
	if core.IsRetryable(err) {
		t.Fatalf("ErrTimedOut classified retryable: %v", err)
	}
}

// TestChaosGracefulShutdownDrains starts a slow call, shuts the daemon
// down with a generous grace budget, and requires the in-flight call to
// complete with a real reply instead of being cut off mid-operation.
func TestChaosGracefulShutdownDrains(t *testing.T) {
	core.ResetRegistryForTest()
	log := logging.NewQuiet(logging.Error)
	drvtest.Register(log)
	remote.Register()
	t.Cleanup(core.ResetRegistryForTest)

	d := daemon.New(log)
	d.SetShutdownGrace(2 * time.Second)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	sock := filepath.Join(t.TempDir(), "drain.sock")
	if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}

	faultpoint.Default.Set("driver.op.suspend", faultpoint.Spec{
		Mode: faultpoint.ModeDelay, Prob: 1, Delay: 150 * time.Millisecond,
	})
	faultpoint.Default.Arm(42)
	defer faultpoint.Default.Disarm()

	conn, err := core.Open(emptyEnvURI(sock, "&call_timeout_ms=0"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dom, err := conn.CreateDomainXML(chaosDomainXML("inflight"))
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- dom.Suspend() }()
	time.Sleep(30 * time.Millisecond) // let the call reach a worker

	d.Shutdown() // grace covers the 150ms injected delay
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("in-flight call lost during graceful shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call never completed")
	}
}

// TestChaosDaemonKillFaultpoint arms the daemon.kill site so the very
// next dispatched call takes the whole daemon down, and verifies the
// client observes a retryable transport failure — the same signal a
// fleet controller uses to fail over.
func TestChaosDaemonKillFaultpoint(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)

	conn, err := core.Open(emptyEnvURI(sock, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dom, err := conn.DefineDomain(chaosDomainXML("victim"))
	if err != nil {
		t.Fatal(err)
	}

	faultpoint.Default.Set("daemon.kill", faultpoint.Spec{Mode: faultpoint.ModeKill, Prob: 1})
	faultpoint.Default.Arm(42)
	defer faultpoint.Default.Disarm()

	_, err = dom.Info()
	if err == nil {
		t.Fatal("call against a self-killed daemon succeeded")
	}
	if !core.IsRetryable(err) {
		t.Fatalf("post-kill error = %v (code %v), want retryable", err, core.CodeOf(err))
	}
	if n := faultpoint.Default.Fires("daemon.kill"); n != 1 {
		t.Fatalf("daemon.kill fired %d times, want 1", n)
	}
}

// TestChaosTransportFaultsDeterministic pins down reproducibility: two
// runs with the same seed against the rpc.send site must fire on
// exactly the same call positions.
func TestChaosTransportFaultsDeterministic(t *testing.T) {
	run := func(seed int64) []uint64 {
		sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
		conn, err := core.Open(emptyEnvURI(sock, "&call_timeout_ms=40"))
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()

		faultpoint.Default.Set("rpc.send", faultpoint.Spec{Mode: faultpoint.ModeDrop, Prob: 0.3})
		faultpoint.Default.Arm(seed)
		defer faultpoint.Default.Disarm()

		var fires []uint64
		for i := 0; i < 20; i++ {
			conn.ListAllDomains(0) //nolint:errcheck // drops are the point
			fires = append(fires, faultpoint.Default.Fires("rpc.send"))
		}
		return fires
	}

	a := run(7)
	b := run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fire history diverged at call %d: %v vs %v", i, a, b)
		}
	}
}
