package daemon_test

import (
	"encoding/binary"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/logging"
	"repro/internal/rpc"
)

// dispatchFrame assembles one raw wire frame (length word + 24-byte
// header + payload) so seeds can speak valid, truncated, or lying
// protocol without going through the client library.
func dispatchFrame(program, version, proc, typ, serial, status uint32, payload []byte) []byte {
	buf := make([]byte, 4+24+len(payload))
	binary.BigEndian.PutUint32(buf[0:], uint32(len(buf)))
	binary.BigEndian.PutUint32(buf[4:], program)
	binary.BigEndian.PutUint32(buf[8:], version)
	binary.BigEndian.PutUint32(buf[12:], proc)
	binary.BigEndian.PutUint32(buf[16:], typ)
	binary.BigEndian.PutUint32(buf[20:], serial)
	binary.BigEndian.PutUint32(buf[24:], status)
	copy(buf[28:], payload)
	return buf
}

// FuzzServerDispatch pushes raw byte streams — wellformed calls with
// garbage payloads, unknown programs and procedures, truncated and
// oversized frames, pure noise — through a live daemon's full dispatch
// path (framing, program lookup, workerpool, driver) over a real unix
// socket. Two invariants: the daemon never panics, and a well-formed
// client on another connection keeps getting answers afterwards.
func FuzzServerDispatch(f *testing.F) {
	core.ResetRegistryForTest()
	log := logging.NewQuiet(logging.Error)
	drvtest.Register(log)
	remote.Register()
	d := daemon.New(log)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
	if err != nil {
		f.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	sock := filepath.Join(f.TempDir(), "fuzz.sock")
	if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		f.Fatal(err)
	}
	probe, err := core.Open("test+unix:///default?socket=" + strings.ReplaceAll(sock, "/", "%2F"))
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		probe.Close()
		d.Shutdown()
		core.ResetRegistryForTest()
	})

	f.Add(dispatchFrame(rpc.ProgramRemote, rpc.ProtocolVersion, 1, uint32(rpc.TypeCall), 1, 0, nil))
	f.Add(dispatchFrame(rpc.ProgramRemote, rpc.ProtocolVersion, 2, uint32(rpc.TypeCall), 2, 0, []byte("not-xdr")))
	f.Add(dispatchFrame(0xdeadbeef, 1, 1, uint32(rpc.TypeCall), 3, 0, nil))                                          // unknown program
	f.Add(dispatchFrame(rpc.ProgramRemote, 99, 9999, 7, 4, 1, []byte{0xff}))                                         // bad version/type/proc
	f.Add(dispatchFrame(rpc.ProgramRemote, rpc.ProtocolVersion, 1, uint32(rpc.TypeCall), 5, 0, []byte("xyzw"))[:11]) // truncated mid-header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                                                                            // hostile length word
	f.Add([]byte("complete garbage, not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatalf("daemon stopped accepting connections: %v", err)
		}
		nc.SetDeadline(time.Now().Add(200 * time.Millisecond)) //nolint:errcheck
		nc.Write(data)                                         //nolint:errcheck // partial writes are part of the test
		// Collect whatever the server says back (an error reply, a
		// connection close, or nothing before the deadline) — the point
		// is only that it keeps running.
		var scratch [512]byte
		nc.Read(scratch[:]) //nolint:errcheck
		nc.Close()          //nolint:errcheck

		if _, err := probe.Hostname(); err != nil {
			t.Fatalf("daemon wedged after raw frame injection: %v", err)
		}
	})
}
