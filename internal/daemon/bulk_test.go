package daemon_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/daemon"
)

// defineTestDomain defines (and optionally starts) one test-driver
// domain over the given connection.
func defineTestDomain(t *testing.T, conn *core.Connect, name string, start bool) {
	t.Helper()
	xml := fmt.Sprintf(`
<domain type='test'>
  <name>%s</name>
  <memory unit='MiB'>128</memory>
  <vcpu>2</vcpu>
  <os><type>hvm</type></os>
</domain>`, name)
	dom, err := conn.DefineDomain(xml)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		if err := dom.Create(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBulkMonitoringOverWire drives the bulk monitoring procedures
// through the daemon and cross-checks every row against the per-domain
// path it replaces.
func TestBulkMonitoringOverWire(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	defineTestDomain(t, conn, "bulk-a", true)
	defineTestDomain(t, conn, "bulk-b", true)
	defineTestDomain(t, conn, "bulk-idle", false)

	// The whole-host snapshot arrives in one round trip.
	inv, err := conn.NodeInventory()
	if err != nil {
		t.Fatal(err)
	}
	if inv.Node.CPUs == 0 || inv.Node.MemoryKiB == 0 {
		t.Fatalf("empty node summary: %+v", inv.Node)
	}
	// The seed domain "test" plus the three defined above.
	if len(inv.Domains) != 4 {
		t.Fatalf("inventory has %d domains, want 4: %+v", len(inv.Domains), inv.Domains)
	}
	byName := make(map[string]core.DomainInfo, len(inv.Domains))
	for _, row := range inv.Domains {
		byName[row.Name] = row.Info
	}
	for _, name := range []string{"bulk-a", "bulk-b", "bulk-idle", "test"} {
		row, ok := byName[name]
		if !ok {
			t.Fatalf("domain %q missing from inventory", name)
		}
		dom, err := conn.LookupDomain(name)
		if err != nil {
			t.Fatal(err)
		}
		single, err := dom.Info()
		if err != nil {
			t.Fatal(err)
		}
		if row.State != single.State || row.MaxMemKiB != single.MaxMemKiB || row.VCPUs != single.VCPUs {
			t.Fatalf("bulk row for %q diverges from DomainInfo:\nbulk   %+v\nsingle %+v",
				name, row, single)
		}
	}
	if byName["bulk-idle"].State != core.DomainShutoff {
		t.Fatalf("inactive domain state %v, want shutoff", byName["bulk-idle"].State)
	}

	// Flag filtering happens daemon-side.
	active, err := conn.DomainListInfo(core.ListActive)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range active {
		if row.Name == "bulk-idle" {
			t.Fatal("inactive domain in active-only sweep")
		}
	}
	if len(active) != 3 {
		t.Fatalf("active sweep has %d domains, want 3", len(active))
	}
}

// TestNodeInventoryIntoOverWire exercises the steady-state polling form:
// repeated sweeps into a retained inventory must stay correct across
// domain lifecycle changes while reusing the row storage in place.
func TestNodeInventoryIntoOverWire(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	defineTestDomain(t, conn, "into-a", true)
	defineTestDomain(t, conn, "into-b", true)

	var inv core.NodeInventory
	if err := conn.NodeInventoryInto(&inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Domains) != 3 { // seed "test" + two above
		t.Fatalf("inventory has %d domains, want 3: %+v", len(inv.Domains), inv.Domains)
	}
	firstRows := inv.Domains[:0]

	// A second sweep must reuse the same backing array and agree with a
	// fresh snapshot row for row.
	if err := conn.NodeInventoryInto(&inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Domains) == 0 || &inv.Domains[0] != &firstRows[:1][0] {
		t.Fatal("second sweep did not reuse the retained row storage")
	}
	fresh, err := conn.NodeInventory()
	if err != nil {
		t.Fatal(err)
	}
	freshByName := make(map[string]core.DomainInfo)
	for _, row := range fresh.Domains {
		freshByName[row.Name] = row.Info
	}
	for _, row := range inv.Domains {
		want, ok := freshByName[row.Name]
		if !ok {
			t.Fatalf("reused sweep has unknown domain %q", row.Name)
		}
		if row.Info.State != want.State || row.Info.MaxMemKiB != want.MaxMemKiB {
			t.Fatalf("reused sweep row %q diverges: %+v vs %+v", row.Name, row.Info, want)
		}
	}

	// Lifecycle changes must show up in the retained inventory: stop one
	// domain, undefine it, sweep again.
	dom, err := conn.LookupDomain("into-b")
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := dom.Undefine(); err != nil {
		t.Fatal(err)
	}
	if err := conn.NodeInventoryInto(&inv); err != nil {
		t.Fatal(err)
	}
	if len(inv.Domains) != 2 {
		t.Fatalf("after undefine, inventory has %d domains, want 2: %+v", len(inv.Domains), inv.Domains)
	}
	for _, row := range inv.Domains {
		if row.Name == "into-b" {
			t.Fatal("undefined domain still present in reused sweep")
		}
	}
}
