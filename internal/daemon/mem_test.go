package daemon_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/logging"
)

func TestDaemonMemTransport(t *testing.T) {
	core.ResetRegistryForTest()
	defer core.ResetRegistryForTest()
	log := logging.NewQuiet(logging.Error)
	drvtest.Register(log)
	remote.Register()

	d := daemon.New(log)
	srv, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{})
	if err != nil {
		t.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	if err := srv.ListenMem("smoke-node", daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()

	conn, err := core.Open("test+mem://smoke-node/empty")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if typ, err := conn.Type(); err != nil || typ != "test" {
		t.Fatalf("type=%q err=%v", typ, err)
	}
	dom, err := conn.CreateDomainXML(`<domain type='test'><name>m0</name><memory unit='MiB'>64</memory><vcpu>1</vcpu><os><type arch='x86_64'>hvm</type></os></domain>`)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := dom.State(); err != nil || st != core.DomainRunning {
		t.Fatalf("state=%v err=%v", st, err)
	}
	inv, err := conn.NodeInventory()
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Domains) != 1 {
		t.Fatalf("inventory domains = %d", len(inv.Domains))
	}
}
