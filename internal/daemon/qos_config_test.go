package daemon

import (
	"strings"
	"testing"
)

func TestQoSConfigParse(t *testing.T) {
	text := `
qos_classes = ["gold rate_limit_calls_per_s=500 burst=100 priority=8 users=alice", "bronze rate_limit_calls_per_s=20 max_inflight_calls=4"]
qos_shed_watermark = 64
`
	cfg, err := ParseConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.QoSClasses) != 2 || !strings.HasPrefix(cfg.QoSClasses[0], "gold ") {
		t.Fatalf("classes %v", cfg.QoSClasses)
	}
	if cfg.QoSShedWatermark != 64 {
		t.Fatalf("watermark %d", cfg.QoSShedWatermark)
	}
	// Default: no classes, watermark present but inert.
	def := DefaultConfig()
	if len(def.QoSClasses) != 0 || def.QoSShedWatermark != 128 {
		t.Fatalf("defaults %v %d", def.QoSClasses, def.QoSShedWatermark)
	}
}

func TestQoSConfigValidateErrors(t *testing.T) {
	// Bad class specs are rejected at parse time with the line number of
	// the qos_classes key, matching the style of other key validation.
	cases := []struct {
		text string
		want string
	}{
		{
			"log_level = 1\n" +
				`qos_classes = ["gold rate_limit_calls_per_s=5", "gold rate_limit_calls_per_s=9"]`,
			`config line 2: qos_classes: qos: duplicate class "gold"`,
		},
		{
			`qos_classes = ["gold rate_limit_calls_per_s=0"]`,
			"config line 1: qos_classes:",
		},
		{
			`qos_classes = ["gold rate_limit_calls_per_s=5 bogus=1"]`,
			`unknown key "bogus"`,
		},
		{
			"qos_shed_watermark = -1",
			"qos_shed_watermark must be non-negative",
		},
	}
	for _, tc := range cases {
		_, err := ParseConfig(tc.text)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseConfig(%q) = %v, want error containing %q", tc.text, err, tc.want)
		}
	}

	// Programmatic configs (no source text) get the same rejection
	// without a line number.
	cfg := DefaultConfig()
	cfg.QoSClasses = []string{"gold rate_limit_calls_per_s=-2"}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "qos_classes:") {
		t.Errorf("programmatic Validate = %v", err)
	}
}
