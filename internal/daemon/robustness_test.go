package daemon_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// dialRaw connects a raw TCP socket to the daemon's service.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

// TestDaemonSurvivesGarbageBytes verifies that a client writing
// non-protocol bytes only kills its own connection.
func TestDaemonSurvivesGarbageBytes(t *testing.T) {
	sock, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, nil)

	nc := dialRaw(t, tcpAddr)
	// A length word of 0xFFFFFFFF exceeds MaxMessageLen: the server must
	// drop the connection rather than allocate 4 GiB.
	if _, err := nc.Write([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server kept a connection after an oversized frame")
	}
	nc.Close()

	// A tiny (invalid) length word likewise.
	nc2 := dialRaw(t, tcpAddr)
	if _, err := nc2.Write([]byte{0, 0, 0, 2}); err != nil {
		t.Fatal(err)
	}
	nc2.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := nc2.Read(buf); err == nil {
		t.Fatal("server kept a connection after an undersized frame")
	}
	nc2.Close()

	// The daemon still serves well-formed clients.
	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hostname(); err != nil {
		t.Fatal(err)
	}
}

// rawCall writes one framed message and reads one reply.
func rawCall(t *testing.T, nc net.Conn, h rpc.Header, payload []byte) (rpc.Header, []byte) {
	t.Helper()
	conn := rpc.NewConn(nc)
	if err := conn.WriteMessage(h, payload); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	rh, rp, err := conn.ReadMessage()
	if err != nil {
		t.Fatalf("no reply: %v", err)
	}
	return rh, rp
}

func TestDaemonRejectsUnknownProgram(t *testing.T) {
	_, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	nc := dialRaw(t, tcpAddr)
	defer nc.Close()
	h := rpc.Header{Program: 0xdeadbeef, Version: rpc.ProtocolVersion,
		Procedure: 1, Type: uint32(rpc.TypeCall), Serial: 1}
	rh, rp := rawCall(t, nc, h, nil)
	if rpc.Status(rh.Status) != rpc.StatusError {
		t.Fatalf("status %d", rh.Status)
	}
	var ep rpc.ErrorPayload
	if err := rpc.Unmarshal(rp, &ep); err != nil {
		t.Fatal(err)
	}
	if core.ErrorCode(ep.Code) != core.ErrNoSupport {
		t.Fatalf("code %d", ep.Code)
	}
}

func TestDaemonRejectsWrongVersion(t *testing.T) {
	_, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	nc := dialRaw(t, tcpAddr)
	defer nc.Close()
	h := rpc.Header{Program: rpc.ProgramRemote, Version: 99,
		Procedure: wire.ProcAuthList, Type: uint32(rpc.TypeCall), Serial: 1}
	rh, _ := rawCall(t, nc, h, nil)
	if rpc.Status(rh.Status) != rpc.StatusError {
		t.Fatalf("status %d", rh.Status)
	}
}

func TestDaemonRejectsCallWithoutConnectOpen(t *testing.T) {
	_, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	nc := dialRaw(t, tcpAddr)
	defer nc.Close()
	payload, _ := rpc.Marshal(&wire.NameArgs{Name: "test"})
	h := rpc.Header{Program: rpc.ProgramRemote, Version: rpc.ProtocolVersion,
		Procedure: wire.ProcDomainGetInfo, Type: uint32(rpc.TypeCall), Serial: 1}
	rh, rp := rawCall(t, nc, h, payload)
	if rpc.Status(rh.Status) != rpc.StatusError {
		t.Fatalf("status %d", rh.Status)
	}
	var ep rpc.ErrorPayload
	if err := rpc.Unmarshal(rp, &ep); err != nil {
		t.Fatal(err)
	}
	if core.ErrorCode(ep.Code) != core.ErrNoConnect {
		t.Fatalf("code %d (%s)", ep.Code, ep.Message)
	}
}

func TestDaemonRejectsMalformedArgs(t *testing.T) {
	_, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	nc := dialRaw(t, tcpAddr)
	defer nc.Close()
	conn := rpc.NewConn(nc)
	// Open the server-side connection properly first.
	openArgs, _ := rpc.Marshal(&wire.ConnectOpenArgs{URI: "test:///default"})
	if err := conn.WriteMessage(rpc.Header{
		Program: rpc.ProgramRemote, Version: rpc.ProtocolVersion,
		Procedure: wire.ProcConnectOpen, Type: uint32(rpc.TypeCall), Serial: 1,
	}, openArgs); err != nil {
		t.Fatal(err)
	}
	if rh, _, err := conn.ReadMessage(); err != nil || rpc.Status(rh.Status) != rpc.StatusOK {
		t.Fatalf("open failed: %v %d", err, rh.Status)
	}
	// Now send truncated argument bytes for a lookup.
	garbage := []byte{0, 0}
	if err := conn.WriteMessage(rpc.Header{
		Program: rpc.ProgramRemote, Version: rpc.ProtocolVersion,
		Procedure: wire.ProcDomainLookupByName, Type: uint32(rpc.TypeCall), Serial: 2,
	}, garbage); err != nil {
		t.Fatal(err)
	}
	rh, rp, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if rpc.Status(rh.Status) != rpc.StatusError {
		t.Fatalf("malformed args accepted: status %d", rh.Status)
	}
	var ep rpc.ErrorPayload
	if err := rpc.Unmarshal(rp, &ep); err != nil {
		t.Fatal(err)
	}
	if core.ErrorCode(ep.Code) != core.ErrInvalidArg {
		t.Fatalf("code %d (%s)", ep.Code, ep.Message)
	}
	// Connection is still usable afterwards.
	if err := conn.WriteMessage(rpc.Header{
		Program: rpc.ProgramRemote, Version: rpc.ProtocolVersion,
		Procedure: wire.ProcGetHostname, Type: uint32(rpc.TypeCall), Serial: 3,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if rh, _, err := conn.ReadMessage(); err != nil || rpc.Status(rh.Status) != rpc.StatusOK {
		t.Fatalf("connection unusable after arg error: %v %d", err, rh.Status)
	}
}

func TestDaemonAnswersPings(t *testing.T) {
	_, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	nc := dialRaw(t, tcpAddr)
	defer nc.Close()
	conn := rpc.NewConn(nc)
	if err := conn.WriteMessage(rpc.Header{
		Program: rpc.ProgramRemote, Version: rpc.ProtocolVersion,
		Type: uint32(rpc.TypePing), Serial: 42,
	}, nil); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	rh, _, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if rpc.MsgType(rh.Type) != rpc.TypePong || rh.Serial != 42 {
		t.Fatalf("reply %+v", rh)
	}
}

func TestDaemonIgnoresStrayReplies(t *testing.T) {
	// A client sending a Reply-typed message must not crash dispatch.
	sock, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	nc := dialRaw(t, tcpAddr)
	defer nc.Close()
	conn := rpc.NewConn(nc)
	if err := conn.WriteMessage(rpc.Header{
		Program: rpc.ProgramRemote, Version: rpc.ProtocolVersion,
		Type: uint32(rpc.TypeReply), Serial: 1,
	}, nil); err != nil {
		t.Fatal(err)
	}
	// The daemon logs and ignores it; a real client still works.
	c, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hostname(); err != nil {
		t.Fatal(err)
	}
}

// TestFrameLengthEncoding pins the frame layout: 4-byte big-endian total
// length including itself, then six 4-byte header words.
func TestFrameLengthEncoding(t *testing.T) {
	a, b := net.Pipe()
	go func() {
		rpc.NewConn(a).WriteMessage(rpc.Header{ //nolint:errcheck
			Program: 7, Version: 1, Procedure: 2, Type: 0, Serial: 3, Status: 0,
		}, []byte{0xAA})
	}()
	raw := make([]byte, 33)
	if _, err := b.Read(raw); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(raw[0:]); got != 29 {
		t.Fatalf("frame length %d, want 29", got)
	}
	if got := binary.BigEndian.Uint32(raw[4:]); got != 7 {
		t.Fatalf("program %d", got)
	}
	if raw[28] != 0xAA {
		t.Fatalf("payload byte %x", raw[28])
	}
}
