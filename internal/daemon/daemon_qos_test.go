package daemon_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/qos"
)

// setQoS installs an admission engine on the daemon's management server.
func setQoS(t *testing.T, d *daemon.Daemon, watermark int, specs ...string) {
	t.Helper()
	srv, ok := d.Server("govirtd")
	if !ok {
		t.Fatal("no govirtd server")
	}
	classes, err := qos.ParseClasses(specs)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetQoS(qos.NewEngine(qos.Config{Classes: classes, ShedWatermark: watermark}))
}

// TestQoSRateLimitTypedRejection drives a unix client into its class
// rate limit and checks the rejection contract: a typed retryable
// overload error carrying a retry-after hint, on a connection that
// stays fully usable.
func TestQoSRateLimitTypedRejection(t *testing.T) {
	sock, _, d := startDaemon(t, daemon.ClientLimits{}, nil)
	// Anonymous unix clients share the default principal; throttle it.
	setQoS(t, d, 0, "default rate_limit_calls_per_s=2 burst=4")

	// overload_retry_ms=0 turns off the driver's transparent retry so
	// the typed error surfaces to the caller.
	conn, err := core.Open(unixURI(sock) + "&overload_retry_ms=0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var overErr error
	for i := 0; i < 10; i++ {
		if _, err := conn.Hostname(); err != nil {
			overErr = err
			break
		}
	}
	if overErr == nil {
		t.Fatal("no rejection after 10 calls against burst 4")
	}
	if !core.IsCode(overErr, core.ErrOverloaded) {
		t.Fatalf("rejection not typed ErrOverloaded: %v", overErr)
	}
	if !core.IsRetryable(overErr) {
		t.Fatalf("overload rejection must be retryable: %v", overErr)
	}
	ra := core.RetryAfterOf(overErr)
	if ra <= 0 || ra > time.Second {
		t.Fatalf("retry-after hint %v outside (0, 1s]", ra)
	}
	// The connection was never torn down: after honoring the hint the
	// same connection serves calls again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(ra)
		if _, err := conn.Hostname(); err == nil {
			break
		} else if !core.IsCode(err, core.ErrOverloaded) {
			t.Fatalf("connection degraded after rejection: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("token never refilled")
		}
	}
}

// TestQoSACLDeniedOverWire checks procedure/object allowlists at the
// dispatch gate: denied procedures fail with ErrAccessDenied before
// reaching the driver, and the connection survives.
func TestQoSACLDeniedOverWire(t *testing.T) {
	sock, _, d := startDaemon(t, daemon.ClientLimits{}, nil)
	setQoS(t, d, 0,
		"default rate_limit_calls_per_s=1000 acl=ConnectOpen|ConnectClose|GetHostname|DomainLookupByName@test")

	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hostname(); err != nil {
		t.Fatalf("allowlisted procedure rejected: %v", err)
	}
	// GetVersion is not on the allowlist.
	if _, err := conn.Version(); !core.IsCode(err, core.ErrAccessDenied) {
		t.Fatalf("want ErrAccessDenied for GetVersion, got %v", err)
	}
	if core.IsRetryable(core.Errorf(core.ErrAccessDenied, "x")) {
		t.Fatal("ACL denial must not be retryable")
	}
	// Object-scoped rule: the lookup's leading string is matched against
	// the rule's object pattern.
	if _, err := conn.LookupDomain("test"); err != nil {
		t.Fatalf("allowlisted object rejected: %v", err)
	}
	if _, err := conn.LookupDomain("other"); !core.IsCode(err, core.ErrAccessDenied) {
		t.Fatalf("want ErrAccessDenied for object %q, got %v", "other", err)
	}
	// Denials do not degrade the connection.
	if _, err := conn.Hostname(); err != nil {
		t.Fatalf("connection degraded after denial: %v", err)
	}
}

// TestQoSSASLUserClassMapping ties SASL identities to classes over TCP:
// the throttled user is rejected while the unthrottled one sails
// through on the same daemon.
func TestQoSSASLUserClassMapping(t *testing.T) {
	_, tcpAddr, d := startDaemon(t, daemon.ClientLimits{},
		map[string]string{"admin": "secret", "ops": "hunter2"})
	setQoS(t, d, 0,
		"gold rate_limit_calls_per_s=1000 users=admin",
		"bronze rate_limit_calls_per_s=2 burst=6 users=ops")

	goldURI := strings.Replace(tcpURI(tcpAddr, "?password=secret"), "test+tcp://", "test+tcp://admin@", 1)
	bronzeURI := strings.Replace(tcpURI(tcpAddr, "?password=hunter2&overload_retry_ms=0"), "test+tcp://", "test+tcp://ops@", 1)

	gold, err := core.Open(goldURI)
	if err != nil {
		t.Fatal(err)
	}
	defer gold.Close()
	bronze, err := core.Open(bronzeURI)
	if err != nil {
		t.Fatal(err)
	}
	defer bronze.Close()

	var bronzeRejected bool
	for i := 0; i < 15; i++ {
		if _, err := bronze.Hostname(); err != nil {
			if !core.IsCode(err, core.ErrOverloaded) {
				t.Fatalf("bronze rejection wrong type: %v", err)
			}
			bronzeRejected = true
			break
		}
	}
	if !bronzeRejected {
		t.Fatal("bronze user never throttled")
	}
	// The gold user is unaffected by the noisy bronze neighbor.
	for i := 0; i < 20; i++ {
		if _, err := gold.Hostname(); err != nil {
			t.Fatalf("gold call %d failed: %v", i, err)
		}
	}
}

// TestQoSLiveEngineSwap replaces the admission engine under an open
// connection: the client is re-resolved against the new engine on its
// next call, and removing the engine lifts all limits.
func TestQoSLiveEngineSwap(t *testing.T) {
	sock, _, d := startDaemon(t, daemon.ClientLimits{}, nil)
	srv, _ := d.Server("govirtd")

	conn, err := core.Open(unixURI(sock) + "&overload_retry_ms=0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// No engine: unlimited.
	for i := 0; i < 10; i++ {
		if _, err := conn.Hostname(); err != nil {
			t.Fatal(err)
		}
	}
	// Install a restrictive engine live; the open connection picks it up.
	setQoS(t, d, 0, "default rate_limit_calls_per_s=1 burst=2")
	var rejected bool
	for i := 0; i < 10; i++ {
		if _, err := conn.Hostname(); core.IsCode(err, core.ErrOverloaded) {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("live-installed engine not enforced on existing connection")
	}
	// Remove it: the same connection is unlimited again.
	srv.SetQoS(nil)
	for i := 0; i < 10; i++ {
		if _, err := conn.Hostname(); err != nil {
			t.Fatalf("call after engine removal: %v", err)
		}
	}
}
