package daemon_test

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/events"
	"repro/internal/logging"
	"repro/internal/uri"
)

// startDaemon brings up a daemon with one management server listening on
// a unix socket and a TCP port, with the test driver registered
// server-side.
func startDaemon(t *testing.T, limits daemon.ClientLimits, creds map[string]string) (sock, tcpAddr string, d *daemon.Daemon) {
	t.Helper()
	core.ResetRegistryForTest()
	log := logging.NewQuiet(logging.Error)
	drvtest.Register(log)
	remote.Register()

	d = daemon.New(log)
	srv, err := d.AddServer("govirtd", 2, 8, 2, limits)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddProgram(daemon.NewRemoteProgram(srv))
	if len(creds) > 0 {
		srv.SetCredentials(creds)
	}
	sock = filepath.Join(t.TempDir(), "govirtd.sock")
	if err := srv.ListenUnix(sock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}
	tcpCfg := daemon.ServiceConfig{Transport: daemon.TransportTCP}
	if len(creds) > 0 {
		tcpCfg.AuthSASL = true
	}
	tcpAddr, err = srv.ListenTCP("127.0.0.1:0", tcpCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Shutdown()
		core.ResetRegistryForTest()
	})
	return sock, tcpAddr, d
}

func unixURI(sock string) string {
	return "test+unix:///default?socket=" + strings.ReplaceAll(sock, "/", "%2F")
}

func tcpURI(addr, extra string) string {
	host, port, _ := strings.Cut(addr, ":")
	return fmt.Sprintf("test+tcp://%s:%s/default%s", host, port, extra)
}

func TestRemoteOverUnixSocket(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Type is reported transparently from the server-side driver.
	typ, err := conn.Type()
	if err != nil || typ != "test" {
		t.Fatalf("type %q %v", typ, err)
	}
	hn, err := conn.Hostname()
	if err != nil || hn != "testhost" {
		t.Fatalf("hostname %q %v", hn, err)
	}
	doms, err := conn.ListAllDomains(0)
	if err != nil || len(doms) != 1 || doms[0].Name() != "test" {
		t.Fatalf("domains %v %v", doms, err)
	}
	// Full lifecycle through the daemon.
	dom := doms[0]
	st, err := dom.State()
	if err != nil || st != core.DomainRunning {
		t.Fatalf("state %v %v", st, err)
	}
	if err := dom.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := dom.Resume(); err != nil {
		t.Fatal(err)
	}
	stats, err := dom.Stats()
	if err != nil || stats.State != core.DomainRunning {
		t.Fatalf("stats %+v %v", stats, err)
	}
	xml, err := dom.XML()
	if err != nil || !strings.Contains(xml, "<name>test</name>") {
		t.Fatalf("xml %v", err)
	}
	if err := dom.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := dom.Undefine(); err != nil {
		t.Fatal(err)
	}
	// Error classes survive the wire.
	if _, err := conn.LookupDomain("test"); !core.IsCode(err, core.ErrNoDomain) {
		t.Fatalf("error code lost on wire: %v", err)
	}
}

func TestRemoteDefineAndNetworksOverWire(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	xml := `
<domain type='test'>
  <name>wired</name>
  <memory unit='MiB'>256</memory>
  <vcpu>1</vcpu>
  <os><type>hvm</type></os>
  <devices>
    <interface type='network'>
      <mac address='52:54:00:77:66:55'/>
      <source network='default'/>
    </interface>
  </devices>
</domain>`
	dom, err := conn.DefineDomain(xml)
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.Create(); err != nil {
		t.Fatal(err)
	}
	leases, err := conn.NetworkDHCPLeases("default")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range leases {
		if l.MAC == "52:54:00:77:66:55" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lease for wired domain: %v", leases)
	}
	nets, err := conn.ListNetworks()
	if err != nil || len(nets) != 1 {
		t.Fatalf("networks %v %v", nets, err)
	}
	// Storage through the wire.
	pools, err := conn.ListStoragePools()
	if err != nil || len(pools) != 1 {
		t.Fatalf("pools %v %v", pools, err)
	}
	volXML := `<volume><name>v1</name><capacity unit='GiB'>1</capacity></volume>`
	if err := conn.CreateVolume(pools[0], volXML); err != nil {
		t.Fatal(err)
	}
	vols, err := conn.ListVolumes(pools[0])
	if err != nil || len(vols) != 1 || vols[0] != "v1" {
		t.Fatalf("volumes %v %v", vols, err)
	}
	vxml, err := conn.VolumeXML(pools[0], "v1")
	if err != nil || !strings.Contains(vxml, "<name>v1</name>") {
		t.Fatalf("volume xml %v", err)
	}
}

func TestRemoteOverTCPWithAuth(t *testing.T) {
	_, tcpAddr, _ := startDaemon(t, daemon.ClientLimits{}, map[string]string{"admin": "secret"})

	// Wrong password fails.
	if _, err := core.Open(tcpURI(tcpAddr, "?password=wrong&x=1")); err == nil {
		t.Fatal("connection without username accepted")
	}
	bad := strings.Replace(tcpURI(tcpAddr, "?password=wrong"), "test+tcp://", "test+tcp://admin@", 1)
	if _, err := core.Open(bad); err == nil {
		t.Fatal("wrong password accepted")
	}
	good := strings.Replace(tcpURI(tcpAddr, "?password=secret"), "test+tcp://", "test+tcp://admin@", 1)
	conn, err := core.Open(good)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if typ, err := conn.Type(); err != nil || typ != "test" {
		t.Fatalf("type %q %v", typ, err)
	}
}

func TestUnauthenticatedCallsRejected(t *testing.T) {
	_, tcpAddr, d := startDaemon(t, daemon.ClientLimits{}, map[string]string{"admin": "secret"})
	// The daemon must enforce auth gating server-side: a client that
	// skips SASL gets ErrAuthFailed on every other procedure. Reach in
	// with a raw remote.Conn via a URI with no username to check the
	// failure class.
	u, _ := uri.Parse(tcpURI(tcpAddr, ""))
	if _, err := remote.Open(u); !core.IsCode(err, core.ErrAuthFailed) {
		t.Fatalf("want auth failure, got %v", err)
	}
	srv, _ := d.Server("govirtd")
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Clients()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("failed client still registered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClientLimitRejectsConnections(t *testing.T) {
	sock, _, d := startDaemon(t, daemon.ClientLimits{MaxClients: 2}, nil)
	c1, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Third connection is rejected at accept time; the client observes a
	// failed open.
	if _, err := core.Open(unixURI(sock)); err == nil {
		t.Fatal("connection over limit accepted")
	}
	srv, _ := d.Server("govirtd")
	if srv.RejectedCount() == 0 {
		t.Fatal("rejection not counted")
	}
	// Raising the limit at runtime admits new clients.
	if err := srv.SetLimits(daemon.ClientLimits{MaxClients: 10}); err != nil {
		t.Fatal(err)
	}
	c3, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatalf("connection after limit raise: %v", err)
	}
	c3.Close()
}

func TestEventsDeliveredOverWire(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var mu sync.Mutex
	var got []events.Event
	if _, err := conn.SubscribeEvents("", nil, func(ev events.Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	dom, err := conn.LookupDomain("test")
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := dom.Resume(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d events arrived", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Type != events.EventSuspended || got[0].Domain != "test" {
		t.Fatalf("first event %+v", got[0])
	}
	if got[1].Type != events.EventResumed {
		t.Fatalf("second event %+v", got[1])
	}
}

func TestConcurrentRemoteClients(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{MaxClients: 64}, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := core.Open(unixURI(sock))
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			name := fmt.Sprintf("conc%d", id)
			xml := fmt.Sprintf(`<domain type='test'><name>%s</name><memory unit='MiB'>64</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>`, name)
			dom, err := conn.DefineDomain(xml)
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 10; j++ {
				if err := dom.Create(); err != nil {
					errs <- err
					return
				}
				if _, err := dom.Stats(); err != nil {
					errs <- err
					return
				}
				if err := dom.Destroy(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServerSideStatePersistsAcrossClientConnections(t *testing.T) {
	// Definitions live daemon-side: a domain defined by one client is
	// visible to the next connection. Each test-driver connection is
	// private state, so connect to the same server-side conn... the
	// daemon opens one driver connection per client, so this documents
	// the per-connection environment semantics of the test driver.
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	c1, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.DefineDomain(`<domain type='test'><name>p</name><memory unit='MiB'>64</memory><vcpu>1</vcpu><os><type>hvm</type></os></domain>`); err != nil {
		t.Fatal(err)
	}
	names, err := c1.Driver().ListDomains(0)
	if err != nil || len(names) != 2 {
		t.Fatalf("first connection sees %v %v", names, err)
	}
	c1.Close()
	// A second connection gets a fresh default environment (test driver
	// private state), demonstrating connections carry their own driver.
	c2, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	names, err = c2.Driver().ListDomains(0)
	if err != nil || len(names) != 1 {
		t.Fatalf("second connection sees %v %v", names, err)
	}
}

func TestDaemonServers(t *testing.T) {
	_, _, d := startDaemon(t, daemon.ClientLimits{}, nil)
	if _, err := d.AddServer("govirtd", 1, 2, 0, daemon.ClientLimits{}); !core.IsCode(err, core.ErrDuplicate) {
		t.Fatalf("duplicate server: %v", err)
	}
	if _, err := d.AddServer("", 1, 2, 0, daemon.ClientLimits{}); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("unnamed server: %v", err)
	}
	if _, err := d.AddServer("bad", 5, 2, 0, daemon.ClientLimits{}); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("bad pool: %v", err)
	}
	names := d.Servers()
	if len(names) != 1 || names[0] != "govirtd" {
		t.Fatalf("servers %v", names)
	}
}
