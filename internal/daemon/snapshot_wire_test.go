package daemon_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/daemon"
)

// TestSnapshotAndManagedSaveOverWire exercises the snapshot and managed
// save procedures end-to-end through the daemon.
func TestSnapshotAndManagedSaveOverWire(t *testing.T) {
	sock, _, _ := startDaemon(t, daemon.ClientLimits{}, nil)
	conn, err := core.Open(unixURI(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	dom, err := conn.LookupDomain("test")
	if err != nil {
		t.Fatal(err)
	}
	name, err := dom.CreateSnapshot(`<domainsnapshot><name>wired</name><description>over rpc</description></domainsnapshot>`)
	if err != nil {
		t.Fatal(err)
	}
	if name != "wired" {
		t.Fatalf("snapshot name %q", name)
	}
	snaps, err := dom.ListSnapshots()
	if err != nil || len(snaps) != 1 || snaps[0] != "wired" {
		t.Fatalf("snapshots %v %v", snaps, err)
	}
	xml, err := dom.SnapshotXML("wired")
	if err != nil || !strings.Contains(xml, "over rpc") {
		t.Fatalf("xml %v:\n%s", err, xml)
	}
	if err := dom.Suspend(); err != nil {
		t.Fatal(err)
	}
	if err := dom.RevertSnapshot("wired"); err != nil {
		t.Fatal(err)
	}
	if st, _ := dom.State(); st != core.DomainRunning {
		t.Fatalf("state after revert %v", st)
	}
	if err := dom.DeleteSnapshot("wired"); err != nil {
		t.Fatal(err)
	}
	if err := dom.RevertSnapshot("wired"); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("revert deleted snapshot: %v", err)
	}

	// Managed save round trip over the wire.
	if err := dom.ManagedSave(); err != nil {
		t.Fatal(err)
	}
	if has, err := dom.HasManagedSave(); err != nil || !has {
		t.Fatalf("HasManagedSave %v %v", has, err)
	}
	if err := dom.Create(); err != nil {
		t.Fatal(err)
	}
	if st, _ := dom.State(); st != core.DomainRunning {
		t.Fatalf("state after restore %v", st)
	}
	if has, _ := dom.HasManagedSave(); has {
		t.Fatal("image survived restore")
	}
}
