package daemon

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/faultpoint"
	"repro/internal/qos"
	"repro/internal/uri"
)

// Config is the daemon's persistent configuration, read once at start-up
// from a libvirtd.conf-style file. Everything here that has a runtime
// counterpart (workerpool limits, client limits, logging) can later be
// changed through the admin interface without a restart.
type Config struct {
	// Sockets.
	UnixSocketPath  string
	AdminSocketPath string
	ListenTCP       bool
	TCPBindAddress  string
	TCPPort         int
	AuthTCP         string // "none" or "sasl"
	SASLCredentials map[string]string

	// Workerpool.
	MinWorkers  int
	MaxWorkers  int
	PrioWorkers int

	// Client limits.
	MaxClients       int
	MaxUnauthClients int

	// Logging.
	LogLevel   int
	LogFilters string
	LogOutputs string

	// Telemetry.
	MetricsAddress      string // HTTP /metrics listener; "" disables
	SlowCallThresholdMs int    // slow-call tracing threshold; 0 disables

	// Per-domain metrics export (needs MetricsAddress).
	DomainMetricsURI         string // driver URI swept per scrape; "" disables
	DomainMetricsStalenessMs int    // rendered-sweep reuse window
	DomainMetricsMaxDomains  int    // cardinality cap on exported rows; 0 = unlimited

	// Watch streams (see internal/watch).
	EventQueueDepth       int // per-subscription queue depth
	EventCoalesceWindowMs int // per-domain coalesce window; 0 disables

	// Robustness.
	StateDir        string // crash-safe object journal root; "" disables
	CallTimeoutMs   int    // per-call dispatch deadline; 0 disables
	ShutdownGraceMs int    // in-flight drain budget on shutdown

	// Multi-tenant QoS (see internal/qos): per-class admission specs
	// and the queue-depth watermark above which queued low-priority
	// calls are shed. Empty QoSClasses disables admission control.
	QoSClasses       []string
	QoSShedWatermark int

	// Debug: deterministic fault injection (see internal/faultpoint).
	// Production configurations leave these empty.
	FaultInjection string // "site:mode:prob[:delay_ms],..." spec list
	FaultSeed      int    // PRNG seed the registry is armed with

	// qosLine remembers the config line where qos_classes appeared, so
	// Validate can point at it when a spec fails full parsing.
	qosLine int
}

// DefaultConfig returns the shipped defaults.
func DefaultConfig() Config {
	return Config{
		UnixSocketPath:      "/var/run/govirt/govirt-sock",
		AdminSocketPath:     "/var/run/govirt/govirt-admin-sock",
		TCPBindAddress:      "0.0.0.0",
		TCPPort:             16509,
		AuthTCP:             "none",
		SASLCredentials:     map[string]string{},
		MinWorkers:          5,
		MaxWorkers:          20,
		PrioWorkers:         5,
		MaxClients:          120,
		MaxUnauthClients:    20,
		LogLevel:            3,
		LogOutputs:          "3:stderr",
		SlowCallThresholdMs: 250,
		CallTimeoutMs:       30000,
		ShutdownGraceMs:     5000,

		DomainMetricsStalenessMs: 1000,
		DomainMetricsMaxDomains:  10000,

		EventQueueDepth:       256,
		EventCoalesceWindowMs: 10,

		QoSShedWatermark: 128,
	}
}

// ParseConfig reads a key = value configuration document: comments start
// with '#', strings are double-quoted, integers and booleans (0/1) are
// bare, and string lists use ["a", "b"].
func ParseConfig(text string) (Config, error) {
	cfg := DefaultConfig()
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, found := strings.Cut(line, "=")
		if !found {
			return cfg, fmt.Errorf("daemon: config line %d: missing '='", lineNo+1)
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if err := cfg.apply(key, value); err != nil {
			return cfg, fmt.Errorf("daemon: config line %d: %v", lineNo+1, err)
		}
		if key == "qos_classes" {
			cfg.qosLine = lineNo + 1
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (c *Config) apply(key, value string) error {
	switch key {
	case "unix_sock_path":
		return setString(&c.UnixSocketPath, value)
	case "admin_sock_path":
		return setString(&c.AdminSocketPath, value)
	case "listen_tcp":
		return setBool(&c.ListenTCP, value)
	case "tcp_bind_address":
		return setString(&c.TCPBindAddress, value)
	case "tcp_port":
		return setInt(&c.TCPPort, value)
	case "auth_tcp":
		if err := setString(&c.AuthTCP, value); err != nil {
			return err
		}
		if c.AuthTCP != "none" && c.AuthTCP != "sasl" {
			return fmt.Errorf("auth_tcp must be \"none\" or \"sasl\"")
		}
		return nil
	case "sasl_credentials":
		entries, err := parseList(value)
		if err != nil {
			return err
		}
		creds := make(map[string]string, len(entries))
		for _, e := range entries {
			user, pass, found := strings.Cut(e, ":")
			if !found || user == "" {
				return fmt.Errorf("sasl_credentials entries must be \"user:password\"")
			}
			creds[user] = pass
		}
		c.SASLCredentials = creds
		return nil
	case "min_workers":
		return setInt(&c.MinWorkers, value)
	case "max_workers":
		return setInt(&c.MaxWorkers, value)
	case "prio_workers":
		return setInt(&c.PrioWorkers, value)
	case "max_clients":
		return setInt(&c.MaxClients, value)
	case "max_anonymous_clients":
		return setInt(&c.MaxUnauthClients, value)
	case "log_level":
		return setInt(&c.LogLevel, value)
	case "log_filters":
		return setString(&c.LogFilters, value)
	case "log_outputs":
		return setString(&c.LogOutputs, value)
	case "metrics_address":
		return setString(&c.MetricsAddress, value)
	case "slow_call_threshold_ms":
		return setInt(&c.SlowCallThresholdMs, value)
	case "domain_metrics":
		return setString(&c.DomainMetricsURI, value)
	case "domain_metrics_staleness_ms":
		return setInt(&c.DomainMetricsStalenessMs, value)
	case "domain_metrics_max_domains":
		return setInt(&c.DomainMetricsMaxDomains, value)
	case "event_queue_depth":
		return setInt(&c.EventQueueDepth, value)
	case "event_coalesce_window_ms":
		return setInt(&c.EventCoalesceWindowMs, value)
	case "state_dir":
		return setString(&c.StateDir, value)
	case "call_timeout_ms":
		return setInt(&c.CallTimeoutMs, value)
	case "shutdown_grace_ms":
		return setInt(&c.ShutdownGraceMs, value)
	case "qos_classes":
		entries, err := parseList(value)
		if err != nil {
			return err
		}
		c.QoSClasses = entries
		return nil
	case "qos_shed_watermark":
		return setInt(&c.QoSShedWatermark, value)
	case "fault_injection":
		return setString(&c.FaultInjection, value)
	case "fault_seed":
		return setInt(&c.FaultSeed, value)
	default:
		return fmt.Errorf("unknown key %q", key)
	}
}

// Validate cross-checks the configuration.
func (c *Config) Validate() error {
	if c.MinWorkers < 0 || c.MaxWorkers < 1 || c.MinWorkers > c.MaxWorkers {
		return fmt.Errorf("daemon: worker limits invalid: min=%d max=%d", c.MinWorkers, c.MaxWorkers)
	}
	if c.PrioWorkers < 0 {
		return fmt.Errorf("daemon: prio_workers must be non-negative")
	}
	if c.MaxClients < 1 {
		return fmt.Errorf("daemon: max_clients must be >= 1")
	}
	if c.MaxUnauthClients < 0 || c.MaxUnauthClients > c.MaxClients {
		return fmt.Errorf("daemon: max_anonymous_clients outside [0, max_clients]")
	}
	if c.TCPPort < 1 || c.TCPPort > 65535 {
		return fmt.Errorf("daemon: tcp_port %d out of range", c.TCPPort)
	}
	if c.LogLevel < 1 || c.LogLevel > 4 {
		return fmt.Errorf("daemon: log_level %d outside [1,4]", c.LogLevel)
	}
	if c.AuthTCP == "sasl" && len(c.SASLCredentials) == 0 {
		return fmt.Errorf("daemon: auth_tcp=sasl requires sasl_credentials")
	}
	if c.SlowCallThresholdMs < 0 {
		return fmt.Errorf("daemon: slow_call_threshold_ms must be non-negative")
	}
	if c.DomainMetricsStalenessMs < 0 {
		return fmt.Errorf("daemon: domain_metrics_staleness_ms must be non-negative")
	}
	if c.DomainMetricsMaxDomains < 0 {
		return fmt.Errorf("daemon: domain_metrics_max_domains must be non-negative")
	}
	if c.DomainMetricsURI != "" {
		if _, err := uri.Parse(c.DomainMetricsURI); err != nil {
			return fmt.Errorf("daemon: domain_metrics: %v", err)
		}
	}
	if c.EventQueueDepth < 1 {
		return fmt.Errorf("daemon: event_queue_depth must be >= 1")
	}
	if c.EventCoalesceWindowMs < 0 {
		return fmt.Errorf("daemon: event_coalesce_window_ms must be non-negative")
	}
	if c.CallTimeoutMs < 0 {
		return fmt.Errorf("daemon: call_timeout_ms must be non-negative")
	}
	if c.ShutdownGraceMs < 0 {
		return fmt.Errorf("daemon: shutdown_grace_ms must be non-negative")
	}
	if c.FaultInjection != "" {
		if _, err := faultpoint.ParseSpecs(c.FaultInjection); err != nil {
			return fmt.Errorf("daemon: fault_injection: %v", err)
		}
	}
	if c.QoSShedWatermark < 0 {
		return fmt.Errorf("daemon: qos_shed_watermark must be non-negative")
	}
	if len(c.QoSClasses) > 0 {
		// Full spec validation — duplicate class names, zero-rate
		// classes, malformed keys — pointing at the qos_classes line
		// when the config came from a file.
		if _, err := qos.ParseClasses(c.QoSClasses); err != nil {
			if c.qosLine > 0 {
				return fmt.Errorf("daemon: config line %d: qos_classes: %v", c.qosLine, err)
			}
			return fmt.Errorf("daemon: qos_classes: %v", err)
		}
	}
	return nil
}

func setString(dst *string, value string) error {
	if len(value) < 2 || value[0] != '"' || value[len(value)-1] != '"' {
		return fmt.Errorf("expected a quoted string, got %s", value)
	}
	*dst = value[1 : len(value)-1]
	return nil
}

func setInt(dst *int, value string) error {
	n, err := strconv.Atoi(value)
	if err != nil {
		return fmt.Errorf("expected an integer, got %q", value)
	}
	*dst = n
	return nil
}

func setBool(dst *bool, value string) error {
	switch value {
	case "0":
		*dst = false
	case "1":
		*dst = true
	default:
		return fmt.Errorf("expected 0 or 1, got %q", value)
	}
	return nil
}

func parseList(value string) ([]string, error) {
	value = strings.TrimSpace(value)
	if len(value) < 2 || value[0] != '[' || value[len(value)-1] != ']' {
		return nil, fmt.Errorf("expected a [\"...\"] list, got %s", value)
	}
	inner := strings.TrimSpace(value[1 : len(value)-1])
	if inner == "" {
		return nil, nil
	}
	parts := strings.Split(inner, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		var s string
		if err := setString(&s, strings.TrimSpace(p)); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
