package daemon

import (
	"strings"
	"testing"
)

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig("")
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.MaxWorkers != def.MaxWorkers || cfg.MaxClients != def.MaxClients ||
		cfg.TCPPort != def.TCPPort || cfg.LogLevel != def.LogLevel {
		t.Fatalf("%+v", cfg)
	}
}

func TestParseConfigFull(t *testing.T) {
	text := `
# govirtd configuration
unix_sock_path = "/tmp/govirt.sock"
admin_sock_path = "/tmp/govirt-admin.sock"
listen_tcp = 1
tcp_bind_address = "127.0.0.1"
tcp_port = 26509
auth_tcp = "sasl"
sasl_credentials = ["admin:secret", "ops:hunter2"]

min_workers = 3
max_workers = 40
prio_workers = 8

max_clients = 200
max_anonymous_clients = 30

log_level = 1
log_filters = "3:rpc 4:daemon.server"
log_outputs = "1:stderr 3:buffer"

metrics_address = "127.0.0.1:9177"
slow_call_threshold_ms = 100
`
	cfg, err := ParseConfig(text)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.UnixSocketPath != "/tmp/govirt.sock" || !cfg.ListenTCP || cfg.TCPPort != 26509 {
		t.Fatalf("%+v", cfg)
	}
	if cfg.AuthTCP != "sasl" || cfg.SASLCredentials["admin"] != "secret" || cfg.SASLCredentials["ops"] != "hunter2" {
		t.Fatalf("creds %+v", cfg.SASLCredentials)
	}
	if cfg.MinWorkers != 3 || cfg.MaxWorkers != 40 || cfg.PrioWorkers != 8 {
		t.Fatalf("%+v", cfg)
	}
	if cfg.MaxClients != 200 || cfg.MaxUnauthClients != 30 {
		t.Fatalf("%+v", cfg)
	}
	if cfg.LogLevel != 1 || !strings.Contains(cfg.LogFilters, "3:rpc") {
		t.Fatalf("%+v", cfg)
	}
	if cfg.MetricsAddress != "127.0.0.1:9177" || cfg.SlowCallThresholdMs != 100 {
		t.Fatalf("telemetry keys %+v", cfg)
	}
}

func TestParseConfigTelemetryDefaults(t *testing.T) {
	cfg, err := ParseConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MetricsAddress != "" {
		t.Fatalf("metrics listener on by default: %q", cfg.MetricsAddress)
	}
	if cfg.SlowCallThresholdMs != 250 {
		t.Fatalf("slow-call default %d", cfg.SlowCallThresholdMs)
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"max_workers",                      // no '='
		"warp_drive = 1",                   // unknown key
		`unix_sock_path = /no/quotes`,      // unquoted string
		"max_workers = lots",               // not an integer
		"listen_tcp = maybe",               // not a bool
		`auth_tcp = "kerberos"`,            // unknown auth
		`sasl_credentials = "admin:x"`,     // not a list
		`sasl_credentials = ["adminx"]`,    // missing colon
		"min_workers = 9\nmax_workers = 2", // min > max
		"max_clients = 0",
		"max_anonymous_clients = 9999",
		"tcp_port = 99999",
		"log_level = 9",
		`auth_tcp = "sasl"`, // sasl without credentials
		"slow_call_threshold_ms = -1",
		`metrics_address = unquoted`,
	}
	for _, text := range bad {
		if _, err := ParseConfig(text); err == nil {
			t.Errorf("ParseConfig(%q) accepted", text)
		}
	}
}

func TestParseConfigEmptyList(t *testing.T) {
	cfg, err := ParseConfig(`sasl_credentials = []`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SASLCredentials) != 0 {
		t.Fatalf("%+v", cfg.SASLCredentials)
	}
}
