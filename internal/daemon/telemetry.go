package daemon

import (
	"fmt"
	"time"

	"repro/internal/rpc"
	"repro/internal/telemetry"
)

// slowCallRing is how many recent slow calls the daemon's tracer keeps.
const slowCallRing = 64

// procStat caches the metric handles of one (program, procedure) pair so
// the dispatch hot path touches only atomics after the first call.
type procStat struct {
	program string
	proc    string
	calls   *telemetry.Counter
	errors  *telemetry.Counter
	latency *telemetry.Histogram
}

// dispatchStat returns the cached per-procedure stat, creating it on
// first dispatch. Returns nil when the server is uninstrumented.
func (s *Server) dispatchStat(program, proc uint32) *procStat {
	if s.metrics == nil {
		return nil
	}
	key := uint64(program)<<32 | uint64(proc)
	if v, ok := s.dispatchStats.Load(key); ok {
		return v.(*procStat)
	}
	progName := rpc.ProgramName(program)
	procName := rpc.ProcName(program, proc)
	labels := fmt.Sprintf("{program=%q,proc=%q}", progName, procName)
	st := &procStat{
		program: progName,
		proc:    procName,
		calls:   s.metrics.Counter("daemon_dispatch_total" + labels),
		errors:  s.metrics.Counter("daemon_dispatch_errors_total" + labels),
		latency: s.metrics.Histogram("daemon_dispatch_seconds" + labels),
	}
	actual, _ := s.dispatchStats.LoadOrStore(key, st)
	return actual.(*procStat)
}

// registerServerMetrics installs the per-server function metrics: client
// occupancy, rejected connections and workerpool state sampled straight
// from the server at snapshot time.
func registerServerMetrics(reg *telemetry.Registry, s *Server) {
	label := fmt.Sprintf("{server=%q}", s.name)
	reg.GaugeFunc("daemon_clients"+label, func() int64 {
		_, current, _ := s.Limits()
		return int64(current)
	})
	reg.CounterFunc("daemon_clients_rejected_total"+label, s.RejectedCount)
	reg.GaugeFunc("daemon_pool_workers"+label, func() int64 {
		return int64(s.pool.Params().NWorkers)
	})
	reg.GaugeFunc("daemon_pool_queue_depth"+label, func() int64 {
		st := s.pool.Stats()
		return int64(st.QueueLen + st.PrioQueueLen)
	})
	reg.GaugeFunc("daemon_pool_busy_workers"+label, func() int64 {
		st := s.pool.Stats()
		return int64(st.Busy + st.PrioBusy)
	})
	reg.CounterFunc("daemon_pool_jobs_done_total"+label, func() uint64 {
		st := s.pool.Stats()
		return st.OrdinaryDone + st.PriorityDone
	})
	reg.CounterFunc("daemon_pool_spawns_total"+label, func() uint64 {
		return s.pool.Stats().Spawns
	})
	// Queue wait observed per dequeued job, split by priority class.
	waitH := reg.Histogram("daemon_queue_wait_seconds" + label)
	s.pool.SetWaitObserver(func(wait time.Duration, priority bool) {
		waitH.Observe(wait)
	})
}
