package daemon

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/logging"
	"repro/internal/memnet"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/telemetry"
	"repro/internal/watch"
)

// replyBufPool recycles reply payload buffers between a Program's
// Dispatch and the post-write release in serveClient, so steady-state
// replies — including multi-kilobyte bulk monitoring payloads — reuse
// one buffer instead of allocating per call.
var replyBufPool = sync.Pool{
	New: func() interface{} { b := make([]byte, 0, 512); return &b },
}

func getReplyBuf() []byte { return (*replyBufPool.Get().(*[]byte))[:0] }

func putReplyBuf(b []byte) {
	if cap(b) == 0 || cap(b) > 64<<10 {
		return
	}
	replyBufPool.Put(&b)
}

// Program dispatches the procedures of one protocol program.
type Program interface {
	// ID returns the program number.
	ID() uint32
	// Dispatch executes one procedure and returns the marshalled reply
	// payload. Errors are transported to the client with their core code.
	// The server owns the returned payload and recycles it once the
	// reply is written (see putReplyBuf): implementations must return a
	// buffer they neither retain nor share.
	Dispatch(c *Client, proc uint32, payload []byte) ([]byte, error)
	// IsPriority reports whether the procedure is guaranteed to finish
	// without hypervisor involvement and may run on priority workers.
	IsPriority(proc uint32) bool
	// ClientClosed releases any per-client state the program holds.
	ClientClosed(c *Client)
}

// ServiceConfig describes one listening socket of a server.
type ServiceConfig struct {
	Transport Transport
	AuthSASL  bool // require SASL authentication before dispatch
	ReadOnly  bool // mark clients read-only

	// WriteCoalesce, when positive, batches this service's outgoing
	// frames behind a flush-on-idle buffered writer of that many bytes
	// (see rpc.Conn.EnableWriteCoalescing). Zero writes each frame
	// directly.
	WriteCoalesce int
}

// ClientLimits are the runtime-adjustable connection limits.
type ClientLimits struct {
	MaxClients       int
	MaxUnauthClients int
}

// Server accepts client connections and dispatches their requests into
// its workerpool. A daemon can host several servers (e.g. the management
// server and the admin server) each with independent limits.
type Server struct {
	name string
	log  *logging.Logger
	pool *Workerpool

	metrics       *telemetry.Registry // nil = uninstrumented
	tracer        *telemetry.Tracer   // nil = untraced
	dispatchStats sync.Map            // uint64(program)<<32|proc → *procStat
	callTimeout   atomic.Int64        // per-call dispatch deadline in nanos; 0 = none

	// Watch-stream subscriber bounds handed to every new subscription
	// (see internal/watch). Resolved values: depth >= 1, coalesce >= 0
	// (0 = coalescing disabled).
	eventQueueDepth atomic.Int64
	eventCoalesce   atomic.Int64 // nanos

	// Admission engine enforced between frame decode and dispatch.
	// Replaced wholesale on config updates; nil = QoS disabled.
	qosEng atomic.Pointer[qos.Engine]

	mu         sync.Mutex
	clients    map[uint64]*Client
	nextClient uint64
	limits     ClientLimits
	programs   map[uint32]Program
	listeners  []net.Listener
	closed     bool
	rejected   uint64

	wg sync.WaitGroup

	// SASL credential store for services requiring authentication.
	creds map[string]string
}

func newServer(name string, pool *Workerpool, limits ClientLimits, log *logging.Logger) *Server {
	s := &Server{
		name:     name,
		log:      log,
		pool:     pool,
		clients:  make(map[uint64]*Client),
		limits:   limits,
		programs: make(map[uint32]Program),
		creds:    make(map[string]string),
	}
	s.eventQueueDepth.Store(watch.DefaultDepth)
	s.eventCoalesce.Store(int64(watch.DefaultCoalesceWindow))
	return s
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// SetQoS installs (or with nil, removes) the admission engine enforced
// between frame decode and dispatch. The engine is swapped atomically;
// in-flight calls admitted under the old engine settle against it, new
// calls resolve classes from the new one. The pool's shed watermark
// follows the engine's.
func (s *Server) SetQoS(eng *qos.Engine) {
	if eng != nil {
		eng.Instrument(s.metrics)
		s.pool.SetShedWatermark(eng.ShedWatermark())
	} else {
		s.pool.SetShedWatermark(0)
	}
	s.qosEng.Store(eng)
}

// QoS returns the installed admission engine (nil = QoS disabled).
func (s *Server) QoS() *qos.Engine { return s.qosEng.Load() }

// SetCallTimeout bounds every dispatched call: a call that has not
// replied within d (queue wait included) is answered with ErrTimedOut;
// its late result, if any, is discarded. Zero disables the bound.
func (s *Server) SetCallTimeout(d time.Duration) { s.callTimeout.Store(int64(d)) }

// CallTimeout returns the per-call dispatch deadline (zero = none).
func (s *Server) CallTimeout() time.Duration { return time.Duration(s.callTimeout.Load()) }

// SetEventStreamConfig adjusts the subscriber-queue bounds applied to
// watch streams opened after the call. depth <= 0 restores the default
// depth; window < 0 restores the default coalesce window, zero disables
// coalescing. Existing subscriptions keep their bounds.
func (s *Server) SetEventStreamConfig(depth int, window time.Duration) {
	if depth <= 0 {
		depth = watch.DefaultDepth
	}
	if window < 0 {
		window = watch.DefaultCoalesceWindow
	}
	s.eventQueueDepth.Store(int64(depth))
	s.eventCoalesce.Store(int64(window))
}

// EventStreamConfig returns the subscriber-queue bounds for new watch
// streams.
func (s *Server) EventStreamConfig() (depth int, window time.Duration) {
	return int(s.eventQueueDepth.Load()), time.Duration(s.eventCoalesce.Load())
}

// Pool exposes the server's workerpool (admin interface).
func (s *Server) Pool() *Workerpool { return s.pool }

// AddProgram registers a protocol program.
func (s *Server) AddProgram(p Program) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.programs[p.ID()] = p
}

// SetCredentials installs the SASL user database for authenticating
// services.
func (s *Server) SetCredentials(creds map[string]string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.creds = make(map[string]string, len(creds))
	for k, v := range creds {
		s.creds[k] = v
	}
}

// Limits returns the current client limits and counts.
func (s *Server) Limits() (limits ClientLimits, current, currentUnauth int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.clients {
		if !c.Authenticated() {
			currentUnauth++
		}
	}
	return s.limits, len(s.clients), currentUnauth
}

// SetLimits adjusts the client limits at runtime. Existing connections
// are never cut by a lowered limit; only new connections see it.
func (s *Server) SetLimits(l ClientLimits) error {
	if l.MaxClients < 1 {
		return core.Errorf(core.ErrInvalidArg, "max clients must be >= 1")
	}
	if l.MaxUnauthClients < 0 || l.MaxUnauthClients > l.MaxClients {
		return core.Errorf(core.ErrInvalidArg,
			"max unauthenticated clients must be within [0, max clients]")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limits = l
	return nil
}

// RejectedCount returns how many connections were refused over limits.
func (s *Server) RejectedCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// Clients returns the connected clients sorted by id.
func (s *Server) Clients() []*Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Client, 0, len(s.clients))
	for _, c := range s.clients {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Client looks up a connected client by id.
func (s *Server) Client(id uint64) (*Client, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.clients[id]
	return c, ok
}

// Listen starts accepting connections on the listener with the given
// service configuration. It returns immediately.
func (s *Server) Listen(l net.Listener, cfg ServiceConfig) {
	s.mu.Lock()
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			s.accept(nc, cfg)
		}
	}()
}

// ListenUnix starts a unix-socket service at path.
func (s *Server) ListenUnix(path string, cfg ServiceConfig) error {
	l, err := net.Listen("unix", path)
	if err != nil {
		return fmt.Errorf("daemon: listen unix %s: %w", path, err)
	}
	cfg.Transport = TransportUnix
	s.Listen(l, cfg)
	return nil
}

// ListenMem starts an in-process service on the named memnet endpoint,
// reachable with a "+mem" transport URI whose host is the name. The
// scale harness uses this to run very large simulated fleets without
// consuming sockets or ports; the full RPC stack still runs.
func (s *Server) ListenMem(name string, cfg ServiceConfig) error {
	l, err := memnet.Listen(name)
	if err != nil {
		return fmt.Errorf("daemon: %w", err)
	}
	cfg.Transport = TransportMem
	s.Listen(l, cfg)
	return nil
}

// ListenTCP starts a TCP service at addr and returns the bound address
// (useful with ":0").
func (s *Server) ListenTCP(addr string, cfg ServiceConfig) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("daemon: listen tcp %s: %w", addr, err)
	}
	if cfg.Transport == TransportUnix {
		cfg.Transport = TransportTCP
	}
	s.Listen(l, cfg)
	return l.Addr().String(), nil
}

// accept admits or rejects a new connection under the client limits.
func (s *Server) accept(nc net.Conn, cfg ServiceConfig) {
	identity := identityFor(nc, cfg.Transport)
	identity.ReadOnly = cfg.ReadOnly

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	unauth := 0
	for _, c := range s.clients {
		if !c.Authenticated() {
			unauth++
		}
	}
	if len(s.clients) >= s.limits.MaxClients ||
		(cfg.AuthSASL && s.limits.MaxUnauthClients > 0 && unauth >= s.limits.MaxUnauthClients) {
		s.rejected++
		s.mu.Unlock()
		s.log.Warnf("daemon.server", "server %s: connection limit reached, rejecting %v",
			s.name, nc.RemoteAddr())
		nc.Close()
		return
	}
	s.nextClient++
	client := &Client{
		id:        s.nextClient,
		server:    s,
		conn:      rpc.NewConn(nc),
		identity:  identity,
		connected: time.Now(),
	}
	if cfg.WriteCoalesce > 0 {
		client.conn.EnableWriteCoalescing(cfg.WriteCoalesce)
	}
	client.authenticated = !cfg.AuthSASL
	s.clients[client.id] = client
	s.mu.Unlock()
	s.log.Infof("daemon.server", "server %s: client %d connected via %s",
		s.name, client.id, identity.Transport)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.serveClient(client)
	}()
}

// serveClient reads requests until the connection drops, dispatching
// each into the workerpool. Frames arrive in pooled buffers: branches
// that never reach dispatch release immediately, and dispatched calls
// release as soon as the program's Dispatch returns (Unmarshal copies
// everything it keeps out of the payload).
func (s *Server) serveClient(c *Client) {
	// QoS state is resolved lazily and cached across calls: serveClient
	// is the connection's only reader, so plain locals suffice. The
	// cache invalidates when the engine pointer changes (live config
	// update) or the SASL identity changes (authentication completed).
	var (
		qsEng  *qos.Engine
		qsUser string
		qs     *qos.ClientState
	)
	for {
		f, err := c.conn.ReadFrame()
		if err != nil {
			s.removeClient(c)
			return
		}
		h := f.Header
		if rpc.MsgType(h.Type) == rpc.TypePing {
			f.Release()
			pong := h
			pong.Type = uint32(rpc.TypePong)
			if err := c.Send(pong, nil); err != nil {
				s.log.Warnf("daemon.server", "client %d: send pong: %v", c.id, err)
			}
			continue
		}
		if rpc.MsgType(h.Type) != rpc.TypeCall {
			f.Release()
			s.log.Warnf("daemon.server", "client %d sent non-call message type %d", c.id, h.Type)
			continue
		}
		s.mu.Lock()
		prog, ok := s.programs[h.Program]
		s.mu.Unlock()
		if !ok {
			f.Release()
			s.replyError(c, h, core.Errorf(core.ErrNoSupport, "unknown program 0x%x", h.Program))
			continue
		}
		if h.Version != rpc.ProtocolVersion {
			f.Release()
			s.replyError(c, h, core.Errorf(core.ErrNoSupport, "unsupported protocol version %d", h.Version))
			continue
		}
		authed, saslUser := c.authState()
		if !authed && !isAuthProc(h.Procedure) {
			f.Release()
			s.replyError(c, h, core.Errorf(core.ErrAuthFailed, "authentication required"))
			continue
		}
		// Admission control: resolve the client's class and apply
		// ACL, rate limit and inflight quota before any resources are
		// committed — a rejected call costs one error reply.
		var cqs *qos.ClientState
		if eng := s.qosEng.Load(); eng != nil {
			if qs == nil || eng != qsEng || saslUser != qsUser {
				qsEng, qsUser = eng, saslUser
				qs = eng.Resolve(saslUser)
			}
			if aerr := qosAdmit(qs, h, f.Payload); aerr != nil {
				f.Release()
				s.replyError(c, h, aerr)
				continue
			}
			cqs = qs
		}
		if spec, ok := faultpoint.Default.Eval("daemon.kill"); ok && spec.Mode == faultpoint.ModeKill {
			f.Release()
			if cqs != nil {
				cqs.EndCall() // the admitted call never dispatches
			}
			s.log.Warnf("daemon.server", "server %s: injected kill", s.name)
			go s.Kill()
			return
		}
		hdr := h
		frame := f
		st := s.dispatchStat(h.Program, h.Procedure)
		var span *telemetry.Span
		if st != nil {
			span = s.tracer.Start(st.program, st.proc, c.id, hdr.Serial)
		}
		// The dispatch deadline starts now, so time spent queued counts
		// against it — a wedged pool times calls out just like a wedged
		// hypervisor. The replied flag guarantees exactly one reply per
		// serial whichever side (timer or worker) finishes first.
		var replied *atomic.Bool
		var timer *time.Timer
		if d := s.CallTimeout(); d > 0 {
			replied = new(atomic.Bool)
			flag, header := replied, hdr
			timer = time.AfterFunc(d, func() {
				if flag.CompareAndSwap(false, true) {
					s.replyError(c, header, core.Errorf(core.ErrTimedOut,
						"call %d exceeded %v dispatch deadline", header.Procedure, d))
				}
			})
		}
		enqueued := time.Now()
		// One closure serves both outcomes — run or shed — so the QoS
		// path allocates exactly what the plain path always has: this
		// closure, and nothing else.
		job := func(shed bool, wait time.Duration) {
			if cqs != nil {
				cqs.MarkDequeued()
			}
			if shed {
				frame.Release()
				if timer != nil {
					timer.Stop()
				}
				var serr error
				if cqs != nil {
					serr = cqs.RejectShed()
					cqs.EndCall()
				} else {
					serr = core.Overloadedf(qos.ShedRetryHint, "queued call shed under overload")
				}
				if replied == nil || replied.CompareAndSwap(false, true) {
					s.replyError(c, hdr, serr)
				}
				return
			}
			start := time.Now()
			reply, err := prog.Dispatch(c, hdr.Procedure, frame.Payload)
			frame.Release()
			if cqs != nil {
				cqs.EndCall()
			}
			if st != nil {
				st.calls.Inc()
				st.latency.Observe(time.Since(start))
				if err != nil {
					st.errors.Inc()
				}
				if span != nil {
					span.QueueWait = start.Sub(enqueued)
					span.Finish()
				}
			}
			if timer != nil {
				timer.Stop()
			}
			if replied != nil && !replied.CompareAndSwap(false, true) {
				putReplyBuf(reply)
				return // the deadline already answered this serial
			}
			if err != nil {
				putReplyBuf(reply)
				s.replyError(c, hdr, err)
				return
			}
			out := hdr
			out.Type = uint32(rpc.TypeReply)
			out.Status = uint32(rpc.StatusOK)
			if err := c.Send(out, reply); err != nil {
				s.log.Warnf("daemon.server", "client %d: send reply: %v", c.id, err)
			}
			putReplyBuf(reply)
		}
		priority := prog.IsPriority(hdr.Procedure)
		shedPrio := int8(5)
		var maxWait time.Duration
		if cqs != nil {
			// Control-plane classes ride the priority workers for every
			// procedure, so they stay responsive while ordinary workers
			// are saturated by data-plane tenants.
			priority = priority || cqs.Control()
			shedPrio = cqs.ShedPriority()
			maxWait = cqs.MaxQueueWait()
			cqs.MarkQueued()
		}
		if err := s.pool.SubmitQoS(job, priority, shedPrio, maxWait); err != nil {
			frame.Release() // the job never ran
			if cqs != nil {
				cqs.MarkDequeued()
				cqs.EndCall()
			}
			if timer != nil {
				timer.Stop()
			}
			if replied == nil || replied.CompareAndSwap(false, true) {
				s.replyError(c, h, core.Errorf(core.ErrInternal, "workerpool: %v", err))
			}
		}
	}
}

// qosAdmit applies the resolved class's checks to one decoded call, in
// authorization-then-throttle order: ACL (auth handshake procedures are
// exempt, they gate everything else), token-bucket rate limit, inflight
// quota. On admission the inflight slot is held; every downstream path
// must release it via EndCall.
func qosAdmit(qs *qos.ClientState, h rpc.Header, payload []byte) error {
	if qs.HasACL() && !isAuthProc(h.Procedure) {
		var obj []byte
		if qs.NeedObject() {
			obj, _ = rpc.PeekString(payload)
		}
		if name := rpc.ProcName(h.Program, h.Procedure); !qs.Allow(name, obj) {
			return qs.RejectACL(name)
		}
	}
	if retry, ok := qs.TakeToken(time.Now()); !ok {
		return qs.RejectRate(retry)
	}
	if !qs.TryInflight() {
		return qs.RejectInflight()
	}
	return nil
}

func (s *Server) replyError(c *Client, h rpc.Header, err error) {
	out := h
	out.Type = uint32(rpc.TypeReply)
	out.Status = uint32(rpc.StatusError)
	var retryMs uint32
	if ra := core.RetryAfterOf(err); ra > 0 {
		// Round up so sub-millisecond hints survive the wire encoding.
		retryMs = uint32((ra + time.Millisecond - 1) / time.Millisecond)
	}
	payload, merr := rpc.AppendMarshal(getReplyBuf(), &rpc.ErrorPayload{
		Code:         uint32(core.CodeOf(err)),
		Message:      err.Error(),
		RetryAfterMs: retryMs,
	})
	if merr != nil {
		putReplyBuf(payload)
		s.log.Errorf("daemon.server", "marshal error payload: %v", merr)
		return
	}
	if serr := c.Send(out, payload); serr != nil {
		s.log.Warnf("daemon.server", "client %d: send error reply: %v", c.id, serr)
	}
	putReplyBuf(payload)
}

func (s *Server) removeClient(c *Client) {
	c.Close() //nolint:errcheck
	s.mu.Lock()
	_, present := s.clients[c.id]
	delete(s.clients, c.id)
	programs := make([]Program, 0, len(s.programs))
	for _, p := range s.programs {
		programs = append(programs, p)
	}
	s.mu.Unlock()
	if !present {
		return
	}
	for _, p := range programs {
		p.ClientClosed(c)
	}
	s.log.Infof("daemon.server", "server %s: client %d disconnected", s.name, c.id)
}

// Shutdown closes listeners and all client connections and stops the
// workerpool.
func (s *Server) Shutdown() {
	s.shutdown(0)
}

// ShutdownGrace is the graceful stop: listeners close first so no new
// work arrives, then in-flight worker-pool jobs get up to grace to
// finish (and their replies to flush) before client connections drop.
// Grace zero degenerates to Shutdown.
func (s *Server) ShutdownGrace(grace time.Duration) {
	s.shutdown(grace)
}

func (s *Server) shutdown(grace time.Duration) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	listeners := s.listeners
	clients := make([]*Client, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	if grace > 0 {
		if !s.pool.Drain(grace) {
			s.log.Warnf("daemon.server",
				"server %s: worker pool still busy after %v grace; dropping remaining work", s.name, grace)
		}
	}
	for _, c := range clients {
		c.Close() //nolint:errcheck
	}
	s.wg.Wait()
	s.pool.Shutdown()
}

// Kill is the simulated kill -9: listeners, client connections and the
// worker pool are torn down immediately — no drain, no flushing, queued
// jobs dropped. Unlike Shutdown it does not wait for serving goroutines,
// so it is safe to call from one (the daemon.kill faultpoint does). Only
// state already journalled to the state_dir survives, which is exactly
// what the chaos suite asserts.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	listeners := s.listeners
	clients := make([]*Client, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		l.Close()
	}
	for _, c := range clients {
		c.Close() //nolint:errcheck
	}
	s.pool.Shutdown()
}

// Daemon hosts one or more servers plus the shared logging and telemetry
// subsystems.
type Daemon struct {
	log     *logging.Logger
	metrics *telemetry.Registry // nil = uninstrumented
	tracer  *telemetry.Tracer   // nil = untraced

	mu      sync.Mutex
	servers map[string]*Server
	order   []string

	callTimeout   atomic.Int64 // default dispatch deadline for new servers
	shutdownGrace atomic.Int64 // drain budget used by Shutdown

	eventQueueDepth atomic.Int64 // watch queue depth for new servers
	eventCoalesce   atomic.Int64 // watch coalesce window nanos for new servers
}

// New creates an empty daemon around the given logger, reporting into
// the process-wide telemetry registry.
func New(log *logging.Logger) *Daemon {
	return NewWithTelemetry(log, telemetry.Default)
}

// NewWithTelemetry creates a daemon reporting into the given registry. A
// nil registry disables all instrumentation and tracing — the dispatch
// path then carries no telemetry cost at all (used as the benchmark
// baseline).
func NewWithTelemetry(log *logging.Logger, reg *telemetry.Registry) *Daemon {
	if log == nil {
		log = logging.NewQuiet(logging.Error)
	}
	d := &Daemon{log: log, metrics: reg, servers: make(map[string]*Server)}
	d.eventQueueDepth.Store(watch.DefaultDepth)
	d.eventCoalesce.Store(int64(watch.DefaultCoalesceWindow))
	if reg != nil {
		d.tracer = telemetry.NewTracer(slowCallRing, telemetry.DefaultSlowCallThreshold)
		// Slow calls surface as structured warnings under their own
		// module, so the existing log filter machinery controls them.
		d.tracer.OnSlow(func(sc telemetry.SlowCall) {
			d.log.Warnf("daemon.slowcall",
				"slow call: %s.%s client=%d serial=%d queue=%v total=%v",
				sc.Program, sc.Proc, sc.Client, sc.Serial, sc.QueueWait, sc.Duration)
		})
	}
	return d
}

// Log exposes the daemon's logging subsystem (admin interface).
func (d *Daemon) Log() *logging.Logger { return d.log }

// Metrics exposes the daemon's registry; nil when uninstrumented.
func (d *Daemon) Metrics() *telemetry.Registry { return d.metrics }

// Tracer exposes the daemon's call tracer; nil when uninstrumented.
func (d *Daemon) Tracer() *telemetry.Tracer { return d.tracer }

// AddServer creates a named server with its own workerpool and limits.
func (d *Daemon) AddServer(name string, min, max, prio int, limits ClientLimits) (*Server, error) {
	if name == "" {
		return nil, core.Errorf(core.ErrInvalidArg, "server needs a name")
	}
	pool, err := NewWorkerpool(min, max, prio)
	if err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	if limits.MaxClients == 0 {
		limits.MaxClients = 120
	}
	s := newServer(name, pool, limits, d.log)
	s.metrics = d.metrics
	s.tracer = d.tracer
	s.SetCallTimeout(time.Duration(d.callTimeout.Load()))
	s.SetEventStreamConfig(int(d.eventQueueDepth.Load()), time.Duration(d.eventCoalesce.Load()))
	d.mu.Lock()
	if _, dup := d.servers[name]; dup {
		d.mu.Unlock()
		pool.Shutdown()
		return nil, core.Errorf(core.ErrDuplicate, "server %q already exists", name)
	}
	d.servers[name] = s
	d.order = append(d.order, name)
	d.mu.Unlock()
	if d.metrics != nil {
		registerServerMetrics(d.metrics, s)
	}
	return s, nil
}

// Server looks up a server by name.
func (d *Daemon) Server(name string) (*Server, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.servers[name]
	return s, ok
}

// Servers returns the server names in creation order.
func (d *Daemon) Servers() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, len(d.order))
	copy(out, d.order)
	return out
}

// SetCallTimeout sets the dispatch deadline applied to every current and
// future server of this daemon. Zero disables it.
func (d *Daemon) SetCallTimeout(timeout time.Duration) {
	d.callTimeout.Store(int64(timeout))
	d.mu.Lock()
	servers := make([]*Server, 0, len(d.servers))
	for _, s := range d.servers {
		servers = append(servers, s)
	}
	d.mu.Unlock()
	for _, s := range servers {
		s.SetCallTimeout(timeout)
	}
}

// SetEventStreamConfig sets the watch-stream subscriber bounds applied
// to every current and future server of this daemon. depth <= 0 and
// window < 0 restore the defaults; window zero disables coalescing.
func (d *Daemon) SetEventStreamConfig(depth int, window time.Duration) {
	if depth <= 0 {
		depth = watch.DefaultDepth
	}
	if window < 0 {
		window = watch.DefaultCoalesceWindow
	}
	d.eventQueueDepth.Store(int64(depth))
	d.eventCoalesce.Store(int64(window))
	d.mu.Lock()
	servers := make([]*Server, 0, len(d.servers))
	for _, s := range d.servers {
		servers = append(servers, s)
	}
	d.mu.Unlock()
	for _, s := range servers {
		s.SetEventStreamConfig(depth, window)
	}
}

// SetShutdownGrace sets how long Shutdown lets in-flight calls drain
// before dropping connections. Zero (the default) shuts down abruptly.
func (d *Daemon) SetShutdownGrace(grace time.Duration) {
	d.shutdownGrace.Store(int64(grace))
}

// Shutdown stops every server, draining in-flight calls for the
// configured grace period first.
func (d *Daemon) Shutdown() {
	grace := time.Duration(d.shutdownGrace.Load())
	d.mu.Lock()
	servers := make([]*Server, 0, len(d.servers))
	for _, s := range d.servers {
		servers = append(servers, s)
	}
	d.mu.Unlock()
	for _, s := range servers {
		s.ShutdownGrace(grace)
	}
}

// Kill tears every server down abruptly — the in-process stand-in for
// kill -9, pairing with state_dir persistence in the chaos suite.
func (d *Daemon) Kill() {
	d.mu.Lock()
	servers := make([]*Server, 0, len(d.servers))
	for _, s := range d.servers {
		servers = append(servers, s)
	}
	d.mu.Unlock()
	for _, s := range servers {
		s.Kill()
	}
}
