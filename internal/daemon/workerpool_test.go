package daemon

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestNewWorkerpoolValidation(t *testing.T) {
	bad := [][3]int{{-1, 5, 0}, {0, 0, 0}, {6, 5, 0}, {0, 5, -1}}
	for _, c := range bad {
		if _, err := NewWorkerpool(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewWorkerpool(%v) accepted", c)
		}
	}
	p, err := NewWorkerpool(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	params := p.Params()
	if params.MinWorkers != 2 || params.MaxWorkers != 4 || params.PrioWorkers != 1 || params.NWorkers != 2 {
		t.Fatalf("%+v", params)
	}
}

func TestJobsExecute(t *testing.T) {
	p, err := NewWorkerpool(1, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	var done atomic.Int64
	for i := 0; i < 100; i++ {
		if err := p.Submit(func() { done.Add(1) }, false); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "100 jobs", func() bool { return done.Load() == 100 })
	if p.Params().JobQueueDepth != 0 {
		t.Fatalf("queue not drained: %+v", p.Params())
	}
}

func TestPoolGrowsOnDemandUpToMax(t *testing.T) {
	p, err := NewWorkerpool(1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	block := make(chan struct{})
	var running atomic.Int64
	for i := 0; i < 6; i++ {
		p.Submit(func() { //nolint:errcheck
			running.Add(1)
			<-block
		}, false)
	}
	// Three workers max, so exactly three jobs run concurrently.
	waitFor(t, "3 concurrent jobs", func() bool { return running.Load() == 3 })
	time.Sleep(10 * time.Millisecond)
	if running.Load() != 3 {
		t.Fatalf("running %d with max 3", running.Load())
	}
	params := p.Params()
	if params.NWorkers != 3 || params.JobQueueDepth != 3 {
		t.Fatalf("%+v", params)
	}
	close(block)
	waitFor(t, "all jobs", func() bool { return running.Load() == 6 })
}

func TestPriorityWorkersSurviveBusyOrdinaries(t *testing.T) {
	p, err := NewWorkerpool(1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	// Wedge every ordinary worker (simulating hung hypervisor calls).
	block := make(chan struct{})
	for i := 0; i < 2; i++ {
		p.Submit(func() { <-block }, false) //nolint:errcheck
	}
	waitFor(t, "ordinary workers busy", func() bool { return p.Params().FreeWorkers == 0 })
	// A priority job must still run.
	ran := make(chan struct{})
	p.Submit(func() { close(ran) }, true) //nolint:errcheck
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("priority job starved by wedged ordinary workers")
	}
	// An ordinary job queued now must NOT run (priority workers skip it).
	var ordinaryRan atomic.Bool
	p.Submit(func() { ordinaryRan.Store(true) }, false) //nolint:errcheck
	time.Sleep(20 * time.Millisecond)
	if ordinaryRan.Load() {
		t.Fatal("priority worker executed an ordinary job")
	}
	close(block)
	waitFor(t, "ordinary job after unblock", func() bool { return ordinaryRan.Load() })
}

func TestSetParamsGrowAndShrink(t *testing.T) {
	p, err := NewWorkerpool(2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown()
	// Grow the minimum: workers spawn immediately.
	if err := p.SetParams(4, 8, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "grow to min 4", func() bool { return p.Params().NWorkers >= 4 })
	// Shrink the maximum below the live count: idle workers exit.
	if err := p.SetParams(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "shrink to max 2", func() bool { return p.Params().NWorkers <= 2 })
	// Grow priority workers.
	if err := p.SetParams(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "prio grow", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.nPrio == 3
	})
	// Shrink priority workers.
	if err := p.SetParams(1, 2, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "prio shrink", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.nPrio == 0
	})
	// Invalid updates are rejected and change nothing.
	if err := p.SetParams(5, 2, 0); err == nil {
		t.Fatal("min>max accepted")
	}
	if err := p.SetParams(0, 0, 0); err == nil {
		t.Fatal("max=0 accepted")
	}
	params := p.Params()
	if params.MinWorkers != 1 || params.MaxWorkers != 2 {
		t.Fatalf("failed SetParams mutated state: %+v", params)
	}
}

func TestShutdown(t *testing.T) {
	p, err := NewWorkerpool(2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Shutdown()
	if err := p.Submit(func() {}, false); err == nil {
		t.Fatal("submit after shutdown accepted")
	}
	if err := p.SetParams(1, 2, 0); err == nil {
		t.Fatal("SetParams after shutdown accepted")
	}
	waitFor(t, "workers exit", func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.nWorkers == 0 && p.nPrio == 0
	})
}

func TestSubmitNil(t *testing.T) {
	p, _ := NewWorkerpool(1, 2, 0)
	defer p.Shutdown()
	if err := p.Submit(nil, false); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestStatsCounters(t *testing.T) {
	p, _ := NewWorkerpool(1, 2, 1)
	defer p.Shutdown()
	var wg sync.WaitGroup
	wg.Add(2)
	p.Submit(func() { wg.Done() }, false) //nolint:errcheck
	p.Submit(func() { wg.Done() }, true)  //nolint:errcheck
	wg.Wait()
	waitFor(t, "counters", func() bool {
		s := p.Stats()
		return s.OrdinaryDone+s.PriorityDone == 2
	})
	if spawns := p.Stats().Spawns; spawns < 2 {
		t.Fatalf("spawns %d", spawns)
	}
}

func TestStatsOccupancyAndQueueDepth(t *testing.T) {
	p, _ := NewWorkerpool(1, 1, 0)
	defer p.Shutdown()
	block := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() { close(started); <-block }, false) //nolint:errcheck
	<-started
	// One more job queues behind the single wedged worker.
	p.Submit(func() {}, false) //nolint:errcheck
	waitFor(t, "busy worker and queued job", func() bool {
		s := p.Stats()
		return s.Busy == 1 && s.QueueLen == 1
	})
	// A priority job with no priority workers sits in the priority queue.
	p.Submit(func() {}, true) //nolint:errcheck
	waitFor(t, "priority backlog", func() bool { return p.Stats().PrioQueueLen == 1 })
	close(block)
	waitFor(t, "drain", func() bool {
		s := p.Stats()
		return s.Busy == 0 && s.QueueLen == 0 && s.PrioQueueLen == 0
	})
}

func TestWaitObserver(t *testing.T) {
	p, _ := NewWorkerpool(1, 1, 0)
	defer p.Shutdown()
	var mu sync.Mutex
	var waits []time.Duration
	var prios []bool
	p.SetWaitObserver(func(w time.Duration, priority bool) {
		mu.Lock()
		waits = append(waits, w)
		prios = append(prios, priority)
		mu.Unlock()
	})
	block := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() { close(started); <-block }, false) //nolint:errcheck
	<-started
	// This job waits in the queue while the worker is wedged.
	p.Submit(func() {}, true) //nolint:errcheck
	time.Sleep(20 * time.Millisecond)
	close(block)
	waitFor(t, "observer calls", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(waits) == 2
	})
	mu.Lock()
	defer mu.Unlock()
	// The queued priority job waited at least as long as we slept; the
	// first job was dequeued immediately.
	if !prios[1] {
		t.Fatalf("priority flag lost: %v", prios)
	}
	if waits[1] < 15*time.Millisecond {
		t.Fatalf("queued job wait %v", waits[1])
	}
}

func TestQuickPoolInvariants(t *testing.T) {
	// Property: after any sequence of SetParams and Submit, the live
	// worker count converges within [min, max] and every job completes.
	f := func(ops []uint8) bool {
		p, err := NewWorkerpool(1, 4, 1)
		if err != nil {
			return false
		}
		defer p.Shutdown()
		var done atomic.Int64
		var submitted int64
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				p.Submit(func() { done.Add(1) }, op%2 == 0) //nolint:errcheck
				submitted++
			case 2:
				min := int(op%3) + 1
				max := min + int(op%5)
				if p.SetParams(min, max, int(op%3)) != nil {
					return false
				}
			case 3:
				params := p.Params()
				if params.MinWorkers > params.MaxWorkers {
					return false
				}
			}
		}
		deadline := time.Now().Add(5 * time.Second)
		for done.Load() != submitted && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if done.Load() != submitted {
			return false
		}
		// Worker count converges within limits.
		deadline = time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			params := p.Params()
			if params.NWorkers >= params.MinWorkers && params.NWorkers <= params.MaxWorkers {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
