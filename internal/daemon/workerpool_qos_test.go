package daemon

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// obsRecorder collects wait-observer callbacks for assertions.
type obsRecorder struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (o *obsRecorder) record(w time.Duration, _ bool) {
	o.mu.Lock()
	o.waits = append(o.waits, w)
	o.mu.Unlock()
}

func (o *obsRecorder) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.waits)
}

// wedgePool occupies the pool's single ordinary worker with a job that
// blocks until the returned channel is closed.
func wedgePool(t *testing.T, p *Workerpool) chan struct{} {
	t.Helper()
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func() { close(started); <-block }, false); err != nil {
		t.Fatal(err)
	}
	<-started
	return block
}

func TestQoSSubmitWatermarkEvictsLowestPriority(t *testing.T) {
	p, _ := NewWorkerpool(1, 1, 0)
	defer p.Shutdown()
	obs := &obsRecorder{}
	p.SetWaitObserver(obs.record)
	p.SetShedWatermark(2)
	block := wedgePool(t, p)

	// Two bronze-priority calls fill the queue to the watermark.
	var shedState [2]atomic.Int32 // 0 = not run, 1 = ran, 2 = shed
	for i := 0; i < 2; i++ {
		i := i
		err := p.SubmitQoS(func(shed bool, wait time.Duration) {
			if shed {
				shedState[i].Store(2)
			} else {
				shedState[i].Store(1)
			}
		}, false, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	// A gold-priority arrival over the watermark evicts one bronze call
	// immediately, on the submitter's goroutine.
	var goldShed atomic.Bool
	var goldRan atomic.Bool
	err := p.SubmitQoS(func(shed bool, wait time.Duration) {
		goldShed.Store(shed)
		goldRan.Store(true)
	}, false, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := shedState[0].Load() + shedState[1].Load(); n != 2 {
		t.Fatalf("exactly one bronze call must be shed at submit time, states %v %v",
			shedState[0].Load(), shedState[1].Load())
	}
	// The shed call's queue wait was observed (it must not vanish from
	// the wait histogram): wedge job dequeue + victim = 2 observations.
	if got := obs.count(); got != 2 {
		t.Fatalf("wait observer fired %d times, want 2 (wedge dequeue + victim)", got)
	}
	if got := p.Stats().Shed; got != 1 {
		t.Fatalf("Shed counter = %d, want 1", got)
	}

	close(block)
	waitFor(t, "surviving jobs", func() bool {
		return goldRan.Load() && shedState[0].Load()+shedState[1].Load() == 3
	})
	if goldShed.Load() {
		t.Fatal("gold call was shed")
	}
}

func TestQoSSubmitWatermarkShedsIncomingLowest(t *testing.T) {
	p, _ := NewWorkerpool(1, 1, 0)
	defer p.Shutdown()
	obs := &obsRecorder{}
	p.SetWaitObserver(obs.record)
	p.SetShedWatermark(1)
	block := wedgePool(t, p)
	defer close(block)

	// Queue holds one gold call; a bronze arrival over the watermark
	// finds no lower-priority victim and is shed itself, synchronously.
	if err := p.SubmitQoS(func(bool, time.Duration) {}, false, 8, 0); err != nil {
		t.Fatal(err)
	}
	var shed atomic.Bool
	done := make(chan struct{})
	err := p.SubmitQoS(func(s bool, wait time.Duration) {
		shed.Store(s)
		close(done)
	}, false, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("incoming-shed job not invoked synchronously")
	}
	if !shed.Load() {
		t.Fatal("incoming lowest-priority call must be shed")
	}
	if got := p.Stats().Shed; got != 1 {
		t.Fatalf("Shed counter = %d, want 1", got)
	}
}

func TestQoSSubmitPlainEntriesNeverEvicted(t *testing.T) {
	p, _ := NewWorkerpool(1, 1, 0)
	defer p.Shutdown()
	p.SetShedWatermark(1)
	block := wedgePool(t, p)

	// The queue holds a plain (non-QoS) entry. It is not a victim
	// candidate, so the arriving QoS call is shed instead.
	var plainRan atomic.Bool
	if err := p.Submit(func() { plainRan.Store(true) }, false); err != nil {
		t.Fatal(err)
	}
	var shed atomic.Bool
	err := p.SubmitQoS(func(s bool, wait time.Duration) { shed.Store(s) }, false, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !shed.Load() {
		t.Fatal("QoS call must be shed rather than evicting a plain entry")
	}
	close(block)
	waitFor(t, "plain job survives", func() bool { return plainRan.Load() })
}

func TestQoSSubmitPriorityBypassesWatermark(t *testing.T) {
	p, _ := NewWorkerpool(1, 1, 1)
	defer p.Shutdown()
	p.SetShedWatermark(1)
	block := wedgePool(t, p)
	defer close(block)

	// Ordinary queue at the watermark; a priority (control-plane)
	// submission must neither evict it nor be shed — a priority worker
	// picks it up promptly.
	var ordShed atomic.Bool
	if err := p.SubmitQoS(func(s bool, wait time.Duration) { ordShed.Store(s) }, false, 2, 0); err != nil {
		t.Fatal(err)
	}
	var ctrlShed atomic.Bool
	ran := make(chan struct{})
	err := p.SubmitQoS(func(s bool, wait time.Duration) {
		ctrlShed.Store(s)
		close(ran)
	}, true, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("control-plane call starved under watermark pressure")
	}
	if ctrlShed.Load() {
		t.Fatal("priority submission was shed")
	}
	if ordShed.Load() {
		t.Fatal("priority submission evicted queued ordinary work")
	}
	if got := p.Stats().Shed; got != 0 {
		t.Fatalf("Shed counter = %d, want 0", got)
	}
}

func TestQoSDeadlineShedOnDequeueObservesWait(t *testing.T) {
	p, _ := NewWorkerpool(1, 1, 0)
	defer p.Shutdown()
	obs := &obsRecorder{}
	p.SetWaitObserver(obs.record)
	block := wedgePool(t, p)

	// A call with a 5ms queue-wait bound queues behind the wedged
	// worker for much longer; at dequeue it runs in shed mode and its
	// wait still reaches the observer.
	var shed atomic.Bool
	var shedWait atomic.Int64
	done := make(chan struct{})
	err := p.SubmitQoS(func(s bool, wait time.Duration) {
		shed.Store(s)
		shedWait.Store(int64(wait))
		close(done)
	}, false, 5, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	close(block)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued job never ran")
	}
	if !shed.Load() {
		t.Fatal("call that out-waited its bound must be shed")
	}
	if got := time.Duration(shedWait.Load()); got < 25*time.Millisecond {
		t.Fatalf("shed call reported wait %v, slept 30ms", got)
	}
	waitFor(t, "observer saw both dequeues", func() bool { return obs.count() == 2 })
	obs.mu.Lock()
	last := obs.waits[len(obs.waits)-1]
	obs.mu.Unlock()
	if last < 25*time.Millisecond {
		t.Fatalf("observer recorded %v for the shed call", last)
	}
	waitFor(t, "shed counter", func() bool { return p.Stats().Shed == 1 })
}

func TestQoSSubmitWithoutWatermarkBehavesLikeSubmit(t *testing.T) {
	// QoS-disabled daemons route every call through SubmitQoS with
	// watermark 0 and no wait bound; jobs must run normally.
	p, _ := NewWorkerpool(1, 2, 0)
	defer p.Shutdown()
	var done atomic.Int64
	for i := 0; i < 50; i++ {
		err := p.SubmitQoS(func(shed bool, wait time.Duration) {
			if !shed {
				done.Add(1)
			}
		}, false, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all jobs run unshed", func() bool { return done.Load() == 50 })
	if got := p.Stats().Shed; got != 0 {
		t.Fatalf("Shed counter = %d, want 0", got)
	}
}
