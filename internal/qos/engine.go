package qos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Reject reasons, the reason label of daemon_qos_rejected_total.
type Reason int

// Rejection reasons in counter order.
const (
	ReasonRate Reason = iota
	ReasonACL
	ReasonInflight
	ReasonShed
	nReasons
)

var reasonNames = [nReasons]string{"rate", "acl", "inflight", "shed"}

func (r Reason) String() string { return reasonNames[r] }

// Retry-after hints for rejections whose wait isn't computable from a
// token bucket: an inflight-quota rejection clears as soon as one of
// the client's own calls finishes, a shed clears when the queue
// drains below the watermark.
const (
	InflightRetryHint = 5 * time.Millisecond
	ShedRetryHint     = 20 * time.Millisecond
)

// Config configures an Engine.
type Config struct {
	Classes []ClassConfig

	// ShedWatermark is the ordinary-queue depth above which the
	// lowest-priority queued call is shed to admit a higher-priority
	// one (0 disables watermark eviction; per-class max_queue_wait_ms
	// still applies).
	ShedWatermark int
}

// classState is one class's runtime state shared by every client the
// class resolves: aggregate gauges, rejection counters, and the
// precomputed rejection messages so the reject path does no
// per-event formatting.
type classState struct {
	cfg        ClassConfig
	interval   float64 // nanos per token; 0 = unlimited
	burst      float64
	needObject bool // some ACL rule constrains the object

	inflight atomic.Int64 // admitted calls not yet finished (queued or running)
	queued   atomic.Int64 // admitted calls still waiting in the pool queue
	rejects  [nReasons]atomic.Uint64

	msgRate     string
	msgInflight string
	msgShed     string
}

// ClientState is the per-connection admission state: the resolved
// class plus this client's own token bucket and inflight count. The
// bucket is touched only by the connection's serve goroutine; the
// inflight counter is shared with workerpool goroutines, hence atomic.
type ClientState struct {
	cls *classState

	mu     sync.Mutex
	tokens float64
	last   time.Time

	inflight atomic.Int64
}

// Engine resolves client identities to classes and owns the class
// runtime state. Engines are immutable after construction — a config
// change installs a whole new engine (clients re-resolve on their next
// call), so no admission-path lock is ever taken engine-wide.
type Engine struct {
	classes   []*classState
	byUser    map[string]*classState
	def       *classState
	watermark int
}

// NewEngine builds an engine from parsed class configs. When no class
// is named "default" an implicit unlimited default is synthesized for
// anonymous and unmatched clients.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		byUser:    make(map[string]*classState),
		watermark: cfg.ShedWatermark,
	}
	for _, cc := range cfg.Classes {
		cs := newClassState(cc)
		e.classes = append(e.classes, cs)
		for _, u := range cc.Users {
			e.byUser[u] = cs
		}
		if cc.Name == DefaultClassName {
			e.def = cs
		}
	}
	if e.def == nil {
		e.def = newClassState(ClassConfig{Name: DefaultClassName, Priority: 5})
		e.classes = append(e.classes, e.def)
	}
	return e
}

func newClassState(cc ClassConfig) *classState {
	cs := &classState{cfg: cc}
	if cc.Rate > 0 {
		cs.interval = float64(time.Second) / cc.Rate
		cs.burst = cc.Burst
		if cs.burst <= 0 {
			cs.burst = 1
		}
	}
	for _, r := range cc.ACL {
		if r.Object != "" {
			cs.needObject = true
		}
	}
	cs.msgRate = fmt.Sprintf("client class %q over its rate limit", cc.Name)
	cs.msgInflight = fmt.Sprintf("client class %q at max inflight calls (%d)", cc.Name, cc.MaxInflight)
	cs.msgShed = fmt.Sprintf("queued call shed under overload (class %q)", cc.Name)
	return cs
}

// ShedWatermark returns the configured queue-depth watermark.
func (e *Engine) ShedWatermark() int { return e.watermark }

// Resolve maps an authenticated SASL identity (empty for anonymous
// clients) to its class and returns fresh per-client state. The daemon
// caches the result per connection; a full bucket greets every new
// client.
func (e *Engine) Resolve(saslUser string) *ClientState {
	cls := e.def
	if saslUser != "" {
		if c, ok := e.byUser[saslUser]; ok {
			cls = c
		}
	}
	return &ClientState{cls: cls}
}

// ClassSnapshot is one class's point-in-time admission accounting.
type ClassSnapshot struct {
	Config   ClassConfig
	Inflight int64
	Queued   int64
	Rejected [4]uint64 // indexed by Reason
}

// Snapshot reports every class's live state, in config order.
func (e *Engine) Snapshot() []ClassSnapshot {
	out := make([]ClassSnapshot, len(e.classes))
	for i, cs := range e.classes {
		snap := ClassSnapshot{
			Config:   cs.cfg,
			Inflight: cs.inflight.Load(),
			Queued:   cs.queued.Load(),
		}
		for r := Reason(0); r < nReasons; r++ {
			snap.Rejected[r] = cs.rejects[r].Load()
		}
		out[i] = snap
	}
	return out
}

// Instrument registers the engine's per-class gauges and rejection
// counters: daemon_qos_inflight{class=...}, daemon_qos_queued{class=...}
// and daemon_qos_rejected_total{client=...,reason=...}. Function
// metrics read the class atomics directly, and re-registering the same
// class names (a live config update) replaces the samplers, so stale
// engines stop being read.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for _, cs := range e.classes {
		cs := cs
		reg.GaugeFunc(fmt.Sprintf("daemon_qos_inflight{class=%q}", cs.cfg.Name), cs.inflight.Load)
		reg.GaugeFunc(fmt.Sprintf("daemon_qos_queued{class=%q}", cs.cfg.Name), cs.queued.Load)
		for r := Reason(0); r < nReasons; r++ {
			ctr := &cs.rejects[r]
			reg.CounterFunc(
				fmt.Sprintf("daemon_qos_rejected_total{client=%q,reason=%q}", cs.cfg.Name, r),
				ctr.Load)
		}
	}
}

// ClassName returns the resolved class name.
func (st *ClientState) ClassName() string { return st.cls.cfg.Name }

// Control reports whether the class runs on priority workers.
func (st *ClientState) Control() bool { return st.cls.cfg.Control }

// ShedPriority returns the class priority for watermark eviction.
func (st *ClientState) ShedPriority() int8 { return int8(st.cls.cfg.Priority) }

// MaxQueueWait returns the class's queue-wait shed bound (0 = none).
func (st *ClientState) MaxQueueWait() time.Duration { return st.cls.cfg.MaxQueueWait }

// HasACL reports whether the class constrains procedures at all.
func (st *ClientState) HasACL() bool { return len(st.cls.cfg.ACL) > 0 }

// NeedObject reports whether some ACL rule needs the call's object.
func (st *ClientState) NeedObject() bool { return st.cls.needObject }

// Allow evaluates the class ACL against a procedure name and the
// call's object bytes (nil when the call carries none). Allocation
// free: patterns compare against the raw payload view.
func (st *ClientState) Allow(procName string, object []byte) bool {
	for _, r := range st.cls.cfg.ACL {
		if !match(r.Proc, procName) {
			continue
		}
		if r.Object == "" || matchBytes(r.Object, object) {
			return true
		}
	}
	return false
}

// TakeToken draws one token from the client's bucket. When the bucket
// is empty it reports false plus how long until the next token — the
// retry-after hint transported to the client.
func (st *ClientState) TakeToken(now time.Time) (time.Duration, bool) {
	c := st.cls
	if c.interval == 0 {
		return 0, true
	}
	st.mu.Lock()
	if st.last.IsZero() {
		st.tokens = c.burst
	} else {
		st.tokens += float64(now.Sub(st.last)) / c.interval
		if st.tokens > c.burst {
			st.tokens = c.burst
		}
	}
	st.last = now
	if st.tokens >= 1 {
		st.tokens--
		st.mu.Unlock()
		return 0, true
	}
	wait := time.Duration((1 - st.tokens) * c.interval)
	st.mu.Unlock()
	return wait, false
}

// TryInflight admits one call against the client's inflight quota,
// reporting false at the cap. Paired with EndCall.
func (st *ClientState) TryInflight() bool {
	max := int64(st.cls.cfg.MaxInflight)
	if n := st.inflight.Add(1); max > 0 && n > max {
		st.inflight.Add(-1)
		return false
	}
	st.cls.inflight.Add(1)
	return true
}

// EndCall releases the inflight slot taken by TryInflight. It runs as
// soon as dispatch returns (or the call is shed), so the quota
// measures worker occupancy, not reply flushing.
func (st *ClientState) EndCall() {
	st.inflight.Add(-1)
	st.cls.inflight.Add(-1)
}

// MarkQueued/MarkDequeued maintain the class queued gauge around the
// workerpool queue.
func (st *ClientState) MarkQueued()   { st.cls.queued.Add(1) }
func (st *ClientState) MarkDequeued() { st.cls.queued.Add(-1) }

// RejectRate counts and builds the rate-limit rejection with its
// computed retry-after hint.
func (st *ClientState) RejectRate(retryAfter time.Duration) error {
	st.cls.rejects[ReasonRate].Add(1)
	return &core.Error{Code: core.ErrOverloaded, Message: st.cls.msgRate, RetryAfter: retryAfter}
}

// RejectInflight counts and builds the inflight-quota rejection.
func (st *ClientState) RejectInflight() error {
	st.cls.rejects[ReasonInflight].Add(1)
	return &core.Error{Code: core.ErrOverloaded, Message: st.cls.msgInflight, RetryAfter: InflightRetryHint}
}

// RejectACL counts and builds the access-denied rejection.
func (st *ClientState) RejectACL(procName string) error {
	st.cls.rejects[ReasonACL].Add(1)
	return core.Errorf(core.ErrAccessDenied,
		"procedure %s denied for client class %q", procName, st.cls.cfg.Name)
}

// RejectShed counts and builds the shed rejection for a queued call
// evicted under overload.
func (st *ClientState) RejectShed() error {
	st.cls.rejects[ReasonShed].Add(1)
	return &core.Error{Code: core.ErrOverloaded, Message: st.cls.msgShed, RetryAfter: ShedRetryHint}
}
