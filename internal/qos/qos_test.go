package qos

import (
	"strings"
	"testing"
	"time"
)

func TestQoSParseClass(t *testing.T) {
	spec := "gold rate_limit_calls_per_s=500 burst=100 max_inflight_calls=32 " +
		"max_queue_wait_ms=200 priority=8 control=1 users=alice|bob " +
		"acl=Domain*|ConnectGetHostname@vm-*"
	cfg, err := ParseClass(spec)
	if err != nil {
		t.Fatalf("ParseClass: %v", err)
	}
	if cfg.Name != "gold" || cfg.Rate != 500 || cfg.Burst != 100 {
		t.Fatalf("rate fields wrong: %+v", cfg)
	}
	if cfg.MaxInflight != 32 || cfg.MaxQueueWait != 200*time.Millisecond {
		t.Fatalf("quota fields wrong: %+v", cfg)
	}
	if cfg.Priority != 8 || !cfg.Control {
		t.Fatalf("priority fields wrong: %+v", cfg)
	}
	if len(cfg.Users) != 2 || cfg.Users[0] != "alice" || cfg.Users[1] != "bob" {
		t.Fatalf("users wrong: %v", cfg.Users)
	}
	if len(cfg.ACL) != 2 || cfg.ACL[0] != (Rule{Proc: "Domain*"}) ||
		cfg.ACL[1] != (Rule{Proc: "ConnectGetHostname", Object: "vm-*"}) {
		t.Fatalf("acl wrong: %v", cfg.ACL)
	}

	// The canonical rendering must round-trip through the parser.
	back, err := ParseClass(cfg.Spec())
	if err != nil {
		t.Fatalf("round-trip parse of %q: %v", cfg.Spec(), err)
	}
	if back.Spec() != cfg.Spec() {
		t.Fatalf("spec not canonical: %q vs %q", back.Spec(), cfg.Spec())
	}
}

func TestQoSParseClassErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"", "empty class spec"},
		{"rate_limit_calls_per_s=5", "must start with the class name"},
		{"gold", "rate_limit_calls_per_s must be > 0"},
		{"gold rate_limit_calls_per_s=0", "rate_limit_calls_per_s must be > 0"},
		{"gold rate_limit_calls_per_s=-3", "rate_limit_calls_per_s must be > 0"},
		{"gold rate_limit_calls_per_s=5 bogus=1", `unknown key "bogus"`},
		{"gold rate_limit_calls_per_s=5 priority=10", "outside [0,9]"},
		{"gold rate_limit_calls_per_s=5 control=2", "expected 0 or 1"},
		{"gold rate_limit_calls_per_s=5 max_inflight_calls=-1", "non-negative"},
		{"gold rate_limit_calls_per_s=5 acl=@vm-1", "no procedure pattern"},
	}
	for _, tc := range cases {
		_, err := ParseClass(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseClass(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestQoSParseClassesDuplicates(t *testing.T) {
	_, err := ParseClasses([]string{
		"gold rate_limit_calls_per_s=5",
		"gold rate_limit_calls_per_s=9",
	})
	if err == nil || !strings.Contains(err.Error(), `duplicate class "gold"`) {
		t.Fatalf("duplicate class not rejected: %v", err)
	}
	_, err = ParseClasses([]string{
		"gold rate_limit_calls_per_s=5 users=alice",
		"bronze rate_limit_calls_per_s=5 users=alice",
	})
	if err == nil || !strings.Contains(err.Error(), `user "alice" claimed by classes`) {
		t.Fatalf("duplicate user not rejected: %v", err)
	}
}

func TestQoSResolve(t *testing.T) {
	classes, err := ParseClasses([]string{
		"gold rate_limit_calls_per_s=100 users=alice",
		"bronze rate_limit_calls_per_s=5 users=eve",
	})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Config{Classes: classes})
	if got := e.Resolve("alice").ClassName(); got != "gold" {
		t.Fatalf("alice resolved to %q", got)
	}
	if got := e.Resolve("eve").ClassName(); got != "bronze" {
		t.Fatalf("eve resolved to %q", got)
	}
	// Anonymous and unclaimed users share the implicit unlimited default.
	for _, user := range []string{"", "mallory"} {
		st := e.Resolve(user)
		if st.ClassName() != DefaultClassName {
			t.Fatalf("user %q resolved to %q", user, st.ClassName())
		}
		if _, ok := st.TakeToken(time.Now()); !ok {
			t.Fatalf("implicit default class must be unlimited")
		}
	}
	// A configured "default" class replaces the implicit one.
	classes2, _ := ParseClasses([]string{"default rate_limit_calls_per_s=1 burst=1"})
	e2 := NewEngine(Config{Classes: classes2})
	st := e2.Resolve("")
	now := time.Now()
	if _, ok := st.TakeToken(now); !ok {
		t.Fatal("first token must be granted")
	}
	if _, ok := st.TakeToken(now); ok {
		t.Fatal("configured default class must throttle")
	}
}

func TestQoSTokenBucket(t *testing.T) {
	classes, _ := ParseClasses([]string{"c rate_limit_calls_per_s=10 burst=3 users=u"})
	st := NewEngine(Config{Classes: classes}).Resolve("u")

	base := time.Now()
	for i := 0; i < 3; i++ {
		if _, ok := st.TakeToken(base); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	retry, ok := st.TakeToken(base)
	if ok {
		t.Fatal("4th token granted beyond burst")
	}
	// At 10 calls/s a token refills every 100ms; the hint must say so.
	if retry <= 0 || retry > 150*time.Millisecond {
		t.Fatalf("retry-after hint %v outside (0, 150ms]", retry)
	}
	// After the hinted wait the bucket has refilled exactly one token.
	later := base.Add(retry)
	if _, ok := st.TakeToken(later); !ok {
		t.Fatal("token denied after waiting the hinted interval")
	}
	if _, ok := st.TakeToken(later); ok {
		t.Fatal("second token granted without waiting")
	}
}

func TestQoSInflight(t *testing.T) {
	classes, _ := ParseClasses([]string{"c rate_limit_calls_per_s=1000 max_inflight_calls=2 users=u"})
	e := NewEngine(Config{Classes: classes})
	st := e.Resolve("u")
	if !st.TryInflight() || !st.TryInflight() {
		t.Fatal("quota denied below the cap")
	}
	if st.TryInflight() {
		t.Fatal("quota granted beyond the cap")
	}
	st.EndCall()
	if !st.TryInflight() {
		t.Fatal("quota denied after a slot freed")
	}
	st.EndCall()
	st.EndCall()
	// The per-class aggregate tracked every admit/release.
	for _, s := range e.Snapshot() {
		if s.Config.Name == "c" && s.Inflight != 0 {
			t.Fatalf("class inflight gauge leaked: %d", s.Inflight)
		}
	}
}

func TestQoSACL(t *testing.T) {
	classes, _ := ParseClasses([]string{
		"c rate_limit_calls_per_s=1000 users=u acl=Domain*|ConnectGetHostname@vm-*",
	})
	st := NewEngine(Config{Classes: classes}).Resolve("u")
	if !st.HasACL() || !st.NeedObject() {
		t.Fatal("ACL flags wrong")
	}
	cases := []struct {
		proc string
		obj  string
		want bool
	}{
		{"DomainCreate", "", true},           // prefix rule, object-free
		{"DomainCreate", "anything", true},   // object irrelevant to rule 1
		{"ConnectGetHostname", "vm-1", true}, // object rule matches
		{"ConnectGetHostname", "db-1", false},
		{"ConnectGetHostname", "", false}, // object rule needs an object
		{"NetworkList", "", false},
	}
	for _, tc := range cases {
		var obj []byte
		if tc.obj != "" {
			obj = []byte(tc.obj)
		}
		if got := st.Allow(tc.proc, obj); got != tc.want {
			t.Errorf("Allow(%q, %q) = %v, want %v", tc.proc, tc.obj, got, tc.want)
		}
	}
	// A class without rules allows everything and skips the object peek.
	free := NewEngine(Config{}).Resolve("")
	if free.HasACL() || free.NeedObject() {
		t.Fatal("default class must not constrain procedures")
	}
}

func TestQoSRejectAccounting(t *testing.T) {
	classes, _ := ParseClasses([]string{"c rate_limit_calls_per_s=5 users=u"})
	e := NewEngine(Config{Classes: classes})
	st := e.Resolve("u")
	if err := st.RejectRate(42 * time.Millisecond); err == nil {
		t.Fatal("RejectRate returned nil")
	}
	st.RejectACL("DomainCreate") //nolint:errcheck
	st.RejectInflight()          //nolint:errcheck
	st.RejectShed()              //nolint:errcheck
	st.RejectShed()              //nolint:errcheck
	for _, s := range e.Snapshot() {
		if s.Config.Name != "c" {
			continue
		}
		want := [4]uint64{ReasonRate: 1, ReasonACL: 1, ReasonInflight: 1, ReasonShed: 2}
		if s.Rejected != want {
			t.Fatalf("reject counters = %v, want %v", s.Rejected, want)
		}
	}
}
