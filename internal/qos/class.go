// Package qos implements per-client admission control and quality of
// service for the daemon: client classes resolved from authenticated
// identity, token-bucket rate limits with retry-after hints, ACLs on
// procedure and object, per-client inflight quotas, and the shed policy
// applied when the dispatch queue crosses its watermark. The daemon
// enforces all of it between frame decode and workerpool submit, so a
// rejected call costs one error reply and never occupies a worker.
package qos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ClassConfig describes one admission class. Classes are defined in
// govirtd.conf (qos_classes) as compact spec strings and resolved from
// the connection's SASL identity; anonymous or unmatched clients share
// the reserved "default" class.
type ClassConfig struct {
	Name string

	// Rate is the token-bucket refill in calls per second; every
	// configured class must set it > 0 (the implicit default class is
	// the only unlimited one). Burst is the bucket depth, defaulting to
	// max(1, Rate).
	Rate  float64
	Burst float64

	// MaxInflight caps this client's admitted-but-unfinished calls
	// (queued or running); 0 = unlimited.
	MaxInflight int

	// MaxQueueWait sheds a queued call that waited longer than this
	// before running, answering ErrOverloaded instead of a stale
	// dispatch; 0 = never.
	MaxQueueWait time.Duration

	// Priority orders classes for watermark shedding (0..9, lowest
	// sheds first). Default 5.
	Priority int

	// Control marks a control-plane class whose calls run on the
	// workerpool's priority workers regardless of procedure, so the
	// class stays responsive while ordinary workers are saturated.
	Control bool

	// Users lists the SASL usernames resolving to this class.
	Users []string

	// ACL is the procedure/object allowlist; empty allows everything.
	ACL []Rule
}

// Rule is one ACL allowlist entry: a procedure-name pattern and an
// optional object (name/UUID) pattern, both supporting a trailing '*'
// wildcard. A rule with an object pattern only matches calls that
// carry an object.
type Rule struct {
	Proc   string
	Object string // "" = any object (including none)
}

// match reports whether pat matches s; a trailing '*' matches any
// suffix, a bare "*" matches anything.
func match(pat, s string) bool {
	if pat == "*" {
		return true
	}
	if n := len(pat); n > 0 && pat[n-1] == '*' {
		return len(s) >= n-1 && s[:n-1] == pat[:n-1]
	}
	return pat == s
}

// matchBytes is match against an unconverted byte view (the object
// peeked from the encoded payload), so the ACL check allocates nothing.
func matchBytes(pat string, s []byte) bool {
	if pat == "*" {
		return true
	}
	if n := len(pat); n > 0 && pat[n-1] == '*' {
		return len(s) >= n-1 && string(s[:n-1]) == pat[:n-1]
	}
	return len(s) == len(pat) && string(s) == pat
}

// DefaultClassName is the reserved class shared by anonymous clients
// and authenticated users no class claims. When qos_classes doesn't
// define it, an implicit unlimited default is synthesized so enabling
// QoS for one tenant never locks everyone else out.
const DefaultClassName = "default"

// ParseClass parses one class spec: the class name followed by
// space-separated key=value tokens, e.g.
//
//	bronze rate_limit_calls_per_s=50 burst=10 max_inflight_calls=4 priority=2 users=eve|mallory acl=Domain*|ConnectGetHostname@vm-*
//
// Keys: rate_limit_calls_per_s (required, > 0), burst,
// max_inflight_calls, max_queue_wait_ms, priority (0..9), control
// (0/1), users (|-separated SASL names), acl (|-separated
// ProcPattern[@ObjectPattern] allow rules).
func ParseClass(spec string) (ClassConfig, error) {
	fields := strings.Fields(spec)
	if len(fields) == 0 {
		return ClassConfig{}, fmt.Errorf("qos: empty class spec")
	}
	cfg := ClassConfig{Name: fields[0], Priority: 5}
	if strings.ContainsRune(cfg.Name, '=') {
		return cfg, fmt.Errorf("qos: class spec must start with the class name, got %q", cfg.Name)
	}
	for _, tok := range fields[1:] {
		key, value, found := strings.Cut(tok, "=")
		if !found {
			return cfg, fmt.Errorf("qos: class %q: expected key=value, got %q", cfg.Name, tok)
		}
		var err error
		switch key {
		case "rate_limit_calls_per_s":
			cfg.Rate, err = strconv.ParseFloat(value, 64)
		case "burst":
			cfg.Burst, err = strconv.ParseFloat(value, 64)
		case "max_inflight_calls":
			cfg.MaxInflight, err = strconv.Atoi(value)
		case "max_queue_wait_ms":
			var ms int
			ms, err = strconv.Atoi(value)
			cfg.MaxQueueWait = time.Duration(ms) * time.Millisecond
		case "priority":
			cfg.Priority, err = strconv.Atoi(value)
		case "control":
			switch value {
			case "0":
				cfg.Control = false
			case "1":
				cfg.Control = true
			default:
				err = fmt.Errorf("expected 0 or 1, got %q", value)
			}
		case "users":
			cfg.Users = splitPipe(value)
		case "acl":
			for _, e := range splitPipe(value) {
				proc, obj, _ := strings.Cut(e, "@")
				if proc == "" {
					return cfg, fmt.Errorf("qos: class %q: acl entry %q has no procedure pattern", cfg.Name, e)
				}
				cfg.ACL = append(cfg.ACL, Rule{Proc: proc, Object: obj})
			}
		default:
			return cfg, fmt.Errorf("qos: class %q: unknown key %q", cfg.Name, key)
		}
		if err != nil {
			return cfg, fmt.Errorf("qos: class %q: %s: %v", cfg.Name, key, err)
		}
	}
	if cfg.Rate <= 0 {
		return cfg, fmt.Errorf("qos: class %q: rate_limit_calls_per_s must be > 0", cfg.Name)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.MaxInflight < 0 {
		return cfg, fmt.Errorf("qos: class %q: max_inflight_calls must be non-negative", cfg.Name)
	}
	if cfg.MaxQueueWait < 0 {
		return cfg, fmt.Errorf("qos: class %q: max_queue_wait_ms must be non-negative", cfg.Name)
	}
	if cfg.Priority < 0 || cfg.Priority > 9 {
		return cfg, fmt.Errorf("qos: class %q: priority %d outside [0,9]", cfg.Name, cfg.Priority)
	}
	return cfg, nil
}

// ParseClasses parses a qos_classes list, rejecting duplicate class
// names and users claimed by more than one class.
func ParseClasses(specs []string) ([]ClassConfig, error) {
	out := make([]ClassConfig, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	owner := make(map[string]string)
	for _, spec := range specs {
		cfg, err := ParseClass(spec)
		if err != nil {
			return nil, err
		}
		if seen[cfg.Name] {
			return nil, fmt.Errorf("qos: duplicate class %q", cfg.Name)
		}
		seen[cfg.Name] = true
		for _, u := range cfg.Users {
			if prev, claimed := owner[u]; claimed {
				return nil, fmt.Errorf("qos: user %q claimed by classes %q and %q", u, prev, cfg.Name)
			}
			owner[u] = cfg.Name
		}
		out = append(out, cfg)
	}
	return out, nil
}

// Spec renders the class back into its canonical spec-string form, so
// the admin interface round-trips exactly what config parsing accepts.
func (c ClassConfig) Spec() string {
	var b strings.Builder
	b.WriteString(c.Name)
	fmt.Fprintf(&b, " rate_limit_calls_per_s=%s", trimFloat(c.Rate))
	fmt.Fprintf(&b, " burst=%s", trimFloat(c.Burst))
	if c.MaxInflight > 0 {
		fmt.Fprintf(&b, " max_inflight_calls=%d", c.MaxInflight)
	}
	if c.MaxQueueWait > 0 {
		fmt.Fprintf(&b, " max_queue_wait_ms=%d", c.MaxQueueWait/time.Millisecond)
	}
	fmt.Fprintf(&b, " priority=%d", c.Priority)
	if c.Control {
		b.WriteString(" control=1")
	}
	if len(c.Users) > 0 {
		users := append([]string(nil), c.Users...)
		sort.Strings(users)
		b.WriteString(" users=" + strings.Join(users, "|"))
	}
	if len(c.ACL) > 0 {
		entries := make([]string, len(c.ACL))
		for i, r := range c.ACL {
			entries[i] = r.Proc
			if r.Object != "" {
				entries[i] += "@" + r.Object
			}
		}
		b.WriteString(" acl=" + strings.Join(entries, "|"))
	}
	return b.String()
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}

func splitPipe(s string) []string {
	var out []string
	for _, p := range strings.Split(s, "|") {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
