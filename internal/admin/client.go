package admin

import (
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/logging"
	"repro/internal/rpc"
	"repro/internal/typedparams"
)

// Connect is a client connection to a daemon's admin server — the
// client-side API of the administration interface.
type Connect struct {
	client *rpc.Client
}

// DefaultAdminSocket is the admin server's conventional unix socket.
const DefaultAdminSocket = "/var/run/govirt/govirt-admin-sock"

// Open dials the admin server at the given unix socket path ("" for the
// default) and opens the admin connection.
func Open(socket string) (*Connect, error) {
	if socket == "" {
		socket = DefaultAdminSocket
	}
	nc, err := net.DialTimeout("unix", socket, 5*time.Second)
	if err != nil {
		return nil, core.Errorf(core.ErrNoConnect, "dial admin socket %s: %v", socket, err)
	}
	return OpenConn(nc)
}

// OpenConn wraps an established transport as an admin connection.
func OpenConn(nc net.Conn) (*Connect, error) {
	c := &Connect{client: rpc.NewClient(nc, rpc.ProgramAdmin, nil)}
	if err := c.call(ProcConnectOpen, &struct{}{}, nil); err != nil {
		c.client.Close()
		return nil, err
	}
	return c, nil
}

// Close releases the connection.
func (c *Connect) Close() error { return c.client.Close() }

func (c *Connect) call(proc uint32, args, ret interface{}) error {
	err := c.client.Call(proc, args, ret)
	if err == nil {
		return nil
	}
	if re, ok := err.(*rpc.RemoteError); ok {
		return &core.Error{Code: core.ErrorCode(re.Code), Message: re.Message}
	}
	return core.Errorf(core.ErrRPC, "%v", err)
}

// ListServers returns the daemon's server names.
func (c *Connect) ListServers() ([]string, error) {
	var r ServerListReply
	if err := c.call(ProcServerList, &struct{}{}, &r); err != nil {
		return nil, err
	}
	return r.Servers, nil
}

// LookupServer verifies a server exists.
func (c *Connect) LookupServer(name string) error {
	return c.call(ProcServerLookup, &ServerArgs{Server: name}, nil)
}

// ThreadpoolParams retrieves a server's workerpool attributes.
func (c *Connect) ThreadpoolParams(server string) (*typedparams.List, error) {
	var r ParamsReply
	if err := c.call(ProcThreadpoolGet, &ServerArgs{Server: server}, &r); err != nil {
		return nil, err
	}
	return ParamsFromWire(r.Params)
}

// SetThreadpoolParams installs workerpool attributes on a server.
// Read-only fields are rejected by the daemon.
func (c *Connect) SetThreadpoolParams(server string, params *typedparams.List) error {
	return c.call(ProcThreadpoolSet, &SetParamsArgs{
		Server: server, Params: ParamsToWire(params),
	}, nil)
}

// ClientLimits retrieves a server's client limits and current counts.
func (c *Connect) ClientLimits(server string) (*typedparams.List, error) {
	var r ParamsReply
	if err := c.call(ProcClientLimitsGet, &ServerArgs{Server: server}, &r); err != nil {
		return nil, err
	}
	return ParamsFromWire(r.Params)
}

// SetClientLimits installs client limits on a server.
func (c *Connect) SetClientLimits(server string, params *typedparams.List) error {
	return c.call(ProcClientLimitsSet, &SetParamsArgs{
		Server: server, Params: ParamsToWire(params),
	}, nil)
}

// ClientInfo describes one connected client.
type ClientInfo struct {
	ID        uint64
	Transport string
	Connected time.Time
	AuthDone  bool
	Identity  *typedparams.List
}

// ListClients returns the clients connected to a server.
func (c *Connect) ListClients(server string) ([]ClientInfo, error) {
	var r ClientListReply
	if err := c.call(ProcClientList, &ServerArgs{Server: server}, &r); err != nil {
		return nil, err
	}
	out := make([]ClientInfo, len(r.Clients))
	for i, rec := range r.Clients {
		out[i] = ClientInfo{
			ID:        rec.ID,
			Transport: rec.Transport,
			Connected: time.Unix(rec.Connected, 0),
			AuthDone:  rec.AuthDone,
		}
	}
	return out, nil
}

// GetClientInfo retrieves the identity details of one client.
func (c *Connect) GetClientInfo(server string, id uint64) (ClientInfo, error) {
	var r ClientInfoReply
	if err := c.call(ProcClientInfo, &ClientArgs{Server: server, ID: id}, &r); err != nil {
		return ClientInfo{}, err
	}
	identity, err := ParamsFromWire(r.Params)
	if err != nil {
		return ClientInfo{}, core.Errorf(core.ErrInternal, "%v", err)
	}
	return ClientInfo{
		ID:        r.Record.ID,
		Transport: r.Record.Transport,
		Connected: time.Unix(r.Record.Connected, 0),
		AuthDone:  r.Record.AuthDone,
		Identity:  identity,
	}, nil
}

// DisconnectClient forcefully closes a client's connection.
func (c *Connect) DisconnectClient(server string, id uint64) error {
	return c.call(ProcClientDisconnect, &ClientArgs{Server: server, ID: id}, nil)
}

// LoggingLevel retrieves the daemon's global logging level.
func (c *Connect) LoggingLevel() (logging.Priority, error) {
	var r LevelReply
	if err := c.call(ProcLogLevelGet, &struct{}{}, &r); err != nil {
		return 0, err
	}
	return logging.Priority(r.Level), nil
}

// SetLoggingLevel installs a new global logging level.
func (c *Connect) SetLoggingLevel(p logging.Priority) error {
	return c.call(ProcLogLevelSet, &LevelArgs{Level: uint32(p)}, nil)
}

// LoggingFilters retrieves the daemon's filters in configuration syntax.
func (c *Connect) LoggingFilters() (string, error) {
	var r StringReply
	if err := c.call(ProcLogFiltersGet, &struct{}{}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// SetLoggingFilters atomically replaces the daemon's filter set.
func (c *Connect) SetLoggingFilters(filters string) error {
	return c.call(ProcLogFiltersSet, &StringArgs{Value: filters}, nil)
}

// LoggingOutputs retrieves the daemon's outputs in configuration syntax.
func (c *Connect) LoggingOutputs() (string, error) {
	var r StringReply
	if err := c.call(ProcLogOutputsGet, &struct{}{}, &r); err != nil {
		return "", err
	}
	return r.Value, nil
}

// SetLoggingOutputs atomically replaces the daemon's output set.
func (c *Connect) SetLoggingOutputs(outputs string) error {
	return c.call(ProcLogOutputsSet, &StringArgs{Value: outputs}, nil)
}

// Metrics retrieves a full snapshot of the daemon's metric registry.
func (c *Connect) Metrics() (*MetricsReply, error) {
	var r MetricsReply
	if err := c.call(ProcServerMetrics, &struct{}{}, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// SlowCalls retrieves the daemon's recent slow-call ring and tracer
// counters.
func (c *Connect) SlowCalls() (*SlowCallsReply, error) {
	var r SlowCallsReply
	if err := c.call(ProcServerSlowCalls, &struct{}{}, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// QoS retrieves a server's admission-control state: whether QoS is
// enabled, the shed watermark and every class's spec plus live
// accounting.
func (c *Connect) QoS(server string) (*QoSReply, error) {
	var r QoSReply
	if err := c.call(ProcQoSGet, &ServerArgs{Server: server}, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// SetQoS atomically replaces a server's admission configuration with
// the given class specs and shed watermark. Specs use the qos_classes
// grammar; the daemon validates them as a set before installing.
func (c *Connect) SetQoS(server string, specs []string, shedWatermark int) error {
	return c.call(ProcQoSSet, &QoSSetArgs{
		Server: server, Specs: specs, ShedWatermark: uint32(shedWatermark),
	}, nil)
}

// DisableQoS removes admission control from a server.
func (c *Connect) DisableQoS(server string) error {
	return c.call(ProcQoSSet, &QoSSetArgs{Server: server, Disable: true}, nil)
}
