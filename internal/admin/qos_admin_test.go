package admin_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestQoSAdminGetSetRoundTrip(t *testing.T) {
	td := startDaemon(t)

	// Fresh daemon: admission control is off.
	rep, err := td.adm.QoS("govirtd")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Enabled || len(rep.Classes) != 0 {
		t.Fatalf("QoS enabled on a fresh daemon: %+v", rep)
	}

	// Install two classes live and read them back.
	specs := []string{
		"gold rate_limit_calls_per_s=500 burst=100 priority=8 users=alice",
		"bronze rate_limit_calls_per_s=20 max_inflight_calls=4 users=bob",
	}
	if err := td.adm.SetQoS("govirtd", specs, 64); err != nil {
		t.Fatal(err)
	}
	rep, err = td.adm.QoS("govirtd")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.ShedWatermark != 64 {
		t.Fatalf("engine not installed: %+v", rep)
	}
	// The engine synthesizes the implicit default class alongside the
	// two configured ones.
	if len(rep.Classes) != 3 {
		t.Fatalf("classes %d: %+v", len(rep.Classes), rep.Classes)
	}
	var sawGold bool
	for _, c := range rep.Classes {
		if strings.HasPrefix(c.Spec, "gold ") {
			sawGold = true
			if !strings.Contains(c.Spec, "rate_limit_calls_per_s=500") ||
				!strings.Contains(c.Spec, "users=alice") {
				t.Fatalf("gold spec lost fields: %q", c.Spec)
			}
			if c.Inflight != 0 || c.RejectedRate != 0 {
				t.Fatalf("fresh class has nonzero counters: %+v", c)
			}
		}
	}
	if !sawGold {
		t.Fatalf("gold class missing from %+v", rep.Classes)
	}

	// A malformed spec is rejected wholesale; the previous engine stays.
	err = td.adm.SetQoS("govirtd", []string{"bad"}, 0)
	if !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("malformed spec: %v", err)
	}
	rep, _ = td.adm.QoS("govirtd")
	if !rep.Enabled || len(rep.Classes) != 3 {
		t.Fatalf("failed update clobbered the engine: %+v", rep)
	}

	// Disable removes the engine entirely.
	if err := td.adm.DisableQoS("govirtd"); err != nil {
		t.Fatal(err)
	}
	rep, _ = td.adm.QoS("govirtd")
	if rep.Enabled {
		t.Fatalf("QoS still enabled after disable: %+v", rep)
	}

	// Unknown server fails cleanly.
	if _, err := td.adm.QoS("ghost"); !core.IsCode(err, core.ErrAdmin) {
		t.Fatalf("unknown server: %v", err)
	}
}
