package admin

import (
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/logging"
	"repro/internal/qos"
	"repro/internal/rpc"
	"repro/internal/typedparams"
)

// Program dispatches the admin protocol against a daemon. Every admin
// procedure is a priority operation: none of them depend on a hypervisor
// answering, so a daemon wedged on guest operations stays administrable.
type Program struct {
	d *daemon.Daemon
}

// NewProgram creates the admin program for a daemon.
func NewProgram(d *daemon.Daemon) *Program { return &Program{d: d} }

// ID implements daemon.Program.
func (p *Program) ID() uint32 { return rpc.ProgramAdmin }

// IsPriority implements daemon.Program.
func (p *Program) IsPriority(uint32) bool { return true }

// ClientClosed implements daemon.Program; the admin program keeps no
// per-client state.
func (p *Program) ClientClosed(*daemon.Client) {}

// Dispatch implements daemon.Program.
func (p *Program) Dispatch(c *daemon.Client, proc uint32, payload []byte) ([]byte, error) {
	switch proc {
	case ProcConnectOpen:
		return marshal(&struct{}{})
	case ProcServerList:
		return marshal(&ServerListReply{Servers: p.d.Servers()})
	case ProcServerLookup:
		srv, err := p.server(payload)
		if err != nil {
			return nil, err
		}
		return marshal(&ServerListReply{Servers: []string{srv.Name()}})
	case ProcThreadpoolGet:
		return p.threadpoolGet(payload)
	case ProcThreadpoolSet:
		return p.threadpoolSet(payload)
	case ProcClientLimitsGet:
		return p.clientLimitsGet(payload)
	case ProcClientLimitsSet:
		return p.clientLimitsSet(payload)
	case ProcClientList:
		return p.clientList(payload)
	case ProcClientInfo:
		return p.clientInfo(payload)
	case ProcClientDisconnect:
		return p.clientDisconnect(c, payload)
	case ProcLogLevelGet:
		return marshal(&LevelReply{Level: uint32(p.d.Log().Level())})
	case ProcLogLevelSet:
		var args LevelArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		if err := p.d.Log().SetLevel(logging.Priority(args.Level)); err != nil {
			return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
		}
		return marshal(&struct{}{})
	case ProcLogFiltersGet:
		return marshal(&StringReply{Value: p.d.Log().FiltersString()})
	case ProcLogFiltersSet:
		var args StringArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		if err := p.d.Log().DefineFilters(args.Value); err != nil {
			return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
		}
		return marshal(&struct{}{})
	case ProcLogOutputsGet:
		return marshal(&StringReply{Value: p.d.Log().OutputsString()})
	case ProcLogOutputsSet:
		var args StringArgs
		if err := rpc.Unmarshal(payload, &args); err != nil {
			return nil, badArgs(err)
		}
		if err := p.d.Log().DefineOutputs(args.Value); err != nil {
			return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
		}
		return marshal(&struct{}{})
	case ProcServerMetrics:
		return p.serverMetrics()
	case ProcServerSlowCalls:
		return p.serverSlowCalls()
	case ProcQoSGet:
		return p.qosGet(payload)
	case ProcQoSSet:
		return p.qosSet(payload)
	default:
		return nil, core.Errorf(core.ErrNoSupport, "unknown admin procedure %d", proc)
	}
}

func (p *Program) server(payload []byte) (*daemon.Server, error) {
	var args ServerArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	return p.serverByName(args.Server)
}

func (p *Program) serverByName(name string) (*daemon.Server, error) {
	srv, ok := p.d.Server(name)
	if !ok {
		return nil, core.Errorf(core.ErrAdmin, "no server %q", name)
	}
	return srv, nil
}

func (p *Program) threadpoolGet(payload []byte) ([]byte, error) {
	srv, err := p.server(payload)
	if err != nil {
		return nil, err
	}
	params := srv.Pool().Params()
	l := typedparams.NewList()
	l.AddUInt(FieldMinWorkers, uint32(params.MinWorkers))       //nolint:errcheck
	l.AddUInt(FieldMaxWorkers, uint32(params.MaxWorkers))       //nolint:errcheck
	l.AddUInt(FieldCurrentWorkers, uint32(params.NWorkers))     //nolint:errcheck
	l.AddUInt(FieldFreeWorkers, uint32(params.FreeWorkers))     //nolint:errcheck
	l.AddUInt(FieldPrioWorkers, uint32(params.PrioWorkers))     //nolint:errcheck
	l.AddUInt(FieldJobQueueDepth, uint32(params.JobQueueDepth)) //nolint:errcheck
	return marshal(&ParamsReply{Params: ParamsToWire(l)})
}

func (p *Program) threadpoolSet(payload []byte) ([]byte, error) {
	var args SetParamsArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	srv, err := p.serverByName(args.Server)
	if err != nil {
		return nil, err
	}
	l, err := ParamsFromWire(args.Params)
	if err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	if err := l.Validate(ThreadpoolSetSchema, ThreadpoolReadOnly); err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	cur := srv.Pool().Params()
	min, max, prio := cur.MinWorkers, cur.MaxWorkers, cur.PrioWorkers
	if v, err := l.GetUInt(FieldMinWorkers); err == nil {
		min = int(v)
	}
	if v, err := l.GetUInt(FieldMaxWorkers); err == nil {
		max = int(v)
	}
	if v, err := l.GetUInt(FieldPrioWorkers); err == nil {
		prio = int(v)
	}
	if err := srv.Pool().SetParams(min, max, prio); err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	return marshal(&struct{}{})
}

func (p *Program) clientLimitsGet(payload []byte) ([]byte, error) {
	srv, err := p.server(payload)
	if err != nil {
		return nil, err
	}
	limits, cur, unauth := srv.Limits()
	l := typedparams.NewList()
	l.AddUInt(FieldMaxClients, uint32(limits.MaxClients))             //nolint:errcheck
	l.AddUInt(FieldCurrentClients, uint32(cur))                       //nolint:errcheck
	l.AddUInt(FieldMaxUnauthClients, uint32(limits.MaxUnauthClients)) //nolint:errcheck
	l.AddUInt(FieldCurrentUnauthClients, uint32(unauth))              //nolint:errcheck
	return marshal(&ParamsReply{Params: ParamsToWire(l)})
}

func (p *Program) clientLimitsSet(payload []byte) ([]byte, error) {
	var args SetParamsArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	srv, err := p.serverByName(args.Server)
	if err != nil {
		return nil, err
	}
	l, err := ParamsFromWire(args.Params)
	if err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	if err := l.Validate(ClientLimitsSetSchema, ClientLimitsReadOnly); err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	limits, _, _ := srv.Limits()
	if v, err := l.GetUInt(FieldMaxClients); err == nil {
		limits.MaxClients = int(v)
	}
	if v, err := l.GetUInt(FieldMaxUnauthClients); err == nil {
		limits.MaxUnauthClients = int(v)
	}
	if err := srv.SetLimits(limits); err != nil {
		return nil, err
	}
	return marshal(&struct{}{})
}

func (p *Program) clientList(payload []byte) ([]byte, error) {
	srv, err := p.server(payload)
	if err != nil {
		return nil, err
	}
	clients := srv.Clients()
	out := ClientListReply{Clients: make([]ClientRecord, len(clients))}
	for i, c := range clients {
		out.Clients[i] = clientRecord(c)
	}
	return marshal(&out)
}

func clientRecord(c *daemon.Client) ClientRecord {
	return ClientRecord{
		ID:        c.ID(),
		Transport: c.Transport().String(),
		Connected: c.ConnectedAt().Unix(),
		AuthDone:  c.Authenticated(),
	}
}

func (p *Program) clientInfo(payload []byte) ([]byte, error) {
	var args ClientArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	srv, err := p.serverByName(args.Server)
	if err != nil {
		return nil, err
	}
	client, ok := srv.Client(args.ID)
	if !ok {
		return nil, core.Errorf(core.ErrAdmin, "server %q has no client %d", args.Server, args.ID)
	}
	id := client.Identity()
	l := typedparams.NewList()
	l.AddBoolean(FieldReadOnly, id.ReadOnly) //nolint:errcheck
	switch client.Transport() {
	case daemon.TransportUnix:
		l.AddInt(FieldUnixUserID, int32(id.UID))    //nolint:errcheck
		l.AddString(FieldUnixUserName, id.Username) //nolint:errcheck
		l.AddInt(FieldUnixGroupID, int32(id.GID))   //nolint:errcheck
		l.AddInt(FieldUnixProcessID, int32(id.PID)) //nolint:errcheck
	default:
		l.AddString(FieldSockAddr, id.SockAddr) //nolint:errcheck
		if id.SASLUser != "" {
			l.AddString(FieldSASLUserName, id.SASLUser) //nolint:errcheck
		}
	}
	return marshal(&ClientInfoReply{Record: clientRecord(client), Params: ParamsToWire(l)})
}

func (p *Program) clientDisconnect(self *daemon.Client, payload []byte) ([]byte, error) {
	var args ClientArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	srv, err := p.serverByName(args.Server)
	if err != nil {
		return nil, err
	}
	client, ok := srv.Client(args.ID)
	if !ok {
		return nil, core.Errorf(core.ErrAdmin, "server %q has no client %d", args.Server, args.ID)
	}
	if client == self {
		return nil, core.Errorf(core.ErrOperationInvalid, "refusing to disconnect the calling client")
	}
	if err := client.Close(); err != nil {
		return nil, core.Errorf(core.ErrAdmin, "disconnect client %d: %v", args.ID, err)
	}
	return marshal(&struct{}{})
}

func (p *Program) serverMetrics() ([]byte, error) {
	reg := p.d.Metrics()
	if reg == nil {
		return nil, core.Errorf(core.ErrNoSupport, "daemon is running without telemetry")
	}
	snap := reg.Snapshot()
	out := MetricsReply{
		Counters:   make([]MetricCounter, len(snap.Counters)),
		Gauges:     make([]MetricGauge, len(snap.Gauges)),
		Histograms: make([]MetricHistogram, len(snap.Histograms)),
	}
	for i, c := range snap.Counters {
		out.Counters[i] = MetricCounter{Name: c.Name, Value: c.Value}
	}
	for i, g := range snap.Gauges {
		out.Gauges[i] = MetricGauge{Name: g.Name, Value: g.Value}
	}
	for i, h := range snap.Histograms {
		mh := MetricHistogram{
			Name: h.Name, Count: h.Count, SumNs: h.SumNs,
			P50Ns: h.P50Ns, P95Ns: h.P95Ns, P99Ns: h.P99Ns,
			Buckets: make([]MetricBucket, len(h.Buckets)),
		}
		for j, b := range h.Buckets {
			mh.Buckets[j] = MetricBucket{UpperNs: b.UpperNs, Cumulative: b.Cumulative}
		}
		out.Histograms[i] = mh
	}
	return marshal(&out)
}

func (p *Program) serverSlowCalls() ([]byte, error) {
	tr := p.d.Tracer()
	if tr == nil {
		return nil, core.Errorf(core.ErrNoSupport, "daemon is running without telemetry")
	}
	calls := tr.SlowCalls()
	out := SlowCallsReply{
		Started:     tr.Started(),
		Slow:        tr.SlowCount(),
		ThresholdNs: int64(tr.Threshold()),
		Calls:       make([]SlowCallRecord, len(calls)),
	}
	for i, sc := range calls {
		out.Calls[i] = SlowCallRecord{
			Serial:    sc.Serial,
			Program:   sc.Program,
			Proc:      sc.Proc,
			Client:    sc.Client,
			StartUnix: sc.Start.UnixNano(),
			QueueNs:   int64(sc.QueueWait),
			TotalNs:   int64(sc.Duration),
		}
	}
	return marshal(&out)
}

func (p *Program) qosGet(payload []byte) ([]byte, error) {
	srv, err := p.server(payload)
	if err != nil {
		return nil, err
	}
	eng := srv.QoS()
	if eng == nil {
		return marshal(&QoSReply{})
	}
	snaps := eng.Snapshot()
	out := QoSReply{
		Enabled:       true,
		ShedWatermark: uint32(eng.ShedWatermark()),
		Classes:       make([]QoSClassInfo, len(snaps)),
	}
	for i, s := range snaps {
		out.Classes[i] = QoSClassInfo{
			Spec:             s.Config.Spec(),
			Inflight:         s.Inflight,
			Queued:           s.Queued,
			RejectedRate:     s.Rejected[qos.ReasonRate],
			RejectedACL:      s.Rejected[qos.ReasonACL],
			RejectedInflight: s.Rejected[qos.ReasonInflight],
			RejectedShed:     s.Rejected[qos.ReasonShed],
		}
	}
	return marshal(&out)
}

func (p *Program) qosSet(payload []byte) ([]byte, error) {
	var args QoSSetArgs
	if err := rpc.Unmarshal(payload, &args); err != nil {
		return nil, badArgs(err)
	}
	srv, err := p.serverByName(args.Server)
	if err != nil {
		return nil, err
	}
	if args.Disable {
		srv.SetQoS(nil)
		return marshal(&struct{}{})
	}
	classes, err := qos.ParseClasses(args.Specs)
	if err != nil {
		return nil, core.Errorf(core.ErrInvalidArg, "%v", err)
	}
	srv.SetQoS(qos.NewEngine(qos.Config{
		Classes:       classes,
		ShedWatermark: int(args.ShedWatermark),
	}))
	return marshal(&struct{}{})
}

func marshal(v interface{}) ([]byte, error) {
	out, err := rpc.Marshal(v)
	if err != nil {
		return nil, core.Errorf(core.ErrInternal, "marshal reply: %v", err)
	}
	return out, nil
}

func badArgs(err error) error {
	return core.Errorf(core.ErrInvalidArg, "decode arguments: %v", err)
}

var _ daemon.Program = (*Program)(nil)
