// Package admin implements the administration interface: runtime
// management of the daemon itself — servers, workerpools, client limits,
// connected-client introspection and forced disconnect, and the logging
// subsystem — over its own protocol program. This is the published
// follow-on feature set to the management architecture (daemon
// self-management), built on the same RPC substrate.
package admin

import (
	"repro/internal/rpc"
	"repro/internal/typedparams"
)

// Admin program procedures.
const (
	ProcConnectOpen uint32 = 1 + iota
	ProcServerList
	ProcServerLookup
	ProcThreadpoolGet
	ProcThreadpoolSet
	ProcClientLimitsGet
	ProcClientLimitsSet
	ProcClientList
	ProcClientInfo
	ProcClientDisconnect
	ProcLogLevelGet
	ProcLogLevelSet
	ProcLogFiltersGet
	ProcLogFiltersSet
	ProcLogOutputsGet
	ProcLogOutputsSet
	ProcServerMetrics
	ProcServerSlowCalls
	ProcQoSGet
	ProcQoSSet
)

func init() {
	rpc.RegisterProcNames(rpc.ProgramAdmin, map[uint32]string{
		ProcConnectOpen:      "ConnectOpen",
		ProcServerList:       "ServerList",
		ProcServerLookup:     "ServerLookup",
		ProcThreadpoolGet:    "ThreadpoolGet",
		ProcThreadpoolSet:    "ThreadpoolSet",
		ProcClientLimitsGet:  "ClientLimitsGet",
		ProcClientLimitsSet:  "ClientLimitsSet",
		ProcClientList:       "ClientList",
		ProcClientInfo:       "ClientInfo",
		ProcClientDisconnect: "ClientDisconnect",
		ProcLogLevelGet:      "LogLevelGet",
		ProcLogLevelSet:      "LogLevelSet",
		ProcLogFiltersGet:    "LogFiltersGet",
		ProcLogFiltersSet:    "LogFiltersSet",
		ProcLogOutputsGet:    "LogOutputsGet",
		ProcLogOutputsSet:    "LogOutputsSet",
		ProcServerMetrics:    "ServerMetrics",
		ProcServerSlowCalls:  "ServerSlowCalls",
		ProcQoSGet:           "QoSGet",
		ProcQoSSet:           "QoSSet",
	})
}

// Typed-parameter field names of the threadpool interface. Read-only
// fields are reported by Get and rejected by Set.
const (
	FieldMinWorkers     = "minWorkers"
	FieldMaxWorkers     = "maxWorkers"
	FieldPrioWorkers    = "prioWorkers"
	FieldFreeWorkers    = "freeWorkers"   // read-only
	FieldCurrentWorkers = "nWorkers"      // read-only
	FieldJobQueueDepth  = "jobQueueDepth" // read-only
)

// Typed-parameter field names of the client-limits interface.
const (
	FieldMaxClients           = "nclients_max"
	FieldCurrentClients       = "nclients" // read-only
	FieldMaxUnauthClients     = "nclients_unauth_max"
	FieldCurrentUnauthClients = "nclients_unauth" // read-only
)

// Typed-parameter field names of client identity.
const (
	FieldReadOnly      = "readonly"
	FieldSockAddr      = "sock_addr"
	FieldSASLUserName  = "sasl_user_name"
	FieldUnixUserID    = "unix_user_id"
	FieldUnixUserName  = "unix_user_name"
	FieldUnixGroupID   = "unix_group_id"
	FieldUnixProcessID = "unix_process_id"
)

// ThreadpoolSetSchema validates Set parameters.
var ThreadpoolSetSchema = map[string]typedparams.Kind{
	FieldMinWorkers:     typedparams.UInt,
	FieldMaxWorkers:     typedparams.UInt,
	FieldPrioWorkers:    typedparams.UInt,
	FieldFreeWorkers:    typedparams.UInt,
	FieldCurrentWorkers: typedparams.UInt,
	FieldJobQueueDepth:  typedparams.UInt,
}

// ThreadpoolReadOnly lists fields rejected by ThreadpoolSet.
var ThreadpoolReadOnly = map[string]bool{
	FieldFreeWorkers:    true,
	FieldCurrentWorkers: true,
	FieldJobQueueDepth:  true,
}

// ClientLimitsSetSchema validates Set parameters.
var ClientLimitsSetSchema = map[string]typedparams.Kind{
	FieldMaxClients:           typedparams.UInt,
	FieldMaxUnauthClients:     typedparams.UInt,
	FieldCurrentClients:       typedparams.UInt,
	FieldCurrentUnauthClients: typedparams.UInt,
}

// ClientLimitsReadOnly lists fields rejected by ClientLimitsSet.
var ClientLimitsReadOnly = map[string]bool{
	FieldCurrentClients:       true,
	FieldCurrentUnauthClients: true,
}

// WireParam is one typed parameter on the wire.
type WireParam struct {
	Field string
	Kind  uint32
	I     int32
	U     uint32
	L     int64
	UL    uint64
	D     float64
	B     bool
	S     string
}

// ParamsToWire flattens a typed-parameter list for transport.
func ParamsToWire(l *typedparams.List) []WireParam {
	if l == nil {
		return nil
	}
	ps := l.Params()
	out := make([]WireParam, len(ps))
	for i, p := range ps {
		out[i] = WireParam{
			Field: p.Field, Kind: uint32(p.Kind),
			I: p.I, U: p.U, L: p.L, UL: p.UL, D: p.D, B: p.B, S: p.S,
		}
	}
	return out
}

// ParamsFromWire rebuilds a typed-parameter list, validating kinds and
// rejecting duplicates.
func ParamsFromWire(ws []WireParam) (*typedparams.List, error) {
	l := typedparams.NewList()
	for _, w := range ws {
		var err error
		switch typedparams.Kind(w.Kind) {
		case typedparams.Int:
			err = l.AddInt(w.Field, w.I)
		case typedparams.UInt:
			err = l.AddUInt(w.Field, w.U)
		case typedparams.LLong:
			err = l.AddLLong(w.Field, w.L)
		case typedparams.ULLong:
			err = l.AddULLong(w.Field, w.UL)
		case typedparams.Double:
			err = l.AddDouble(w.Field, w.D)
		case typedparams.Boolean:
			err = l.AddBoolean(w.Field, w.B)
		case typedparams.String:
			err = l.AddString(w.Field, w.S)
		default:
			return nil, &badKindError{field: w.Field, kind: w.Kind}
		}
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

type badKindError struct {
	field string
	kind  uint32
}

func (e *badKindError) Error() string {
	return "admin: parameter " + e.field + " has unknown kind"
}

// ServerArgs addresses a server by name.
type ServerArgs struct {
	Server string
}

// ServerListReply returns the daemon's server names in creation order.
type ServerListReply struct {
	Servers []string
}

// ParamsReply returns typed parameters.
type ParamsReply struct {
	Params []WireParam
}

// SetParamsArgs carries typed parameters to install on a server.
type SetParamsArgs struct {
	Server string
	Params []WireParam
}

// ClientRecord summarises one connected client.
type ClientRecord struct {
	ID        uint64
	Transport string
	Connected int64 // unix seconds
	AuthDone  bool
}

// ClientListReply returns the clients of a server.
type ClientListReply struct {
	Clients []ClientRecord
}

// ClientArgs addresses one client on a server.
type ClientArgs struct {
	Server string
	ID     uint64
}

// ClientInfoReply returns a client's identity as typed parameters plus
// the fixed fields.
type ClientInfoReply struct {
	Record ClientRecord
	Params []WireParam
}

// LevelArgs carries a logging level.
type LevelArgs struct {
	Level uint32
}

// LevelReply returns a logging level.
type LevelReply struct {
	Level uint32
}

// StringArgs carries a definition string (filters or outputs).
type StringArgs struct {
	Value string
}

// StringReply returns a definition string.
type StringReply struct {
	Value string
}

// MetricCounter is one counter sample in a metrics reply.
type MetricCounter struct {
	Name  string
	Value uint64
}

// MetricGauge is one gauge sample in a metrics reply.
type MetricGauge struct {
	Name  string
	Value int64
}

// MetricBucket is one cumulative histogram bucket; UpperNs 0 means +Inf.
type MetricBucket struct {
	UpperNs    uint64
	Cumulative uint64
}

// MetricHistogram is one histogram sample with server-computed quantiles.
type MetricHistogram struct {
	Name    string
	Count   uint64
	SumNs   uint64
	P50Ns   uint64
	P95Ns   uint64
	P99Ns   uint64
	Buckets []MetricBucket
}

// MetricsReply returns a full snapshot of the daemon's metric registry.
type MetricsReply struct {
	Counters   []MetricCounter
	Gauges     []MetricGauge
	Histograms []MetricHistogram
}

// SlowCallRecord is one recorded slow call.
type SlowCallRecord struct {
	Serial    uint32
	Program   string
	Proc      string
	Client    uint64
	StartUnix int64 // unix nanos
	QueueNs   int64
	TotalNs   int64
}

// SlowCallsReply returns the tracer's state: lifetime span counts, the
// active threshold and the bounded ring of recent slow calls.
type SlowCallsReply struct {
	Started     uint64
	Slow        uint64
	ThresholdNs int64
	Calls       []SlowCallRecord
}

// QoSClassInfo is one admission class: its canonical spec string (the
// same grammar qos_classes accepts) plus live accounting.
type QoSClassInfo struct {
	Spec             string
	Inflight         int64
	Queued           int64
	RejectedRate     uint64
	RejectedACL      uint64
	RejectedInflight uint64
	RejectedShed     uint64
}

// QoSReply returns a server's admission-control state.
type QoSReply struct {
	Enabled       bool
	ShedWatermark uint32
	Classes       []QoSClassInfo
}

// QoSSetArgs replaces a server's admission configuration wholesale: the
// complete class list plus shed watermark, installed atomically as a
// new engine. Disable removes admission control entirely (Specs and
// ShedWatermark are then ignored).
type QoSSetArgs struct {
	Server        string
	Specs         []string
	ShedWatermark uint32
	Disable       bool
}
