package admin_test

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/drivers/remote"
	drvtest "repro/internal/drivers/test"
	"repro/internal/logging"
	"repro/internal/telemetry"
	"repro/internal/typedparams"
)

// testDaemon brings up a daemon with a management server and an admin
// server, both on unix sockets, and returns an open admin connection.
type testDaemon struct {
	d         *daemon.Daemon
	mgmtSock  string
	adminSock string
	adm       *admin.Connect
}

func startDaemon(t *testing.T) *testDaemon {
	t.Helper()
	core.ResetRegistryForTest()
	log := logging.NewQuiet(logging.Error)
	drvtest.Register(log)
	remote.Register()

	// Fresh registry per test so metric assertions are hermetic.
	d := daemon.NewWithTelemetry(log, telemetry.NewRegistry())
	dir := t.TempDir()

	mgmt, err := d.AddServer("govirtd", 2, 8, 2, daemon.ClientLimits{MaxClients: 50})
	if err != nil {
		t.Fatal(err)
	}
	mgmt.AddProgram(daemon.NewRemoteProgram(mgmt))
	mgmtSock := filepath.Join(dir, "govirtd.sock")
	if err := mgmt.ListenUnix(mgmtSock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}

	adm, err := d.AddServer("admin", 1, 2, 1, daemon.ClientLimits{MaxClients: 5})
	if err != nil {
		t.Fatal(err)
	}
	adm.AddProgram(admin.NewProgram(d))
	adminSock := filepath.Join(dir, "admin.sock")
	if err := adm.ListenUnix(adminSock, daemon.ServiceConfig{}); err != nil {
		t.Fatal(err)
	}

	conn, err := admin.Open(adminSock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		conn.Close()
		d.Shutdown()
		core.ResetRegistryForTest()
	})
	return &testDaemon{d: d, mgmtSock: mgmtSock, adminSock: adminSock, adm: conn}
}

func (td *testDaemon) openMgmt(t *testing.T) *core.Connect {
	t.Helper()
	uri := "test+unix:///default?socket=" + strings.ReplaceAll(td.mgmtSock, "/", "%2F")
	conn, err := core.Open(uri)
	if err != nil {
		t.Fatal(err)
	}
	return conn
}

func TestServerList(t *testing.T) {
	td := startDaemon(t)
	servers, err := td.adm.ListServers()
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 || servers[0] != "govirtd" || servers[1] != "admin" {
		t.Fatalf("servers %v", servers)
	}
	if err := td.adm.LookupServer("govirtd"); err != nil {
		t.Fatal(err)
	}
	if err := td.adm.LookupServer("ghost"); !core.IsCode(err, core.ErrAdmin) {
		t.Fatalf("lookup missing server: %v", err)
	}
}

func TestThreadpoolGetAndSet(t *testing.T) {
	td := startDaemon(t)
	params, err := td.adm.ThreadpoolParams("govirtd")
	if err != nil {
		t.Fatal(err)
	}
	min, _ := params.GetUInt(admin.FieldMinWorkers)
	max, _ := params.GetUInt(admin.FieldMaxWorkers)
	prio, _ := params.GetUInt(admin.FieldPrioWorkers)
	if min != 2 || max != 8 || prio != 2 {
		t.Fatalf("initial params %v", params)
	}
	if !params.Has(admin.FieldCurrentWorkers) || !params.Has(admin.FieldFreeWorkers) ||
		!params.Has(admin.FieldJobQueueDepth) {
		t.Fatalf("missing read-only attributes: %v", params)
	}

	set := typedparams.NewList()
	set.AddUInt(admin.FieldMaxWorkers, 16) //nolint:errcheck
	set.AddUInt(admin.FieldPrioWorkers, 4) //nolint:errcheck
	if err := td.adm.SetThreadpoolParams("govirtd", set); err != nil {
		t.Fatal(err)
	}
	params, _ = td.adm.ThreadpoolParams("govirtd")
	max, _ = params.GetUInt(admin.FieldMaxWorkers)
	prio, _ = params.GetUInt(admin.FieldPrioWorkers)
	if max != 16 || prio != 4 {
		t.Fatalf("params after set: %v", params)
	}

	// Read-only attributes are rejected.
	ro := typedparams.NewList()
	ro.AddUInt(admin.FieldCurrentWorkers, 3) //nolint:errcheck
	if err := td.adm.SetThreadpoolParams("govirtd", ro); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("read-only set: %v", err)
	}
	// Unknown fields are rejected.
	unknown := typedparams.NewList()
	unknown.AddUInt("turboWorkers", 3) //nolint:errcheck
	if err := td.adm.SetThreadpoolParams("govirtd", unknown); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("unknown field: %v", err)
	}
	// Wrong kind is rejected.
	wrong := typedparams.NewList()
	wrong.AddString(admin.FieldMaxWorkers, "many") //nolint:errcheck
	if err := td.adm.SetThreadpoolParams("govirtd", wrong); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("wrong kind: %v", err)
	}
	// min > max is rejected.
	badRange := typedparams.NewList()
	badRange.AddUInt(admin.FieldMinWorkers, 32) //nolint:errcheck
	badRange.AddUInt(admin.FieldMaxWorkers, 4)  //nolint:errcheck
	if err := td.adm.SetThreadpoolParams("govirtd", badRange); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("min>max: %v", err)
	}
	// Unknown server.
	if _, err := td.adm.ThreadpoolParams("ghost"); !core.IsCode(err, core.ErrAdmin) {
		t.Fatalf("ghost server: %v", err)
	}
}

func TestClientLimitsGetAndSet(t *testing.T) {
	td := startDaemon(t)
	limits, err := td.adm.ClientLimits("govirtd")
	if err != nil {
		t.Fatal(err)
	}
	max, _ := limits.GetUInt(admin.FieldMaxClients)
	cur, _ := limits.GetUInt(admin.FieldCurrentClients)
	if max != 50 || cur != 0 {
		t.Fatalf("initial limits %v", limits)
	}
	mgmt := td.openMgmt(t)
	defer mgmt.Close()
	limits, _ = td.adm.ClientLimits("govirtd")
	cur, _ = limits.GetUInt(admin.FieldCurrentClients)
	if cur != 1 {
		t.Fatalf("current clients %d", cur)
	}

	set := typedparams.NewList()
	set.AddUInt(admin.FieldMaxClients, 150) //nolint:errcheck
	if err := td.adm.SetClientLimits("govirtd", set); err != nil {
		t.Fatal(err)
	}
	limits, _ = td.adm.ClientLimits("govirtd")
	max, _ = limits.GetUInt(admin.FieldMaxClients)
	if max != 150 {
		t.Fatalf("limits after set %v", limits)
	}
	// Read-only rejected.
	ro := typedparams.NewList()
	ro.AddUInt(admin.FieldCurrentClients, 0) //nolint:errcheck
	if err := td.adm.SetClientLimits("govirtd", ro); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("read-only: %v", err)
	}
	// Unauth > max rejected.
	bad := typedparams.NewList()
	bad.AddUInt(admin.FieldMaxUnauthClients, 9999) //nolint:errcheck
	if err := td.adm.SetClientLimits("govirtd", bad); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("unauth>max: %v", err)
	}
}

func TestClientListInfoAndDisconnect(t *testing.T) {
	td := startDaemon(t)
	mgmt := td.openMgmt(t)
	defer mgmt.Close()

	clients, err := td.adm.ListClients("govirtd")
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 1 || clients[0].Transport != "unix" || !clients[0].AuthDone {
		t.Fatalf("clients %+v", clients)
	}
	info, err := td.adm.GetClientInfo("govirtd", clients[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Identity.Has(admin.FieldUnixProcessID) || !info.Identity.Has(admin.FieldUnixUserID) {
		t.Fatalf("identity %v", info.Identity)
	}
	if ro, err := info.Identity.GetBoolean(admin.FieldReadOnly); err != nil || ro {
		t.Fatalf("readonly %v %v", ro, err)
	}
	if _, err := td.adm.GetClientInfo("govirtd", 9999); !core.IsCode(err, core.ErrAdmin) {
		t.Fatalf("missing client: %v", err)
	}

	// Forced disconnect: the management connection dies.
	if err := td.adm.DisconnectClient("govirtd", clients[0].ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs, err := td.adm.ListClients("govirtd")
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client survived forced disconnect: %+v", cs)
		}
		time.Sleep(time.Millisecond)
	}
	// The disconnected client's next call fails.
	if _, err := mgmt.Hostname(); err == nil {
		t.Fatal("disconnected client still working")
	}
	if err := td.adm.DisconnectClient("govirtd", clients[0].ID); !core.IsCode(err, core.ErrAdmin) {
		t.Fatalf("double disconnect: %v", err)
	}
}

func TestAdminRefusesSelfDisconnect(t *testing.T) {
	td := startDaemon(t)
	clients, err := td.adm.ListClients("admin")
	if err != nil || len(clients) != 1 {
		t.Fatalf("admin clients %v %v", clients, err)
	}
	if err := td.adm.DisconnectClient("admin", clients[0].ID); !core.IsCode(err, core.ErrOperationInvalid) {
		t.Fatalf("self-disconnect: %v", err)
	}
}

func TestLoggingLevelOverAdmin(t *testing.T) {
	td := startDaemon(t)
	lvl, err := td.adm.LoggingLevel()
	if err != nil || lvl != logging.Error {
		t.Fatalf("level %v %v", lvl, err)
	}
	if err := td.adm.SetLoggingLevel(logging.Debug); err != nil {
		t.Fatal(err)
	}
	if lvl, _ = td.adm.LoggingLevel(); lvl != logging.Debug {
		t.Fatalf("level after set %v", lvl)
	}
	if td.d.Log().Level() != logging.Debug {
		t.Fatal("daemon logger unchanged")
	}
	if err := td.adm.SetLoggingLevel(logging.Priority(9)); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("bad level: %v", err)
	}
}

func TestLoggingFiltersOverAdmin(t *testing.T) {
	td := startDaemon(t)
	if err := td.adm.SetLoggingFilters("1:daemon.server 4:rpc"); err != nil {
		t.Fatal(err)
	}
	filters, err := td.adm.LoggingFilters()
	if err != nil || filters != "1:daemon.server 4:rpc" {
		t.Fatalf("filters %q %v", filters, err)
	}
	if err := td.adm.SetLoggingFilters("9:bad"); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("bad filter: %v", err)
	}
	// Failed set leaves the previous filters intact.
	filters, _ = td.adm.LoggingFilters()
	if filters != "1:daemon.server 4:rpc" {
		t.Fatalf("filters mutated by failed set: %q", filters)
	}
	if err := td.adm.SetLoggingFilters(""); err != nil {
		t.Fatal(err)
	}
	if filters, _ = td.adm.LoggingFilters(); filters != "" {
		t.Fatalf("filters not cleared: %q", filters)
	}
}

func TestLoggingOutputsOverAdmin(t *testing.T) {
	td := startDaemon(t)
	logPath := filepath.Join(t.TempDir(), "d.log")
	if err := td.adm.SetLoggingOutputs("1:file:" + logPath + " 3:buffer"); err != nil {
		t.Fatal(err)
	}
	outputs, err := td.adm.LoggingOutputs()
	if err != nil || !strings.Contains(outputs, logPath) || !strings.Contains(outputs, "3:buffer") {
		t.Fatalf("outputs %q %v", outputs, err)
	}
	if err := td.adm.SetLoggingOutputs("1:file:relative"); !core.IsCode(err, core.ErrInvalidArg) {
		t.Fatalf("bad output: %v", err)
	}
}

func TestServerMetricsOverAdmin(t *testing.T) {
	td := startDaemon(t)
	mgmt := td.openMgmt(t)
	defer mgmt.Close()
	if _, err := mgmt.Hostname(); err != nil {
		t.Fatal(err)
	}

	m, err := td.adm.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]uint64{}
	for _, c := range m.Counters {
		counters[c.Name] = c.Value
	}
	// The Hostname call dispatched through the management server.
	key := `daemon_dispatch_total{program="remote",proc="GetHostname"}`
	if counters[key] < 1 {
		t.Fatalf("dispatch counter missing: %v", counters)
	}
	// The Metrics call itself went through the admin program; its own
	// ServerMetrics dispatch may not be counted yet (the snapshot is taken
	// inside the call), but ConnectOpen certainly finished.
	if counters[`daemon_dispatch_total{program="admin",proc="ConnectOpen"}`] < 1 {
		t.Fatalf("admin dispatch counter missing: %v", counters)
	}
	gauges := map[string]int64{}
	for _, g := range m.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges[`daemon_clients{server="govirtd"}`] != 1 {
		t.Fatalf("client gauge %v", gauges)
	}
	// Dispatch latency histogram carries the call with quantiles.
	var found bool
	for _, h := range m.Histograms {
		if h.Name == `daemon_dispatch_seconds{program="remote",proc="GetHostname"}` {
			found = true
			if h.Count < 1 || len(h.Buckets) == 0 {
				t.Fatalf("histogram %+v", h)
			}
			if h.P50Ns > h.P99Ns {
				t.Fatalf("quantiles unordered %+v", h)
			}
		}
	}
	if !found {
		t.Fatal("dispatch latency histogram missing")
	}
}

func TestSlowCallsOverAdmin(t *testing.T) {
	td := startDaemon(t)
	// Every call is "slow" at a 1 ns threshold.
	td.d.Tracer().SetThreshold(time.Nanosecond)
	// The global level stays at Error; the per-module filter routes the
	// slow-call warnings through.
	if err := td.adm.SetLoggingFilters("3:daemon.slowcall"); err != nil {
		t.Fatal(err)
	}
	emittedBefore, _ := td.d.Log().Stats()

	mgmt := td.openMgmt(t)
	defer mgmt.Close()
	if _, err := mgmt.Hostname(); err != nil {
		t.Fatal(err)
	}

	sc, err := td.adm.SlowCalls()
	if err != nil {
		t.Fatal(err)
	}
	if sc.ThresholdNs != 1 {
		t.Fatalf("threshold %d", sc.ThresholdNs)
	}
	if sc.Started == 0 || sc.Slow == 0 || len(sc.Calls) == 0 {
		t.Fatalf("tracer state %+v", sc)
	}
	var sawHostname bool
	for _, call := range sc.Calls {
		if call.TotalNs <= 0 || call.Proc == "" || call.Program == "" {
			t.Fatalf("bad record %+v", call)
		}
		if call.Program == "remote" && call.Proc == "GetHostname" {
			sawHostname = true
		}
	}
	if !sawHostname {
		t.Fatalf("GetHostname missing from slow ring: %+v", sc.Calls)
	}
	// The slow calls were also reported through the logging subsystem.
	emittedAfter, _ := td.d.Log().Stats()
	if emittedAfter <= emittedBefore {
		t.Fatalf("no slow-call warnings emitted (%d -> %d)", emittedBefore, emittedAfter)
	}
	// Removing the filter silences the warnings again (global level Error).
	if err := td.adm.SetLoggingFilters(""); err != nil {
		t.Fatal(err)
	}
	stable, _ := td.d.Log().Stats()
	if _, err := mgmt.Hostname(); err != nil {
		t.Fatal(err)
	}
	if after, _ := td.d.Log().Stats(); after != stable {
		t.Fatalf("slow-call warning bypassed filters (%d -> %d)", stable, after)
	}
}

func TestAdminWorksWhileWorkersBusy(t *testing.T) {
	// The admin server has its own workerpool, so it stays responsive
	// even when the management server's workers are wedged.
	td := startDaemon(t)
	mgmtSrv, _ := td.d.Server("govirtd")
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 8; i++ {
		mgmtSrv.Pool().Submit(func() { <-block }, false) //nolint:errcheck
	}
	done := make(chan error, 1)
	go func() {
		_, err := td.adm.ThreadpoolParams("govirtd")
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admin call starved by busy management workers")
	}
	params, _ := td.adm.ThreadpoolParams("govirtd")
	free, _ := params.GetUInt(admin.FieldFreeWorkers)
	if free != 0 {
		t.Fatalf("free workers %d while all wedged", free)
	}
}
